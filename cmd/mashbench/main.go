// Command mashbench is the db_bench-style driver: micro-benchmarks
// (fillseq, fillrandom, readrandom, readseq, readwhilewriting) over any
// placement policy, plus `-exp figN|tabN|all` to regenerate the paper's
// tables and figures via the experiment harness.
//
// Usage:
//
//	mashbench -benchmarks fillrandom,readrandom -num 100000 -policy mash
//	mashbench -exp fig8
//	mashbench -exp all -quick
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/harness"
	"rocksmash/internal/histogram"
	"rocksmash/internal/obs"
	"rocksmash/internal/readprof"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
	"rocksmash/internal/ycsb"
)

// unavailableReads counts Gets answered with ErrCloudUnavailable during a
// chaos run: an expected degraded-mode outcome, not a benchmark failure.
var unavailableReads atomic.Int64

// readErr filters benchmark read errors: not-found is a normal outcome, and
// under fault injection a typed cloud-unavailable error is counted instead
// of aborting the run.
func readErr(err error) error {
	if err == nil || err == db.ErrNotFound {
		return nil
	}
	if errors.Is(err, db.ErrCloudUnavailable) {
		unavailableReads.Add(1)
		return nil
	}
	return err
}

// scheduleOutage parses "start,duration" and arms a one-shot full outage on
// the faulty cloud backend.
func scheduleOutage(f *storage.Faulty, spec string) error {
	parts := strings.SplitN(spec, ",", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad -outage %q, want start,duration (e.g. 10s,30s)", spec)
	}
	start, err := time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil {
		return fmt.Errorf("bad -outage start: %w", err)
	}
	dur, err := time.ParseDuration(strings.TrimSpace(parts[1]))
	if err != nil {
		return fmt.Errorf("bad -outage duration: %w", err)
	}
	if f == nil {
		return errors.New("-outage needs a cloud-tier policy")
	}
	time.AfterFunc(start, func() {
		fmt.Printf("chaos: cloud outage begins (for %s)\n", dur)
		f.StartOutage(dur)
	})
	return nil
}

func main() {
	var (
		dbDir      = flag.String("db", "", "database directory (default: temp)")
		policy     = flag.String("policy", "mash", "placement policy: mash|local-only|cloud-only|cloud-lru")
		benchmarks = flag.String("benchmarks", "fillrandom,readrandom", "comma-separated benchmark list")
		num        = flag.Int("num", 50000, "number of keys")
		reads      = flag.Int("reads", 20000, "number of reads for read benchmarks")
		threads    = flag.Int("threads", 1, "concurrent worker goroutines per benchmark (readseq and compact stay single-threaded)")
		shards     = flag.Int("shards", 1, "hash-partition the keyspace into this many independent sub-LSMs")
		walSync    = flag.Bool("wal-sync", false, "fsync the WAL on every commit (group commit amortizes the fsync across threads)")
		valueSize  = flag.Int("valuesize", 400, "value size in bytes")
		exp        = flag.String("exp", "", "run a paper experiment (fig1..fig12, tab2..tab4, all) instead of benchmarks")
		quick      = flag.Bool("quick", false, "shrink experiment datasets ~10x")
		seed       = flag.Int64("seed", 42, "workload RNG seed")
		compress   = flag.Bool("compress", false, "flate-compress SSTable data blocks")
		metrics    = flag.String("metrics-addr", "", "serve live metrics over HTTP on this address (/metrics, /debug/vars, /stats, /vitals, /debug/pprof)")
		vitalsEach = flag.Duration("vitals", 0, "sample time-series vitals at this interval (0 = off; view with `mashctl top` via -metrics-addr)")
		flightRec  = flag.Bool("flight", false, "run the flight recorder: anomaly detection on vitals ticks plus postmortem incident bundles (see /health and /incidents with -metrics-addr)")
		profSample = flag.Int("profile-sample", 0, "time 1-in-N reads for the read-path profiler (0 = engine default, 1 = every read, -1 = off)")
		tracePath  = flag.String("trace", "", "append engine events as JSON lines to this file (see `mashctl trace`)")
		dumpStats  = flag.Bool("stats", false, "print the DumpStats report after the benchmarks")
		faultGet   = flag.Float64("fault-get-rate", 0, "inject cloud GET failures with this probability [0,1]")
		faultPut   = flag.Float64("fault-put-rate", 0, "inject cloud PUT failures with this probability [0,1]")
		outage     = flag.String("outage", "", "script a full cloud outage as start,duration (e.g. 10s,30s)")

		faultLocalCorrupt = flag.Float64("fault-local-corrupt-rate", 0, "flip a bit in local reads with this probability [0,1]")
		faultLocalBudget  = flag.Int64("fault-local-write-budget", 0, "fail local writes with ENOSPC after this many bytes (0 = unlimited)")
		faultLocalSync    = flag.Int("fault-local-sync-failures", 0, "fail the next N local fsyncs with EIO")
	)
	flag.Parse()

	if *exp == "list" {
		for _, e := range harness.List() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}
	if *exp != "" {
		cfg := harness.Config{BaseDir: *dbDir, Quick: *quick, Out: os.Stdout, Seed: *seed}
		if err := harness.Run(*exp, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "mashbench:", err)
			os.Exit(1)
		}
		return
	}

	p, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mashbench:", err)
		os.Exit(1)
	}
	dir := *dbDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "mashbench-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mashbench:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
	}
	opts := db.DefaultOptions()
	opts.Policy = p
	if *compress {
		opts.Compression = sstable.CompressionFlate
	}
	opts.TracePath = *tracePath
	opts.WALSync = *walSync
	opts.ReadProfileSampleRate = *profSample
	opts.Shards = *shards
	opts.VitalsInterval = *vitalsEach
	opts.FlightRecorder = *flightRec
	var d *db.DB
	var faulty, localFaulty *storage.Faulty
	localChaos := *faultLocalCorrupt > 0 || *faultLocalBudget > 0 || *faultLocalSync > 0
	switch {
	case localChaos:
		d, localFaulty, faulty, err = db.OpenAtChaosLocal(dir, opts,
			storage.FaultConfig{
				Seed:             *seed,
				CorruptRate:      *faultLocalCorrupt,
				WriteBudgetBytes: *faultLocalBudget,
				SyncFailures:     *faultLocalSync,
			},
			storage.FaultConfig{
				Seed:         *seed + 1,
				GetErrorRate: *faultGet,
				PutErrorRate: *faultPut,
			})
		if err == nil && *outage != "" && faulty != nil {
			err = scheduleOutage(faulty, *outage)
		}
	case *faultGet > 0 || *faultPut > 0 || *outage != "":
		d, faulty, err = db.OpenAtChaos(dir, opts, storage.FaultConfig{
			Seed:         *seed,
			GetErrorRate: *faultGet,
			PutErrorRate: *faultPut,
		})
		if err == nil && *outage != "" {
			err = scheduleOutage(faulty, *outage)
		}
	default:
		d, err = db.OpenAt(dir, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mashbench: open:", err)
		os.Exit(1)
	}
	defer d.Close()
	if *metrics != "" {
		if srv, err := obs.Serve(*metrics, d); err != nil {
			fmt.Fprintln(os.Stderr, "mashbench: metrics:", err)
		} else {
			fmt.Printf("mashbench: metrics on http://%s/metrics\n", srv.Addr)
		}
	}

	fmt.Printf("mashbench: policy=%s num=%d valuesize=%d threads=%d dir=%s\n", p, *num, *valueSize, *threads, dir)
	for _, b := range strings.Split(*benchmarks, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if err := runBench(d, b, *num, *reads, *valueSize, *threads, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "mashbench: %s: %v\n", b, err)
			os.Exit(1)
		}
	}
	m := d.Metrics()
	fmt.Printf("\nlevels: files=%v\nlocal=%0.2fMB cloud=%0.2fMB pcacheHit=%.3f blockHit=%.3f\n",
		m.LevelFiles, float64(m.LocalBytes)/(1<<20), float64(m.CloudBytes)/(1<<20), m.PCacheHit, m.BlockHit)
	if rep, ok := d.CloudCost(); ok {
		fmt.Println("cloud bill:", rep)
	}
	printReadAmp(m.ReadAmp)
	if faulty != nil {
		fmt.Printf("chaos: injected=%d unavailable-reads=%d breaker=%s trips=%d degraded=%s pending=%d drained=%d\n",
			faulty.InjectedFaults(), unavailableReads.Load(), m.BreakerState, m.BreakerTrips,
			m.DegradedDur.Round(time.Millisecond), m.PendingTables, m.DrainedTables)
	}
	if localFaulty != nil {
		fmt.Printf("local chaos: injected=%d corrupted-reads=%d breaker=%s trips=%d degraded-tables=%d drained-back=%d detected=%d repaired=%d unrepaired=%d\n",
			localFaulty.InjectedFaults(), localFaulty.CorruptedReads(), m.LocalBreakerState,
			m.LocalBreakerTrips, m.LocalDegradedTables, m.LocalDrainedBack,
			m.CorruptionsDetected, m.CorruptionsRepaired, m.CorruptionsUnrepaired)
	}
	if *dumpStats {
		fmt.Println()
		fmt.Print(d.DumpStats())
	}
}

// printReadAmp renders the read-path profiler's per-tier attribution table
// when any reads were profiled (see `mashctl profile` for the live view).
func printReadAmp(ra db.ReadAmp) {
	if ra.ProfiledGets == 0 {
		return
	}
	fmt.Printf("\nread profile: %d gets (%d timed), %.2f tables/get, %.2f blocks/get, bloom TN %.3f\n",
		ra.ProfiledGets, ra.TimedGets, ra.TablesPerGet(), ra.BlocksPerGet(), ra.BloomTrueNegativeRate())
	fmt.Printf("  %-12s %10s %12s %12s\n", "tier", "blocks", "KB", "time")
	for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
		if ra.Blocks[t] == 0 {
			continue
		}
		fmt.Printf("  %-12s %10d %12.1f %12s\n",
			t, ra.Blocks[t], float64(ra.Bytes[t])/1024,
			time.Duration(ra.FetchNanos[t]).Round(time.Microsecond))
	}
}

func parsePolicy(s string) (db.Policy, error) {
	switch s {
	case "mash":
		return db.PolicyMash, nil
	case "local-only", "local":
		return db.PolicyLocalOnly, nil
	case "cloud-only", "cloud":
		return db.PolicyCloudOnly, nil
	case "cloud-lru":
		return db.PolicyCloudLRU, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

// runParallel splits total ops across threads goroutines. worker(tid) builds
// the per-thread op closure (own RNG/generator state); latencies land in the
// shared concurrency-safe histogram, and merged throughput is total wall
// time over all ops, matching db_bench's merged-stats reporting.
func runParallel(threads, total int, h *histogram.H, worker func(tid int) func(i int) error) (int, error) {
	if threads <= 1 {
		op := worker(0)
		for i := 0; i < total; i++ {
			s := time.Now()
			if err := op(i); err != nil {
				return i, err
			}
			h.Record(time.Since(s))
		}
		return total, nil
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		done     atomic.Int64
	)
	per := total / threads
	for t := 0; t < threads; t++ {
		lo, hi := t*per, (t+1)*per
		if t == threads-1 {
			hi = total
		}
		op := worker(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				s := time.Now()
				if err := op(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				h.Record(time.Since(s))
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return int(done.Load()), firstErr
	}
	return total, nil
}

func runBench(d *db.DB, name string, num, reads, valueSize, threads int, seed int64) error {
	val := make([]byte, valueSize)
	h := histogram.New()
	start := time.Now()
	ops := 0
	var err error

	switch name {
	case "fillseq":
		ops, err = runParallel(threads, num, h, func(tid int) func(i int) error {
			return func(i int) error {
				return d.Put([]byte(fmt.Sprintf("key%012d", i)), val)
			}
		})
	case "fillrandom":
		ops, err = runParallel(threads, num, h, func(tid int) func(i int) error {
			rng := rand.New(rand.NewSource(seed + int64(tid)))
			return func(i int) error {
				return d.Put(ycsb.Key(uint64(rng.Intn(num))), val)
			}
		})
	case "readrandom":
		ops, err = runParallel(threads, reads, h, func(tid int) func(i int) error {
			gen := ycsb.NewGenerator(ycsb.WorkloadC, uint64(num), valueSize, seed+int64(tid))
			return func(i int) error {
				_, err := d.Get(gen.Next().Key)
				return readErr(err)
			}
		})
	case "readseq":
		it, ierr := d.NewIterator()
		if ierr != nil {
			return ierr
		}
		for it.First(); it.Valid() && ops < reads; it.Next() {
			ops++
		}
		if err := it.Close(); err != nil {
			return err
		}
	case "readwhilewriting":
		ops, err = runParallel(threads, reads, h, func(tid int) func(i int) error {
			gen := ycsb.NewGenerator(ycsb.WorkloadA, uint64(num), valueSize, seed+int64(tid))
			return func(i int) error {
				op := gen.Next()
				if op.Kind == ycsb.OpRead {
					_, err := d.Get(op.Key)
					return readErr(err)
				}
				return d.Put(op.Key, val)
			}
		})
	case "overwrite":
		// Rewrite existing keys repeatedly, stressing compaction debt.
		ops, err = runParallel(threads, num, h, func(tid int) func(i int) error {
			return func(i int) error {
				return d.Put(ycsb.Key(uint64(i%max(num/4, 1))), val)
			}
		})
	case "deleterandom":
		ops, err = runParallel(threads, num, h, func(tid int) func(i int) error {
			rng := rand.New(rand.NewSource(seed + int64(tid)))
			return func(i int) error {
				return d.Delete(ycsb.Key(uint64(rng.Intn(num))))
			}
		})
	case "seekrandom":
		ops, err = runParallel(threads, reads, h, func(tid int) func(i int) error {
			rng := rand.New(rand.NewSource(seed + int64(tid)))
			return func(i int) error {
				it, err := d.NewIterator()
				if err != nil {
					return err
				}
				it.Seek(ycsb.Key(uint64(rng.Intn(num))))
				for j := 0; j < 10 && it.Valid(); j++ {
					it.Next()
				}
				return it.Close()
			}
		})
	case "compact":
		if err := d.CompactAll(); err != nil {
			return err
		}
		ops = 1
	default:
		return fmt.Errorf("unknown benchmark (have fillseq fillrandom overwrite deleterandom readrandom readseq seekrandom readwhilewriting compact)")
	}
	if err != nil {
		return err
	}
	dur := time.Since(start)
	rate := float64(ops) / dur.Seconds()
	fmt.Printf("%-18s : %10.0f ops/s  (%d ops in %s, %d threads)  %s\n",
		name, rate, ops, dur.Round(time.Millisecond), max(threads, 1), h)
	return nil
}
