// Command mashbench is the db_bench-style driver: micro-benchmarks
// (fillseq, fillrandom, readrandom, readseq, readwhilewriting) over any
// placement policy, plus `-exp figN|tabN|all` to regenerate the paper's
// tables and figures via the experiment harness.
//
// Usage:
//
//	mashbench -benchmarks fillrandom,readrandom -num 100000 -policy mash
//	mashbench -exp fig8
//	mashbench -exp all -quick
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/harness"
	"rocksmash/internal/histogram"
	"rocksmash/internal/obs"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
	"rocksmash/internal/ycsb"
)

// unavailableReads counts Gets answered with ErrCloudUnavailable during a
// chaos run: an expected degraded-mode outcome, not a benchmark failure.
var unavailableReads atomic.Int64

// readErr filters benchmark read errors: not-found is a normal outcome, and
// under fault injection a typed cloud-unavailable error is counted instead
// of aborting the run.
func readErr(err error) error {
	if err == nil || err == db.ErrNotFound {
		return nil
	}
	if errors.Is(err, db.ErrCloudUnavailable) {
		unavailableReads.Add(1)
		return nil
	}
	return err
}

// scheduleOutage parses "start,duration" and arms a one-shot full outage on
// the faulty cloud backend.
func scheduleOutage(f *storage.Faulty, spec string) error {
	parts := strings.SplitN(spec, ",", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad -outage %q, want start,duration (e.g. 10s,30s)", spec)
	}
	start, err := time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil {
		return fmt.Errorf("bad -outage start: %w", err)
	}
	dur, err := time.ParseDuration(strings.TrimSpace(parts[1]))
	if err != nil {
		return fmt.Errorf("bad -outage duration: %w", err)
	}
	if f == nil {
		return errors.New("-outage needs a cloud-tier policy")
	}
	time.AfterFunc(start, func() {
		fmt.Printf("chaos: cloud outage begins (for %s)\n", dur)
		f.StartOutage(dur)
	})
	return nil
}

func main() {
	var (
		dbDir      = flag.String("db", "", "database directory (default: temp)")
		policy     = flag.String("policy", "mash", "placement policy: mash|local-only|cloud-only|cloud-lru")
		benchmarks = flag.String("benchmarks", "fillrandom,readrandom", "comma-separated benchmark list")
		num        = flag.Int("num", 50000, "number of keys")
		reads      = flag.Int("reads", 20000, "number of reads for read benchmarks")
		valueSize  = flag.Int("valuesize", 400, "value size in bytes")
		exp        = flag.String("exp", "", "run a paper experiment (fig1..fig12, tab2..tab4, all) instead of benchmarks")
		quick      = flag.Bool("quick", false, "shrink experiment datasets ~10x")
		seed       = flag.Int64("seed", 42, "workload RNG seed")
		compress   = flag.Bool("compress", false, "flate-compress SSTable data blocks")
		metrics    = flag.String("metrics-addr", "", "serve live metrics over HTTP on this address (/debug/vars, /stats)")
		tracePath  = flag.String("trace", "", "append engine events as JSON lines to this file (see `mashctl trace`)")
		dumpStats  = flag.Bool("stats", false, "print the DumpStats report after the benchmarks")
		faultGet   = flag.Float64("fault-get-rate", 0, "inject cloud GET failures with this probability [0,1]")
		faultPut   = flag.Float64("fault-put-rate", 0, "inject cloud PUT failures with this probability [0,1]")
		outage     = flag.String("outage", "", "script a full cloud outage as start,duration (e.g. 10s,30s)")
	)
	flag.Parse()

	if *exp == "list" {
		for _, e := range harness.List() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}
	if *exp != "" {
		cfg := harness.Config{BaseDir: *dbDir, Quick: *quick, Out: os.Stdout, Seed: *seed}
		if err := harness.Run(*exp, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "mashbench:", err)
			os.Exit(1)
		}
		return
	}

	p, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mashbench:", err)
		os.Exit(1)
	}
	dir := *dbDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "mashbench-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mashbench:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
	}
	opts := db.DefaultOptions()
	opts.Policy = p
	if *compress {
		opts.Compression = sstable.CompressionFlate
	}
	opts.TracePath = *tracePath
	var d *db.DB
	var faulty *storage.Faulty
	if *faultGet > 0 || *faultPut > 0 || *outage != "" {
		d, faulty, err = db.OpenAtChaos(dir, opts, storage.FaultConfig{
			Seed:         *seed,
			GetErrorRate: *faultGet,
			PutErrorRate: *faultPut,
		})
		if err == nil && *outage != "" {
			err = scheduleOutage(faulty, *outage)
		}
	} else {
		d, err = db.OpenAt(dir, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mashbench: open:", err)
		os.Exit(1)
	}
	defer d.Close()
	if *metrics != "" {
		obs.Serve(*metrics, d)
	}

	fmt.Printf("mashbench: policy=%s num=%d valuesize=%d dir=%s\n", p, *num, *valueSize, dir)
	for _, b := range strings.Split(*benchmarks, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if err := runBench(d, b, *num, *reads, *valueSize, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "mashbench: %s: %v\n", b, err)
			os.Exit(1)
		}
	}
	m := d.Metrics()
	fmt.Printf("\nlevels: files=%v\nlocal=%0.2fMB cloud=%0.2fMB pcacheHit=%.3f blockHit=%.3f\n",
		m.LevelFiles, float64(m.LocalBytes)/(1<<20), float64(m.CloudBytes)/(1<<20), m.PCacheHit, m.BlockHit)
	if rep, ok := d.CloudCost(); ok {
		fmt.Println("cloud bill:", rep)
	}
	if faulty != nil {
		fmt.Printf("chaos: injected=%d unavailable-reads=%d breaker=%s trips=%d degraded=%s pending=%d drained=%d\n",
			faulty.InjectedFaults(), unavailableReads.Load(), m.BreakerState, m.BreakerTrips,
			m.DegradedDur.Round(time.Millisecond), m.PendingTables, m.DrainedTables)
	}
	if *dumpStats {
		fmt.Println()
		fmt.Print(d.DumpStats())
	}
}

func parsePolicy(s string) (db.Policy, error) {
	switch s {
	case "mash":
		return db.PolicyMash, nil
	case "local-only", "local":
		return db.PolicyLocalOnly, nil
	case "cloud-only", "cloud":
		return db.PolicyCloudOnly, nil
	case "cloud-lru":
		return db.PolicyCloudLRU, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func runBench(d *db.DB, name string, num, reads, valueSize int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	val := make([]byte, valueSize)
	h := histogram.New()
	start := time.Now()
	ops := 0

	switch name {
	case "fillseq":
		for i := 0; i < num; i++ {
			s := time.Now()
			if err := d.Put([]byte(fmt.Sprintf("key%012d", i)), val); err != nil {
				return err
			}
			h.Record(time.Since(s))
			ops++
		}
	case "fillrandom":
		for i := 0; i < num; i++ {
			s := time.Now()
			if err := d.Put(ycsb.Key(uint64(rng.Intn(num))), val); err != nil {
				return err
			}
			h.Record(time.Since(s))
			ops++
		}
	case "readrandom":
		gen := ycsb.NewGenerator(ycsb.WorkloadC, uint64(num), valueSize, seed)
		for i := 0; i < reads; i++ {
			op := gen.Next()
			s := time.Now()
			if _, err := d.Get(op.Key); readErr(err) != nil {
				return err
			}
			h.Record(time.Since(s))
			ops++
		}
	case "readseq":
		it, err := d.NewIterator()
		if err != nil {
			return err
		}
		for it.First(); it.Valid() && ops < reads; it.Next() {
			ops++
		}
		if err := it.Close(); err != nil {
			return err
		}
	case "readwhilewriting":
		gen := ycsb.NewGenerator(ycsb.WorkloadA, uint64(num), valueSize, seed)
		for i := 0; i < reads; i++ {
			op := gen.Next()
			s := time.Now()
			switch op.Kind {
			case ycsb.OpRead:
				if _, err := d.Get(op.Key); readErr(err) != nil {
					return err
				}
			default:
				if err := d.Put(op.Key, val); err != nil {
					return err
				}
			}
			h.Record(time.Since(s))
			ops++
		}
	case "overwrite":
		// Rewrite existing keys repeatedly, stressing compaction debt.
		for i := 0; i < num; i++ {
			s := time.Now()
			if err := d.Put(ycsb.Key(uint64(i%max(num/4, 1))), val); err != nil {
				return err
			}
			h.Record(time.Since(s))
			ops++
		}
	case "deleterandom":
		for i := 0; i < num; i++ {
			s := time.Now()
			if err := d.Delete(ycsb.Key(uint64(rng.Intn(num)))); err != nil {
				return err
			}
			h.Record(time.Since(s))
			ops++
		}
	case "seekrandom":
		for i := 0; i < reads; i++ {
			s := time.Now()
			it, err := d.NewIterator()
			if err != nil {
				return err
			}
			it.Seek(ycsb.Key(uint64(rng.Intn(num))))
			for j := 0; j < 10 && it.Valid(); j++ {
				it.Next()
			}
			if err := it.Close(); err != nil {
				return err
			}
			h.Record(time.Since(s))
			ops++
		}
	case "compact":
		if err := d.CompactAll(); err != nil {
			return err
		}
		ops = 1
	default:
		return fmt.Errorf("unknown benchmark (have fillseq fillrandom overwrite deleterandom readrandom readseq seekrandom readwhilewriting compact)")
	}
	dur := time.Since(start)
	rate := float64(ops) / dur.Seconds()
	fmt.Printf("%-18s : %10.0f ops/s  (%d ops in %s)  %s\n",
		name, rate, ops, dur.Round(time.Millisecond), h)
	return nil
}
