package main

import (
	"testing"

	"rocksmash/internal/db"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]db.Policy{
		"mash":       db.PolicyMash,
		"local-only": db.PolicyLocalOnly,
		"local":      db.PolicyLocalOnly,
		"cloud-only": db.PolicyCloudOnly,
		"cloud":      db.PolicyCloudOnly,
		"cloud-lru":  db.PolicyCloudLRU,
	}
	for in, want := range cases {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("parsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy should error")
	}
}

func TestRunBenchAllBenchmarks(t *testing.T) {
	opts := db.DefaultOptions()
	opts.CloudLatency.GetFirstByte = 0
	opts.CloudLatency.PutFirstByte = 0
	opts.CloudLatency.MetaRTT = 0
	d, err := db.OpenAt(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, threads := range []int{1, 4} {
		for _, b := range []string{
			"fillseq", "fillrandom", "overwrite", "deleterandom",
			"readrandom", "readseq", "seekrandom", "readwhilewriting", "compact",
		} {
			if err := runBench(d, b, 200, 100, 64, threads, 1); err != nil {
				t.Fatalf("%s (threads=%d): %v", b, threads, err)
			}
		}
	}
	if err := runBench(d, "nope", 10, 10, 10, 1, 1); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}
