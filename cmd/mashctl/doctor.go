package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"rocksmash/internal/flight"
)

// cmdDoctor runs the offline postmortem analyzer over a flight-recorder
// incident bundle and prints the ranked findings. path may be a single
// committed bundle directory (holding incident.json) or a flight directory
// of bundles, in which case the newest bundle is diagnosed.
func cmdDoctor(path string) {
	if path == "" {
		fatal(errors.New("doctor: a bundle directory is required (mashctl doctor <bundle-dir>)"))
	}
	if _, err := os.Stat(filepath.Join(path, "incident.json")); err != nil {
		// Not a bundle itself — maybe the flight dir holding them.
		metas, lerr := flight.ListBundles(path)
		if lerr != nil || len(metas) == 0 {
			fatal(fmt.Errorf("doctor: %s is neither an incident bundle nor a directory of bundles", path))
		}
		path = metas[len(metas)-1].Dir
		fmt.Printf("diagnosing newest of %d bundles: %s\n\n", len(metas), path)
	}
	diag, err := flight.Analyze(path)
	if err != nil {
		fatal(err)
	}
	fmt.Print(diag.Render())
}
