package main

import (
	"fmt"
	"sort"
	"time"

	"rocksmash/internal/event"
)

// cmdTrace summarizes a JSONL engine trace (Options.TracePath): event
// counts, flush and per-level compaction activity with stage timings,
// upload and stall totals, cache churn, and the slowest individual events.
func cmdTrace(path string, top int) {
	recs, err := event.ReadTraceFile(path)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fmt.Println("empty trace")
		return
	}

	type levelAgg struct {
		count    int
		inBytes  int64
		outBytes int64
		dropped  int64
		read     time.Duration
		merge    time.Duration
		upload   time.Duration
		install  time.Duration
		total    time.Duration
	}
	type slowEvent struct {
		rec  event.Record
		what string
		dur  time.Duration
	}
	var (
		byType      = map[event.Type]int{}
		levels      = map[int]*levelAgg{}
		flushes     int
		flushBytes  int64
		flushDur    time.Duration
		uploads     int
		uploadBytes int64
		uploadDur   time.Duration
		retried     int
		stallDur    = map[string]time.Duration{}
		stallCount  = map[string]int{}
		admitBlocks int
		admitBytes  int64
		evictBlocks = map[string]int{}
		evictBytes  = map[string]int64{}
		groups      int
		groupBatch  int64
		groupOps    int64
		groupBytes  int64
		groupSynced int
		groupAmort  int64
		groupDur    time.Duration
		retries     int
		slowReads   int
		slowReadDur time.Duration
		retryByOp   = map[string]int{}
		pendingUps  int
		transitions = map[string]int{}
		slow        []slowEvent
	)
	for _, rec := range recs {
		byType[rec.Type]++
		e, err := rec.Decode()
		if err != nil {
			fmt.Printf("warning: %v\n", err)
			continue
		}
		switch e := e.(type) {
		case event.FlushEnd:
			flushes++
			flushBytes += e.Bytes
			flushDur += e.Duration
			slow = append(slow, slowEvent{rec, fmt.Sprintf("flush #%d (%s)", e.Table, sizeStr(e.Bytes)), e.Duration})
		case event.CompactionEnd:
			a := levels[e.Level]
			if a == nil {
				a = &levelAgg{}
				levels[e.Level] = a
			}
			a.count++
			a.inBytes += e.InputBytes
			a.outBytes += e.OutputBytes
			a.dropped += e.DroppedKeys
			a.read += e.ReadDur
			a.merge += e.MergeDur
			a.upload += e.UploadDur
			a.install += e.InstallDur
			a.total += e.Duration
			slow = append(slow, slowEvent{rec,
				fmt.Sprintf("compaction L%d->L%d (%s in)", e.Level, e.OutputLevel, sizeStr(e.InputBytes)), e.Duration})
		case event.TableUploaded:
			uploads++
			uploadBytes += e.Bytes
			uploadDur += e.Duration
			if e.Attempts > 1 {
				retried++
			}
			if e.Pending {
				pendingUps++
			}
			slow = append(slow, slowEvent{rec,
				fmt.Sprintf("upload #%d to %s (%s)", e.Table, e.Tier, sizeStr(e.Bytes)), e.Duration})
		case event.CommitGroup:
			groups++
			groupBatch += int64(e.Batches)
			groupOps += e.Ops
			groupBytes += e.Bytes
			if e.Synced {
				groupSynced++
				groupAmort += int64(e.Batches - 1)
			}
			groupDur += e.Duration
		case event.WriteStallEnd:
			stallDur[e.Reason] += e.Duration
			stallCount[e.Reason]++
			slow = append(slow, slowEvent{rec, "write stall (" + e.Reason + ")", e.Duration})
		case event.PCacheAdmit:
			admitBlocks += e.Blocks
			admitBytes += e.Bytes
		case event.PCacheEvict:
			evictBlocks[e.Reason] += e.Blocks
			evictBytes[e.Reason] += e.Bytes
		case event.CloudRetry:
			retries++
			retryByOp[e.Op]++
		case event.BreakerState:
			transitions[e.From+"->"+e.To]++
		case event.SlowRead:
			slowReads++
			slowReadDur += e.Duration
			slow = append(slow, slowEvent{rec,
				fmt.Sprintf("slow read %q via %s (%d tables)", e.Key, e.Path, e.Tables), e.Duration})
		}
	}

	first, last := recs[0].Time(), recs[len(recs)-1].Time()
	fmt.Printf("trace: %d events over %s (%s .. %s)\n",
		len(recs), last.Sub(first).Round(time.Millisecond),
		first.Format(time.TimeOnly), last.Format(time.TimeOnly))
	fmt.Println("\nevents by type:")
	types := make([]string, 0, len(byType))
	for t := range byType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Printf("  %-18s %6d\n", t, byType[event.Type(t)])
	}

	if flushes > 0 {
		fmt.Printf("\nflushes: %d, %s written, %s total (%s mean)\n",
			flushes, sizeStr(flushBytes), flushDur.Round(time.Millisecond),
			(flushDur / time.Duration(flushes)).Round(time.Microsecond))
	}
	if len(levels) > 0 {
		fmt.Println("\ncompactions by input level:")
		fmt.Printf("  %-6s %5s %10s %10s %9s %9s %9s %9s %9s %9s\n",
			"level", "n", "in", "out", "dropped", "read", "merge", "upload", "install", "total")
		lvls := make([]int, 0, len(levels))
		for l := range levels {
			lvls = append(lvls, l)
		}
		sort.Ints(lvls)
		for _, l := range lvls {
			a := levels[l]
			fmt.Printf("  L%-5d %5d %10s %10s %9d %9s %9s %9s %9s %9s\n",
				l, a.count, sizeStr(a.inBytes), sizeStr(a.outBytes), a.dropped,
				durStr(a.read), durStr(a.merge), durStr(a.upload), durStr(a.install), durStr(a.total))
		}
	}
	if groups > 0 {
		fmt.Printf("\ncommit groups: %d (%.2f batches/group, %d ops, %s), wal time %s (%s mean)\n",
			groups, float64(groupBatch)/float64(groups), groupOps, sizeStr(groupBytes),
			groupDur.Round(time.Millisecond), (groupDur / time.Duration(groups)).Round(time.Microsecond))
		if groupSynced > 0 {
			fmt.Printf("  synced groups: %d (%d fsyncs amortized by grouping)\n",
				groupSynced, groupAmort)
		}
	}
	if uploads > 0 {
		fmt.Printf("\nuploads: %d tables, %s, %s total; %d needed retries (%d retry events)\n",
			uploads, sizeStr(uploadBytes), uploadDur.Round(time.Millisecond), retried, retries)
	}
	if retries > 0 || pendingUps > 0 || len(transitions) > 0 {
		fmt.Println("\nrobustness:")
		if retries > 0 {
			ops := make([]string, 0, len(retryByOp))
			for op := range retryByOp {
				ops = append(ops, op)
			}
			sort.Strings(ops)
			for _, op := range ops {
				fmt.Printf("  cloud retries (%s): %d\n", op, retryByOp[op])
			}
		}
		if pendingUps > 0 {
			fmt.Printf("  degraded landings (pending-upload): %d\n", pendingUps)
		}
		if len(transitions) > 0 {
			ts := make([]string, 0, len(transitions))
			for tr := range transitions {
				ts = append(ts, tr)
			}
			sort.Strings(ts)
			for _, tr := range ts {
				fmt.Printf("  breaker %-20s %d\n", tr, transitions[tr])
			}
		}
	}
	if slowReads > 0 {
		fmt.Printf("\nslow reads: %d sampled, %s total (see `mashctl profile -f`)\n",
			slowReads, slowReadDur.Round(time.Microsecond))
	}
	if len(stallCount) > 0 {
		fmt.Println("\nwrite stalls:")
		for reason, n := range stallCount {
			fmt.Printf("  %-10s %4d stalls, %s blocked\n", reason, n, stallDur[reason].Round(time.Millisecond))
		}
	}
	if admitBlocks > 0 || len(evictBlocks) > 0 {
		fmt.Printf("\npcache: admitted %d blocks (%s)\n", admitBlocks, sizeStr(admitBytes))
		for reason, n := range evictBlocks {
			fmt.Printf("  evicted %d blocks (%s) via %s\n", n, sizeStr(evictBytes[reason]), reason)
		}
	}

	if top > 0 && len(slow) > 0 {
		sort.Slice(slow, func(i, j int) bool { return slow[i].dur > slow[j].dur })
		if len(slow) > top {
			slow = slow[:top]
		}
		fmt.Printf("\nslowest %d events:\n", len(slow))
		for _, s := range slow {
			fmt.Printf("  %10s  %s  %s\n",
				s.dur.Round(time.Microsecond), s.rec.Time().Format(time.TimeOnly), s.what)
		}
	}
}

func sizeStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func durStr(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(100 * time.Microsecond).String()
}
