package main

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"rocksmash/internal/event"
	"rocksmash/internal/readprof"
)

// cmdProfile renders the read-path profiler two ways:
//
//	mashctl profile -addr HOST:PORT   scrape a live /metrics endpoint and
//	                                  show per-level / per-tier attribution
//	mashctl profile -f trace.jsonl    summarize the SlowRead records an
//	                                  engine trace captured, worst first
func cmdProfile(addr, tracePath string, top int) {
	switch {
	case addr != "":
		if err := profileLive(addr); err != nil {
			fatal(err)
		}
	case tracePath != "":
		if err := profileTrace(tracePath, top); err != nil {
			fatal(err)
		}
	default:
		fatal(errors.New("profile: -addr (live endpoint) or -f (trace file) is required"))
	}
}

// promSample is one parsed exposition line: family name plus its label set
// in the exact text form it appeared ("" for unlabelled samples).
type promSample struct {
	name   string
	labels string
	value  float64
}

// parseProm parses Prometheus text exposition into samples, ignoring HELP,
// TYPE and anything it cannot parse — this is a display tool, not a
// validator.
func parseProm(text string) []promSample {
	var out []promSample
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		s := promSample{name: line[:sp], value: v}
		if i := strings.IndexByte(s.name, '{'); i >= 0 {
			if !strings.HasSuffix(s.name, "}") {
				continue
			}
			s.labels = s.name[i+1 : len(s.name)-1]
			s.name = s.name[:i]
		}
		out = append(out, s)
	}
	return out
}

// promTable indexes samples by family and label.
type promTable map[string]map[string]float64

func indexProm(samples []promSample) promTable {
	t := promTable{}
	for _, s := range samples {
		m := t[s.name]
		if m == nil {
			m = map[string]float64{}
			t[s.name] = m
		}
		m[s.labels] = s.value
	}
	return t
}

func (t promTable) get(name, labels string) float64 { return t[name][labels] }

// label builds the `key="value"` form the endpoint emits.
func label(key, value string) string { return fmt.Sprintf("%s=%q", key, value) }

func profileLive(addr string) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := strings.TrimSuffix(addr, "/") + "/metrics"
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	t := indexProm(parseProm(string(body)))

	profiled := t.get("rocksmash_read_profiled_total", "")
	fmt.Printf("reads: %.0f total, %.0f profiled, %.0f timed\n",
		t.get("rocksmash_reads_total", ""),
		profiled,
		t.get("rocksmash_read_timed_total", ""))
	if profiled == 0 {
		fmt.Println("no profiled reads yet (is the store serving Gets? is -profile-sample >= 0?)")
		return nil
	}

	tables := t.get("rocksmash_read_tables_total", "")
	var blocks, bytes float64
	for tr := readprof.Tier(0); tr < readprof.NumTiers; tr++ {
		blocks += t.get("rocksmash_read_blocks_total", label("tier", tr.String()))
		bytes += t.get("rocksmash_read_bytes_total", label("tier", tr.String()))
	}
	fmt.Printf("read amp: %.2f tables/get, %.2f blocks/get, %.0f B/get\n",
		tables/profiled, blocks/profiled, bytes/profiled)
	if checked := t.get("rocksmash_read_bloom_checked_total", ""); checked > 0 {
		neg := t.get("rocksmash_read_bloom_negative_total", "")
		fmt.Printf("bloom: %.0f checked, %.0f negative (%.3f true-negative rate)\n",
			checked, neg, neg/checked)
	}

	fmt.Printf("\n%-8s %10s %10s %12s %12s\n", "level", "serves", "probes", "pcache-hit", "pcache-miss")
	fmt.Printf("%-8s %10.0f %10s %12s %12s\n", "mem",
		t.get("rocksmash_read_level_serves_total", `level="mem"`), "-", "-", "-")
	for l := 0; ; l++ {
		lv := label("level", strconv.Itoa(l))
		serves, okS := t["rocksmash_read_level_serves_total"][lv]
		probes, okP := t["rocksmash_read_level_probes_total"][lv]
		if !okS && !okP {
			break
		}
		hits := t.get("rocksmash_pcache_level_hits_total", lv)
		misses := t.get("rocksmash_pcache_level_misses_total", lv)
		if serves == 0 && probes == 0 && hits == 0 && misses == 0 {
			continue
		}
		fmt.Printf("L%-7d %10.0f %10.0f %12.0f %12.0f\n", l, serves, probes, hits, misses)
	}
	if nf := t.get("rocksmash_read_level_serves_total", `level="none"`); nf > 0 {
		fmt.Printf("%-8s %10.0f %10s %12s %12s\n", "none", nf, "-", "-", "-")
	}
	unk := label("level", "unknown")
	if uh, um := t.get("rocksmash_pcache_level_hits_total", unk),
		t.get("rocksmash_pcache_level_misses_total", unk); uh+um > 0 {
		fmt.Printf("%-8s %10s %10s %12.0f %12.0f\n", "L?", "-", "-", uh, um)
	}

	fmt.Printf("\n%-12s %10s %12s %12s\n", "tier", "blocks", "KB", "time")
	for tr := readprof.Tier(0); tr < readprof.NumTiers; tr++ {
		lv := label("tier", tr.String())
		b := t.get("rocksmash_read_blocks_total", lv)
		if b == 0 {
			continue
		}
		fmt.Printf("%-12s %10.0f %12.1f %12s\n", tr, b,
			t.get("rocksmash_read_bytes_total", lv)/1024,
			time.Duration(t.get("rocksmash_read_fetch_seconds_total", lv)*float64(time.Second)).Round(time.Microsecond))
	}
	if seeks := t.get("rocksmash_iter_seeks_total", ""); seeks > 0 {
		fmt.Printf("\niterators: %.0f seeks", seeks)
		for tr := readprof.Tier(0); tr < readprof.NumTiers; tr++ {
			lv := label("tier", tr.String())
			if b := t.get("rocksmash_iter_blocks_total", lv); b > 0 {
				fmt.Printf(", %s %.0f blocks (%.1f KB)", tr, b, t.get("rocksmash_iter_bytes_total", lv)/1024)
			}
		}
		fmt.Println()
	}
	return nil
}

// profileTrace summarizes the SlowRead records in a JSONL engine trace.
func profileTrace(path string, top int) error {
	recs, err := event.ReadTraceFile(path)
	if err != nil {
		return err
	}
	type slowRec struct {
		rec event.Record
		e   event.SlowRead
	}
	var (
		slows   []slowRec
		byPath  = map[string]int{}
		pathDur = map[string]time.Duration{}
		total   time.Duration
	)
	for _, rec := range recs {
		if rec.Type != event.TSlowRead {
			continue
		}
		e, err := rec.Decode()
		if err != nil {
			fmt.Printf("warning: %v\n", err)
			continue
		}
		sr := e.(event.SlowRead)
		slows = append(slows, slowRec{rec, sr})
		byPath[sr.Path]++
		pathDur[sr.Path] += sr.Duration
		total += sr.Duration
	}
	if len(slows) == 0 {
		fmt.Println("no slow-read records in trace (profiler needs a listener: set -trace on the run)")
		return nil
	}

	fmt.Printf("slow reads: %d records, %s total\n", len(slows), total.Round(time.Microsecond))
	fmt.Println("\nby serve path:")
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool { return pathDur[paths[i]] > pathDur[paths[j]] })
	for _, p := range paths {
		n := byPath[p]
		fmt.Printf("  %-24s %5d reads, %10s total (%s mean)\n",
			p, n, pathDur[p].Round(time.Microsecond),
			(pathDur[p] / time.Duration(n)).Round(time.Microsecond))
	}

	sort.Slice(slows, func(i, j int) bool { return slows[i].e.Duration > slows[j].e.Duration })
	if top > 0 && len(slows) > top {
		slows = slows[:top]
	}
	fmt.Printf("\nslowest %d reads:\n", len(slows))
	for _, s := range slows {
		e := s.e
		fmt.Printf("  %10s  %s  key=%q via %s (%d levels, %d tables",
			e.Duration.Round(time.Microsecond), s.rec.Time().Format(time.TimeOnly),
			e.Key, e.Path, e.LevelsProbed, e.Tables)
		for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
			if e.Blocks[t] > 0 {
				fmt.Printf(", %s %d blk/%s", t, e.Blocks[t], e.FetchDur[t].Round(time.Microsecond))
			}
		}
		fmt.Println(")")
	}
	return nil
}
