// Command mashctl inspects an existing store without opening it for
// writing: the level layout and tier placement (manifest), individual
// SSTables, WAL segments, persistent-cache state, and the simulated cloud
// bill.
//
// Usage:
//
//	mashctl manifest -db /path/to/db
//	mashctl sst      -db /path/to/db -num 7
//	mashctl wal      -db /path/to/db
//	mashctl pcache   -db /path/to/db
//	mashctl cost     -db /path/to/db
//	mashctl verify   -db /path/to/db   # checksum-audit tables, sidecars, WAL
//	mashctl scrub    -db /path/to/db   # open the store and run a repairing scrub
//	mashctl trace    -f trace.jsonl    # summarize an engine event trace
//	mashctl profile  -addr host:port   # read-path attribution from a live /metrics
//	mashctl profile  -f trace.jsonl    # slow-read records captured in a trace
//	mashctl top      -addr host:port   # live refreshing dashboard from /vitals
//	mashctl top      -addr host:port -json  # one /vitals report as JSON and exit
//	mashctl doctor   /path/to/bundle   # ranked offline diagnosis of an incident bundle
package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/keys"
	"rocksmash/internal/manifest"
	"rocksmash/internal/pcache"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
	"rocksmash/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dbDir := fs.String("db", "", "database directory (as passed to Open)")
	num := fs.Uint64("num", 0, "table file number (sst command)")
	traceFile := fs.String("f", "", "trace file to summarize (trace/profile commands; default <db>/trace.jsonl)")
	top := fs.Int("top", 10, "number of slowest events to list (trace/profile commands)")
	addr := fs.String("addr", "", "live metrics endpoint to scrape (top/profile commands, e.g. 127.0.0.1:8080)")
	interval := fs.Duration("interval", time.Second, "dashboard refresh period (top command)")
	iters := fs.Int("n", 0, "number of dashboard refreshes, 0 = until interrupted (top command)")
	once := fs.Bool("once", false, "render a single dashboard frame and exit (top command)")
	jsonOut := fs.Bool("json", false, "emit one machine-readable /vitals report and exit; implies -once (top command)")
	fs.Parse(os.Args[2:])

	if cmd == "doctor" {
		// The bundle is self-contained: no -db, no live endpoint.
		cmdDoctor(fs.Arg(0))
		return
	}

	if cmd == "top" {
		cmdTop(*addr, *interval, *iters, *once, *jsonOut)
		return
	}

	if cmd == "profile" {
		path := *traceFile
		if path == "" && *addr == "" && *dbDir != "" {
			path = filepath.Join(*dbDir, "trace.jsonl")
		}
		cmdProfile(*addr, path, *top)
		return
	}

	if cmd == "trace" {
		// The trace file is self-contained; -db is only a default location.
		path := *traceFile
		if path == "" {
			if *dbDir == "" {
				fatal(errors.New("trace: -f (or -db) is required"))
			}
			path = filepath.Join(*dbDir, "trace.jsonl")
		}
		cmdTrace(path, *top)
		return
	}
	if *dbDir == "" {
		fatal(errors.New("-db is required"))
	}

	local, err := storage.NewLocal(filepath.Join(*dbDir, "local"))
	if err != nil {
		fatal(err)
	}

	// A store opened with Options.Shards > 1 keeps each sub-LSM's
	// manifest, WAL, and tables under a shard-NNN/ prefix; route the
	// per-shard commands through the same prefixes Open uses.
	shards := shardCount(local)

	switch cmd {
	case "manifest":
		eachShard(local, shards, func(sh storage.Backend, _ string) {
			cmdManifest(sh)
		})
	case "sst":
		prefix := ""
		if shards > 1 && *num > 0 {
			// File numbers are striped across shards: shard = num mod N.
			prefix = shardPrefix(int(*num % uint64(shards)))
		}
		cmdSST(*dbDir, storage.NewPrefix(local, prefix), *num, prefix)
	case "wal":
		eachShard(local, shards, func(sh storage.Backend, _ string) {
			cmdWAL(sh)
		})
	case "pcache":
		cmdPCache(*dbDir)
	case "cost":
		cmdCost(*dbDir)
	case "verify":
		var rep verifyReport
		eachShard(local, shards, func(sh storage.Backend, prefix string) {
			rep.merge(verifyStore(*dbDir, sh, prefix))
		})
		fmt.Printf("verified %d tables (%d blocks), %d sidecars, %d wal segments, %d sorted views\n",
			rep.tables, rep.blocks, rep.sidecars, rep.walSegments, rep.views)
		unrepaired := rep.badTables + rep.badSidecars + rep.badWAL + rep.badViews
		fmt.Printf("unrepaired damage: tables=%d sidecars=%d wal=%d views=%d (wal restored from backup: %d)\n",
			rep.badTables, rep.badSidecars, rep.badWAL, rep.badViews, rep.walRepaired)
		if unrepaired > 0 {
			os.Exit(1)
		}
	case "scrub":
		cmdScrub(*dbDir, local, shards)
	default:
		usage()
	}
}

// shardCount reads the root SHARDS marker; 1 means an unsharded store.
func shardCount(local storage.Backend) int {
	data, err := local.ReadAll("SHARDS")
	if err != nil {
		return 1
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || n < 1 {
		return 1
	}
	return n
}

func shardPrefix(i int) string { return fmt.Sprintf("shard-%03d/", i) }

// eachShard runs fn once per sub-LSM (with a per-shard header when the
// store is sharded), or once with the root backend when it is not.
func eachShard(local storage.Backend, shards int, fn func(sh storage.Backend, prefix string)) {
	if shards <= 1 {
		fn(local, "")
		return
	}
	for i := 0; i < shards; i++ {
		p := shardPrefix(i)
		fmt.Printf("== shard %d/%d ==\n", i, shards)
		fn(storage.NewPrefix(local, p), p)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mashctl {manifest|sst|wal|pcache|cost|verify|scrub|trace|profile|top|doctor} -db DIR [-num N] [-f TRACE] [-top N] [-addr HOST:PORT] [-interval D] [-n N] [-once] [-json]")
	fmt.Fprintln(os.Stderr, "       mashctl doctor BUNDLE-DIR   # offline diagnosis of a flight-recorder incident bundle")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mashctl:", err)
	os.Exit(1)
}

func cmdManifest(local storage.Backend) {
	v, nextNum, lastSeq, flushedSeq, err := manifest.Peek(local)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("nextFileNum=%d lastSeq=%d flushedSeq=%d files=%d\n",
		nextNum, lastSeq, flushedSeq, v.NumFiles())
	for l := 0; l < manifest.NumLevels; l++ {
		if len(v.Levels[l]) == 0 {
			continue
		}
		fmt.Printf("L%d (%d files, %d bytes):\n", l, len(v.Levels[l]), v.LevelSize(l))
		for _, f := range v.Levels[l] {
			fmt.Printf("  %s seq=[%d,%d]\n", f, f.MinSeq, f.MaxSeq)
		}
	}
}

func cmdSST(dbDir string, local storage.Backend, num uint64, prefix string) {
	if num == 0 {
		fatal(errors.New("sst: -num is required"))
	}
	name := manifest.TableName(num)
	f, err := local.Open(name)
	if errors.Is(err, storage.ErrNotFound) {
		cloud, cerr := storage.NewCloud(filepath.Join(dbDir, "cloud"), storage.NoLatency(), storage.DefaultCost())
		if cerr != nil {
			fatal(cerr)
		}
		f, err = storage.NewPrefix(cloud, prefix).Open(name)
	}
	if err != nil {
		fatal(err)
	}
	r, err := sstable.Open(f, num)
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	p := r.Properties()
	fmt.Printf("table #%d\n  entries=%d deletes=%d rawKeys=%dB rawVals=%dB\n",
		num, p.NumEntries, p.NumDeletes, p.RawKeyBytes, p.RawValBytes)
	fmt.Printf("  keys %q .. %q  seq=[%d,%d]\n",
		keys.UserKey(p.Smallest), keys.UserKey(p.Largest), p.MinSeq, p.MaxSeq)
	hs, err := r.DataHandles()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  dataBlocks=%d pinnedMetadata=%dB\n", len(hs), r.MetadataBytes())

	// When a sorted-view sidecar covers this table's level, dump the slice
	// of the global cursor run owned by this member.
	names, err := local.List(manifest.ViewPrefix)
	if err != nil {
		return
	}
	for _, vname := range names {
		data, err := local.ReadAll(vname)
		if err != nil {
			continue
		}
		vw, err := sstable.DecodeView(data)
		if err != nil {
			fmt.Printf("  %s: CORRUPT: %v\n", vname, err)
			continue
		}
		for mi, m := range vw.Members {
			if m != num {
				continue
			}
			fmt.Printf("  sorted view %s: member %d of %d, %d cursors total\n",
				vname, mi+1, len(vw.Members), len(vw.Entries))
			for ord, e := range vw.Entries {
				if int(e.Member) != mi {
					continue
				}
				fmt.Printf("    cursor %6d: block@%d+%d sep=%q\n",
					ord, e.H.Offset, e.H.Length, keys.UserKey(e.Sep))
			}
		}
	}
}

func cmdWAL(local storage.Backend) {
	m, err := wal.Open(local, wal.DefaultOptions(), 1)
	if err != nil {
		fatal(err)
	}
	segs := m.Segments()
	fmt.Printf("%d WAL segment(s)\n", len(segs))
	for _, s := range segs {
		state := "active/unsealed"
		if s.Closed {
			state = "closed"
		}
		fmt.Printf("  %s  %8dB  seq=[%d,%d]  %s\n",
			wal.SegmentName("wal", s.Num), s.Bytes, s.MinSeq, s.MaxSeq, state)
	}
}

func cmdPCache(dbDir string) {
	pc, err := pcache.New(pcache.DefaultOptions(filepath.Join(dbDir, "pcache")))
	if err != nil {
		fatal(err)
	}
	fmt.Println(pc)
	_ = pc.Close()
}

func cmdCost(dbDir string) {
	cloud, err := storage.NewCloud(filepath.Join(dbDir, "cloud"), storage.NoLatency(), storage.DefaultCost())
	if err != nil {
		fatal(err)
	}
	fmt.Println("note: request/egress counters reset per process; capacity is authoritative")
	fmt.Println(cloud.CostReport())
}

// verifyReport is the per-artifact outcome of one offline verification
// pass: how many artifacts of each class were checked and how many carry
// damage no backup could fix.
type verifyReport struct {
	tables, blocks, sidecars, walSegments, views int
	badTables, badSidecars, badWAL, badViews     int
	walRepaired                                  int
}

func (r *verifyReport) merge(o verifyReport) {
	r.tables += o.tables
	r.blocks += o.blocks
	r.sidecars += o.sidecars
	r.walSegments += o.walSegments
	r.views += o.views
	r.badTables += o.badTables
	r.badSidecars += o.badSidecars
	r.badWAL += o.badWAL
	r.badViews += o.badViews
	r.walRepaired += o.walRepaired
}

// tailOnlyFile backs a metadata-only sstable open: the sidecar holds just
// the table's metadata tail, so any read below it returns EOF.
type tailOnlyFile struct{ size int64 }

func (f tailOnlyFile) ReadAt([]byte, int64) (int, error) { return 0, io.EOF }
func (f tailOnlyFile) Size() int64                       { return f.size }
func (f tailOnlyFile) Close() error                      { return nil }

// verifyStore walks every local artifact of one (sub-)store — live tables
// on both tiers, metadata sidecars, sealed WAL segments — and verifies
// every checksum end to end. prefix selects the same shard subtree on the
// cloud tier that local already points at. WAL segments with a clean
// cloud-backup copy are restored in place; everything else only reports.
func verifyStore(dbDir string, local storage.Backend, prefix string) verifyReport {
	var rep verifyReport
	v, _, _, _, err := manifest.Peek(local)
	if err != nil {
		fatal(err)
	}
	rawCloud, err := storage.NewCloud(filepath.Join(dbDir, "cloud"), storage.NoLatency(), storage.DefaultCost())
	if err != nil {
		fatal(err)
	}
	cloud := storage.NewPrefix(rawCloud, prefix)
	v.AllFiles(func(level int, fm *manifest.FileMetadata) {
		var be storage.Backend = local
		if fm.Tier == storage.TierCloud {
			be = cloud
			if !verifySidecarFile(local, fm.Num, &rep) {
				fmt.Printf("  L%d %s: SIDECAR CORRUPT (delete meta/%06d.meta to rebuild from cloud)\n",
					level, fm, fm.Num)
			}
		}
		bad := 0
		f, err := be.Open(manifest.TableName(fm.Num))
		if err != nil {
			fmt.Printf("  L%d %s: OPEN FAILED: %v\n", level, fm, err)
			rep.badTables++
			return
		}
		r, err := sstable.Open(f, fm.Num)
		if err != nil {
			fmt.Printf("  L%d %s: METADATA CORRUPT: %v\n", level, fm, err)
			f.Close()
			rep.badTables++
			return
		}
		hs, err := r.DataHandles()
		if err != nil {
			fmt.Printf("  L%d %s: INDEX CORRUPT: %v\n", level, fm, err)
			r.Close()
			rep.badTables++
			return
		}
		for _, h := range hs {
			if _, err := sstable.ReadRawBlock(r.File(), h); err != nil {
				fmt.Printf("  L%d %s block@%d: %v\n", level, fm, h.Offset, err)
				bad++
			}
			rep.blocks++
		}
		r.Close()
		rep.tables++
		if bad > 0 {
			rep.badTables++
		}
	})

	// Sealed WAL segments: record-checksum walk with backup-tier restore,
	// the same pass the engine's own scrubber runs.
	wopts := wal.DefaultOptions()
	wopts.Backup = cloud
	if m, err := wal.Open(local, wopts, 1); err == nil {
		checked, corrupt, repaired := m.Scrub()
		rep.walSegments += checked
		rep.badWAL += corrupt - repaired
		rep.walRepaired += repaired
	}

	verifyViews(v, local, cloud, &rep)
	return rep
}

// verifyViews audits every sorted-view sidecar under view/: structural
// decode (checksum), fingerprint match against the live manifest, and a
// full cross-check of every cursor against the member tables' own block
// indexes. Stale sidecars (membership moved on) are reported but not
// damage — the engine ignores and sweeps them at the next open.
func verifyViews(v *manifest.Version, local, cloud storage.Backend, rep *verifyReport) {
	names, err := local.List(manifest.ViewPrefix)
	if err != nil {
		return
	}
	for _, name := range names {
		level, fp, ok := manifest.ParseViewName(name)
		if !ok {
			continue
		}
		rep.views++
		data, err := local.ReadAll(name)
		if err != nil {
			fmt.Printf("  %s: READ FAILED: %v\n", name, err)
			rep.badViews++
			continue
		}
		vw, err := sstable.DecodeView(data)
		if err != nil {
			fmt.Printf("  %s: VIEW CORRUPT: %v\n", name, err)
			rep.badViews++
			continue
		}
		if vw.Level != level {
			fmt.Printf("  %s: VIEW CORRUPT: encodes level %d\n", name, vw.Level)
			rep.badViews++
			continue
		}
		files := v.Levels[level]
		if manifest.ViewFingerprint(files) != fp {
			fmt.Printf("  %s: stale (level membership changed); would be swept at open\n", name)
			continue
		}
		if msg := crossCheckView(vw, files, local, cloud); msg != "" {
			fmt.Printf("  %s: MISMATCH: %s\n", name, msg)
			rep.badViews++
		}
	}
}

// crossCheckView re-derives the sorted cursor run from the member tables
// and compares it cursor by cursor, plus an explicit global separator
// ordering check. Returns a description of the first mismatch, or "".
func crossCheckView(vw *sstable.View, files []*manifest.FileMetadata, local, cloud storage.Backend) string {
	if len(vw.Members) != len(files) {
		return fmt.Sprintf("member count %d != level files %d", len(vw.Members), len(files))
	}
	nums := make([]uint64, len(files))
	indexes := make([][]sstable.IndexEntry, len(files))
	uppers := make([][]byte, len(files))
	for i, fm := range files {
		if vw.Members[i] != fm.Num {
			return fmt.Sprintf("member[%d]=%06d != level file %06d", i, vw.Members[i], fm.Num)
		}
		nums[i] = fm.Num
		uppers[i] = fm.Largest
		var be storage.Backend = local
		if fm.Tier == storage.TierCloud {
			be = cloud
		}
		f, err := be.Open(manifest.TableName(fm.Num))
		if err != nil {
			return fmt.Sprintf("member %06d open: %v", fm.Num, err)
		}
		r, err := sstable.Open(f, fm.Num)
		if err != nil {
			f.Close()
			return fmt.Sprintf("member %06d: %v", fm.Num, err)
		}
		es, err := r.IndexEntries()
		r.Close()
		if err != nil {
			return fmt.Sprintf("member %06d index: %v", fm.Num, err)
		}
		indexes[i] = es
	}
	ref := sstable.BuildView(vw.Level, nums, indexes, uppers)
	if len(ref.Entries) != len(vw.Entries) {
		return fmt.Sprintf("cursor count %d != derived %d", len(vw.Entries), len(ref.Entries))
	}
	for i := range ref.Entries {
		a, b := vw.Entries[i], ref.Entries[i]
		if a.Member != b.Member || a.H != b.H || !bytes.Equal(a.Sep, b.Sep) {
			return fmt.Sprintf("cursor %d: member=%d block@%d+%d sep=%q, derived member=%d block@%d+%d sep=%q",
				i, a.Member, a.H.Offset, a.H.Length, keys.UserKey(a.Sep),
				b.Member, b.H.Offset, b.H.Length, keys.UserKey(b.Sep))
		}
		if i > 0 && keys.Compare(vw.Entries[i-1].Sep, a.Sep) > 0 {
			return fmt.Sprintf("cursor %d: separator order violation", i)
		}
	}
	return ""
}

// verifySidecarFile structurally validates a cloud-tier table's local
// metadata sidecar, when one is cached. Returns false only for a present
// but corrupt sidecar.
func verifySidecarFile(local storage.Backend, num uint64, rep *verifyReport) bool {
	buf, err := local.ReadAll(fmt.Sprintf("meta/%06d.meta", num))
	if err != nil {
		return true // none cached; the next open rebuilds it from the cloud tail
	}
	rep.sidecars++
	ok := false
	if len(buf) >= 8 {
		tailOff := binary.LittleEndian.Uint64(buf)
		tail := buf[8:]
		f := tailOnlyFile{int64(tailOff) + int64(len(tail))}
		if r, err := sstable.Open(sstable.NewTailReader(f, int64(tailOff), tail), num); err == nil {
			_, herr := r.DataHandles()
			r.Close()
			ok = herr == nil
		}
	}
	if !ok {
		rep.badSidecars++
	}
	return ok
}

// cmdScrub opens the store read-write and runs one repairing scrub pass:
// corrupt local tables are re-materialized from their cloud copies,
// damaged sidecars dropped for rebuild, WAL segments restored from backup.
// Exits nonzero when damage survives the pass.
func cmdScrub(dbDir string, local storage.Backend, shards int) {
	opts := db.DefaultOptions()
	opts.Shards = shards
	d, err := db.OpenAt(dbDir, opts)
	if err != nil {
		fatal(err)
	}
	rep := d.Scrub()
	m := d.Metrics()
	if err := d.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("scrubbed %d artifacts: %d tables, %d sidecars, %d wal segments\n",
		rep.Checked, rep.Tables, rep.Sidecars, rep.WALSegments)
	fmt.Printf("corrupt=%d repaired=%d unrepaired=%d quarantined=%d\n",
		rep.Corrupt, rep.Repaired, rep.Unrepaired, m.QuarantinedTables)
	if rep.Unrepaired > 0 {
		os.Exit(1)
	}
}
