// Command mashctl inspects an existing store without opening it for
// writing: the level layout and tier placement (manifest), individual
// SSTables, WAL segments, persistent-cache state, and the simulated cloud
// bill.
//
// Usage:
//
//	mashctl manifest -db /path/to/db
//	mashctl sst      -db /path/to/db -num 7
//	mashctl wal      -db /path/to/db
//	mashctl pcache   -db /path/to/db
//	mashctl cost     -db /path/to/db
//	mashctl verify   -db /path/to/db   # checksum-audit every table block
//	mashctl trace    -f trace.jsonl    # summarize an engine event trace
//	mashctl profile  -addr host:port   # read-path attribution from a live /metrics
//	mashctl profile  -f trace.jsonl    # slow-read records captured in a trace
//	mashctl top      -addr host:port   # live refreshing dashboard from /vitals
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"rocksmash/internal/keys"
	"rocksmash/internal/manifest"
	"rocksmash/internal/pcache"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
	"rocksmash/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dbDir := fs.String("db", "", "database directory (as passed to Open)")
	num := fs.Uint64("num", 0, "table file number (sst command)")
	traceFile := fs.String("f", "", "trace file to summarize (trace/profile commands; default <db>/trace.jsonl)")
	top := fs.Int("top", 10, "number of slowest events to list (trace/profile commands)")
	addr := fs.String("addr", "", "live metrics endpoint to scrape (top/profile commands, e.g. 127.0.0.1:8080)")
	interval := fs.Duration("interval", time.Second, "dashboard refresh period (top command)")
	iters := fs.Int("n", 0, "number of dashboard refreshes, 0 = until interrupted (top command)")
	once := fs.Bool("once", false, "render a single dashboard frame and exit (top command)")
	fs.Parse(os.Args[2:])

	if cmd == "top" {
		cmdTop(*addr, *interval, *iters, *once)
		return
	}

	if cmd == "profile" {
		path := *traceFile
		if path == "" && *addr == "" && *dbDir != "" {
			path = filepath.Join(*dbDir, "trace.jsonl")
		}
		cmdProfile(*addr, path, *top)
		return
	}

	if cmd == "trace" {
		// The trace file is self-contained; -db is only a default location.
		path := *traceFile
		if path == "" {
			if *dbDir == "" {
				fatal(errors.New("trace: -f (or -db) is required"))
			}
			path = filepath.Join(*dbDir, "trace.jsonl")
		}
		cmdTrace(path, *top)
		return
	}
	if *dbDir == "" {
		fatal(errors.New("-db is required"))
	}

	local, err := storage.NewLocal(filepath.Join(*dbDir, "local"))
	if err != nil {
		fatal(err)
	}

	// A store opened with Options.Shards > 1 keeps each sub-LSM's
	// manifest, WAL, and tables under a shard-NNN/ prefix; route the
	// per-shard commands through the same prefixes Open uses.
	shards := shardCount(local)

	switch cmd {
	case "manifest":
		eachShard(local, shards, func(sh storage.Backend, _ string) {
			cmdManifest(sh)
		})
	case "sst":
		prefix := ""
		if shards > 1 && *num > 0 {
			// File numbers are striped across shards: shard = num mod N.
			prefix = shardPrefix(int(*num % uint64(shards)))
		}
		cmdSST(*dbDir, storage.NewPrefix(local, prefix), *num, prefix)
	case "wal":
		eachShard(local, shards, func(sh storage.Backend, _ string) {
			cmdWAL(sh)
		})
	case "pcache":
		cmdPCache(*dbDir)
	case "cost":
		cmdCost(*dbDir)
	case "verify":
		var files, blocks, bad int
		eachShard(local, shards, func(sh storage.Backend, prefix string) {
			f, bl, b := verifyStore(*dbDir, sh, prefix)
			files += f
			blocks += bl
			bad += b
		})
		fmt.Printf("verified %d files, %d blocks: %d problems\n", files, blocks, bad)
		if bad > 0 {
			os.Exit(1)
		}
	default:
		usage()
	}
}

// shardCount reads the root SHARDS marker; 1 means an unsharded store.
func shardCount(local storage.Backend) int {
	data, err := local.ReadAll("SHARDS")
	if err != nil {
		return 1
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || n < 1 {
		return 1
	}
	return n
}

func shardPrefix(i int) string { return fmt.Sprintf("shard-%03d/", i) }

// eachShard runs fn once per sub-LSM (with a per-shard header when the
// store is sharded), or once with the root backend when it is not.
func eachShard(local storage.Backend, shards int, fn func(sh storage.Backend, prefix string)) {
	if shards <= 1 {
		fn(local, "")
		return
	}
	for i := 0; i < shards; i++ {
		p := shardPrefix(i)
		fmt.Printf("== shard %d/%d ==\n", i, shards)
		fn(storage.NewPrefix(local, p), p)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mashctl {manifest|sst|wal|pcache|cost|verify|trace|profile|top} -db DIR [-num N] [-f TRACE] [-top N] [-addr HOST:PORT] [-interval D] [-n N] [-once]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mashctl:", err)
	os.Exit(1)
}

func cmdManifest(local storage.Backend) {
	v, nextNum, lastSeq, flushedSeq, err := manifest.Peek(local)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("nextFileNum=%d lastSeq=%d flushedSeq=%d files=%d\n",
		nextNum, lastSeq, flushedSeq, v.NumFiles())
	for l := 0; l < manifest.NumLevels; l++ {
		if len(v.Levels[l]) == 0 {
			continue
		}
		fmt.Printf("L%d (%d files, %d bytes):\n", l, len(v.Levels[l]), v.LevelSize(l))
		for _, f := range v.Levels[l] {
			fmt.Printf("  %s seq=[%d,%d]\n", f, f.MinSeq, f.MaxSeq)
		}
	}
}

func cmdSST(dbDir string, local storage.Backend, num uint64, prefix string) {
	if num == 0 {
		fatal(errors.New("sst: -num is required"))
	}
	name := manifest.TableName(num)
	f, err := local.Open(name)
	if errors.Is(err, storage.ErrNotFound) {
		cloud, cerr := storage.NewCloud(filepath.Join(dbDir, "cloud"), storage.NoLatency(), storage.DefaultCost())
		if cerr != nil {
			fatal(cerr)
		}
		f, err = storage.NewPrefix(cloud, prefix).Open(name)
	}
	if err != nil {
		fatal(err)
	}
	r, err := sstable.Open(f, num)
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	p := r.Properties()
	fmt.Printf("table #%d\n  entries=%d deletes=%d rawKeys=%dB rawVals=%dB\n",
		num, p.NumEntries, p.NumDeletes, p.RawKeyBytes, p.RawValBytes)
	fmt.Printf("  keys %q .. %q  seq=[%d,%d]\n",
		keys.UserKey(p.Smallest), keys.UserKey(p.Largest), p.MinSeq, p.MaxSeq)
	hs, err := r.DataHandles()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  dataBlocks=%d pinnedMetadata=%dB\n", len(hs), r.MetadataBytes())
}

func cmdWAL(local storage.Backend) {
	m, err := wal.Open(local, wal.DefaultOptions(), 1)
	if err != nil {
		fatal(err)
	}
	segs := m.Segments()
	fmt.Printf("%d WAL segment(s)\n", len(segs))
	for _, s := range segs {
		state := "active/unsealed"
		if s.Closed {
			state = "closed"
		}
		fmt.Printf("  %s  %8dB  seq=[%d,%d]  %s\n",
			wal.SegmentName("wal", s.Num), s.Bytes, s.MinSeq, s.MaxSeq, state)
	}
}

func cmdPCache(dbDir string) {
	pc, err := pcache.New(pcache.DefaultOptions(filepath.Join(dbDir, "pcache")))
	if err != nil {
		fatal(err)
	}
	fmt.Println(pc)
	_ = pc.Close()
}

func cmdCost(dbDir string) {
	cloud, err := storage.NewCloud(filepath.Join(dbDir, "cloud"), storage.NoLatency(), storage.DefaultCost())
	if err != nil {
		fatal(err)
	}
	fmt.Println("note: request/egress counters reset per process; capacity is authoritative")
	fmt.Println(cloud.CostReport())
}

// verifyStore walks every live table of one (sub-)store on both tiers and
// verifies every block checksum — a full scrub. prefix selects the same
// shard subtree on the cloud tier that local already points at.
func verifyStore(dbDir string, local storage.Backend, prefix string) (files, blocks, bad int) {
	v, _, _, _, err := manifest.Peek(local)
	if err != nil {
		fatal(err)
	}
	rawCloud, err := storage.NewCloud(filepath.Join(dbDir, "cloud"), storage.NoLatency(), storage.DefaultCost())
	if err != nil {
		fatal(err)
	}
	cloud := storage.NewPrefix(rawCloud, prefix)
	v.AllFiles(func(level int, fm *manifest.FileMetadata) {
		var be storage.Backend = local
		if fm.Tier == storage.TierCloud {
			be = cloud
		}
		f, err := be.Open(manifest.TableName(fm.Num))
		if err != nil {
			fmt.Printf("  L%d %s: OPEN FAILED: %v\n", level, fm, err)
			bad++
			return
		}
		r, err := sstable.Open(f, fm.Num)
		if err != nil {
			fmt.Printf("  L%d %s: METADATA CORRUPT: %v\n", level, fm, err)
			f.Close()
			bad++
			return
		}
		hs, err := r.DataHandles()
		if err != nil {
			fmt.Printf("  L%d %s: INDEX CORRUPT: %v\n", level, fm, err)
			r.Close()
			bad++
			return
		}
		for _, h := range hs {
			if _, err := sstable.ReadRawBlock(r.File(), h); err != nil {
				fmt.Printf("  L%d %s block@%d: %v\n", level, fm, h.Offset, err)
				bad++
			}
			blocks++
		}
		r.Close()
		files++
	})
	return files, blocks, bad
}
