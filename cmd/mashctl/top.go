package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"rocksmash/internal/vitals"
)

// cmdTop polls a live /vitals endpoint and renders a refreshing terminal
// dashboard: headline rate lines with sparkline history, cache hit
// ratios, the cloud bill rate, a breaker/degraded banner, shard balance,
// and a per-level table. once renders a single frame without clearing
// the screen (for scripts and tests); iters > 0 bounds the refresh count.
// jsonOut emits one raw vitals.Report as indented JSON and exits —
// machine-readable for scripts that would otherwise scrape the frame.
func cmdTop(addr string, interval time.Duration, iters int, once, jsonOut bool) {
	if addr == "" {
		fatal(errors.New("top: -addr is required (a live obs endpoint, e.g. 127.0.0.1:8080)"))
	}
	if interval <= 0 {
		interval = time.Second
	}
	url := "http://" + addr + "/vitals"
	if jsonOut {
		rep, err := fetchVitals(url)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	for i := 0; ; i++ {
		rep, err := fetchVitals(url)
		if err != nil {
			fatal(err)
		}
		frame := renderTop(addr, rep)
		if once {
			fmt.Print(frame)
			return
		}
		// Home + clear-to-end redraws in place without scrollback spam.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		if iters > 0 && i+1 >= iters {
			return
		}
		time.Sleep(interval)
	}
}

func fetchVitals(url string) (vitals.Report, error) {
	var rep vitals.Report
	resp, err := http.Get(url)
	if err != nil {
		return rep, fmt.Errorf("top: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("top: %s returned %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, fmt.Errorf("top: decoding %s: %w", url, err)
	}
	return rep, nil
}

// sparkRunes map a normalized series onto eight bar heights.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last width values of series as a unicode bar
// strip, scaled to the visible maximum.
func sparkline(series []float64, width int) string {
	if len(series) > width {
		series = series[len(series)-width:]
	}
	var max float64
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range series {
		idx := 0
		if max > 0 && v > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// humanRate renders an ops/s or bytes/s figure compactly.
func humanRate(v float64, unit string) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG %s", v/1e9, unit)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM %s", v/1e6, unit)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk %s", v/1e3, unit)
	default:
		return fmt.Sprintf("%.1f %s", v, unit)
	}
}

func humanSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// renderTop builds one dashboard frame.
func renderTop(addr string, rep vitals.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rocksmash top — %s — %s\n", addr, time.Now().Format("15:04:05"))
	if !rep.Enabled || rep.Latest == nil {
		b.WriteString("\n  vitals sampling is off: start the store with Options.VitalsInterval > 0\n")
		b.WriteString("  (mashbench/mashycsb: pass -vitals 1s)\n")
		return b.String()
	}
	s := *rep.Latest
	var w vitals.Window
	if rep.Window != nil {
		w = *rep.Window
	}
	fmt.Fprintf(&b, "sampled every %.1fs, %d samples retained\n\n", rep.IntervalSeconds, len(rep.Samples))

	// Breaker / degraded-mode banner: the one line an operator must see.
	if st := strings.ToLower(s.Breaker); st != "" && st != "closed" {
		fmt.Fprintf(&b, "  !! CLOUD BREAKER %s — degraded mode, %d tables (%s) pending upload\n\n",
			strings.ToUpper(s.Breaker), s.PendingTables, humanSize(s.PendingBytes))
	}

	// Sparkline history from the derived windows.
	const sparkWidth = 32
	writeHist := make([]float64, 0, len(rep.Windows))
	readHist := make([]float64, 0, len(rep.Windows))
	costHist := make([]float64, 0, len(rep.Windows))
	for _, win := range rep.Windows {
		writeHist = append(writeHist, win.WriteOpsPerSec)
		readHist = append(readHist, win.ReadOpsPerSec)
		costHist = append(costHist, win.DollarsPerHour.Total)
	}

	fmt.Fprintf(&b, "  writes  %14s  %s\n", humanRate(w.WriteOpsPerSec, "op/s"), sparkline(writeHist, sparkWidth))
	fmt.Fprintf(&b, "  reads   %14s  %s\n", humanRate(w.ReadOpsPerSec, "op/s"), sparkline(readHist, sparkWidth))
	fmt.Fprintf(&b, "  user    %14s  wamp %.2fx  ramp %.2f blk/get  group %.1f\n",
		humanRate(w.UserBytesPerSec, "B/s"), w.WriteAmp, w.ReadAmpBlocksPerGet, w.CommitGroupSize)
	fmt.Fprintf(&b, "  caches  block %5.1f%%   pcache %5.1f%%\n",
		w.BlockHitRatio*100, w.PCacheHitRatio*100)
	fmt.Fprintf(&b, "  cloud   GET %s (%s)  PUT %s (%s)\n",
		humanRate(w.CloudGetsPerSec, "op/s"), humanRate(w.CloudReadBytesPerSec, "B/s"),
		humanRate(w.CloudPutsPerSec, "op/s"), humanRate(w.CloudWriteBytesPerSec, "B/s"))
	fmt.Fprintf(&b, "  $/hr    %.4f total = storage %.4f + request %.4f + egress %.4f  %s\n",
		w.DollarsPerHour.Total, w.DollarsPerHour.Storage, w.DollarsPerHour.Request,
		w.DollarsPerHour.Egress, sparkline(costHist, sparkWidth))
	if w.OpsPerDollar > 0 {
		fmt.Fprintf(&b, "  value   %s per dollar-hour\n", humanRate(w.OpsPerDollar, "ops"))
	}
	fmt.Fprintf(&b, "  health  debt %s   space amp %.2fx   stalls %.1f/s",
		humanSize(w.CompactionDebt), w.SpaceAmp, w.StallsPerSec)
	if n := len(s.ShardOps); n > 1 {
		fmt.Fprintf(&b, "   shards %d (skew %.2f)", n, w.ShardSkew)
	}
	b.WriteString("\n\n")

	// Per-level table: shape, placement split, compaction attribution, and
	// the read-serve distribution — cumulative figures from the latest
	// sample.
	var servesTotal int64
	for _, n := range s.LevelServes {
		servesTotal += n
	}
	fmt.Fprintf(&b, "  %-6s %6s %10s %10s %10s %7s %8s\n",
		"level", "files", "bytes", "cmp-in", "cmp-out", "wamp", "serves")
	for l := range s.LevelFiles {
		var in, out, serves int64
		if l < len(s.LevelBytesIn) {
			in, out = s.LevelBytesIn[l], s.LevelBytesOut[l]
		}
		if l < len(s.LevelServes) {
			serves = s.LevelServes[l]
		}
		if s.LevelFiles[l] == 0 && in == 0 && serves == 0 {
			continue
		}
		wamp := "-"
		if in > 0 {
			wamp = fmt.Sprintf("%.2fx", float64(out)/float64(in))
		}
		srv := "-"
		if servesTotal > 0 {
			srv = fmt.Sprintf("%4.1f%%", float64(serves)/float64(servesTotal)*100)
		}
		fmt.Fprintf(&b, "  L%-5d %6d %10s %10s %10s %7s %8s\n",
			l, s.LevelFiles[l], humanSize(s.LevelBytes[l]),
			humanSize(in), humanSize(out), wamp, srv)
	}
	fmt.Fprintf(&b, "\n  placement: local %s, cloud %s, pending %s (%d tables)\n",
		humanSize(s.LocalBytes), humanSize(s.CloudBytes),
		humanSize(s.PendingBytes), s.PendingTables)
	return b.String()
}
