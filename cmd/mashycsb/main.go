// Command mashycsb runs YCSB core workloads against the store through the
// public API, reporting throughput and read/write latency percentiles.
//
// Usage:
//
//	mashycsb -workload A -records 100000 -ops 50000 -policy mash
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/histogram"
	"rocksmash/internal/obs"
	"rocksmash/internal/readprof"
	"rocksmash/internal/storage"
	"rocksmash/internal/ycsb"
)

// unavailableReads counts Gets answered with ErrCloudUnavailable during a
// chaos run: an expected degraded-mode outcome, not a workload failure.
var unavailableReads atomic.Int64

// readErr filters run-phase read errors the way the benchmarks expect:
// not-found is a normal outcome, and a typed cloud-unavailable error under
// fault injection is counted rather than fatal.
func readErr(err error) error {
	if err == nil || err == db.ErrNotFound {
		return nil
	}
	if errors.Is(err, db.ErrCloudUnavailable) {
		unavailableReads.Add(1)
		return nil
	}
	return err
}

// scheduleOutage parses "start,duration" and arms a one-shot full outage on
// the faulty cloud backend.
func scheduleOutage(f *storage.Faulty, spec string) error {
	parts := strings.SplitN(spec, ",", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad -outage %q, want start,duration (e.g. 10s,30s)", spec)
	}
	start, err := time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil {
		return fmt.Errorf("bad -outage start: %w", err)
	}
	dur, err := time.ParseDuration(strings.TrimSpace(parts[1]))
	if err != nil {
		return fmt.Errorf("bad -outage duration: %w", err)
	}
	if f == nil {
		return errors.New("-outage needs a cloud-tier policy")
	}
	time.AfterFunc(start, func() {
		fmt.Printf("chaos: cloud outage begins (for %s)\n", dur)
		f.StartOutage(dur)
	})
	return nil
}

func main() {
	var (
		dbDir      = flag.String("db", "", "database directory (default: temp)")
		policy     = flag.String("policy", "mash", "placement policy: mash|local-only|cloud-only|cloud-lru")
		workload   = flag.String("workload", "B", "YCSB core workload A-F")
		records    = flag.Int("records", 50000, "records to load")
		ops        = flag.Int("ops", 20000, "operations to run")
		threads    = flag.Int("threads", 1, "concurrent client goroutines for the load and run phases")
		shards     = flag.Int("shards", 1, "hash-partition the keyspace into this many independent sub-LSMs")
		valueSize  = flag.Int("valuesize", 400, "value size in bytes")
		seed       = flag.Int64("seed", 42, "workload RNG seed")
		metrics    = flag.String("metrics-addr", "", "serve live metrics over HTTP on this address (/metrics, /debug/vars, /stats, /vitals, /debug/pprof)")
		vitalsEach = flag.Duration("vitals", 0, "sample time-series vitals at this interval (0 = off; view with `mashctl top` via -metrics-addr)")
		profSample = flag.Int("profile-sample", 0, "time 1-in-N reads for the read-path profiler (0 = engine default, 1 = every read, -1 = off)")
		tracePath  = flag.String("trace", "", "append engine events as JSON lines to this file (see `mashctl trace`)")
		dumpStats  = flag.Bool("stats", false, "print the DumpStats report after the run")
		faultGet   = flag.Float64("fault-get-rate", 0, "inject cloud GET failures with this probability [0,1]")
		faultPut   = flag.Float64("fault-put-rate", 0, "inject cloud PUT failures with this probability [0,1]")
		outage     = flag.String("outage", "", "script a full cloud outage as start,duration (e.g. 10s,30s); the clock starts at the run phase")

		faultLocalCorrupt = flag.Float64("fault-local-corrupt-rate", 0, "flip a bit in local reads with this probability [0,1]")
		faultLocalBudget  = flag.Int64("fault-local-write-budget", 0, "fail local writes with ENOSPC after this many bytes (0 = unlimited)")
		faultLocalSync    = flag.Int("fault-local-sync-failures", 0, "fail the next N local fsyncs with EIO")
	)
	flag.Parse()

	wl, err := ycsb.ByName(*workload)
	if err != nil {
		fatal(err)
	}
	var p db.Policy
	switch *policy {
	case "mash":
		p = db.PolicyMash
	case "local-only", "local":
		p = db.PolicyLocalOnly
	case "cloud-only", "cloud":
		p = db.PolicyCloudOnly
	case "cloud-lru":
		p = db.PolicyCloudLRU
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	dir := *dbDir
	if dir == "" {
		if dir, err = os.MkdirTemp("", "mashycsb-*"); err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	opts := db.DefaultOptions()
	opts.Policy = p
	opts.TracePath = *tracePath
	opts.ReadProfileSampleRate = *profSample
	opts.Shards = *shards
	opts.VitalsInterval = *vitalsEach
	var d *db.DB
	var faulty, localFaulty *storage.Faulty
	localChaos := *faultLocalCorrupt > 0 || *faultLocalBudget > 0 || *faultLocalSync > 0
	switch {
	case localChaos:
		d, localFaulty, faulty, err = db.OpenAtChaosLocal(dir, opts,
			storage.FaultConfig{
				Seed:             *seed,
				CorruptRate:      *faultLocalCorrupt,
				WriteBudgetBytes: *faultLocalBudget,
				SyncFailures:     *faultLocalSync,
			},
			storage.FaultConfig{
				Seed:         *seed + 1,
				GetErrorRate: *faultGet,
				PutErrorRate: *faultPut,
			})
	case *faultGet > 0 || *faultPut > 0 || *outage != "":
		// Chaos runs keep the load phase healthy: random fault rates apply
		// from the start, but the scripted outage is armed at the run phase.
		d, faulty, err = db.OpenAtChaos(dir, opts, storage.FaultConfig{
			Seed:         *seed,
			GetErrorRate: *faultGet,
			PutErrorRate: *faultPut,
		})
	default:
		d, err = db.OpenAt(dir, opts)
	}
	if err != nil {
		fatal(err)
	}
	defer d.Close()
	if *metrics != "" {
		if srv, err := obs.Serve(*metrics, d); err != nil {
			fmt.Fprintln(os.Stderr, "mashycsb: metrics:", err)
		} else {
			fmt.Printf("metrics on http://%s/metrics\n", srv.Addr)
		}
	}

	// Load phase.
	nthreads := *threads
	if nthreads < 1 {
		nthreads = 1
	}
	fmt.Printf("loading %d records (%dB values) under policy %s, %d threads...\n",
		*records, *valueSize, p, nthreads)
	val := make([]byte, *valueSize)
	loadStart := time.Now()
	if err := eachRange(nthreads, *records, func(tid, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := d.Put(ycsb.Key(uint64(i)), val); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		fatal(err)
	}
	if err := d.CompactAll(); err != nil {
		if !errors.Is(err, db.ErrCloudUnavailable) {
			fatal(err)
		}
		fmt.Println("load compaction deferred: cloud unavailable")
	}
	fmt.Printf("load done in %s\n", time.Since(loadStart).Round(time.Millisecond))

	// Run phase.
	if *outage != "" && faulty != nil {
		if err := scheduleOutage(faulty, *outage); err != nil {
			fatal(err)
		}
	}
	// Each client thread drives its own generator (seed+tid) and records
	// into the shared concurrency-safe histograms; the report merges them.
	readH, writeH := histogram.New(), histogram.New()
	runStart := time.Now()
	if err := eachRange(nthreads, *ops, func(tid, lo, hi int) error {
		gen := ycsb.NewGenerator(wl, uint64(*records), *valueSize, *seed+int64(tid))
		for i := lo; i < hi; i++ {
			op := gen.Next()
			s := time.Now()
			switch op.Kind {
			case ycsb.OpRead:
				if _, err := d.Get(op.Key); readErr(err) != nil {
					return err
				}
				readH.Record(time.Since(s))
			case ycsb.OpUpdate, ycsb.OpInsert:
				if err := d.Put(op.Key, op.Value); err != nil {
					return err
				}
				writeH.Record(time.Since(s))
			case ycsb.OpScan:
				it, err := d.NewIterator()
				if err != nil {
					return err
				}
				it.Seek(op.Key)
				for j := 0; j < op.ScanLen && it.Valid(); j++ {
					it.Next()
				}
				if err := it.Close(); readErr(err) != nil {
					return err
				}
				readH.Record(time.Since(s))
			case ycsb.OpReadModifyWrite:
				if _, err := d.Get(op.Key); readErr(err) != nil {
					return err
				}
				if err := d.Put(op.Key, op.Value); err != nil {
					return err
				}
				writeH.Record(time.Since(s))
			}
		}
		return nil
	}); err != nil {
		fatal(err)
	}
	dur := time.Since(runStart)

	fmt.Printf("\nYCSB-%s on %s: %.0f ops/s (%d ops in %s, %d threads)\n",
		wl.Name, p, float64(*ops)/dur.Seconds(), *ops, dur.Round(time.Millisecond), nthreads)
	if readH.Count() > 0 {
		fmt.Println("  reads :", readH)
	}
	if writeH.Count() > 0 {
		fmt.Println("  writes:", writeH)
	}
	m := d.Metrics()
	fmt.Printf("  local=%.2fMB cloud=%.2fMB pcacheHit=%.3f blockHit=%.3f stalls=%d\n",
		float64(m.LocalBytes)/(1<<20), float64(m.CloudBytes)/(1<<20), m.PCacheHit, m.BlockHit, m.WriteStalls)
	if rep, ok := d.CloudCost(); ok {
		fmt.Println("  cloud bill:", rep)
	}
	if ra := m.ReadAmp; ra.ProfiledGets > 0 {
		fmt.Printf("  read profile: %d gets (%d timed), %.2f tables/get, %.2f blocks/get, bloom TN %.3f\n",
			ra.ProfiledGets, ra.TimedGets, ra.TablesPerGet(), ra.BlocksPerGet(), ra.BloomTrueNegativeRate())
		for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
			if ra.Blocks[t] == 0 {
				continue
			}
			fmt.Printf("    %-12s %10d blocks %10.1f KB %12s\n",
				t, ra.Blocks[t], float64(ra.Bytes[t])/1024,
				time.Duration(ra.FetchNanos[t]).Round(time.Microsecond))
		}
	}
	if faulty != nil {
		fmt.Printf("  chaos: injected=%d unavailable-reads=%d breaker=%s trips=%d degraded=%s pending=%d drained=%d\n",
			faulty.InjectedFaults(), unavailableReads.Load(), m.BreakerState, m.BreakerTrips,
			m.DegradedDur.Round(time.Millisecond), m.PendingTables, m.DrainedTables)
	}
	if localFaulty != nil {
		fmt.Printf("  local chaos: injected=%d corrupted-reads=%d breaker=%s trips=%d degraded-tables=%d drained-back=%d detected=%d repaired=%d unrepaired=%d\n",
			localFaulty.InjectedFaults(), localFaulty.CorruptedReads(), m.LocalBreakerState,
			m.LocalBreakerTrips, m.LocalDegradedTables, m.LocalDrainedBack,
			m.CorruptionsDetected, m.CorruptionsRepaired, m.CorruptionsUnrepaired)
	}
	if *dumpStats {
		fmt.Println()
		fmt.Print(d.DumpStats())
	}
}

// eachRange splits [0, total) into threads contiguous chunks and runs fn
// for each on its own goroutine, returning the first error.
func eachRange(threads, total int, fn func(tid, lo, hi int) error) error {
	if threads <= 1 {
		return fn(0, 0, total)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	per := total / threads
	for t := 0; t < threads; t++ {
		lo, hi := t*per, (t+1)*per
		if t == threads-1 {
			hi = total
		}
		wg.Add(1)
		go func(tid, lo, hi int) {
			defer wg.Done()
			if err := fn(tid, lo, hi); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(t, lo, hi)
	}
	wg.Wait()
	return firstErr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mashycsb:", err)
	os.Exit(1)
}
