// Command mashrecover demonstrates and measures crash recovery: it
// populates a store with WAL-only data, crashes it, and times recovery
// under the chosen WAL mode — stock serial replay or the extended WAL's
// parallel, skip-flushed replay.
//
// Usage:
//
//	mashrecover -walmb 64 -parallelism 4
//	mashrecover -walmb 64 -extended=false -parallelism 1   # stock RocksDB behaviour
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/ycsb"
)

func main() {
	var (
		dir         = flag.String("db", "", "database directory (default: temp)")
		walMB       = flag.Int("walmb", 32, "approximate WAL volume to recover, in MiB")
		parallelism = flag.Int("parallelism", 4, "recovery goroutines")
		extended    = flag.Bool("extended", true, "use the extended WAL (segment seq index)")
		segMB       = flag.Int("segmb", 4, "WAL segment size in MiB")
		verify      = flag.Bool("verify", true, "verify every recovered key")
		backup      = flag.Bool("backup", false, "replicate sealed WAL segments to the cloud tier")
		shards      = flag.Int("shards", 1, "hash-partition the keyspace into this many independent sub-LSMs (each recovers its WAL concurrently)")
	)
	flag.Parse()

	d := *dir
	if d == "" {
		var err error
		if d, err = os.MkdirTemp("", "mashrecover-*"); err != nil {
			fatal(err)
		}
		defer os.RemoveAll(d)
	}

	opts := db.DefaultOptions()
	opts.MemtableBytes = 1 << 30 // keep everything in the WAL
	opts.WALSegmentBytes = int64(*segMB) << 20
	opts.ExtendedWAL = *extended
	opts.RecoveryParallelism = *parallelism
	opts.WALCloudBackup = *backup
	opts.Shards = *shards

	store, err := db.OpenAt(d, opts)
	if err != nil {
		fatal(err)
	}

	const valLen = 1024
	n := (*walMB << 20) / (valLen + 32)
	fmt.Printf("writing %d records (~%d MiB of WAL)...\n", n, *walMB)
	val := make([]byte, valLen)
	for i := 0; i < n; i++ {
		if err := store.Put(ycsb.Key(uint64(i)), val); err != nil {
			fatal(err)
		}
	}
	fmt.Println("simulating crash (no flush, no clean close)")
	store.Crash()

	start := time.Now()
	recovered, err := db.OpenAt(d, opts)
	if err != nil {
		fatal(err)
	}
	defer recovered.Close()
	dur := time.Since(start)

	rep := recovered.RecoveryReport()
	fmt.Printf("\nrecovery completed in %s\n  %s\n", dur.Round(time.Millisecond), rep)
	if *shards > 1 {
		// Shards recover their WAL streams concurrently, each with its own
		// replay pool: the effective parallelism is the product.
		fmt.Printf("  sharding: %d shards recovered concurrently x %d goroutines each = %d-way parallelism\n",
			*shards, *parallelism, *shards**parallelism)
	}
	fmt.Printf("  throughput: %.1f MiB/s of WAL replayed\n",
		float64(rep.WALBytes)/(1<<20)/dur.Seconds())

	if *verify {
		missing := 0
		for i := 0; i < n; i++ {
			if _, err := recovered.Get(ycsb.Key(uint64(i))); err != nil {
				missing++
			}
		}
		if missing == 0 {
			fmt.Printf("  verification: all %d records intact — zero data loss\n", n)
		} else {
			fmt.Printf("  verification: %d/%d records MISSING\n", missing, n)
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mashrecover:", err)
	os.Exit(1)
}
