// Package obs exposes a running DB's metrics over HTTP for the command-line
// tools: Metrics() as JSON under /debug/vars (expvar wire format), the
// DumpStats() text report under /stats, Prometheus text exposition under
// /metrics, and net/http/pprof profiling under /debug/pprof/.
//
// Every handler is scoped to the DB passed to Serve/NewMux — two DBs in one
// process (tests, multi-DB tools) each serve their own numbers, and Serve
// returns the *http.Server so callers can shut the listener down.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/pcache"
	"rocksmash/internal/readprof"
)

// Serve starts an HTTP listener on addr (e.g. ":8080"; ":0" picks a free
// port) serving the DB's observability endpoints:
//
//	/debug/vars   expvar-format JSON with a "rocksmash" Metrics() snapshot
//	/stats        the DumpStats() multi-line text report
//	/metrics      Prometheus text exposition
//	/debug/pprof  runtime profiling (net/http/pprof)
//
// The returned server's Addr field holds the bound address (useful with
// ":0"); shut it down with srv.Close or srv.Shutdown. A listen failure is
// returned rather than killing the process: metrics are an observer, never
// a reason to fail a run.
func Serve(addr string, d *db.DB) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: NewMux(d)}
	go func() {
		// Serve returns ErrServerClosed on Shutdown/Close; nothing to report.
		_ = srv.Serve(ln)
	}()
	return srv, nil
}

// NewMux returns the observability handler tree for one DB, so tools and
// tests can mount it on their own listeners.
func NewMux(d *db.DB) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		// expvar's wire format, but scoped to this DB instead of the
		// process-global registry (which can only ever hold one "rocksmash"
		// var — the bug this replaces).
		enc, err := json.Marshal(d.Metrics())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "{\n\"rocksmash\": %s\n}\n", enc)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, d.DumpStats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, d.Metrics())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// promWriter emits Prometheus text exposition: one HELP/TYPE header per
// family, then samples.
type promWriter struct {
	w io.Writer
}

func (p promWriter) family(name, typ, help string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		name = name + "{" + labels + "}"
	}
	// %g keeps integers integral and avoids exponent noise for counters.
	fmt.Fprintf(p.w, "%s %g\n", name, v)
}

// WriteProm renders a Metrics snapshot as Prometheus text exposition.
func WriteProm(w io.Writer, m db.Metrics) {
	p := promWriter{w: w}

	p.family("rocksmash_reads_total", "counter", "Point lookups served.")
	p.sample("rocksmash_reads_total", "", float64(m.Reads))
	p.family("rocksmash_writes_total", "counter", "Write operations committed.")
	p.sample("rocksmash_writes_total", "", float64(m.Writes))
	p.family("rocksmash_write_stalls_total", "counter", "Writes stalled on background work.")
	p.sample("rocksmash_write_stalls_total", "", float64(m.WriteStalls))
	p.family("rocksmash_flushes_total", "counter", "Memtable flushes completed.")
	p.sample("rocksmash_flushes_total", "", float64(m.Flushes))
	p.family("rocksmash_compactions_total", "counter", "Compactions completed.")
	p.sample("rocksmash_compactions_total", "", float64(m.Compactions))

	ra := m.ReadAmp
	p.family("rocksmash_read_profiled_total", "counter", "Gets that carried a read profile.")
	p.sample("rocksmash_read_profiled_total", "", float64(ra.ProfiledGets))
	p.family("rocksmash_read_timed_total", "counter", "Profiled Gets with per-stage timings.")
	p.sample("rocksmash_read_timed_total", "", float64(ra.TimedGets))

	p.family("rocksmash_read_level_serves_total", "counter",
		"Profiled Gets resolved at each level (mem = memtable, none = not found).")
	p.sample("rocksmash_read_level_serves_total", `level="mem"`, float64(ra.MemServes))
	for l, n := range ra.LevelServes {
		p.sample("rocksmash_read_level_serves_total", fmt.Sprintf("level=%q", fmt.Sprint(l)), float64(n))
	}
	p.sample("rocksmash_read_level_serves_total", `level="none"`, float64(ra.NotFound))
	p.family("rocksmash_read_level_probes_total", "counter",
		"Profiled Gets that consulted tables at each level.")
	for l, n := range ra.LevelProbes {
		p.sample("rocksmash_read_level_probes_total", fmt.Sprintf("level=%q", fmt.Sprint(l)), float64(n))
	}

	p.family("rocksmash_read_tables_total", "counter", "Table readers consulted by profiled Gets.")
	p.sample("rocksmash_read_tables_total", "", float64(ra.Tables))
	p.family("rocksmash_read_bloom_checked_total", "counter", "Bloom filters consulted by profiled Gets.")
	p.sample("rocksmash_read_bloom_checked_total", "", float64(ra.BloomChecked))
	p.family("rocksmash_read_bloom_negative_total", "counter", "Bloom filters that rejected the probe.")
	p.sample("rocksmash_read_bloom_negative_total", "", float64(ra.BloomNegative))

	p.family("rocksmash_read_blocks_total", "counter", "Data blocks read by profiled Gets, by source tier.")
	for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
		p.sample("rocksmash_read_blocks_total", fmt.Sprintf("tier=%q", t), float64(ra.Blocks[t]))
	}
	p.family("rocksmash_read_bytes_total", "counter", "Data-block bytes read by profiled Gets, by source tier.")
	for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
		p.sample("rocksmash_read_bytes_total", fmt.Sprintf("tier=%q", t), float64(ra.Bytes[t]))
	}
	p.family("rocksmash_read_fetch_seconds_total", "counter",
		"Block-fetch time of timed Gets, by source tier.")
	for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
		p.sample("rocksmash_read_fetch_seconds_total", fmt.Sprintf("tier=%q", t),
			time.Duration(ra.FetchNanos[t]).Seconds())
	}

	p.family("rocksmash_iter_seeks_total", "counter", "Iterator positioning operations profiled.")
	p.sample("rocksmash_iter_seeks_total", "", float64(ra.IterSeeks))
	p.family("rocksmash_iter_blocks_total", "counter", "Data blocks read by profiled iterators, by source tier.")
	for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
		p.sample("rocksmash_iter_blocks_total", fmt.Sprintf("tier=%q", t), float64(ra.IterBlocks[t]))
	}
	p.family("rocksmash_iter_bytes_total", "counter", "Data-block bytes read by profiled iterators, by source tier.")
	for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
		p.sample("rocksmash_iter_bytes_total", fmt.Sprintf("tier=%q", t), float64(ra.IterBytes[t]))
	}

	p.family("rocksmash_pcache_level_hits_total", "counter",
		"Persistent-cache hits by LSM level (unknown = level not registered).")
	for b := 0; b < pcache.LevelBuckets; b++ {
		p.sample("rocksmash_pcache_level_hits_total", promLevelBucket(b), float64(ra.PCacheLevelHits[b]))
	}
	p.family("rocksmash_pcache_level_misses_total", "counter",
		"Persistent-cache misses by LSM level (unknown = level not registered).")
	for b := 0; b < pcache.LevelBuckets; b++ {
		p.sample("rocksmash_pcache_level_misses_total", promLevelBucket(b), float64(ra.PCacheLevelMisses[b]))
	}

	p.family("rocksmash_block_cache_hit_ratio", "gauge", "In-memory block cache hit ratio.")
	p.sample("rocksmash_block_cache_hit_ratio", "", m.BlockHit)
	p.family("rocksmash_pcache_hit_ratio", "gauge", "Persistent cache hit ratio.")
	p.sample("rocksmash_pcache_hit_ratio", "", m.PCacheHit)
	p.family("rocksmash_pcache_used_bytes", "gauge", "Persistent cache data bytes.")
	p.sample("rocksmash_pcache_used_bytes", "", float64(m.PCacheUsed))

	p.family("rocksmash_level_files", "gauge", "Live files per LSM level.")
	for l, n := range m.LevelFiles {
		p.sample("rocksmash_level_files", fmt.Sprintf("level=%q", fmt.Sprint(l)), float64(n))
	}
	p.family("rocksmash_level_bytes", "gauge", "Live bytes per LSM level.")
	for l, n := range m.LevelBytes {
		p.sample("rocksmash_level_bytes", fmt.Sprintf("level=%q", fmt.Sprint(l)), float64(n))
	}
	p.family("rocksmash_local_bytes", "gauge", "Table bytes on the local tier.")
	p.sample("rocksmash_local_bytes", "", float64(m.LocalBytes))
	p.family("rocksmash_cloud_bytes", "gauge", "Table bytes on the cloud tier.")
	p.sample("rocksmash_cloud_bytes", "", float64(m.CloudBytes))

	p.family("rocksmash_get_latency_seconds", "summary", "Point-lookup latency quantiles.")
	writePromSummary(p, "rocksmash_get_latency_seconds", m.GetLat)
	p.family("rocksmash_put_latency_seconds", "summary", "Commit latency quantiles (includes stall time).")
	writePromSummary(p, "rocksmash_put_latency_seconds", m.PutLat)
	p.family("rocksmash_cloud_get_latency_seconds", "summary", "Cloud GET latency quantiles.")
	writePromSummary(p, "rocksmash_cloud_get_latency_seconds", m.CloudGetLat)
}

func writePromSummary(p promWriter, name string, s db.LatencySummary) {
	p.sample(name, `quantile="0.5"`, s.P50.Seconds())
	p.sample(name, `quantile="0.9"`, s.P90.Seconds())
	p.sample(name, `quantile="0.99"`, s.P99.Seconds())
	p.sample(name+"_count", "", float64(s.Count))
	p.sample(name+"_sum", "", s.Mean.Seconds()*float64(s.Count))
}

func promLevelBucket(b int) string {
	if b == pcache.LevelUnknown {
		return `level="unknown"`
	}
	return fmt.Sprintf("level=%q", fmt.Sprint(b))
}
