// Package obs exposes a running DB's metrics over HTTP for the command-line
// tools: Metrics() as JSON under /debug/vars (expvar wire format), the
// DumpStats() text report under /stats, Prometheus text exposition under
// /metrics, the vitals time-series (sample ring + latest derived window)
// as JSON under /vitals, and net/http/pprof profiling under /debug/pprof/.
//
// Every handler is scoped to the DB passed to Serve/NewMux — two DBs in one
// process (tests, multi-DB tools) each serve their own numbers, and Serve
// returns the *http.Server so callers can shut the listener down.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/flight"
	"rocksmash/internal/pcache"
	"rocksmash/internal/readprof"
	"rocksmash/internal/vitals"
)

// Serve starts an HTTP listener on addr (e.g. ":8080"; ":0" picks a free
// port) serving the DB's observability endpoints:
//
//	/debug/vars   expvar-format JSON with a "rocksmash" Metrics() snapshot
//	/stats        the DumpStats() multi-line text report
//	/metrics      Prometheus text exposition
//	/vitals       vitals time-series JSON (ring dump + latest window);
//	              {"enabled": false} when Options.VitalsInterval is 0
//	/health       DB.Health() as JSON; HTTP 503 only when unhealthy, so
//	              load-balancer probes eject a dead store but keep a
//	              degraded one serving
//	/incidents    flight-recorder incident log and on-disk bundle list
//	/debug/pprof  runtime profiling (net/http/pprof)
//
// The returned server's Addr field holds the bound address (useful with
// ":0"); shut it down with srv.Close or srv.Shutdown. A listen failure is
// returned rather than killing the process: metrics are an observer, never
// a reason to fail a run.
func Serve(addr string, d *db.DB) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: NewMux(d)}
	go func() {
		// Serve returns ErrServerClosed on Shutdown/Close; nothing to report.
		_ = srv.Serve(ln)
	}()
	return srv, nil
}

// NewMux returns the observability handler tree for one DB, so tools and
// tests can mount it on their own listeners.
func NewMux(d *db.DB) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		// expvar's wire format, but scoped to this DB instead of the
		// process-global registry (which can only ever hold one "rocksmash"
		// var — the bug this replaces).
		enc, err := json.Marshal(d.Metrics())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "{\n\"rocksmash\": %s\n}\n", enc)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, d.DumpStats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, d.Metrics())
		if s := d.Vitals(); s != nil {
			if win, ok := s.LatestWindow(); ok {
				WritePromVitals(w, win)
			}
		}
		WritePromHealth(w, d.Health())
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		h := d.Health()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		// 503 only for unhealthy: a degraded store is still serving reads
		// and writes, and a probe that ejects it would turn an impaired
		// tier into an outage.
		if h.Status == db.HealthUnhealthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(h); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/incidents", func(w http.ResponseWriter, r *http.Request) {
		bundles, err := d.FlightBundles()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		resp := struct {
			Enabled   bool                `json:"enabled"`
			BundleDir string              `json:"bundle_dir,omitempty"`
			Incidents []flight.Incident   `json:"incidents"`
			Bundles   []flight.BundleMeta `json:"bundles"`
		}{
			Enabled:   d.FlightEnabled(),
			BundleDir: d.FlightBundleDir(),
			Incidents: d.Incidents(),
			Bundles:   bundles,
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/vitals", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var rep vitals.Report
		if s := d.Vitals(); s != nil {
			rep = s.Report()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// promWriter emits Prometheus text exposition: one HELP/TYPE header per
// family, then samples.
type promWriter struct {
	w io.Writer
}

func (p promWriter) family(name, typ, help string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		name = name + "{" + labels + "}"
	}
	// %g keeps integers integral and avoids exponent noise for counters.
	fmt.Fprintf(p.w, "%s %g\n", name, v)
}

// WriteProm renders a Metrics snapshot as Prometheus text exposition.
func WriteProm(w io.Writer, m db.Metrics) {
	p := promWriter{w: w}

	p.family("rocksmash_reads_total", "counter", "Point lookups served.")
	p.sample("rocksmash_reads_total", "", float64(m.Reads))
	p.family("rocksmash_writes_total", "counter", "Write operations committed.")
	p.sample("rocksmash_writes_total", "", float64(m.Writes))
	p.family("rocksmash_write_stalls_total", "counter", "Writes stalled on background work.")
	p.sample("rocksmash_write_stalls_total", "", float64(m.WriteStalls))
	p.family("rocksmash_flushes_total", "counter", "Memtable flushes completed.")
	p.sample("rocksmash_flushes_total", "", float64(m.Flushes))
	p.family("rocksmash_compactions_total", "counter", "Compactions completed.")
	p.sample("rocksmash_compactions_total", "", float64(m.Compactions))

	ra := m.ReadAmp
	p.family("rocksmash_read_profiled_total", "counter", "Gets that carried a read profile.")
	p.sample("rocksmash_read_profiled_total", "", float64(ra.ProfiledGets))
	p.family("rocksmash_read_timed_total", "counter", "Profiled Gets with per-stage timings.")
	p.sample("rocksmash_read_timed_total", "", float64(ra.TimedGets))

	p.family("rocksmash_read_level_serves_total", "counter",
		"Profiled Gets resolved at each level (mem = memtable, none = not found).")
	p.sample("rocksmash_read_level_serves_total", `level="mem"`, float64(ra.MemServes))
	for l, n := range ra.LevelServes {
		p.sample("rocksmash_read_level_serves_total", fmt.Sprintf("level=%q", fmt.Sprint(l)), float64(n))
	}
	p.sample("rocksmash_read_level_serves_total", `level="none"`, float64(ra.NotFound))
	p.family("rocksmash_read_level_probes_total", "counter",
		"Profiled Gets that consulted tables at each level.")
	for l, n := range ra.LevelProbes {
		p.sample("rocksmash_read_level_probes_total", fmt.Sprintf("level=%q", fmt.Sprint(l)), float64(n))
	}

	p.family("rocksmash_read_tables_total", "counter", "Table readers consulted by profiled Gets.")
	p.sample("rocksmash_read_tables_total", "", float64(ra.Tables))
	p.family("rocksmash_read_bloom_checked_total", "counter", "Bloom filters consulted by profiled Gets.")
	p.sample("rocksmash_read_bloom_checked_total", "", float64(ra.BloomChecked))
	p.family("rocksmash_read_bloom_negative_total", "counter", "Bloom filters that rejected the probe.")
	p.sample("rocksmash_read_bloom_negative_total", "", float64(ra.BloomNegative))

	p.family("rocksmash_read_blocks_total", "counter", "Data blocks read by profiled Gets, by source tier.")
	for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
		p.sample("rocksmash_read_blocks_total", fmt.Sprintf("tier=%q", t), float64(ra.Blocks[t]))
	}
	p.family("rocksmash_read_bytes_total", "counter", "Data-block bytes read by profiled Gets, by source tier.")
	for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
		p.sample("rocksmash_read_bytes_total", fmt.Sprintf("tier=%q", t), float64(ra.Bytes[t]))
	}
	p.family("rocksmash_read_fetch_seconds_total", "counter",
		"Block-fetch time of timed Gets, by source tier.")
	for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
		p.sample("rocksmash_read_fetch_seconds_total", fmt.Sprintf("tier=%q", t),
			time.Duration(ra.FetchNanos[t]).Seconds())
	}

	p.family("rocksmash_iter_seeks_total", "counter", "Iterator positioning operations profiled.")
	p.sample("rocksmash_iter_seeks_total", "", float64(ra.IterSeeks))
	p.family("rocksmash_iter_blocks_total", "counter", "Data blocks read by profiled iterators, by source tier.")
	for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
		p.sample("rocksmash_iter_blocks_total", fmt.Sprintf("tier=%q", t), float64(ra.IterBlocks[t]))
	}
	p.family("rocksmash_iter_bytes_total", "counter", "Data-block bytes read by profiled iterators, by source tier.")
	for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
		p.sample("rocksmash_iter_bytes_total", fmt.Sprintf("tier=%q", t), float64(ra.IterBytes[t]))
	}

	p.family("rocksmash_pcache_level_hits_total", "counter",
		"Persistent-cache hits by LSM level (unknown = level not registered).")
	for b := 0; b < pcache.LevelBuckets; b++ {
		p.sample("rocksmash_pcache_level_hits_total", promLevelBucket(b), float64(ra.PCacheLevelHits[b]))
	}
	p.family("rocksmash_pcache_level_misses_total", "counter",
		"Persistent-cache misses by LSM level (unknown = level not registered).")
	for b := 0; b < pcache.LevelBuckets; b++ {
		p.sample("rocksmash_pcache_level_misses_total", promLevelBucket(b), float64(ra.PCacheLevelMisses[b]))
	}

	p.family("rocksmash_block_cache_hit_ratio", "gauge", "In-memory block cache hit ratio.")
	p.sample("rocksmash_block_cache_hit_ratio", "", m.BlockHit)
	p.family("rocksmash_pcache_hit_ratio", "gauge", "Persistent cache hit ratio.")
	p.sample("rocksmash_pcache_hit_ratio", "", m.PCacheHit)
	p.family("rocksmash_pcache_used_bytes", "gauge", "Persistent cache data bytes.")
	p.sample("rocksmash_pcache_used_bytes", "", float64(m.PCacheUsed))

	p.family("rocksmash_level_files", "gauge", "Live files per LSM level.")
	for l, n := range m.LevelFiles {
		p.sample("rocksmash_level_files", fmt.Sprintf("level=%q", fmt.Sprint(l)), float64(n))
	}
	p.family("rocksmash_level_bytes", "gauge", "Live bytes per LSM level.")
	for l, n := range m.LevelBytes {
		p.sample("rocksmash_level_bytes", fmt.Sprintf("level=%q", fmt.Sprint(l)), float64(n))
	}
	p.family("rocksmash_local_bytes", "gauge", "Table bytes on the local tier.")
	p.sample("rocksmash_local_bytes", "", float64(m.LocalBytes))
	p.family("rocksmash_cloud_bytes", "gauge", "Table bytes on the cloud tier.")
	p.sample("rocksmash_cloud_bytes", "", float64(m.CloudBytes))

	// Per-level compaction attribution and the derived health gauges.
	if len(m.LevelWriteAmp) > 0 {
		p.family("rocksmash_level_compactions_total", "counter",
			"Compactions picked at each source level.")
		for _, lw := range m.LevelWriteAmp {
			p.sample("rocksmash_level_compactions_total", promLevel(lw.Level), float64(lw.Count))
		}
		p.family("rocksmash_level_compact_bytes_in_total", "counter",
			"Bytes read by compactions at each source level (source inputs + target overlap).")
		for _, lw := range m.LevelWriteAmp {
			p.sample("rocksmash_level_compact_bytes_in_total", promLevel(lw.Level),
				float64(lw.BytesInSource+lw.BytesInTarget))
		}
		p.family("rocksmash_level_compact_bytes_out_total", "counter",
			"Bytes written by compactions at each source level.")
		for _, lw := range m.LevelWriteAmp {
			p.sample("rocksmash_level_compact_bytes_out_total", promLevel(lw.Level), float64(lw.BytesOut))
		}
		p.family("rocksmash_level_write_amp", "gauge",
			"Per-source-level write amplification (bytes out per source byte).")
		for _, lw := range m.LevelWriteAmp {
			p.sample("rocksmash_level_write_amp", promLevel(lw.Level), lw.WriteAmp())
		}
	}
	p.family("rocksmash_write_amp", "gauge",
		"Cumulative write amplification: physical table bytes per user byte.")
	p.sample("rocksmash_write_amp", "", m.WriteAmp())
	p.family("rocksmash_compaction_debt_bytes", "gauge",
		"Estimated bytes compaction must move to restore level targets.")
	p.sample("rocksmash_compaction_debt_bytes", "", float64(m.CompactionDebt))
	p.family("rocksmash_space_amp", "gauge",
		"Space amplification estimate: total table bytes over deepest level bytes.")
	p.sample("rocksmash_space_amp", "", m.SpaceAmp)

	// Per-shard attribution (sharded stores only): shard imbalance must be
	// scrapeable, not just visible in DumpStats.
	if len(m.Shards) > 0 {
		shard := func(i int) string { return fmt.Sprintf("shard=%q", fmt.Sprint(i)) }
		p.family("rocksmash_shard_writes_total", "counter", "Write operations committed per keyspace shard.")
		for _, s := range m.Shards {
			p.sample("rocksmash_shard_writes_total", shard(s.Shard), float64(s.Writes))
		}
		p.family("rocksmash_shard_reads_total", "counter", "Point lookups served per keyspace shard.")
		for _, s := range m.Shards {
			p.sample("rocksmash_shard_reads_total", shard(s.Shard), float64(s.Reads))
		}
		p.family("rocksmash_shard_flushes_total", "counter", "Memtable flushes per keyspace shard.")
		for _, s := range m.Shards {
			p.sample("rocksmash_shard_flushes_total", shard(s.Shard), float64(s.Flushes))
		}
		p.family("rocksmash_shard_compactions_total", "counter", "Compactions per keyspace shard.")
		for _, s := range m.Shards {
			p.sample("rocksmash_shard_compactions_total", shard(s.Shard), float64(s.Compactions))
		}
		p.family("rocksmash_shard_write_stalls_total", "counter", "Write stalls per keyspace shard.")
		for _, s := range m.Shards {
			p.sample("rocksmash_shard_write_stalls_total", shard(s.Shard), float64(s.WriteStalls))
		}
		p.family("rocksmash_shard_bytes", "gauge", "Live table bytes per keyspace shard.")
		for _, s := range m.Shards {
			p.sample("rocksmash_shard_bytes", shard(s.Shard), float64(s.Bytes))
		}
		p.family("rocksmash_shard_files", "gauge", "Live table files per keyspace shard.")
		for _, s := range m.Shards {
			p.sample("rocksmash_shard_files", shard(s.Shard), float64(s.Files))
		}
		p.family("rocksmash_shard_pending_tables", "gauge",
			"Degraded-mode tables awaiting cloud upload per keyspace shard.")
		for _, s := range m.Shards {
			p.sample("rocksmash_shard_pending_tables", shard(s.Shard), float64(s.PendingTables))
		}
	}

	// Flight-recorder incident counters (all zero when the recorder is off).
	p.family("rocksmash_incidents_triggered_total", "counter",
		"Anomaly-detector incidents fired by the flight recorder.")
	p.sample("rocksmash_incidents_triggered_total", "", float64(m.IncidentsTriggered))
	p.family("rocksmash_incidents_suppressed_total", "counter",
		"Detector firings swallowed by per-rule cooldowns.")
	p.sample("rocksmash_incidents_suppressed_total", "", float64(m.IncidentsSuppressed))
	p.family("rocksmash_flight_bundles_written_total", "counter",
		"Incident postmortem bundles committed to disk.")
	p.sample("rocksmash_flight_bundles_written_total", "", float64(m.BundlesWritten))
	p.family("rocksmash_flight_bundle_errors_total", "counter",
		"Incident bundle dumps that failed to commit.")
	p.sample("rocksmash_flight_bundle_errors_total", "", float64(m.BundleErrors))

	p.family("rocksmash_get_latency_seconds", "summary", "Point-lookup latency quantiles.")
	writePromSummary(p, "rocksmash_get_latency_seconds", m.GetLat)
	p.family("rocksmash_put_latency_seconds", "summary", "Commit latency quantiles (includes stall time).")
	writePromSummary(p, "rocksmash_put_latency_seconds", m.PutLat)
	p.family("rocksmash_flush_latency_seconds", "summary", "Memtable flush latency quantiles.")
	writePromSummary(p, "rocksmash_flush_latency_seconds", m.FlushLat)
	p.family("rocksmash_compact_latency_seconds", "summary", "Compaction latency quantiles.")
	writePromSummary(p, "rocksmash_compact_latency_seconds", m.CompactLat)
	p.family("rocksmash_local_get_latency_seconds", "summary", "Local-tier GET latency quantiles.")
	writePromSummary(p, "rocksmash_local_get_latency_seconds", m.LocalGetLat)
	p.family("rocksmash_local_put_latency_seconds", "summary", "Local-tier PUT latency quantiles.")
	writePromSummary(p, "rocksmash_local_put_latency_seconds", m.LocalPutLat)
	p.family("rocksmash_cloud_get_latency_seconds", "summary", "Cloud GET latency quantiles.")
	writePromSummary(p, "rocksmash_cloud_get_latency_seconds", m.CloudGetLat)
	p.family("rocksmash_cloud_put_latency_seconds", "summary", "Cloud PUT latency quantiles.")
	writePromSummary(p, "rocksmash_cloud_put_latency_seconds", m.CloudPutLat)
}

// WritePromVitals renders the latest vitals window as Prometheus gauges —
// the sampler's derived rates, so dashboards get windowed figures without
// running their own rate() over raw counters.
func WritePromVitals(w io.Writer, win vitals.Window) {
	p := promWriter{w: w}
	p.family("rocksmash_vitals_window_seconds", "gauge", "Width of the vitals rate window.")
	p.sample("rocksmash_vitals_window_seconds", "", win.Seconds)
	p.family("rocksmash_vitals_write_ops_per_second", "gauge", "Windowed write throughput.")
	p.sample("rocksmash_vitals_write_ops_per_second", "", win.WriteOpsPerSec)
	p.family("rocksmash_vitals_read_ops_per_second", "gauge", "Windowed read throughput.")
	p.sample("rocksmash_vitals_read_ops_per_second", "", win.ReadOpsPerSec)
	p.family("rocksmash_vitals_write_amp", "gauge", "Windowed write amplification.")
	p.sample("rocksmash_vitals_write_amp", "", win.WriteAmp)
	p.family("rocksmash_vitals_read_amp_blocks_per_get", "gauge", "Windowed blocks per profiled Get.")
	p.sample("rocksmash_vitals_read_amp_blocks_per_get", "", win.ReadAmpBlocksPerGet)
	p.family("rocksmash_vitals_block_cache_hit_ratio", "gauge", "Block cache hit ratio over the window.")
	p.sample("rocksmash_vitals_block_cache_hit_ratio", "", win.BlockHitRatio)
	p.family("rocksmash_vitals_pcache_hit_ratio", "gauge", "Persistent cache hit ratio over the window.")
	p.sample("rocksmash_vitals_pcache_hit_ratio", "", win.PCacheHitRatio)
	p.family("rocksmash_vitals_commit_group_size", "gauge", "Windowed mean batches per commit group.")
	p.sample("rocksmash_vitals_commit_group_size", "", win.CommitGroupSize)
	p.family("rocksmash_vitals_shard_skew", "gauge",
		"Windowed shard balance skew: (max-min)/mean of per-shard op deltas.")
	p.sample("rocksmash_vitals_shard_skew", "", win.ShardSkew)
	p.family("rocksmash_vitals_cloud_read_bytes_per_second", "gauge", "Windowed cloud read bandwidth.")
	p.sample("rocksmash_vitals_cloud_read_bytes_per_second", "", win.CloudReadBytesPerSec)
	p.family("rocksmash_vitals_cloud_write_bytes_per_second", "gauge", "Windowed cloud write bandwidth.")
	p.sample("rocksmash_vitals_cloud_write_bytes_per_second", "", win.CloudWriteBytesPerSec)
	p.family("rocksmash_vitals_dollars_per_hour", "gauge",
		"Windowed cloud cost rate by component.")
	p.sample("rocksmash_vitals_dollars_per_hour", `component="storage"`, win.DollarsPerHour.Storage)
	p.sample("rocksmash_vitals_dollars_per_hour", `component="request"`, win.DollarsPerHour.Request)
	p.sample("rocksmash_vitals_dollars_per_hour", `component="egress"`, win.DollarsPerHour.Egress)
	p.sample("rocksmash_vitals_dollars_per_hour", `component="total"`, win.DollarsPerHour.Total)
	p.family("rocksmash_vitals_ops_per_dollar", "gauge",
		"Windowed throughput per dollar: ops/s over $/hour.")
	p.sample("rocksmash_vitals_ops_per_dollar", "", win.OpsPerDollar)
	p.family("rocksmash_vitals_get_p99_seconds", "gauge",
		"Get-latency p99 gauge at the window's end sample.")
	p.sample("rocksmash_vitals_get_p99_seconds", "", time.Duration(win.GetP99Nanos).Seconds())
	p.family("rocksmash_vitals_incidents_per_second", "gauge",
		"Windowed flight-recorder incident rate.")
	p.sample("rocksmash_vitals_incidents_per_second", "", win.IncidentsPerSec)
}

// WritePromHealth renders the health surface as Prometheus gauges: a
// numeric status (alertable with a plain threshold) and a one-hot series
// per active detector rule.
func WritePromHealth(w io.Writer, h db.Health) {
	p := promWriter{w: w}
	var status float64
	switch h.Status {
	case db.HealthDegraded:
		status = 1
	case db.HealthUnhealthy:
		status = 2
	}
	p.family("rocksmash_health_status", "gauge",
		"Store health: 0 healthy, 1 degraded, 2 unhealthy.")
	p.sample("rocksmash_health_status", "", status)
	if len(h.ActiveRules) > 0 {
		p.family("rocksmash_incident_active", "gauge",
			"Detector rules currently in the active (fired, not yet cleared) state.")
		for _, rule := range h.ActiveRules {
			p.sample("rocksmash_incident_active", fmt.Sprintf("rule=%q", rule), 1)
		}
	}
}

// promLevel renders a level="N" label.
func promLevel(l int) string { return fmt.Sprintf("level=%q", fmt.Sprint(l)) }

func writePromSummary(p promWriter, name string, s db.LatencySummary) {
	p.sample(name, `quantile="0.5"`, s.P50.Seconds())
	p.sample(name, `quantile="0.9"`, s.P90.Seconds())
	p.sample(name, `quantile="0.99"`, s.P99.Seconds())
	p.sample(name+"_count", "", float64(s.Count))
	p.sample(name+"_sum", "", s.Mean.Seconds()*float64(s.Count))
}

func promLevelBucket(b int) string {
	if b == pcache.LevelUnknown {
		return `level="unknown"`
	}
	return fmt.Sprintf("level=%q", fmt.Sprint(b))
}
