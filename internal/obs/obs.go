// Package obs exposes a running DB's metrics over HTTP for the command-line
// tools: Metrics() as JSON under expvar's /debug/vars, and the DumpStats()
// text report under /stats.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"

	"rocksmash/internal/db"
)

var publishOnce sync.Once

// Serve starts a background HTTP listener on addr (e.g. ":8080").
//
//	/debug/vars  expvar JSON, including a "rocksmash" Metrics() snapshot
//	/stats       the DumpStats() multi-line text report
//
// Listen errors are reported to stderr; the caller keeps running either way
// (metrics are an observer, never a reason to fail a run).
func Serve(addr string, d *db.DB) {
	publishOnce.Do(func() {
		expvar.Publish("rocksmash", expvar.Func(func() any { return d.Metrics() }))
	})
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, d.DumpStats())
	})
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
		}
	}()
}
