package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/vitals"
)

func openDB(t *testing.T) *db.DB {
	t.Helper()
	d, err := db.OpenAt(t.TempDir(), db.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMuxScopedPerDB is the regression test for the old process-global
// expvar registration: two DBs in one process must each report their own
// counters, not whichever DB published first.
func TestMuxScopedPerDB(t *testing.T) {
	d1, d2 := openDB(t), openDB(t)
	if err := d1.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := d1.Get([]byte("k")); err != nil {
			t.Fatal(err)
		}
	}
	s1 := httptest.NewServer(NewMux(d1))
	s2 := httptest.NewServer(NewMux(d2))
	defer s1.Close()
	defer s2.Close()

	for _, path := range []string{"/debug/vars", "/metrics"} {
		b1, b2 := get(t, s1.URL+path), get(t, s2.URL+path)
		if b1 == b2 {
			t.Fatalf("%s identical for two different DBs (global state leak)", path)
		}
	}
	m1 := get(t, s1.URL+"/metrics")
	if !strings.Contains(m1, "rocksmash_reads_total 10") {
		t.Fatalf("d1 /metrics missing its own read count:\n%s", firstLines(m1, 5))
	}
	m2 := get(t, s2.URL+"/metrics")
	if !strings.Contains(m2, "rocksmash_reads_total 0") {
		t.Fatalf("d2 /metrics should report zero reads:\n%s", firstLines(m2, 5))
	}
	if !strings.Contains(get(t, s1.URL+"/debug/vars"), `"rocksmash"`) {
		t.Fatal("/debug/vars missing the rocksmash var")
	}
	if !strings.Contains(get(t, s1.URL+"/stats"), "** DB Stats") {
		t.Fatal("/stats missing the DumpStats report")
	}
}

// TestPromExposition sanity-checks the exposition format: every sample line
// belongs to a family announced by a preceding HELP/TYPE pair, and the
// profiler families the CI smoke greps for are present.
func TestPromExposition(t *testing.T) {
	d := openDB(t)
	if err := d.Put([]byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get([]byte("a")); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteProm(&sb, d.Metrics())
	text := sb.String()

	announced := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			parts := strings.Fields(line)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("malformed comment line %q", line)
			}
			announced[parts[2]] = true
			continue
		}
		name := line
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		} else if i := strings.IndexByte(name, ' '); i >= 0 {
			name = name[:i]
		}
		// Summaries emit name_count/name_sum under the summary family.
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_count"), "_sum")
		if !announced[name] && !announced[base] {
			t.Errorf("sample %q has no HELP/TYPE header", line)
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("sample line %q is not `name value`", line)
		}
	}
	for _, fam := range []string{
		"rocksmash_reads_total",
		"rocksmash_read_profiled_total",
		"rocksmash_read_blocks_total",
		"rocksmash_read_level_serves_total",
		"rocksmash_read_bloom_checked_total",
		"rocksmash_pcache_level_hits_total",
	} {
		if !announced[fam] {
			t.Errorf("family %s missing from exposition", fam)
		}
	}
	// One profiled memtable-or-L0 Get must be visible.
	if !strings.Contains(text, "rocksmash_read_profiled_total 1") {
		t.Errorf("expected exactly one profiled get:\n%s", firstLines(text, 30))
	}
}

// TestServeBindsAndShutsDown exercises the real listener path: ":0" picks a
// free port, Addr reports it, and Close releases it.
func TestServeBindsAndShutsDown(t *testing.T) {
	d := openDB(t)
	srv, err := Serve("127.0.0.1:0", d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(get(t, fmt.Sprintf("http://%s/metrics", srv.Addr)), "rocksmash_reads_total") {
		t.Fatal("live /metrics missing rocksmash_reads_total")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr)); err == nil {
		t.Fatal("server still serving after Close")
	}
	// A second Serve on a fresh port must work (no process-global state).
	srv2, err := Serve("127.0.0.1:0", d)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	get(t, fmt.Sprintf("http://%s/stats", srv2.Addr))
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestVitalsEndpoint covers both sampler states: disabled reports
// {"enabled": false}; enabled returns the ring with a latest sample and at
// least one derived window, plus rocksmash_vitals_* gauges on /metrics.
func TestVitalsEndpoint(t *testing.T) {
	// Disabled: default options.
	d := openDB(t)
	s := httptest.NewServer(NewMux(d))
	defer s.Close()
	var off vitals.Report
	if err := json.Unmarshal([]byte(get(t, s.URL+"/vitals")), &off); err != nil {
		t.Fatal(err)
	}
	if off.Enabled || off.Latest != nil {
		t.Fatalf("disabled /vitals = %+v, want enabled=false", off)
	}
	if strings.Contains(get(t, s.URL+"/metrics"), "rocksmash_vitals_") {
		t.Error("disabled sampler leaked rocksmash_vitals_* families")
	}

	// Enabled: fast interval, some traffic, wait for >= 2 samples.
	o := db.DefaultOptions()
	o.VitalsInterval = time.Millisecond
	dv, err := db.OpenAt(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Close()
	if err := dv.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(dv.Vitals().Samples()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	sv := httptest.NewServer(NewMux(dv))
	defer sv.Close()
	var on vitals.Report
	if err := json.Unmarshal([]byte(get(t, sv.URL+"/vitals")), &on); err != nil {
		t.Fatal(err)
	}
	if !on.Enabled || on.Latest == nil || on.Window == nil || len(on.Samples) < 2 {
		t.Fatalf("enabled /vitals incomplete: enabled=%v latest=%v window=%v samples=%d",
			on.Enabled, on.Latest != nil, on.Window != nil, len(on.Samples))
	}
	if on.Latest.Writes == 0 {
		t.Errorf("latest sample missed the write: %+v", on.Latest)
	}
	metrics := get(t, sv.URL+"/metrics")
	for _, fam := range []string{
		"rocksmash_vitals_window_seconds",
		"rocksmash_vitals_write_ops_per_second",
		"rocksmash_vitals_dollars_per_hour",
		"rocksmash_vitals_ops_per_dollar",
	} {
		if !strings.Contains(metrics, fam) {
			t.Errorf("/metrics missing %s with vitals enabled", fam)
		}
	}
}

// TestPromNewFamilies greps the exposition for the families this PR adds:
// per-level compaction attribution, cumulative write/space amp, debt, the
// new latency summaries, and (for a sharded store) per-shard families.
func TestPromNewFamilies(t *testing.T) {
	o := db.DefaultOptions()
	o.Shards = 2
	d, err := db.OpenAt(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put([]byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteProm(&sb, d.Metrics())
	text := sb.String()
	for _, want := range []string{
		"rocksmash_level_compactions_total",
		"rocksmash_level_compact_bytes_in_total",
		"rocksmash_level_compact_bytes_out_total",
		"rocksmash_level_write_amp",
		"rocksmash_write_amp",
		"rocksmash_compaction_debt_bytes",
		"rocksmash_space_amp",
		"rocksmash_flush_latency_seconds",
		"rocksmash_compact_latency_seconds",
		"rocksmash_local_get_latency_seconds",
		"rocksmash_local_put_latency_seconds",
		"rocksmash_cloud_put_latency_seconds",
		`rocksmash_shard_writes_total{shard="0"}`,
		`rocksmash_shard_writes_total{shard="1"}`,
		"rocksmash_shard_bytes",
		"rocksmash_shard_pending_tables",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
