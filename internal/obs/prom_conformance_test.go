package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/flight"
)

// Prometheus text-format grammar (version 0.0.4), strict form: metric and
// label names, one HELP immediately followed by one TYPE per family, every
// sample attributable to the family announced above it.
var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$`)
)

// checkPromConformance parses text as strict Prometheus exposition and
// fails the test on any violation. It returns the set of announced family
// names so callers can assert coverage.
func checkPromConformance(t *testing.T, text string) map[string]string {
	t.Helper()
	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition must end in a newline")
	}
	families := map[string]string{} // name -> type
	var cur, curType string         // family currently open for samples
	var pendingHelp string          // HELP seen, TYPE not yet
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		fail := func(format string, args ...any) {
			t.Helper()
			t.Errorf("line %d %q: "+format, append([]any{ln + 1, line}, args...)...)
		}
		if line == "" {
			fail("blank line in exposition")
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || parts[0] != "#" {
				fail("malformed comment")
				continue
			}
			switch parts[1] {
			case "HELP":
				if pendingHelp != "" {
					fail("HELP for %s while HELP for %s awaits its TYPE", parts[2], pendingHelp)
				}
				if _, dup := families[parts[2]]; dup {
					fail("family %s announced twice", parts[2])
				}
				if !promNameRe.MatchString(parts[2]) {
					fail("invalid metric name %q", parts[2])
				}
				if strings.TrimSpace(parts[3]) == "" {
					fail("empty HELP text")
				}
				pendingHelp = parts[2]
			case "TYPE":
				if parts[2] != pendingHelp {
					fail("TYPE for %s does not follow its HELP (pending %q)", parts[2], pendingHelp)
				}
				switch parts[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					fail("invalid TYPE %q", parts[3])
				}
				families[parts[2]] = parts[3]
				cur, curType = parts[2], parts[3]
				pendingHelp = ""
			default:
				fail("comment is neither HELP nor TYPE")
			}
			continue
		}
		if pendingHelp != "" {
			fail("sample between HELP and TYPE of %s", pendingHelp)
		}
		// Sample: name[{labels}] value
		rest := line
		name := rest
		labels := ""
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			name = rest[:i]
			j := strings.IndexByte(rest, '}')
			if j < i {
				fail("unterminated label set")
				continue
			}
			labels = rest[i+1 : j]
			rest = rest[j+1:]
		} else if i := strings.IndexByte(rest, ' '); i >= 0 {
			name = rest[:i]
			rest = rest[i:]
		}
		if !promNameRe.MatchString(name) {
			fail("invalid sample name %q", name)
		}
		val := strings.TrimSpace(rest)
		if strings.ContainsAny(val, " \t") {
			fail("sample has trailing fields after the value (timestamps not expected)")
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			fail("unparseable value %q: %v", val, err)
		}
		hasQuantile := false
		if labels != "" {
			for _, pair := range strings.Split(labels, ",") {
				if !promLabelRe.MatchString(pair) {
					fail("malformed label pair %q", pair)
				}
				if strings.HasPrefix(pair, `quantile="`) {
					hasQuantile = true
				}
			}
		}
		// Grouping: the sample must belong to the family whose headers are
		// open right now — interleaving families is a conformance error.
		switch {
		case name == cur:
			if curType == "summary" && !hasQuantile {
				fail("summary base sample without a quantile label")
			}
		case curType == "summary" && (name == cur+"_count" || name == cur+"_sum"):
		default:
			fail("sample outside its family's block (open family %q type %q)", cur, curType)
		}
	}
	if pendingHelp != "" {
		t.Errorf("HELP for %s never got its TYPE", pendingHelp)
	}
	return families
}

// TestPromConformanceFull runs the strict parser over a live /metrics
// scrape with every emitter active: sharded store, vitals windows, and the
// flight recorder's health and incident families.
func TestPromConformanceFull(t *testing.T) {
	dir := t.TempDir()
	o := db.DefaultOptions()
	o.Shards = 2
	o.VitalsInterval = time.Millisecond
	o.FlightRecorder = true
	o.FlightDir = filepath.Join(dir, "flight")
	d, err := db.OpenAt(filepath.Join(dir, "db"), o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(d.Vitals().Samples()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	srv := httptest.NewServer(NewMux(d))
	defer srv.Close()

	text := get(t, srv.URL+"/metrics")
	families := checkPromConformance(t, text)
	for _, fam := range []string{
		"rocksmash_reads_total",
		"rocksmash_incidents_triggered_total",
		"rocksmash_incidents_suppressed_total",
		"rocksmash_flight_bundles_written_total",
		"rocksmash_flight_bundle_errors_total",
		"rocksmash_health_status",
		"rocksmash_vitals_incidents_per_second",
		"rocksmash_vitals_get_p99_seconds",
		"rocksmash_shard_writes_total",
		"rocksmash_get_latency_seconds",
	} {
		if _, ok := families[fam]; !ok {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
	if typ := families["rocksmash_get_latency_seconds"]; typ != "summary" {
		t.Errorf("latency family type = %q, want summary", typ)
	}
	if typ := families["rocksmash_health_status"]; typ != "gauge" {
		t.Errorf("health family type = %q, want gauge", typ)
	}
}

// TestHealthEndpoint covers the probe contract: a healthy store answers
// 200 with status "healthy"; the body is DB.Health() verbatim.
func TestHealthEndpoint(t *testing.T) {
	d := openDB(t)
	srv := httptest.NewServer(NewMux(d))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy store /health = %s, want 200", resp.Status)
	}
	var h db.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != db.HealthHealthy {
		t.Fatalf("health body = %+v, want healthy", h)
	}
}

// TestIncidentsEndpoint checks both recorder states: off reports
// enabled=false with empty lists; on reports the bundle dir and (after an
// incident) the recent-incident log.
func TestIncidentsEndpoint(t *testing.T) {
	d := openDB(t)
	srv := httptest.NewServer(NewMux(d))
	defer srv.Close()
	var off struct {
		Enabled   bool                `json:"enabled"`
		BundleDir string              `json:"bundle_dir"`
		Incidents []flight.Incident   `json:"incidents"`
		Bundles   []flight.BundleMeta `json:"bundles"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/incidents")), &off); err != nil {
		t.Fatal(err)
	}
	if off.Enabled || off.BundleDir != "" || len(off.Incidents) != 0 || len(off.Bundles) != 0 {
		t.Fatalf("recorder-off /incidents = %+v, want disabled and empty", off)
	}

	dir := t.TempDir()
	o := db.DefaultOptions()
	o.FlightRecorder = true
	o.FlightDir = filepath.Join(dir, "flight")
	o.VitalsInterval = 5 * time.Millisecond
	dv, err := db.OpenAt(filepath.Join(dir, "db"), o)
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Close()
	srv2 := httptest.NewServer(NewMux(dv))
	defer srv2.Close()
	var on struct {
		Enabled   bool   `json:"enabled"`
		BundleDir string `json:"bundle_dir"`
	}
	if err := json.Unmarshal([]byte(get(t, srv2.URL+"/incidents")), &on); err != nil {
		t.Fatal(err)
	}
	if !on.Enabled || on.BundleDir != o.FlightDir {
		t.Fatalf("recorder-on /incidents = %+v, want enabled with dir %s", on, o.FlightDir)
	}
}
