package storage

import (
	"time"

	"rocksmash/internal/histogram"
)

// Instrumented wraps a Backend and records per-request latency into
// histograms: every read request (ReadAt / ReadAll) into getH, and every
// completed object creation (Create through Close — one PUT) into putH.
// Counters are untouched; the wrapped backend's Stats remain authoritative.
// This is how the engine makes per-tier first-byte cost visible: the same
// wrapper records both the local SSD tier and the simulated cloud tier.
type Instrumented struct {
	b    Backend
	getH *histogram.H
	putH *histogram.H
}

// Instrument wraps b, recording GET latency into getH and PUT latency into
// putH. Either histogram may be nil to skip that side.
func Instrument(b Backend, getH, putH *histogram.H) *Instrumented {
	return &Instrumented{b: b, getH: getH, putH: putH}
}

// Unwrap returns the wrapped backend.
func (i *Instrumented) Unwrap() Backend { return i.b }

// BaseBackend strips any Instrumented (or other Unwrap-able) layers.
func BaseBackend(b Backend) Backend {
	for {
		u, ok := b.(interface{ Unwrap() Backend })
		if !ok {
			return b
		}
		b = u.Unwrap()
	}
}

type instrWriter struct {
	Writer
	h     *histogram.H
	start time.Time
	done  bool
}

func (w *instrWriter) Close() error {
	err := w.Writer.Close()
	if !w.done {
		w.done = true
		if w.h != nil {
			w.h.Record(time.Since(w.start))
		}
	}
	return err
}

// Create implements Backend; the PUT latency recorded at Close spans the
// whole object creation, matching an object store's upload semantics.
func (i *Instrumented) Create(name string) (Writer, error) {
	start := time.Now()
	w, err := i.b.Create(name)
	if err != nil {
		return nil, err
	}
	return &instrWriter{Writer: w, h: i.putH, start: start}, nil
}

type instrReader struct {
	Reader
	h *histogram.H
}

func (r *instrReader) ReadAt(p []byte, off int64) (int, error) {
	start := time.Now()
	n, err := r.Reader.ReadAt(p, off)
	if r.h != nil {
		r.h.Record(time.Since(start))
	}
	return n, err
}

// Open implements Backend; each ReadAt through the returned reader records
// one GET observation.
func (i *Instrumented) Open(name string) (Reader, error) {
	r, err := i.b.Open(name)
	if err != nil {
		return nil, err
	}
	return &instrReader{Reader: r, h: i.getH}, nil
}

// ReadAll implements Backend, recording the whole fetch as one GET.
func (i *Instrumented) ReadAll(name string) ([]byte, error) {
	start := time.Now()
	buf, err := i.b.ReadAll(name)
	if i.getH != nil {
		i.getH.Record(time.Since(start))
	}
	return buf, err
}

// Delete implements Backend.
func (i *Instrumented) Delete(name string) error { return i.b.Delete(name) }

// List implements Backend.
func (i *Instrumented) List(prefix string) ([]string, error) { return i.b.List(prefix) }

// Size implements Backend.
func (i *Instrumented) Size(name string) (int64, error) { return i.b.Size(name) }

// Rename implements Backend.
func (i *Instrumented) Rename(oldname, newname string) error { return i.b.Rename(oldname, newname) }

// Tier implements Backend.
func (i *Instrumented) Tier() Tier { return i.b.Tier() }

// Stats implements Backend.
func (i *Instrumented) Stats() *Stats { return i.b.Stats() }
