package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestFaultyPassThrough(t *testing.T) {
	f := NewFaulty(newTestLocal(t), FaultConfig{Seed: 1})
	data := []byte("hello fault-free world")
	if err := WriteObject(f, "obj", data); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	names, err := f.List("")
	if err != nil || len(names) != 1 || names[0] != "obj" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if f.InjectedFaults() != 0 {
		t.Fatalf("InjectedFaults = %d, want 0", f.InjectedFaults())
	}
	if f.Tier() != TierLocal {
		t.Fatal("Tier not delegated")
	}
	if BaseBackend(f) != f.Unwrap() {
		t.Fatal("BaseBackend should unwrap Faulty")
	}
}

func TestFaultyErrorRates(t *testing.T) {
	f := NewFaulty(newTestLocal(t), FaultConfig{Seed: 42, GetErrorRate: 0.5})
	if err := WriteObject(f, "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	var failed, ok int
	for i := 0; i < 200; i++ {
		if _, err := f.ReadAll("obj"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failed++
		} else {
			ok++
		}
	}
	if failed == 0 || ok == 0 {
		t.Fatalf("rate 0.5 over 200 reads: failed=%d ok=%d, want both nonzero", failed, ok)
	}
	if f.InjectedFaults() != int64(failed) {
		t.Fatalf("InjectedFaults = %d, want %d", f.InjectedFaults(), failed)
	}
}

func TestFaultyDeterministicSeed(t *testing.T) {
	run := func() []bool {
		f := NewFaulty(newTestLocal(t), FaultConfig{Seed: 7, GetErrorRate: 0.3})
		if err := WriteObject(f, "obj", []byte("x")); err != nil {
			t.Fatal(err)
		}
		var outcomes []bool
		for i := 0; i < 50; i++ {
			_, err := f.ReadAll("obj")
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
}

func TestFaultyOutageWindow(t *testing.T) {
	f := NewFaulty(newTestCloud(t), FaultConfig{Seed: 1})
	if err := WriteObject(f, "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f.StartOutage(0) // until EndOutage
	if !f.OutageActive() {
		t.Fatal("outage not active")
	}
	if _, err := f.ReadAll("obj"); !errors.Is(err, ErrInjected) {
		t.Fatalf("read during outage: %v, want injected error", err)
	}
	if err := WriteObject(f, "obj2", []byte("y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write during outage: %v, want injected error", err)
	}
	f.EndOutage()
	if f.OutageActive() {
		t.Fatal("outage still active after EndOutage")
	}
	if _, err := f.ReadAll("obj"); err != nil {
		t.Fatalf("read after outage: %v", err)
	}

	// Timed window expires on its own.
	f.StartOutage(5 * time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if f.OutageActive() {
		t.Fatal("timed outage did not expire")
	}
	if _, err := f.ReadAll("obj"); err != nil {
		t.Fatalf("read after timed outage: %v", err)
	}
}

func TestFaultyOutageFailsOpenWriterCommit(t *testing.T) {
	f := NewFaulty(newTestCloud(t), FaultConfig{Seed: 1})
	w, err := f.Create("obj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	f.StartOutage(0)
	if err := w.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close during outage: %v, want injected error", err)
	}
	f.EndOutage()
	// Failed cloud PUT must leave no object behind.
	if _, err := f.ReadAll("obj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("object after failed PUT: %v, want ErrNotFound", err)
	}
}

func TestFaultyTornWrite(t *testing.T) {
	local := newTestLocal(t)
	f := NewFaulty(local, FaultConfig{Seed: 3, TornWriteRate: 1})
	data := bytes.Repeat([]byte("0123456789"), 100)
	err := WriteObject(f, "obj", data)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write reported %v, want injected error", err)
	}
	// WriteObject syncs before Close, so the synced prefix survives intact
	// and only the (empty) unsynced suffix is at risk: full data on disk.
	got, rerr := local.ReadAll("obj")
	if rerr != nil || !bytes.Equal(got, data) {
		t.Fatalf("synced bytes lost: len=%d err=%v", len(got), rerr)
	}

	// Without the Sync, a torn commit persists only a prefix.
	w, err := f.Create("torn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close = %v, want injected error", err)
	}
	got, rerr = local.ReadAll("torn")
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(got) >= len(data) {
		t.Fatalf("torn write persisted %d bytes, want < %d", len(got), len(data))
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Fatal("torn write is not a prefix of the original data")
	}
}

func TestFaultyHookSeesEveryOp(t *testing.T) {
	f := NewFaulty(newTestCloud(t), FaultConfig{Seed: 1})
	var ops []string
	f.SetHook(func(op, name string) error {
		ops = append(ops, op)
		return nil
	})
	if err := WriteObject(f, "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAll("obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Size("obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.List(""); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"PUT": true, "GET": true, "HEAD": true, "LIST": true, "DELETE": true}
	seen := map[string]bool{}
	for _, op := range ops {
		seen[op] = true
	}
	for op := range want {
		if !seen[op] {
			t.Fatalf("hook never saw %s (ops: %v)", op, ops)
		}
	}

	// A hook error fails the request and counts as injected.
	boom := fmt.Errorf("boom")
	f.SetHook(func(op, name string) error { return boom })
	if _, err := f.ReadAll("obj"); !errors.Is(err, boom) {
		t.Fatalf("hook error not propagated: %v", err)
	}
	if f.InjectedFaults() == 0 {
		t.Fatal("hook failure not counted")
	}
}

func TestFaultyExtraLatency(t *testing.T) {
	f := NewFaulty(newTestLocal(t), FaultConfig{Seed: 1, ExtraLatency: 10 * time.Millisecond})
	if err := WriteObject(f, "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := f.ReadAll("obj"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("ReadAll took %s, want >= 10ms of injected latency", d)
	}
}
