package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

func newTestLocal(t *testing.T) *Local {
	t.Helper()
	l, err := NewLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func newTestCloud(t *testing.T) *Cloud {
	t.Helper()
	c, err := NewCloud(t.TempDir(), NoLatency(), DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func backends(t *testing.T) map[string]Backend {
	return map[string]Backend{"local": newTestLocal(t), "cloud": newTestCloud(t)}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			data := bytes.Repeat([]byte("abc"), 1000)
			if err := WriteObject(b, "dir/obj1", data); err != nil {
				t.Fatal(err)
			}
			got, err := b.ReadAll("dir/obj1")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("round trip mismatch")
			}
			sz, err := b.Size("dir/obj1")
			if err != nil || sz != int64(len(data)) {
				t.Fatalf("size = %d, %v", sz, err)
			}
		})
	}
}

func TestRandomAccessRead(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			data := make([]byte, 4096)
			for i := range data {
				data[i] = byte(i)
			}
			if err := WriteObject(b, "obj", data); err != nil {
				t.Fatal(err)
			}
			r, err := b.Open("obj")
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			buf := make([]byte, 100)
			if _, err := r.ReadAt(buf, 1000); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, data[1000:1100]) {
				t.Fatal("range read mismatch")
			}
			if r.Size() != 4096 {
				t.Fatalf("size = %d", r.Size())
			}
		})
	}
}

func TestOpenMissing(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := b.Open("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v", err)
			}
			if _, err := b.Size("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("size err = %v", err)
			}
		})
	}
}

func TestDeleteIdempotent(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := WriteObject(b, "obj", []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := b.Delete("obj"); err != nil {
				t.Fatal(err)
			}
			if err := b.Delete("obj"); err != nil {
				t.Fatal("second delete should be nil:", err)
			}
			if _, err := b.Open("obj"); !errors.Is(err, ErrNotFound) {
				t.Fatal("object should be gone")
			}
		})
	}
}

func TestListPrefix(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []string{"sst/000001.sst", "sst/000002.sst", "wal/000003.log"} {
				if err := WriteObject(b, n, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			names, err := b.List("sst/")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 2 || names[0] != "sst/000001.sst" || names[1] != "sst/000002.sst" {
				t.Fatalf("list = %v", names)
			}
		})
	}
}

func TestRenameReplaces(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := WriteObject(b, "a", []byte("new")); err != nil {
				t.Fatal(err)
			}
			if err := WriteObject(b, "b", []byte("old")); err != nil {
				t.Fatal(err)
			}
			if err := b.Rename("a", "b"); err != nil {
				t.Fatal(err)
			}
			got, err := b.ReadAll("b")
			if err != nil || string(got) != "new" {
				t.Fatalf("b = %q, %v", got, err)
			}
		})
	}
}

func TestCloudAtomicVisibility(t *testing.T) {
	c := newTestCloud(t)
	w, err := c.Create("obj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	// Before Close, the object must not be visible.
	if _, err := c.Open("obj"); !errors.Is(err, ErrNotFound) {
		t.Fatal("object visible before Close")
	}
	names, _ := c.List("")
	if len(names) != 0 {
		t.Fatalf("list shows in-flight upload: %v", names)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("obj"); err != nil {
		t.Fatal("object missing after Close")
	}
}

func TestCloudCapacityAccounting(t *testing.T) {
	c := newTestCloud(t)
	if err := WriteObject(c, "a", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := WriteObject(c, "b", make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	if got := c.StoredBytes(); got != 1500 {
		t.Fatalf("stored = %d", got)
	}
	// Overwrite shrinks then grows.
	if err := WriteObject(c, "a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if got := c.StoredBytes(); got != 600 {
		t.Fatalf("stored after overwrite = %d", got)
	}
	if err := c.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if got := c.StoredBytes(); got != 100 {
		t.Fatalf("stored after delete = %d", got)
	}
}

func TestCloudReopenRebuildsCapacity(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCloud(dir, NoLatency(), DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteObject(c1, "x", make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCloud(dir, NoLatency(), DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.StoredBytes(); got != 2048 {
		t.Fatalf("reopened stored = %d", got)
	}
}

func TestCostModelArithmetic(t *testing.T) {
	m := CostModel{StoragePerGBMonth: 0.02, PutPer1K: 0.005, GetPer1K: 0.0004, EgressPerGB: 0.09}
	s := Snapshot{GetOps: 2000, PutOps: 1000, BytesRead: 1 << 30}
	r := m.Cost(2<<30, s)
	if want := 0.04; !closeTo(r.StorageCost, want) {
		t.Fatalf("storage = %v", r.StorageCost)
	}
	if want := 0.005 + 0.0008; !closeTo(r.RequestCost, want) {
		t.Fatalf("requests = %v", r.RequestCost)
	}
	if want := 0.09; !closeTo(r.EgressCost, want) {
		t.Fatalf("egress = %v", r.EgressCost)
	}
	if !closeTo(r.TotalMonthly, r.StorageCost+r.RequestCost+r.EgressCost) {
		t.Fatal("total mismatch")
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestCloudStatsMetering(t *testing.T) {
	c := newTestCloud(t)
	data := make([]byte, 1024)
	if err := WriteObject(c, "o", data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAll("o"); err != nil {
		t.Fatal(err)
	}
	s := c.Stats().Snapshot()
	if s.PutOps != 1 || s.GetOps != 1 {
		t.Fatalf("ops = %+v", s)
	}
	if s.BytesWrite != 1024 || s.BytesRead != 1024 {
		t.Fatalf("bytes = %+v", s)
	}
}

func TestCloudFailureHook(t *testing.T) {
	c := newTestCloud(t)
	if err := WriteObject(c, "o", []byte("x")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected")
	c.SetFailureHook(func(op, name string) error {
		if op == "GET" {
			return boom
		}
		return nil
	})
	if _, err := c.Open("o"); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	c.SetFailureHook(nil)
	if _, err := c.Open("o"); err != nil {
		t.Fatal("hook not cleared")
	}
}

func TestCloudLoseObject(t *testing.T) {
	c := newTestCloud(t)
	if err := WriteObject(c, "o", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	c.LoseObject("o")
	if _, err := c.Open("o"); !errors.Is(err, ErrNotFound) {
		t.Fatal("lost object should be unreadable")
	}
	if c.StoredBytes() != 0 {
		t.Fatalf("stored = %d", c.StoredBytes())
	}
	names, _ := c.List("")
	if len(names) != 0 {
		t.Fatalf("lost object still listed: %v", names)
	}
	// Re-uploading resurrects it.
	if err := WriteObject(c, "o", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got, err := c.ReadAll("o"); err != nil || string(got) != "new" {
		t.Fatalf("resurrect failed: %q %v", got, err)
	}
}

func TestCloudLatencyApplied(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	dir := t.TempDir()
	lat := LatencyModel{GetFirstByte: 20 * time.Millisecond}
	c, err := NewCloud(dir, lat, DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteObject(c, "o", []byte("x")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.ReadAll("o"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("GET returned in %v; latency not applied", elapsed)
	}
}

func TestLocalSyncDurability(t *testing.T) {
	l := newTestLocal(t)
	w, err := l.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadAllEmptyObject(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := WriteObject(b, "empty", nil); err != nil {
				t.Fatal(err)
			}
			got, err := b.ReadAll("empty")
			if err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if len(got) != 0 {
				t.Fatalf("got %d bytes", len(got))
			}
		})
	}
}

func TestManyObjects(t *testing.T) {
	c := newTestCloud(t)
	for i := 0; i < 50; i++ {
		if err := WriteObject(c, fmt.Sprintf("o/%06d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	names, err := c.List("o/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 50 {
		t.Fatalf("listed %d", len(names))
	}
	for i, n := range names {
		if n != fmt.Sprintf("o/%06d", i) {
			t.Fatalf("order broken at %d: %s", i, n)
		}
	}
}
