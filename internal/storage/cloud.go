package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyModel describes the performance profile of a simulated cloud
// object store. Each request pays a first-byte latency plus transfer time at
// the modelled bandwidth. Operations running in parallel sleep
// independently, mirroring an object store's ability to serve concurrent
// requests.
type LatencyModel struct {
	GetFirstByte   time.Duration // per GET request
	PutFirstByte   time.Duration // per PUT request
	MetaRTT        time.Duration // DELETE/LIST/HEAD round trip
	ReadBandwidth  int64         // bytes/second per stream; 0 = unlimited
	WriteBandwidth int64         // bytes/second per stream; 0 = unlimited
}

// DefaultLatency models a same-region object store, scaled down ~5x from
// public-cloud numbers (≈10 ms first byte, ≈90 MB/s streams) so experiment
// suites finish quickly while preserving the local-vs-cloud gap that drives
// the paper's results.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		GetFirstByte:   2 * time.Millisecond,
		PutFirstByte:   3 * time.Millisecond,
		MetaRTT:        1 * time.Millisecond,
		ReadBandwidth:  400 << 20,
		WriteBandwidth: 400 << 20,
	}
}

// NoLatency disables sleeping; used by unit tests that only need cloud
// semantics and accounting.
func NoLatency() LatencyModel { return LatencyModel{} }

func (m LatencyModel) transfer(n int64, bw int64) time.Duration {
	if bw <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(bw) * float64(time.Second))
}

// CostModel prices cloud usage. Defaults follow S3 Standard circa 2021.
type CostModel struct {
	StoragePerGBMonth float64 // $/GB-month of stored bytes
	PutPer1K          float64 // $ per 1000 PUT/DELETE/LIST requests
	GetPer1K          float64 // $ per 1000 GET requests
	EgressPerGB       float64 // $/GB read out of the store
}

// DefaultCost returns S3-Standard-like prices (ca. 2021).
func DefaultCost() CostModel {
	return CostModel{
		StoragePerGBMonth: 0.023,
		PutPer1K:          0.005,
		GetPer1K:          0.0004,
		EgressPerGB:       0.09,
	}
}

// CostReport is a priced summary of cloud usage.
type CostReport struct {
	StoredBytes  int64
	Snapshot     Snapshot
	StorageCost  float64 // $/month at current capacity
	RequestCost  float64 // $ for the observed requests
	EgressCost   float64 // $ for the observed reads
	TotalMonthly float64 // storage + requests + egress (requests treated as monthly)
}

// String renders the report as a table row block. The mean GET size shows
// how well reads coalesce: bigger requests mean fewer billed round trips
// for the same bytes.
func (r CostReport) String() string {
	return fmt.Sprintf("stored=%.3fGB storage=$%.4f/mo requests=$%.4f egress=$%.4f total=$%.4f gets=%d avg-get=%.1fKB",
		float64(r.StoredBytes)/(1<<30), r.StorageCost, r.RequestCost, r.EgressCost, r.TotalMonthly,
		r.Snapshot.GetOps, r.Snapshot.BytesPerGet()/1024)
}

// Cost prices a usage snapshot plus current capacity.
func (c CostModel) Cost(stored int64, s Snapshot) CostReport {
	gb := float64(stored) / (1 << 30)
	storage := gb * c.StoragePerGBMonth
	req := float64(s.PutOps+s.DeleteOps+s.ListOps)/1000*c.PutPer1K +
		float64(s.GetOps)/1000*c.GetPer1K
	egress := float64(s.BytesRead) / (1 << 30) * c.EgressPerGB
	return CostReport{
		StoredBytes:  stored,
		Snapshot:     s,
		StorageCost:  storage,
		RequestCost:  req,
		EgressCost:   egress,
		TotalMonthly: storage + req + egress,
	}
}

// Cloud simulates an object store on top of a local directory: objects
// become visible atomically on Close, reads and writes pay the modelled
// latency, and all traffic is metered for cost reporting. It also supports
// failure injection for reliability tests.
type Cloud struct {
	fs          *Local
	lat         LatencyModel
	cost        CostModel
	stats       Stats
	stored      atomic.Int64
	seq         atomic.Int64 // temp-name suffix
	mu          sync.Mutex
	lost        map[string]bool             // injected object loss
	failureHook func(op, name string) error // injected request failures
}

// NewCloud returns a simulated object store persisting under dir.
func NewCloud(dir string, lat LatencyModel, cost CostModel) (*Cloud, error) {
	fs, err := NewLocal(dir)
	if err != nil {
		return nil, err
	}
	c := &Cloud{fs: fs, lat: lat, cost: cost, lost: map[string]bool{}}
	// Rebuild capacity accounting for pre-existing objects (reopen case).
	names, err := fs.List("")
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if sz, err := fs.Size(n); err == nil {
			c.stored.Add(sz)
		}
	}
	return c, nil
}

// Tier implements Backend.
func (c *Cloud) Tier() Tier { return TierCloud }

// Stats implements Backend.
func (c *Cloud) Stats() *Stats { return &c.stats }

// StoredBytes returns the current total object capacity.
func (c *Cloud) StoredBytes() int64 { return c.stored.Load() }

// CostReport prices current capacity plus all traffic since creation.
func (c *Cloud) CostReport() CostReport {
	return c.cost.Cost(c.stored.Load(), c.stats.Snapshot())
}

// SetFailureHook installs fn to be consulted before every request; a
// non-nil return aborts the request with that error. Pass nil to clear.
func (c *Cloud) SetFailureHook(fn func(op, name string) error) {
	c.mu.Lock()
	c.failureHook = fn
	c.mu.Unlock()
}

// LoseObject simulates silent object loss: subsequent opens fail with
// ErrNotFound while capacity accounting is adjusted.
func (c *Cloud) LoseObject(name string) {
	c.mu.Lock()
	c.lost[name] = true
	c.mu.Unlock()
	if sz, err := c.fs.Size(name); err == nil {
		c.stored.Add(-sz)
	}
}

func (c *Cloud) checkFail(op, name string) error {
	c.mu.Lock()
	hook := c.failureHook
	lostObj := c.lost[name]
	c.mu.Unlock()
	if lostObj && (op == "GET" || op == "HEAD") {
		return ErrNotFound
	}
	if hook != nil {
		return hook(op, name)
	}
	return nil
}

type cloudWriter struct {
	c     *Cloud
	w     Writer
	tmp   string
	final string
	n     int64
}

func (w *cloudWriter) Write(p []byte) (int, error) {
	n, err := w.w.Write(p)
	w.n += int64(n)
	return n, err
}

// Sync is a no-op: cloud objects are durable at Close.
func (w *cloudWriter) Sync() error { return nil }

func (w *cloudWriter) Close() error {
	if err := w.w.Sync(); err != nil {
		w.w.Close()
		return err
	}
	if err := w.w.Close(); err != nil {
		return err
	}
	// Pay the PUT: request latency + transfer time for the whole object.
	time.Sleep(w.c.lat.PutFirstByte + w.c.lat.transfer(w.n, w.c.lat.WriteBandwidth))
	if err := w.c.fs.Rename(w.tmp, w.final); err != nil {
		return err
	}
	// Replacing an object returns the old capacity first.
	w.c.stats.PutOps.Add(1)
	w.c.stats.BytesWrite.Add(w.n)
	w.c.stored.Add(w.n)
	w.c.mu.Lock()
	delete(w.c.lost, w.final)
	w.c.mu.Unlock()
	return nil
}

// Create implements Backend. The object appears atomically at Close.
func (c *Cloud) Create(name string) (Writer, error) {
	if err := c.checkFail("PUT", name); err != nil {
		return nil, err
	}
	if old, err := c.fs.Size(name); err == nil {
		c.stored.Add(-old)
	}
	tmp := fmt.Sprintf(".upload-%d.tmp", c.seq.Add(1))
	w, err := c.fs.Create(tmp)
	if err != nil {
		return nil, err
	}
	return &cloudWriter{c: c, w: w, tmp: tmp, final: name}, nil
}

type cloudReader struct {
	c    *Cloud
	r    Reader
	name string
}

func (r *cloudReader) ReadAt(p []byte, off int64) (int, error) {
	// Each ReadAt is one GET (range request, possibly spanning many
	// blocks). Every request is a fresh round trip, so injected failures
	// and object loss apply here too — a long-lived open handle does not
	// shield readers from a mid-stream outage.
	if err := r.c.checkFail("GET", r.name); err != nil {
		return 0, err
	}
	time.Sleep(r.c.lat.GetFirstByte + r.c.lat.transfer(int64(len(p)), r.c.lat.ReadBandwidth))
	n, err := r.r.ReadAt(p, off)
	r.c.stats.GetOps.Add(1)
	r.c.stats.BytesRead.Add(int64(n))
	return n, err
}

func (r *cloudReader) Size() int64  { return r.r.Size() }
func (r *cloudReader) Close() error { return r.r.Close() }

// Open implements Backend.
func (c *Cloud) Open(name string) (Reader, error) {
	if err := c.checkFail("GET", name); err != nil {
		return nil, err
	}
	r, err := c.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &cloudReader{c: c, r: r, name: name}, nil
}

// ReadAll implements Backend.
func (c *Cloud) ReadAll(name string) ([]byte, error) {
	r, err := c.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]byte, r.Size())
	if len(buf) == 0 {
		return buf, nil
	}
	if _, err := r.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// Delete implements Backend.
func (c *Cloud) Delete(name string) error {
	if err := c.checkFail("DELETE", name); err != nil {
		return err
	}
	time.Sleep(c.lat.MetaRTT)
	if sz, err := c.fs.Size(name); err == nil {
		c.stored.Add(-sz)
	}
	c.stats.DeleteOps.Add(1)
	return c.fs.Delete(name)
}

// List implements Backend.
func (c *Cloud) List(prefix string) ([]string, error) {
	if err := c.checkFail("LIST", prefix); err != nil {
		return nil, err
	}
	time.Sleep(c.lat.MetaRTT)
	c.stats.ListOps.Add(1)
	names, err := c.fs.List(prefix)
	if err != nil {
		return nil, err
	}
	out := names[:0]
	c.mu.Lock()
	for _, n := range names {
		if !c.lost[n] && n[0] != '.' {
			out = append(out, n)
		}
	}
	c.mu.Unlock()
	return out, nil
}

// Size implements Backend.
func (c *Cloud) Size(name string) (int64, error) {
	if err := c.checkFail("HEAD", name); err != nil {
		return 0, err
	}
	time.Sleep(c.lat.MetaRTT)
	return c.fs.Size(name)
}

// Rename implements Backend. Object stores have no rename; it is emulated
// with a server-side copy + delete and priced as one PUT and one DELETE.
func (c *Cloud) Rename(oldname, newname string) error {
	if err := c.checkFail("PUT", newname); err != nil {
		return err
	}
	time.Sleep(c.lat.PutFirstByte + c.lat.MetaRTT)
	c.stats.PutOps.Add(1)
	c.stats.DeleteOps.Add(1)
	if old, err := c.fs.Size(newname); err == nil {
		c.stored.Add(-old)
	}
	return c.fs.Rename(oldname, newname)
}
