package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"rocksmash/internal/retry"
)

// RetryFunc observes each retry the Reliable wrapper performs: the
// operation kind ("put", "get", ...), the object name, the 1-based attempt
// that just failed, its error, and the chosen backoff.
type RetryFunc func(op, name string, attempt int, err error, delay time.Duration)

// Reliable decorates a (cloud) backend with the engine's fault-tolerance
// policy: every request is retried under a retry.Policy with exponential
// backoff and full jitter, and optionally gated behind a circuit breaker.
// While the breaker is open requests fail fast with ErrCloudUnavailable
// instead of stacking up in backoff sleeps; after the cooldown one probe is
// let through and its outcome decides whether the breaker closes.
//
// Data-absence results (ErrNotFound, io.EOF) are passed through untouched:
// they are answers from a healthy backend, not faults, so they neither
// consume retries nor count against the breaker.
type Reliable struct {
	b       Backend
	pol     retry.Policy
	br      *retry.Breaker
	onRetry RetryFunc
	cancel  <-chan struct{}
}

// NewReliable wraps b. br may be nil (retries only); onRetry may be nil;
// cancel, when non-nil, aborts in-flight backoff waits when closed (the DB
// passes its shutdown channel so Close never waits out an outage).
//
// The default Retryable classification excludes ErrCorruption: a checksum
// mismatch is a property of the stored bytes, not of the request, so
// re-reading the same replica can only return the same damage. Corruption
// must surface immediately for repair from another source instead of
// burning the retry budget (and masking the problem as latency).
func NewReliable(b Backend, pol retry.Policy, br *retry.Breaker, onRetry RetryFunc, cancel <-chan struct{}) *Reliable {
	pol = pol.Sanitize()
	if pol.Retryable == nil {
		pol.Retryable = func(err error) bool {
			return isFault(err) &&
				!errors.Is(err, ErrCloudUnavailable) &&
				!errors.Is(err, ErrCorruption) &&
				!errors.Is(err, retry.ErrAborted)
		}
	}
	return &Reliable{b: b, pol: pol, br: br, onRetry: onRetry, cancel: cancel}
}

// Unwrap returns the wrapped backend (BaseBackend compatibility).
func (r *Reliable) Unwrap() Backend { return r.b }

// Breaker returns the wrapper's circuit breaker (nil when not configured).
func (r *Reliable) Breaker() *retry.Breaker { return r.br }

// isFault distinguishes backend faults from data-absence answers.
func isFault(err error) bool {
	return err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, io.EOF)
}

// do runs fn under the retry policy with the breaker gate applied per
// attempt.
func (r *Reliable) do(op, name string, fn func() error) error {
	attempt := func() error {
		if r.br != nil && !r.br.Allow() {
			return fmt.Errorf("%w: %s %s", ErrCloudUnavailable, op, name)
		}
		err := fn()
		if r.br != nil {
			// Corruption is a data-level answer from a live backend: it must
			// not trip the availability breaker (the tier is up — one object
			// is damaged), and it is never retried against the same replica.
			if isFault(err) && !errors.Is(err, ErrCorruption) {
				r.br.Failure()
			} else {
				r.br.Success()
			}
		}
		return err
	}
	var onRetry func(int, error, time.Duration)
	if r.onRetry != nil {
		onRetry = func(n int, err error, delay time.Duration) {
			r.onRetry(op, name, n, err, delay)
		}
	}
	return retry.Do(r.pol, r.cancel, onRetry, attempt)
}

// WriteObject uploads data as one complete object, retrying whole-object:
// cloud PUTs are atomic at Close, so a failed attempt leaves nothing behind
// and the next attempt starts clean. It returns how many attempts ran.
func (r *Reliable) WriteObject(name string, data []byte) (attempts int, err error) {
	err = r.do("put", name, func() error {
		attempts++
		return WriteObject(r.b, name, data)
	})
	return attempts, err
}

// reliableWriter buffers the object and performs the actual upload at
// Close via WriteObject, giving streaming callers the same whole-object
// retry semantics.
type reliableWriter struct {
	r    *Reliable
	name string
	buf  []byte
}

func (w *reliableWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *reliableWriter) Sync() error { return nil }

func (w *reliableWriter) Close() error {
	_, err := w.r.WriteObject(w.name, w.buf)
	return err
}

// Create implements Backend. The write is deferred: bytes buffer in memory
// and upload (with retries) at Close.
func (r *Reliable) Create(name string) (Writer, error) {
	return &reliableWriter{r: r, name: name}, nil
}

// reliableReader opens the inner object lazily, on first use, inside the
// retry loop. That keeps Open itself fault-free — important during an
// outage, where table metadata is served from local sidecars and a table
// handle must be constructible without touching the cloud.
type reliableReader struct {
	r    *Reliable
	name string

	mu    sync.Mutex
	inner Reader
}

func (rr *reliableReader) get() (Reader, error) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.inner != nil {
		return rr.inner, nil
	}
	in, err := rr.r.b.Open(rr.name)
	if err != nil {
		return nil, err
	}
	rr.inner = in
	return in, nil
}

func (rr *reliableReader) ReadAt(p []byte, off int64) (int, error) {
	var n int
	err := rr.r.do("get", rr.name, func() error {
		in, err := rr.get()
		if err != nil {
			return err
		}
		var rerr error
		n, rerr = in.ReadAt(p, off)
		return rerr
	})
	return n, err
}

func (rr *reliableReader) Size() int64 {
	var size int64
	err := rr.r.do("head", rr.name, func() error {
		in, err := rr.get()
		if err != nil {
			return err
		}
		size = in.Size()
		return nil
	})
	if err != nil {
		return 0
	}
	return size
}

func (rr *reliableReader) Close() error {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.inner == nil {
		return nil
	}
	err := rr.inner.Close()
	rr.inner = nil
	return err
}

// Open implements Backend. It never touches the inner backend: the object
// is opened lazily on the first ReadAt/Size, under the retry policy. A
// missing object therefore surfaces at first read, not at Open.
func (r *Reliable) Open(name string) (Reader, error) {
	return &reliableReader{r: r, name: name}, nil
}

// ReadAll implements Backend.
func (r *Reliable) ReadAll(name string) ([]byte, error) {
	var data []byte
	err := r.do("get", name, func() error {
		var ierr error
		data, ierr = r.b.ReadAll(name)
		return ierr
	})
	return data, err
}

// Delete implements Backend.
func (r *Reliable) Delete(name string) error {
	return r.do("delete", name, func() error { return r.b.Delete(name) })
}

// List implements Backend.
func (r *Reliable) List(prefix string) ([]string, error) {
	var names []string
	err := r.do("list", prefix, func() error {
		var ierr error
		names, ierr = r.b.List(prefix)
		return ierr
	})
	return names, err
}

// Size implements Backend.
func (r *Reliable) Size(name string) (int64, error) {
	var size int64
	err := r.do("head", name, func() error {
		var ierr error
		size, ierr = r.b.Size(name)
		return ierr
	})
	return size, err
}

// Rename implements Backend.
func (r *Reliable) Rename(oldname, newname string) error {
	return r.do("rename", newname, func() error { return r.b.Rename(oldname, newname) })
}

// Tier implements Backend.
func (r *Reliable) Tier() Tier { return r.b.Tier() }

// Stats implements Backend.
func (r *Reliable) Stats() *Stats { return r.b.Stats() }
