package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks failures produced by the Faulty wrapper. Injected
// errors wrap it, so tests and tools can tell chaos from genuine faults
// with errors.Is.
var ErrInjected = fmt.Errorf("storage: injected fault")

// FaultConfig tunes a Faulty wrapper. All rates are probabilities in
// [0, 1]; zero disables that fault class.
type FaultConfig struct {
	// Seed fixes the fault RNG for reproducible chaos runs. Zero seeds
	// from the current time.
	Seed int64
	// GetErrorRate fails read requests (Open, ReadAt, ReadAll).
	GetErrorRate float64
	// PutErrorRate fails object creations (Create and the commit at Close).
	PutErrorRate float64
	// DeleteErrorRate fails Delete requests.
	DeleteErrorRate float64
	// MetaErrorRate fails List / Size / Rename requests.
	MetaErrorRate float64
	// TornWriteRate makes a committing writer persist only a random prefix
	// of its unsynced bytes — a local-media power-loss model. The commit
	// still reports failure so the caller knows the object is suspect.
	TornWriteRate float64
	// CorruptRate flips one random bit in the result of a successful read
	// (ReadAt and ReadAll) with this probability — a silent-media-corruption
	// model for the local tier. The request itself succeeds; only the bytes
	// are wrong, so checksum verification is what must catch it.
	CorruptRate float64
	// WriteBudgetBytes, when positive, models a filling disk: once this many
	// bytes have been written through the wrapper, every further write and
	// object creation fails with an injected ENOSPC. Zero disables.
	WriteBudgetBytes int64
	// SyncFailures, when positive, fails the next N Sync calls with an
	// injected EIO — the fsyncgate scenario. The writer is marked failed, so
	// a subsequent Sync or Close must not silently succeed.
	SyncFailures int
	// BudgetExemptPrefixes lists object-name prefixes whose writes bypass
	// the write budget — modeling the reserved metadata headroom real
	// deployments keep (ext4 reserved blocks, ZFS slop space) so tiny
	// version-edit appends survive a data disk that large table and WAL
	// writes have filled.
	BudgetExemptPrefixes []string
	// ExtraLatency is added to every request that passes the fault checks.
	ExtraLatency time.Duration
}

// Faulty is a composable chaos decorator: it wraps any Backend (local or
// cloud tier alike) and injects request failures, outage windows, torn
// writes and added latency in front of it. The degraded-mode and crash
// tests drive the engine through it; the CLI fault knobs expose it to
// benchmarks.
type Faulty struct {
	b   Backend
	cfg FaultConfig

	mu            sync.Mutex
	rng           *rand.Rand
	outage        bool
	outageUntil   time.Time // zero = until EndOutage
	hook          func(op, name string) error
	corruptRate   float64 // guarded by mu; runtime-adjustable
	injectedFault atomic.Int64

	writeBudget atomic.Int64 // 0 = unlimited
	written     atomic.Int64
	syncFails   atomic.Int64
	corrupted   atomic.Int64
}

// NewFaulty wraps b with the given fault configuration.
func NewFaulty(b Backend, cfg FaultConfig) *Faulty {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	f := &Faulty{b: b, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	f.corruptRate = cfg.CorruptRate
	f.writeBudget.Store(cfg.WriteBudgetBytes)
	f.syncFails.Store(int64(cfg.SyncFailures))
	return f
}

// Unwrap returns the wrapped backend (BaseBackend compatibility).
func (f *Faulty) Unwrap() Backend { return f.b }

// StartOutage begins an outage window: every request fails until it ends.
// A non-positive duration keeps the outage up until EndOutage.
func (f *Faulty) StartOutage(d time.Duration) {
	f.mu.Lock()
	f.outage = true
	if d > 0 {
		f.outageUntil = time.Now().Add(d)
	} else {
		f.outageUntil = time.Time{}
	}
	f.mu.Unlock()
}

// EndOutage clears an outage window.
func (f *Faulty) EndOutage() {
	f.mu.Lock()
	f.outage = false
	f.mu.Unlock()
}

// OutageActive reports whether an outage window is in effect.
func (f *Faulty) OutageActive() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.outageLocked()
}

func (f *Faulty) outageLocked() bool {
	if !f.outage {
		return false
	}
	if !f.outageUntil.IsZero() && time.Now().After(f.outageUntil) {
		f.outage = false
		return false
	}
	return true
}

// SetHook installs fn to be consulted before every request (including the
// per-write sub-operations of an open writer), mirroring the cloud sim's
// failure hook but on any backend. A non-nil return fails the request with
// that error. Crash-point tests use it to kill all I/O at a chosen moment.
func (f *Faulty) SetHook(fn func(op, name string) error) {
	f.mu.Lock()
	f.hook = fn
	f.mu.Unlock()
}

// InjectedFaults returns how many requests this wrapper has failed.
func (f *Faulty) InjectedFaults() int64 { return f.injectedFault.Load() }

// CorruptedReads returns how many reads had a bit silently flipped.
func (f *Faulty) CorruptedReads() int64 { return f.corrupted.Load() }

// SetCorruptRate adjusts the silent read-corruption probability at runtime,
// so a chaos phase can turn the bit-flip storm on and off mid-run.
func (f *Faulty) SetCorruptRate(rate float64) {
	f.mu.Lock()
	f.corruptRate = rate
	f.mu.Unlock()
}

// SetWriteBudget (re)arms the filling-disk model: writes fail with an
// injected ENOSPC once the cumulative bytes written exceed budget. A zero
// or negative budget clears the limit. The written counter is not reset, so
// passing a budget at or below the bytes already written makes the very
// next write fail — the "disk just filled up" chaos phase.
func (f *Faulty) SetWriteBudget(budget int64) {
	if budget < 0 {
		budget = 0
	}
	f.writeBudget.Store(budget)
}

// SetSyncFailures arms the next n Sync calls to fail with an injected EIO.
func (f *Faulty) SetSyncFailures(n int) { f.syncFails.Store(int64(n)) }

// WrittenBytes returns the cumulative bytes written through the wrapper —
// the counter the write budget is charged against. A chaos phase that
// wants a nearly-full disk (big writes fail, small metadata appends still
// fit) sets the budget to WrittenBytes() plus a little headroom.
func (f *Faulty) WrittenBytes() int64 { return f.written.Load() }

// overBudget reports whether n more bytes would exceed the write budget.
func (f *Faulty) overBudget(n int) bool {
	budget := f.writeBudget.Load()
	return budget > 0 && f.written.Load()+int64(n) > budget
}

// budgetExempt reports whether writes to name draw from the reserved
// metadata headroom instead of the budgeted data space. Prefixes match
// the full object name and its basename: exemption is about the kind of
// file ("MANIFEST"), which a sharded store nests under "shard-NNN/".
func (f *Faulty) budgetExempt(name string) bool {
	base := name
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		base = name[i+1:]
	}
	for _, p := range f.cfg.BudgetExemptPrefixes {
		if strings.HasPrefix(name, p) || strings.HasPrefix(base, p) {
			return true
		}
	}
	return false
}

// corrupt flips one random bit of p when the corruption roll hits,
// returning whether it did.
func (f *Faulty) corrupt(p []byte) bool {
	if len(p) == 0 {
		return false
	}
	f.mu.Lock()
	rate := f.corruptRate
	hit := rate > 0 && f.rng.Float64() < rate
	var idx, bit int
	if hit {
		idx = f.rng.Intn(len(p))
		bit = f.rng.Intn(8)
	}
	f.mu.Unlock()
	if !hit {
		return false
	}
	p[idx] ^= 1 << uint(bit)
	f.corrupted.Add(1)
	return true
}

// errNoSpace builds the injected ENOSPC error.
func (f *Faulty) errNoSpace(name string) error {
	f.injectedFault.Add(1)
	return fmt.Errorf("%w: no space left on device (%s)", ErrInjected, name)
}

// hookErr consults only the hook (used by writer sub-operations, where
// rate-based faults would compound per Write call).
func (f *Faulty) hookErr(op, name string) error {
	f.mu.Lock()
	hook := f.hook
	f.mu.Unlock()
	if hook == nil {
		return nil
	}
	if err := hook(op, name); err != nil {
		f.injectedFault.Add(1)
		return err
	}
	return nil
}

// check applies the full fault pipeline for one request: hook, outage
// window, rate roll, then the added latency.
func (f *Faulty) check(op, name string, rate float64) error {
	if err := f.hookErr(op, name); err != nil {
		return err
	}
	f.mu.Lock()
	out := f.outageLocked()
	hit := rate > 0 && f.rng.Float64() < rate
	f.mu.Unlock()
	if out {
		f.injectedFault.Add(1)
		return fmt.Errorf("%w: outage (%s %s)", ErrInjected, op, name)
	}
	if hit {
		f.injectedFault.Add(1)
		return fmt.Errorf("%w: %s %s", ErrInjected, op, name)
	}
	if f.cfg.ExtraLatency > 0 {
		time.Sleep(f.cfg.ExtraLatency)
	}
	return nil
}

func (f *Faulty) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	f.mu.Lock()
	hit := f.rng.Float64() < rate
	f.mu.Unlock()
	return hit
}

func (f *Faulty) intn(n int) int {
	f.mu.Lock()
	v := f.rng.Intn(n)
	f.mu.Unlock()
	return v
}

// faultyWriter buffers bytes written since the last Sync so a torn commit
// can drop (or truncate) exactly the unsynced suffix — synced bytes are
// durable, everything else is at the mercy of the fault roll, matching
// local-media crash semantics.
type faultyWriter struct {
	f      *Faulty
	w      Writer
	name   string
	buf    []byte
	failed bool
	exempt bool // draws from reserved metadata headroom, not the budget
}

func (w *faultyWriter) Write(p []byte) (int, error) {
	if err := w.f.hookErr("PUT", w.name); err != nil {
		w.failed = true
		return 0, err
	}
	if !w.exempt {
		if w.f.overBudget(len(p)) {
			w.failed = true
			return 0, w.f.errNoSpace(w.name)
		}
		w.f.written.Add(int64(len(p)))
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *faultyWriter) Sync() error {
	// fsyncgate semantics: after one failed fsync the kernel has dropped the
	// dirty pages, so re-fsyncing the same descriptor proves nothing. A
	// failed writer stays failed; Sync and Close keep reporting the fault.
	if w.failed {
		return fmt.Errorf("%w: sync after failed write (%s)", ErrInjected, w.name)
	}
	if err := w.f.hookErr("PUT", w.name); err != nil {
		w.failed = true
		return err
	}
	if n := w.f.syncFails.Load(); n > 0 && w.f.syncFails.CompareAndSwap(n, n-1) {
		w.failed = true
		w.f.injectedFault.Add(1)
		return fmt.Errorf("%w: fsync EIO (%s)", ErrInjected, w.name)
	}
	if err := w.flush(); err != nil {
		w.failed = true
		return err
	}
	return w.w.Sync()
}

func (w *faultyWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// abandon discards the commit after an injected failure. A local-tier
// inner writer is closed so its descriptor is released (the partial file
// stays behind, like a crash would leave it); a cloud-tier inner writer is
// NOT closed — closing is what commits a cloud object, and a failed PUT
// must leave no object.
func (w *faultyWriter) abandon() {
	if w.f.b.Tier() == TierLocal {
		_ = w.w.Close()
	}
}

func (w *faultyWriter) Close() error {
	if w.failed {
		w.abandon()
		return fmt.Errorf("%w: close after failed write (%s)", ErrInjected, w.name)
	}
	if err := w.f.check("PUT", w.name, w.f.cfg.PutErrorRate); err != nil {
		w.abandon()
		return err
	}
	if w.f.roll(w.f.cfg.TornWriteRate) {
		w.f.injectedFault.Add(1)
		if len(w.buf) > 0 {
			_, _ = w.w.Write(w.buf[:w.f.intn(len(w.buf))])
		}
		w.abandon()
		return fmt.Errorf("%w: torn write (%s)", ErrInjected, w.name)
	}
	if err := w.flush(); err != nil {
		return err
	}
	return w.w.Close()
}

// Create implements Backend.
func (f *Faulty) Create(name string) (Writer, error) {
	if err := f.check("PUT", name, f.cfg.PutErrorRate); err != nil {
		return nil, err
	}
	exempt := f.budgetExempt(name)
	if !exempt && f.overBudget(0) {
		return nil, f.errNoSpace(name)
	}
	w, err := f.b.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyWriter{f: f, w: w, name: name, exempt: exempt}, nil
}

type faultyReader struct {
	f    *Faulty
	r    Reader
	name string
}

func (r *faultyReader) ReadAt(p []byte, off int64) (int, error) {
	if err := r.f.check("GET", r.name, r.f.cfg.GetErrorRate); err != nil {
		return 0, err
	}
	n, err := r.r.ReadAt(p, off)
	if n > 0 {
		r.f.corrupt(p[:n])
	}
	return n, err
}

func (r *faultyReader) Size() int64  { return r.r.Size() }
func (r *faultyReader) Close() error { return r.r.Close() }

// Open implements Backend; every ReadAt through the returned reader passes
// the fault checks again, so a long-lived handle does not shield reads
// from a mid-stream outage.
func (f *Faulty) Open(name string) (Reader, error) {
	if err := f.check("GET", name, f.cfg.GetErrorRate); err != nil {
		return nil, err
	}
	r, err := f.b.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyReader{f: f, r: r, name: name}, nil
}

// ReadAll implements Backend.
func (f *Faulty) ReadAll(name string) ([]byte, error) {
	if err := f.check("GET", name, f.cfg.GetErrorRate); err != nil {
		return nil, err
	}
	data, err := f.b.ReadAll(name)
	if err == nil {
		f.corrupt(data)
	}
	return data, err
}

// Delete implements Backend.
func (f *Faulty) Delete(name string) error {
	if err := f.check("DELETE", name, f.cfg.DeleteErrorRate); err != nil {
		return err
	}
	return f.b.Delete(name)
}

// List implements Backend.
func (f *Faulty) List(prefix string) ([]string, error) {
	if err := f.check("LIST", prefix, f.cfg.MetaErrorRate); err != nil {
		return nil, err
	}
	return f.b.List(prefix)
}

// Size implements Backend.
func (f *Faulty) Size(name string) (int64, error) {
	if err := f.check("HEAD", name, f.cfg.MetaErrorRate); err != nil {
		return 0, err
	}
	return f.b.Size(name)
}

// Rename implements Backend.
func (f *Faulty) Rename(oldname, newname string) error {
	if err := f.check("PUT", newname, f.cfg.MetaErrorRate); err != nil {
		return err
	}
	return f.b.Rename(oldname, newname)
}

// Tier implements Backend.
func (f *Faulty) Tier() Tier { return f.b.Tier() }

// Stats implements Backend.
func (f *Faulty) Stats() *Stats { return f.b.Stats() }
