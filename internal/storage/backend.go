// Package storage abstracts the two storage tiers the store integrates:
// fast local storage (SSD/NVMe) and cloud object storage. Both expose the
// same Backend interface; the cloud implementation layers a configurable
// latency/bandwidth simulation and a request+capacity cost model on top, so
// that experiments reproduce the performance and cost *profile* of a real
// object store (S3/OSS) without network access.
package storage

import (
	"errors"
	"io"
)

// Tier identifies which storage class a backend represents.
type Tier uint8

const (
	// TierLocal is fast, byte-addressable local storage.
	TierLocal Tier = iota
	// TierCloud is high-latency, high-capacity object storage.
	TierCloud
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierLocal:
		return "local"
	case TierCloud:
		return "cloud"
	default:
		return "unknown"
	}
}

// ErrNotFound is returned when an object does not exist.
var ErrNotFound = errors.New("storage: object not found")

// ErrCloudUnavailable is returned by the Reliable wrapper when its circuit
// breaker is open: the cloud tier is considered down and requests fail fast
// instead of piling up in retry loops. Callers can test for it with
// errors.Is to distinguish an outage from data-level errors.
var ErrCloudUnavailable = errors.New("storage: cloud unavailable")

// ErrLocalUnavailable is the local tier's twin of ErrCloudUnavailable: the
// local device's circuit breaker is open (repeated ENOSPC or fsync
// failures) and local writes fail fast while the store runs degraded.
var ErrLocalUnavailable = errors.New("storage: local tier unavailable")

// ErrCorruption classifies data-integrity failures: a checksum mismatch, a
// bit-flipped block, a malformed footer. Unlike a transient request fault,
// re-reading the same replica cannot fix corruption, so the Reliable
// wrapper never retries an error wrapping this sentinel — the caller must
// repair from another source or surface a typed error.
var ErrCorruption = errors.New("storage: data corruption")

// Writer is a handle for creating an object. Cloud semantics: the object
// becomes visible atomically at Close; Sync is a no-op there. Local
// semantics: Sync flushes to stable media.
type Writer interface {
	io.Writer
	// Sync makes previously written bytes durable (local tier). On the
	// cloud tier durability is provided at Close and Sync is a no-op.
	Sync() error
	// Close completes the object. No writes may follow.
	Close() error
}

// Reader is a random-access handle to an object.
type Reader interface {
	io.ReaderAt
	io.Closer
	// Size returns the object length in bytes.
	Size() int64
}

// Backend is one storage tier.
type Backend interface {
	// Create makes a new object, truncating any existing one.
	Create(name string) (Writer, error)
	// Open returns a random-access reader; ErrNotFound if absent.
	Open(name string) (Reader, error)
	// ReadAll fetches a whole object.
	ReadAll(name string) ([]byte, error)
	// Delete removes an object. Deleting a missing object is not an error.
	Delete(name string) error
	// List returns the names of objects with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Size returns an object's length; ErrNotFound if absent.
	Size(name string) (int64, error)
	// Rename atomically replaces newname with oldname's object.
	Rename(oldname, newname string) error
	// Tier reports which storage class this backend is.
	Tier() Tier
	// Stats returns the backend's operation counters.
	Stats() *Stats
}

// WriteObject writes data as a complete object.
func WriteObject(b Backend, name string, data []byte) error {
	w, err := b.Create(name)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
