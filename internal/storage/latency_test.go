package storage

import (
	"testing"
	"time"
)

func TestLocalExtraLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	l, err := NewLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteObject(l, "o", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	l.ExtraLatency = 10 * time.Millisecond
	start := time.Now()
	if _, err := l.ReadAll("o"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 8*time.Millisecond {
		t.Fatalf("extra latency not applied: %v", el)
	}
}

func TestTransferTimeModel(t *testing.T) {
	m := LatencyModel{ReadBandwidth: 100 << 20} // 100 MiB/s
	d := m.transfer(10<<20, m.ReadBandwidth)    // 10 MiB
	if d < 90*time.Millisecond || d > 110*time.Millisecond {
		t.Fatalf("transfer(10MiB @100MiB/s) = %v, want ~100ms", d)
	}
	if m.transfer(0, m.ReadBandwidth) != 0 {
		t.Fatal("zero bytes should cost nothing")
	}
	if m.transfer(1<<20, 0) != 0 {
		t.Fatal("unlimited bandwidth should cost nothing")
	}
}

func TestCloudWriteBandwidthApplied(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	lat := LatencyModel{WriteBandwidth: 10 << 20} // 10 MiB/s
	c, err := NewCloud(t.TempDir(), lat, DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := WriteObject(c, "o", make([]byte, 1<<20)); err != nil { // 1 MiB -> ~100ms
		t.Fatal(err)
	}
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Fatalf("write bandwidth not applied: %v", el)
	}
}
