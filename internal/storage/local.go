package storage

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Local is a directory-backed Backend representing the local SSD tier.
// Object names map to files under the root; "/" in names maps to
// subdirectories.
type Local struct {
	root  string
	stats Stats

	// ExtraLatency, when nonzero, is added to every read and write request
	// to model slower local media in experiments. Zero for real runs.
	ExtraLatency time.Duration

	mu sync.Mutex // serializes Rename vs Create races on the same names
}

// NewLocal returns a local backend rooted at dir, creating it if needed.
func NewLocal(dir string) (*Local, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Local{root: dir}, nil
}

// Root returns the backing directory.
func (l *Local) Root() string { return l.root }

// Tier implements Backend.
func (l *Local) Tier() Tier { return TierLocal }

// Stats implements Backend.
func (l *Local) Stats() *Stats { return &l.stats }

func (l *Local) path(name string) string { return filepath.Join(l.root, filepath.FromSlash(name)) }

func (l *Local) sleep() {
	if l.ExtraLatency > 0 {
		time.Sleep(l.ExtraLatency)
	}
}

type localWriter struct {
	f *os.File
	l *Local

	// syncErr latches the first fsync failure. Once fsync reports an error
	// the kernel may have dropped the dirty pages, so a second fsync on the
	// same descriptor can "succeed" without the data ever reaching media
	// (the fsyncgate failure mode). The file is failed permanently instead:
	// every later Sync and the Close report the original fault.
	syncErr error
}

func (w *localWriter) Write(p []byte) (int, error) {
	if w.syncErr != nil {
		return 0, w.syncErr
	}
	w.l.sleep()
	n, err := w.f.Write(p)
	w.l.stats.BytesWrite.Add(int64(n))
	return n, err
}

func (w *localWriter) Sync() error {
	if w.syncErr != nil {
		return w.syncErr
	}
	if err := w.f.Sync(); err != nil {
		w.syncErr = err
		return err
	}
	return nil
}

func (w *localWriter) Close() error {
	w.l.stats.PutOps.Add(1)
	err := w.f.Close()
	if w.syncErr != nil {
		return w.syncErr
	}
	return err
}

// Create implements Backend.
func (l *Local) Create(name string) (Writer, error) {
	p := l.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &localWriter{f: f, l: l}, nil
}

type localReader struct {
	f    *os.File
	l    *Local
	size int64
}

func (r *localReader) ReadAt(p []byte, off int64) (int, error) {
	r.l.sleep()
	n, err := r.f.ReadAt(p, off)
	r.l.stats.GetOps.Add(1)
	r.l.stats.BytesRead.Add(int64(n))
	return n, err
}

func (r *localReader) Size() int64  { return r.size }
func (r *localReader) Close() error { return r.f.Close() }

// Open implements Backend.
func (l *Local) Open(name string) (Reader, error) {
	f, err := os.Open(l.path(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &localReader{f: f, l: l, size: st.Size()}, nil
}

// ReadAll implements Backend.
func (l *Local) ReadAll(name string) ([]byte, error) {
	r, err := l.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]byte, r.Size())
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// Delete implements Backend.
func (l *Local) Delete(name string) error {
	l.stats.DeleteOps.Add(1)
	err := os.Remove(l.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// List implements Backend.
func (l *Local) List(prefix string) ([]string, error) {
	l.stats.ListOps.Add(1)
	var names []string
	err := filepath.WalkDir(l.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(l.root, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(rel, prefix) {
			names = append(names, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Size implements Backend.
func (l *Local) Size(name string) (int64, error) {
	st, err := os.Stat(l.path(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, ErrNotFound
		}
		return 0, err
	}
	return st.Size(), nil
}

// Rename implements Backend.
func (l *Local) Rename(oldname, newname string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	np := l.path(newname)
	if err := os.MkdirAll(filepath.Dir(np), 0o755); err != nil {
		return err
	}
	return os.Rename(l.path(oldname), np)
}
