package storage

import "sync/atomic"

// Stats counts operations and bytes moved through a backend. All fields are
// updated atomically and may be read concurrently.
type Stats struct {
	GetOps     atomic.Int64 // read requests (Open/ReadAt/ReadAll)
	PutOps     atomic.Int64 // completed object creations
	DeleteOps  atomic.Int64
	ListOps    atomic.Int64
	BytesRead  atomic.Int64
	BytesWrite atomic.Int64
}

// Snapshot is a point-in-time copy of Stats.
type Snapshot struct {
	GetOps     int64
	PutOps     int64
	DeleteOps  int64
	ListOps    int64
	BytesRead  int64
	BytesWrite int64
}

// Snapshot returns a consistent-enough copy for reporting.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		GetOps:     s.GetOps.Load(),
		PutOps:     s.PutOps.Load(),
		DeleteOps:  s.DeleteOps.Load(),
		ListOps:    s.ListOps.Load(),
		BytesRead:  s.BytesRead.Load(),
		BytesWrite: s.BytesWrite.Load(),
	}
}

// BytesPerGet returns the mean read-request size in bytes. Request
// coalescing (prefetch, readahead) shows up directly here: the same bytes
// arrive in fewer, larger GETs.
func (s *Stats) BytesPerGet() float64 { return s.Snapshot().BytesPerGet() }

// BytesPerGet returns the mean read-request size in bytes.
func (s Snapshot) BytesPerGet() float64 {
	if s.GetOps == 0 {
		return 0
	}
	return float64(s.BytesRead) / float64(s.GetOps)
}

// Sub returns s - o, counter-wise.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		GetOps:     s.GetOps - o.GetOps,
		PutOps:     s.PutOps - o.PutOps,
		DeleteOps:  s.DeleteOps - o.DeleteOps,
		ListOps:    s.ListOps - o.ListOps,
		BytesRead:  s.BytesRead - o.BytesRead,
		BytesWrite: s.BytesWrite - o.BytesWrite,
	}
}
