package storage

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"rocksmash/internal/retry"
)

func fastPolicy() retry.Policy {
	return retry.Policy{
		MaxAttempts: 4,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  time.Microsecond,
	}
}

func fastBreaker(threshold int) *retry.Breaker {
	return retry.NewBreaker(retry.BreakerConfig{
		FailureThreshold: threshold,
		Cooldown:         time.Millisecond,
	})
}

func TestReliableRetriesTransientFaults(t *testing.T) {
	inner := NewFaulty(newTestCloud(t), FaultConfig{Seed: 1})
	var retried []string
	r := NewReliable(inner, fastPolicy(), nil,
		func(op, name string, attempt int, err error, delay time.Duration) {
			retried = append(retried, op)
		}, nil)

	fails := 2
	inner.SetHook(func(op, name string) error {
		if op == "PUT" && fails > 0 {
			fails--
			return errors.New("transient 503")
		}
		return nil
	})
	attempts, err := r.WriteObject("obj", []byte("payload"))
	if err != nil {
		t.Fatalf("WriteObject: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if len(retried) != 2 || retried[0] != "put" {
		t.Fatalf("onRetry calls = %v, want two put retries", retried)
	}
	got, err := r.ReadAll("obj")
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
}

func TestReliableNotFoundPassesThroughUnretried(t *testing.T) {
	calls := 0
	inner := NewFaulty(newTestCloud(t), FaultConfig{Seed: 1})
	inner.SetHook(func(op, name string) error { calls++; return nil })
	br := fastBreaker(1)
	r := NewReliable(inner, fastPolicy(), br, nil, nil)
	if _, err := r.ReadAll("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadAll missing = %v, want ErrNotFound", err)
	}
	if calls != 1 {
		t.Fatalf("backend calls = %d, want 1 (no retries on ErrNotFound)", calls)
	}
	if br.State() != retry.StateClosed {
		t.Fatal("ErrNotFound must not count against the breaker")
	}
}

func TestReliableBreakerFailsFast(t *testing.T) {
	inner := NewFaulty(newTestCloud(t), FaultConfig{Seed: 1})
	if err := WriteObject(inner, "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	br := retry.NewBreaker(retry.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour})
	r := NewReliable(inner, retry.Policy{MaxAttempts: 1, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}, br, nil, nil)

	inner.StartOutage(0)
	for i := 0; i < 2; i++ {
		if _, err := r.ReadAll("obj"); err == nil {
			t.Fatal("read during outage succeeded")
		}
	}
	if br.State() != retry.StateOpen {
		t.Fatalf("breaker state = %s, want open", br.State())
	}
	before := inner.InjectedFaults()
	if _, err := r.ReadAll("obj"); !errors.Is(err, ErrCloudUnavailable) {
		t.Fatalf("open-breaker read = %v, want ErrCloudUnavailable", err)
	}
	if inner.InjectedFaults() != before {
		t.Fatal("open breaker still touched the backend")
	}
}

func TestReliableBreakerRecoversViaProbe(t *testing.T) {
	inner := NewFaulty(newTestCloud(t), FaultConfig{Seed: 1})
	if err := WriteObject(inner, "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	br := fastBreaker(1)
	r := NewReliable(inner, retry.Policy{MaxAttempts: 1, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}, br, nil, nil)

	inner.StartOutage(0)
	if _, err := r.ReadAll("obj"); err == nil {
		t.Fatal("read during outage succeeded")
	}
	if br.State() != retry.StateOpen {
		t.Fatalf("state = %s, want open", br.State())
	}
	inner.EndOutage()
	time.Sleep(5 * time.Millisecond) // past the cooldown
	got, err := r.ReadAll("obj")     // probe succeeds, breaker closes
	if err != nil || !bytes.Equal(got, []byte("x")) {
		t.Fatalf("probe read = %q, %v", got, err)
	}
	if br.State() != retry.StateClosed {
		t.Fatalf("state = %s after successful probe, want closed", br.State())
	}
}

func TestReliableLazyOpen(t *testing.T) {
	inner := NewFaulty(newTestCloud(t), FaultConfig{Seed: 1})
	if err := WriteObject(inner, "obj", []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	touched := 0
	inner.SetHook(func(op, name string) error { touched++; return nil })
	r := NewReliable(inner, fastPolicy(), nil, nil, nil)

	h, err := r.Open("obj")
	if err != nil {
		t.Fatal(err)
	}
	if touched != 0 {
		t.Fatalf("Open touched the backend %d times, want lazy open", touched)
	}
	buf := make([]byte, 4)
	n, err := h.ReadAt(buf, 2)
	if err != nil || n != 4 || string(buf) != "cdef" {
		t.Fatalf("ReadAt = %q (%d), %v", buf[:n], n, err)
	}
	if touched == 0 {
		t.Fatal("first ReadAt did not open the object")
	}
	if sz := h.Size(); sz != 8 {
		t.Fatalf("Size = %d, want 8", sz)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal("double Close should be a no-op")
	}
}

func TestReliableCreateBuffersUntilClose(t *testing.T) {
	inner := NewFaulty(newTestCloud(t), FaultConfig{Seed: 1})
	r := NewReliable(inner, fastPolicy(), nil, nil, nil)

	w, err := r.Create("obj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("part1-")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("part2")); err != nil {
		t.Fatal(err)
	}
	if _, err := inner.ReadAll("obj"); !errors.Is(err, ErrNotFound) {
		t.Fatal("object visible before Close")
	}
	// A transient failure at upload time is absorbed by Close's retry.
	fails := 1
	inner.SetHook(func(op, name string) error {
		if op == "PUT" && fails > 0 {
			fails--
			return errors.New("transient")
		}
		return nil
	})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := r.ReadAll("obj")
	if err != nil || string(got) != "part1-part2" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
}

func TestReliableUnwrapChain(t *testing.T) {
	cloud := newTestCloud(t)
	r := NewReliable(Instrument(cloud, nil, nil), fastPolicy(), nil, nil, nil)
	if BaseBackend(r) != Backend(cloud) {
		t.Fatal("BaseBackend should unwrap Reliable and Instrumented down to the cloud sim")
	}
}
