package storage

import (
	"bytes"
	"errors"
	"testing"
)

// TestFaultyCorruptRateFlipsBits drives reads at CorruptRate=1 and asserts
// the request succeeds while the bytes come back damaged — the
// silent-media-corruption model checksums must catch.
func TestFaultyCorruptRateFlipsBits(t *testing.T) {
	f := NewFaulty(newTestLocal(t), FaultConfig{Seed: 3, CorruptRate: 1})
	want := bytes.Repeat([]byte("payload"), 64)
	if err := WriteObject(f, "obj", want); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll("obj")
	if err != nil {
		t.Fatalf("corrupted read must still succeed, got %v", err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("CorruptRate=1 read returned pristine bytes")
	}
	if n := f.CorruptedReads(); n == 0 {
		t.Fatal("CorruptedReads not counted")
	}
	// The damage is injected on the wire, not the media: a rate of zero
	// reads the object back intact.
	f.SetCorruptRate(0)
	got, err = f.ReadAll("obj")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("underlying object damaged: err=%v equal=%v", err, bytes.Equal(got, want))
	}
}

// TestFaultyWriteBudgetENOSPC exhausts the byte budget and asserts further
// writes and creates fail with the injected ENOSPC, while budget-exempt
// prefixes (reserved metadata headroom) keep writing.
func TestFaultyWriteBudgetENOSPC(t *testing.T) {
	f := NewFaulty(newTestLocal(t), FaultConfig{
		Seed:                 5,
		WriteBudgetBytes:     64,
		BudgetExemptPrefixes: []string{"MANIFEST"},
	})
	if err := WriteObject(f, "a", make([]byte, 60)); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	err := WriteObject(f, "b", make([]byte, 60))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write past budget err = %v, want injected ENOSPC", err)
	}
	// Dropping the budget below what is already written models the disk
	// having just filled: even creating a fresh object fails.
	f.SetWriteBudget(32)
	if _, err := f.Create("c"); err == nil {
		t.Fatal("Create past budget must fail")
	}
	// The reserved metadata headroom still accepts writes.
	if err := WriteObject(f, "MANIFEST-000001", make([]byte, 128)); err != nil {
		t.Fatalf("budget-exempt write failed: %v", err)
	}
	// Lifting the budget restores normal writes.
	f.SetWriteBudget(0)
	if err := WriteObject(f, "d", make([]byte, 60)); err != nil {
		t.Fatalf("write after budget lift: %v", err)
	}
	if f.WrittenBytes() < 120 {
		t.Fatalf("WrittenBytes = %d, want >= 120", f.WrittenBytes())
	}
}

// TestFaultySyncFailureLatches injects one fsync EIO and asserts fsyncgate
// semantics: the failed writer stays failed — a later Sync or Close must
// not report success for data the kernel already dropped.
func TestFaultySyncFailureLatches(t *testing.T) {
	f := NewFaulty(newTestLocal(t), FaultConfig{Seed: 7, SyncFailures: 1})
	w, err := f.Create("obj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed Sync err = %v, want injected EIO", err)
	}
	if err := w.Sync(); err == nil {
		t.Fatal("Sync after failed Sync reported success")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after failed Sync reported success")
	}
	// The failure consumed the armed EIO; a fresh writer works.
	w2, err := f.Create("obj2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatalf("fresh writer Sync: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("fresh writer Close: %v", err)
	}
}

// TestReliableNeverRetriesCorruption asserts the retry wrapper's contract
// for checksum damage: re-reading the same replica returns the same bytes,
// so a corruption-classified error must surface on the first attempt and
// must not trip the availability breaker.
func TestReliableNeverRetriesCorruption(t *testing.T) {
	inner := NewFaulty(newTestCloud(t), FaultConfig{Seed: 11})
	attempts := 0
	inner.SetHook(func(op, name string) error {
		if op == "GET" {
			attempts++
			return ErrCorruption
		}
		return nil
	})
	br := fastBreaker(1)
	r := NewReliable(inner, fastPolicy(), br, nil, nil)
	if err := WriteObject(r, "obj", []byte("data")); err != nil {
		t.Fatal(err)
	}
	_, err := r.ReadAll("obj")
	if !errors.Is(err, ErrCorruption) {
		t.Fatalf("err = %v, want ErrCorruption", err)
	}
	if attempts != 1 {
		t.Fatalf("corrupt read attempted %d times, want exactly 1", attempts)
	}
	if br.State() != 0 { // retry.StateClosed
		t.Fatalf("breaker state = %v after corruption, want closed: the tier is up", br.State())
	}
}
