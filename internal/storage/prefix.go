package storage

import "strings"

// Prefixed exposes a sub-namespace of a backend: every object name is
// transparently prefixed (e.g. "shard-003/") on the way in and stripped on
// the way out. Keyspace shards each root their WAL, manifest, tables and
// sidecars in their own prefix of the same physical backend, so one local
// directory (or one cloud bucket) hosts all shards without any shard
// knowing about the others. Stats remain the wrapped backend's — I/O
// counters are per device, not per namespace.
type Prefixed struct {
	b      Backend
	prefix string
}

// NewPrefix wraps b so all names live under prefix. A trailing separator is
// appended if missing so prefixes always end at a path boundary.
func NewPrefix(b Backend, prefix string) *Prefixed {
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return &Prefixed{b: b, prefix: prefix}
}

// Unwrap returns the wrapped backend (for BaseBackend).
func (p *Prefixed) Unwrap() Backend { return p.b }

// Create implements Backend.
func (p *Prefixed) Create(name string) (Writer, error) { return p.b.Create(p.prefix + name) }

// Open implements Backend.
func (p *Prefixed) Open(name string) (Reader, error) { return p.b.Open(p.prefix + name) }

// ReadAll implements Backend.
func (p *Prefixed) ReadAll(name string) ([]byte, error) { return p.b.ReadAll(p.prefix + name) }

// Delete implements Backend.
func (p *Prefixed) Delete(name string) error { return p.b.Delete(p.prefix + name) }

// List implements Backend; returned names have the namespace prefix
// stripped so callers see the same relative names they wrote.
func (p *Prefixed) List(prefix string) ([]string, error) {
	names, err := p.b.List(p.prefix + prefix)
	if err != nil {
		return nil, err
	}
	out := names[:0]
	for _, n := range names {
		if rel, ok := strings.CutPrefix(n, p.prefix); ok {
			out = append(out, rel)
		}
	}
	return out, nil
}

// Size implements Backend.
func (p *Prefixed) Size(name string) (int64, error) { return p.b.Size(p.prefix + name) }

// Rename implements Backend.
func (p *Prefixed) Rename(oldname, newname string) error {
	return p.b.Rename(p.prefix+oldname, p.prefix+newname)
}

// Tier implements Backend.
func (p *Prefixed) Tier() Tier { return p.b.Tier() }

// Stats implements Backend, delegating to the wrapped backend: request
// counters describe the physical device shared by every namespace on it.
func (p *Prefixed) Stats() *Stats { return p.b.Stats() }
