package skiplist

import (
	"fmt"
	"sync"
	"testing"

	"rocksmash/internal/arena"
	"rocksmash/internal/keys"
)

// TestConcurrentInsertDisjointKeys has many goroutines insert disjoint key
// ranges simultaneously, then verifies the count, full sorted order, and
// point lookups — the CAS publication protocol must lose no node and link
// every level consistently.
func TestConcurrentInsertDisjointKeys(t *testing.T) {
	const (
		writers = 8
		perW    = 2000
	)
	a := arena.New()
	l := New(a)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				seq := uint64(w*perW + i + 1)
				k := ik(fmt.Sprintf("w%d-%06d", w, i), seq)
				l.Insert(k, []byte(fmt.Sprintf("v%d-%d", w, i)))
			}
		}(w)
	}
	wg.Wait()

	if got := l.Len(); got != writers*perW {
		t.Fatalf("Len = %d, want %d", got, writers*perW)
	}
	// Full scan must be sorted and complete.
	it := l.NewIterator()
	var prev []byte
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("order violation at element %d", n)
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != writers*perW {
		t.Fatalf("scan found %d elements, want %d", n, writers*perW)
	}
	// Every inserted key is findable.
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i += 97 {
			seq := uint64(w*perW + i + 1)
			k := ik(fmt.Sprintf("w%d-%06d", w, i), seq)
			it.SeekGE(k)
			if !it.Valid() || keys.Compare(it.Key(), k) != 0 {
				t.Fatalf("key w%d-%06d not found", w, i)
			}
			if want := fmt.Sprintf("v%d-%d", w, i); string(it.Value()) != want {
				t.Fatalf("key w%d-%06d value = %q, want %q", w, i, it.Value(), want)
			}
		}
	}
}

// TestConcurrentInsertInterleavedKeys interleaves writers across the same
// key space (unique internal keys via distinct sequence numbers) so CAS
// retries actually occur at shared predecessors.
func TestConcurrentInsertInterleavedKeys(t *testing.T) {
	const (
		writers = 8
		perW    = 1500
	)
	a := arena.New()
	l := New(a)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Same user keys from every writer; seq keeps them unique.
				seq := uint64(w*perW + i + 1)
				l.Insert(ik(fmt.Sprintf("key-%04d", i%500), seq), []byte("v"))
			}
		}(w)
	}
	wg.Wait()
	if got := l.Len(); got != writers*perW {
		t.Fatalf("Len = %d, want %d", got, writers*perW)
	}
	it := l.NewIterator()
	n := 0
	var prev []byte
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("order violation at element %d", n)
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != writers*perW {
		t.Fatalf("scan found %d, want %d", n, writers*perW)
	}
}

// TestIterateWhileInserting verifies readers see a consistent (sorted,
// monotone) view while inserts race: iterators never observe an unlinked or
// out-of-order node thanks to level-0-first publication.
func TestIterateWhileInserting(t *testing.T) {
	const (
		writers = 4
		perW    = 3000
	)
	a := arena.New()
	l := New(a)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				l.Insert(ik(fmt.Sprintf("w%d-%06d", w, i), uint64(w*perW+i+1)), []byte("v"))
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := l.NewIterator()
				var prev []byte
				for it.First(); it.Valid(); it.Next() {
					if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
						t.Error("concurrent scan observed order violation")
						return
					}
					prev = append(prev[:0], it.Key()...)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := l.Len(); got != writers*perW {
		t.Fatalf("Len = %d, want %d", got, writers*perW)
	}
}

// TestRandomHeightDistribution sanity-checks the lock-free height generator:
// heights stay in range and roughly quarter at each level.
func TestRandomHeightDistribution(t *testing.T) {
	a := arena.New()
	l := New(a)
	counts := make([]int, maxHeight+1)
	const draws = 200000
	for i := 0; i < draws; i++ {
		h := l.randomHeight()
		if h < 1 || h > maxHeight {
			t.Fatalf("height %d out of range", h)
		}
		counts[h]++
	}
	if counts[1] < draws/2 {
		t.Fatalf("height-1 draws %d, want > %d (p=3/4)", counts[1], draws/2)
	}
	if counts[2] == 0 || counts[3] == 0 {
		t.Fatal("taller heights never drawn")
	}
}
