// Package skiplist implements the ordered in-memory index backing the
// memtable. Inserts publish nodes with a CAS loop on the atomic next
// pointers, so any number of writers may insert concurrently (the commit
// pipeline applies group members' batches in parallel); readers stay
// lock-free against atomically published nodes, mirroring the memtable
// concurrency model of RocksDB's concurrent-memtable-writes mode.
package skiplist

import (
	"sync/atomic"

	"rocksmash/internal/arena"
	"rocksmash/internal/keys"
)

const (
	maxHeight = 12
	// branching gives a 1/4 probability of promoting a node one level.
	branching = 4
)

type node struct {
	key   []byte // internal key, arena-backed
	value []byte // arena-backed
	// next[i] is the next node at level i.
	next []atomic.Pointer[node]
}

// List is a skiplist ordered by keys.Compare. All methods, including
// Insert, are safe for concurrent use.
type List struct {
	head   *node
	arena  *arena.Arena
	height atomic.Int32
	count  atomic.Int64

	// rngState drives randomHeight: an atomic splitmix64 counter, so height
	// draws stay lock-free under concurrent inserters.
	rngState atomic.Uint64
}

// seedCounter hands every list a distinct RNG seed. A fixed seed would make
// all lists (one memtable per keyspace shard, rotated on every flush) draw
// identical height sequences, correlating tower shapes across shards.
var seedCounter atomic.Uint64

// New returns an empty skiplist allocating from a.
func New(a *arena.Arena) *List {
	h := &node{next: make([]atomic.Pointer[node], maxHeight)}
	l := &List{head: h, arena: a}
	l.rngState.Store(splitmix64(seedCounter.Add(0x9E3779B97F4A7C15)))
	l.height.Store(1)
	return l
}

// splitmix64 scrambles x into an independent uniform draw (the splitmix64
// finalizer).
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (l *List) randomHeight() int {
	// splitmix64 over an atomic counter: each Add claims a unique state and
	// the finalizer scrambles it into an independent uniform draw.
	x := splitmix64(l.rngState.Add(0x9E3779B97F4A7C15))
	h := 1
	for h < maxHeight && x&(branching-1) == 0 {
		h++
		x >>= 2
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= k and, when prev is
// non-nil, fills prev with the predecessor at every level.
func (l *List) findGreaterOrEqual(k []byte, prev *[maxHeight]*node) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && keys.Compare(next.key, k) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// findLessThan returns the last node with key < k, or the head sentinel.
func (l *List) findLessThan(k []byte) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && keys.Compare(next.key, k) < 0 {
			x = next
			continue
		}
		if level == 0 {
			return x
		}
		level--
	}
}

// findLast returns the last node in the list, or the head sentinel.
func (l *List) findLast() *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil {
			x = next
			continue
		}
		if level == 0 {
			return x
		}
		level--
	}
}

// Insert adds an entry. The internal key must not already be present (the
// memtable guarantees uniqueness by including the sequence number in the
// key). key and value are copied into the arena.
//
// Insert is safe for concurrent use: each level links the node with a CAS
// publication loop, re-walking from the last known predecessor when another
// inserter wins the race. Level 0 is linked first, so a node is reachable
// by readers the moment its bottom-level CAS lands; upper levels are
// search shortcuts and may lag briefly.
func (l *List) Insert(key, value []byte) {
	h := l.randomHeight()
	// Raise the list height first so the splice search below sees at least
	// h levels. A concurrent raise by another inserter is fine either way.
	for {
		cur := l.height.Load()
		if int(cur) >= h || l.height.CompareAndSwap(cur, int32(h)) {
			break
		}
	}

	var prev [maxHeight]*node
	l.findGreaterOrEqual(key, &prev)

	n := &node{
		key:   l.arena.Append(key),
		value: l.arena.Append(value),
		next:  make([]atomic.Pointer[node], h),
	}
	for i := 0; i < h; i++ {
		p := prev[i]
		if p == nil {
			// The height raise or a concurrent raise left this level's
			// splice unset; the head is always a valid predecessor.
			p = l.head
		}
		for {
			next := p.next[i].Load()
			// Advance past nodes a concurrent inserter linked before us.
			// Keys are unique, so strict less-than converges.
			for next != nil && keys.Compare(next.key, key) < 0 {
				p = next
				next = p.next[i].Load()
			}
			n.next[i].Store(next)
			if p.next[i].CompareAndSwap(next, n) { // publish
				break
			}
			// CAS lost: p gained a new successor; re-advance from p.
		}
	}
	l.count.Add(1)
}

// Len returns the number of entries.
func (l *List) Len() int { return int(l.count.Load()) }

// Empty reports whether the list holds no entries.
func (l *List) Empty() bool { return l.count.Load() == 0 }

// Iterator walks the list. It is valid for use concurrently with any number
// of inserters; entries inserted after iterator creation may or may not be
// observed.
type Iterator struct {
	list *List
	n    *node
}

// NewIterator returns an unpositioned iterator.
func (l *List) NewIterator() *Iterator { return &Iterator{list: l} }

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current internal key. Only valid when Valid().
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current value. Only valid when Valid().
func (it *Iterator) Value() []byte { return it.n.value }

// Next advances to the next entry.
func (it *Iterator) Next() { it.n = it.n.next[0].Load() }

// Prev moves to the previous entry (O(log n)).
func (it *Iterator) Prev() {
	p := it.list.findLessThan(it.n.key)
	if p == it.list.head {
		it.n = nil
	} else {
		it.n = p
	}
}

// SeekGE positions at the first entry with key >= k.
func (it *Iterator) SeekGE(k []byte) { it.n = it.list.findGreaterOrEqual(k, nil) }

// SeekLT positions at the last entry with key < k.
func (it *Iterator) SeekLT(k []byte) {
	p := it.list.findLessThan(k)
	if p == it.list.head {
		it.n = nil
	} else {
		it.n = p
	}
}

// First positions at the first entry.
func (it *Iterator) First() { it.n = it.list.head.next[0].Load() }

// Last positions at the last entry.
func (it *Iterator) Last() {
	p := it.list.findLast()
	if p == it.list.head {
		it.n = nil
	} else {
		it.n = p
	}
}
