// Package skiplist implements the ordered in-memory index backing the
// memtable. Writers are serialized by the caller (the DB's write path holds
// a commit lock); readers run lock-free against atomically published nodes,
// mirroring the memtable concurrency model of LevelDB/RocksDB.
package skiplist

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"rocksmash/internal/arena"
	"rocksmash/internal/keys"
)

const (
	maxHeight = 12
	// branching gives a 1/4 probability of promoting a node one level.
	branching = 4
)

type node struct {
	key   []byte // internal key, arena-backed
	value []byte // arena-backed
	// next[i] is the next node at level i.
	next []atomic.Pointer[node]
}

// List is a skiplist ordered by keys.Compare. Insert must not be called
// concurrently; all other methods are safe for concurrent use with a single
// inserter.
type List struct {
	head   *node
	arena  *arena.Arena
	height atomic.Int32
	count  atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New returns an empty skiplist allocating from a.
func New(a *arena.Arena) *List {
	h := &node{next: make([]atomic.Pointer[node], maxHeight)}
	l := &List{head: h, arena: a, rng: rand.New(rand.NewSource(0xdecafbad))}
	l.height.Store(1)
	return l
}

func (l *List) randomHeight() int {
	l.rngMu.Lock()
	h := 1
	for h < maxHeight && l.rng.Intn(branching) == 0 {
		h++
	}
	l.rngMu.Unlock()
	return h
}

// findGreaterOrEqual returns the first node with key >= k and, when prev is
// non-nil, fills prev with the predecessor at every level.
func (l *List) findGreaterOrEqual(k []byte, prev *[maxHeight]*node) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && keys.Compare(next.key, k) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// findLessThan returns the last node with key < k, or the head sentinel.
func (l *List) findLessThan(k []byte) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && keys.Compare(next.key, k) < 0 {
			x = next
			continue
		}
		if level == 0 {
			return x
		}
		level--
	}
}

// findLast returns the last node in the list, or the head sentinel.
func (l *List) findLast() *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil {
			x = next
			continue
		}
		if level == 0 {
			return x
		}
		level--
	}
}

// Insert adds an entry. The internal key must not already be present (the
// memtable guarantees uniqueness by including the sequence number in the
// key). key and value are copied into the arena.
func (l *List) Insert(key, value []byte) {
	var prev [maxHeight]*node
	l.findGreaterOrEqual(key, &prev)

	h := l.randomHeight()
	if cur := int(l.height.Load()); h > cur {
		for i := cur; i < h; i++ {
			prev[i] = l.head
		}
		l.height.Store(int32(h))
	}

	n := &node{
		key:   l.arena.Append(key),
		value: l.arena.Append(value),
		next:  make([]atomic.Pointer[node], h),
	}
	for i := 0; i < h; i++ {
		n.next[i].Store(prev[i].next[i].Load())
		prev[i].next[i].Store(n) // publish
	}
	l.count.Add(1)
}

// Len returns the number of entries.
func (l *List) Len() int { return int(l.count.Load()) }

// Empty reports whether the list holds no entries.
func (l *List) Empty() bool { return l.count.Load() == 0 }

// Iterator walks the list. It is valid for use concurrently with Insert by
// one other goroutine; entries inserted after iterator creation may or may
// not be observed.
type Iterator struct {
	list *List
	n    *node
}

// NewIterator returns an unpositioned iterator.
func (l *List) NewIterator() *Iterator { return &Iterator{list: l} }

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current internal key. Only valid when Valid().
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current value. Only valid when Valid().
func (it *Iterator) Value() []byte { return it.n.value }

// Next advances to the next entry.
func (it *Iterator) Next() { it.n = it.n.next[0].Load() }

// Prev moves to the previous entry (O(log n)).
func (it *Iterator) Prev() {
	p := it.list.findLessThan(it.n.key)
	if p == it.list.head {
		it.n = nil
	} else {
		it.n = p
	}
}

// SeekGE positions at the first entry with key >= k.
func (it *Iterator) SeekGE(k []byte) { it.n = it.list.findGreaterOrEqual(k, nil) }

// SeekLT positions at the last entry with key < k.
func (it *Iterator) SeekLT(k []byte) {
	p := it.list.findLessThan(k)
	if p == it.list.head {
		it.n = nil
	} else {
		it.n = p
	}
}

// First positions at the first entry.
func (it *Iterator) First() { it.n = it.list.head.next[0].Load() }

// Last positions at the last entry.
func (it *Iterator) Last() {
	p := it.list.findLast()
	if p == it.list.head {
		it.n = nil
	} else {
		it.n = p
	}
}
