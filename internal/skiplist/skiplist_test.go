package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"rocksmash/internal/arena"
	"rocksmash/internal/keys"
)

func ik(k string, seq uint64) []byte {
	return keys.MakeInternalKey(nil, []byte(k), seq, keys.KindSet)
}

func TestInsertAndIterate(t *testing.T) {
	l := New(arena.New())
	l.Insert(ik("b", 2), []byte("vb"))
	l.Insert(ik("a", 1), []byte("va"))
	l.Insert(ik("c", 3), []byte("vc"))

	it := l.NewIterator()
	it.First()
	var got []string
	for it.Valid() {
		got = append(got, string(keys.UserKey(it.Key()))+"="+string(it.Value()))
		it.Next()
	}
	want := []string{"a=va", "b=vb", "c=vc"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestSeqOrderingWithinKey(t *testing.T) {
	l := New(arena.New())
	l.Insert(ik("k", 1), []byte("old"))
	l.Insert(ik("k", 9), []byte("new"))

	it := l.NewIterator()
	it.SeekGE(keys.MakeSeekKey(nil, []byte("k"), keys.MaxSequence))
	if !it.Valid() || !bytes.Equal(it.Value(), []byte("new")) {
		t.Fatal("newest entry should come first")
	}
	it.Next()
	if !it.Valid() || !bytes.Equal(it.Value(), []byte("old")) {
		t.Fatal("older entry should come second")
	}
}

func TestSeekGE(t *testing.T) {
	l := New(arena.New())
	for i := 0; i < 100; i += 2 {
		l.Insert(ik(fmt.Sprintf("k%03d", i), uint64(i+1)), []byte("v"))
	}
	it := l.NewIterator()
	it.SeekGE(keys.MakeSeekKey(nil, []byte("k051"), keys.MaxSequence))
	if !it.Valid() {
		t.Fatal("expected valid")
	}
	if got := string(keys.UserKey(it.Key())); got != "k052" {
		t.Fatalf("seek landed on %q", got)
	}
	// Seek past the end.
	it.SeekGE(keys.MakeSeekKey(nil, []byte("z"), keys.MaxSequence))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
}

func TestSeekLTAndPrev(t *testing.T) {
	l := New(arena.New())
	for _, k := range []string{"a", "c", "e"} {
		l.Insert(ik(k, 1), []byte(k))
	}
	it := l.NewIterator()
	it.SeekLT(ik("d", 1))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "c" {
		t.Fatalf("SeekLT landed on %v", it.Valid())
	}
	it.Prev()
	if !it.Valid() || string(keys.UserKey(it.Key())) != "a" {
		t.Fatal("Prev should land on a")
	}
	it.Prev()
	if it.Valid() {
		t.Fatal("Prev before first should be invalid")
	}
	it.SeekLT(ik("a", keys.MaxSequence))
	if it.Valid() {
		t.Fatal("SeekLT before first key should be invalid")
	}
}

func TestFirstLastEmpty(t *testing.T) {
	l := New(arena.New())
	it := l.NewIterator()
	it.First()
	if it.Valid() {
		t.Fatal("empty list First should be invalid")
	}
	it.Last()
	if it.Valid() {
		t.Fatal("empty list Last should be invalid")
	}
	if !l.Empty() {
		t.Fatal("should be empty")
	}
}

func TestMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := New(arena.New())
	var ref []string // encoded internal keys as strings
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key%04d", rng.Intn(500))
		ikey := keys.MakeInternalKey(nil, []byte(k), uint64(i+1), keys.KindSet)
		l.Insert(ikey, []byte(fmt.Sprint(i)))
		ref = append(ref, string(ikey))
	}
	sort.Slice(ref, func(i, j int) bool {
		return keys.Compare([]byte(ref[i]), []byte(ref[j])) < 0
	})
	it := l.NewIterator()
	it.First()
	for i := 0; i < len(ref); i++ {
		if !it.Valid() {
			t.Fatalf("iterator exhausted at %d/%d", i, len(ref))
		}
		if !bytes.Equal(it.Key(), []byte(ref[i])) {
			t.Fatalf("entry %d mismatch", i)
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("iterator has extra entries")
	}
}

func TestConcurrentReadDuringInsert(t *testing.T) {
	l := New(arena.New())
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			l.Insert(ik(fmt.Sprintf("k%06d", i), uint64(i+1)), []byte("v"))
		}
	}()
	// Readers: repeatedly scan; every observed prefix must be sorted.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 20; pass++ {
				it := l.NewIterator()
				it.First()
				var prev []byte
				for it.Valid() {
					if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
						t.Error("out-of-order observation")
						return
					}
					prev = append(prev[:0], it.Key()...)
					it.Next()
				}
			}
		}()
	}
	wg.Wait()
	if l.Len() != n {
		t.Fatalf("len = %d want %d", l.Len(), n)
	}
}

func TestIndependentHeightStreams(t *testing.T) {
	// Two lists must not replay the same height sequence: identical streams
	// would correlate tower shapes across every memtable (and every keyspace
	// shard). Compare the first draws of freshly built lists.
	a, b := New(arena.New()), New(arena.New())
	same := true
	for i := 0; i < 64; i++ {
		if a.randomHeight() != b.randomHeight() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two lists produced identical height sequences")
	}
}

func TestHeightDistribution(t *testing.T) {
	// Heights follow a geometric distribution with promotion probability
	// 1/branching: P(h=1) = 3/4, and E[h] = 1/(1-1/4) = 4/3.
	l := New(arena.New())
	const n = 100000
	counts := make([]int, maxHeight+1)
	sum := 0
	for i := 0; i < n; i++ {
		h := l.randomHeight()
		if h < 1 || h > maxHeight {
			t.Fatalf("height %d out of range [1, %d]", h, maxHeight)
		}
		counts[h]++
		sum += h
	}
	if f := float64(counts[1]) / n; f < 0.73 || f > 0.77 {
		t.Errorf("P(h=1) = %.4f, want ~0.75", f)
	}
	if mean := float64(sum) / n; mean < 1.30 || mean > 1.37 {
		t.Errorf("mean height = %.4f, want ~1.333", mean)
	}
	// Each extra level should be roughly 4x rarer than the previous.
	for h := 2; h <= 4; h++ {
		if counts[h] == 0 {
			t.Fatalf("no draws of height %d in %d samples", h, n)
		}
		ratio := float64(counts[h-1]) / float64(counts[h])
		if ratio < 3.2 || ratio > 4.9 {
			t.Errorf("count[%d]/count[%d] = %.2f, want ~4", h-1, h, ratio)
		}
	}
}
