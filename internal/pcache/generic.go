package pcache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"rocksmash/internal/event"
)

// GenericLRU is the baseline persistent cache the paper compares against: a
// conventional block cache that knows nothing about the LSM tree. Every
// block is an independent entry — stored as its own file on local storage,
// indexed by a hash map with an LRU list, evicted one block at a time. Its
// per-block metadata cost (map node + list element + key copies) is what
// the PCache's packed index eliminates, and its per-block eviction is what
// the region layout batches.
type GenericLRU struct {
	dir      string
	capacity int64
	stats    Stats
	heat     *heatMap
	levels   *levelMap
	ev       event.Listener // set once before concurrent use; nil disables events
	admit    func() bool    // set once before concurrent use; nil always admits

	mu    sync.Mutex
	items map[blockKey]*genericEntry
	order *list.List
	used  int64
	pend  []event.PCacheEvict // evictions queued under mu, fired after unlock
}

// SetListener attaches an event listener. Must be called before the cache
// is shared between goroutines; a nil listener keeps every path event-free.
func (g *GenericLRU) SetListener(l event.Listener) { g.ev = l }

// SetAdmit implements BlockCache.
func (g *GenericLRU) SetAdmit(f func() bool) { g.admit = f }

func (g *GenericLRU) takePendLocked() []event.PCacheEvict {
	evs := g.pend
	g.pend = nil
	return evs
}

func (g *GenericLRU) fireEvicts(evs []event.PCacheEvict) {
	if g.ev == nil {
		return
	}
	for _, e := range evs {
		g.ev.OnPCacheEvict(e)
	}
}

type blockKey struct {
	fileNum  uint64
	blockOff uint64
}

type genericEntry struct {
	key    blockKey
	length int64
	elem   *list.Element
}

// genericEntryOverhead approximates the in-memory bytes a generic cache
// spends per block: map bucket share (~48 B), key (16 B), entry struct
// (40 B), list.Element (48 B) — a conservative 152 B total, in line with
// measured Go map+list footprints.
const genericEntryOverhead = 152

// NewGenericLRU opens the baseline cache under dir.
func NewGenericLRU(dir string, capacity int64) (*GenericLRU, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// The generic cache has no recoverable index: a restart is cold.
	// Remove stale block files from any previous run.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		_ = os.Remove(filepath.Join(dir, e.Name()))
	}
	return &GenericLRU{
		dir:      dir,
		capacity: capacity,
		heat:     newHeatMap(),
		levels:   newLevelMap(),
		items:    map[blockKey]*genericEntry{},
		order:    list.New(),
	}, nil
}

func (g *GenericLRU) blockPath(k blockKey) string {
	return filepath.Join(g.dir, fmt.Sprintf("f%06d-%012d.blk", k.fileNum, k.blockOff))
}

// Get implements BlockCache.
func (g *GenericLRU) Get(fileNum, blockOff uint64) ([]byte, bool) {
	g.heat.add(fileNum, 1)
	data, ok := g.get(fileNum, blockOff)
	b := g.levels.bucket(fileNum)
	if ok {
		g.stats.hit(b, fileNum)
	} else {
		g.stats.miss(b, fileNum)
	}
	return data, ok
}

// SetLevel implements BlockCache.
func (g *GenericLRU) SetLevel(fileNum uint64, level int) { g.levels.set(fileNum, level) }

// Probe implements BlockCache: Get without heat or statistics.
func (g *GenericLRU) Probe(fileNum, blockOff uint64) ([]byte, bool) {
	return g.get(fileNum, blockOff)
}

func (g *GenericLRU) get(fileNum, blockOff uint64) ([]byte, bool) {
	k := blockKey{fileNum, blockOff}
	g.mu.Lock()
	e, ok := g.items[k]
	if ok {
		g.order.MoveToFront(e.elem)
	}
	g.mu.Unlock()
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(g.blockPath(k))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put implements BlockCache.
func (g *GenericLRU) Put(fileNum, blockOff uint64, body []byte) {
	if g.admit != nil && !g.admit() {
		g.stats.AdmitDeclined.Add(1)
		return
	}
	if int64(len(body)) > g.capacity {
		return
	}
	k := blockKey{fileNum, blockOff}
	g.mu.Lock()
	if _, ok := g.items[k]; ok {
		g.mu.Unlock()
		return
	}
	// Evict per block until the new entry fits.
	for g.used+int64(len(body)) > g.capacity {
		back := g.order.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*genericEntry)
		g.removeLocked(victim, "lru")
	}
	e := &genericEntry{key: k, length: int64(len(body))}
	e.elem = g.order.PushFront(e)
	g.items[k] = e
	g.used += e.length
	evs := g.takePendLocked()
	g.mu.Unlock()
	g.fireEvicts(evs)

	// Write-then-rename so concurrent readers never observe a torn block.
	tmp := g.blockPath(k) + ".tmp"
	err := os.WriteFile(tmp, body, 0o644)
	if err == nil {
		err = os.Rename(tmp, g.blockPath(k))
	}
	if err != nil {
		g.mu.Lock()
		if cur, ok := g.items[k]; ok && cur == e {
			// Rollback of this Put's own entry, not an eviction: no event.
			g.removeLocked(cur, "")
		}
		g.mu.Unlock()
		return
	}
	g.stats.Inserted.Add(1)
	g.stats.BytesInserted.Add(int64(len(body)))
	if g.ev != nil {
		g.ev.OnPCacheAdmit(event.PCacheAdmit{File: fileNum, Blocks: 1, Bytes: int64(len(body))})
	}
}

// PutBulk implements BlockCache. The generic cache has no batched admission
// path — each block pays the full per-entry cost, one more contrast with the
// packed region layout.
func (g *GenericLRU) PutBulk(fileNum uint64, blocks []Block) {
	for _, b := range blocks {
		g.Put(fileNum, b.Off, b.Body)
	}
}

func (g *GenericLRU) removeLocked(e *genericEntry, reason string) {
	if g.ev != nil && reason != "" {
		g.pend = append(g.pend, event.PCacheEvict{
			File: e.key.fileNum, Blocks: 1, Bytes: e.length, Reason: reason,
		})
	}
	g.order.Remove(e.elem)
	delete(g.items, e.key)
	g.used -= e.length
	_ = os.Remove(g.blockPath(e.key))
	g.stats.RegionsEvicted.Add(1) // counted per block for the baseline
}

// DropFile implements BlockCache: the generic cache must scan its whole
// index — per-block work the LSM-aware layout avoids.
func (g *GenericLRU) DropFile(fileNum uint64) {
	g.mu.Lock()
	var victims []*genericEntry
	for k, e := range g.items {
		if k.fileNum == fileNum {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		g.removeLocked(e, "drop-file")
	}
	evs := g.takePendLocked()
	g.mu.Unlock()
	g.heat.drop(fileNum)
	g.levels.drop(fileNum)
	g.stats.FilesDropped.Add(1)
	g.fireEvicts(evs)
}

// FileHeat implements BlockCache.
func (g *GenericLRU) FileHeat(fileNum uint64) int64 { return g.heat.get(fileNum) }

// MetadataBytes implements BlockCache.
func (g *GenericLRU) MetadataBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int64(len(g.items)) * genericEntryOverhead
}

// UsedBytes implements BlockCache.
func (g *GenericLRU) UsedBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// CachedBlocks returns the number of resident blocks.
func (g *GenericLRU) CachedBlocks() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.items)
}

// Stats implements BlockCache.
func (g *GenericLRU) Stats() *Stats { return &g.stats }

// Close implements BlockCache. The generic cache has nothing to persist.
func (g *GenericLRU) Close() error { return nil }
