package pcache

import (
	"bytes"
	"testing"
)

// TestProbeDoesNotAccount verifies the compaction read path (Probe) serves
// data without perturbing statistics or heat — bulk merges must not look
// like workload traffic.
func TestProbeDoesNotAccount(t *testing.T) {
	both(t, func(t *testing.T, c BlockCache) {
		body := bytes.Repeat([]byte("z"), 256)
		c.Put(3, 4096, body)

		got, ok := c.Probe(3, 4096)
		if !ok || !bytes.Equal(got, body) {
			t.Fatalf("probe = ok=%v", ok)
		}
		if _, ok := c.Probe(3, 9999); ok {
			t.Fatal("phantom probe hit")
		}
		s := c.Stats()
		if s.Hits.Load() != 0 || s.Misses.Load() != 0 {
			t.Fatalf("probe counted in stats: hits=%d misses=%d", s.Hits.Load(), s.Misses.Load())
		}
		if h := c.FileHeat(3); h != 0 {
			t.Fatalf("probe counted in heat: %d", h)
		}
	})
}

// TestGetHeatCountsMissesToo verifies heat measures read traffic, not
// cache luck: misses against a file still raise its heat so compaction can
// recognize actively-read ranges.
func TestGetHeatCountsMissesToo(t *testing.T) {
	both(t, func(t *testing.T, c BlockCache) {
		for i := 0; i < 5; i++ {
			c.Get(9, uint64(i*1000)) // all misses
		}
		if h := c.FileHeat(9); h != 5 {
			t.Fatalf("heat = %d, want 5 (misses count)", h)
		}
	})
}
