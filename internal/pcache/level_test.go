package pcache

import "testing"

func TestLevelBucketClamps(t *testing.T) {
	cases := []struct{ level, want int }{
		{0, 0}, {3, 3}, {6, 6},
		{-1, LevelUnknown}, {7, LevelUnknown}, {99, LevelUnknown},
	}
	for _, c := range cases {
		if got := LevelBucket(c.level); got != c.want {
			t.Errorf("LevelBucket(%d) = %d, want %d", c.level, got, c.want)
		}
	}
}

// sums returns the per-level hit and miss totals.
func sums(s *Stats) (hits, misses int64) {
	for b := 0; b < LevelBuckets; b++ {
		hits += s.LevelHits[b].Load()
		misses += s.LevelMisses[b].Load()
	}
	return hits, misses
}

func TestPerLevelHitMissCounters(t *testing.T) {
	both(t, func(t *testing.T, c BlockCache) {
		body := []byte("per-level-block")

		// File 1 registered at L2: a hit and a miss land in bucket 2.
		c.SetLevel(1, 2)
		c.Put(1, 0, body)
		if _, ok := c.Get(1, 0); !ok {
			t.Fatal("expected hit")
		}
		if _, ok := c.Get(1, 999); ok {
			t.Fatal("expected miss")
		}
		// File 2 never registered: its miss lands in the unknown bucket.
		if _, ok := c.Get(2, 0); ok {
			t.Fatal("expected miss on unknown file")
		}

		s := c.Stats()
		if got := s.LevelHits[2].Load(); got != 1 {
			t.Errorf("L2 hits = %d, want 1", got)
		}
		if got := s.LevelMisses[2].Load(); got != 1 {
			t.Errorf("L2 misses = %d, want 1", got)
		}
		if got := s.LevelMisses[LevelUnknown].Load(); got != 1 {
			t.Errorf("unknown-bucket misses = %d, want 1", got)
		}

		// Re-registration moves future outcomes to the new bucket
		// (compaction installs the same file at a deeper level only via a
		// new file number, but SetLevel must still be last-write-wins).
		c.SetLevel(1, 5)
		c.Get(1, 0)
		if got := s.LevelHits[5].Load(); got != 1 {
			t.Errorf("L5 hits after re-register = %d, want 1", got)
		}

		// DropFile forgets the level: later misses are unknown.
		c.DropFile(1)
		if _, ok := c.Get(1, 0); ok {
			t.Fatal("hit after DropFile")
		}
		if got := s.LevelMisses[LevelUnknown].Load(); got != 2 {
			t.Errorf("unknown-bucket misses after drop = %d, want 2", got)
		}

		// Invariant the Metrics plumbing relies on: per-level buckets sum
		// to the global counters.
		hits, misses := sums(s)
		if hits != s.Hits.Load() || misses != s.Misses.Load() {
			t.Errorf("bucket sums (%d, %d) != globals (%d, %d)",
				hits, misses, s.Hits.Load(), s.Misses.Load())
		}
	})
}

func TestNullPerLevelConsistency(t *testing.T) {
	n := NewNull()
	n.SetLevel(1, 3) // no-op, but must not panic
	for i := 0; i < 5; i++ {
		if _, ok := n.Get(1, uint64(i)); ok {
			t.Fatal("null cache hit")
		}
	}
	s := n.Stats()
	hits, misses := sums(s)
	if hits != s.Hits.Load() || misses != s.Misses.Load() || misses != 5 {
		t.Errorf("null cache: bucket sums (%d, %d), globals (%d, %d)",
			hits, misses, s.Hits.Load(), s.Misses.Load())
	}
	if got := s.LevelMisses[LevelUnknown].Load(); got != 5 {
		t.Errorf("null cache misses land in unknown bucket: %d, want 5", got)
	}
}
