// Package pcache implements the paper's LSM-aware persistent cache: a
// local-disk cache holding data blocks of cloud-resident SSTables.
//
// Two properties distinguish it from a generic persistent block cache:
//
//  1. Space-efficient metadata. The index is packed: the cache file is
//     divided into fixed-size regions, each owned by one SSTable, and each
//     region's blocks are described by a sorted array of small fixed-width
//     entries (~20 B/block) instead of a per-block hash-map node
//     (~150 B/block for a generic cache). See GenericLRU in this package
//     for the baseline the paper compares against.
//
//  2. Compaction-aware layout. Blocks of one SSTable live contiguously in
//     that SSTable's regions, in file order. Compaction deletes whole input
//     files, so eviction of their blocks is a constant-time region free
//     (DropFile); the CLOCK eviction policy also operates on regions, so a
//     cold file's cache space is reclaimed wholesale. The cache exposes
//     per-file heat so compaction can warm output files whose inputs were
//     hot (admission inheritance).
//
// The cache is strictly read-through: losing its state (crash without index
// snapshot) affects only performance, never correctness.
package pcache

import (
	"sync"
	"sync/atomic"
)

// LevelBuckets sizes the per-LSM-level hit/miss counters. Buckets 0..6
// map to levels L0..L6; the last bucket collects requests against files
// whose level the cache was never told (SetLevel not called).
const LevelBuckets = 8

// LevelUnknown is the bucket for files with no registered level.
const LevelUnknown = LevelBuckets - 1

// LevelBucket maps an LSM level to its counter bucket.
func LevelBucket(level int) int {
	if level < 0 || level >= LevelUnknown {
		return LevelUnknown
	}
	return level
}

// ShardBuckets sizes the per-keyspace-shard hit/miss counters. Buckets
// 0..15 map to shards directly; the last bucket collects shards ≥ 16.
const ShardBuckets = 17

// Stats counts cache activity.
type Stats struct {
	Hits           atomic.Int64
	Misses         atomic.Int64
	Inserted       atomic.Int64 // blocks admitted
	BytesInserted  atomic.Int64
	RegionsEvicted atomic.Int64
	FilesDropped   atomic.Int64
	// CorruptReads counts Gets whose cached bytes failed their CRC (torn
	// write or bit rot in the cache file). Each is served as a miss — the
	// authoritative copy lives in cloud storage — and the damaged entry is
	// dropped so the next read re-fetches and re-admits clean bytes.
	CorruptReads atomic.Int64
	// AdmitDeclined counts Puts refused by the admission gate (local-degraded
	// mode: the cache must not write to a failing local device).
	AdmitDeclined atomic.Int64
	// LevelHits/LevelMisses break Get outcomes down by the requested
	// file's LSM level (see LevelBucket); they sum to Hits/Misses.
	LevelHits   [LevelBuckets]atomic.Int64
	LevelMisses [LevelBuckets]atomic.Int64
	// ShardHits/ShardMisses break the same outcomes down by keyspace shard.
	// With striped file numbering, a file's owning shard is fileNum mod the
	// shard count, so no extra per-file registration is needed. All traffic
	// lands in bucket 0 until SetKeyspaceShards is called.
	ShardHits   [ShardBuckets]atomic.Int64
	ShardMisses [ShardBuckets]atomic.Int64
	// shardMod is the keyspace shard count (0 or 1 = unsharded).
	shardMod atomic.Uint64
}

// SetKeyspaceShards tells the stats how many keyspace shards stripe the
// file-number space, enabling per-shard attribution of Get outcomes.
func (s *Stats) SetKeyspaceShards(n int) {
	if n < 0 {
		n = 0
	}
	s.shardMod.Store(uint64(n))
}

// ShardBucket maps a file number to its keyspace-shard counter bucket.
func (s *Stats) ShardBucket(fileNum uint64) int {
	mod := s.shardMod.Load()
	if mod <= 1 {
		return 0
	}
	b := int(fileNum % mod)
	if b >= ShardBuckets-1 {
		return ShardBuckets - 1
	}
	return b
}

// HitRatio returns hits/(hits+misses).
func (s *Stats) HitRatio() float64 {
	h, m := s.Hits.Load(), s.Misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// hit/miss record one Get outcome for fileNum against the level bucket b
// and the file's keyspace-shard bucket.
func (s *Stats) hit(b int, fileNum uint64) {
	s.Hits.Add(1)
	s.LevelHits[b].Add(1)
	s.ShardHits[s.ShardBucket(fileNum)].Add(1)
}

func (s *Stats) miss(b int, fileNum uint64) {
	s.Misses.Add(1)
	s.LevelMisses[b].Add(1)
	s.ShardMisses[s.ShardBucket(fileNum)].Add(1)
}

// BlockCache is the interface the DB read path uses for persistent
// caching. Implementations: *PCache (the paper's design) and *GenericLRU
// (the non-LSM-aware baseline).
type BlockCache interface {
	// Get returns the cached block body for (fileNum, blockOff). It
	// counts toward the file's heat whether it hits or misses: heat
	// measures read traffic against the file, not cache luck.
	Get(fileNum, blockOff uint64) ([]byte, bool)
	// Probe is Get without statistics or heat accounting; compaction
	// reads use it so bulk merges don't masquerade as workload heat.
	Probe(fileNum, blockOff uint64) ([]byte, bool)
	// Put admits a block body. Implementations may decline silently.
	Put(fileNum, blockOff uint64, body []byte)
	// PutBulk admits a run of blocks from one file in a single call — the
	// admission path for coalesced range reads (iterator readahead,
	// compaction warming), where many adjacent blocks arrive at once.
	// Implementations may batch index updates; admission of individual
	// blocks may still be declined silently.
	PutBulk(fileNum uint64, blocks []Block)
	// DropFile evicts every block of fileNum (the file was deleted by
	// compaction).
	DropFile(fileNum uint64)
	// SetLevel registers fileNum's LSM level so Get outcomes can be
	// attributed per level. The DB calls it when a table is installed
	// (flush, compaction, open); unknown files land in the last bucket.
	SetLevel(fileNum uint64, level int)
	// SetAdmit installs an admission gate consulted before every Put and
	// PutBulk; returning false declines the admission (counted in
	// Stats.AdmitDeclined). The DB gates admissions off while the local
	// tier is degraded — cache writes land on the failing device. Must be
	// set before the cache is shared between goroutines; nil always admits.
	SetAdmit(func() bool)
	// FileHeat returns the number of reads issued against fileNum since
	// it was first seen; compaction uses it for admission inheritance.
	FileHeat(fileNum uint64) int64
	// MetadataBytes reports the in-memory index footprint.
	MetadataBytes() int64
	// UsedBytes reports cached data bytes.
	UsedBytes() int64
	// Stats exposes activity counters.
	Stats() *Stats
	// Close persists index state where applicable.
	Close() error
}

// Block is one (offset, body) pair for bulk admission.
type Block struct {
	Off  uint64
	Body []byte
}

// Null is a BlockCache that caches nothing (cloud-only baseline).
type Null struct{ stats Stats }

// NewNull returns a no-op cache.
func NewNull() *Null { return &Null{} }

// Get always misses.
func (n *Null) Get(fileNum, _ uint64) ([]byte, bool) {
	n.stats.miss(LevelUnknown, fileNum)
	return nil, false
}

// Probe always misses.
func (n *Null) Probe(uint64, uint64) ([]byte, bool) { return nil, false }

// Put drops the block.
func (n *Null) Put(uint64, uint64, []byte) {}

// PutBulk drops the blocks.
func (n *Null) PutBulk(uint64, []Block) {}

// DropFile is a no-op.
func (n *Null) DropFile(uint64) {}

// SetLevel is a no-op.
func (n *Null) SetLevel(uint64, int) {}

// SetAdmit is a no-op (nothing is ever admitted).
func (n *Null) SetAdmit(func() bool) {}

// FileHeat is always zero.
func (n *Null) FileHeat(uint64) int64 { return 0 }

// MetadataBytes is zero.
func (n *Null) MetadataBytes() int64 { return 0 }

// UsedBytes is zero.
func (n *Null) UsedBytes() int64 { return 0 }

// Stats returns the miss counters.
func (n *Null) Stats() *Stats { return &n.stats }

// Close is a no-op.
func (n *Null) Close() error { return nil }

// heatMap tracks per-file hit counts, shared by both implementations.
type heatMap struct {
	mu sync.Mutex
	m  map[uint64]int64
}

func newHeatMap() *heatMap { return &heatMap{m: map[uint64]int64{}} }

func (h *heatMap) add(fileNum uint64, n int64) {
	h.mu.Lock()
	h.m[fileNum] += n
	h.mu.Unlock()
}

func (h *heatMap) get(fileNum uint64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.m[fileNum]
}

func (h *heatMap) drop(fileNum uint64) {
	h.mu.Lock()
	delete(h.m, fileNum)
	h.mu.Unlock()
}

// levelMap tracks each file's registered LSM level, shared by both
// implementations. Unregistered files map to LevelUnknown.
type levelMap struct {
	mu sync.Mutex
	m  map[uint64]int8
}

func newLevelMap() *levelMap { return &levelMap{m: map[uint64]int8{}} }

func (l *levelMap) set(fileNum uint64, level int) {
	b := int8(LevelBucket(level))
	l.mu.Lock()
	l.m[fileNum] = b
	l.mu.Unlock()
}

func (l *levelMap) bucket(fileNum uint64) int {
	l.mu.Lock()
	b, ok := l.m[fileNum]
	l.mu.Unlock()
	if !ok {
		return LevelUnknown
	}
	return int(b)
}

func (l *levelMap) drop(fileNum uint64) {
	l.mu.Lock()
	delete(l.m, fileNum)
	l.mu.Unlock()
}
