package pcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rocksmash/internal/event"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a PCache.
type Options struct {
	// Dir is the local directory holding the cache DATA and INDEX files.
	Dir string
	// CapacityBytes bounds the cache data file size.
	CapacityBytes int64
	// RegionBytes is the allocation unit; one region belongs to one
	// SSTable. Blocks larger than RegionBytes are never cached.
	RegionBytes int64
}

// DefaultOptions returns moderate defaults for tests and examples.
func DefaultOptions(dir string) Options {
	return Options{Dir: dir, CapacityBytes: 64 << 20, RegionBytes: 256 << 10}
}

// packedEntry describes one cached block inside a region: 20 bytes per
// block, stored in a sorted slice (the paper's space-efficient metadata).
type packedEntry struct {
	blockOff uint64 // block offset within the SSTable (identity)
	regOff   uint32 // byte offset within the region
	length   uint32
	crc      uint32
}

const packedEntrySize = 20

// region is one allocation unit of the cache file.
type region struct {
	fileNum uint64 // owning SSTable; 0 = free
	used    uint32 // bytes consumed
	ref     bool   // CLOCK reference bit
	entries []packedEntry
}

// PCache is the paper's persistent cache. See the package comment.
type PCache struct {
	opts   Options
	f      *os.File
	stats  Stats
	heat   *heatMap
	levels *levelMap
	ev     event.Listener // set once before concurrent use; nil disables events
	admit  func() bool    // set once before concurrent use; nil always admits
	// indexCorrupt records that New found an INDEX snapshot that failed its
	// checksum (as opposed to a clean cold start with no snapshot at all).
	indexCorrupt bool

	mu       sync.Mutex
	regions  []region
	byFile   map[uint64][]int32 // fileNum -> region ids (append order)
	openReg  map[uint64]int32   // fileNum -> region currently accepting blocks
	freeList []int32
	hand     int32 // CLOCK hand

	// pend accumulates eviction events generated while mu is held; they are
	// drained and fired after unlock so listeners never run under the cache
	// lock. Only populated when ev is non-nil.
	pend []event.PCacheEvict
}

// SetListener attaches an event listener. Must be called before the cache
// is shared between goroutines; a nil listener keeps every path event-free.
func (c *PCache) SetListener(l event.Listener) { c.ev = l }

// SetAdmit implements BlockCache.
func (c *PCache) SetAdmit(f func() bool) { c.admit = f }

// IndexWasCorrupt reports whether the startup index snapshot existed but
// failed verification (the cache cold-started as the repair).
func (c *PCache) IndexWasCorrupt() bool { return c.indexCorrupt }

// takePendLocked drains the events collected under mu.
func (c *PCache) takePendLocked() []event.PCacheEvict {
	evs := c.pend
	c.pend = nil
	return evs
}

func (c *PCache) fireEvicts(evs []event.PCacheEvict) {
	if c.ev == nil {
		return
	}
	for _, e := range evs {
		c.ev.OnPCacheEvict(e)
	}
}

const (
	indexMagic   = 0x70636163686531 // "pcache1"
	indexVersion = 1
)

// New opens (or creates) a persistent cache under opts.Dir, loading a
// previously snapshotted index when present and intact. A missing or
// corrupt index yields an empty (cold) cache, never an error.
func New(opts Options) (*PCache, error) {
	if opts.RegionBytes <= 0 {
		opts.RegionBytes = 256 << 10
	}
	if opts.CapacityBytes < opts.RegionBytes {
		opts.CapacityBytes = opts.RegionBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(opts.Dir, "DATA"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	n := int32(opts.CapacityBytes / opts.RegionBytes)
	c := &PCache{
		opts:    opts,
		f:       f,
		heat:    newHeatMap(),
		levels:  newLevelMap(),
		regions: make([]region, n),
		byFile:  map[uint64][]int32{},
		openReg: map[uint64]int32{},
	}
	for i := n - 1; i >= 0; i-- {
		c.freeList = append(c.freeList, i)
	}
	if err := c.loadIndex(); err != nil {
		// Cold start on any index problem; cache contents are disposable.
		c.resetLocked()
		if errors.Is(err, errBadIndex) {
			c.indexCorrupt = true
		}
	}
	return c, nil
}

func (c *PCache) resetLocked() {
	n := int32(len(c.regions))
	c.regions = make([]region, n)
	c.byFile = map[uint64][]int32{}
	c.openReg = map[uint64]int32{}
	c.freeList = c.freeList[:0]
	for i := n - 1; i >= 0; i-- {
		c.freeList = append(c.freeList, i)
	}
}

// Get implements BlockCache.
func (c *PCache) Get(fileNum, blockOff uint64) ([]byte, bool) {
	// Heat counts read traffic against the file regardless of outcome, so
	// compaction can recognize actively-read ranges even when the cache is
	// cold for them.
	c.heat.add(fileNum, 1)
	buf, ok := c.get(fileNum, blockOff)
	b := c.levels.bucket(fileNum)
	if ok {
		c.stats.hit(b, fileNum)
	} else {
		c.stats.miss(b, fileNum)
	}
	return buf, ok
}

// SetLevel implements BlockCache.
func (c *PCache) SetLevel(fileNum uint64, level int) { c.levels.set(fileNum, level) }

// Probe implements BlockCache: Get without heat or statistics.
func (c *PCache) Probe(fileNum, blockOff uint64) ([]byte, bool) {
	return c.get(fileNum, blockOff)
}

func (c *PCache) get(fileNum, blockOff uint64) ([]byte, bool) {
	c.mu.Lock()
	var loc *packedEntry
	var regID int32 = -1
	for _, id := range c.byFile[fileNum] {
		r := &c.regions[id]
		es := r.entries
		i := sort.Search(len(es), func(i int) bool { return es[i].blockOff >= blockOff })
		if i < len(es) && es[i].blockOff == blockOff {
			loc = &es[i]
			regID = id
			break
		}
	}
	if loc == nil {
		c.mu.Unlock()
		return nil, false
	}
	c.regions[regID].ref = true
	base := int64(regID) * c.opts.RegionBytes
	off := base + int64(loc.regOff)
	length := int(loc.length)
	wantCRC := loc.crc
	c.mu.Unlock()

	buf := make([]byte, length)
	if _, err := c.f.ReadAt(buf, off); err != nil {
		return nil, false
	}
	if crc32.Checksum(buf, castagnoli) != wantCRC {
		// Torn write or bit rot in the cache file: treat as a miss; the
		// authoritative copy lives in cloud storage. Drop the damaged entry
		// so the next read re-fetches and re-admits clean bytes instead of
		// re-verifying the same rot forever.
		c.stats.CorruptReads.Add(1)
		c.dropEntry(fileNum, blockOff)
		if c.ev != nil {
			c.ev.OnCorruptionDetected(event.CorruptionDetected{
				Artifact: "pcache", Object: "DATA", File: fileNum,
				Err: "pcache: block crc mismatch",
			})
		}
		return nil, false
	}
	return buf, true
}

// dropEntry removes one block's index entry (its bytes stay dead in the
// region until the region is reused).
func (c *PCache) dropEntry(fileNum, blockOff uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.byFile[fileNum] {
		r := &c.regions[id]
		es := r.entries
		i := sort.Search(len(es), func(i int) bool { return es[i].blockOff >= blockOff })
		if i < len(es) && es[i].blockOff == blockOff {
			r.entries = append(es[:i], es[i+1:]...)
			return
		}
	}
}

// Put implements BlockCache: append the block into the file's open region,
// allocating (and if necessary evicting) regions as needed.
func (c *PCache) Put(fileNum, blockOff uint64, body []byte) {
	if c.admit != nil && !c.admit() {
		c.stats.AdmitDeclined.Add(1)
		return
	}
	c.mu.Lock()
	n := c.putLocked(fileNum, blockOff, body)
	evs := c.takePendLocked()
	c.mu.Unlock()
	c.fireEvicts(evs)
	if c.ev != nil && n > 0 {
		c.ev.OnPCacheAdmit(event.PCacheAdmit{File: fileNum, Blocks: 1, Bytes: n})
	}
}

// PutBulk implements BlockCache: one lock acquisition admits the whole run.
// Adjacent blocks of one file land back to back in the file's open regions,
// preserving the compaction-aware layout.
func (c *PCache) PutBulk(fileNum uint64, blocks []Block) {
	if c.admit != nil && !c.admit() {
		c.stats.AdmitDeclined.Add(int64(len(blocks)))
		return
	}
	var n int64
	var cnt int
	c.mu.Lock()
	for _, b := range blocks {
		if m := c.putLocked(fileNum, b.Off, b.Body); m > 0 {
			n += m
			cnt++
		}
	}
	evs := c.takePendLocked()
	c.mu.Unlock()
	c.fireEvicts(evs)
	if c.ev != nil && cnt > 0 {
		c.ev.OnPCacheAdmit(event.PCacheAdmit{File: fileNum, Blocks: cnt, Bytes: n})
	}
}

// putLocked admits one block, returning the bytes cached (0 if declined).
func (c *PCache) putLocked(fileNum, blockOff uint64, body []byte) int64 {
	if int64(len(body)) > c.opts.RegionBytes {
		return 0
	}

	// Already cached? (Possible under racing readers.)
	for _, id := range c.byFile[fileNum] {
		es := c.regions[id].entries
		i := sort.Search(len(es), func(i int) bool { return es[i].blockOff >= blockOff })
		if i < len(es) && es[i].blockOff == blockOff {
			return 0
		}
	}

	id, ok := c.openReg[fileNum]
	if ok {
		r := &c.regions[id]
		if int64(r.used)+int64(len(body)) > c.opts.RegionBytes {
			ok = false
		}
	}
	if !ok {
		nid, allocated := c.allocRegionLocked(fileNum)
		if !allocated {
			return 0
		}
		id = nid
		c.openReg[fileNum] = id
	}
	r := &c.regions[id]
	base := int64(id) * c.opts.RegionBytes
	if _, err := c.f.WriteAt(body, base+int64(r.used)); err != nil {
		return 0
	}
	e := packedEntry{
		blockOff: blockOff,
		regOff:   r.used,
		length:   uint32(len(body)),
		crc:      crc32.Checksum(body, castagnoli),
	}
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].blockOff >= blockOff })
	r.entries = append(r.entries, packedEntry{})
	copy(r.entries[i+1:], r.entries[i:])
	r.entries[i] = e
	r.used += uint32(len(body))
	r.ref = true
	c.stats.Inserted.Add(1)
	c.stats.BytesInserted.Add(int64(len(body)))
	return int64(len(body))
}

// allocRegionLocked returns a free region for fileNum, evicting via CLOCK
// when none is free. It never evicts a region of fileNum itself.
func (c *PCache) allocRegionLocked(fileNum uint64) (int32, bool) {
	var id int32
	if n := len(c.freeList); n > 0 {
		id = c.freeList[n-1]
		c.freeList = c.freeList[:n-1]
	} else {
		vid, ok := c.clockVictimLocked(fileNum)
		if !ok {
			return 0, false
		}
		c.evictRegionLocked(vid, "clock")
		id = c.freeList[len(c.freeList)-1]
		c.freeList = c.freeList[:len(c.freeList)-1]
	}
	r := &c.regions[id]
	r.fileNum = fileNum
	r.used = 0
	r.ref = false
	r.entries = r.entries[:0]
	c.byFile[fileNum] = append(c.byFile[fileNum], id)
	return id, true
}

func (c *PCache) clockVictimLocked(skipFile uint64) (int32, bool) {
	n := int32(len(c.regions))
	for pass := int32(0); pass < 2*n; pass++ {
		id := c.hand
		c.hand = (c.hand + 1) % n
		r := &c.regions[id]
		if r.fileNum == 0 || r.fileNum == skipFile {
			continue
		}
		if r.ref {
			r.ref = false
			continue
		}
		return id, true
	}
	return 0, false
}

// evictRegionLocked frees one region and unlinks it from its file. The
// eviction event is queued (not fired) because the caller holds c.mu.
func (c *PCache) evictRegionLocked(id int32, reason string) {
	r := &c.regions[id]
	fn := r.fileNum
	if c.ev != nil {
		c.pend = append(c.pend, event.PCacheEvict{
			File: fn, Blocks: len(r.entries), Bytes: int64(r.used), Reason: reason,
		})
	}
	ids := c.byFile[fn]
	for i, x := range ids {
		if x == id {
			c.byFile[fn] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(c.byFile[fn]) == 0 {
		delete(c.byFile, fn)
	}
	if open, ok := c.openReg[fn]; ok && open == id {
		delete(c.openReg, fn)
	}
	r.fileNum = 0
	r.used = 0
	r.ref = false
	r.entries = r.entries[:0]
	c.freeList = append(c.freeList, id)
	c.stats.RegionsEvicted.Add(1)
}

// DropFile implements BlockCache: constant-time per region, the
// compaction-aware win over per-block eviction.
func (c *PCache) DropFile(fileNum uint64) {
	c.mu.Lock()
	ids := append([]int32(nil), c.byFile[fileNum]...)
	for _, id := range ids {
		c.evictRegionLocked(id, "drop-file")
	}
	evs := c.takePendLocked()
	c.mu.Unlock()
	c.heat.drop(fileNum)
	c.levels.drop(fileNum)
	c.stats.FilesDropped.Add(1)
	c.fireEvicts(evs)
}

// FileHeat implements BlockCache.
func (c *PCache) FileHeat(fileNum uint64) int64 { return c.heat.get(fileNum) }

// Stats implements BlockCache.
func (c *PCache) Stats() *Stats { return &c.stats }

// UsedBytes implements BlockCache.
func (c *PCache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for i := range c.regions {
		n += int64(c.regions[i].used)
	}
	return n
}

// MetadataBytes implements BlockCache: the exact packed-index footprint.
func (c *PCache) MetadataBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for i := range c.regions {
		// Per-region fixed header (fileNum, used, ref, slice header).
		n += 8 + 4 + 1 + 24
		n += int64(len(c.regions[i].entries)) * packedEntrySize
	}
	// byFile / openReg maps are per *file*, not per block; charge them too.
	n += int64(len(c.byFile)) * (8 + 24)
	n += int64(len(c.openReg)) * (8 + 4)
	return n
}

// CachedBlocks returns the number of blocks currently indexed.
func (c *PCache) CachedBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i := range c.regions {
		n += len(c.regions[i].entries)
	}
	return n
}

// SaveIndex snapshots the packed index so a restart can warm-start.
func (c *PCache) SaveIndex() error {
	c.mu.Lock()
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, indexMagic)
	buf = binary.LittleEndian.AppendUint32(buf, indexVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.opts.RegionBytes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.regions)))
	for i := range c.regions {
		r := &c.regions[i]
		buf = binary.LittleEndian.AppendUint64(buf, r.fileNum)
		buf = binary.LittleEndian.AppendUint32(buf, r.used)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.entries)))
		for _, e := range r.entries {
			buf = binary.LittleEndian.AppendUint64(buf, e.blockOff)
			buf = binary.LittleEndian.AppendUint32(buf, e.regOff)
			buf = binary.LittleEndian.AppendUint32(buf, e.length)
			buf = binary.LittleEndian.AppendUint32(buf, e.crc)
		}
	}
	c.mu.Unlock()
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	tmp := filepath.Join(c.opts.Dir, "INDEX.tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(c.opts.Dir, "INDEX"))
}

var (
	errBadIndex = errors.New("pcache: bad index snapshot")
	// errStaleIndex marks a structurally intact snapshot written under a
	// different geometry or format version: a clean invalidation, not
	// corruption (IndexWasCorrupt stays false).
	errStaleIndex = errors.New("pcache: stale index snapshot")
)

func (c *PCache) loadIndex() error {
	data, err := os.ReadFile(filepath.Join(c.opts.Dir, "INDEX"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil // cold start, not an error
		}
		return err
	}
	if len(data) < 28 {
		return errBadIndex
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return errBadIndex
	}
	p := body
	if binary.LittleEndian.Uint64(p) != indexMagic {
		return errBadIndex
	}
	p = p[8:]
	if binary.LittleEndian.Uint32(p) != indexVersion {
		return errStaleIndex
	}
	p = p[4:]
	if int64(binary.LittleEndian.Uint64(p)) != c.opts.RegionBytes {
		return errStaleIndex // geometry changed: discard
	}
	p = p[8:]
	n := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if int(n) != len(c.regions) {
		return errStaleIndex
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetLocked()
	c.freeList = c.freeList[:0]
	for i := uint32(0); i < n; i++ {
		if len(p) < 16 {
			return errBadIndex
		}
		r := &c.regions[i]
		r.fileNum = binary.LittleEndian.Uint64(p)
		r.used = binary.LittleEndian.Uint32(p[8:])
		cnt := binary.LittleEndian.Uint32(p[12:])
		p = p[16:]
		if len(p) < int(cnt)*packedEntrySize {
			return errBadIndex
		}
		for j := uint32(0); j < cnt; j++ {
			r.entries = append(r.entries, packedEntry{
				blockOff: binary.LittleEndian.Uint64(p),
				regOff:   binary.LittleEndian.Uint32(p[8:]),
				length:   binary.LittleEndian.Uint32(p[12:]),
				crc:      binary.LittleEndian.Uint32(p[16:]),
			})
			p = p[packedEntrySize:]
		}
		if r.fileNum != 0 {
			c.byFile[r.fileNum] = append(c.byFile[r.fileNum], int32(i))
		} else {
			c.freeList = append(c.freeList, int32(i))
		}
	}
	return nil
}

// Close snapshots the index and releases the data file.
func (c *PCache) Close() error {
	if err := c.SaveIndex(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}

// String summarizes the cache state for mashctl.
func (c *PCache) String() string {
	c.mu.Lock()
	free := len(c.freeList)
	total := len(c.regions)
	c.mu.Unlock()
	return fmt.Sprintf("pcache{regions=%d free=%d blocks=%d used=%dB meta=%dB hit=%.3f}",
		total, free, c.CachedBlocks(), c.UsedBytes(), c.MetadataBytes(), c.stats.HitRatio())
}
