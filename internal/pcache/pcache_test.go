package pcache

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func newMash(t *testing.T, capacity, region int64) *PCache {
	t.Helper()
	c, err := New(Options{Dir: t.TempDir(), CapacityBytes: capacity, RegionBytes: region})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func newGeneric(t *testing.T, capacity int64) *GenericLRU {
	t.Helper()
	g, err := NewGenericLRU(t.TempDir(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// both runs a subtest against each BlockCache implementation.
func both(t *testing.T, fn func(t *testing.T, c BlockCache)) {
	t.Run("mash", func(t *testing.T) { fn(t, newMash(t, 1<<20, 64<<10)) })
	t.Run("generic", func(t *testing.T) { fn(t, newGeneric(t, 1<<20)) })
}

func TestPutGetRoundTrip(t *testing.T) {
	both(t, func(t *testing.T, c BlockCache) {
		body := bytes.Repeat([]byte("block"), 100)
		c.Put(7, 4096, body)
		got, ok := c.Get(7, 4096)
		if !ok || !bytes.Equal(got, body) {
			t.Fatalf("get = ok=%v len=%d", ok, len(got))
		}
		if _, ok := c.Get(7, 8192); ok {
			t.Fatal("phantom block")
		}
		if _, ok := c.Get(8, 4096); ok {
			t.Fatal("phantom file")
		}
	})
}

func TestMultipleBlocksPerFile(t *testing.T) {
	both(t, func(t *testing.T, c BlockCache) {
		for i := 0; i < 50; i++ {
			c.Put(3, uint64(i*1000), []byte(fmt.Sprintf("block-%02d", i)))
		}
		for i := 0; i < 50; i++ {
			got, ok := c.Get(3, uint64(i*1000))
			if !ok || string(got) != fmt.Sprintf("block-%02d", i) {
				t.Fatalf("block %d: ok=%v %q", i, ok, got)
			}
		}
	})
}

func TestDropFile(t *testing.T) {
	both(t, func(t *testing.T, c BlockCache) {
		c.Put(1, 0, []byte("a"))
		c.Put(1, 100, []byte("b"))
		c.Put(2, 0, []byte("c"))
		c.DropFile(1)
		if _, ok := c.Get(1, 0); ok {
			t.Fatal("dropped block still present")
		}
		if _, ok := c.Get(1, 100); ok {
			t.Fatal("dropped block still present")
		}
		if _, ok := c.Get(2, 0); !ok {
			t.Fatal("unrelated file dropped")
		}
	})
}

func TestFileHeatTracking(t *testing.T) {
	both(t, func(t *testing.T, c BlockCache) {
		c.Put(5, 0, []byte("x"))
		for i := 0; i < 7; i++ {
			c.Get(5, 0)
		}
		if h := c.FileHeat(5); h != 7 {
			t.Fatalf("heat = %d", h)
		}
		c.DropFile(5)
		if h := c.FileHeat(5); h != 0 {
			t.Fatalf("heat after drop = %d", h)
		}
	})
}

func TestCapacityBounded(t *testing.T) {
	both(t, func(t *testing.T, c BlockCache) {
		blk := make([]byte, 8<<10)
		for i := 0; i < 1000; i++ {
			c.Put(uint64(i%10+1), uint64(i*10000), blk)
		}
		if used := c.UsedBytes(); used > 1<<20 {
			t.Fatalf("used %d exceeds capacity", used)
		}
		if c.Stats().RegionsEvicted.Load() == 0 {
			t.Fatal("expected evictions")
		}
	})
}

func TestMetadataPackedSmallerThanGeneric(t *testing.T) {
	// The headline of Table 2: packed index costs far less per block.
	m := newMash(t, 8<<20, 256<<10)
	g := newGeneric(t, 8<<20)
	blk := make([]byte, 1024)
	const blocks = 2000
	for i := 0; i < blocks; i++ {
		m.Put(uint64(i%20+1), uint64(i*2048), blk)
		g.Put(uint64(i%20+1), uint64(i*2048), blk)
	}
	mPer := float64(m.MetadataBytes()) / float64(m.CachedBlocks())
	gPer := float64(g.MetadataBytes()) / float64(g.CachedBlocks())
	if mPer >= gPer/3 {
		t.Fatalf("packed index %.1f B/blk not ≪ generic %.1f B/blk", mPer, gPer)
	}
}

func TestMashIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir, CapacityBytes: 1 << 20, RegionBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte("warm"), 256)
	c1.Put(9, 12345, body)
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Dir: dir, CapacityBytes: 1 << 20, RegionBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, ok := c2.Get(9, 12345)
	if !ok || !bytes.Equal(got, body) {
		t.Fatal("warm restart lost cached block")
	}
}

func TestMashCorruptIndexColdStarts(t *testing.T) {
	dir := t.TempDir()
	c1, _ := New(Options{Dir: dir, CapacityBytes: 1 << 20, RegionBytes: 64 << 10})
	c1.Put(9, 0, []byte("x"))
	c1.Close()

	idx := filepath.Join(dir, "INDEX")
	data, _ := os.ReadFile(idx)
	data[len(data)/2] ^= 0xff
	os.WriteFile(idx, data, 0o644)

	c2, err := New(Options{Dir: dir, CapacityBytes: 1 << 20, RegionBytes: 64 << 10})
	if err != nil {
		t.Fatal("corrupt index must not fail open:", err)
	}
	defer c2.Close()
	if _, ok := c2.Get(9, 0); ok {
		t.Fatal("corrupt index should cold-start")
	}
	if !c2.IndexWasCorrupt() {
		t.Fatal("IndexWasCorrupt not reported for a checksum-failed snapshot")
	}
	// Cache still functions.
	c2.Put(1, 0, []byte("y"))
	if _, ok := c2.Get(1, 0); !ok {
		t.Fatal("cache unusable after cold start")
	}
}

func TestMashGeometryChangeColdStarts(t *testing.T) {
	dir := t.TempDir()
	c1, _ := New(Options{Dir: dir, CapacityBytes: 1 << 20, RegionBytes: 64 << 10})
	c1.Put(9, 0, []byte("x"))
	c1.Close()

	c2, err := New(Options{Dir: dir, CapacityBytes: 1 << 20, RegionBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, ok := c2.Get(9, 0); ok {
		t.Fatal("changed region size must invalidate the index")
	}
	if c2.IndexWasCorrupt() {
		t.Fatal("geometry change is a clean invalidation, not corruption")
	}
}

func TestMashCorruptDataDetected(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir, CapacityBytes: 1 << 20, RegionBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Put(4, 0, bytes.Repeat([]byte("z"), 512))
	// Corrupt the DATA file under the cache.
	f, err := os.OpenFile(filepath.Join(dir, "DATA"), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte{0xff}, 10)
	f.Close()
	if _, ok := c.Get(4, 0); ok {
		t.Fatal("corrupt cached block returned as hit")
	}
	if n := c.Stats().CorruptReads.Load(); n != 1 {
		t.Fatalf("CorruptReads = %d, want 1", n)
	}
	// The damaged entry was dropped: the next read is a plain miss, not a
	// second corruption.
	if _, ok := c.Get(4, 0); ok {
		t.Fatal("dropped entry still served")
	}
	if n := c.Stats().CorruptReads.Load(); n != 1 {
		t.Fatalf("CorruptReads after drop = %d, want 1", n)
	}
	// Self-heal: re-admitting clean bytes serves hits again.
	c.Put(4, 0, bytes.Repeat([]byte("z"), 512))
	if _, ok := c.Get(4, 0); !ok {
		t.Fatal("re-admitted block not served")
	}
}

func TestMashRegionAffinity(t *testing.T) {
	// Blocks of different files must not share a region.
	c := newMash(t, 1<<20, 64<<10)
	c.Put(1, 0, make([]byte, 1000))
	c.Put(2, 0, make([]byte, 1000))
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.regions {
		r := &c.regions[i]
		if r.fileNum == 0 {
			continue
		}
		for _, e := range r.entries {
			_ = e
		}
	}
	if len(c.byFile[1]) == 0 || len(c.byFile[2]) == 0 {
		t.Fatal("files not indexed")
	}
	if c.byFile[1][0] == c.byFile[2][0] {
		t.Fatal("two files share a region")
	}
}

func TestMashEvictionPrefersCold(t *testing.T) {
	// Fill cache with two files, keep file 1 hot, then insert file 3;
	// file 1's blocks should survive more often than file 2's.
	c := newMash(t, 512<<10, 64<<10) // 8 regions
	blk := make([]byte, 60<<10)      // ~1 block per region
	for i := 0; i < 4; i++ {
		c.Put(1, uint64(i)*100000, blk)
		c.Put(2, uint64(i)*100000, blk)
	}
	// Heat file 1.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 4; i++ {
			c.Get(1, uint64(i)*100000)
		}
	}
	// Insert file 3, forcing evictions.
	for i := 0; i < 4; i++ {
		c.Put(3, uint64(i)*100000, blk)
	}
	hot, cold := 0, 0
	for i := 0; i < 4; i++ {
		if _, ok := c.Get(1, uint64(i)*100000); ok {
			hot++
		}
		if _, ok := c.Get(2, uint64(i)*100000); ok {
			cold++
		}
	}
	if hot < cold {
		t.Fatalf("CLOCK evicted hot file first: hot=%d cold=%d", hot, cold)
	}
}

func TestNullCache(t *testing.T) {
	n := NewNull()
	n.Put(1, 0, []byte("x"))
	if _, ok := n.Get(1, 0); ok {
		t.Fatal("null cache hit")
	}
	if n.MetadataBytes() != 0 || n.UsedBytes() != 0 || n.FileHeat(1) != 0 {
		t.Fatal("null cache should be empty")
	}
	n.DropFile(1)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedBlockDeclined(t *testing.T) {
	c := newMash(t, 1<<20, 4<<10)
	c.Put(1, 0, make([]byte, 8<<10))
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("oversized block cached")
	}
}

func TestStressRandomOps(t *testing.T) {
	// Invariant under random ops: a hit must return exactly the bytes that
	// were first admitted for that (file, offset); absence is always legal
	// (evictions), wrong data never is. Both implementations decline
	// re-admission of a resident block, so "first put wins" holds.
	c := newMash(t, 2<<20, 64<<10)
	ref := map[[2]uint64][]byte{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		file := uint64(rng.Intn(8) + 1)
		off := uint64(rng.Intn(64)) * 4096
		key := [2]uint64{file, off}
		switch rng.Intn(10) {
		case 0:
			c.DropFile(file)
			for k := range ref {
				if k[0] == file {
					delete(ref, k)
				}
			}
		case 1, 2, 3:
			body := make([]byte, rng.Intn(2048)+1)
			rng.Read(body)
			if _, resident := c.Get(file, off); !resident {
				c.Put(file, off, body)
				ref[key] = body
			}
		default:
			if got, ok := c.Get(file, off); ok {
				want, exists := ref[key]
				if !exists || !bytes.Equal(got, want) {
					t.Fatalf("stale data for (%d,%d)", file, off)
				}
			}
		}
	}
}

func TestHitRatioStats(t *testing.T) {
	both(t, func(t *testing.T, c BlockCache) {
		c.Put(1, 0, []byte("x"))
		c.Get(1, 0)
		c.Get(1, 999)
		s := c.Stats()
		if s.Hits.Load() != 1 || s.Misses.Load() != 1 {
			t.Fatalf("hits=%d misses=%d", s.Hits.Load(), s.Misses.Load())
		}
		if r := s.HitRatio(); r != 0.5 {
			t.Fatalf("ratio = %f", r)
		}
	})
}

// TestShardBucketAttribution checks that Get outcomes land in the
// keyspace-shard bucket implied by striped file numbering (shard =
// fileNum mod shard count), with shards >= 16 folded into the overflow
// bucket and everything in bucket 0 while unsharded.
func TestShardBucketAttribution(t *testing.T) {
	c := newMash(t, 1<<20, 64<<10)
	s := c.Stats()

	// Unsharded: all traffic is bucket 0 regardless of file number.
	c.Put(7, 0, []byte("unsharded"))
	c.Get(7, 0)
	if got := s.ShardHits[0].Load(); got != 1 {
		t.Fatalf("unsharded hit bucket 0 = %d, want 1", got)
	}

	s.SetKeyspaceShards(4)
	var baseHits, baseMisses [ShardBuckets]int64
	for b := 0; b < ShardBuckets; b++ {
		baseHits[b] = s.ShardHits[b].Load()
		baseMisses[b] = s.ShardMisses[b].Load()
	}
	for file := uint64(0); file < 8; file++ {
		c.Put(file+100, 0, []byte("sharded")) // fileNum 100..107 → shards 0..3 twice
		c.Get(file+100, 0)
		c.Get(file+100, 4096) // never inserted: a miss
	}
	// Files 100..107 stripe two files onto each of the 4 shards: one hit
	// and one miss per file means 2 hits and 2 misses per shard bucket.
	for shard := 0; shard < 4; shard++ {
		gotHits := s.ShardHits[shard].Load() - baseHits[shard]
		gotMisses := s.ShardMisses[shard].Load() - baseMisses[shard]
		if gotHits != 2 || gotMisses != 2 {
			t.Fatalf("shard %d: hits=%d misses=%d, want 2/2", shard, gotHits, gotMisses)
		}
	}

	// Shard counts past the bucket space collapse into the overflow bucket.
	s.SetKeyspaceShards(64)
	before := s.ShardMisses[ShardBuckets-1].Load()
	c.Get(163, 0) // 163 mod 64 = 35 ≥ 16 → overflow
	if got := s.ShardMisses[ShardBuckets-1].Load(); got != before+1 {
		t.Fatalf("overflow bucket misses = %d, want %d", got, before+1)
	}
}
