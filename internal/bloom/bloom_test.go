package bloom

import (
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"
)

func buildFilter(keys [][]byte, bitsPerKey int) Filter {
	hashes := make([]uint32, len(keys))
	for i, k := range keys {
		hashes[i] = Hash(k)
	}
	return New(hashes, bitsPerKey)
}

func TestEmptyFilter(t *testing.T) {
	f := buildFilter(nil, 10)
	if f.MayContainKey([]byte("anything")) {
		// An empty filter may return false positives in theory, but with no
		// bits set it must return false.
		t.Fatal("empty filter must not match")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	var ks [][]byte
	for i := 0; i < 10000; i++ {
		ks = append(ks, []byte(fmt.Sprintf("key-%d", i)))
	}
	f := buildFilter(ks, 10)
	for _, k := range ks {
		if !f.MayContainKey(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	var ks [][]byte
	for i := 0; i < 10000; i++ {
		ks = append(ks, []byte(fmt.Sprintf("key-%d", i)))
	}
	f := buildFilter(ks, 10)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContainKey([]byte(fmt.Sprintf("other-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 10 bits/key gives ~1% theoretically; allow generous headroom.
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(seeds []uint32) bool {
		if len(seeds) == 0 {
			return true
		}
		ks := make([][]byte, len(seeds))
		hashes := make([]uint32, len(seeds))
		for i, s := range seeds {
			b := make([]byte, 4)
			binary.LittleEndian.PutUint32(b, s)
			ks[i] = b
			hashes[i] = Hash(b)
		}
		filter := New(hashes, 10)
		for _, k := range ks {
			if !filter.MayContainKey(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashDistinguishesKeys(t *testing.T) {
	// Smoke test: hashes of similar keys differ.
	seen := map[uint32]bool{}
	coll := 0
	for i := 0; i < 10000; i++ {
		h := Hash([]byte(fmt.Sprintf("k%d", i)))
		if seen[h] {
			coll++
		}
		seen[h] = true
	}
	if coll > 5 {
		t.Fatalf("%d hash collisions in 10k keys", coll)
	}
}

func TestTinyBitsPerKeyClamped(t *testing.T) {
	f := buildFilter([][]byte{[]byte("a")}, 0)
	if !f.MayContainKey([]byte("a")) {
		t.Fatal("clamped filter must still contain inserted key")
	}
}
