// Package bloom implements the block-based bloom filter used in SSTable
// filter blocks. It follows the LevelDB/RocksDB construction: k probe
// positions derived from a single 32-bit hash by double hashing, with the
// probe count stored in the final byte of the encoded filter.
package bloom

// Filter is an encoded bloom filter: bit array followed by one byte holding
// the probe count.
type Filter []byte

// Hash is the 32-bit hash used for filter probes (LevelDB's bloom hash, a
// Murmur-inspired scheme, seed 0xbc9f1d34).
func Hash(b []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(b))*m
	for ; len(b) >= 4; b = b[4:] {
		h += uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
		h *= m
		h ^= h >> 16
	}
	switch len(b) {
	case 3:
		h += uint32(b[2]) << 16
		fallthrough
	case 2:
		h += uint32(b[1]) << 8
		fallthrough
	case 1:
		h += uint32(b[0])
		h *= m
		h ^= h >> 24
	}
	return h
}

// New builds a filter over the given key hashes with bitsPerKey bits of
// space per key. Use Hash to produce the hashes.
func New(hashes []uint32, bitsPerKey int) Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	// k = bitsPerKey * ln(2), clamped to [1,30].
	k := uint32(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	nBits := len(hashes) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8

	f := make(Filter, nBytes+1)
	f[nBytes] = byte(k)
	for _, h := range hashes {
		delta := h>>17 | h<<15
		for j := uint32(0); j < k; j++ {
			pos := h % uint32(nBits)
			f[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return f
}

// MayContain reports whether the key with hash h may be in the set encoded
// by f. False positives are possible; false negatives are not.
func (f Filter) MayContain(h uint32) bool {
	if len(f) < 2 {
		return false
	}
	nBits := uint32((len(f) - 1) * 8)
	k := uint32(f[len(f)-1])
	if k > 30 {
		// Reserved for future encodings; err on the side of matching.
		return true
	}
	delta := h>>17 | h<<15
	for j := uint32(0); j < k; j++ {
		pos := h % nBits
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// MayContainKey is MayContain over the raw key.
func (f Filter) MayContainKey(key []byte) bool { return f.MayContain(Hash(key)) }
