// Package ycsb implements the YCSB core workload generators (A–F) used by
// the paper's evaluation: key-choosers (zipfian, latest, uniform), the
// standard operation mixes, and a load/run driver over any key-value
// interface.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is one YCSB operation type.
type OpKind int

// YCSB operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	default:
		return "?"
	}
}

// Workload is a YCSB core workload definition.
type Workload struct {
	Name       string
	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	ScanProp   float64
	RMWProp    float64
	// Distribution: "zipfian", "uniform", or "latest".
	Distribution string
	// MaxScanLen bounds SCAN lengths (uniform in [1, MaxScanLen]).
	MaxScanLen int
}

// Core workloads A–F as defined by the YCSB paper.
var (
	WorkloadA = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, Distribution: "zipfian"}
	WorkloadB = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, Distribution: "zipfian"}
	WorkloadC = Workload{Name: "C", ReadProp: 1.0, Distribution: "zipfian"}
	WorkloadD = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Distribution: "latest"}
	WorkloadE = Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, Distribution: "zipfian", MaxScanLen: 100}
	WorkloadF = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, Distribution: "zipfian"}
)

// ByName returns the core workload with the given letter.
func ByName(name string) (Workload, error) {
	switch name {
	case "A", "a":
		return WorkloadA, nil
	case "B", "b":
		return WorkloadB, nil
	case "C", "c":
		return WorkloadC, nil
	case "D", "d":
		return WorkloadD, nil
	case "E", "e":
		return WorkloadE, nil
	case "F", "f":
		return WorkloadF, nil
	}
	return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// Zipfian generates integers in [0, n) with a zipf distribution, using the
// Gray et al. method so the constant can be chosen freely (YCSB uses
// theta = 0.99).
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	zeta2 float64
	eta   float64
	rng   *rand.Rand
}

// NewZipfian returns a zipfian chooser over [0, n).
func NewZipfian(rng *rand.Rand, n uint64, theta float64) *Zipfian {
	z := &Zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var s float64
	for i := uint64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// Next returns the next sample. Rank 0 is the most popular item.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// KeyChooser picks keys for operations.
type KeyChooser interface {
	// Next returns a key index given the current number of inserted keys.
	Next(inserted uint64) uint64
}

type zipfChooser struct{ z *Zipfian }

func (c zipfChooser) Next(uint64) uint64 { return c.z.Next() }

type uniformChooser struct{ rng *rand.Rand }

func (c uniformChooser) Next(inserted uint64) uint64 {
	if inserted == 0 {
		return 0
	}
	return uint64(c.rng.Int63n(int64(inserted)))
}

type latestChooser struct{ z *Zipfian }

func (c latestChooser) Next(inserted uint64) uint64 {
	if inserted == 0 {
		return 0
	}
	off := c.z.Next() % inserted
	return inserted - 1 - off
}

// scrambleKey spreads sequential ranks across the keyspace so popular keys
// are not physically adjacent (YCSB's hashed key order).
func scrambleKey(rank uint64) uint64 {
	h := rank * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return h
}

// Key formats the YCSB key for an item index.
func Key(idx uint64) []byte {
	return []byte(fmt.Sprintf("user%019d", scrambleKey(idx)))
}

// SequentialKey formats the key for loading item idx without scrambling
// lookups (Key(idx) must be used consistently; this is Key's alias for
// clarity at load time).
func SequentialKey(idx uint64) []byte { return Key(idx) }

// Generator produces a stream of YCSB operations.
type Generator struct {
	w        Workload
	rng      *rand.Rand
	chooser  KeyChooser
	inserted uint64
	valueLen int
}

// NewGenerator builds a generator over an initial keyspace of recordCount
// items with the given value size. Theta 0.99 matches YCSB defaults.
func NewGenerator(w Workload, recordCount uint64, valueLen int, seed int64) *Generator {
	return NewGeneratorWithTheta(w, recordCount, valueLen, seed, 0.99)
}

// NewGeneratorWithTheta is NewGenerator with an explicit zipfian skew
// constant, used by the skew-sensitivity experiment.
func NewGeneratorWithTheta(w Workload, recordCount uint64, valueLen int, seed int64, theta float64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{w: w, rng: rng, inserted: recordCount, valueLen: valueLen}
	switch w.Distribution {
	case "uniform":
		g.chooser = uniformChooser{rng}
	case "latest":
		g.chooser = latestChooser{NewZipfian(rng, recordCount, theta)}
	default:
		g.chooser = zipfChooser{NewZipfian(rng, recordCount, theta)}
	}
	return g
}

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	Key     []byte
	Value   []byte // for UPDATE/INSERT/RMW
	ScanLen int    // for SCAN
}

// Value synthesizes a deterministic value body.
func (g *Generator) value() []byte {
	v := make([]byte, g.valueLen)
	g.rng.Read(v)
	return v
}

// Next produces the next operation in the workload mix.
func (g *Generator) Next() Op {
	r := g.rng.Float64()
	w := g.w
	switch {
	case r < w.ReadProp:
		return Op{Kind: OpRead, Key: Key(g.chooser.Next(g.inserted))}
	case r < w.ReadProp+w.UpdateProp:
		return Op{Kind: OpUpdate, Key: Key(g.chooser.Next(g.inserted)), Value: g.value()}
	case r < w.ReadProp+w.UpdateProp+w.InsertProp:
		idx := g.inserted
		g.inserted++
		return Op{Kind: OpInsert, Key: Key(idx), Value: g.value()}
	case r < w.ReadProp+w.UpdateProp+w.InsertProp+w.ScanProp:
		n := 1
		if w.MaxScanLen > 1 {
			n = g.rng.Intn(w.MaxScanLen) + 1
		}
		return Op{Kind: OpScan, Key: Key(g.chooser.Next(g.inserted)), ScanLen: n}
	default:
		return Op{Kind: OpReadModifyWrite, Key: Key(g.chooser.Next(g.inserted)), Value: g.value()}
	}
}

// Inserted returns the current record count.
func (g *Generator) Inserted() uint64 { return g.inserted }
