package ycsb

import (
	"math"
	"math/rand"
	"testing"
)

func TestByName(t *testing.T) {
	for _, n := range []string{"A", "B", "C", "D", "E", "F", "a", "f"} {
		if _, err := ByName(n); err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("Z"); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestWorkloadProportionsSumToOne(t *testing.T) {
	for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF} {
		sum := w.ReadProp + w.UpdateProp + w.InsertProp + w.ScanProp + w.RMWProp
		if math.Abs(sum-1.0) > 1e-9 {
			t.Fatalf("workload %s proportions sum to %f", w.Name, sum)
		}
	}
}

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(rand.New(rand.NewSource(1)), 1000, 0.99)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(rand.New(rand.NewSource(2)), 10000, 0.99)
	counts := map[uint64]int{}
	const samples = 200000
	for i := 0; i < samples; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should dominate: classical zipf(0.99) gives it several
	// percent of all draws over 10k items.
	if frac := float64(counts[0]) / samples; frac < 0.02 {
		t.Fatalf("rank-0 frequency %f too low for zipfian", frac)
	}
	// Top-100 ranks should hold a large share.
	top := 0
	for r := uint64(0); r < 100; r++ {
		top += counts[r]
	}
	if frac := float64(top) / samples; frac < 0.3 {
		t.Fatalf("top-100 share %f too low", frac)
	}
}

func TestUniformChooserRange(t *testing.T) {
	c := uniformChooser{rand.New(rand.NewSource(3))}
	for i := 0; i < 10000; i++ {
		if v := c.Next(50); v >= 50 {
			t.Fatalf("uniform sample %d out of range", v)
		}
	}
	if c.Next(0) != 0 {
		t.Fatal("empty keyspace should return 0")
	}
}

func TestLatestChooserPrefersRecent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := latestChooser{NewZipfian(rng, 10000, 0.99)}
	recent := 0
	const samples = 100000
	for i := 0; i < samples; i++ {
		v := c.Next(10000)
		if v >= 10000 {
			t.Fatalf("latest sample %d out of range", v)
		}
		if v >= 9900 {
			recent++
		}
	}
	if frac := float64(recent) / samples; frac < 0.3 {
		t.Fatalf("latest distribution not recency-biased: %f", frac)
	}
}

func TestKeyDeterministicAndDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := uint64(0); i < 10000; i++ {
		k := string(Key(i))
		if seen[k] {
			t.Fatalf("duplicate key at %d", i)
		}
		seen[k] = true
		if string(Key(i)) != k {
			t.Fatal("key not deterministic")
		}
	}
}

func TestGeneratorMixMatchesWorkload(t *testing.T) {
	g := NewGenerator(WorkloadA, 1000, 100, 7)
	counts := map[OpKind]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		op := g.Next()
		counts[op.Kind]++
		if op.Kind == OpUpdate && len(op.Value) != 100 {
			t.Fatal("update without value")
		}
	}
	readFrac := float64(counts[OpRead]) / n
	if readFrac < 0.47 || readFrac > 0.53 {
		t.Fatalf("workload A read fraction = %f", readFrac)
	}
}

func TestGeneratorInsertGrowsKeyspace(t *testing.T) {
	g := NewGenerator(WorkloadD, 100, 10, 8)
	before := g.Inserted()
	inserts := 0
	for i := 0; i < 10000; i++ {
		if g.Next().Kind == OpInsert {
			inserts++
		}
	}
	if g.Inserted() != before+uint64(inserts) {
		t.Fatalf("inserted count mismatch: %d vs %d+%d", g.Inserted(), before, inserts)
	}
	if inserts == 0 {
		t.Fatal("workload D produced no inserts")
	}
}

func TestScanLengthsBounded(t *testing.T) {
	g := NewGenerator(WorkloadE, 1000, 10, 9)
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Kind == OpScan {
			if op.ScanLen < 1 || op.ScanLen > WorkloadE.MaxScanLen {
				t.Fatalf("scan length %d out of bounds", op.ScanLen)
			}
		}
	}
}

func TestGeneratorDeterministicForSeed(t *testing.T) {
	g1 := NewGenerator(WorkloadB, 500, 64, 42)
	g2 := NewGenerator(WorkloadB, 500, 64, 42)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Kind != b.Kind || string(a.Key) != string(b.Key) {
			t.Fatalf("divergence at op %d", i)
		}
	}
}
