// Package memtable implements the mutable in-memory write buffer of the LSM
// tree: a skiplist of internal keys plus size accounting used to trigger
// flushes.
package memtable

import (
	"sync"

	"rocksmash/internal/arena"
	"rocksmash/internal/keys"
	"rocksmash/internal/skiplist"
)

// MemTable buffers recent writes. Add is safe for concurrent use (the
// commit pipeline applies group members' batches in parallel), as are Get
// and iterators.
type MemTable struct {
	arena *arena.Arena
	list  *skiplist.List

	// writers counts in-flight commit-pipeline appliers. The DB registers
	// writers under its rotation lock while the memtable is current, so by
	// the time a sealed memtable's flush calls WaitWriters no new
	// registrations can arrive and the wait is race-free.
	writers sync.WaitGroup
}

// New returns an empty memtable.
func New() *MemTable {
	a := arena.New()
	return &MemTable{arena: a, list: skiplist.New(a)}
}

// Add inserts an entry. For kind == keys.KindDelete, value is ignored.
func (m *MemTable) Add(seq uint64, kind keys.Kind, ukey, value []byte) {
	ikey := keys.MakeInternalKey(nil, ukey, seq, kind)
	if kind == keys.KindDelete {
		value = nil
	}
	m.list.Insert(ikey, value)
}

// RegisterWriters records n appliers about to Add concurrently. Must only
// be called while the memtable is the DB's current one, under the lock that
// also guards sealing.
func (m *MemTable) RegisterWriters(n int) { m.writers.Add(n) }

// WriterDone marks one registered applier finished.
func (m *MemTable) WriterDone() { m.writers.Done() }

// WaitWriters blocks until every registered applier has finished. Flush
// calls this after the memtable is sealed (no new registrations possible)
// so it never snapshots a memtable mid-apply.
func (m *MemTable) WaitWriters() { m.writers.Wait() }

// Get looks up ukey at snapshot seq. Returns:
//
//	value, true,  true  — a live value was found
//	nil,   true,  false — a tombstone was found (key deleted)
//	nil,   false, _     — no entry for the key in this memtable
func (m *MemTable) Get(ukey []byte, seq uint64) (value []byte, found, live bool) {
	it := m.list.NewIterator()
	it.SeekGE(keys.MakeSeekKey(nil, ukey, seq))
	if !it.Valid() {
		return nil, false, false
	}
	ik := it.Key()
	if string(keys.UserKey(ik)) != string(ukey) {
		return nil, false, false
	}
	_, kind := keys.DecodeTrailer(ik)
	if kind == keys.KindDelete {
		return nil, true, false
	}
	return it.Value(), true, true
}

// ApproximateSize returns the bytes consumed by entries (keys + values +
// trailers), used for flush triggering.
func (m *MemTable) ApproximateSize() int64 { return m.arena.Size() }

// Len returns the number of entries.
func (m *MemTable) Len() int { return m.list.Len() }

// Empty reports whether the memtable has no entries.
func (m *MemTable) Empty() bool { return m.list.Empty() }

// NewIterator returns an iterator over internal keys in sorted order.
func (m *MemTable) NewIterator() *skiplist.Iterator { return m.list.NewIterator() }
