package memtable

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"rocksmash/internal/keys"
)

func TestPutGet(t *testing.T) {
	m := New()
	m.Add(1, keys.KindSet, []byte("a"), []byte("v1"))
	v, found, live := m.Get([]byte("a"), 10)
	if !found || !live || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("get = (%q,%v,%v)", v, found, live)
	}
}

func TestGetMissing(t *testing.T) {
	m := New()
	m.Add(1, keys.KindSet, []byte("a"), []byte("v"))
	if _, found, _ := m.Get([]byte("b"), 10); found {
		t.Fatal("should not find b")
	}
}

func TestSnapshotVisibility(t *testing.T) {
	m := New()
	m.Add(5, keys.KindSet, []byte("k"), []byte("v5"))
	m.Add(9, keys.KindSet, []byte("k"), []byte("v9"))

	if v, _, _ := m.Get([]byte("k"), 9); !bytes.Equal(v, []byte("v9")) {
		t.Fatalf("at seq 9 got %q", v)
	}
	if v, _, _ := m.Get([]byte("k"), 7); !bytes.Equal(v, []byte("v5")) {
		t.Fatalf("at seq 7 got %q", v)
	}
	if _, found, _ := m.Get([]byte("k"), 3); found {
		t.Fatal("nothing should be visible at seq 3")
	}
}

func TestDeleteTombstone(t *testing.T) {
	m := New()
	m.Add(1, keys.KindSet, []byte("k"), []byte("v"))
	m.Add(2, keys.KindDelete, []byte("k"), nil)

	_, found, live := m.Get([]byte("k"), 10)
	if !found || live {
		t.Fatalf("expected tombstone, got found=%v live=%v", found, live)
	}
	// Older snapshot still sees the value.
	v, found, live := m.Get([]byte("k"), 1)
	if !found || !live || !bytes.Equal(v, []byte("v")) {
		t.Fatal("old snapshot should see the value")
	}
}

func TestGetDoesNotMatchPrefix(t *testing.T) {
	m := New()
	m.Add(1, keys.KindSet, []byte("abc"), []byte("v"))
	if _, found, _ := m.Get([]byte("ab"), 10); found {
		t.Fatal("prefix must not match")
	}
}

func TestApproximateSizeGrows(t *testing.T) {
	m := New()
	before := m.ApproximateSize()
	m.Add(1, keys.KindSet, []byte("key"), make([]byte, 1000))
	if m.ApproximateSize() < before+1000 {
		t.Fatalf("size did not grow: %d", m.ApproximateSize())
	}
}

func TestQuickMatchesMap(t *testing.T) {
	// Property: after a sequence of sets/deletes, Get at the latest seq
	// agrees with a plain map.
	type op struct {
		Key    uint8
		Del    bool
		ValLen uint8
	}
	f := func(ops []op) bool {
		m := New()
		ref := map[string][]byte{}
		seq := uint64(0)
		for _, o := range ops {
			seq++
			k := []byte(fmt.Sprintf("k%03d", o.Key))
			if o.Del {
				m.Add(seq, keys.KindDelete, k, nil)
				delete(ref, string(k))
			} else {
				v := bytes.Repeat([]byte{o.Key}, int(o.ValLen))
				m.Add(seq, keys.KindSet, k, v)
				ref[string(k)] = v
			}
		}
		for i := 0; i < 256; i++ {
			k := []byte(fmt.Sprintf("k%03d", i))
			v, found, live := m.Get(k, seq)
			want, ok := ref[string(k)]
			if ok {
				if !found || !live || !bytes.Equal(v, want) {
					return false
				}
			} else if found && live {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
