package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every registered experiment at tiny
// scale, asserting each produces its report without error.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range List() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := Config{BaseDir: t.TempDir(), Quick: true, Out: &buf}
			if err := Run(e.Name, cfg); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.Name, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, e.Name) {
				t.Fatalf("report missing header: %q", out)
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Fatalf("report suspiciously short:\n%s", out)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := Run("fig99", Config{BaseDir: t.TempDir()})
	if err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestListOrderedAndComplete(t *testing.T) {
	es := List()
	want := []string{"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "tab2", "tab3", "tab4", "fig13", "fig14", "fig-incident", "fig-localfault", "outage", "fig-readamp", "fig-scan", "fig-shardscale", "fig-vitals", "fig-wscale"}
	if len(es) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(es), len(want))
	}
	for i, e := range es {
		if e.Name != want[i] {
			t.Fatalf("experiment %d = %s want %s", i, e.Name, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.Name)
		}
	}
}
