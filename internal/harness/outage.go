package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/histogram"
	"rocksmash/internal/storage"
	"rocksmash/internal/ycsb"
)

func init() {
	register("outage", "Robustness (ours): availability across a scripted cloud outage", outageExperiment)
}

// runOutagePhase drives count YCSB ops tolerating the typed degraded-mode
// read error: a Get answered with ErrCloudUnavailable is counted, not
// fatal, because that is the documented contract for cold cloud reads
// while the breaker is open. Any write error fails the experiment — the
// whole point of degraded mode is that writes never see the outage.
func runOutagePhase(cfg Config, phase string, d *db.DB, gen *ycsb.Generator, count int) (int, error) {
	reads, writes := histogram.New(), histogram.New()
	unavailable := 0
	start := time.Now()
	for i := 0; i < count; i++ {
		op := gen.Next()
		s := time.Now()
		switch op.Kind {
		case ycsb.OpRead, ycsb.OpScan:
			_, gerr := d.Get(op.Key)
			switch {
			case gerr == nil || gerr == db.ErrNotFound:
				reads.Record(time.Since(s))
			case errors.Is(gerr, db.ErrCloudUnavailable):
				unavailable++
			default:
				return 0, gerr
			}
		default:
			if err := d.Put(op.Key, op.Value); err != nil {
				return 0, fmt.Errorf("write failed during %s phase: %w", phase, err)
			}
			writes.Record(time.Since(s))
		}
	}
	dur := time.Since(start)
	phaseReport(cfg, phase, reads, writes, dur)
	if unavailable > 0 {
		fmt.Fprintf(cfg.out(), "    [%s] reads answered ErrCloudUnavailable: %d\n", phase, unavailable)
	}
	return unavailable, nil
}

// outageExperiment measures write availability and read degradation across
// a full cloud outage spanning several flushes, for the all-cloud worst
// case and the paper's hybrid placement. Healthy -> outage -> recovery
// phases run the same update-heavy workload; the outage phase must complete
// with zero write errors, and afterwards the pending-upload backlog must
// drain completely.
func outageExperiment(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(30000)
	phaseOps := cfg.scale(12000)

	for _, p := range []db.Policy{db.PolicyCloudOnly, db.PolicyMash} {
		opts := expOptions(p)
		// Recovery must be observable at harness scale, and the memtable
		// small enough that the outage window spans several flushes.
		opts.MemtableBytes = 128 << 10
		opts.CloudBreaker.Cooldown = 250 * time.Millisecond
		opts.PendingDrainInterval = 50 * time.Millisecond

		dir := filepath.Join(cfg.BaseDir, "outage", p.String())
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
		d, faulty, err := db.OpenAtChaos(dir, opts, storage.FaultConfig{Seed: cfg.seed()})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  policy=%s records=%d ops/phase=%d\n", p, records, phaseOps)
		if err := loadRecords(d, records, 400); err != nil {
			d.Close()
			return err
		}

		gen := ycsb.NewGenerator(ycsb.WorkloadA, uint64(records), 400, cfg.seed())
		if _, err := runOutagePhase(cfg, "healthy", d, gen, phaseOps); err != nil {
			d.Close()
			return err
		}

		faulty.StartOutage(0)
		if _, err := runOutagePhase(cfg, "outage", d, gen, phaseOps); err != nil {
			d.Close()
			return err
		}
		// A flush while the cloud is still down must land locally, not fail.
		if err := d.Flush(); err != nil {
			d.Close()
			return fmt.Errorf("policy %s: flush during outage: %w", p, err)
		}
		pending, pendingBytes := d.PendingCloudTables()
		fmt.Fprintf(w, "    [outage] breaker=%s pending=%d tables (%.2fMB) flushes degraded, zero write errors\n",
			d.BreakerState(), pending, float64(pendingBytes)/(1<<20))

		faulty.EndOutage()
		if _, err := runOutagePhase(cfg, "recovery", d, gen, phaseOps); err != nil {
			d.Close()
			return err
		}
		drainStart := time.Now()
		deadline := drainStart.Add(30 * time.Second)
		for {
			if n, _ := d.PendingCloudTables(); n == 0 {
				break
			}
			if time.Now().After(deadline) {
				d.Close()
				return fmt.Errorf("policy %s: pending backlog did not drain", p)
			}
			time.Sleep(10 * time.Millisecond)
		}
		m := d.Metrics()
		fmt.Fprintf(w, "    [recovery] backlog drained in %s: degraded=%d drained=%d breaker=%s trips=%d degraded-time=%s\n",
			time.Since(drainStart).Round(time.Millisecond), m.DegradedTables, m.DrainedTables,
			m.BreakerState, m.BreakerTrips, m.DegradedDur.Round(time.Millisecond))
		if err := d.Close(); err != nil {
			return err
		}
	}
	return nil
}
