// Package harness regenerates every table and figure of the paper's
// evaluation (as reconstructed in DESIGN.md §4). Each experiment loads a
// workload against one or more placement policies on the same engine and
// prints the rows/series the paper reports: throughput, latency
// percentiles, cache hit ratios, metadata footprints, recovery times, and
// monthly cost.
package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/histogram"
	"rocksmash/internal/storage"
	"rocksmash/internal/ycsb"
)

// Config controls experiment scale and placement of scratch data.
type Config struct {
	// BaseDir is scratch space; each experiment uses a subdirectory.
	BaseDir string
	// Quick shrinks datasets ~10x for smoke runs.
	Quick bool
	// Out receives the report (default os.Stdout).
	Out io.Writer
	// Seed fixes workload randomness.
	Seed int64
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

func (c Config) scale(full int) int {
	if c.Quick {
		if q := full / 10; q > 0 {
			return q
		}
		return 1
	}
	return full
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 20210701 // CLUSTER 2021 vintage
	}
	return c.Seed
}

// Experiment is a runnable table/figure reproduction.
type Experiment struct {
	Name  string
	Title string
	Run   func(cfg Config) error
}

var registry []Experiment

func register(name, title string, run func(Config) error) {
	registry = append(registry, Experiment{Name: name, Title: title, Run: run})
}

// List returns all experiments in registration (figure/table) order.
func List() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Run executes the named experiment ("fig5", "tab2", ... or "all").
func Run(name string, cfg Config) error {
	if cfg.BaseDir == "" {
		dir, err := os.MkdirTemp("", "rocksmash-exp-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.BaseDir = dir
	}
	if name == "all" {
		for _, e := range registry {
			if err := Run(e.Name, cfg); err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
		}
		return nil
	}
	for _, e := range registry {
		if e.Name == name {
			fmt.Fprintf(cfg.out(), "\n=== %s: %s ===\n", e.Name, e.Title)
			start := time.Now()
			if err := e.Run(cfg); err != nil {
				return err
			}
			fmt.Fprintf(cfg.out(), "--- %s done in %s ---\n", e.Name, time.Since(start).Round(time.Millisecond))
			return nil
		}
	}
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	sort.Strings(names)
	return fmt.Errorf("harness: unknown experiment %q (have %v)", name, names)
}

// allPolicies is the comparison set used across figures.
var allPolicies = []db.Policy{db.PolicyLocalOnly, db.PolicyMash, db.PolicyCloudLRU, db.PolicyCloudOnly}

// expOptions returns the standard experiment geometry: small enough that
// compactions and tier transitions happen at harness scale, with the
// scaled-down cloud latency model.
func expOptions(p db.Policy) db.Options {
	o := db.DefaultOptions()
	o.Policy = p
	o.MemtableBytes = 1 << 20
	o.BlockBytes = 4 << 10
	o.BlockCacheBytes = 2 << 20
	o.PCacheBytes = 16 << 20
	o.PCacheRegionBytes = 128 << 10
	o.L0CompactTrigger = 4
	o.LevelBaseBytes = 4 << 20
	o.LevelMultiplier = 8
	o.TargetFileBytes = 1 << 20
	o.CloudLatency = storage.LatencyModel{
		GetFirstByte:   2 * time.Millisecond,
		PutFirstByte:   3 * time.Millisecond,
		MetaRTT:        time.Millisecond,
		ReadBandwidth:  400 << 20,
		WriteBandwidth: 400 << 20,
	}
	return o
}

// openExp opens a DB for an experiment under cfg.BaseDir/<tag>/<policy>.
func openExp(cfg Config, tag string, opts db.Options) (*db.DB, string, error) {
	dir := filepath.Join(cfg.BaseDir, tag, opts.Policy.String())
	if err := os.RemoveAll(dir); err != nil {
		return nil, "", err
	}
	d, err := db.OpenAt(dir, opts)
	return d, dir, err
}

// loadRecords inserts n YCSB records of valueLen bytes and settles the tree.
func loadRecords(d *db.DB, n int, valueLen int) error {
	val := make([]byte, valueLen)
	for i := 0; i < n; i++ {
		for j := range val {
			val[j] = byte(i + j)
		}
		if err := d.Put(ycsb.Key(uint64(i)), val); err != nil {
			return err
		}
	}
	return d.CompactAll()
}

// runOps executes count ops from gen against d, recording latencies into
// separate read/write histograms. Scans read up to ScanLen records.
func runOps(d *db.DB, gen *ycsb.Generator, count int) (reads, writes *histogram.H, err error) {
	reads, writes = histogram.New(), histogram.New()
	for i := 0; i < count; i++ {
		op := gen.Next()
		start := time.Now()
		switch op.Kind {
		case ycsb.OpRead:
			_, gerr := d.Get(op.Key)
			if gerr != nil && gerr != db.ErrNotFound {
				return nil, nil, gerr
			}
			reads.Record(time.Since(start))
		case ycsb.OpUpdate, ycsb.OpInsert:
			if err := d.Put(op.Key, op.Value); err != nil {
				return nil, nil, err
			}
			writes.Record(time.Since(start))
		case ycsb.OpScan:
			it, ierr := d.NewIterator()
			if ierr != nil {
				return nil, nil, ierr
			}
			it.Seek(op.Key)
			for j := 0; j < op.ScanLen && it.Valid(); j++ {
				it.Next()
			}
			cerr := it.Close()
			if cerr != nil {
				return nil, nil, cerr
			}
			reads.Record(time.Since(start))
		case ycsb.OpReadModifyWrite:
			_, gerr := d.Get(op.Key)
			if gerr != nil && gerr != db.ErrNotFound {
				return nil, nil, gerr
			}
			if err := d.Put(op.Key, op.Value); err != nil {
				return nil, nil, err
			}
			writes.Record(time.Since(start))
		}
	}
	return reads, writes, nil
}

// phaseReport prints per-phase latency percentile lines, so every
// experiment shows the distribution shape behind its throughput number.
func phaseReport(cfg Config, phase string, reads, writes *histogram.H, dur time.Duration) {
	w := cfg.out()
	line := func(kind string, h *histogram.H) {
		if h == nil || h.Count() == 0 {
			return
		}
		fmt.Fprintf(w, "    [%s %s] %s ops/s  p50=%s p90=%s p99=%s max=%s\n",
			phase, kind, kops(int(h.Count()), dur),
			h.Percentile(50), h.Percentile(90), h.Percentile(99), h.Max())
	}
	line("read", reads)
	line("write", writes)
}

// runPhase times a runOps phase and prints its percentile report.
func runPhase(cfg Config, phase string, d *db.DB, gen *ycsb.Generator, count int) (time.Duration, *histogram.H, *histogram.H, error) {
	start := time.Now()
	reads, writes, err := runOps(d, gen, count)
	if err != nil {
		return 0, nil, nil, err
	}
	dur := time.Since(start)
	phaseReport(cfg, phase, reads, writes, dur)
	return dur, reads, writes, nil
}

// kops formats an ops/sec figure.
func kops(ops int, dur time.Duration) string {
	if dur <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%8.2f", float64(ops)/dur.Seconds()/1000)
}
