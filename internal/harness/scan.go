package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/readprof"
	"rocksmash/internal/ycsb"
)

func init() {
	register("fig-scan", "Range scans (ours): sorted-view sidecars + pipelined cloud readahead vs plain merge", figScan)
}

// scanRow is the JSON artifact schema, one row per (views on/off) mode.
type scanRow struct {
	Views           bool    `json:"views"`
	FullScanKeys    int64   `json:"full_scan_keys"`
	FullScanMkeys   float64 `json:"full_scan_mkeys_per_sec"`
	ShortScanOps    float64 `json:"short_scan_ops_per_sec"`
	IterKeys        int64   `json:"iter_keys"`
	IterBlocks      int64   `json:"iter_blocks"`
	CloudBlocks     int64   `json:"iter_cloud_blocks"`
	CloudPerKey     float64 `json:"cloud_blocks_per_scanned_key"`
	ReadaheadSpans  int64   `json:"readahead_spans"`
	ReadaheadBlocks int64   `json:"readahead_blocks"`
	ViewHits        int64   `json:"scan_view_hits"`
	ViewMisses      int64   `json:"scan_view_misses"`
	ViewBuilds      int64   `json:"view_builds"`
}

// figScan measures the sorted-view tentpole directly: on a cloud-resident
// tree (only L0 local), run one full-table scan and a YCSB-E short-scan
// mix, with sorted views enabled vs DisableSortedViews. The baseline row
// is the engine at stock options — serial per-block cloud GETs, the
// pre-view scan path. With views, the per-level merge collapses to one
// cursor run and cloud fetches become exact pipelined span reads that
// bulk-admit into the caches, so the read profiler sees most blocks served
// from the block cache: the cloud blocks-per-scanned-key column is the
// per-key read amplification against cloud storage, and the full-scan
// throughput column is the latency win. Rows land in scan.json for plots.
func figScan(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(30000)
	shortScans := cfg.scale(2000)
	const valLen = 400

	fmt.Fprintf(w, "%-10s %12s %14s %15s %12s %9s %10s %10s\n",
		"views", "fullMkeys/s", "shortScans/s", "cloudBlks/key", "cloudBlks", "raSpans", "viewHits", "viewMiss")
	var rows []scanRow
	for _, views := range []bool{false, true} {
		opts := expOptions(db.PolicyMash)
		opts.LocalLevels = 1
		opts.DisableSortedViews = !views
		// Keep the caches much smaller than the dataset (even at -quick
		// scale) so the scans actually exercise the cloud tier instead of
		// replaying the load phase's cache admissions, and keep files small
		// enough that the load settles into a multi-table cloud level —
		// the shape the per-level merge (and the view that replaces it)
		// exists for.
		opts.BlockCacheBytes = 512 << 10
		opts.PCacheBytes = 2 << 20
		opts.MemtableBytes = 256 << 10
		opts.TargetFileBytes = 256 << 10
		tag := "scan-noviews"
		if views {
			tag = "scan-views"
		}
		d, _, err := openExp(cfg, tag, opts)
		if err != nil {
			return err
		}
		if err := loadRecords(d, records, valLen); err != nil {
			d.Close()
			return err
		}
		if views {
			if err := d.BuildViews(); err != nil {
				d.Close()
				return err
			}
		}

		// Full-table scan: First → Next until exhausted.
		var keys int64
		start := time.Now()
		it, err := d.NewIterator()
		if err != nil {
			d.Close()
			return err
		}
		for it.First(); it.Valid(); it.Next() {
			keys++
		}
		if err := it.Close(); err != nil {
			d.Close()
			return err
		}
		fullDur := time.Since(start)

		// YCSB E: 95% short scans (zipfian start key, uniform length),
		// 5% inserts.
		gen := ycsb.NewGenerator(ycsb.WorkloadE, uint64(records), valLen, cfg.seed())
		start = time.Now()
		if _, _, err := runOps(d, gen, shortScans); err != nil {
			d.Close()
			return err
		}
		shortDur := time.Since(start)

		m := d.Metrics()
		var iterBlocks int64
		for _, b := range m.ReadAmp.IterBlocks {
			iterBlocks += b
		}
		row := scanRow{
			Views:           views,
			FullScanKeys:    keys,
			FullScanMkeys:   float64(keys) / fullDur.Seconds() / 1e6,
			ShortScanOps:    float64(shortScans) / shortDur.Seconds(),
			IterKeys:        m.IterKeys,
			IterBlocks:      iterBlocks,
			CloudBlocks:     m.ReadAmp.IterBlocks[readprof.TierCloud],
			ReadaheadSpans:  m.ReadaheadSpans,
			ReadaheadBlocks: m.ReadaheadBlocks,
			ViewHits:        m.ScanViewHits,
			ViewMisses:      m.ScanViewMisses,
			ViewBuilds:      m.ViewBuilds,
		}
		if m.IterKeys > 0 {
			row.CloudPerKey = float64(row.CloudBlocks) / float64(m.IterKeys)
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10t %12.3f %14.1f %15.4f %12d %9d %10d %10d\n",
			views, row.FullScanMkeys, row.ShortScanOps, row.CloudPerKey,
			row.CloudBlocks, row.ReadaheadSpans, row.ViewHits, row.ViewMisses)
		if err := d.Close(); err != nil {
			return err
		}
	}

	if len(rows) == 2 && rows[0].FullScanMkeys > 0 {
		fmt.Fprintf(w, "full-scan speedup with views: %.2fx\n",
			rows[1].FullScanMkeys/rows[0].FullScanMkeys)
	}
	path := filepath.Join(cfg.BaseDir, "scan.json")
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "artifact: %s\n", path)
	return nil
}
