package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/storage"
	"rocksmash/internal/ycsb"
)

func init() {
	register("fig-localfault", "Self-healing (ours): bit-flip scrub/repair and disk-full degradation", localFaultExperiment)
}

// localFaultValue regenerates record i's expected payload, so readback
// phases can assert byte-correctness rather than mere availability.
func localFaultValue(i, valueLen int) []byte {
	val := make([]byte, valueLen)
	for j := range val {
		val[j] = byte(i + j)
	}
	return val
}

// waitStable polls fn until its value is nonzero and unchanged for several
// consecutive samples (the lazy mirrorer works in background-drain ticks),
// or the deadline passes.
func waitStable(fn func() int64, interval time.Duration, deadline time.Time) int64 {
	var last int64
	stable := 0
	for time.Now().Before(deadline) {
		cur := fn()
		if cur > 0 && cur == last {
			stable++
			if stable >= 5 {
				return cur
			}
		} else {
			stable = 0
		}
		last = cur
		time.Sleep(interval)
	}
	return last
}

// localFaultExperiment exercises the self-healing local tier end to end in
// four phases on one store:
//
//  1. fill: load under PolicyMash with MirrorLocalLevels, wait for the lazy
//     mirrorer to give every local table a cloud copy;
//  2. bit-flip storm: a 1% read-corruption rate on the local device while
//     the full keyspace is read back — every value must come back
//     byte-correct with zero corruption errors surfaced to the client;
//  3. disk full: the local write budget is exhausted mid-workload — writes
//     must continue (flushes land cloud-direct behind the open local
//     breaker) with zero errors;
//  4. recovery: the budget lifts, the breaker closes, and the misplaced
//     tables drain back to the local tier.
func localFaultExperiment(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(20000)
	phaseOps := cfg.scale(8000)
	const valueLen = 400

	opts := expOptions(db.PolicyMash)
	opts.MemtableBytes = 128 << 10
	opts.MirrorLocalLevels = true
	opts.WALCloudBackup = true
	opts.LocalBreaker.Cooldown = 250 * time.Millisecond
	opts.CloudBreaker.Cooldown = 250 * time.Millisecond
	opts.PendingDrainInterval = 50 * time.Millisecond

	dir := filepath.Join(cfg.BaseDir, "localfault")
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	// The manifest draws from reserved metadata headroom (the ext4
	// reserved-blocks model): version edits survive the full data disk.
	d, localFaulty, _, err := db.OpenAtChaosLocal(dir, opts,
		storage.FaultConfig{
			Seed:                 cfg.seed(),
			BudgetExemptPrefixes: []string{"MANIFEST", "CURRENT"},
		},
		storage.FaultConfig{Seed: cfg.seed() + 1})
	if err != nil {
		return err
	}
	defer d.Close()

	// Phase 1: fill, then wait until the lazy mirrorer has stabilized —
	// every local-level table repairable from its cloud copy.
	fmt.Fprintf(w, "  records=%d ops/phase=%d value=%dB\n", records, phaseOps, valueLen)
	start := time.Now()
	for i := 0; i < records; i++ {
		if err := d.Put(ycsb.Key(uint64(i)), localFaultValue(i, valueLen)); err != nil {
			return err
		}
	}
	if err := d.CompactAll(); err != nil {
		return err
	}
	mirrored := waitStable(func() int64 { return d.Metrics().MirroredTables },
		opts.PendingDrainInterval, time.Now().Add(30*time.Second))
	if mirrored == 0 {
		return fmt.Errorf("localfault: no tables mirrored after fill")
	}
	fmt.Fprintf(w, "    [fill] %d records in %s, %d local tables mirrored to cloud\n",
		records, time.Since(start).Round(time.Millisecond), mirrored)

	// Phase 2: bit-flip storm. Full-keyspace readback under a 1% local
	// read-corruption rate: every damaged block must be detected, repaired
	// from its mirror, and the read served byte-correct.
	localFaulty.SetCorruptRate(0.01)
	start = time.Now()
	for i := 0; i < records; i++ {
		got, gerr := d.Get(ycsb.Key(uint64(i)))
		if gerr != nil {
			return fmt.Errorf("localfault: Get(%d) surfaced %w during bit-flip storm", i, gerr)
		}
		if !bytes.Equal(got, localFaultValue(i, valueLen)) {
			return fmt.Errorf("localfault: Get(%d) returned wrong bytes during bit-flip storm", i)
		}
	}
	localFaulty.SetCorruptRate(0)
	m := d.Metrics()
	fmt.Fprintf(w, "    [bit-flip storm] %d reads byte-correct in %s: injected=%d detected=%d repaired=%d unrepaired=%d\n",
		records, time.Since(start).Round(time.Millisecond), localFaulty.CorruptedReads(),
		m.CorruptionsDetected, m.CorruptionsRepaired, m.CorruptionsUnrepaired)
	if m.CorruptionsDetected == 0 && localFaulty.CorruptedReads() > 0 {
		return fmt.Errorf("localfault: %d reads corrupted but none detected", localFaulty.CorruptedReads())
	}
	if m.CorruptionsDetected != m.CorruptionsRepaired+m.CorruptionsUnrepaired {
		return fmt.Errorf("localfault: corruption counters do not reconcile: %d != %d + %d",
			m.CorruptionsDetected, m.CorruptionsRepaired, m.CorruptionsUnrepaired)
	}

	// Phase 3: the local disk fills, leaving a sliver of headroom — table
	// and WAL-segment writes fail with ENOSPC while tiny manifest appends
	// still fit, the way a real device fills. Writes must keep succeeding:
	// flushes land cloud-direct behind the open local breaker, the WAL
	// spills its segments to the cloud backup.
	localFaulty.SetWriteBudget(localFaulty.WrittenBytes() + 32<<10)
	gen := ycsb.NewGenerator(ycsb.WorkloadA, uint64(records), valueLen, cfg.seed())
	if _, _, _, err := runPhase(cfg, "disk-full", d, gen, phaseOps); err != nil {
		return fmt.Errorf("localfault: write failed during disk-full phase: %w", err)
	}
	if err := d.Flush(); err != nil {
		return fmt.Errorf("localfault: flush during disk-full phase: %w", err)
	}
	m = d.Metrics()
	fmt.Fprintf(w, "    [disk-full] breaker=%s trips=%d cloud-direct tables=%d misplaced=%d wal-spills=%d, zero write errors\n",
		m.LocalBreakerState, m.LocalBreakerTrips, m.LocalDegradedTables, m.MisplacedTables, m.WALSpills)
	if m.LocalDegradedTables == 0 {
		return fmt.Errorf("localfault: disk-full phase landed no tables cloud-direct")
	}

	// Phase 4: space returns; the breaker's next probe closes it and the
	// drainer migrates the misplaced tables back to the local tier.
	localFaulty.SetWriteBudget(0)
	if _, _, _, err := runPhase(cfg, "recovery", d, gen, phaseOps); err != nil {
		return err
	}
	drainStart := time.Now()
	deadline := drainStart.Add(30 * time.Second)
	for d.MisplacedTables() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("localfault: %d misplaced tables did not drain back", d.MisplacedTables())
		}
		time.Sleep(10 * time.Millisecond)
	}
	m = d.Metrics()
	fmt.Fprintf(w, "    [recovery] misplaced tables drained back in %s: drained=%d breaker=%s degraded-time=%s\n",
		time.Since(drainStart).Round(time.Millisecond), m.LocalDrainedBack,
		m.LocalBreakerState, m.LocalDegradedDur.Round(time.Millisecond))
	return nil
}
