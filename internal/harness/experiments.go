package harness

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/histogram"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
	"rocksmash/internal/ycsb"
)

func init() {
	register("fig1", "Motivation: local vs cloud storage latency/throughput gap", fig1StorageGap)
	register("fig5", "Random-write throughput across placement schemes", fig5FillRandom)
	register("fig6", "Random-read throughput across placement schemes (zipfian)", fig6ReadRandom)
	register("fig7", "Read latency percentiles across placement schemes", fig7ReadLatency)
	register("fig8", "YCSB A–F throughput across placement schemes", fig8YCSB)
	register("fig9", "Persistent-cache hit ratio vs cache size (LSM-aware vs generic LRU)", fig9HitRatio)
	register("fig10", "Compaction-aware cache ablation (inheritance on/off)", fig10CompactionAware)
	register("fig11", "Recovery time vs WAL volume (eWAL parallel vs serial)", fig11Recovery)
	register("fig12", "Skew sensitivity: throughput vs zipfian theta", fig12Skew)
	register("tab2", "Metadata space-efficiency: packed index vs generic cache map", tab2Metadata)
	register("tab3", "Cost analysis: monthly cost and performance per dollar", tab3Cost)
	register("tab4", "Reliability: crash recovery and cloud-object-loss detection", tab4Reliability)
	register("fig13", "Placement sweep (ours): how many levels to keep local", fig13LocalLevels)
	register("fig14", "I/O pipeline (ours): scan throughput vs iterator readahead", fig14Readahead)
}

// fig1StorageGap measures the raw backends, motivating hybrid placement.
func fig1StorageGap(cfg Config) error {
	w := cfg.out()
	dir := filepath.Join(cfg.BaseDir, "fig1")
	local, err := storage.NewLocal(filepath.Join(dir, "local"))
	if err != nil {
		return err
	}
	cloud, err := storage.NewCloud(filepath.Join(dir, "cloud"), expOptions(db.PolicyMash).CloudLatency, storage.DefaultCost())
	if err != nil {
		return err
	}
	sizes := []int{4 << 10, 64 << 10, 1 << 20}
	iters := cfg.scale(200)
	fmt.Fprintf(w, "%-8s %-10s %12s %12s %14s\n", "backend", "objsize", "PUT avg", "GET avg", "GET MB/s")
	for _, be := range []storage.Backend{local, cloud} {
		for _, sz := range sizes {
			buf := make([]byte, sz)
			putH, getH := histogram.New(), histogram.New()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("o%d-%d", sz, i%8)
				s := time.Now()
				if err := storage.WriteObject(be, name, buf); err != nil {
					return err
				}
				putH.Record(time.Since(s))
				s = time.Now()
				if _, err := be.ReadAll(name); err != nil {
					return err
				}
				getH.Record(time.Since(s))
			}
			mbps := float64(sz) / (1 << 20) / getH.Mean().Seconds()
			fmt.Fprintf(w, "%-8s %-10d %12s %12s %14.1f\n",
				be.Tier(), sz, putH.Mean().Round(time.Microsecond),
				getH.Mean().Round(time.Microsecond), mbps)
		}
	}
	return nil
}

// fig5FillRandom loads random keys under every policy.
func fig5FillRandom(cfg Config) error {
	w := cfg.out()
	n := cfg.scale(30000)
	const valLen = 400
	fmt.Fprintf(w, "%-12s %10s %10s %10s\n", "scheme", "kops/s", "MB/s", "stalls")
	for _, p := range allPolicies {
		d, _, err := openExp(cfg, "fig5", expOptions(p))
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(cfg.seed()))
		val := make([]byte, valLen)
		start := time.Now()
		for i := 0; i < n; i++ {
			rng.Read(val[:16])
			if err := d.Put(ycsb.Key(uint64(rng.Intn(n))), val); err != nil {
				d.Close()
				return err
			}
		}
		if err := d.Flush(); err != nil {
			d.Close()
			return err
		}
		dur := time.Since(start)
		m := d.Metrics()
		fmt.Fprintf(w, "%-12s %10s %10.2f %10d\n", p, kops(n, dur),
			float64(n*valLen)/(1<<20)/dur.Seconds(), m.WriteStalls)
		if err := d.Close(); err != nil {
			return err
		}
	}
	return nil
}

// readPhase loads a dataset once per policy and runs zipfian point reads,
// returning the throughput and latency histogram.
func readPhase(cfg Config, tag string, p db.Policy, records, reads int) (time.Duration, *histogram.H, *db.DB, error) {
	d, _, err := openExp(cfg, tag, expOptions(p))
	if err != nil {
		return 0, nil, nil, err
	}
	if err := loadRecords(d, records, 400); err != nil {
		d.Close()
		return 0, nil, nil, err
	}
	gen := ycsb.NewGenerator(ycsb.WorkloadC, uint64(records), 400, cfg.seed())
	dur, h, _, err := runPhase(cfg, tag+"/"+p.String(), d, gen, reads)
	if err != nil {
		d.Close()
		return 0, nil, nil, err
	}
	return dur, h, d, nil
}

// fig6ReadRandom measures zipfian point-read throughput.
func fig6ReadRandom(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(20000)
	reads := cfg.scale(8000)
	fmt.Fprintf(w, "%-12s %10s %12s %12s %10s\n", "scheme", "kops/s", "pcache-hit", "blkcache-hit", "cloudGET")
	for _, p := range allPolicies {
		dur, _, d, err := readPhase(cfg, "fig6", p, records, reads)
		if err != nil {
			return err
		}
		m := d.Metrics()
		fmt.Fprintf(w, "%-12s %10s %12.3f %12.3f %10d\n", p, kops(reads, dur),
			m.PCacheHit, m.BlockHit, m.CloudIO.GetOps)
		if err := d.Close(); err != nil {
			return err
		}
	}
	return nil
}

// fig7ReadLatency reports the latency distribution behind fig6.
func fig7ReadLatency(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(20000)
	reads := cfg.scale(8000)
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n", "scheme", "mean", "p50", "p95", "p99")
	for _, p := range allPolicies {
		_, h, d, err := readPhase(cfg, "fig7", p, records, reads)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n", p,
			h.Mean().Round(time.Microsecond), h.Percentile(50).Round(time.Microsecond),
			h.Percentile(95).Round(time.Microsecond), h.Percentile(99).Round(time.Microsecond))
		if err := d.Close(); err != nil {
			return err
		}
	}
	return nil
}

// fig8YCSB runs workloads A–F for every scheme.
func fig8YCSB(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(15000)
	ops := cfg.scale(5000)
	workloads := []ycsb.Workload{
		ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC,
		ycsb.WorkloadD, ycsb.WorkloadE, ycsb.WorkloadF,
	}
	fmt.Fprintf(w, "%-12s", "scheme")
	for _, wl := range workloads {
		fmt.Fprintf(w, " %9s", "YCSB-"+wl.Name)
	}
	fmt.Fprintln(w, "  (kops/s)")
	for _, p := range allPolicies {
		fmt.Fprintf(w, "%-12s", p)
		for _, wl := range workloads {
			d, _, err := openExp(cfg, "fig8-"+wl.Name, expOptions(p))
			if err != nil {
				return err
			}
			if err := loadRecords(d, records, 400); err != nil {
				d.Close()
				return err
			}
			opCount := ops
			if wl.Name == "E" {
				opCount = ops / 5 // scans touch ~50 records each
			}
			gen := ycsb.NewGenerator(wl, uint64(records), 400, cfg.seed())
			start := time.Now()
			if _, _, err := runOps(d, gen, opCount); err != nil {
				d.Close()
				return err
			}
			fmt.Fprintf(w, " %9s", kops(opCount, time.Since(start)))
			if err := d.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// fig9HitRatio sweeps persistent-cache capacity for the LSM-aware cache
// and the generic LRU baseline.
func fig9HitRatio(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(20000)
	reads := cfg.scale(6000)
	sweep := []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20}
	fmt.Fprintf(w, "%-12s %12s %12s %10s\n", "cache", "capacity", "hit-ratio", "kops/s")
	for _, p := range []db.Policy{db.PolicyMash, db.PolicyCloudLRU} {
		for _, capBytes := range sweep {
			opts := expOptions(p)
			opts.PCacheBytes = capBytes
			// Keep everything except the cache in cloud for a pure cache
			// comparison: give Mash no local levels.
			opts.LocalLevels = -1
			d, _, err := openExp(cfg, fmt.Sprintf("fig9-%d", capBytes), opts)
			if err != nil {
				return err
			}
			if err := loadRecords(d, records, 400); err != nil {
				d.Close()
				return err
			}
			gen := ycsb.NewGenerator(ycsb.WorkloadC, uint64(records), 400, cfg.seed())
			dur, _, _, err := runPhase(cfg, fmt.Sprintf("fig9-%dMB", capBytes>>20), d, gen, reads)
			if err != nil {
				d.Close()
				return err
			}
			hit, _, _ := d.PCacheStats()
			name := "lsm-aware"
			if p == db.PolicyCloudLRU {
				name = "generic-lru"
			}
			fmt.Fprintf(w, "%-12s %12d %12.3f %10s\n", name, capBytes, hit, kops(reads, dur))
			if err := d.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// fig10CompactionAware measures read-while-writing with and without
// compaction inheritance.
func fig10CompactionAware(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(15000)
	ops := cfg.scale(12000)
	fmt.Fprintf(w, "%-16s %10s %12s %10s %12s\n", "inheritance", "kops/s", "pcache-hit", "cloudGET", "compactions")
	for _, inherit := range []bool{true, false} {
		opts := expOptions(db.PolicyMash)
		opts.CompactionInheritance = inherit
		opts.LocalLevels = -1 // everything cloud: isolates the cache effect
		// Small memtable and L0 trigger keep compactions churning through
		// the hot key range while it is being read.
		opts.MemtableBytes = 256 << 10
		opts.L0CompactTrigger = 2
		opts.LevelBaseBytes = 1 << 20
		d, _, err := openExp(cfg, fmt.Sprintf("fig10-%v", inherit), opts)
		if err != nil {
			return err
		}
		if err := loadRecords(d, records, 400); err != nil {
			d.Close()
			return err
		}
		// Mixed read/write stream keeps compactions churning while the
		// zipfian read set stays hot.
		gen := ycsb.NewGenerator(ycsb.WorkloadA, uint64(records), 400, cfg.seed())
		dur, _, _, err := runPhase(cfg, fmt.Sprintf("fig10-inherit=%v", inherit), d, gen, ops)
		if err != nil {
			d.Close()
			return err
		}
		m := d.Metrics()
		label := "invalidate-only"
		if inherit {
			label = "inherit+warm"
		}
		fmt.Fprintf(w, "%-16s %10s %12.3f %10d %12d\n", label, kops(ops, dur), m.PCacheHit, m.CloudIO.GetOps, m.Compactions)
		if err := d.Close(); err != nil {
			return err
		}
	}
	return nil
}

// fig11Recovery measures crash-recovery time as WAL volume grows, for
// serial replay, parallel replay, and parallel+skip (full eWAL).
func fig11Recovery(cfg Config) error {
	w := cfg.out()
	volumes := []int{4 << 20, 16 << 20, 48 << 20}
	if cfg.Quick {
		volumes = []int{1 << 20, 4 << 20}
	}
	fmt.Fprintf(w, "%-10s %-22s %12s %10s %10s\n", "walMB", "mode", "recovery", "segments", "skipped")
	for _, vol := range volumes {
		type mode struct {
			name     string
			extended bool
			par      int
		}
		for _, m := range []mode{
			{"serial (stock WAL)", false, 1},
			{"parallel x4 (eWAL)", true, 4},
		} {
			dir := filepath.Join(cfg.BaseDir, fmt.Sprintf("fig11-%d-%s", vol, m.name[:6]))
			os.RemoveAll(dir)
			opts := expOptions(db.PolicyMash)
			opts.MemtableBytes = 1 << 30 // never flush: all data stays in the WAL
			opts.WALSegmentBytes = 2 << 20
			opts.ExtendedWAL = m.extended
			opts.RecoveryParallelism = m.par
			d, err := db.OpenAt(dir, opts)
			if err != nil {
				return err
			}
			val := make([]byte, 1024)
			n := vol / (1024 + 32)
			for i := 0; i < n; i++ {
				if err := d.Put(ycsb.Key(uint64(i)), val); err != nil {
					d.Close()
					return err
				}
			}
			d.Crash()

			d2, err := db.OpenAt(dir, opts)
			if err != nil {
				return err
			}
			rep := d2.RecoveryReport()
			fmt.Fprintf(w, "%-10d %-22s %12s %10d %10d\n",
				vol>>20, m.name, rep.Duration.Round(time.Millisecond), rep.WALSegments, rep.WALSkipped)
			if err := d2.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// fig12Skew sweeps the zipfian constant.
func fig12Skew(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(20000)
	reads := cfg.scale(5000)
	thetas := []float64{0.6, 0.8, 0.9, 0.99}
	fmt.Fprintf(w, "%-8s", "theta")
	schemes := []db.Policy{db.PolicyMash, db.PolicyCloudLRU, db.PolicyCloudOnly}
	for _, p := range schemes {
		fmt.Fprintf(w, " %12s", p)
	}
	fmt.Fprintln(w, "  (kops/s)")
	for _, theta := range thetas {
		fmt.Fprintf(w, "%-8.2f", theta)
		for _, p := range schemes {
			d, _, err := openExp(cfg, fmt.Sprintf("fig12-%.2f", theta), expOptions(p))
			if err != nil {
				return err
			}
			if err := loadRecords(d, records, 400); err != nil {
				d.Close()
				return err
			}
			gen := ycsb.NewGeneratorWithTheta(ycsb.WorkloadC, uint64(records), 400, cfg.seed(), theta)
			start := time.Now()
			if _, _, err := runOps(d, gen, reads); err != nil {
				d.Close()
				return err
			}
			fmt.Fprintf(w, " %12s", kops(reads, time.Since(start)))
			if err := d.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// tab2Metadata compares per-block metadata cost of the two persistent
// caches plus the pinned table metadata kept local.
func tab2Metadata(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(30000)
	reads := cfg.scale(4000)
	fmt.Fprintf(w, "%-12s %14s %12s %16s %14s\n", "cache", "cachedBlocks", "metaBytes", "bytes/block", "tableMetaBytes")
	for _, p := range []db.Policy{db.PolicyMash, db.PolicyCloudLRU} {
		opts := expOptions(p)
		opts.LocalLevels = -1
		d, _, err := openExp(cfg, "tab2", opts)
		if err != nil {
			return err
		}
		if err := loadRecords(d, records, 400); err != nil {
			d.Close()
			return err
		}
		gen := ycsb.NewGenerator(ycsb.WorkloadC, uint64(records), 400, cfg.seed())
		if _, _, _, err := runPhase(cfg, "tab2/"+p.String(), d, gen, reads); err != nil {
			d.Close()
			return err
		}
		m := d.Metrics()
		// blocks ≈ used / blockBytes; report meta per cached block.
		blocks := m.PCacheUsed / int64(opts.BlockBytes)
		if blocks == 0 {
			blocks = 1
		}
		name := "lsm-aware"
		if p == db.PolicyCloudLRU {
			name = "generic-lru"
		}
		fmt.Fprintf(w, "%-12s %14d %12d %16.1f %14d\n",
			name, blocks, m.PCacheMeta, float64(m.PCacheMeta)/float64(blocks), m.MetaBytes)
		if err := d.Close(); err != nil {
			return err
		}
	}
	return nil
}

// tab3Cost prices each scheme: storage split, cloud bill, and perf/$.
func tab3Cost(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(20000)
	ops := cfg.scale(5000)
	// Local SSD pricing for the comparison column (EBS gp3-like, 2021).
	const localPerGBMonth = 0.08
	fmt.Fprintf(w, "%-12s %10s %10s %12s %12s %12s %14s\n",
		"scheme", "localGB", "cloudGB", "$local/mo", "$cloud/mo", "kops/s", "kops/s per $")
	type scheme struct {
		name string
		opts db.Options
	}
	var schemes []scheme
	for _, p := range allPolicies {
		schemes = append(schemes, scheme{p.String(), expOptions(p)})
	}
	zopts := expOptions(db.PolicyMash)
	zopts.Compression = sstable.CompressionFlate
	schemes = append(schemes, scheme{"mash+flate", zopts})
	for _, sc := range schemes {
		d, _, err := openExp(cfg, "tab3-"+sc.name, sc.opts)
		if err != nil {
			return err
		}
		if err := loadRecords(d, records, 400); err != nil {
			d.Close()
			return err
		}
		gen := ycsb.NewGenerator(ycsb.WorkloadB, uint64(records), 400, cfg.seed())
		dur, _, _, err := runPhase(cfg, "tab3/"+sc.name, d, gen, ops)
		if err != nil {
			d.Close()
			return err
		}
		m := d.Metrics()
		localGB := float64(m.LocalBytes) / (1 << 30)
		cloudGB := float64(m.CloudBytes) / (1 << 30)
		localCost := localGB * localPerGBMonth
		cloudCost := 0.0
		if rep, ok := d.CloudCost(); ok {
			cloudCost = rep.TotalMonthly
		}
		throughput := float64(ops) / dur.Seconds() / 1000
		total := localCost + cloudCost
		perDollar := 0.0
		if total > 0 {
			perDollar = throughput / total
		}
		fmt.Fprintf(w, "%-12s %10.4f %10.4f %12.5f %12.5f %12.2f %14.1f\n",
			sc.name, localGB, cloudGB, localCost, cloudCost, throughput, perDollar)
		if err := d.Close(); err != nil {
			return err
		}
	}
	return nil
}

// tab4Reliability exercises the recovery and failure-detection paths.
func tab4Reliability(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(3000)

	// Case 1: crash with unflushed WAL data; everything must come back.
	dir := filepath.Join(cfg.BaseDir, "tab4-crash")
	os.RemoveAll(dir)
	opts := expOptions(db.PolicyMash)
	d, err := db.OpenAt(dir, opts)
	if err != nil {
		return err
	}
	for i := 0; i < records; i++ {
		if err := d.Put(ycsb.Key(uint64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			return err
		}
	}
	d.Crash()
	d2, err := db.OpenAt(dir, opts)
	if err != nil {
		return err
	}
	lost := 0
	for i := 0; i < records; i++ {
		v, err := d2.Get(ycsb.Key(uint64(i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			lost++
		}
	}
	rep := d2.RecoveryReport()
	fmt.Fprintf(w, "crash+recover:      %d/%d records recovered, lost=%d (%s)\n",
		records-lost, records, lost, rep)
	verdict := "PASS"
	if lost != 0 {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "  -> %s (zero data loss through eWAL)\n", verdict)
	if err := d2.Close(); err != nil {
		return err
	}

	// Case 2: silent cloud object loss must surface as an error, never as
	// a silent missing key.
	dir2 := filepath.Join(cfg.BaseDir, "tab4-loss")
	os.RemoveAll(dir2)
	opts2 := expOptions(db.PolicyCloudOnly)
	opts2.BlockCacheBytes = 0
	d3, err := db.OpenAt(dir2, opts2)
	if err != nil {
		return err
	}
	defer d3.Close()
	for i := 0; i < records; i++ {
		if err := d3.Put(ycsb.Key(uint64(i)), []byte("x")); err != nil {
			return err
		}
	}
	if err := d3.Flush(); err != nil {
		return err
	}
	cl, err := storage.NewCloud(filepath.Join(dir2, "cloud"), storage.NoLatency(), storage.DefaultCost())
	if err != nil {
		return err
	}
	names, err := cl.List("sst/")
	if err != nil || len(names) == 0 {
		return fmt.Errorf("no cloud tables to lose (err=%v)", err)
	}
	d3.LoseCloudObject(names[0])
	detected := false
	for i := 0; i < records; i++ {
		if _, err := d3.Get(ycsb.Key(uint64(i))); err != nil && err != db.ErrNotFound {
			detected = true
			break
		}
	}
	verdict2 := "PASS"
	if !detected {
		verdict2 = "FAIL"
	}
	fmt.Fprintf(w, "cloud object loss:  error surfaced=%v\n  -> %s (loss detected, not silent)\n",
		detected, verdict2)

	// Case 3: WAL cloud backup — sealed WAL segments survive local device
	// loss and recovery restores them from the cloud copies.
	dir3 := filepath.Join(cfg.BaseDir, "tab4-walbackup")
	os.RemoveAll(dir3)
	opts3 := expOptions(db.PolicyMash)
	opts3.WALCloudBackup = true
	opts3.WALSegmentBytes = 64 << 10
	opts3.MemtableBytes = 1 << 30
	d4, err := db.OpenAt(dir3, opts3)
	if err != nil {
		return err
	}
	for i := 0; i < records; i++ {
		if err := d4.Put(ycsb.Key(uint64(i)), []byte(fmt.Sprintf("w%d", i))); err != nil {
			return err
		}
	}
	d4.Crash()
	// Lose every sealed local WAL segment, keeping only the newest.
	walDir := filepath.Join(dir3, "local", "wal")
	entries, err := os.ReadDir(walDir)
	if err != nil {
		return err
	}
	var segs []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			segs = append(segs, e.Name())
		}
	}
	for _, s := range segs[:max(len(segs)-1, 0)] {
		os.Remove(filepath.Join(walDir, s))
	}
	d5, err := db.OpenAt(dir3, opts3)
	if err != nil {
		return err
	}
	defer d5.Close()
	lost3 := 0
	for i := 0; i < records; i++ {
		if v, err := d5.Get(ycsb.Key(uint64(i))); err != nil || string(v) != fmt.Sprintf("w%d", i) {
			lost3++
		}
	}
	verdict3 := "PASS"
	if lost3 != 0 {
		verdict3 = "FAIL"
	}
	fmt.Fprintf(w, "local WAL loss:     %d sealed segments deleted; %d/%d records recovered from cloud backup\n  -> %s (eWAL cloud backup)\n",
		max(len(segs)-1, 0), records-lost3, records, verdict3)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fig14Readahead is an ablation this implementation adds: sweep the
// iterator-readahead window over a cloud-resident tree and measure what
// coalescing sequential GETs buys a range scan — entries/s up, request
// count down, mean request size up — at unchanged result contents.
func fig14Readahead(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(20000)
	scans := max(cfg.scale(40), 2)
	const scanLen = 400
	fmt.Fprintf(w, "%-10s %10s %12s %12s %12s\n", "readahead", "kops/s", "cloudGET", "avgGetKB", "raSpans")
	for _, n := range []int{0, 4, 16, 32} {
		opts := expOptions(db.PolicyCloudOnly)
		opts.IteratorReadaheadBlocks = n
		// This figure ablates the plain path's adjacency heuristic; sorted
		// views bring their own exact readahead (fig-scan) and would mask
		// the sweep, so keep them out of the way here.
		opts.DisableSortedViews = true
		d, _, err := openExp(cfg, fmt.Sprintf("fig14-%d", n), opts)
		if err != nil {
			return err
		}
		if err := loadRecords(d, records, 400); err != nil {
			d.Close()
			return err
		}
		base := d.Metrics().CloudIO
		rng := rand.New(rand.NewSource(cfg.seed()))
		visited := 0
		start := time.Now()
		for s := 0; s < scans; s++ {
			it, ierr := d.NewIterator()
			if ierr != nil {
				d.Close()
				return ierr
			}
			it.Seek(ycsb.Key(uint64(rng.Intn(records))))
			for j := 0; j < scanLen && it.Valid(); j++ {
				visited++
				it.Next()
			}
			if cerr := it.Close(); cerr != nil {
				d.Close()
				return cerr
			}
		}
		dur := time.Since(start)
		m := d.Metrics()
		scanIO := m.CloudIO.Sub(base)
		fmt.Fprintf(w, "%-10d %10s %12d %12.1f %12d\n", n, kops(visited, dur),
			scanIO.GetOps, scanIO.BytesPerGet()/1024, m.ReadaheadSpans)
		if err := d.Close(); err != nil {
			return err
		}
	}
	return nil
}

// fig13LocalLevels is an ablation this implementation adds: sweep the
// local/cloud split point and measure the performance/footprint tradeoff
// the placement rule buys.
func fig13LocalLevels(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(20000)
	ops := cfg.scale(5000)
	fmt.Fprintf(w, "%-12s %10s %12s %12s %12s\n", "localLevels", "kops/s", "localMB", "cloudMB", "cloudGET")
	for _, ll := range []int{-1, 1, 2, 3} {
		opts := expOptions(db.PolicyMash)
		opts.LocalLevels = ll
		d, _, err := openExp(cfg, fmt.Sprintf("fig13-%d", ll), opts)
		if err != nil {
			return err
		}
		if err := loadRecords(d, records, 400); err != nil {
			d.Close()
			return err
		}
		gen := ycsb.NewGenerator(ycsb.WorkloadB, uint64(records), 400, cfg.seed())
		dur, _, _, err := runPhase(cfg, fmt.Sprintf("fig13-L%d", ll), d, gen, ops)
		if err != nil {
			d.Close()
			return err
		}
		m := d.Metrics()
		label := fmt.Sprint(ll)
		if ll == -1 {
			label = "0 (all cloud)"
		}
		fmt.Fprintf(w, "%-12s %10s %12.2f %12.2f %12d\n", label, kops(ops, dur),
			float64(m.LocalBytes)/(1<<20), float64(m.CloudBytes)/(1<<20), m.CloudIO.GetOps)
		if err := d.Close(); err != nil {
			return err
		}
	}
	return nil
}
