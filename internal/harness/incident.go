package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/flight"
	"rocksmash/internal/storage"
	"rocksmash/internal/ycsb"
)

func init() {
	register("fig-incident", "Flight recorder (ours): anomaly detection and postmortem bundles across three injected-fault episodes", incidentExperiment)
}

// incidentExperiment drives one recorder-enabled sharded store through a
// healthy fill followed by three injected-fault episodes, each of which must
// fire its matching detector rule exactly once and leave behind a postmortem
// bundle whose event ring demonstrably predates the trigger:
//
//  1. fill: a plain dataset load that must fire nothing — the false-positive
//     baseline;
//  2. hot-key storm: every op hammers one key, concentrating the whole
//     workload on one of four shards — shard-skew;
//  3. cloud outage: the cloud tier goes dark mid-workload and the breaker
//     opens — cloud-outage (one incident for the whole flapping episode);
//  4. disk full: the local write budget runs out and tables land
//     cloud-direct behind the open local breaker — local-degraded.
func incidentExperiment(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(12000)
	phaseOps := cfg.scale(6000)
	const valueLen = 400

	opts := expOptions(db.PolicyMash)
	opts.Shards = 4
	opts.MemtableBytes = 128 << 10
	opts.MirrorLocalLevels = true
	opts.WALCloudBackup = true
	opts.LocalBreaker.Cooldown = 250 * time.Millisecond
	opts.CloudBreaker.Cooldown = 250 * time.Millisecond
	opts.PendingDrainInterval = 50 * time.Millisecond
	// The flight recorder under test: 20ms detection ticks, a bundle per
	// incident (the rate limit dropped below the tick interval).
	opts.FlightRecorder = true
	opts.VitalsInterval = 20 * time.Millisecond
	opts.FlightBundleInterval = 10 * time.Millisecond
	opts.FlightDir = filepath.Join(cfg.BaseDir, "incident", "flight")

	dir := filepath.Join(cfg.BaseDir, "incident", "db")
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.RemoveAll(opts.FlightDir); err != nil {
		return err
	}
	// Metadata headroom mirrors the ext4 reserved-blocks model: manifest
	// appends survive the full data disk in the disk-full episode.
	d, localFaulty, cloudFaulty, err := db.OpenAtChaosLocal(dir, opts,
		storage.FaultConfig{
			Seed:                 cfg.seed(),
			BudgetExemptPrefixes: []string{"MANIFEST", "CURRENT"},
		},
		storage.FaultConfig{Seed: cfg.seed() + 1})
	if err != nil {
		return err
	}
	defer d.Close()

	// ruleCount tallies fired incidents for one rule.
	ruleCount := func(rule string) int {
		n := 0
		for _, inc := range d.Incidents() {
			if inc.Rule == rule {
				n++
			}
		}
		return n
	}
	// waitIncident polls until rule has fired, returning the incident.
	waitIncident := func(phase, rule string, deadline time.Duration) (flight.Incident, error) {
		end := time.Now().Add(deadline)
		for {
			for _, inc := range d.Incidents() {
				if inc.Rule == rule {
					return inc, nil
				}
			}
			if time.Now().After(end) {
				return flight.Incident{}, fmt.Errorf("incident: %s phase fired no %s incident within %s (have %+v)",
					phase, rule, deadline, d.Incidents())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// report verifies the episode's incident and its postmortem bundle:
	// fired, bundled, and the captured event window starts before the
	// trigger instant.
	report := func(phase string, inc flight.Incident) error {
		if inc.Bundle == "" {
			return fmt.Errorf("incident: %s fired without a bundle", inc.Rule)
		}
		man, err := flight.ReadBundleManifest(inc.Bundle)
		if err != nil {
			return fmt.Errorf("incident: reading %s bundle: %w", inc.Rule, err)
		}
		if man.EventCount == 0 || man.EventsFrom >= man.Incident.UnixNano {
			return fmt.Errorf("incident: %s bundle does not capture the pre-trigger window: %d events, from=%d trigger=%d",
				inc.Rule, man.EventCount, man.EventsFrom, man.Incident.UnixNano)
		}
		pre := time.Duration(man.Incident.UnixNano - man.EventsFrom)
		fmt.Fprintf(w, "    [%s] incident %s: fired=%d severity=%s bundle=%s (%d events, %s pre-trigger)\n",
			phase, inc.Rule, ruleCount(inc.Rule), inc.Severity, filepath.Base(inc.Bundle), man.EventCount, pre.Round(time.Millisecond))
		fmt.Fprintf(w, "        %s\n", inc.Reason)
		return nil
	}

	// Phase 1 — fill. The healthy baseline: load the dataset, let the
	// detector's rolling baselines warm up, and assert the detectors stay
	// quiet — a recorder that cries wolf during a plain fill is useless.
	fmt.Fprintf(w, "  shards=4 records=%d ops/phase=%d value=%dB vitals=%s\n",
		records, phaseOps, valueLen, opts.VitalsInterval)
	start := time.Now()
	for i := 0; i < records; i++ {
		if err := d.Put(ycsb.Key(uint64(i)), localFaultValue(i, valueLen)); err != nil {
			return err
		}
	}
	if err := d.CompactAll(); err != nil {
		return err
	}
	// A few quiet ticks warm the spike baselines before any fault lands.
	time.Sleep(10 * opts.VitalsInterval)
	if incs := d.Incidents(); len(incs) != 0 {
		return fmt.Errorf("incident: healthy fill fired %d false positives: %+v", len(incs), incs)
	}
	fmt.Fprintf(w, "    [fill] %d records in %s, zero false positives\n",
		records, time.Since(start).Round(time.Millisecond))

	// Phase 2 — hot-key storm: one key takes the whole op stream, so one
	// shard carries 4x its fair share and the skew window trips after three
	// consecutive ticks.
	hot := ycsb.Key(0)
	stormEnd := time.Now().Add(5 * time.Second)
	storm := 0
	for ruleCount(flight.RuleShardSkew) == 0 {
		if time.Now().After(stormEnd) {
			return fmt.Errorf("incident: hot-key storm fired no shard-skew incident after %d ops", storm)
		}
		for i := 0; i < 200; i++ {
			if err := d.Put(hot, localFaultValue(i, valueLen)); err != nil {
				return err
			}
			if _, gerr := d.Get(hot); gerr != nil {
				return gerr
			}
			storm += 2
		}
	}
	inc, err := waitIncident("hot-key storm", flight.RuleShardSkew, time.Second)
	if err != nil {
		return err
	}
	if err := report("hot-key storm", inc); err != nil {
		return err
	}

	// Phase 3 — cloud outage: writes keep succeeding (degraded mode), the
	// breaker flaps open<->half-open, and the whole episode is one incident.
	cloudFaulty.StartOutage(0)
	gen := ycsb.NewGenerator(ycsb.WorkloadA, uint64(records), valueLen, cfg.seed())
	if _, err := runOutagePhase(cfg, "cloud-outage", d, gen, phaseOps); err != nil {
		return err
	}
	// The flush seals a WAL segment whose cloud backup fails against the
	// dark tier — the very failure that trips the breaker and the detector.
	if err := d.Flush(); err != nil && !errors.Is(err, db.ErrCloudUnavailable) {
		return fmt.Errorf("incident: flush during outage must degrade, not fail: %w", err)
	}
	inc, err = waitIncident("cloud-outage", flight.RuleCloudOutage, 10*time.Second)
	if err != nil {
		return err
	}
	if err := report("cloud-outage", inc); err != nil {
		return err
	}
	cloudFaulty.EndOutage()
	// Let the breaker's next probe close it so the disk-full episode can
	// land its tables cloud-direct.
	closeDeadline := time.Now().Add(10 * time.Second)
	for d.BreakerState() != "closed" {
		if time.Now().After(closeDeadline) {
			return fmt.Errorf("incident: cloud breaker stuck %s after outage end", d.BreakerState())
		}
		if _, err := d.Get(ycsb.Key(1)); err != nil && err != db.ErrNotFound {
			return err
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 4 — disk full: local writes fail with ENOSPC (metadata still
	// fits), the local breaker opens, flushes land cloud-direct.
	localFaulty.SetWriteBudget(localFaulty.WrittenBytes() + 32<<10)
	if _, err := runOutagePhase(cfg, "disk-full", d, gen, phaseOps); err != nil {
		return fmt.Errorf("incident: write failed during disk-full phase: %w", err)
	}
	if err := d.Flush(); err != nil {
		return fmt.Errorf("incident: flush during disk-full phase: %w", err)
	}
	inc, err = waitIncident("disk-full", flight.RuleLocalDegraded, 10*time.Second)
	if err != nil {
		return err
	}
	if err := report("disk-full", inc); err != nil {
		return err
	}
	localFaulty.SetWriteBudget(0)

	// Exactly-once audit: every episode fired its rule once — breaker
	// flapping, repeated stalled windows, and sustained skew all collapse
	// into single incidents via hysteresis and cooldowns.
	for _, rule := range []string{
		flight.RuleShardSkew, flight.RuleCloudOutage, flight.RuleLocalDegraded,
	} {
		if n := ruleCount(rule); n != 1 {
			return fmt.Errorf("incident: rule %s fired %d times, want exactly 1 per episode", rule, n)
		}
	}
	m := d.Metrics()
	bundles, err := d.FlightBundles()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "    [audit] %d incidents (%d suppressed by cooldowns), %d bundles on disk, health=%s\n",
		m.IncidentsTriggered, m.IncidentsSuppressed, len(bundles), d.Health().Status)

	// The offline doctor must rank the trigger first on a live bundle.
	if last := bundles[len(bundles)-1]; true {
		diag, err := flight.Analyze(last.Dir)
		if err != nil {
			return fmt.Errorf("incident: doctor failed on %s: %w", last.Dir, err)
		}
		if len(diag.Findings) == 0 {
			return fmt.Errorf("incident: doctor found nothing in %s", last.Dir)
		}
		fmt.Fprintf(w, "    [doctor] %s: %d findings, top: %s\n",
			filepath.Base(last.Dir), len(diag.Findings), diag.Findings[0].Title)
	}
	return nil
}
