package harness

import (
	"fmt"
	"time"

	"rocksmash/internal/db"
)

func init() {
	register("fig-shardscale", "Keyspace sharding (ours): fill throughput vs shard count and writer threads", figShardScale)
}

// figShardScale is an ablation this implementation adds: sweep the number
// of keyspace shards against the number of concurrent writers over a
// cloud-resident fillrandom workload sized to keep memtables sealing, so
// the fill is bounded by background work — flushes and compactions paying
// cloud round-trips — not by the commit path (fig-wscale covers that; the
// group-commit pipeline already scales writers within one LSM). A single
// LSM runs one flush queue and one compaction scheduler, so its cloud
// operations serialize: writers stall behind L0 while the engine waits
// out upload and download latency one table at a time. N hash-partitioned
// shards keep N flushes and compactions in flight, overlapping their
// cloud waits, so fill throughput improves with the shard count even on
// few cores — the win is latency hiding, not extra CPU. The balance
// column reports min/max per-shard write counts from the facade's
// per-shard attribution, confirming the FNV-1a partition spreads the
// load.
func figShardScale(cfg Config) error {
	w := cfg.out()
	total := cfg.scale(150000)
	const valLen = 400
	fmt.Fprintf(w, "%-8s %-9s %10s %12s %16s\n",
		"shards", "threads", "kops/s", "p99", "balance min/max")
	for _, shards := range []int{1, 2, 4, 8} {
		for _, threads := range []int{1, 4, 8} {
			opts := expOptions(db.PolicyCloudOnly)
			opts.Shards = shards
			d, _, err := openExp(cfg, fmt.Sprintf("shardscale-%d-%d", shards, threads), opts)
			if err != nil {
				return err
			}
			lat, err := parallelFill(d, threads, total, valLen, cfg.seed())
			if err != nil {
				d.Close()
				return err
			}
			balance := "n/a"
			if m := d.Metrics(); len(m.Shards) > 1 {
				min, max := m.Shards[0].Writes, m.Shards[0].Writes
				for _, s := range m.Shards[1:] {
					if s.Writes < min {
						min = s.Writes
					}
					if s.Writes > max {
						max = s.Writes
					}
				}
				balance = fmt.Sprintf("%d/%d", min, max)
			}
			fmt.Fprintf(w, "%-8d %-9d %10s %12s %16s\n",
				shards, threads, kops(total, lat.dur),
				lat.p99.Round(time.Microsecond), balance)
			if err := d.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
