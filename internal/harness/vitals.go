package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/storage"
	"rocksmash/internal/vitals"
	"rocksmash/internal/ycsb"
)

func init() {
	register("fig-vitals", "Vitals (ours): time-series telemetry across a shifting workload", vitalsExperiment)
}

// vitalsPhase is one workload phase in the vitals.json artifact: its exact
// boundary samples differentiated into one window, so each phase's rates
// are measured over precisely its own duration regardless of the sampler
// cadence.
type vitalsPhase struct {
	Name   string        `json:"name"`
	Window vitals.Window `json:"window"`
}

// vitalsArtifact is the vitals.json shape: the fine-grained sampler ring
// (samples + derived windows) plus exact per-phase summary windows. This
// is the time-series a future fig-autotune replays its policy decisions
// against.
type vitalsArtifact struct {
	IntervalSeconds float64         `json:"interval_seconds"`
	Phases          []vitalsPhase   `json:"phases"`
	Samples         []vitals.Sample `json:"samples"`
	Windows         []vitals.Window `json:"windows"`
}

// vitalsExperiment replays a shifting workload — fill, zipfian read, scan,
// cloud outage — against one store with the vitals sampler on, and emits
// the recorded time-series as vitals.json. The per-phase windows must
// visibly distinguish the phases: write rate peaks in fill, read rate in
// the zipfian phase, device read bandwidth in the scan phase, and the
// outage phase ends with the breaker open and a degraded-upload backlog.
func vitalsExperiment(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(30000)
	readOps := cfg.scale(12000)
	scanOps := cfg.scale(1500)
	outageOps := cfg.scale(8000)

	opts := expOptions(db.PolicyMash)
	// Every level in the cloud: the tree is cloud-resident (so the storage
	// component of $/hour is nonzero in every window) and flushes target
	// the cloud tier, which makes the outage phase's degraded landings —
	// and its pending-upload backlog gauge — deterministic. The caches are
	// squeezed so the read phases generate device traffic instead of
	// being absorbed entirely in memory.
	opts.LocalLevels = -1
	opts.BlockCacheBytes = 256 << 10
	opts.PCacheBytes = 1 << 20
	opts.MemtableBytes = 128 << 10 // several flushes per write phase
	opts.CloudBreaker.Cooldown = 250 * time.Millisecond
	opts.PendingDrainInterval = 50 * time.Millisecond
	// With every level cloud-resident, L0->L1 compactions need cloud reads
	// and defer during the outage — writers must not stall against a
	// compaction that cannot run until the outage ends, so give L0 enough
	// headroom for the whole outage phase's degraded flush backlog.
	opts.L0StallFiles = 64
	// Fine sampler cadence with enough history to retain the whole run.
	opts.VitalsInterval = 20 * time.Millisecond
	opts.VitalsHistory = 8192

	dir := filepath.Join(cfg.BaseDir, "fig-vitals", "mash")
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	d, faulty, err := db.OpenAtChaos(dir, opts, storage.FaultConfig{Seed: cfg.seed()})
	if err != nil {
		return err
	}
	defer d.Close()
	if d.Vitals() == nil {
		return errors.New("fig-vitals: sampler did not start")
	}
	fmt.Fprintf(w, "  records=%d sampler=%s\n", records, opts.VitalsInterval)

	var phases []vitalsPhase
	mark := d.VitalsSample()
	endPhase := func(name string) vitals.Window {
		cur := d.VitalsSample()
		win := vitals.Derive(mark, cur)
		mark = cur
		phases = append(phases, vitalsPhase{Name: name, Window: win})
		fmt.Fprintf(w, "    [%s] %.1fs: write %.0f op/s, read %.0f op/s, wamp %.2fx, ramp %.2f blk/get, $%.4f/hr, breaker=%s\n",
			name, win.Seconds, win.WriteOpsPerSec, win.ReadOpsPerSec,
			win.WriteAmp, win.ReadAmpBlocksPerGet, win.DollarsPerHour.Total, win.Breaker)
		return win
	}

	// Phase 1: fill — sequential load then settle the tree into the cloud.
	if err := loadRecords(d, records, 400); err != nil {
		return err
	}
	fill := endPhase("fill")

	// Phase 2: zipfian point reads (YCSB C, read-only).
	gen := ycsb.NewGenerator(ycsb.WorkloadC, uint64(records), 400, cfg.seed())
	if _, _, _, err := runPhase(cfg, "zipf-read", d, gen, readOps); err != nil {
		return err
	}
	read := endPhase("zipf-read")

	// Phase 3: range scans (YCSB E's scan shape, scans only).
	sgen := ycsb.NewGenerator(ycsb.WorkloadE, uint64(records), 400, cfg.seed())
	scanned := 0
	for i := 0; i < scanOps; i++ {
		op := sgen.Next()
		it, ierr := d.NewIterator()
		if ierr != nil {
			return ierr
		}
		it.Seek(op.Key)
		for j := 0; j < op.ScanLen && it.Valid(); j++ {
			scanned++
			it.Next()
		}
		if err := it.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "    [scan] %d scans, %d keys\n", scanOps, scanned)
	scan := endPhase("scan")

	// Phase 4: full cloud outage under an update-heavy workload. Flushes
	// land locally as pending-upload tables; the boundary sample must
	// catch the breaker open.
	faulty.StartOutage(0)
	ogen := ycsb.NewGenerator(ycsb.WorkloadA, uint64(records), 400, cfg.seed())
	if _, err := runOutagePhase(cfg, "outage", d, ogen, outageOps); err != nil {
		return err
	}
	if err := d.Flush(); err != nil {
		return fmt.Errorf("fig-vitals: flush during outage: %w", err)
	}
	outage := endPhase("outage")
	faulty.EndOutage()

	// The four phases must be distinguishable from the windows alone:
	// that is the property fig-autotune's policy will rely on.
	if fill.WriteOpsPerSec <= read.WriteOpsPerSec || fill.WriteOpsPerSec <= fill.ReadOpsPerSec {
		return fmt.Errorf("fig-vitals: fill phase not write-dominant (fill write %.0f op/s, read-phase write %.0f op/s)",
			fill.WriteOpsPerSec, read.WriteOpsPerSec)
	}
	if read.ReadOpsPerSec <= read.WriteOpsPerSec || read.ReadOpsPerSec <= fill.ReadOpsPerSec {
		return fmt.Errorf("fig-vitals: read phase not read-dominant (read %.0f op/s, write %.0f op/s)",
			read.ReadOpsPerSec, read.WriteOpsPerSec)
	}
	if read.ReadAmpBlocksPerGet <= 0 {
		return errors.New("fig-vitals: read phase recorded no read amplification")
	}
	if devRead := scan.LocalReadBytesPerSec + scan.CloudReadBytesPerSec; devRead <= 0 {
		return errors.New("fig-vitals: scan phase drove no device reads")
	}
	if outage.Breaker == "" || outage.Breaker == "closed" {
		return fmt.Errorf("fig-vitals: outage window breaker = %q, want open", outage.Breaker)
	}
	if outage.PendingTables == 0 {
		return errors.New("fig-vitals: outage phase left no degraded-upload backlog")
	}
	for _, ph := range phases {
		if ph.Window.DollarsPerHour.Total <= 0 {
			return fmt.Errorf("fig-vitals: %s window reports zero $/hr", ph.Name)
		}
	}

	rep := d.Vitals().Report()
	art := vitalsArtifact{
		IntervalSeconds: rep.IntervalSeconds,
		Phases:          phases,
		Samples:         rep.Samples,
		Windows:         rep.Windows,
	}
	enc, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	out := filepath.Join(cfg.BaseDir, "vitals.json")
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "  sampler ring: %d samples, %d windows\n", len(rep.Samples), len(rep.Windows))
	fmt.Fprintf(w, "  artifact: %s\n", out)
	return nil
}
