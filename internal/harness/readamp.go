package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/readprof"
	"rocksmash/internal/ycsb"
)

func init() {
	register("fig-readamp", "Read-path attribution (ours): per-tier block sources vs persistent-cache size", figReadAmp)
}

// readAmpRow is the JSON artifact schema, one row per cache size.
type readAmpRow struct {
	PCacheMB     int     `json:"pcache_mb"`
	Kops         float64 `json:"kops"`
	ProfiledGets int64   `json:"profiled_gets"`
	TablesPerGet float64 `json:"tables_per_get"`
	BlocksPerGet float64 `json:"blocks_per_get"`
	BloomTNRate  float64 `json:"bloom_tn_rate"`
	// Per-tier block counts in readprof.Tier order.
	BlockCacheBlocks int64 `json:"block_cache_blocks"`
	PCacheBlocks     int64 `json:"pcache_blocks"`
	LocalBlocks      int64 `json:"local_blocks"`
	CloudBlocks      int64 `json:"cloud_blocks"`
	CloudFetchMicros int64 `json:"cloud_fetch_micros"`
}

// figReadAmp is an ablation this implementation adds on top of the paper's
// evaluation: with every Get profiled (sample rate 1), sweep the persistent
// cache size under PolicyMash with only L0 kept local, and show where each
// read's blocks actually came from. As the pcache grows it absorbs block
// reads that would otherwise hit cloud objects, which the per-tier columns
// quantify directly instead of inferring from aggregate hit ratios. The
// rows are also written to readamp.json under the experiment directory so
// plots can consume them.
func figReadAmp(cfg Config) error {
	w := cfg.out()
	records := cfg.scale(30000)
	reads := cfg.scale(10000)
	const valLen = 400

	fmt.Fprintf(w, "%-9s %8s %10s %10s %8s %11s %9s %9s %9s\n",
		"pcache", "kops/s", "tables/get", "blocks/get", "bloomTN",
		"blockcache", "pcache", "local", "cloud")
	var rows []readAmpRow
	for _, mb := range []int{1, 4, 16} {
		opts := expOptions(db.PolicyMash)
		opts.LocalLevels = 1
		opts.PCacheBytes = int64(mb) << 20
		opts.ReadProfileSampleRate = 1
		d, _, err := openExp(cfg, fmt.Sprintf("readamp-%dmb", mb), opts)
		if err != nil {
			return err
		}
		if err := loadRecords(d, records, valLen); err != nil {
			d.Close()
			return err
		}
		gen := ycsb.NewGenerator(ycsb.WorkloadC, uint64(records), valLen, cfg.seed())
		start := time.Now()
		for i := 0; i < reads; i++ {
			if _, err := d.Get(gen.Next().Key); err != nil && err != db.ErrNotFound {
				d.Close()
				return err
			}
		}
		dur := time.Since(start)
		ra := d.Metrics().ReadAmp
		row := readAmpRow{
			PCacheMB:         mb,
			Kops:             float64(reads) / dur.Seconds() / 1000,
			ProfiledGets:     ra.ProfiledGets,
			TablesPerGet:     ra.TablesPerGet(),
			BlocksPerGet:     ra.BlocksPerGet(),
			BloomTNRate:      ra.BloomTrueNegativeRate(),
			BlockCacheBlocks: ra.Blocks[readprof.TierBlockCache],
			PCacheBlocks:     ra.Blocks[readprof.TierPCache],
			LocalBlocks:      ra.Blocks[readprof.TierLocal],
			CloudBlocks:      ra.Blocks[readprof.TierCloud],
			CloudFetchMicros: ra.FetchNanos[readprof.TierCloud] / 1000,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-9s %8.2f %10.2f %10.2f %8.3f %11d %9d %9d %9d\n",
			fmt.Sprintf("%dMB", mb), row.Kops, row.TablesPerGet, row.BlocksPerGet,
			row.BloomTNRate, row.BlockCacheBlocks, row.PCacheBlocks,
			row.LocalBlocks, row.CloudBlocks)
		if err := d.Close(); err != nil {
			return err
		}
	}

	path := filepath.Join(cfg.BaseDir, "readamp.json")
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "artifact: %s\n", path)
	return nil
}
