package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rocksmash/internal/db"
	"rocksmash/internal/ycsb"
)

func init() {
	register("fig-wscale", "Writer scaling (ours): group commit vs serial path, synced fillrandom", figWScale)
}

// figWScale is an ablation this implementation adds: scale concurrent
// writers over the synced fillrandom workload with the commit pipeline on
// and off. The serial path pays one fsync per batch no matter how many
// writers queue behind the commit mutex; the pipeline coalesces queued
// writers into groups that share a single vectored WAL append and fsync,
// so its throughput grows with the writer count while the group-size and
// amortized-sync columns show the mechanism.
func figWScale(cfg Config) error {
	w := cfg.out()
	total := cfg.scale(3000)
	const valLen = 100
	fmt.Fprintf(w, "%-9s %-9s %10s %14s %12s %12s\n",
		"writers", "pipeline", "kops/s", "batches/group", "syncsSaved", "p99")
	for _, pipeline := range []bool{false, true} {
		for _, writers := range []int{1, 2, 4, 8} {
			opts := expOptions(db.PolicyLocalOnly)
			opts.WALSync = true
			opts.MemtableBytes = 64 << 20 // commit path only: never seal mid-run
			opts.DisableCommitPipeline = !pipeline
			d, _, err := openExp(cfg, fmt.Sprintf("wscale-%v-%d", pipeline, writers), opts)
			if err != nil {
				return err
			}
			lat, err := parallelFill(d, writers, total, valLen, cfg.seed())
			if err != nil {
				d.Close()
				return err
			}
			m := d.Metrics()
			groupSize, saved := 1.0, int64(0)
			if m.CommitGroups > 0 {
				groupSize = float64(m.CommitGroupBatches) / float64(m.CommitGroups)
				saved = m.WALSyncsAmortized
			}
			mode := "off"
			if pipeline {
				mode = "on"
			}
			fmt.Fprintf(w, "%-9d %-9s %10s %14.2f %12d %12s\n",
				writers, mode, kops(total, lat.dur), groupSize, saved,
				lat.p99.Round(time.Microsecond))
			if err := d.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

type fillResult struct {
	dur time.Duration
	p99 time.Duration
}

// parallelFill splits total random-key puts across writers goroutines and
// reports wall time plus the p99 commit latency across all writers.
func parallelFill(d *db.DB, writers, total, valLen int, seed int64) (fillResult, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	per := total / writers
	start := time.Now()
	for t := 0; t < writers; t++ {
		n := per
		if t == writers-1 {
			n = total - per*(writers-1)
		}
		wg.Add(1)
		go func(t, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(t)))
			val := make([]byte, valLen)
			for i := 0; i < n; i++ {
				rng.Read(val[:8])
				if err := d.Put(ycsb.Key(uint64(rng.Intn(total))), val); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(t, n)
	}
	wg.Wait()
	if firstErr != nil {
		return fillResult{}, firstErr
	}
	return fillResult{dur: time.Since(start), p99: d.Metrics().PutLat.P99}, nil
}
