// Package histogram provides a concurrency-safe latency histogram with
// logarithmic buckets (HDR-style: power-of-two ranges split into linear
// sub-buckets), used by the benchmark harness for percentile reporting.
package histogram

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

const (
	subBuckets = 16
	// maxExp covers up to ~2^40 ns ≈ 18 minutes.
	maxExp     = 40
	numBuckets = maxExp * subBuckets
)

// H records durations. The zero value is not ready; use New.
type H struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // ns
	max    atomic.Int64 // ns
	min    atomic.Int64 // ns
}

// New returns an empty histogram.
func New() *H {
	h := &H{}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketFor(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	exp := 63 - leadingZeros(uint64(ns))
	if exp >= maxExp {
		return numBuckets - 1
	}
	var sub int64
	if exp > 0 {
		sub = (ns - (1 << exp)) * subBuckets >> exp
	}
	idx := exp*subBuckets + int(sub)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

func leadingZeros(x uint64) int {
	n := 0
	for x&(1<<63) == 0 && n < 64 {
		x <<= 1
		n++
	}
	return n
}

// bucketUpper returns the representative (upper-bound) latency of bucket i.
func bucketUpper(i int) int64 {
	exp := i / subBuckets
	sub := int64(i%subBuckets) + 1
	return (1 << exp) + (sub << exp / subBuckets)
}

// Record adds one observation.
func (h *H) Record(d time.Duration) {
	ns := d.Nanoseconds()
	h.counts[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *H) Count() int64 { return h.count.Load() }

// Mean returns the average latency.
func (h *H) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *H) Max() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Min returns the smallest observation.
func (h *H) Min() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Percentile returns the latency at quantile p in [0,100].
func (h *H) Percentile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(h.max.Load())
}

// Merge folds other into h.
func (h *H) Merge(other *H) {
	for i := range h.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	if m := other.max.Load(); m > h.max.Load() {
		h.max.Store(m)
	}
	if m := other.min.Load(); m < h.min.Load() {
		h.min.Store(m)
	}
}

// String summarizes the distribution.
func (h *H) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
}
