package histogram

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestEmpty(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Percentile(99) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestSingleObservation(t *testing.T) {
	h := New()
	h.Record(1 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != time.Millisecond {
		t.Fatalf("mean = %s", h.Mean())
	}
	p := h.Percentile(50)
	if p < 900*time.Microsecond || p > 1200*time.Microsecond {
		t.Fatalf("p50 = %s, want ~1ms", p)
	}
}

func TestPercentilesAgainstExactQuantiles(t *testing.T) {
	h := New()
	rng := rand.New(rand.NewSource(3))
	var samples []int64
	for i := 0; i < 20000; i++ {
		ns := int64(rng.Intn(10_000_000) + 1000)
		samples = append(samples, ns)
		h.Record(time.Duration(ns))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 99} {
		exact := samples[int(p/100*float64(len(samples)))-1]
		got := h.Percentile(p).Nanoseconds()
		// Log-bucketed: allow ~12.5% relative error (1/subBuckets of a
		// power of two) plus slack.
		lo, hi := float64(exact)*0.85, float64(exact)*1.25
		if float64(got) < lo || float64(got) > hi {
			t.Fatalf("p%.0f = %d, exact %d", p, got, exact)
		}
	}
}

func TestMinMaxMean(t *testing.T) {
	h := New()
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 10 * time.Millisecond} {
		h.Record(d)
	}
	if h.Min() != time.Microsecond {
		t.Fatalf("min = %s", h.Min())
	}
	if h.Max() != 10*time.Millisecond {
		t.Fatalf("max = %s", h.Max())
	}
	wantMean := (time.Microsecond + time.Millisecond + 10*time.Millisecond) / 3
	if h.Mean() != wantMean {
		t.Fatalf("mean = %s want %s", h.Mean(), wantMean)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	b.Record(5 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Max() < 5*time.Millisecond {
		t.Fatalf("max = %s", a.Max())
	}
	if a.Min() > time.Millisecond {
		t.Fatalf("min = %s", a.Min())
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(time.Duration(i%1000+1) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestTinyAndHugeDurations(t *testing.T) {
	h := New()
	h.Record(0)               // clamped to 1ns
	h.Record(time.Hour * 100) // clamped to top bucket
	if h.Count() != 2 {
		t.Fatal("clamped observations lost")
	}
	if h.Percentile(100) == 0 {
		t.Fatal("top percentile zero")
	}
}
