package arena

import (
	"sync"
	"testing"
)

// TestConcurrentAllocDistinct has many goroutines allocate and fill buffers
// simultaneously; no two allocations may overlap (each must retain its own
// fill byte), and accounting must add up.
func TestConcurrentAllocDistinct(t *testing.T) {
	const (
		workers = 8
		allocs  = 4000
		size    = 48
	)
	a := New()
	bufs := make([][][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([][]byte, 0, allocs)
			for i := 0; i < allocs; i++ {
				b := a.Alloc(size)
				for j := range b {
					b[j] = byte(w)
				}
				mine = append(mine, b)
			}
			bufs[w] = mine
		}(w)
	}
	wg.Wait()

	if got, want := a.Size(), int64(workers*allocs*size); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	for w, mine := range bufs {
		for i, b := range mine {
			for j := range b {
				if b[j] != byte(w) {
					t.Fatalf("worker %d alloc %d byte %d overwritten: got %d", w, i, j, b[j])
				}
			}
		}
	}
}

// TestConcurrentAppendRetains checks Append under contention: every
// returned copy must equal its source after all goroutines finish.
func TestConcurrentAppendRetains(t *testing.T) {
	const workers = 8
	a := New()
	out := make([][][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := []byte{byte(w), byte(w + 1), byte(w + 2)}
			mine := make([][]byte, 0, 2000)
			for i := 0; i < 2000; i++ {
				mine = append(mine, a.Append(src))
			}
			out[w] = mine
		}(w)
	}
	wg.Wait()
	for w, mine := range out {
		for i, b := range mine {
			if len(b) != 3 || b[0] != byte(w) || b[1] != byte(w+1) || b[2] != byte(w+2) {
				t.Fatalf("worker %d append %d corrupted: %v", w, i, b)
			}
		}
	}
}
