// Package arena provides a chunked append-only allocator. The memtable
// skiplist allocates all node and key/value storage from an arena so that an
// entire memtable can be released in one step and so allocation on the write
// path stays cheap. Alloc is safe for concurrent use: the commit pipeline
// applies group members' batches to the memtable in parallel, so several
// writers bump-allocate from the same arena at once.
package arena

import (
	"sync"
	"sync/atomic"
)

const (
	// chunkSize is the default size of each allocation chunk.
	chunkSize = 1 << 20 // 1 MiB
)

// chunk is one allocation block. off reserves space with a single atomic
// add; a reservation past len(buf) loses the race for the chunk's tail and
// the allocator moves on to a fresh chunk.
type chunk struct {
	buf []byte
	off atomic.Int64
}

// Arena is a chunked bump allocator. Alloc and Append are safe for
// concurrent use by any number of writers running alongside readers of
// previously returned buffers; the common path is a single atomic add.
type Arena struct {
	cur  atomic.Pointer[chunk]
	size atomic.Int64

	// growMu serializes chunk rollover (the rare path). chunks retains every
	// block handed out so buffers stay reachable for the arena's lifetime.
	growMu sync.Mutex
	chunks [][]byte
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{}
}

// Alloc returns a zeroed byte slice of length n carved from the arena.
func (a *Arena) Alloc(n int) []byte {
	for {
		c := a.cur.Load()
		if c != nil {
			if end := c.off.Add(int64(n)); end <= int64(len(c.buf)) {
				a.size.Add(int64(n))
				return c.buf[end-int64(n) : end : end]
			}
			// Lost the tail race: the chunk is (over)committed. The slack a
			// failed reservation strands is bounded by one allocation.
		}
		a.grow(c, n)
	}
}

// grow installs a fresh chunk big enough for n, unless another allocator
// already replaced the one the caller saw full.
func (a *Arena) grow(old *chunk, n int) {
	a.growMu.Lock()
	defer a.growMu.Unlock()
	if a.cur.Load() != old {
		return // raced: retry against the new chunk
	}
	sz := chunkSize
	if n > sz {
		sz = n
	}
	c := &chunk{buf: make([]byte, sz)}
	a.chunks = append(a.chunks, c.buf)
	a.cur.Store(c)
}

// Append copies src into the arena and returns the stable copy.
func (a *Arena) Append(src []byte) []byte {
	b := a.Alloc(len(src))
	copy(b, src)
	return b
}

// Size returns the total number of bytes handed out by Alloc. It is a lower
// bound on memory held by the arena (chunk slack is excluded) and is the
// figure the memtable uses for flush triggering.
func (a *Arena) Size() int64 {
	return a.size.Load()
}
