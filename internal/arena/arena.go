// Package arena provides a chunked append-only allocator. The memtable
// skiplist allocates all node and key/value storage from an arena so that an
// entire memtable can be released in one step and so allocation on the write
// path stays cheap and contention-free under a single writer.
package arena

import "sync/atomic"

const (
	// chunkSize is the default size of each allocation chunk.
	chunkSize = 1 << 20 // 1 MiB
)

// Arena is a chunked bump allocator. Alloc is safe for a single writer
// running concurrently with readers of previously returned buffers; the
// Size method may be called from any goroutine.
type Arena struct {
	chunks [][]byte
	cur    []byte
	off    int
	size   atomic.Int64
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{}
}

// Alloc returns a zeroed byte slice of length n carved from the arena.
func (a *Arena) Alloc(n int) []byte {
	if a.off+n > len(a.cur) {
		c := chunkSize
		if n > c {
			c = n
		}
		a.cur = make([]byte, c)
		a.off = 0
		a.chunks = append(a.chunks, a.cur)
	}
	b := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	a.size.Add(int64(n))
	return b
}

// Append copies src into the arena and returns the stable copy.
func (a *Arena) Append(src []byte) []byte {
	b := a.Alloc(len(src))
	copy(b, src)
	return b
}

// Size returns the total number of bytes handed out by Alloc. It is a lower
// bound on memory held by the arena (chunk slack is excluded) and is the
// figure the memtable uses for flush triggering.
func (a *Arena) Size() int64 {
	return a.size.Load()
}
