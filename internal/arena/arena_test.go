package arena

import (
	"bytes"
	"testing"
)

func TestAllocSizes(t *testing.T) {
	a := New()
	b1 := a.Alloc(10)
	if len(b1) != 10 {
		t.Fatalf("len = %d", len(b1))
	}
	b2 := a.Alloc(20)
	if len(b2) != 20 {
		t.Fatalf("len = %d", len(b2))
	}
	if a.Size() != 30 {
		t.Fatalf("size = %d", a.Size())
	}
}

func TestAllocLargerThanChunk(t *testing.T) {
	a := New()
	big := a.Alloc(3 << 20)
	if len(big) != 3<<20 {
		t.Fatalf("len = %d", len(big))
	}
	// Subsequent small allocations still work.
	small := a.Alloc(8)
	if len(small) != 8 {
		t.Fatalf("len = %d", len(small))
	}
}

func TestAppendCopies(t *testing.T) {
	a := New()
	src := []byte("hello")
	cp := a.Append(src)
	src[0] = 'X'
	if !bytes.Equal(cp, []byte("hello")) {
		t.Fatalf("append did not copy: %q", cp)
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	a := New()
	b1 := a.Alloc(16)
	b2 := a.Alloc(16)
	for i := range b1 {
		b1[i] = 0xAA
	}
	for _, v := range b2 {
		if v != 0 {
			t.Fatal("allocations overlap")
		}
	}
}

func TestAllocCapacityClamped(t *testing.T) {
	a := New()
	b := a.Alloc(4)
	if cap(b) != 4 {
		t.Fatalf("cap = %d, want 4 (three-index slice)", cap(b))
	}
}
