package manifest

import (
	"fmt"
	"testing"

	"rocksmash/internal/storage"
)

// TestManifestRotation exercises the 1000-edit rotation threshold: the log
// must be rewritten as a snapshot, CURRENT must follow, and old manifests
// must be deleted.
func TestManifestRotation(t *testing.T) {
	be, err := storage.NewLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(be)
	if err != nil {
		t.Fatal(err)
	}
	// Each iteration adds one file and deletes the previous, so the live
	// set stays at one file while the edit count crosses the threshold.
	var prev uint64
	for i := 0; i < 1100; i++ {
		num := s.NewFileNum()
		e := &VersionEdit{Added: []AddedFile{{Level: 1, Meta: fm(num, fmt.Sprintf("k%06d", i), fmt.Sprintf("k%06dz", i), 1, 2, storage.TierLocal)}}}
		if prev != 0 {
			e.Deleted = []DeletedFile{{Level: 1, Num: prev}}
		}
		if err := s.LogAndApply(e); err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		prev = num
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Only one manifest file (plus CURRENT) should remain.
	names, err := be.List("")
	if err != nil {
		t.Fatal(err)
	}
	manifests := 0
	for _, n := range names {
		if len(n) > 8 && n[:9] == "MANIFEST-" {
			manifests++
		}
	}
	if manifests != 1 {
		t.Fatalf("expected 1 manifest after rotation, found %d: %v", manifests, names)
	}

	s2, err := Open(be)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v := s2.Current()
	if v.NumFiles() != 1 {
		t.Fatalf("recovered %d files, want 1", v.NumFiles())
	}
	if v.Levels[1][0].Num != prev {
		t.Fatalf("recovered wrong file %d, want %d", v.Levels[1][0].Num, prev)
	}
}

// TestPeekDoesNotMutate verifies the read-only inspection path.
func TestPeekDoesNotMutate(t *testing.T) {
	be, _ := storage.NewLocal(t.TempDir())
	s, err := Open(be)
	if err != nil {
		t.Fatal(err)
	}
	num := s.NewFileNum()
	s.LogAndApply(&VersionEdit{
		Added:         []AddedFile{{Level: 0, Meta: fm(num, "a", "z", 1, 9, storage.TierCloud)}},
		HasFlushedSeq: true, FlushedSeq: 9,
	})
	s.SetLastSeq(9)
	s.Close()

	before, _ := be.List("")
	v, nextNum, _, flushed, err := Peek(be)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := be.List("")
	if len(before) != len(after) {
		t.Fatalf("Peek changed the directory: %v -> %v", before, after)
	}
	if v.NumFiles() != 1 || flushed != 9 || nextNum <= num {
		t.Fatalf("Peek state wrong: files=%d flushed=%d next=%d", v.NumFiles(), flushed, nextNum)
	}
}

// TestPeekEmptyDirectory returns a fresh state.
func TestPeekEmptyDirectory(t *testing.T) {
	be, _ := storage.NewLocal(t.TempDir())
	v, nextNum, lastSeq, flushed, err := Peek(be)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumFiles() != 0 || nextNum != 1 || lastSeq != 0 || flushed != 0 {
		t.Fatal("empty peek should be pristine")
	}
}
