package manifest

import (
	"bytes"
	"fmt"
	"sort"

	"rocksmash/internal/keys"
)

// Version is an immutable snapshot of the tree's file layout. Level 0 files
// may overlap and are ordered newest-first (descending MaxSeq); levels ≥ 1
// are sorted by smallest key and non-overlapping.
type Version struct {
	Levels [NumLevels][]*FileMetadata
}

// NewVersion returns an empty version.
func NewVersion() *Version { return &Version{} }

// Clone returns a shallow copy (file metadata is shared, slices are new).
func (v *Version) Clone() *Version {
	nv := &Version{}
	for i := range v.Levels {
		nv.Levels[i] = append([]*FileMetadata(nil), v.Levels[i]...)
	}
	return nv
}

// Apply produces a new version with the edit's file changes applied.
func (v *Version) Apply(e *VersionEdit) (*Version, error) {
	nv := v.Clone()
	for _, d := range e.Deleted {
		files := nv.Levels[d.Level]
		idx := -1
		for i, f := range files {
			if f.Num == d.Num {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("manifest: delete of unknown file %d at L%d", d.Num, d.Level)
		}
		nv.Levels[d.Level] = append(append([]*FileMetadata(nil), files[:idx]...), files[idx+1:]...)
	}
	for _, a := range e.Added {
		m := a.Meta // copy
		nv.Levels[a.Level] = append(nv.Levels[a.Level], &m)
	}
	nv.sortLevels()
	if err := nv.checkInvariants(); err != nil {
		return nil, err
	}
	return nv, nil
}

func (v *Version) sortLevels() {
	// L0: newest first so reads hit fresh data first.
	sort.Slice(v.Levels[0], func(i, j int) bool {
		return v.Levels[0][i].MaxSeq > v.Levels[0][j].MaxSeq
	})
	for l := 1; l < NumLevels; l++ {
		fs := v.Levels[l]
		sort.Slice(fs, func(i, j int) bool {
			return keys.Compare(fs[i].Smallest, fs[j].Smallest) < 0
		})
	}
}

func (v *Version) checkInvariants() error {
	for l := 1; l < NumLevels; l++ {
		fs := v.Levels[l]
		for i := 1; i < len(fs); i++ {
			if bytes.Compare(keys.UserKey(fs[i].Smallest), keys.UserKey(fs[i-1].Largest)) <= 0 {
				return fmt.Errorf("manifest: overlapping files at L%d: %s then %s", l, fs[i-1], fs[i])
			}
		}
	}
	return nil
}

// FilesFor returns the files that may hold ukey, in the order the read path
// must consult them: all matching L0 files newest-first, then at most one
// file per deeper level.
func (v *Version) FilesFor(ukey []byte, fn func(level int, f *FileMetadata) (stop bool, err error)) error {
	for _, f := range v.Levels[0] {
		if f.ContainsUserKey(ukey) {
			stop, err := fn(0, f)
			if err != nil || stop {
				return err
			}
		}
	}
	for l := 1; l < NumLevels; l++ {
		fs := v.Levels[l]
		i := sort.Search(len(fs), func(i int) bool {
			return bytes.Compare(keys.UserKey(fs[i].Largest), ukey) >= 0
		})
		if i < len(fs) && fs[i].ContainsUserKey(ukey) {
			stop, err := fn(l, fs[i])
			if err != nil || stop {
				return err
			}
		}
	}
	return nil
}

// Overlapping returns the files at level whose user-key ranges intersect
// [lo, hi] (nil = unbounded).
func (v *Version) Overlapping(level int, lo, hi []byte) []*FileMetadata {
	var out []*FileMetadata
	for _, f := range v.Levels[level] {
		if f.OverlapsRange(lo, hi) {
			out = append(out, f)
		}
	}
	return out
}

// LevelSize returns the total byte size of a level.
func (v *Version) LevelSize(level int) uint64 {
	var n uint64
	for _, f := range v.Levels[level] {
		n += f.Size
	}
	return n
}

// NumFiles returns the total number of live files.
func (v *Version) NumFiles() int {
	n := 0
	for l := range v.Levels {
		n += len(v.Levels[l])
	}
	return n
}

// AllFiles calls fn for every live file.
func (v *Version) AllFiles(fn func(level int, f *FileMetadata)) {
	for l := range v.Levels {
		for _, f := range v.Levels[l] {
			fn(l, f)
		}
	}
}

// MaxLevel returns the deepest level that holds any file.
func (v *Version) MaxLevel() int {
	max := 0
	for l := range v.Levels {
		if len(v.Levels[l]) > 0 {
			max = l
		}
	}
	return max
}
