package manifest

import (
	"fmt"
	"strings"
)

// Sorted-view lifecycle. A view object's name carries both its level and a
// fingerprint of the exact member table set it was built from, so validity
// checks are pure name comparisons: a compaction that installs a new
// version changes the level's membership, the fingerprint of the live file
// set diverges, and every object named for the old set is implicitly
// stale — no tombstones or epochs to log. Tier migrations (local <-> cloud
// drains) change placement but not membership, so they leave views valid.

// ViewPrefix roots all sorted-view sidecars in the local tier, beside the
// "sst/" tables and "meta/" sidecars.
const ViewPrefix = "view/"

// ViewFingerprint hashes a level's member file numbers, in key order, with
// FNV-1a 64. Two levels have the same fingerprint iff they hold the same
// tables in the same order.
func ViewFingerprint(files []*FileMetadata) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, f := range files {
		n := f.Num
		for i := 0; i < 8; i++ {
			h ^= n & 0xff
			h *= prime64
			n >>= 8
		}
	}
	return h
}

// ViewName returns the local-tier object name for a level's sorted view.
func ViewName(level int, fp uint64) string {
	return fmt.Sprintf("%sL%d-%016x.view", ViewPrefix, level, fp)
}

// ParseViewName inverts ViewName; ok is false for foreign names.
func ParseViewName(name string) (level int, fp uint64, ok bool) {
	rest, found := strings.CutPrefix(name, ViewPrefix)
	if !found || !strings.HasSuffix(rest, ".view") {
		return 0, 0, false
	}
	rest = strings.TrimSuffix(rest, ".view")
	if _, err := fmt.Sscanf(rest, "L%d-%x", &level, &fp); err != nil {
		return 0, 0, false
	}
	return level, fp, true
}
