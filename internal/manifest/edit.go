package manifest

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rocksmash/internal/storage"
)

// VersionEdit is one atomic mutation of the tree's file metadata, persisted
// as a record in the MANIFEST log.
type VersionEdit struct {
	// HasNextFileNum etc. gate optional fields.
	HasNextFileNum bool
	NextFileNum    uint64
	HasLastSeq     bool
	LastSeq        uint64
	HasFlushedSeq  bool
	FlushedSeq     uint64 // all sequence numbers <= this are durable in tables

	Added   []AddedFile
	Deleted []DeletedFile
}

// AddedFile places a new table at a level.
type AddedFile struct {
	Level int
	Meta  FileMetadata
}

// DeletedFile removes a table from a level.
type DeletedFile struct {
	Level int
	Num   uint64
}

// Edit record field tags.
const (
	tagNextFileNum = 1
	tagLastSeq     = 2
	tagFlushedSeq  = 3
	tagAddedFile   = 4
	tagDeletedFile = 5
	// tagAddedPending is an AddedFile whose table is awaiting upload to the
	// cloud tier (degraded-mode landing). Same field layout as tagAddedFile;
	// the tag itself carries the pending bit so old manifests stay readable.
	tagAddedPending = 6
)

// ErrCorrupt reports a malformed manifest record.
var ErrCorrupt = errors.New("manifest: corrupt edit")

// Encode serializes the edit.
func (e *VersionEdit) Encode() []byte {
	var b []byte
	if e.HasNextFileNum {
		b = binary.AppendUvarint(b, tagNextFileNum)
		b = binary.AppendUvarint(b, e.NextFileNum)
	}
	if e.HasLastSeq {
		b = binary.AppendUvarint(b, tagLastSeq)
		b = binary.AppendUvarint(b, e.LastSeq)
	}
	if e.HasFlushedSeq {
		b = binary.AppendUvarint(b, tagFlushedSeq)
		b = binary.AppendUvarint(b, e.FlushedSeq)
	}
	for _, a := range e.Added {
		if a.Meta.PendingCloud {
			b = binary.AppendUvarint(b, tagAddedPending)
		} else {
			b = binary.AppendUvarint(b, tagAddedFile)
		}
		b = binary.AppendUvarint(b, uint64(a.Level))
		b = binary.AppendUvarint(b, a.Meta.Num)
		b = binary.AppendUvarint(b, a.Meta.Size)
		b = binary.AppendUvarint(b, a.Meta.MinSeq)
		b = binary.AppendUvarint(b, a.Meta.MaxSeq)
		b = binary.AppendUvarint(b, uint64(a.Meta.Tier))
		b = appendBytes(b, a.Meta.Smallest)
		b = appendBytes(b, a.Meta.Largest)
	}
	for _, d := range e.Deleted {
		b = binary.AppendUvarint(b, tagDeletedFile)
		b = binary.AppendUvarint(b, uint64(d.Level))
		b = binary.AppendUvarint(b, d.Num)
	}
	return b
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

type decoder struct {
	p []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		return 0, ErrCorrupt
	}
	d.p = d.p[n:]
	return v, nil
}

func (d *decoder) bytes() ([]byte, error) {
	ln, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.p)) < ln {
		return nil, ErrCorrupt
	}
	out := append([]byte(nil), d.p[:ln]...)
	d.p = d.p[ln:]
	return out, nil
}

// DecodeEdit parses an encoded edit.
func DecodeEdit(p []byte) (*VersionEdit, error) {
	d := decoder{p: p}
	e := &VersionEdit{}
	for len(d.p) > 0 {
		tag, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagNextFileNum:
			if e.NextFileNum, err = d.uvarint(); err != nil {
				return nil, err
			}
			e.HasNextFileNum = true
		case tagLastSeq:
			if e.LastSeq, err = d.uvarint(); err != nil {
				return nil, err
			}
			e.HasLastSeq = true
		case tagFlushedSeq:
			if e.FlushedSeq, err = d.uvarint(); err != nil {
				return nil, err
			}
			e.HasFlushedSeq = true
		case tagAddedFile, tagAddedPending:
			var a AddedFile
			lvl, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			a.Level = int(lvl)
			if a.Level >= NumLevels {
				return nil, fmt.Errorf("%w: level %d", ErrCorrupt, a.Level)
			}
			fields := []*uint64{&a.Meta.Num, &a.Meta.Size, &a.Meta.MinSeq, &a.Meta.MaxSeq}
			for _, f := range fields {
				if *f, err = d.uvarint(); err != nil {
					return nil, err
				}
			}
			tier, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			a.Meta.Tier = storage.Tier(tier)
			if a.Meta.Smallest, err = d.bytes(); err != nil {
				return nil, err
			}
			if a.Meta.Largest, err = d.bytes(); err != nil {
				return nil, err
			}
			a.Meta.PendingCloud = tag == tagAddedPending
			e.Added = append(e.Added, a)
		case tagDeletedFile:
			var del DeletedFile
			lvl, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			del.Level = int(lvl)
			if del.Num, err = d.uvarint(); err != nil {
				return nil, err
			}
			e.Deleted = append(e.Deleted, del)
		default:
			return nil, fmt.Errorf("%w: unknown tag %d", ErrCorrupt, tag)
		}
	}
	return e, nil
}
