package manifest

import (
	"testing"

	"rocksmash/internal/storage"
)

func TestViewNameRoundtrip(t *testing.T) {
	for _, tc := range []struct {
		level int
		fp    uint64
	}{{1, 0}, {2, 0xdeadbeef}, {6, ^uint64(0)}} {
		name := ViewName(tc.level, tc.fp)
		level, fp, ok := ParseViewName(name)
		if !ok || level != tc.level || fp != tc.fp {
			t.Fatalf("roundtrip %q -> (%d, %x, %t), want (%d, %x)", name, level, fp, ok, tc.level, tc.fp)
		}
	}
	for _, bad := range []string{"sst/000001.sst", "view/L2-zzzz.view", "view/L2-1234", "L2-1234.view", ""} {
		if _, _, ok := ParseViewName(bad); ok {
			t.Fatalf("ParseViewName(%q) accepted a foreign name", bad)
		}
	}
}

// TestViewFingerprintMembership pins the invalidation rule: the
// fingerprint tracks member file numbers and their order — nothing else —
// so tier drains keep views valid and compactions invalidate them.
func TestViewFingerprintMembership(t *testing.T) {
	fm := func(num uint64, tier storage.Tier) *FileMetadata {
		return &FileMetadata{Num: num, Tier: tier}
	}
	a := []*FileMetadata{fm(3, storage.TierLocal), fm(7, storage.TierLocal)}
	moved := []*FileMetadata{fm(3, storage.TierCloud), fm(7, storage.TierCloud)}
	if ViewFingerprint(a) != ViewFingerprint(moved) {
		t.Fatal("tier change altered the fingerprint; drains must keep views valid")
	}
	swapped := []*FileMetadata{fm(7, storage.TierLocal), fm(3, storage.TierLocal)}
	if ViewFingerprint(a) == ViewFingerprint(swapped) {
		t.Fatal("member order must be part of the fingerprint")
	}
	grown := []*FileMetadata{fm(3, storage.TierLocal), fm(7, storage.TierLocal), fm(9, storage.TierLocal)}
	if ViewFingerprint(a) == ViewFingerprint(grown) {
		t.Fatal("membership change must move the fingerprint")
	}
	if ViewFingerprint(nil) != ViewFingerprint([]*FileMetadata{}) {
		t.Fatal("empty fingerprints disagree")
	}
}
