// Package manifest tracks the LSM tree's file-level metadata: which SSTable
// files exist, at which level, on which storage tier, and with what key and
// sequence ranges. All of this metadata lives on the *local* tier (one of
// the paper's placement rules) in a MANIFEST log of versioned edits, with a
// CURRENT pointer naming the live log, mirroring LevelDB/RocksDB.
package manifest

import (
	"bytes"
	"fmt"

	"rocksmash/internal/keys"
	"rocksmash/internal/storage"
)

// NumLevels is the number of LSM levels.
const NumLevels = 7

// FileMetadata describes one SSTable.
type FileMetadata struct {
	Num      uint64
	Size     uint64
	Smallest []byte // smallest internal key
	Largest  []byte // largest internal key
	MinSeq   uint64
	MaxSeq   uint64
	Tier     storage.Tier // which backend holds the file body

	// PendingCloud marks a table that belongs on the cloud tier but was
	// landed on local storage because the cloud was unreachable (degraded
	// mode). Tier is TierLocal while the flag is set; the background drainer
	// uploads the file and clears the flag via a manifest edit.
	PendingCloud bool
}

// String implements fmt.Stringer for debugging and mashctl dumps.
func (f *FileMetadata) String() string {
	return fmt.Sprintf("#%d(%s, %dB, %q..%q)", f.Num, f.Tier, f.Size,
		keys.UserKey(f.Smallest), keys.UserKey(f.Largest))
}

// ContainsUserKey reports whether ukey falls inside the file's key range.
func (f *FileMetadata) ContainsUserKey(ukey []byte) bool {
	return bytes.Compare(keys.UserKey(f.Smallest), ukey) <= 0 &&
		bytes.Compare(ukey, keys.UserKey(f.Largest)) <= 0
}

// OverlapsRange reports whether the file's user-key range intersects
// [lo, hi]. A nil bound is unbounded.
func (f *FileMetadata) OverlapsRange(lo, hi []byte) bool {
	if hi != nil && bytes.Compare(keys.UserKey(f.Smallest), hi) > 0 {
		return false
	}
	if lo != nil && bytes.Compare(keys.UserKey(f.Largest), lo) < 0 {
		return false
	}
	return true
}

// TableName formats the object name for a table file number.
func TableName(num uint64) string { return fmt.Sprintf("sst/%06d.sst", num) }
