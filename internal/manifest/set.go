package manifest

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"rocksmash/internal/storage"
	"rocksmash/internal/wal"
)

const currentName = "CURRENT"

func manifestName(num uint64) string { return fmt.Sprintf("MANIFEST-%06d", num) }

// Set owns the current Version and the MANIFEST log that makes metadata
// changes durable. It always lives on the local tier.
type Set struct {
	be storage.Backend

	mu          sync.Mutex
	current     *Version
	nextFileNum uint64
	lastSeq     uint64
	flushedSeq  uint64
	manifestNum uint64
	w           storage.Writer
	rw          *wal.RecordWriter
	editsInLog  int

	// stride/strideOff restrict allocations to numbers ≡ strideOff (mod
	// stride). Keyspace shards stripe one global file-number space this way
	// (shard i allocates i, i+N, i+2N, ...) so file numbers stay unique
	// across shards and the shared block/table/persistent caches need no
	// per-shard key salting. stride 0 or 1 means dense allocation.
	stride    uint64
	strideOff uint64
}

// Open recovers the version state from be, or initializes a fresh store.
func Open(be storage.Backend) (*Set, error) {
	s := &Set{be: be, current: NewVersion(), nextFileNum: 1}
	cur, err := be.ReadAll(currentName)
	switch {
	case errors.Is(err, storage.ErrNotFound):
		return s, s.createNewManifest()
	case err != nil:
		return nil, err
	}
	name := string(cur)
	data, err := be.ReadAll(name)
	if err != nil {
		return nil, fmt.Errorf("manifest: reading %s: %w", name, err)
	}
	if _, err := fmt.Sscanf(name, "MANIFEST-%06d", &s.manifestNum); err != nil {
		return nil, fmt.Errorf("manifest: bad CURRENT contents %q", name)
	}
	rr := wal.NewRecordReader(data)
	for {
		rec, err := rr.Next()
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, err
		}
		edit, err := DecodeEdit(rec)
		if err != nil {
			return nil, err
		}
		if err := s.applyLocked(edit); err != nil {
			return nil, err
		}
	}
	// Continue appending to a fresh manifest so a torn tail in the old one
	// cannot poison future edits.
	return s, s.createNewManifest()
}

// WriteSnapshot writes a standalone manifest describing v into be (a fresh
// MANIFEST log plus CURRENT), so that a copied directory opens to exactly
// this version. Used by the backup/checkpoint path.
func WriteSnapshot(be storage.Backend, v *Version, nextFileNum, lastSeq, flushedSeq uint64) error {
	name := manifestName(1)
	w, err := be.Create(name)
	if err != nil {
		return err
	}
	rw := wal.NewRecordWriter(w)
	snap := &VersionEdit{
		HasNextFileNum: true, NextFileNum: nextFileNum,
		HasLastSeq: true, LastSeq: lastSeq,
		HasFlushedSeq: true, FlushedSeq: flushedSeq,
	}
	v.AllFiles(func(level int, f *FileMetadata) {
		snap.Added = append(snap.Added, AddedFile{Level: level, Meta: *f})
	})
	if err := rw.Append(snap.Encode()); err != nil {
		w.Close()
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	return storage.WriteObject(be, currentName, []byte(name))
}

// Peek reads the current version state without rotating the manifest or
// opening it for append — a read-only inspection used by tooling.
func Peek(be storage.Backend) (v *Version, nextFileNum, lastSeq, flushedSeq uint64, err error) {
	s := &Set{be: be, current: NewVersion(), nextFileNum: 1}
	cur, err := be.ReadAll(currentName)
	if errors.Is(err, storage.ErrNotFound) {
		return s.current, 1, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, 0, err
	}
	data, err := be.ReadAll(string(cur))
	if err != nil {
		return nil, 0, 0, 0, err
	}
	rr := wal.NewRecordReader(data)
	for {
		rec, rerr := rr.Next()
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			return nil, 0, 0, 0, rerr
		}
		edit, derr := DecodeEdit(rec)
		if derr != nil {
			return nil, 0, 0, 0, derr
		}
		if aerr := s.applyLocked(edit); aerr != nil {
			return nil, 0, 0, 0, aerr
		}
	}
	return s.current, s.nextFileNum, s.lastSeq, s.flushedSeq, nil
}

// createNewManifest writes a full snapshot of current state into a new
// manifest log and atomically repoints CURRENT.
func (s *Set) createNewManifest() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		s.w.Close()
		s.w, s.rw = nil, nil
	}
	num := s.manifestNum + 1
	name := manifestName(num)
	w, err := s.be.Create(name)
	if err != nil {
		return err
	}
	rw := wal.NewRecordWriter(w)
	snap := &VersionEdit{
		HasNextFileNum: true, NextFileNum: s.nextFileNum,
		HasLastSeq: true, LastSeq: s.lastSeq,
		HasFlushedSeq: true, FlushedSeq: s.flushedSeq,
	}
	s.current.AllFiles(func(level int, f *FileMetadata) {
		snap.Added = append(snap.Added, AddedFile{Level: level, Meta: *f})
	})
	if err := rw.Append(snap.Encode()); err != nil {
		w.Close()
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	// Point CURRENT at the new manifest via atomic rename.
	tmp := currentName + ".tmp"
	if err := storage.WriteObject(s.be, tmp, []byte(name)); err != nil {
		w.Close()
		return err
	}
	if err := s.be.Rename(tmp, currentName); err != nil {
		w.Close()
		return err
	}
	old := s.manifestNum
	s.manifestNum = num
	s.w, s.rw = w, rw
	s.editsInLog = 0
	if old > 0 {
		_ = s.be.Delete(manifestName(old))
	}
	return nil
}

// applyLocked folds an edit into the in-memory state.
func (s *Set) applyLocked(e *VersionEdit) error {
	nv, err := s.current.Apply(e)
	if err != nil {
		return err
	}
	s.current = nv
	if e.HasNextFileNum && e.NextFileNum > s.nextFileNum {
		s.nextFileNum = e.NextFileNum
		s.alignLocked()
	}
	if e.HasLastSeq && e.LastSeq > s.lastSeq {
		s.lastSeq = e.LastSeq
	}
	if e.HasFlushedSeq && e.FlushedSeq > s.flushedSeq {
		s.flushedSeq = e.FlushedSeq
	}
	return nil
}

// LogAndApply persists the edit and installs the resulting version.
func (s *Set) LogAndApply(e *VersionEdit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Stamp bookkeeping fields so recovery reproduces them.
	if !e.HasNextFileNum {
		e.HasNextFileNum, e.NextFileNum = true, s.nextFileNum
	}
	if !e.HasLastSeq {
		e.HasLastSeq, e.LastSeq = true, s.lastSeq
	}
	if err := s.rw.Append(e.Encode()); err != nil {
		return err
	}
	if err := s.w.Sync(); err != nil {
		return err
	}
	if err := s.applyLocked(e); err != nil {
		return err
	}
	s.editsInLog++
	if s.editsInLog >= 1000 {
		s.mu.Unlock()
		err := s.createNewManifest()
		s.mu.Lock()
		return err
	}
	return nil
}

// Current returns the live version. Callers must treat it as immutable.
func (s *Set) Current() *Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// NewFileNum allocates the next file number (on this set's stride when
// SetStride was called).
func (s *Set) NewFileNum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nextFileNum
	if s.stride > 1 {
		s.nextFileNum += s.stride
	} else {
		s.nextFileNum++
	}
	return n
}

// SetStride restricts future allocations to file numbers ≡ offset (mod
// stride), aligning the allocation cursor up to the stride if needed.
// Called once right after Open, before any allocation. stride ≤ 1 restores
// dense allocation.
func (s *Set) SetStride(stride, offset uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stride, s.strideOff = stride, offset
	s.alignLocked()
}

// alignLocked advances nextFileNum to the stride's next slot; a freshly
// initialized or recovered cursor starts dense and must be snapped onto
// this set's residue class before the first allocation.
func (s *Set) alignLocked() {
	if s.stride <= 1 {
		return
	}
	if rem := s.nextFileNum % s.stride; rem != s.strideOff {
		s.nextFileNum += (s.strideOff + s.stride - rem) % s.stride
	}
}

// PeekFileNum returns the next file number without allocating it.
func (s *Set) PeekFileNum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextFileNum
}

// LastSeq returns the newest committed sequence number known to the
// manifest (recovery raises it further from the WAL).
func (s *Set) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// SetLastSeq raises the recorded last sequence number.
func (s *Set) SetLastSeq(seq uint64) {
	s.mu.Lock()
	if seq > s.lastSeq {
		s.lastSeq = seq
	}
	s.mu.Unlock()
}

// FlushedSeq returns the durable-in-tables watermark.
func (s *Set) FlushedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushedSeq
}

// Close releases the manifest log handle.
func (s *Set) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	s.w, s.rw = nil, nil
	return err
}
