package manifest

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"rocksmash/internal/keys"
	"rocksmash/internal/storage"
)

func ik(k string, seq uint64) []byte {
	return keys.MakeInternalKey(nil, []byte(k), seq, keys.KindSet)
}

func fm(num uint64, lo, hi string, minSeq, maxSeq uint64, tier storage.Tier) FileMetadata {
	return FileMetadata{
		Num: num, Size: 1000, Smallest: ik(lo, maxSeq), Largest: ik(hi, minSeq),
		MinSeq: minSeq, MaxSeq: maxSeq, Tier: tier,
	}
}

func TestEditEncodeDecode(t *testing.T) {
	e := &VersionEdit{
		HasNextFileNum: true, NextFileNum: 42,
		HasLastSeq: true, LastSeq: 999,
		HasFlushedSeq: true, FlushedSeq: 900,
		Added: []AddedFile{
			{Level: 0, Meta: fm(7, "a", "m", 1, 50, storage.TierLocal)},
			{Level: 3, Meta: fm(9, "n", "z", 51, 80, storage.TierCloud)},
		},
		Deleted: []DeletedFile{{Level: 1, Num: 5}},
	}
	dec, err := DecodeEdit(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, dec) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", e, dec)
	}
}

func TestEditEncodeDecodePending(t *testing.T) {
	pending := fm(11, "a", "k", 1, 30, storage.TierLocal)
	pending.PendingCloud = true
	e := &VersionEdit{
		Added: []AddedFile{
			{Level: 0, Meta: pending},
			{Level: 0, Meta: fm(12, "l", "z", 31, 60, storage.TierCloud)},
		},
	}
	dec, err := DecodeEdit(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, dec) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", e, dec)
	}
	if !dec.Added[0].Meta.PendingCloud || dec.Added[1].Meta.PendingCloud {
		t.Fatal("pending flag not preserved per file")
	}
}

func TestEditDecodeCorrupt(t *testing.T) {
	if _, err := DecodeEdit([]byte{200}); err == nil {
		t.Fatal("bad tag should fail")
	}
	e := &VersionEdit{Added: []AddedFile{{Level: 0, Meta: fm(1, "a", "b", 1, 2, storage.TierLocal)}}}
	enc := e.Encode()
	if _, err := DecodeEdit(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated edit should fail")
	}
}

func TestVersionApplyAddDelete(t *testing.T) {
	v := NewVersion()
	e1 := &VersionEdit{Added: []AddedFile{
		{Level: 1, Meta: fm(1, "a", "f", 1, 10, storage.TierLocal)},
		{Level: 1, Meta: fm(2, "g", "m", 11, 20, storage.TierCloud)},
	}}
	v1, err := v.Apply(e1)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1.Levels[1]) != 2 {
		t.Fatalf("L1 = %d files", len(v1.Levels[1]))
	}
	// Original unchanged (immutability).
	if len(v.Levels[1]) != 0 {
		t.Fatal("base version mutated")
	}
	v2, err := v1.Apply(&VersionEdit{Deleted: []DeletedFile{{Level: 1, Num: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(v2.Levels[1]) != 1 || v2.Levels[1][0].Num != 2 {
		t.Fatalf("delete failed: %+v", v2.Levels[1])
	}
}

func TestVersionRejectsOverlapDeepLevels(t *testing.T) {
	v := NewVersion()
	_, err := v.Apply(&VersionEdit{Added: []AddedFile{
		{Level: 2, Meta: fm(1, "a", "m", 1, 10, storage.TierLocal)},
		{Level: 2, Meta: fm(2, "k", "z", 11, 20, storage.TierLocal)},
	}})
	if err == nil {
		t.Fatal("overlapping L2 files should be rejected")
	}
}

func TestVersionAllowsL0Overlap(t *testing.T) {
	v := NewVersion()
	v1, err := v.Apply(&VersionEdit{Added: []AddedFile{
		{Level: 0, Meta: fm(1, "a", "m", 1, 10, storage.TierLocal)},
		{Level: 0, Meta: fm(2, "k", "z", 11, 20, storage.TierLocal)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Newest first.
	if v1.Levels[0][0].Num != 2 {
		t.Fatalf("L0 order: %v", v1.Levels[0])
	}
}

func TestDeleteUnknownFileFails(t *testing.T) {
	v := NewVersion()
	if _, err := v.Apply(&VersionEdit{Deleted: []DeletedFile{{Level: 0, Num: 99}}}); err == nil {
		t.Fatal("deleting unknown file should fail")
	}
}

func TestFilesForOrdering(t *testing.T) {
	v := NewVersion()
	v, err := v.Apply(&VersionEdit{Added: []AddedFile{
		{Level: 0, Meta: fm(3, "c", "p", 30, 40, storage.TierLocal)},
		{Level: 0, Meta: fm(4, "a", "h", 41, 50, storage.TierLocal)},
		{Level: 1, Meta: fm(1, "a", "g", 1, 10, storage.TierCloud)},
		{Level: 1, Meta: fm(2, "h", "z", 11, 20, storage.TierCloud)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var visited []uint64
	err = v.FilesFor([]byte("e"), func(level int, f *FileMetadata) (bool, error) {
		visited = append(visited, f.Num)
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// L0 newest (4) then older (3), then L1 file containing "e" (1).
	if fmt.Sprint(visited) != "[4 3 1]" {
		t.Fatalf("visit order = %v", visited)
	}
	// Early stop.
	visited = nil
	v.FilesFor([]byte("e"), func(level int, f *FileMetadata) (bool, error) {
		visited = append(visited, f.Num)
		return true, nil
	})
	if len(visited) != 1 {
		t.Fatalf("stop ignored: %v", visited)
	}
}

func TestOverlapping(t *testing.T) {
	v := NewVersion()
	v, _ = v.Apply(&VersionEdit{Added: []AddedFile{
		{Level: 2, Meta: fm(1, "a", "c", 1, 1, storage.TierLocal)},
		{Level: 2, Meta: fm(2, "d", "f", 2, 2, storage.TierLocal)},
		{Level: 2, Meta: fm(3, "g", "i", 3, 3, storage.TierLocal)},
	}})
	got := v.Overlapping(2, []byte("e"), []byte("h"))
	if len(got) != 2 || got[0].Num != 2 || got[1].Num != 3 {
		t.Fatalf("overlap = %v", got)
	}
	if n := len(v.Overlapping(2, nil, nil)); n != 3 {
		t.Fatalf("unbounded overlap = %d", n)
	}
}

func TestSetPersistAndRecover(t *testing.T) {
	dir := t.TempDir()
	be, err := storage.NewLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(be)
	if err != nil {
		t.Fatal(err)
	}
	n1 := s.NewFileNum()
	e := &VersionEdit{
		Added:         []AddedFile{{Level: 0, Meta: fm(n1, "a", "z", 1, 100, storage.TierLocal)}},
		HasFlushedSeq: true, FlushedSeq: 100,
	}
	s.SetLastSeq(100)
	if err := s.LogAndApply(e); err != nil {
		t.Fatal(err)
	}
	n2 := s.NewFileNum()
	if err := s.LogAndApply(&VersionEdit{
		Added: []AddedFile{{Level: 1, Meta: fm(n2, "a", "z", 101, 200, storage.TierCloud)}},
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(be)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v := s2.Current()
	if len(v.Levels[0]) != 1 || len(v.Levels[1]) != 1 {
		t.Fatalf("recovered layout: L0=%d L1=%d", len(v.Levels[0]), len(v.Levels[1]))
	}
	if v.Levels[1][0].Tier != storage.TierCloud {
		t.Fatal("tier lost in recovery")
	}
	if s2.FlushedSeq() != 100 {
		t.Fatalf("flushedSeq = %d", s2.FlushedSeq())
	}
	if s2.LastSeq() < 100 {
		t.Fatalf("lastSeq = %d", s2.LastSeq())
	}
	if s2.PeekFileNum() <= n2 {
		t.Fatalf("file numbering regressed: %d", s2.PeekFileNum())
	}
}

func TestRecoverToleratesTornManifestTail(t *testing.T) {
	dir := t.TempDir()
	be, _ := storage.NewLocal(dir)
	s, err := Open(be)
	if err != nil {
		t.Fatal(err)
	}
	num := s.NewFileNum()
	s.LogAndApply(&VersionEdit{Added: []AddedFile{{Level: 0, Meta: fm(num, "a", "b", 1, 2, storage.TierLocal)}}})
	s.Close()

	cur, _ := be.ReadAll("CURRENT")
	data, _ := be.ReadAll(string(cur))
	data = append(data, 0x01, 0x02, 0x03) // torn tail
	if err := storage.WriteObject(be, string(cur), data); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(be)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Current().NumFiles() != 1 {
		t.Fatalf("files = %d", s2.Current().NumFiles())
	}
}

func TestLevelSizeAndMaxLevel(t *testing.T) {
	v := NewVersion()
	v, _ = v.Apply(&VersionEdit{Added: []AddedFile{
		{Level: 0, Meta: fm(1, "a", "b", 1, 1, storage.TierLocal)},
		{Level: 3, Meta: fm(2, "c", "d", 2, 2, storage.TierCloud)},
	}})
	if v.LevelSize(0) != 1000 || v.LevelSize(3) != 1000 || v.LevelSize(5) != 0 {
		t.Fatal("level sizes wrong")
	}
	if v.MaxLevel() != 3 {
		t.Fatalf("max level = %d", v.MaxLevel())
	}
	if v.NumFiles() != 2 {
		t.Fatalf("num files = %d", v.NumFiles())
	}
}

func TestQuickEditRoundTrip(t *testing.T) {
	f := func(nextNum, lastSeq uint64, adds uint8, dels uint8) bool {
		e := &VersionEdit{HasNextFileNum: true, NextFileNum: nextNum, HasLastSeq: true, LastSeq: lastSeq}
		for i := 0; i < int(adds%8); i++ {
			e.Added = append(e.Added, AddedFile{
				Level: i % NumLevels,
				Meta:  fm(uint64(i+1), fmt.Sprintf("k%d", i), fmt.Sprintf("k%dz", i), 1, 2, storage.Tier(i%2)),
			})
		}
		for i := 0; i < int(dels%8); i++ {
			e.Deleted = append(e.Deleted, DeletedFile{Level: i % NumLevels, Num: uint64(100 + i)})
		}
		dec, err := DecodeEdit(e.Encode())
		return err == nil && reflect.DeepEqual(e, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContainsAndOverlaps(t *testing.T) {
	f := fm(1, "d", "m", 1, 2, storage.TierLocal)
	if !f.ContainsUserKey([]byte("d")) || !f.ContainsUserKey([]byte("m")) || !f.ContainsUserKey([]byte("h")) {
		t.Fatal("inclusive bounds broken")
	}
	if f.ContainsUserKey([]byte("c")) || f.ContainsUserKey([]byte("n")) {
		t.Fatal("out-of-range keys matched")
	}
	if !f.OverlapsRange(nil, nil) || !f.OverlapsRange([]byte("a"), []byte("e")) {
		t.Fatal("overlap misses")
	}
	if f.OverlapsRange([]byte("n"), []byte("z")) || f.OverlapsRange([]byte("a"), []byte("c")) {
		t.Fatal("phantom overlap")
	}
	if !bytes.Equal(keys.UserKey(f.Smallest), []byte("d")) {
		t.Fatal("smallest wrong")
	}
}
