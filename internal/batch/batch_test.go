package batch

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"rocksmash/internal/keys"
)

func TestSetDeleteIterate(t *testing.T) {
	b := New()
	b.Set([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	b.Set([]byte("k3"), []byte("v3"))
	b.SetSeq(100)

	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	var ops []Op
	if err := b.Iterate(func(op Op) error {
		ops = append(ops, Op{op.Kind, op.Seq, append([]byte(nil), op.Key...), append([]byte(nil), op.Value...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{keys.KindSet, 100, []byte("k1"), []byte("v1")},
		{keys.KindDelete, 101, []byte("k2"), nil},
		{keys.KindSet, 102, []byte("k3"), []byte("v3")},
	}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops", len(ops))
	}
	for i := range want {
		if ops[i].Kind != want[i].Kind || ops[i].Seq != want[i].Seq ||
			!bytes.Equal(ops[i].Key, want[i].Key) || !bytes.Equal(ops[i].Value, want[i].Value) {
			t.Fatalf("op %d = %+v want %+v", i, ops[i], want[i])
		}
	}
	if b.MaxSeq() != 102 {
		t.Fatalf("maxseq = %d", b.MaxSeq())
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	b := New()
	b.Set([]byte("a"), []byte("1"))
	b.Delete([]byte("b"))
	b.SetSeq(7)

	b2, err := FromPayload(append([]byte(nil), b.Payload()...))
	if err != nil {
		t.Fatal(err)
	}
	if b2.Seq() != 7 || b2.Count() != 2 {
		t.Fatalf("decoded seq=%d count=%d", b2.Seq(), b2.Count())
	}
}

func TestEmptyBatch(t *testing.T) {
	b := New()
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("new batch should be empty")
	}
	if err := b.Iterate(func(Op) error { t.Fatal("no ops expected"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	b := New()
	b.Set([]byte("k"), []byte("v"))
	b.SetSeq(9)
	b.Reset()
	if !b.Empty() || b.Seq() != 0 || b.Size() != 12 {
		t.Fatalf("reset left state: count=%d seq=%d size=%d", b.Count(), b.Seq(), b.Size())
	}
}

func TestAppendGroupCommit(t *testing.T) {
	b1 := New()
	b1.Set([]byte("a"), []byte("1"))
	b2 := New()
	b2.Delete([]byte("b"))
	b2.Set([]byte("c"), []byte("3"))

	b1.Append(b2)
	b1.SetSeq(50)
	if b1.Count() != 3 {
		t.Fatalf("count = %d", b1.Count())
	}
	var seqs []uint64
	b1.Iterate(func(op Op) error { seqs = append(seqs, op.Seq); return nil })
	if fmt.Sprint(seqs) != "[50 51 52]" {
		t.Fatalf("seqs = %v", seqs)
	}
}

func TestCorruptPayloads(t *testing.T) {
	if _, err := FromPayload([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload should fail")
	}
	b := New()
	b.Set([]byte("key"), []byte("value"))
	p := append([]byte(nil), b.Payload()...)
	// Truncate mid-record.
	b3, _ := FromPayload(p[:len(p)-3])
	if err := b3.Iterate(func(Op) error { return nil }); err == nil {
		t.Fatal("truncated record should fail")
	}
	// Unknown kind.
	p2 := append([]byte(nil), b.Payload()...)
	p2[12] = 99
	b4, _ := FromPayload(p2)
	if err := b4.Iterate(func(Op) error { return nil }); err == nil {
		t.Fatal("unknown kind should fail")
	}
	// Count mismatch.
	p3 := append([]byte(nil), b.Payload()...)
	p3[8] = 5
	b5, _ := FromPayload(p3)
	if err := b5.Iterate(func(Op) error { return nil }); err == nil {
		t.Fatal("count mismatch should fail")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	type kv struct {
		Key, Val []byte
		Del      bool
	}
	f := func(ops []kv, seq uint32) bool {
		b := New()
		for _, o := range ops {
			if o.Del {
				b.Delete(o.Key)
			} else {
				b.Set(o.Key, o.Val)
			}
		}
		b.SetSeq(uint64(seq))
		dec, err := FromPayload(b.Payload())
		if err != nil {
			return false
		}
		i := 0
		err = dec.Iterate(func(op Op) error {
			o := ops[i]
			i++
			if op.Seq != uint64(seq)+uint64(i-1) {
				return fmt.Errorf("seq")
			}
			if o.Del {
				if op.Kind != keys.KindDelete || !bytes.Equal(op.Key, o.Key) {
					return fmt.Errorf("del mismatch")
				}
			} else {
				if op.Kind != keys.KindSet || !bytes.Equal(op.Key, o.Key) || !bytes.Equal(op.Value, o.Val) {
					return fmt.Errorf("set mismatch")
				}
			}
			return nil
		})
		return err == nil && i == len(ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
