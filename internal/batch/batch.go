// Package batch implements the atomic write-batch encoding shared by the
// write path and the write-ahead log. The wire format follows RocksDB:
//
//	| seq uint64 LE | count uint32 LE | record* |
//	record: kind(1) | varint keyLen | key | [varint valLen | value]   (value only for SET)
//
// A batch is assigned its base sequence number at commit time; record i in
// the batch carries sequence seq+i.
package batch

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rocksmash/internal/keys"
)

const headerLen = 12

// ErrCorrupt reports a malformed batch payload.
var ErrCorrupt = errors.New("batch: corrupt payload")

// Batch accumulates writes to be applied atomically.
type Batch struct {
	data []byte
}

// New returns an empty batch.
func New() *Batch {
	return &Batch{data: make([]byte, headerLen, headerLen+64)}
}

// FromPayload wraps an encoded payload (e.g. read back from the WAL).
func FromPayload(p []byte) (*Batch, error) {
	if len(p) < headerLen {
		return nil, ErrCorrupt
	}
	return &Batch{data: p}, nil
}

// Set queues a key/value write.
func (b *Batch) Set(key, value []byte) {
	b.data = append(b.data, byte(keys.KindSet))
	b.data = binary.AppendUvarint(b.data, uint64(len(key)))
	b.data = append(b.data, key...)
	b.data = binary.AppendUvarint(b.data, uint64(len(value)))
	b.data = append(b.data, value...)
	b.setCount(b.Count() + 1)
}

// Delete queues a point tombstone.
func (b *Batch) Delete(key []byte) {
	b.data = append(b.data, byte(keys.KindDelete))
	b.data = binary.AppendUvarint(b.data, uint64(len(key)))
	b.data = append(b.data, key...)
	b.setCount(b.Count() + 1)
}

// Count returns the number of queued operations.
func (b *Batch) Count() uint32 { return binary.LittleEndian.Uint32(b.data[8:12]) }

func (b *Batch) setCount(n uint32) { binary.LittleEndian.PutUint32(b.data[8:12], n) }

// Seq returns the base sequence number stamped on the batch.
func (b *Batch) Seq() uint64 { return binary.LittleEndian.Uint64(b.data[:8]) }

// SetSeq stamps the base sequence number; called by the commit path.
func (b *Batch) SetSeq(seq uint64) { binary.LittleEndian.PutUint64(b.data[:8], seq) }

// Payload returns the encoded bytes, suitable for a WAL record.
func (b *Batch) Payload() []byte { return b.data }

// Size returns the encoded size in bytes.
func (b *Batch) Size() int { return len(b.data) }

// Empty reports whether no operations are queued.
func (b *Batch) Empty() bool { return b.Count() == 0 }

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.data = b.data[:headerLen]
	for i := range b.data {
		b.data[i] = 0
	}
}

// Append concatenates other's operations onto b (used for group commit).
func (b *Batch) Append(other *Batch) {
	n := b.Count() + other.Count()
	b.data = append(b.data, other.data[headerLen:]...)
	b.setCount(n)
}

// Op is one decoded operation.
type Op struct {
	Kind  keys.Kind
	Seq   uint64
	Key   []byte
	Value []byte
}

// Iterate calls fn for every operation with its assigned sequence number.
// It stops early and returns fn's error if non-nil, or ErrCorrupt on a
// malformed payload.
func (b *Batch) Iterate(fn func(op Op) error) error {
	p := b.data[headerLen:]
	seq := b.Seq()
	want := b.Count()
	var n uint32
	for len(p) > 0 {
		kind := keys.Kind(p[0])
		p = p[1:]
		klen, sz := binary.Uvarint(p)
		if sz <= 0 || uint64(len(p)-sz) < klen {
			return ErrCorrupt
		}
		key := p[sz : sz+int(klen)]
		p = p[sz+int(klen):]
		var val []byte
		switch kind {
		case keys.KindSet:
			vlen, sz := binary.Uvarint(p)
			if sz <= 0 || uint64(len(p)-sz) < vlen {
				return ErrCorrupt
			}
			val = p[sz : sz+int(vlen)]
			p = p[sz+int(vlen):]
		case keys.KindDelete:
		default:
			return fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
		}
		if err := fn(Op{Kind: kind, Seq: seq + uint64(n), Key: key, Value: val}); err != nil {
			return err
		}
		n++
	}
	if n != want {
		return fmt.Errorf("%w: count %d != header %d", ErrCorrupt, n, want)
	}
	return nil
}

// MaxSeq returns the sequence of the batch's final operation. Only
// meaningful after SetSeq on a non-empty batch.
func (b *Batch) MaxSeq() uint64 {
	if b.Count() == 0 {
		return b.Seq()
	}
	return b.Seq() + uint64(b.Count()) - 1
}

// SeqRange returns the inclusive sequence span the batch covers. Only
// meaningful after SetSeq; the commit pipeline uses it to tag the batch's
// WAL entry.
func (b *Batch) SeqRange() (minSeq, maxSeq uint64) {
	return b.Seq(), b.MaxSeq()
}
