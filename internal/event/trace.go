package event

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Record is one line of a JSONL trace: a wall-clock timestamp, the event
// type, and the event payload.
type Record struct {
	// TS is the event time in nanoseconds since the Unix epoch.
	TS   int64           `json:"ts"`
	Type Type            `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Time returns the record's timestamp.
func (r Record) Time() time.Time { return time.Unix(0, r.TS) }

// Decode unmarshals the payload into its typed event struct, returned by
// value (e.g. FlushEnd, not *FlushEnd). An unknown type is an error for the
// record, not the stream, so traces stay partially decodable as payloads
// evolve.
func (r Record) Decode() (any, error) {
	var p any
	switch r.Type {
	case TFlushBegin:
		p = &FlushBegin{}
	case TFlushEnd:
		p = &FlushEnd{}
	case TCompactionBegin:
		p = &CompactionBegin{}
	case TCompactionEnd:
		p = &CompactionEnd{}
	case TTableUploaded:
		p = &TableUploaded{}
	case TTableDeleted:
		p = &TableDeleted{}
	case TWriteStallBegin:
		p = &WriteStallBegin{}
	case TWriteStallEnd:
		p = &WriteStallEnd{}
	case TCommitGroup:
		p = &CommitGroup{}
	case TPCacheAdmit:
		p = &PCacheAdmit{}
	case TPCacheEvict:
		p = &PCacheEvict{}
	case TCloudRetry:
		p = &CloudRetry{}
	case TBreakerState:
		p = &BreakerState{}
	case TSlowRead:
		p = &SlowRead{}
	case TCorruptionDetected:
		p = &CorruptionDetected{}
	case TCorruptionRepaired:
		p = &CorruptionRepaired{}
	case TViewBuilt:
		p = &ViewBuilt{}
	case TIncidentTriggered:
		p = &IncidentTriggered{}
	default:
		return nil, fmt.Errorf("event: unknown trace record type %q", r.Type)
	}
	if err := json.Unmarshal(r.Data, p); err != nil {
		return nil, err
	}
	// Return the struct by value so consumers type-switch without pointers.
	switch e := p.(type) {
	case *FlushBegin:
		return *e, nil
	case *FlushEnd:
		return *e, nil
	case *CompactionBegin:
		return *e, nil
	case *CompactionEnd:
		return *e, nil
	case *TableUploaded:
		return *e, nil
	case *TableDeleted:
		return *e, nil
	case *WriteStallBegin:
		return *e, nil
	case *WriteStallEnd:
		return *e, nil
	case *CommitGroup:
		return *e, nil
	case *PCacheAdmit:
		return *e, nil
	case *PCacheEvict:
		return *e, nil
	case *CloudRetry:
		return *e, nil
	case *BreakerState:
		return *e, nil
	case *CorruptionDetected:
		return *e, nil
	case *CorruptionRepaired:
		return *e, nil
	case *ViewBuilt:
		return *e, nil
	case *IncidentTriggered:
		return *e, nil
	default:
		return *p.(*SlowRead), nil
	}
}

// TraceWriter is a Listener that appends every event as one JSON line.
// It is safe for concurrent use. Close flushes buffered records.
type TraceWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer // underlying file, when owned
	err error     // first write failure; subsequent events are dropped

	// Size-based rotation (only when the writer owns a file it created via
	// CreateTraceRotating): once the live file reaches rotateBytes, it is
	// renamed to path.1 (older generations shift to path.2..path.keep, the
	// oldest deleted) and a fresh file opened. Rotation happens between
	// records, under mu, so no JSON line is ever split across files.
	path        string
	rotateBytes int64
	keep        int
	written     int64
}

// NewTraceWriter traces onto w. The caller owns w's lifetime; Close only
// flushes.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{bw: bufio.NewWriter(w)}
}

// CreateTrace creates (truncating) a JSONL trace file at path, without
// rotation: the file grows unboundedly.
func CreateTrace(path string) (*TraceWriter, error) {
	return CreateTraceRotating(path, 0, 0)
}

// CreateTraceRotating creates a JSONL trace file at path that rotates once
// it reaches rotateBytes: the live file becomes path.1, path.1 becomes
// path.2, and so on up to keep retained generations (the oldest is
// deleted). rotateBytes <= 0 disables rotation; keep < 1 retains one
// rotated file. Rotation is atomic with respect to records — a line is
// never torn across files.
func CreateTraceRotating(path string, rotateBytes int64, keep int) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTraceWriter(f)
	t.c = f
	if rotateBytes > 0 {
		t.path = path
		t.rotateBytes = rotateBytes
		t.keep = max(keep, 1)
	}
	return t, nil
}

// rotate shifts the retained generations and reopens a fresh live file.
// Called with mu held, between complete records.
func (t *TraceWriter) rotate() {
	if err := t.bw.Flush(); err != nil {
		t.err = err
		return
	}
	if err := t.c.Close(); err != nil {
		t.err = err
		return
	}
	t.c = nil
	os.Remove(fmt.Sprintf("%s.%d", t.path, t.keep))
	for i := t.keep - 1; i >= 1; i-- {
		os.Rename(fmt.Sprintf("%s.%d", t.path, i), fmt.Sprintf("%s.%d", t.path, i+1))
	}
	if err := os.Rename(t.path, t.path+".1"); err != nil {
		t.err = err
		return
	}
	f, err := os.Create(t.path)
	if err != nil {
		t.err = err
		return
	}
	t.c = f
	t.bw = bufio.NewWriter(f)
	t.written = 0
}

// Close flushes buffered records and closes the file when owned. It returns
// the first error the writer encountered.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.c = nil
	}
	return t.err
}

// Err returns the first write failure, if any.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *TraceWriter) emit(typ Type, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	line, err := json.Marshal(Record{TS: time.Now().UnixNano(), Type: typ, Data: data})
	if err != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.bw.Write(line); err != nil {
		t.err = err
		return
	}
	if err := t.bw.WriteByte('\n'); err != nil {
		t.err = err
		return
	}
	if t.rotateBytes > 0 {
		t.written += int64(len(line)) + 1
		if t.written >= t.rotateBytes {
			t.rotate()
		}
	}
}

func (t *TraceWriter) OnFlushBegin(e FlushBegin)           { t.emit(TFlushBegin, e) }
func (t *TraceWriter) OnFlushEnd(e FlushEnd)               { t.emit(TFlushEnd, e) }
func (t *TraceWriter) OnCompactionBegin(e CompactionBegin) { t.emit(TCompactionBegin, e) }
func (t *TraceWriter) OnCompactionEnd(e CompactionEnd)     { t.emit(TCompactionEnd, e) }
func (t *TraceWriter) OnTableUploaded(e TableUploaded)     { t.emit(TTableUploaded, e) }
func (t *TraceWriter) OnTableDeleted(e TableDeleted)       { t.emit(TTableDeleted, e) }
func (t *TraceWriter) OnWriteStallBegin(e WriteStallBegin) { t.emit(TWriteStallBegin, e) }
func (t *TraceWriter) OnWriteStallEnd(e WriteStallEnd)     { t.emit(TWriteStallEnd, e) }
func (t *TraceWriter) OnCommitGroup(e CommitGroup)         { t.emit(TCommitGroup, e) }
func (t *TraceWriter) OnPCacheAdmit(e PCacheAdmit)         { t.emit(TPCacheAdmit, e) }
func (t *TraceWriter) OnPCacheEvict(e PCacheEvict)         { t.emit(TPCacheEvict, e) }
func (t *TraceWriter) OnCloudRetry(e CloudRetry)           { t.emit(TCloudRetry, e) }
func (t *TraceWriter) OnBreakerState(e BreakerState)       { t.emit(TBreakerState, e) }
func (t *TraceWriter) OnSlowRead(e SlowRead)               { t.emit(TSlowRead, e) }

func (t *TraceWriter) OnCorruptionDetected(e CorruptionDetected) { t.emit(TCorruptionDetected, e) }
func (t *TraceWriter) OnCorruptionRepaired(e CorruptionRepaired) { t.emit(TCorruptionRepaired, e) }
func (t *TraceWriter) OnViewBuilt(e ViewBuilt)                   { t.emit(TViewBuilt, e) }
func (t *TraceWriter) OnIncidentTriggered(e IncidentTriggered)   { t.emit(TIncidentTriggered, e) }

// ReadTrace decodes a JSONL trace stream. Blank lines are skipped; a
// malformed line aborts with its line number.
func ReadTrace(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("event: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadTraceFile decodes the JSONL trace at path.
func ReadTraceFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// Recorder is a Listener that appends every event to an in-memory log, for
// tests and tools. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Recorded
}

// Recorded is one captured event.
type Recorded struct {
	Type    Type
	Payload any
}

// Events returns a copy of the captured log in firing order.
func (r *Recorder) Events() []Recorded {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Recorded(nil), r.events...)
}

// Count returns how many events of type t were captured.
func (r *Recorder) Count(t Type) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Type == t {
			n++
		}
	}
	return n
}

// First returns the first captured event of type t.
func (r *Recorder) First(t Type) (Recorded, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.events {
		if e.Type == t {
			return e, true
		}
	}
	return Recorded{}, false
}

func (r *Recorder) add(t Type, payload any) {
	r.mu.Lock()
	r.events = append(r.events, Recorded{Type: t, Payload: payload})
	r.mu.Unlock()
}

func (r *Recorder) OnFlushBegin(e FlushBegin)           { r.add(TFlushBegin, e) }
func (r *Recorder) OnFlushEnd(e FlushEnd)               { r.add(TFlushEnd, e) }
func (r *Recorder) OnCompactionBegin(e CompactionBegin) { r.add(TCompactionBegin, e) }
func (r *Recorder) OnCompactionEnd(e CompactionEnd)     { r.add(TCompactionEnd, e) }
func (r *Recorder) OnTableUploaded(e TableUploaded)     { r.add(TTableUploaded, e) }
func (r *Recorder) OnTableDeleted(e TableDeleted)       { r.add(TTableDeleted, e) }
func (r *Recorder) OnWriteStallBegin(e WriteStallBegin) { r.add(TWriteStallBegin, e) }
func (r *Recorder) OnWriteStallEnd(e WriteStallEnd)     { r.add(TWriteStallEnd, e) }
func (r *Recorder) OnCommitGroup(e CommitGroup)         { r.add(TCommitGroup, e) }
func (r *Recorder) OnPCacheAdmit(e PCacheAdmit)         { r.add(TPCacheAdmit, e) }
func (r *Recorder) OnPCacheEvict(e PCacheEvict)         { r.add(TPCacheEvict, e) }
func (r *Recorder) OnCloudRetry(e CloudRetry)           { r.add(TCloudRetry, e) }
func (r *Recorder) OnBreakerState(e BreakerState)       { r.add(TBreakerState, e) }
func (r *Recorder) OnSlowRead(e SlowRead)               { r.add(TSlowRead, e) }

func (r *Recorder) OnCorruptionDetected(e CorruptionDetected) { r.add(TCorruptionDetected, e) }
func (r *Recorder) OnCorruptionRepaired(e CorruptionRepaired) { r.add(TCorruptionRepaired, e) }
func (r *Recorder) OnViewBuilt(e ViewBuilt)                   { r.add(TViewBuilt, e) }
func (r *Recorder) OnIncidentTriggered(e IncidentTriggered)   { r.add(TIncidentTriggered, e) }
