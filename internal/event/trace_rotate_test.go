package event

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestTraceRotationNeverTearsLine hammers a rotating TraceWriter from many
// goroutines with a tiny rotation threshold, then re-parses the live file
// and every retained generation: each must be a sequence of complete,
// decodable JSON lines — rotation must never split a record across files.
func TestTraceRotationNeverTearsLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	const keep = 3
	tw, err := CreateTraceRotating(path, 2<<10, keep)
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tw.OnCloudRetry(CloudRetry{
					Op:      "put",
					Object:  fmt.Sprintf("tables/%06d-%06d.sst", w, i),
					Attempt: i,
					Err:     "transient failure injected by the rotation hammer",
				})
			}
		}(w)
	}
	wg.Wait()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	total := 0
	files := []string{path}
	for i := 1; i <= keep; i++ {
		files = append(files, fmt.Sprintf("%s.%d", path, i))
	}
	rotated := 0
	for _, f := range files {
		if _, err := os.Stat(f); err != nil {
			continue
		}
		rotated++
		recs, err := ReadTraceFile(f)
		if err != nil {
			t.Fatalf("%s: torn or malformed trace: %v", f, err)
		}
		for _, rec := range recs {
			if _, err := rec.Decode(); err != nil {
				t.Fatalf("%s: undecodable record: %v", f, err)
			}
			total++
		}
	}
	if rotated < 2 {
		t.Fatalf("expected rotation to produce at least one retained generation, saw %d files", rotated)
	}
	// Old generations are deleted, so at most (keep+1) files' worth of
	// records survive — but never more than were written, and never zero.
	if total == 0 || total > writers*perWriter {
		t.Fatalf("recovered %d records, want (0, %d]", total, writers*perWriter)
	}
	// The retained-file cap holds: no generation past .keep may exist.
	if _, err := os.Stat(fmt.Sprintf("%s.%d", path, keep+1)); err == nil {
		t.Fatalf("generation beyond the retained cap exists: %s.%d", path, keep+1)
	}
}

// TestTraceRotationDisabled verifies CreateTrace (no rotation) keeps one
// unbounded file and produces no .1 generation.
func TestTraceRotationDisabled(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	tw, err := CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tw.OnFlushBegin(FlushBegin{Reason: "memtable"})
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 500 {
		t.Fatalf("got %d records, want 500", len(recs))
	}
	if _, err := os.Stat(path + ".1"); err == nil {
		t.Fatal("unexpected rotated generation for a non-rotating trace")
	}
}
