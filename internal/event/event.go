// Package event defines the engine's observability layer: typed lifecycle
// events with structured payloads, modelled on RocksDB's EventListener
// subsystem. The DB fires events at flush, compaction, upload, write-stall,
// and persistent-cache transitions; listeners observe where time and bytes
// go without touching the engine's hot paths.
//
// Contract for implementations:
//
//   - Listeners must be safe for concurrent use: events fire from the write
//     path, the background flush/compaction goroutine, and upload workers
//     simultaneously.
//   - Listeners are invoked outside the engine's internal locks, so they may
//     read engine state (Get, Metrics, DumpStats) safely. They must not call
//     back into the write path (Put, Write, Flush, CompactAll): a listener
//     blocking the background goroutine on write progress deadlocks.
//   - Callbacks run synchronously on engine goroutines; a slow listener
//     slows the operation that fired it. Offload heavy work.
package event

import "time"

// Type names an event kind; it is the "type" field of trace records.
type Type string

// Event types, in rough lifecycle order.
const (
	TFlushBegin      Type = "flush_begin"
	TFlushEnd        Type = "flush_end"
	TCompactionBegin Type = "compaction_begin"
	TCompactionEnd   Type = "compaction_end"
	TTableUploaded   Type = "table_uploaded"
	TTableDeleted    Type = "table_deleted"
	TWriteStallBegin Type = "write_stall_begin"
	TWriteStallEnd   Type = "write_stall_end"
	TCommitGroup     Type = "commit_group"
	TPCacheAdmit     Type = "pcache_admit"
	TPCacheEvict     Type = "pcache_evict"
	TCloudRetry      Type = "cloud_retry"
	TBreakerState    Type = "breaker_state"
	TSlowRead        Type = "slow_read"

	TCorruptionDetected Type = "corruption_detected"
	TCorruptionRepaired Type = "corruption_repaired"

	TViewBuilt Type = "view_built"

	TIncidentTriggered Type = "incident_triggered"
)

// FlushBegin fires when a sealed memtable (or recovery memtables) starts
// flushing to an L0 table.
type FlushBegin struct {
	// Reason is "memtable" for a sealed memtable flush and "recovery" for a
	// flush draining only WAL-recovered memtables.
	Reason string `json:"reason"`
}

// FlushEnd fires after the flush output is durable and installed.
type FlushEnd struct {
	Table    uint64        `json:"table"`
	Bytes    int64         `json:"bytes"`
	Tier     string        `json:"tier"`
	Duration time.Duration `json:"dur"`
}

// CompactionBegin fires when a compaction unit starts merging.
type CompactionBegin struct {
	Level       int   `json:"level"`
	OutputLevel int   `json:"output_level"`
	Inputs      int   `json:"inputs"` // input files, both levels
	InputBytes  int64 `json:"input_bytes"`
}

// CompactionEnd fires after the outputs are installed and the inputs
// retired. The stage durations decompose where the compaction spent time:
// ReadDur is time blocked fetching input blocks (a subset of MergeDur, the
// merge loop's wall time), UploadDur is the summed per-table upload time
// (it can exceed Duration when uploads overlap the merge), and InstallDur
// covers the manifest edit plus input retirement.
type CompactionEnd struct {
	Level         int           `json:"level"`
	OutputLevel   int           `json:"output_level"`
	Inputs        int           `json:"inputs"`
	Outputs       int           `json:"outputs"`
	InputBytes    int64         `json:"input_bytes"`
	OutputBytes   int64         `json:"output_bytes"`
	DroppedKeys   int64         `json:"dropped_keys"`
	PrefetchSpans int64         `json:"prefetch_spans"`
	ReadDur       time.Duration `json:"read_dur"`
	MergeDur      time.Duration `json:"merge_dur"`
	UploadDur     time.Duration `json:"upload_dur"`
	InstallDur    time.Duration `json:"install_dur"`
	Duration      time.Duration `json:"dur"`
}

// TableUploaded fires when a built table object is durable in its tier.
type TableUploaded struct {
	Table    uint64        `json:"table"`
	Tier     string        `json:"tier"`
	Bytes    int64         `json:"bytes"`
	Attempts int           `json:"attempts"`
	Duration time.Duration `json:"dur"`
	// Pending marks a degraded-mode landing: the table belongs on the cloud
	// tier but was written to local storage because the cloud was
	// unreachable. A second event (Pending false, tier "cloud") fires when
	// the drainer migrates it.
	Pending bool `json:"pending,omitempty"`
}

// TableDeleted fires when a compaction input object is removed.
type TableDeleted struct {
	Table uint64 `json:"table"`
	Tier  string `json:"tier"`
}

// WriteStallBegin fires when the write path starts waiting on background
// work. Reason is "memtable" (sealed memtable still flushing) or "l0"
// (too many L0 files; compaction must catch up).
type WriteStallBegin struct {
	Reason string `json:"reason"`
}

// WriteStallEnd fires when the stalled write proceeds.
type WriteStallEnd struct {
	Reason   string        `json:"reason"`
	Duration time.Duration `json:"dur"`
}

// CommitGroup fires when a commit-pipeline leader finishes the WAL write
// for one coalesced group of write batches. Batches is the group size (1
// under a single writer), Ops and Bytes sum the member batches, Synced
// reports whether the group paid a durability barrier (one fsync for the
// whole group — Batches-1 syncs amortized away), and Duration is the
// vectored WAL append including that barrier.
type CommitGroup struct {
	Batches  int           `json:"batches"`
	Ops      int64         `json:"ops"`
	Bytes    int64         `json:"bytes"`
	Synced   bool          `json:"synced,omitempty"`
	Duration time.Duration `json:"dur"`
}

// PCacheAdmit fires when the persistent cache admits blocks of a file. Bulk
// admissions (readahead, compaction warming) report one event per batch.
type PCacheAdmit struct {
	File   uint64 `json:"file"`
	Blocks int    `json:"blocks"`
	Bytes  int64  `json:"bytes"`
}

// PCacheEvict fires when cached blocks of a file are discarded. Reason is
// "clock" (region reclaimed by the CLOCK policy), "lru" (generic-cache LRU
// eviction), or "drop-file" (the file was deleted by compaction).
type PCacheEvict struct {
	File   uint64 `json:"file"`
	Blocks int    `json:"blocks"`
	Bytes  int64  `json:"bytes"`
	Reason string `json:"reason"`
}

// CloudRetry fires when a cloud request fails and will be retried.
type CloudRetry struct {
	Op      string `json:"op"`
	Object  string `json:"object"`
	Attempt int    `json:"attempt"`
	Err     string `json:"err"`
}

// BreakerState fires when a circuit breaker transitions (for example
// "closed" -> "open" when an outage is detected, or "half-open" -> "closed"
// when a probe succeeds). Tier identifies which breaker moved: "cloud"
// (the cloud-outage breaker) or "local" (the local-media breaker guarding
// disk-full / fsync-EIO degradation). Empty means cloud, for traces written
// before the local breaker existed.
type BreakerState struct {
	From string `json:"from"`
	To   string `json:"to"`
	Tier string `json:"tier,omitempty"`
}

// CorruptionDetected fires when a checksum or structural verification
// failure is classified on a local artifact — by the background scrubber or
// by an in-flight read. Artifact is the artifact class: "sstable-block",
// "sstable-meta", "sidecar", "wal-segment", "pcache". Object is the storage
// object name; File the table/segment number when applicable.
type CorruptionDetected struct {
	Artifact string `json:"artifact"`
	Object   string `json:"object"`
	File     uint64 `json:"file,omitempty"`
	Err      string `json:"err"`
}

// CorruptionRepaired fires when a damaged local artifact has been
// re-materialized from its cloud source of truth. Source names where the
// clean copy came from ("cloud-object", "cloud-mirror", "wal-backup",
// "meta-tail").
type CorruptionRepaired struct {
	Artifact string        `json:"artifact"`
	Object   string        `json:"object"`
	File     uint64        `json:"file,omitempty"`
	Source   string        `json:"source"`
	Duration time.Duration `json:"dur"`
}

// ViewBuilt fires when a background builder finishes a level's sorted-view
// sidecar (the globally sorted block-cursor run that accelerates range
// scans). Members is the level's table count, Entries the cursor count,
// Bytes the encoded sidecar size.
type ViewBuilt struct {
	Level    int           `json:"level"`
	Members  int           `json:"members"`
	Entries  int           `json:"entries"`
	Bytes    int           `json:"bytes"`
	Duration time.Duration `json:"dur"`
}

// SlowRead reports one of the worst timed Gets of a tracking interval,
// with its full read-path attribution (see internal/readprof). The
// per-tier arrays are indexed in readprof.Tier order: block cache,
// persistent cache, local disk, cloud.
type SlowRead struct {
	// Key is the user key (truncated to a prefix when long).
	Key      string        `json:"key"`
	Duration time.Duration `json:"dur"`
	// LevelsProbed counts distinct levels consulted including the memtable;
	// LevelServed is the LSM level that resolved the key, -1 for a memtable
	// hit, -2 for not found.
	LevelsProbed  int              `json:"levels_probed"`
	LevelServed   int              `json:"level_served"`
	Tables        int              `json:"tables"`
	BloomChecked  int              `json:"bloom_checked,omitempty"`
	BloomNegative int              `json:"bloom_negative,omitempty"`
	Blocks        [4]int           `json:"blocks"`
	Bytes         [4]int64         `json:"bytes"`
	FetchDur      [4]time.Duration `json:"fetch_dur"`
	// Path renders the serve path, e.g. "mem", "L3:pcache+cloud".
	Path string `json:"path"`
}

// IncidentTriggered fires when a flight-recorder detector rule crosses its
// threshold and opens an incident. Rule is the detector identifier (e.g.
// "cloud-outage"), Severity "warn" or "critical", Value/Threshold the
// observation that crossed, and Bundle the postmortem bundle directory when
// one was written ("" when bundling was rate-limited or disabled).
type IncidentTriggered struct {
	Rule      string  `json:"rule"`
	Severity  string  `json:"severity"`
	Reason    string  `json:"reason"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Bundle    string  `json:"bundle,omitempty"`
}

// Listener receives engine lifecycle events. Embed NopListener to implement
// only the methods of interest.
type Listener interface {
	OnFlushBegin(FlushBegin)
	OnFlushEnd(FlushEnd)
	OnCompactionBegin(CompactionBegin)
	OnCompactionEnd(CompactionEnd)
	OnTableUploaded(TableUploaded)
	OnTableDeleted(TableDeleted)
	OnWriteStallBegin(WriteStallBegin)
	OnWriteStallEnd(WriteStallEnd)
	OnCommitGroup(CommitGroup)
	OnPCacheAdmit(PCacheAdmit)
	OnPCacheEvict(PCacheEvict)
	OnCloudRetry(CloudRetry)
	OnBreakerState(BreakerState)
	OnSlowRead(SlowRead)
	OnCorruptionDetected(CorruptionDetected)
	OnCorruptionRepaired(CorruptionRepaired)
	OnViewBuilt(ViewBuilt)
	OnIncidentTriggered(IncidentTriggered)
}

// NopListener implements Listener with no-ops; embed it in partial
// implementations so they stay compatible as events are added.
type NopListener struct{}

func (NopListener) OnFlushBegin(FlushBegin)           {}
func (NopListener) OnFlushEnd(FlushEnd)               {}
func (NopListener) OnCompactionBegin(CompactionBegin) {}
func (NopListener) OnCompactionEnd(CompactionEnd)     {}
func (NopListener) OnTableUploaded(TableUploaded)     {}
func (NopListener) OnTableDeleted(TableDeleted)       {}
func (NopListener) OnWriteStallBegin(WriteStallBegin) {}
func (NopListener) OnWriteStallEnd(WriteStallEnd)     {}
func (NopListener) OnCommitGroup(CommitGroup)         {}
func (NopListener) OnPCacheAdmit(PCacheAdmit)         {}
func (NopListener) OnPCacheEvict(PCacheEvict)         {}
func (NopListener) OnCloudRetry(CloudRetry)           {}
func (NopListener) OnBreakerState(BreakerState)       {}
func (NopListener) OnSlowRead(SlowRead)               {}

func (NopListener) OnCorruptionDetected(CorruptionDetected) {}
func (NopListener) OnCorruptionRepaired(CorruptionRepaired) {}
func (NopListener) OnViewBuilt(ViewBuilt)                   {}
func (NopListener) OnIncidentTriggered(IncidentTriggered)   {}

// multi fans every event out to each listener in order.
type multi []Listener

// Multi combines listeners into one that dispatches to all of them, in
// argument order. Nil entries are skipped; a single survivor is returned
// unwrapped, and an empty set yields nil (no listener).
func Multi(ls ...Listener) Listener {
	var out multi
	for _, l := range ls {
		if l != nil {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

func (m multi) OnFlushBegin(e FlushBegin) {
	for _, l := range m {
		l.OnFlushBegin(e)
	}
}
func (m multi) OnFlushEnd(e FlushEnd) {
	for _, l := range m {
		l.OnFlushEnd(e)
	}
}
func (m multi) OnCompactionBegin(e CompactionBegin) {
	for _, l := range m {
		l.OnCompactionBegin(e)
	}
}
func (m multi) OnCompactionEnd(e CompactionEnd) {
	for _, l := range m {
		l.OnCompactionEnd(e)
	}
}
func (m multi) OnTableUploaded(e TableUploaded) {
	for _, l := range m {
		l.OnTableUploaded(e)
	}
}
func (m multi) OnTableDeleted(e TableDeleted) {
	for _, l := range m {
		l.OnTableDeleted(e)
	}
}
func (m multi) OnWriteStallBegin(e WriteStallBegin) {
	for _, l := range m {
		l.OnWriteStallBegin(e)
	}
}
func (m multi) OnWriteStallEnd(e WriteStallEnd) {
	for _, l := range m {
		l.OnWriteStallEnd(e)
	}
}
func (m multi) OnCommitGroup(e CommitGroup) {
	for _, l := range m {
		l.OnCommitGroup(e)
	}
}
func (m multi) OnPCacheAdmit(e PCacheAdmit) {
	for _, l := range m {
		l.OnPCacheAdmit(e)
	}
}
func (m multi) OnPCacheEvict(e PCacheEvict) {
	for _, l := range m {
		l.OnPCacheEvict(e)
	}
}
func (m multi) OnCloudRetry(e CloudRetry) {
	for _, l := range m {
		l.OnCloudRetry(e)
	}
}
func (m multi) OnBreakerState(e BreakerState) {
	for _, l := range m {
		l.OnBreakerState(e)
	}
}
func (m multi) OnSlowRead(e SlowRead) {
	for _, l := range m {
		l.OnSlowRead(e)
	}
}
func (m multi) OnCorruptionDetected(e CorruptionDetected) {
	for _, l := range m {
		l.OnCorruptionDetected(e)
	}
}
func (m multi) OnCorruptionRepaired(e CorruptionRepaired) {
	for _, l := range m {
		l.OnCorruptionRepaired(e)
	}
}
func (m multi) OnViewBuilt(e ViewBuilt) {
	for _, l := range m {
		l.OnViewBuilt(e)
	}
}
func (m multi) OnIncidentTriggered(e IncidentTriggered) {
	for _, l := range m {
		l.OnIncidentTriggered(e)
	}
}
