package event

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// fireAll sends one event of every type to l and returns the payloads in
// firing order, which doubles as the expected decode order.
func fireAll(l Listener) []any {
	events := []any{
		FlushBegin{Reason: "memtable"},
		FlushEnd{Table: 7, Bytes: 4096, Tier: "local", Duration: 3 * time.Millisecond},
		CompactionBegin{Level: 0, OutputLevel: 1, Inputs: 4, InputBytes: 1 << 20},
		CompactionEnd{
			Level: 0, OutputLevel: 1, Inputs: 4, Outputs: 2,
			InputBytes: 1 << 20, OutputBytes: 900 << 10, DroppedKeys: 12,
			PrefetchSpans: 3, ReadDur: time.Millisecond, MergeDur: 2 * time.Millisecond,
			UploadDur: 4 * time.Millisecond, InstallDur: time.Microsecond,
			Duration: 8 * time.Millisecond,
		},
		TableUploaded{Table: 9, Tier: "cloud", Bytes: 1 << 19, Attempts: 2, Duration: 5 * time.Millisecond},
		TableDeleted{Table: 3, Tier: "cloud"},
		WriteStallBegin{Reason: "l0"},
		WriteStallEnd{Reason: "l0", Duration: 40 * time.Millisecond},
		PCacheAdmit{File: 9, Blocks: 32, Bytes: 128 << 10},
		PCacheEvict{File: 2, Blocks: 16, Bytes: 64 << 10, Reason: "clock"},
		CloudRetry{Op: "put", Object: "tables/000009.sst", Attempt: 1, Err: "transient"},
	}
	for _, e := range events {
		switch e := e.(type) {
		case FlushBegin:
			l.OnFlushBegin(e)
		case FlushEnd:
			l.OnFlushEnd(e)
		case CompactionBegin:
			l.OnCompactionBegin(e)
		case CompactionEnd:
			l.OnCompactionEnd(e)
		case TableUploaded:
			l.OnTableUploaded(e)
		case TableDeleted:
			l.OnTableDeleted(e)
		case WriteStallBegin:
			l.OnWriteStallBegin(e)
		case WriteStallEnd:
			l.OnWriteStallEnd(e)
		case PCacheAdmit:
			l.OnPCacheAdmit(e)
		case PCacheEvict:
			l.OnPCacheEvict(e)
		case CloudRetry:
			l.OnCloudRetry(e)
		}
	}
	return events
}

// TestTraceRoundTrip writes one event of every type through a TraceWriter
// and verifies every JSONL record decodes back to the identical payload.
func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	want := fireAll(tw)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.TS == 0 {
			t.Errorf("record %d: zero timestamp", i)
		}
		got, err := rec.Decode()
		if err != nil {
			t.Fatalf("record %d (%s): %v", i, rec.Type, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("record %d (%s):\n got %#v\nwant %#v", i, rec.Type, got, want[i])
		}
	}
}

// TestRecorderCapturesAll verifies the in-memory Recorder sees every event
// in order with its payload intact.
func TestRecorderCapturesAll(t *testing.T) {
	var r Recorder
	want := fireAll(&r)
	got := r.Events()
	if len(got) != len(want) {
		t.Fatalf("recorded %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Payload, want[i]) {
			t.Errorf("event %d (%s): got %#v want %#v", i, got[i].Type, got[i].Payload, want[i])
		}
	}
	if n := r.Count(TFlushEnd); n != 1 {
		t.Errorf("Count(flush_end) = %d, want 1", n)
	}
	if _, ok := r.First(TCompactionEnd); !ok {
		t.Error("First(compaction_end) not found")
	}
}

// TestMulti verifies fan-out, nil skipping, and singleton unwrapping.
func TestMulti(t *testing.T) {
	if got := Multi(); got != nil {
		t.Errorf("Multi() = %v, want nil", got)
	}
	if got := Multi(nil, nil); got != nil {
		t.Errorf("Multi(nil, nil) = %v, want nil", got)
	}
	var a Recorder
	if got := Multi(nil, &a); got != &a {
		t.Errorf("Multi(nil, one) did not unwrap the singleton")
	}
	var b Recorder
	m := Multi(&a, &b)
	m.OnFlushBegin(FlushBegin{Reason: "memtable"})
	if a.Count(TFlushBegin) != 1 || b.Count(TFlushBegin) != 1 {
		t.Errorf("fan-out missed a listener: a=%d b=%d", a.Count(TFlushBegin), b.Count(TFlushBegin))
	}
}

// TestNopListener just exercises the embeddable no-op implementation.
func TestNopListener(t *testing.T) {
	var n NopListener
	fireAll(n)
}
