package flight

import (
	"sync"
	"testing"
	"time"

	"rocksmash/internal/event"
	"rocksmash/internal/vitals"
)

// TestRingOverflowDropsOldest verifies the oldest-dropped contract: after
// writing past capacity, the snapshot is exactly the newest cap entries,
// in order, and Dropped accounts for the rest.
func TestRingOverflowDropsOldest(t *testing.T) {
	r := NewRing(16)
	const total = 100
	for i := 0; i < total; i++ {
		r.Add(event.TFlushBegin, event.FlushBegin{Reason: "memtable"})
	}
	if got := r.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
	if got, want := r.Dropped(), uint64(total-r.Cap()); got != want {
		t.Fatalf("Dropped() = %d, want %d", got, want)
	}
	snap := r.Snapshot()
	if len(snap) != r.Cap() {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), r.Cap())
	}
	for i, e := range snap {
		want := uint64(total - r.Cap() + i)
		if e.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest must be dropped, order kept)", i, e.Seq, want)
		}
	}
}

// TestRingSnapshotOrdered verifies a partially filled ring snapshots in
// sequence order with no gaps.
func TestRingSnapshotOrdered(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 10; i++ {
		r.Add(event.TCommitGroup, event.CommitGroup{Batches: i})
	}
	snap := r.Snapshot()
	if len(snap) != 10 {
		t.Fatalf("snapshot has %d entries, want 10", len(snap))
	}
	for i, e := range snap {
		if e.Seq != uint64(i) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, i)
		}
		if e.Data.(event.CommitGroup).Batches != i {
			t.Fatalf("snapshot[%d] payload mismatch", i)
		}
	}
}

// TestRingHammer races many writers against a slow consumer under -race:
// recording must never block, and every snapshot must be a strictly
// ordered subsequence of the recorded stream.
func TestRingHammer(t *testing.T) {
	r := NewRing(128)
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Slow consumer: snapshots continuously while writers overwrite.
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq <= snap[i-1].Seq {
					t.Errorf("snapshot out of order: seq %d then %d", snap[i-1].Seq, snap[i].Seq)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Add(event.TCloudRetry, event.CloudRetry{Op: "put", Attempt: i})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	consumer.Wait()

	if got := r.Recorded(); got != writers*perWriter {
		t.Fatalf("Recorded() = %d, want %d (a writer blocked or lost a claim)", got, writers*perWriter)
	}
	// Never-blocking sanity: 40k lock-free records shouldn't take seconds
	// even with the consumer racing.
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("hammer took %s: recording appears to block", el)
	}
}

// tick fabricates a vitals sample n ticks (100ms apart) from a base time.
func tick(n int, mut func(*vitals.Sample)) vitals.Sample {
	s := vitals.Sample{UnixNano: int64(1700000000_000_000_000) + int64(n)*int64(100*time.Millisecond)}
	if mut != nil {
		mut(&s)
	}
	return s
}

// TestDetectorBreakerEpisodeFiresOnce drives the cloud-outage rule through
// an open -> half-open -> open flap and verifies hysteresis: one incident
// for the whole episode, re-armed only after the breaker truly closes.
func TestDetectorBreakerEpisodeFiresOnce(t *testing.T) {
	d := NewDetector(DefaultRules(Thresholds{}))
	states := []string{
		"closed", "closed",
		"open", "open", "half-open", "open", "half-open", "open", // one flapping episode
		"closed", "closed", "closed", // recovery
	}
	var fired []Incident
	for i, st := range states {
		fired = append(fired, d.Observe(tick(i, func(s *vitals.Sample) { s.Breaker = st }))...)
	}
	count := 0
	for _, inc := range fired {
		if inc.Rule == RuleCloudOutage {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("flapping episode fired %d cloud-outage incidents, want exactly 1", count)
	}
	if act := d.Active(); len(act) != 0 {
		t.Fatalf("detector still active after recovery: %v", act)
	}
}

// TestDetectorCooldownSuppresses verifies a second episode inside the
// cooldown re-opens silently (suppressed, not fired).
func TestDetectorCooldownSuppresses(t *testing.T) {
	d := NewDetector(DefaultRules(Thresholds{}))
	// Episode 1: two open ticks, then closed long enough to re-arm
	// (ClearTicks=2) but far inside the 1s cooldown (ticks are 100ms).
	seq := []string{"closed", "open", "open", "closed", "closed", "closed", "open", "open"}
	var fired, suppressedAt int
	for i, st := range seq {
		incs := d.Observe(tick(i, func(s *vitals.Sample) { s.Breaker = st }))
		for _, inc := range incs {
			if inc.Rule == RuleCloudOutage {
				fired++
			}
		}
		if d.Suppressed() > 0 && suppressedAt == 0 {
			suppressedAt = i
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d incidents, want 1 (second episode inside cooldown)", fired)
	}
	if d.Suppressed() != 1 {
		t.Fatalf("Suppressed() = %d, want 1", d.Suppressed())
	}
}

// TestDetectorLatencySpike verifies the baseline warmup and the spike
// threshold, and that the active episode freezes its own baseline.
func TestDetectorLatencySpike(t *testing.T) {
	d := NewDetector(DefaultRules(Thresholds{BaselineWarmup: 4}))
	n := 0
	obs := func(p99 time.Duration) []Incident {
		n++
		return d.Observe(tick(n, func(s *vitals.Sample) { s.GetP99Nanos = p99.Nanoseconds() }))
	}
	// Warmup at a calm 1ms baseline: no fire even though 1ms > 0 baseline.
	for i := 0; i < 6; i++ {
		if incs := obs(time.Millisecond); len(incs) != 0 {
			t.Fatalf("fired during warmup: %+v", incs)
		}
	}
	// Spike to 50ms: TriggerTicks=2, so the second spike tick fires.
	if incs := obs(50 * time.Millisecond); len(incs) != 0 {
		t.Fatalf("fired on first spike tick, want hysteresis delay")
	}
	incs := obs(50 * time.Millisecond)
	if len(incs) != 1 || incs[0].Rule != RuleLatencySpike {
		t.Fatalf("want one latency-spike incident, got %+v", incs)
	}
	// The frozen baseline must not have absorbed the spike.
	if base := d.p99Base.Value(); base > 2*float64(time.Millisecond) {
		t.Fatalf("baseline absorbed its own anomaly: %v", time.Duration(int64(base)))
	}
}

// TestDetectorShardSkew verifies the skew rule needs both the ratio and a
// minimum op mass.
func TestDetectorShardSkew(t *testing.T) {
	d := NewDetector(DefaultRules(Thresholds{SkewMinOps: 20}))
	var cum [4]int64
	n := 0
	obs := func(perShard [4]int64) []Incident {
		n++
		for i, v := range perShard {
			cum[i] += v
		}
		ops := append([]int64(nil), cum[:]...)
		return d.Observe(tick(n, func(s *vitals.Sample) { s.ShardOps = ops }))
	}
	// Balanced warmup.
	for i := 0; i < 3; i++ {
		if incs := obs([4]int64{25, 25, 25, 25}); len(incs) != 0 {
			t.Fatalf("fired on balanced load: %+v", incs)
		}
	}
	// All load on shard 0: skew = (100-0)/25 = 4 > 2. TriggerTicks=3.
	var fired []Incident
	for i := 0; i < 4; i++ {
		fired = append(fired, obs([4]int64{100, 0, 0, 0})...)
	}
	count := 0
	for _, inc := range fired {
		if inc.Rule == RuleShardSkew {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("hot-shard storm fired %d skew incidents, want 1", count)
	}
}
