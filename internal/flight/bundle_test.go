package flight

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rocksmash/internal/event"
	"rocksmash/internal/vitals"
)

func testInputs(nano int64) BundleInputs {
	ring := NewRing(64)
	ring.Add(event.TFlushBegin, event.FlushBegin{Reason: "memtable"})
	ring.Add(event.TBreakerState, event.BreakerState{From: "closed", To: "open", Tier: "cloud"})
	ring.Add(event.TCloudRetry, event.CloudRetry{Op: "put", Object: "tables/000001.sst", Attempt: 1, Err: "injected"})
	return BundleInputs{
		Incident: Incident{
			Rule: RuleCloudOutage, Severity: SevCritical,
			Reason: "cloud breaker open", Value: 1, Threshold: 0.5, UnixNano: nano,
		},
		Active:       []string{RuleCloudOutage},
		Counts:       map[string]int64{RuleCloudOutage: 1},
		Events:       ring.Snapshot(),
		Vitals:       []vitals.Sample{{UnixNano: nano - int64(time.Second)}, {UnixNano: nano}},
		MetricsJSON:  []byte(`{"QuarantinedTables": 0, "MisplacedTables": 2}`),
		StatsText:    "** DB Stats **\n",
		ManifestText: "L0: 3 files\n",
	}
}

// TestBundleCrashPointSweep simulates a crash after every possible number
// of written files: in every crashed state the half-written temp directory
// must never be reported as an incident; the final uncrashed write commits
// exactly one complete bundle.
func TestBundleCrashPointSweep(t *testing.T) {
	dir := t.TempDir()
	cfg := BundleConfig{Dir: dir, MaxBundles: 8}
	in := testInputs(time.Now().UnixNano())

	// A full bundle writes 8 files (incident.json, events.jsonl,
	// vitals.json, metrics.json, stats.txt, manifest.txt, goroutines.txt,
	// heap.pprof); simulate a crash after each prefix of them in turn.
	const bundleFiles = 8
	for crash := 1; crash <= bundleFiles; crash++ {
		crashAfterFiles = crash
		if _, err := WriteBundle(cfg, in); err == nil {
			t.Fatalf("crash point %d: WriteBundle succeeded, want simulated crash", crash)
		}
		bundles, err := ListBundles(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(bundles) != 0 {
			t.Fatalf("crash point %d: half-written bundle reported as incident: %+v", crash, bundles)
		}
	}
	crashAfterFiles = 0

	// The clean write commits a complete bundle despite the crash debris.
	path, err := WriteBundle(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := ListBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 || bundles[0].Dir != path {
		t.Fatalf("ListBundles = %+v, want exactly the committed bundle %s", bundles, path)
	}
	for _, f := range []string{"incident.json", "events.jsonl", "vitals.json",
		"metrics.json", "stats.txt", "manifest.txt", "goroutines.txt", "heap.pprof"} {
		if _, err := os.Stat(filepath.Join(path, f)); err != nil {
			t.Fatalf("committed bundle missing %s: %v", f, err)
		}
	}
	// Pruning after the commit removed the crash-abandoned temp dirs.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("stale temp directory survived the commit prune: %s", e.Name())
		}
	}
}

// TestBundleRetentionPrunesOldest verifies MaxBundles keeps only the
// newest bundles.
func TestBundleRetentionPrunesOldest(t *testing.T) {
	dir := t.TempDir()
	cfg := BundleConfig{Dir: dir, MaxBundles: 2}
	base := time.Now().UnixNano()
	for i := 0; i < 4; i++ {
		in := testInputs(base + int64(i)*int64(time.Second))
		if _, err := WriteBundle(cfg, in); err != nil {
			t.Fatal(err)
		}
	}
	bundles, err := ListBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 2 {
		t.Fatalf("retained %d bundles, want 2", len(bundles))
	}
	for _, b := range bundles {
		if b.Manifest.Incident.UnixNano < base+2*int64(time.Second) {
			t.Fatalf("an old bundle survived pruning: %+v", b.Manifest.Incident)
		}
	}
}

// TestBundleEventCap verifies the size cap drops oldest events first and
// records the truncation in the manifest.
func TestBundleEventCap(t *testing.T) {
	dir := t.TempDir()
	in := testInputs(time.Now().UnixNano())
	ring := NewRing(256)
	for i := 0; i < 200; i++ {
		ring.Add(event.TCloudRetry, event.CloudRetry{Op: "put", Attempt: i, Err: "padding-padding-padding"})
	}
	in.Events = ring.Snapshot()
	path, err := WriteBundle(BundleConfig{Dir: dir, MaxBundles: 4, MaxEventBytes: 2 << 10}, in)
	if err != nil {
		t.Fatal(err)
	}
	man, err := ReadBundleManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if man.EventsDroppedByCap == 0 {
		t.Fatal("size cap did not drop any events")
	}
	recs, err := event.ReadTraceFile(filepath.Join(path, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != man.EventCount {
		t.Fatalf("events.jsonl has %d records, manifest says %d", len(recs), man.EventCount)
	}
	// The kept tail is the newest events: its last attempt must be 199.
	last, err := recs[len(recs)-1].Decode()
	if err != nil {
		t.Fatal(err)
	}
	if last.(event.CloudRetry).Attempt != 199 {
		t.Fatalf("cap dropped newest events instead of oldest: last attempt %d", last.(event.CloudRetry).Attempt)
	}
}

// TestAnalyzeRanksTrigger verifies the offline doctor reads a bundle and
// leads with the triggering rule.
func TestAnalyzeRanksTrigger(t *testing.T) {
	dir := t.TempDir()
	in := testInputs(time.Now().UnixNano())
	path, err := WriteBundle(BundleConfig{Dir: dir, MaxBundles: 4}, in)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := Analyze(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Findings) == 0 || !strings.Contains(diag.Findings[0].Title, RuleCloudOutage) {
		t.Fatalf("doctor did not rank the trigger first: %+v", diag.Findings)
	}
	found := false
	for _, f := range diag.Findings {
		if strings.Contains(f.Title, "cloud breaker opened") {
			found = true
		}
	}
	if !found {
		t.Fatalf("doctor missed the breaker transition in events.jsonl: %+v", diag.Findings)
	}
	if out := diag.Render(); !strings.Contains(out, "ranked findings") {
		t.Fatalf("Render missing findings section:\n%s", out)
	}
	// Analyzing an uncommitted (half-written) directory must fail.
	if _, err := Analyze(dir); err == nil {
		t.Fatal("Analyze accepted a non-bundle directory")
	}
}
