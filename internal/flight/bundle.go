package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"rocksmash/internal/event"
	"rocksmash/internal/vitals"
)

// tmpPrefix marks an in-progress (or crash-abandoned) bundle directory.
// Listing ignores these: a bundle only exists once the one atomic rename
// at the end of WriteBundle commits it.
const tmpPrefix = ".tmp-"

// BundleConfig bounds postmortem dumping.
type BundleConfig struct {
	// Dir is the directory bundles are written under ("" disables).
	Dir string
	// MaxBundles caps retained bundle directories; the oldest are pruned.
	MaxBundles int
	// MinInterval rate-limits dumps: a bundle is skipped when one was
	// written more recently than this.
	MinInterval time.Duration
	// MaxEventBytes soft-caps the events.jsonl file; the oldest entries
	// are dropped first.
	MaxEventBytes int64
}

// BundleInputs is everything a self-contained postmortem needs.
type BundleInputs struct {
	Incident Incident
	// Active is the set of detector rules active at the trigger.
	Active []string
	// Counts is fires-per-rule so far.
	Counts map[string]int64
	// Events is the flight ring at the trigger, oldest first.
	Events []Entry
	// Vitals is the retained sample history.
	Vitals []vitals.Sample
	// MetricsJSON is the marshalled Metrics() snapshot.
	MetricsJSON []byte
	// StatsText is the DumpStats() report.
	StatsText string
	// ManifestText summarizes the level/manifest shape.
	ManifestText string
}

// BundleManifest is the bundle's incident.json: the trigger plus the
// captured-window span, so tools can verify the ring demonstrably holds
// the moments preceding the incident.
type BundleManifest struct {
	Incident Incident `json:"incident"`
	Active   []string `json:"active,omitempty"`
	// EventsFrom/EventsTo span the captured event ring (unix nanos);
	// EventCount and EventsDroppedByCap record truncation.
	EventsFrom         int64            `json:"events_from,omitempty"`
	EventsTo           int64            `json:"events_to,omitempty"`
	EventCount         int              `json:"event_count"`
	EventsDroppedByCap int              `json:"events_dropped_by_cap,omitempty"`
	VitalsFrom         int64            `json:"vitals_from,omitempty"`
	VitalsTo           int64            `json:"vitals_to,omitempty"`
	VitalsCount        int              `json:"vitals_count"`
	Counts             map[string]int64 `json:"counts,omitempty"`
	WrittenUnixNano    int64            `json:"written_unix_nano"`
}

// crashAfterFiles simulates a crash mid-bundle for the atomicity sweep:
// when > 0, the write of the crashAfterFiles-th file (1-based) fails,
// leaving the tmp directory half-written exactly as a real crash would.
var crashAfterFiles int

var errCrashPoint = fmt.Errorf("flight: simulated crash point")

func bundleName(inc Incident) string {
	return fmt.Sprintf("incident-%d-%s", inc.UnixNano/int64(time.Millisecond), inc.Rule)
}

// WriteBundle dumps a postmortem directory for inc and returns its path.
// All files land in a hidden temp directory first; one atomic rename
// commits the bundle, so a crash at any point leaves either no bundle or a
// complete one — never a half-written directory that lists as an incident.
// Retention (MaxBundles) is pruned after a successful commit. WriteBundle
// is not safe for concurrent use with itself; the engine serializes dumps
// on the detector tick goroutine.
func WriteBundle(cfg BundleConfig, in BundleInputs) (string, error) {
	if cfg.Dir == "" {
		return "", fmt.Errorf("flight: bundle dir not configured")
	}
	name := bundleName(in.Incident)
	final := filepath.Join(cfg.Dir, name)
	tmp := filepath.Join(cfg.Dir, tmpPrefix+name)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}

	written := 0
	writeFile := func(base string, data []byte) error {
		if crashAfterFiles > 0 && written+1 >= crashAfterFiles {
			return errCrashPoint
		}
		if err := os.WriteFile(filepath.Join(tmp, base), data, 0o644); err != nil {
			return err
		}
		written++
		return nil
	}

	events, droppedByCap := capEvents(in.Events, cfg.MaxEventBytes)
	man := BundleManifest{
		Incident:           in.Incident,
		Active:             in.Active,
		Counts:             in.Counts,
		EventCount:         len(events),
		EventsDroppedByCap: droppedByCap,
		VitalsCount:        len(in.Vitals),
		WrittenUnixNano:    time.Now().UnixNano(),
	}
	if len(events) > 0 {
		man.EventsFrom = events[0].UnixNano
		man.EventsTo = events[len(events)-1].UnixNano
	}
	if len(in.Vitals) > 0 {
		man.VitalsFrom = in.Vitals[0].UnixNano
		man.VitalsTo = in.Vitals[len(in.Vitals)-1].UnixNano
	}
	manJSON, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", err
	}
	if err := writeFile("incident.json", manJSON); err != nil {
		return "", err
	}
	if err := writeFile("events.jsonl", encodeEvents(events)); err != nil {
		return "", err
	}
	vitJSON, err := json.Marshal(struct {
		Samples []vitals.Sample `json:"samples"`
	}{in.Vitals})
	if err != nil {
		return "", err
	}
	if err := writeFile("vitals.json", vitJSON); err != nil {
		return "", err
	}
	if err := writeFile("metrics.json", in.MetricsJSON); err != nil {
		return "", err
	}
	if err := writeFile("stats.txt", []byte(in.StatsText)); err != nil {
		return "", err
	}
	if err := writeFile("manifest.txt", []byte(in.ManifestText)); err != nil {
		return "", err
	}
	if err := writeProfiles(tmp, &written); err != nil {
		return "", err
	}

	// The commit point: everything above is invisible until this rename.
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	pruneBundles(cfg.Dir, cfg.MaxBundles)
	return final, nil
}

// writeProfiles dumps goroutine and heap profiles into dir.
func writeProfiles(dir string, written *int) error {
	if crashAfterFiles > 0 && *written+1 >= crashAfterFiles {
		return errCrashPoint
	}
	gf, err := os.Create(filepath.Join(dir, "goroutines.txt"))
	if err != nil {
		return err
	}
	if p := pprof.Lookup("goroutine"); p != nil {
		p.WriteTo(gf, 1)
	}
	if err := gf.Close(); err != nil {
		return err
	}
	*written++

	if crashAfterFiles > 0 && *written+1 >= crashAfterFiles {
		return errCrashPoint
	}
	hf, err := os.Create(filepath.Join(dir, "heap.pprof"))
	if err != nil {
		return err
	}
	pprof.WriteHeapProfile(hf)
	if err := hf.Close(); err != nil {
		return err
	}
	*written++
	return nil
}

// capEvents enforces the events.jsonl size cap by dropping the oldest
// entries first, returning the kept tail and the drop count. maxBytes <= 0
// means uncapped.
func capEvents(events []Entry, maxBytes int64) ([]Entry, int) {
	if maxBytes <= 0 {
		return events, 0
	}
	total := int64(0)
	keepFrom := len(events)
	for i := len(events) - 1; i >= 0; i-- {
		line, err := encodeEvent(events[i])
		if err != nil {
			continue
		}
		total += int64(len(line)) + 1
		if total > maxBytes {
			break
		}
		keepFrom = i
	}
	return events[keepFrom:], keepFrom
}

// encodeEvent renders one ring entry as an event.Record JSONL line, so
// bundle traces decode with the same tooling as live traces.
func encodeEvent(e Entry) ([]byte, error) {
	data, err := json.Marshal(e.Data)
	if err != nil {
		return nil, err
	}
	return json.Marshal(event.Record{TS: e.UnixNano, Type: e.Type, Data: data})
}

func encodeEvents(events []Entry) []byte {
	var b strings.Builder
	for _, e := range events {
		line, err := encodeEvent(e)
		if err != nil {
			continue
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// BundleMeta is one committed bundle, as listed.
type BundleMeta struct {
	Dir      string         `json:"dir"`
	Manifest BundleManifest `json:"manifest"`
}

// ListBundles returns the committed bundles under dir, oldest first.
// In-progress or crash-abandoned temp directories and any directory
// without a parseable incident.json are ignored — a half-written bundle
// is never reported as an incident.
func ListBundles(dir string) ([]BundleMeta, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []BundleMeta
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "incident-") {
			continue
		}
		man, err := ReadBundleManifest(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		out = append(out, BundleMeta{Dir: filepath.Join(dir, e.Name()), Manifest: man})
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Manifest.Incident.UnixNano < out[j].Manifest.Incident.UnixNano
	})
	return out, nil
}

// ReadBundleManifest parses a bundle directory's incident.json.
func ReadBundleManifest(dir string) (BundleManifest, error) {
	var man BundleManifest
	data, err := os.ReadFile(filepath.Join(dir, "incident.json"))
	if err != nil {
		return man, err
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, err
	}
	if man.Incident.Rule == "" {
		return man, fmt.Errorf("flight: %s: incident.json missing rule", dir)
	}
	return man, nil
}

// pruneBundles removes the oldest committed bundles beyond keep, plus any
// stale temp directories left behind by crashes (identifiable because the
// single-writer contract means no dump is in flight during a prune).
func pruneBundles(dir string, keep int) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var committed []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			os.RemoveAll(filepath.Join(dir, e.Name()))
			continue
		}
		if strings.HasPrefix(e.Name(), "incident-") {
			committed = append(committed, e.Name())
		}
	}
	if keep <= 0 || len(committed) <= keep {
		return
	}
	// Bundle names embed the trigger's unix-milli timestamp, so the
	// lexicographic sort of equal-width numeric prefixes is chronological.
	sort.Strings(committed)
	for _, name := range committed[:len(committed)-keep] {
		os.RemoveAll(filepath.Join(dir, name))
	}
}
