package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"rocksmash/internal/event"
	"rocksmash/internal/vitals"
)

// Finding is one ranked observation from an offline bundle analysis.
type Finding struct {
	Score  float64 `json:"score"` // higher = more likely the root cause
	Title  string  `json:"title"`
	Detail string  `json:"detail"`
}

// Diagnosis is the result of Analyze: the triggering incident plus
// findings ranked most-suspicious first.
type Diagnosis struct {
	Dir      string         `json:"dir"`
	Manifest BundleManifest `json:"manifest"`
	Findings []Finding      `json:"findings"`
}

// Analyze reads a postmortem bundle offline and ranks what it finds: the
// triggering rule, breaker churn, retry storms, stall time, debt growth,
// cache collapse, slow reads, and corruption — the `mashctl doctor` core.
func Analyze(dir string) (Diagnosis, error) {
	man, err := ReadBundleManifest(dir)
	if err != nil {
		return Diagnosis{}, fmt.Errorf("flight: not a committed bundle: %w", err)
	}
	d := Diagnosis{Dir: dir, Manifest: man}

	d.Findings = append(d.Findings, Finding{
		Score: 100,
		Title: fmt.Sprintf("trigger: %s (%s)", man.Incident.Rule, man.Incident.Severity),
		Detail: fmt.Sprintf("%s — observed %.4g vs threshold %.4g at %s",
			man.Incident.Reason, man.Incident.Value, man.Incident.Threshold,
			man.Incident.Time().Format(time.RFC3339)),
	})
	if len(man.Active) > 1 {
		d.Findings = append(d.Findings, Finding{
			Score: 60,
			Title: fmt.Sprintf("%d detectors active simultaneously", len(man.Active)),
			Detail: "co-active rules: " + strings.Join(man.Active, ", ") +
				" — correlated failure, suspect a shared cause (device, network, workload shift)",
		})
	}

	if recs, err := event.ReadTraceFile(filepath.Join(dir, "events.jsonl")); err == nil {
		d.Findings = append(d.Findings, analyzeEvents(recs, man.Incident.UnixNano)...)
	}
	if samples, err := readBundleVitals(dir); err == nil {
		d.Findings = append(d.Findings, analyzeVitals(samples)...)
	}
	if metrics, err := readBundleMetrics(dir); err == nil {
		d.Findings = append(d.Findings, analyzeMetrics(metrics)...)
	}

	sort.SliceStable(d.Findings, func(i, j int) bool {
		return d.Findings[i].Score > d.Findings[j].Score
	})
	return d, nil
}

func readBundleVitals(dir string) ([]vitals.Sample, error) {
	data, err := os.ReadFile(filepath.Join(dir, "vitals.json"))
	if err != nil {
		return nil, err
	}
	var payload struct {
		Samples []vitals.Sample `json:"samples"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, err
	}
	return payload.Samples, nil
}

func readBundleMetrics(dir string) (map[string]any, error) {
	data, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return m, nil
}

// analyzeEvents mines the captured ring for breaker churn, retry storms,
// stalls, slow reads, and corruption in the window preceding the trigger.
func analyzeEvents(recs []event.Record, triggerNano int64) []Finding {
	var (
		retries, preTrigger             int
		stalls                          int
		stallDur                        time.Duration
		corruptions, repairs            int
		slowReads                       int
		worstRead                       time.Duration
		cloudOpens, localOpens, reopens int
	)
	for _, rec := range recs {
		if triggerNano > 0 && rec.TS <= triggerNano {
			preTrigger++
		}
		p, err := rec.Decode()
		if err != nil {
			continue
		}
		switch e := p.(type) {
		case event.CloudRetry:
			retries++
		case event.WriteStallEnd:
			stalls++
			stallDur += e.Duration
		case event.CorruptionDetected:
			corruptions++
		case event.CorruptionRepaired:
			repairs++
		case event.SlowRead:
			slowReads++
			if e.Duration > worstRead {
				worstRead = e.Duration
			}
		case event.BreakerState:
			switch {
			case e.To == "open" && e.Tier == "local":
				localOpens++
			case e.To == "open":
				cloudOpens++
			case e.To == "closed":
				reopens++
			}
		}
	}

	var out []Finding
	if cloudOpens > 0 {
		out = append(out, Finding{
			Score: 90,
			Title: fmt.Sprintf("cloud breaker opened %d time(s) in the captured window", cloudOpens),
			Detail: fmt.Sprintf("%d close transitions seen; repeated open/close cycles indicate a flapping "+
				"cloud path rather than one clean outage", reopens),
		})
	}
	if localOpens > 0 {
		out = append(out, Finding{
			Score:  90,
			Title:  fmt.Sprintf("local breaker opened %d time(s) in the captured window", localOpens),
			Detail: "local media errors (ENOSPC / fsync EIO); check device capacity and kernel logs",
		})
	}
	if retries > 0 {
		score := 40.0
		if retries >= 20 {
			score = 75
		}
		out = append(out, Finding{
			Score:  score,
			Title:  fmt.Sprintf("retry storm: %d cloud retries captured", retries),
			Detail: "transient cloud errors were being retried in the pre-trigger window",
		})
	}
	if stalls > 0 {
		out = append(out, Finding{
			Score:  55,
			Title:  fmt.Sprintf("%d write stalls, %s total stall time", stalls, stallDur.Round(time.Millisecond)),
			Detail: "the write path waited on flush/compaction; ingest was outrunning background work",
		})
	}
	if corruptions > 0 {
		out = append(out, Finding{
			Score:  85,
			Title:  fmt.Sprintf("%d corruption detections (%d repaired) in the window", corruptions, repairs),
			Detail: "local artifacts failed checksum verification; the device may be failing",
		})
	}
	if slowReads > 0 {
		out = append(out, Finding{
			Score:  35,
			Title:  fmt.Sprintf("%d slow reads captured, worst %s", slowReads, worstRead.Round(time.Microsecond)),
			Detail: "see events.jsonl slow_read records for per-level/per-tier attribution",
		})
	}
	if preTrigger > 0 {
		out = append(out, Finding{
			Score:  10,
			Title:  fmt.Sprintf("ring captured %d events preceding the trigger", preTrigger),
			Detail: "the pre-incident window is intact; replay it with `mashctl trace`",
		})
	}
	return out
}

// analyzeVitals compares the first and last thirds of the sample history
// for debt growth and cache degradation trends.
func analyzeVitals(samples []vitals.Sample) []Finding {
	if len(samples) < 3 {
		return nil
	}
	first, last := samples[0], samples[len(samples)-1]
	windows := vitals.WindowsOf(samples)
	var out []Finding

	if growth := last.CompactionDebt - first.CompactionDebt; growth > 32<<20 {
		out = append(out, Finding{
			Score: 50,
			Title: fmt.Sprintf("compaction debt grew %d MB across the captured window", growth>>20),
			Detail: fmt.Sprintf("%d MB -> %d MB; compactions were losing to ingest well before the trigger",
				first.CompactionDebt>>20, last.CompactionDebt>>20),
		})
	}
	if n := len(windows); n >= 4 {
		early, late := avgBlockHit(windows[:n/2]), avgBlockHit(windows[n/2:])
		if early > 0.4 && late < early*0.6 {
			out = append(out, Finding{
				Score:  45,
				Title:  fmt.Sprintf("block-cache hit ratio eroded %.2f -> %.2f across the window", early, late),
				Detail: "the working set outgrew or shifted away from the cache before the trigger",
			})
		}
	}
	if last.PendingTables > 0 {
		out = append(out, Finding{
			Score: 48,
			Title: fmt.Sprintf("%d degraded-mode tables pending cloud upload at capture", last.PendingTables),
			Detail: fmt.Sprintf("%d MB awaiting drain; durability depends on the local tier until it completes",
				last.PendingBytes>>20),
		})
	}
	return out
}

func avgBlockHit(ws []vitals.Window) float64 {
	if len(ws) == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range ws {
		sum += w.BlockHitRatio
	}
	return sum / float64(len(ws))
}

// analyzeMetrics reads the point-in-time Metrics() snapshot generically
// (the bundle format is stable JSON, not a Go type, so old bundles stay
// analyzable as Metrics evolves).
func analyzeMetrics(m map[string]any) []Finding {
	num := func(key string) float64 {
		v, _ := m[key].(float64)
		return v
	}
	var out []Finding
	if q := num("QuarantinedTables"); q > 0 {
		out = append(out, Finding{
			Score:  80,
			Title:  fmt.Sprintf("%d table(s) quarantined with unrepairable corruption", int(q)),
			Detail: "no clean cloud copy existed; data under those tables is unavailable until restored",
		})
	}
	if u := num("CorruptionsUnrepaired"); u > 0 {
		out = append(out, Finding{
			Score:  78,
			Title:  fmt.Sprintf("%d corruption(s) could not be repaired", int(u)),
			Detail: "enable MirrorLocalLevels so local-only tables keep a cloud repair source",
		})
	}
	if mt := num("MisplacedTables"); mt > 0 {
		out = append(out, Finding{
			Score:  30,
			Title:  fmt.Sprintf("%d local-level table(s) living cloud-side at capture", int(mt)),
			Detail: "local-degraded landings not yet drained back; reads on them pay cloud latency",
		})
	}
	return out
}

// Render formats the diagnosis as the `mashctl doctor` report.
func (d Diagnosis) Render() string {
	var b strings.Builder
	inc := d.Manifest.Incident
	fmt.Fprintf(&b, "bundle:   %s\n", d.Dir)
	fmt.Fprintf(&b, "incident: %s (%s) at %s\n", inc.Rule, inc.Severity,
		inc.Time().Format(time.RFC3339Nano))
	fmt.Fprintf(&b, "reason:   %s\n", inc.Reason)
	if d.Manifest.EventsFrom > 0 {
		span := time.Duration(d.Manifest.EventsTo - d.Manifest.EventsFrom)
		pre := time.Duration(inc.UnixNano - d.Manifest.EventsFrom)
		fmt.Fprintf(&b, "captured: %d events spanning %s (%s before the trigger), %d vitals samples\n",
			d.Manifest.EventCount, span.Round(time.Millisecond), pre.Round(time.Millisecond),
			d.Manifest.VitalsCount)
	}
	b.WriteString("\nranked findings:\n")
	for i, f := range d.Findings {
		fmt.Fprintf(&b, "%2d. [%3.0f] %s\n       %s\n", i+1, f.Score, f.Title, f.Detail)
	}
	return b.String()
}
