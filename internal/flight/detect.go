package flight

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rocksmash/internal/vitals"
)

// Detector rule identifiers.
const (
	RuleLatencySpike   = "latency-spike"
	RuleWriteStall     = "write-stall"
	RuleCloudOutage    = "cloud-outage"
	RuleLocalDegraded  = "local-degraded"
	RuleCompactionDebt = "compaction-debt"
	RuleCacheCollapse  = "cache-collapse"
	RuleShardSkew      = "shard-skew"
	RuleCostSpike      = "cost-spike"
)

// Severities.
const (
	SevWarn     = "warn"
	SevCritical = "critical"
)

// Baseline is an exponentially weighted moving average of a vitals signal,
// used as the "normal" a spike rule compares against. It is Warm once it
// has absorbed enough ticks to be trustworthy, and the detector freezes it
// while its rule is active so an anomaly can't drag its own baseline up.
type Baseline struct {
	val float64
	n   int
}

const baselineAlpha = 0.1

func (b *Baseline) update(x float64) {
	if b.n == 0 {
		b.val = x
	} else {
		b.val += baselineAlpha * (x - b.val)
	}
	b.n++
}

// Value returns the current moving average.
func (b *Baseline) Value() float64 { return b.val }

// Warm reports whether at least minTicks observations have been absorbed.
func (b *Baseline) Warm(minTicks int) bool { return b.n >= minTicks }

// Obs is one detector evaluation input: the newest vitals sample, the
// window differentiated from the previous tick (HasWindow false on the
// very first tick), and the rolling baselines.
type Obs struct {
	Sample    vitals.Sample
	Prev      vitals.Sample
	Window    vitals.Window
	HasWindow bool

	// Rolling baselines, warmed and frozen by the detector.
	P99       *Baseline // Get p99 latency, nanoseconds
	BlockHit  *Baseline // windowed block-cache hit ratio
	PCacheHit *Baseline // windowed pcache hit ratio
	Cost      *Baseline // windowed $/hour total
}

// Reading is what a rule condition reports when it evaluates true: the
// observed value, the threshold it crossed, and a human-readable reason.
type Reading struct {
	Value     float64
	Threshold float64
	Reason    string
}

// Rule is one detector: Check evaluates the condition on a tick; the
// detector wraps it in hysteresis (TriggerTicks consecutive true ticks to
// fire, ClearTicks consecutive false ticks to re-arm) and a per-rule
// Cooldown (minimum spacing between fires; a re-trigger inside the
// cooldown is counted as suppressed, not fired).
type Rule struct {
	ID           string
	Severity     string
	TriggerTicks int
	ClearTicks   int
	Cooldown     time.Duration
	Check        func(ob *Obs) (bool, Reading)
}

// Thresholds parameterize DefaultRules. The zero value is filled with the
// documented defaults (DESIGN.md §5j).
type Thresholds struct {
	LatencyFactor   float64       // p99 > factor×baseline fires (default 4)
	LatencyFloor    time.Duration // ...but never below this absolute p99 (default 2ms)
	BaselineWarmup  int           // ticks before spike baselines count (default 8)
	DebtMinBytes    int64         // debt growth only matters above this (default 64MB)
	SkewThreshold   float64       // (max-min)/mean shard skew (default 2.0)
	SkewMinOps      int64         // window ops below this can't fire skew (default 20)
	CacheFactor     float64       // hit ratio < factor×baseline fires (default 0.5)
	CacheMinLookups int64         // window lookups below this can't fire (default 64)
	CacheMinBase    float64       // baselines below this never "collapse" (default 0.4)
	CostFactor      float64       // $/hr > factor×baseline fires (default 3)
	CostFloorPerHr  float64       // ...but never below this absolute $/hr (default 1e-4)
}

func (t Thresholds) withDefaults() Thresholds {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&t.LatencyFactor, 4)
	def(&t.SkewThreshold, 2.0)
	def(&t.CacheFactor, 0.5)
	def(&t.CacheMinBase, 0.4)
	def(&t.CostFactor, 3)
	def(&t.CostFloorPerHr, 1e-4)
	if t.LatencyFloor == 0 {
		t.LatencyFloor = 2 * time.Millisecond
	}
	if t.BaselineWarmup == 0 {
		t.BaselineWarmup = 8
	}
	if t.DebtMinBytes == 0 {
		t.DebtMinBytes = 64 << 20
	}
	if t.SkewMinOps == 0 {
		t.SkewMinOps = 20
	}
	if t.CacheMinLookups == 0 {
		t.CacheMinLookups = 64
	}
	return t
}

// breakerOpen reports a breaker gauge in any non-closed state. The state
// oscillates open↔half-open for the whole of an outage episode and only
// reads "closed" after a probe genuinely succeeds, so a breaker rule stays
// active across flapping and fires exactly once per episode.
func breakerOpen(state string) bool { return state != "" && state != "closed" }

// DefaultRules builds the standard detector set with the given thresholds
// (zero value = defaults).
func DefaultRules(t Thresholds) []Rule {
	t = t.withDefaults()
	return []Rule{
		{
			ID: RuleCloudOutage, Severity: SevCritical,
			TriggerTicks: 1, ClearTicks: 2, Cooldown: time.Second,
			Check: func(ob *Obs) (bool, Reading) {
				if !breakerOpen(ob.Sample.Breaker) {
					return false, Reading{}
				}
				return true, Reading{Value: 1, Threshold: 0.5,
					Reason: fmt.Sprintf("cloud breaker %s: cloud tier unreachable, flushes landing degraded", ob.Sample.Breaker)}
			},
		},
		{
			ID: RuleLocalDegraded, Severity: SevCritical,
			TriggerTicks: 1, ClearTicks: 2, Cooldown: time.Second,
			Check: func(ob *Obs) (bool, Reading) {
				if !breakerOpen(ob.Sample.LocalBreaker) {
					return false, Reading{}
				}
				return true, Reading{Value: 1, Threshold: 0.5,
					Reason: fmt.Sprintf("local breaker %s: local media failing (ENOSPC/EIO), tables landing cloud-direct", ob.Sample.LocalBreaker)}
			},
		},
		{
			ID: RuleWriteStall, Severity: SevWarn,
			TriggerTicks: 1, ClearTicks: 3, Cooldown: 30 * time.Second,
			Check: func(ob *Obs) (bool, Reading) {
				if !ob.HasWindow || ob.Window.StallsPerSec <= 0 {
					return false, Reading{}
				}
				return true, Reading{Value: ob.Window.StallsPerSec, Threshold: 0,
					Reason: fmt.Sprintf("writes stalling at %.1f/s: background flush/compaction cannot keep up", ob.Window.StallsPerSec)}
			},
		},
		{
			ID: RuleLatencySpike, Severity: SevWarn,
			TriggerTicks: 2, ClearTicks: 4, Cooldown: 30 * time.Second,
			Check: func(ob *Obs) (bool, Reading) {
				p99 := float64(ob.Sample.GetP99Nanos)
				if !ob.P99.Warm(t.BaselineWarmup) || p99 <= 0 {
					return false, Reading{}
				}
				thr := ob.P99.Value() * t.LatencyFactor
				if floor := float64(t.LatencyFloor.Nanoseconds()); thr < floor {
					thr = floor
				}
				if p99 <= thr {
					return false, Reading{}
				}
				return true, Reading{Value: p99, Threshold: thr,
					Reason: fmt.Sprintf("get p99 %s vs baseline %s (%.0fx spike threshold)",
						time.Duration(int64(p99)), time.Duration(int64(ob.P99.Value())), t.LatencyFactor)}
			},
		},
		{
			ID: RuleCompactionDebt, Severity: SevWarn,
			TriggerTicks: 5, ClearTicks: 5, Cooldown: 2 * time.Minute,
			Check: func(ob *Obs) (bool, Reading) {
				debt := ob.Sample.CompactionDebt
				if !ob.HasWindow || debt < t.DebtMinBytes || debt <= ob.Prev.CompactionDebt {
					return false, Reading{}
				}
				return true, Reading{Value: float64(debt), Threshold: float64(t.DebtMinBytes),
					Reason: fmt.Sprintf("compaction debt %d MB and growing: compactions losing to ingest", debt>>20)}
			},
		},
		{
			ID: RuleCacheCollapse, Severity: SevWarn,
			TriggerTicks: 3, ClearTicks: 5, Cooldown: time.Minute,
			Check: func(ob *Obs) (bool, Reading) {
				if !ob.HasWindow || !ob.BlockHit.Warm(t.BaselineWarmup) {
					return false, Reading{}
				}
				lookups := ob.Sample.BlockHits + ob.Sample.BlockMisses -
					ob.Prev.BlockHits - ob.Prev.BlockMisses
				base := ob.BlockHit.Value()
				if lookups < t.CacheMinLookups || base < t.CacheMinBase {
					return false, Reading{}
				}
				thr := base * t.CacheFactor
				if ob.Window.BlockHitRatio >= thr {
					return false, Reading{}
				}
				return true, Reading{Value: ob.Window.BlockHitRatio, Threshold: thr,
					Reason: fmt.Sprintf("block-cache hit ratio collapsed to %.2f (baseline %.2f): working set shifted or cache squeezed",
						ob.Window.BlockHitRatio, base)}
			},
		},
		{
			ID: RuleShardSkew, Severity: SevWarn,
			TriggerTicks: 3, ClearTicks: 3, Cooldown: 10 * time.Second,
			Check: func(ob *Obs) (bool, Reading) {
				if !ob.HasWindow || ob.Window.ShardSkew <= t.SkewThreshold {
					return false, Reading{}
				}
				var ops int64
				for i := range ob.Sample.ShardOps {
					ops += ob.Sample.ShardOps[i]
					if i < len(ob.Prev.ShardOps) {
						ops -= ob.Prev.ShardOps[i]
					}
				}
				if ops < t.SkewMinOps {
					return false, Reading{}
				}
				return true, Reading{Value: ob.Window.ShardSkew, Threshold: t.SkewThreshold,
					Reason: fmt.Sprintf("shard skew %.2f over %d ops: hot keyspace concentrating on one shard", ob.Window.ShardSkew, ops)}
			},
		},
		{
			ID: RuleCostSpike, Severity: SevWarn,
			TriggerTicks: 3, ClearTicks: 5, Cooldown: 2 * time.Minute,
			Check: func(ob *Obs) (bool, Reading) {
				if !ob.HasWindow || !ob.Cost.Warm(t.BaselineWarmup) {
					return false, Reading{}
				}
				rate := ob.Window.DollarsPerHour.Total
				thr := ob.Cost.Value() * t.CostFactor
				if thr < t.CostFloorPerHr {
					thr = t.CostFloorPerHr
				}
				if rate <= thr {
					return false, Reading{}
				}
				return true, Reading{Value: rate, Threshold: thr,
					Reason: fmt.Sprintf("cloud spend $%.4f/hr vs baseline $%.4f/hr: request or egress traffic surging",
						rate, ob.Cost.Value())}
			},
		},
	}
}

// Incident is one fired detector rule.
type Incident struct {
	Rule      string  `json:"rule"`
	Severity  string  `json:"severity"`
	Reason    string  `json:"reason"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	UnixNano  int64   `json:"unix_nano"`
	// Bundle is the postmortem directory, filled in by the bundle writer
	// ("" when bundling was rate-limited or disabled).
	Bundle string `json:"bundle,omitempty"`
}

// Time returns the incident's trigger time.
func (i Incident) Time() time.Time { return time.Unix(0, i.UnixNano) }

type ruleState struct {
	trueTicks  int
	falseTicks int
	active     bool
	lastFire   time.Time
}

// Detector runs the rule set over the vitals tick stream. Observe is
// called from a single goroutine (the vitals sampler); the read accessors
// (Active, Counts, Suppressed) are safe from any goroutine.
type Detector struct {
	mu    sync.Mutex
	rules []Rule
	state []ruleState
	prev  vitals.Sample
	ticks int64

	p99Base, blockBase, pcacheBase, costBase Baseline

	fired      map[string]int64
	suppressed int64
}

// NewDetector builds a detector over the given rules.
func NewDetector(rules []Rule) *Detector {
	return &Detector{
		rules: rules,
		state: make([]ruleState, len(rules)),
		fired: make(map[string]int64),
	}
}

// Observe evaluates every rule against the new sample and returns the
// incidents fired on this tick (usually none).
func (d *Detector) Observe(s vitals.Sample) []Incident {
	d.mu.Lock()
	defer d.mu.Unlock()

	now := time.Unix(0, s.UnixNano)
	ob := &Obs{
		Sample:    s,
		P99:       &d.p99Base,
		BlockHit:  &d.blockBase,
		PCacheHit: &d.pcacheBase,
		Cost:      &d.costBase,
	}
	if d.ticks > 0 {
		ob.Prev = d.prev
		ob.Window = vitals.Derive(d.prev, s)
		ob.HasWindow = ob.Window.Seconds > 0
	}

	var out []Incident
	for i := range d.rules {
		r := &d.rules[i]
		st := &d.state[i]
		firing, reading := r.Check(ob)
		if firing {
			st.trueTicks++
			st.falseTicks = 0
			if !st.active && st.trueTicks >= r.TriggerTicks {
				st.active = true
				if !st.lastFire.IsZero() && now.Sub(st.lastFire) < r.Cooldown {
					// Within the cooldown the episode re-opens silently:
					// hysteresis without spam.
					d.suppressed++
				} else {
					st.lastFire = now
					d.fired[r.ID]++
					out = append(out, Incident{
						Rule:      r.ID,
						Severity:  r.Severity,
						Reason:    reading.Reason,
						Value:     reading.Value,
						Threshold: reading.Threshold,
						UnixNano:  s.UnixNano,
					})
				}
			}
		} else {
			st.falseTicks++
			st.trueTicks = 0
			if st.active && st.falseTicks >= r.ClearTicks {
				st.active = false
			}
		}
	}

	d.updateBaselines(ob)
	d.prev = s
	d.ticks++
	return out
}

// updateBaselines absorbs the tick into the rolling baselines, skipping
// any baseline whose rule is hot — active, or with its condition firing
// while hysteresis counts up toward the trigger — so an anomaly never
// normalizes itself, not even during its own pre-fire ticks. Called with
// mu held, after the rule loop has updated trueTicks for this tick.
func (d *Detector) updateBaselines(ob *Obs) {
	hot := make(map[string]bool, 2)
	for i := range d.rules {
		if d.state[i].active || d.state[i].trueTicks > 0 {
			hot[d.rules[i].ID] = true
		}
	}
	if !hot[RuleLatencySpike] && ob.Sample.GetP99Nanos > 0 {
		d.p99Base.update(float64(ob.Sample.GetP99Nanos))
	}
	if ob.HasWindow && !hot[RuleCacheCollapse] {
		if ob.Sample.BlockHits+ob.Sample.BlockMisses > ob.Prev.BlockHits+ob.Prev.BlockMisses {
			d.blockBase.update(ob.Window.BlockHitRatio)
		}
		if ob.Sample.PCacheHits+ob.Sample.PCacheMisses > ob.Prev.PCacheHits+ob.Prev.PCacheMisses {
			d.pcacheBase.update(ob.Window.PCacheHitRatio)
		}
	}
	if ob.HasWindow && !hot[RuleCostSpike] {
		d.costBase.update(ob.Window.DollarsPerHour.Total)
	}
}

// Active returns the IDs of currently active (fired, not yet cleared)
// rules, sorted.
func (d *Detector) Active() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for i := range d.rules {
		if d.state[i].active {
			out = append(out, d.rules[i].ID)
		}
	}
	sort.Strings(out)
	return out
}

// Counts returns fires per rule ID.
func (d *Detector) Counts() map[string]int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int64, len(d.fired))
	for k, v := range d.fired {
		out[k] = v
	}
	return out
}

// Suppressed returns how many re-triggers the per-rule cooldowns absorbed.
func (d *Detector) Suppressed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suppressed
}
