// Package flight is the engine's black-box flight recorder and anomaly
// detector: a bounded lock-free ring of recent events (tapped off the
// event.Listener fan-out), a rule engine evaluated on each vitals tick
// (latency spikes, breaker trips, stalls, debt growth, cache collapse,
// shard skew, cost spikes — each with hysteresis and per-rule cooldowns),
// and atomic postmortem bundle dumps when a rule fires.
//
// Like internal/vitals, the package is engine-agnostic: it depends only on
// the event and vitals vocabularies plus byte slices the DB hands it, so
// internal/db can import it without a cycle. The recorder implements
// event.Listener and is merged into the DB's listener chain exactly like
// the trace writer; when Options.FlightRecorder is off, nothing here is
// ever allocated and the engine's hot paths are byte-identical.
package flight

import (
	"sort"
	"sync/atomic"
	"time"

	"rocksmash/internal/event"
)

// Entry is one captured event in the flight ring.
type Entry struct {
	// Seq is the entry's global sequence number (total events ever recorded
	// precede it); the snapshot is ordered by it.
	Seq      uint64     `json:"seq"`
	UnixNano int64      `json:"ts"`
	Type     event.Type `json:"type"`
	Data     any        `json:"data"`
}

// Time returns the entry's wall-clock time.
func (e Entry) Time() time.Time { return time.Unix(0, e.UnixNano) }

// Ring is a bounded lock-free multi-writer event buffer with
// oldest-dropped overflow: writers claim a slot with one fetch-add and
// publish the entry through an atomic pointer, so recording never blocks
// and never waits on readers. Snapshot reassembles the retained window in
// sequence order, skipping slots a writer is mid-publish on.
type Ring struct {
	slots []atomic.Pointer[Entry]
	mask  uint64
	head  atomic.Uint64 // next sequence number to claim
}

// NewRing returns a ring retaining at least capacity entries (rounded up
// to a power of two, minimum 16).
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[Entry], n), mask: uint64(n - 1)}
}

// Cap returns the ring's slot count.
func (r *Ring) Cap() int { return len(r.slots) }

// Add records one event. Safe for concurrent use; when the ring is full
// the oldest entry is overwritten.
func (r *Ring) Add(typ event.Type, data any) {
	seq := r.head.Add(1) - 1
	r.slots[seq&r.mask].Store(&Entry{
		Seq:      seq,
		UnixNano: time.Now().UnixNano(),
		Type:     typ,
		Data:     data,
	})
}

// Recorded returns the total number of events ever recorded; Dropped how
// many have been overwritten by ring overflow.
func (r *Ring) Recorded() uint64 { return r.head.Load() }

// Dropped returns how many recorded events have aged out of the ring.
func (r *Ring) Dropped() uint64 {
	if h := r.head.Load(); h > uint64(len(r.slots)) {
		return h - uint64(len(r.slots))
	}
	return 0
}

// Snapshot copies out the retained window, oldest first. Entries a
// concurrent writer has claimed but not yet published are skipped (their
// slot still holds an entry from a lapped generation), so a snapshot is
// always a consistent, ordered subsequence of the recorded stream.
func (r *Ring) Snapshot() []Entry {
	h := r.head.Load()
	n := uint64(len(r.slots))
	lo := uint64(0)
	if h > n {
		lo = h - n
	}
	out := make([]Entry, 0, h-lo)
	for i := range r.slots {
		p := r.slots[i].Load()
		if p != nil && p.Seq >= lo && p.Seq < h {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Recorder is the event.Listener face of the ring: every engine event is
// recorded with its typed payload. It is safe for concurrent use from all
// engine goroutines and never blocks them.
type Recorder struct {
	ring *Ring
}

// NewRecorder returns a recorder retaining at least history events.
func NewRecorder(history int) *Recorder {
	return &Recorder{ring: NewRing(history)}
}

// Ring exposes the underlying buffer for snapshots and overflow counters.
func (r *Recorder) Ring() *Ring { return r.ring }

// Snapshot returns the retained event window, oldest first.
func (r *Recorder) Snapshot() []Entry { return r.ring.Snapshot() }

func (r *Recorder) OnFlushBegin(e event.FlushBegin)           { r.ring.Add(event.TFlushBegin, e) }
func (r *Recorder) OnFlushEnd(e event.FlushEnd)               { r.ring.Add(event.TFlushEnd, e) }
func (r *Recorder) OnCompactionBegin(e event.CompactionBegin) { r.ring.Add(event.TCompactionBegin, e) }
func (r *Recorder) OnCompactionEnd(e event.CompactionEnd)     { r.ring.Add(event.TCompactionEnd, e) }
func (r *Recorder) OnTableUploaded(e event.TableUploaded)     { r.ring.Add(event.TTableUploaded, e) }
func (r *Recorder) OnTableDeleted(e event.TableDeleted)       { r.ring.Add(event.TTableDeleted, e) }
func (r *Recorder) OnWriteStallBegin(e event.WriteStallBegin) { r.ring.Add(event.TWriteStallBegin, e) }
func (r *Recorder) OnWriteStallEnd(e event.WriteStallEnd)     { r.ring.Add(event.TWriteStallEnd, e) }
func (r *Recorder) OnCommitGroup(e event.CommitGroup)         { r.ring.Add(event.TCommitGroup, e) }
func (r *Recorder) OnPCacheAdmit(e event.PCacheAdmit)         { r.ring.Add(event.TPCacheAdmit, e) }
func (r *Recorder) OnPCacheEvict(e event.PCacheEvict)         { r.ring.Add(event.TPCacheEvict, e) }
func (r *Recorder) OnCloudRetry(e event.CloudRetry)           { r.ring.Add(event.TCloudRetry, e) }
func (r *Recorder) OnBreakerState(e event.BreakerState)       { r.ring.Add(event.TBreakerState, e) }
func (r *Recorder) OnSlowRead(e event.SlowRead)               { r.ring.Add(event.TSlowRead, e) }

func (r *Recorder) OnCorruptionDetected(e event.CorruptionDetected) {
	r.ring.Add(event.TCorruptionDetected, e)
}
func (r *Recorder) OnCorruptionRepaired(e event.CorruptionRepaired) {
	r.ring.Add(event.TCorruptionRepaired, e)
}
func (r *Recorder) OnViewBuilt(e event.ViewBuilt) { r.ring.Add(event.TViewBuilt, e) }
func (r *Recorder) OnIncidentTriggered(e event.IncidentTriggered) {
	r.ring.Add(event.TIncidentTriggered, e)
}
