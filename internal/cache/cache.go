// Package cache implements the sharded in-memory LRU block cache that sits
// in front of both storage tiers (RocksDB's "block cache" analogue).
// Entries are charged by byte size against a global capacity split evenly
// across shards.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

const numShards = 16

// Key identifies a cached block: the table file number and the block's
// offset within it.
type Key struct {
	FileNum uint64
	Offset  uint64
}

type entry struct {
	key  Key
	data []byte
	elem *list.Element
}

type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	items    map[Key]*entry
	order    *list.List // front = most recent
}

// Cache is a fixed-capacity LRU over blocks.
type Cache struct {
	shards [numShards]shard
	hits   atomic.Int64
	misses atomic.Int64
}

// New returns a cache bounded to capacity bytes. Capacity ≤ 0 disables
// caching (all lookups miss, inserts are dropped).
func New(capacity int64) *Cache {
	c := &Cache{}
	// Round the per-shard budget up: flooring would zero it for any
	// capacity below numShards bytes, silently disabling every shard.
	per := (capacity + numShards - 1) / numShards
	if capacity <= 0 {
		per = 0
	}
	for i := range c.shards {
		c.shards[i] = shard{capacity: per, items: map[Key]*entry{}, order: list.New()}
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	h := k.FileNum*0x9e3779b97f4a7c15 ^ k.Offset*0xbf58476d1ce4e5b9
	return &c.shards[h%numShards]
}

// Get returns the cached block, if present. The returned slice must be
// treated as read-only.
func (c *Cache) Get(k Key) ([]byte, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.items[k]
	if ok {
		s.order.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e.data, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put inserts or refreshes a block. Blocks larger than the shard capacity
// are not cached.
func (c *Cache) Put(k Key, data []byte) {
	s := c.shardFor(k)
	charge := int64(len(data))
	if charge > s.capacity || s.capacity <= 0 {
		return
	}
	s.mu.Lock()
	if e, ok := s.items[k]; ok {
		s.used += charge - int64(len(e.data))
		e.data = data
		s.order.MoveToFront(e.elem)
	} else {
		e := &entry{key: k, data: data}
		e.elem = s.order.PushFront(e)
		s.items[k] = e
		s.used += charge
	}
	for s.used > s.capacity {
		back := s.order.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		s.order.Remove(back)
		delete(s.items, victim.key)
		s.used -= int64(len(victim.data))
	}
	s.mu.Unlock()
}

// InvalidateFile drops every cached block of a table (called when the file
// is deleted by compaction).
func (c *Cache) InvalidateFile(fileNum uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.items {
			if k.FileNum == fileNum {
				s.order.Remove(e.elem)
				delete(s.items, k)
				s.used -= int64(len(e.data))
			}
		}
		s.mu.Unlock()
	}
}

// Used returns the total charged bytes.
func (c *Cache) Used() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRatio() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Counters returns the raw hit/miss counts.
func (c *Cache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
