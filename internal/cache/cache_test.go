package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	c := New(1 << 20)
	k := Key{FileNum: 1, Offset: 0}
	c.Put(k, []byte("hello"))
	got, ok := c.Get(k)
	if !ok || string(got) != "hello" {
		t.Fatalf("get = %q %v", got, ok)
	}
	if _, ok := c.Get(Key{FileNum: 2, Offset: 0}); ok {
		t.Fatal("phantom hit")
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	// Small cache: inserting far more than capacity must bound usage.
	c := New(16 * 1024)
	blk := make([]byte, 512)
	for i := 0; i < 1000; i++ {
		c.Put(Key{FileNum: 1, Offset: uint64(i * 512)}, blk)
	}
	if used := c.Used(); used > 16*1024 {
		t.Fatalf("used %d exceeds capacity", used)
	}
	if c.Len() == 0 {
		t.Fatal("cache empty after inserts")
	}
}

func TestLRUOrderWithinShard(t *testing.T) {
	// Single shard via identical hash inputs is hard to force; instead use
	// a cache sized so each shard holds ~2 entries and verify recently
	// used entries survive.
	c := New(numShards * 2 * 100)
	keys := make([]Key, 40)
	for i := range keys {
		keys[i] = Key{FileNum: uint64(i), Offset: 0}
		c.Put(keys[i], make([]byte, 90))
	}
	// Touch first key repeatedly — but it may already be evicted; just
	// check the global invariant: capacity respected, hits counted.
	c.Get(keys[len(keys)-1])
	h, m := c.Counters()
	if h+m == 0 {
		t.Fatal("counters not updated")
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := New(1 << 20)
	k := Key{FileNum: 3, Offset: 128}
	c.Put(k, []byte("v1"))
	c.Put(k, []byte("v2-longer"))
	got, ok := c.Get(k)
	if !ok || string(got) != "v2-longer" {
		t.Fatalf("update lost: %q", got)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestInvalidateFile(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 10; i++ {
		c.Put(Key{FileNum: 7, Offset: uint64(i)}, []byte("x"))
		c.Put(Key{FileNum: 8, Offset: uint64(i)}, []byte("y"))
	}
	c.InvalidateFile(7)
	for i := 0; i < 10; i++ {
		if _, ok := c.Get(Key{FileNum: 7, Offset: uint64(i)}); ok {
			t.Fatal("file 7 block survived invalidation")
		}
		if _, ok := c.Get(Key{FileNum: 8, Offset: uint64(i)}); !ok {
			t.Fatal("file 8 block wrongly dropped")
		}
	}
}

func TestOversizedBlockNotCached(t *testing.T) {
	c := New(1024) // 64 B per shard
	c.Put(Key{FileNum: 1, Offset: 0}, make([]byte, 4096))
	if c.Len() != 0 {
		t.Fatal("oversized block cached")
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	c.Put(Key{FileNum: 1, Offset: 0}, []byte("x"))
	if _, ok := c.Get(Key{FileNum: 1, Offset: 0}); ok {
		t.Fatal("zero-capacity cache stored a block")
	}
}

func TestHitRatio(t *testing.T) {
	c := New(1 << 20)
	k := Key{FileNum: 1, Offset: 0}
	c.Put(k, []byte("x"))
	c.Get(k)         // hit
	c.Get(Key{2, 0}) // miss
	c.Get(k)         // hit
	if r := c.HitRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit ratio = %f", r)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := Key{FileNum: uint64(g), Offset: uint64(i % 64)}
				c.Put(k, []byte(fmt.Sprint(i)))
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Used() < 0 {
		t.Fatal("accounting went negative")
	}
}

func TestSmallCapacityRoundsUp(t *testing.T) {
	// A capacity below numShards bytes used to floor the per-shard budget
	// to zero, silently disabling every shard. Rounding up must keep tiny
	// caches functional.
	c := New(numShards - 1)
	k := Key{FileNum: 7, Offset: 0}
	c.Put(k, []byte("v"))
	if _, ok := c.Get(k); !ok {
		t.Fatalf("capacity %d dropped a %d-byte block", numShards-1, 1)
	}
	for i := range c.shards {
		if c.shards[i].capacity <= 0 {
			t.Fatalf("shard %d capacity = %d, want > 0", i, c.shards[i].capacity)
		}
	}
	// Capacity <= 0 still disables caching entirely.
	off := New(0)
	off.Put(k, []byte("v"))
	if _, ok := off.Get(k); ok {
		t.Fatal("zero-capacity cache admitted a block")
	}
}
