package wal

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"rocksmash/internal/storage"
)

func newCloudBackend(t *testing.T) *storage.Cloud {
	t.Helper()
	c, err := storage.NewCloud(t.TempDir(), storage.NoLatency(), storage.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBackupCopiesSealedSegments(t *testing.T) {
	local := newBackend(t)
	cloud := newCloudBackend(t)
	opts := DefaultOptions()
	opts.Backup = cloud
	m, err := Open(local, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Append([]byte("one"), 1, 1)
	if err := m.Roll(); err != nil {
		t.Fatal(err)
	}
	m.Append([]byte("two"), 2, 2)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := cloud.List("wal/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("cloud holds %d segments, want 2: %v", len(names), names)
	}
}

func TestRecoveryFallsBackToBackup(t *testing.T) {
	local := newBackend(t)
	cloud := newCloudBackend(t)
	opts := DefaultOptions()
	opts.Backup = cloud
	m, err := Open(local, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Append([]byte("precious"), 1, 1)
	m.Roll()
	m.Append([]byte("more"), 2, 2)
	m.Close()

	// Local device "loses" the first segment.
	if err := local.Delete(SegmentName("wal", 1)); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(local, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	if _, err := m2.Replay(0, 2, func(_ uint64, p []byte) error {
		mu.Lock()
		got = append(got, string(p))
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	if fmt.Sprint(got) != "[more precious]" {
		t.Fatalf("replayed %v", got)
	}
}

func TestRecoveryAfterTotalLocalLoss(t *testing.T) {
	localDir := t.TempDir()
	local, err := storage.NewLocal(localDir)
	if err != nil {
		t.Fatal(err)
	}
	cloud := newCloudBackend(t)
	opts := DefaultOptions()
	opts.Backup = cloud
	m, err := Open(local, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m.Append([]byte(fmt.Sprintf("seg%d", i)), uint64(i+1), uint64(i+1))
		m.Roll()
	}
	m.Close()

	// Fresh, empty local directory: everything must come from the cloud.
	local2, err := storage.NewLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(local2, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	if _, err := m2.Replay(0, 4, func(_ uint64, p []byte) error {
		mu.Lock()
		got = append(got, string(p))
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("recovered %d records from cloud, want 5: %v", len(got), got)
	}
}

func TestBackupGCRemovesCloudCopies(t *testing.T) {
	local := newBackend(t)
	cloud := newCloudBackend(t)
	opts := DefaultOptions()
	opts.Backup = cloud
	m, err := Open(local, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Append([]byte("a"), 1, 3)
	m.Roll()
	m.Append([]byte("b"), 4, 6)
	if err := m.DeleteObsolete(3); err != nil {
		t.Fatal(err)
	}
	names, _ := cloud.List("wal/")
	if len(names) != 0 {
		t.Fatalf("obsolete backup segments not GCed: %v", names)
	}
}
