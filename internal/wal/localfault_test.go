package wal

import (
	"testing"

	"rocksmash/internal/storage"
)

// TestAppendSpillsOnDiskFull fills the local device's write budget and
// asserts appends keep succeeding by spilling the active segment directly
// onto the backup tier, then replay recovers every record.
func TestAppendSpillsOnDiskFull(t *testing.T) {
	faulty := storage.NewFaulty(newBackend(t), storage.FaultConfig{Seed: 1})
	cloud := newCloudBackend(t)
	opts := DefaultOptions()
	opts.Backup = cloud
	m, err := Open(faulty, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append([]byte("before"), 1, 1); err != nil {
		t.Fatal(err)
	}

	// The disk fills mid-stream: every further local write gets ENOSPC.
	faulty.SetWriteBudget(1)
	for i := uint64(2); i <= 5; i++ {
		if _, err := m.Append([]byte("during"), i, i); err != nil {
			t.Fatalf("append %d during disk-full must spill, got %v", i, err)
		}
	}
	if m.Spills() == 0 {
		t.Fatal("no segments spilled to the backup tier")
	}

	// Space returns: the next roll lands locally again.
	faulty.SetWriteBudget(0)
	if err := m.Roll(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append([]byte("after"), 6, 6); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays the local and spilled segments alike.
	m2, err := Open(faulty, opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := m2.Replay(0, 1, func(seg uint64, payload []byte) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var minSeq, maxSeq uint64 = 1 << 62, 0
	for _, s := range m2.Segments() {
		if s.MinSeq != 0 && s.MinSeq < minSeq {
			minSeq = s.MinSeq
		}
		if s.MaxSeq > maxSeq {
			maxSeq = s.MaxSeq
		}
	}
	if minSeq != 1 || maxSeq != 6 {
		t.Fatalf("recovered seq range [%d,%d], want [1,6]", minSeq, maxSeq)
	}
}

// TestSyncedSpillDurableWithoutClose guards the spilled-segment durability
// barrier: an object tier persists bytes only when an object commits at
// Close, so a synced append that spilled to the backup must leave a visible
// backup object by the time it is acknowledged. A crash that never closes
// the manager must still replay every acked record.
func TestSyncedSpillDurableWithoutClose(t *testing.T) {
	faulty := storage.NewFaulty(newBackend(t), storage.FaultConfig{Seed: 1})
	cloud := newCloudBackend(t)
	opts := DefaultOptions()
	opts.Sync = true
	opts.Backup = cloud
	m, err := Open(faulty, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append([]byte("local"), 1, 1); err != nil {
		t.Fatal(err)
	}

	// Disk full: synced appends must keep succeeding via the backup tier.
	faulty.SetWriteBudget(1)
	for i := uint64(2); i <= 4; i++ {
		if _, err := m.Append([]byte("spilled"), i, i); err != nil {
			t.Fatalf("synced append %d during disk-full: %v", i, err)
		}
		// The ack means durable: the spilled segment must already be a
		// visible object on the backup tier, not bytes parked in an open
		// writer that a crash would discard.
		names, err := cloud.List("wal/")
		if err != nil {
			t.Fatal(err)
		}
		visible := false
		for _, n := range names {
			if data, err := cloud.ReadAll(n); err == nil && scanRecords(data) == nil && len(data) > 0 {
				visible = true
			}
		}
		if !visible {
			t.Fatalf("after synced append %d no committed backup segment is visible", i)
		}
	}
	if m.Spills() == 0 {
		t.Fatal("no segments spilled to the backup tier")
	}

	// Crash: the manager is dropped without Close or Sync.
	m2, err := Open(faulty, opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	var records int
	if _, err := m2.Replay(0, 1, func(uint64, []byte) error { records++; return nil }); err != nil {
		t.Fatal(err)
	}
	if records < 4 {
		t.Fatalf("replayed %d records after crash, want all 4 acked", records)
	}
}

// TestScrubRestoresCorruptSegmentFromBackup damages a sealed local segment
// and asserts Scrub detects the bad record checksum and rewrites the
// segment from its clean backup copy.
func TestScrubRestoresCorruptSegmentFromBackup(t *testing.T) {
	local := newBackend(t)
	cloud := newCloudBackend(t)
	opts := DefaultOptions()
	opts.Backup = cloud
	m, err := Open(local, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append([]byte("precious"), 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append([]byte("sentinel"), 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Roll(); err != nil { // seals segment 1, copies it to backup
		t.Fatal(err)
	}

	// Flip a byte in the FIRST record's payload: damage at the tail would
	// be tolerated as a torn write, mid-stream damage must not be.
	name := SegmentName("wal", 1)
	data, err := local.ReadAll(name)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen] ^= 0xFF
	if err := storage.WriteObject(local, name, data); err != nil {
		t.Fatal(err)
	}

	checked, corrupt, repaired := m.Scrub()
	if checked == 0 || corrupt != 1 || repaired != 1 {
		t.Fatalf("Scrub = (%d, %d, %d), want (>0, 1, 1)", checked, corrupt, repaired)
	}
	if m.Restored() != 1 {
		t.Fatalf("Restored = %d, want 1", m.Restored())
	}
	// The local copy is clean again.
	if _, c2, _ := m.Scrub(); c2 != 0 {
		t.Fatalf("second Scrub still finds %d corrupt segments", c2)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
