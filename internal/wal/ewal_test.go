package wal

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"rocksmash/internal/storage"
)

func newBackend(t *testing.T) storage.Backend {
	t.Helper()
	l, err := storage.NewLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func openMgr(t *testing.T, be storage.Backend, opts Options) *Manager {
	t.Helper()
	m, err := Open(be, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAppendAndReplay(t *testing.T) {
	be := newBackend(t)
	m := openMgr(t, be, DefaultOptions())
	for i := 0; i < 10; i++ {
		seq := uint64(i + 1)
		if _, err := m.Append([]byte(fmt.Sprintf("rec%02d", i)), seq, seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := openMgr(t, be, DefaultOptions())
	var got []string
	stats, err := m2.Replay(0, 1, func(seg uint64, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 10 {
		t.Fatalf("records = %d", stats.Records)
	}
	sort.Strings(got)
	for i, s := range got {
		if s != fmt.Sprintf("rec%02d", i) {
			t.Fatalf("record %d = %q", i, s)
		}
	}
}

func TestRollCreatesSegments(t *testing.T) {
	be := newBackend(t)
	m := openMgr(t, be, DefaultOptions())
	m.Append([]byte("a"), 1, 1)
	if err := m.Roll(); err != nil {
		t.Fatal(err)
	}
	m.Append([]byte("b"), 2, 2)
	segs := m.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %d", len(segs))
	}
	if !segs[0].Closed || segs[1].Closed {
		t.Fatalf("closed flags wrong: %+v", segs)
	}
	if segs[0].MinSeq != 1 || segs[0].MaxSeq != 1 || segs[1].MinSeq != 2 {
		t.Fatalf("seq ranges wrong: %+v", segs)
	}
}

func TestSizeBasedRoll(t *testing.T) {
	be := newBackend(t)
	opts := DefaultOptions()
	opts.SegmentBytes = 1024
	m := openMgr(t, be, opts)
	payload := make([]byte, 600)
	m.Append(payload, 1, 1)
	m.Append(payload, 2, 2) // crosses 1024 → rolls
	if len(m.Segments()) < 2 {
		t.Fatalf("expected size-based roll, segments = %d", len(m.Segments()))
	}
}

func TestSkipFlushedSegments(t *testing.T) {
	be := newBackend(t)
	m := openMgr(t, be, DefaultOptions())
	m.Append([]byte("old1"), 1, 5)
	m.Roll()
	m.Append([]byte("new1"), 6, 10)
	m.Close()

	m2 := openMgr(t, be, DefaultOptions())
	var got []string
	stats, err := m2.Replay(5, 4, func(seg uint64, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsSkipped != 1 {
		t.Fatalf("skipped = %d", stats.SegmentsSkipped)
	}
	if len(got) != 1 || got[0] != "new1" {
		t.Fatalf("replayed %v", got)
	}
}

func TestNonExtendedNeverSkips(t *testing.T) {
	be := newBackend(t)
	opts := DefaultOptions()
	opts.Extended = false
	m := openMgr(t, be, opts)
	m.Append([]byte("old"), 1, 5)
	m.Roll()
	m.Append([]byte("new"), 6, 6)
	m.Close()

	m2 := openMgr(t, be, opts)
	var n int
	stats, err := m2.Replay(5, 4, func(uint64, []byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsSkipped != 0 || n != 2 {
		t.Fatalf("skipped=%d n=%d", stats.SegmentsSkipped, n)
	}
}

func TestParallelReplayDeliversAll(t *testing.T) {
	be := newBackend(t)
	m := openMgr(t, be, DefaultOptions())
	const segs = 6
	const perSeg = 50
	seq := uint64(0)
	for s := 0; s < segs; s++ {
		for i := 0; i < perSeg; i++ {
			seq++
			m.Append([]byte(fmt.Sprintf("s%d-r%03d", s, i)), seq, seq)
		}
		m.Roll()
	}
	m.Close()

	m2 := openMgr(t, be, DefaultOptions())
	var mu sync.Mutex
	perSegRecs := map[uint64][]string{}
	_, err := m2.Replay(0, 4, func(seg uint64, p []byte) error {
		mu.Lock()
		perSegRecs[seg] = append(perSegRecs[seg], string(p))
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, recs := range perSegRecs {
		total += len(recs)
		// Within a segment, order must be preserved.
		if !sort.StringsAreSorted(recs) {
			t.Fatalf("intra-segment order broken: %v", recs[:3])
		}
	}
	if total != segs*perSeg {
		t.Fatalf("total = %d want %d", total, segs*perSeg)
	}
}

func TestDeleteObsolete(t *testing.T) {
	be := newBackend(t)
	m := openMgr(t, be, DefaultOptions())
	m.Append([]byte("a"), 1, 3)
	m.Roll()
	m.Append([]byte("b"), 4, 6)
	m.Roll()
	m.Append([]byte("c"), 7, 9)

	if err := m.DeleteObsolete(6); err != nil {
		t.Fatal(err)
	}
	segs := m.Segments()
	if len(segs) != 1 {
		t.Fatalf("segments after GC = %d: %+v", len(segs), segs)
	}
	if segs[0].MinSeq != 7 {
		t.Fatalf("wrong survivor: %+v", segs[0])
	}
	names, _ := be.List("wal/")
	// INDEX + one segment.
	if len(names) != 2 {
		t.Fatalf("files on disk: %v", names)
	}
}

func TestCrashBeforeIndexWriteStillRecovers(t *testing.T) {
	be := newBackend(t)
	m := openMgr(t, be, DefaultOptions())
	m.Append([]byte("x"), 1, 1)
	// Simulate crash: no Close, no index for the active segment's range.
	// Delete INDEX entirely to model the worst case.
	be.Delete("wal/INDEX")

	m2 := openMgr(t, be, DefaultOptions())
	var got []string
	if _, err := m2.Replay(100, 2, func(_ uint64, p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Even with flushedSeq=100 the unknown-range segment must be replayed.
	if len(got) != 1 || got[0] != "x" {
		t.Fatalf("replayed %v", got)
	}
}

func TestReopenContinuesNumbering(t *testing.T) {
	be := newBackend(t)
	m := openMgr(t, be, DefaultOptions())
	m.Append([]byte("a"), 1, 1)
	first := m.ActiveSegment()
	m.Close()

	m2 := openMgr(t, be, DefaultOptions())
	m2.Append([]byte("b"), 2, 2)
	if m2.ActiveSegment() <= first {
		t.Fatalf("segment numbering regressed: %d <= %d", m2.ActiveSegment(), first)
	}
}

func TestTornActiveSegmentReplays(t *testing.T) {
	be := newBackend(t)
	m := openMgr(t, be, DefaultOptions())
	m.Append([]byte("good"), 1, 1)
	m.Close()

	// Append garbage to simulate a torn write at crash.
	name := SegmentName("wal", 1)
	data, err := be.ReadAll(name)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, 0xde, 0xad)
	if err := storage.WriteObject(be, name, data); err != nil {
		t.Fatal(err)
	}

	m2 := openMgr(t, be, DefaultOptions())
	var got []string
	if _, err := m2.Replay(0, 1, func(_ uint64, p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "good" {
		t.Fatalf("replayed %v", got)
	}
}
