package wal

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rocksmash/internal/storage"
)

// TestQuickReplayEqualsHistory is the WAL's fundamental property: whatever
// sequence of appends and rolls happened, replay returns exactly the
// appended payloads (order preserved within segments), for any parallelism.
func TestQuickReplayEqualsHistory(t *testing.T) {
	f := func(seed int64, nOps uint8, segBytesExp uint8, parallelism uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		be, err := storage.NewLocal(dir)
		if err != nil {
			return false
		}
		opts := DefaultOptions()
		opts.SegmentBytes = 1 << (segBytesExp%8 + 8) // 256B..32KB
		m, err := Open(be, opts, 1)
		if err != nil {
			return false
		}
		var history []string
		seq := uint64(0)
		for i := 0; i < int(nOps); i++ {
			if rng.Intn(10) == 0 {
				if err := m.Roll(); err != nil {
					return false
				}
				continue
			}
			seq++
			p := fmt.Sprintf("rec-%06d-%d", seq, rng.Int31())
			if _, err := m.Append([]byte(p), seq, seq); err != nil {
				return false
			}
			history = append(history, p)
		}
		if err := m.Close(); err != nil {
			return false
		}

		m2, err := Open(be, opts, 1)
		if err != nil {
			return false
		}
		par := int(parallelism%6) + 1
		var got []string
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		_, err = m2.Replay(0, par, func(_ uint64, p []byte) error {
			<-mu
			got = append(got, string(p))
			mu <- struct{}{}
			return nil
		})
		if err != nil {
			return false
		}
		if len(got) != len(history) {
			return false
		}
		sort.Strings(got)
		sort.Strings(history)
		for i := range got {
			if got[i] != history[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSkipWatermark verifies that for any flushed watermark, replay
// delivers a superset of the records above it and the skipped segments
// contain nothing above it.
func TestQuickSkipWatermark(t *testing.T) {
	f := func(seed int64, nRecs uint8, watermark uint8) bool {
		dir := t.TempDir()
		be, err := storage.NewLocal(dir)
		if err != nil {
			return false
		}
		opts := DefaultOptions()
		opts.SegmentBytes = 512
		m, err := Open(be, opts, 1)
		if err != nil {
			return false
		}
		n := int(nRecs%100) + 1
		for i := 1; i <= n; i++ {
			if _, err := m.Append([]byte(fmt.Sprintf("r%04d", i)), uint64(i), uint64(i)); err != nil {
				return false
			}
		}
		if err := m.Close(); err != nil {
			return false
		}
		wm := uint64(watermark) % uint64(n+1)

		m2, err := Open(be, opts, 1)
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		done := make(chan struct{}, 1)
		done <- struct{}{}
		if _, err := m2.Replay(wm, 3, func(_ uint64, p []byte) error {
			<-done
			seen[string(p)] = true
			done <- struct{}{}
			return nil
		}); err != nil {
			return false
		}
		// Every record above the watermark must be present (the engine
		// filters the ≤wm ones itself).
		for i := int(wm) + 1; i <= n; i++ {
			if !seen[fmt.Sprintf("r%04d", i)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
