// Package wal implements the write-ahead log. The on-disk record format is
// the LevelDB/RocksDB block format: the file is a sequence of 32 KiB blocks,
// each holding physical records
//
//	| crc32c uint32 | length uint16 | type uint8 | payload |
//
// where type marks whether the payload is a FULL logical record or the
// FIRST/MIDDLE/LAST fragment of one spanning blocks. A logical record
// carries one encoded write batch.
//
// On top of the record format the package provides the paper's extended WAL
// (eWAL): the log is split into fixed-size segments, each tagged in a side
// index with the sequence-number range it covers, enabling recovery to skip
// segments wholly persisted by earlier flushes and to replay the remaining
// segments in parallel.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// BlockSize is the physical block size of the log format.
	BlockSize = 32 * 1024
	headerLen = 7
)

// Physical record types.
const (
	typeFull   = 1
	typeFirst  = 2
	typeMiddle = 3
	typeLast   = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a checksum or structural failure in the middle of a
// log (as opposed to a torn tail, which is reported as io.ErrUnexpectedEOF
// and tolerated by recovery).
var ErrCorrupt = errors.New("wal: corrupt record")

// RecordWriter appends logical records in the block format.
type RecordWriter struct {
	w      io.Writer
	block  [BlockSize]byte
	off    int // bytes used in the current block
	outErr error
}

// NewRecordWriter returns a writer emitting to w.
func NewRecordWriter(w io.Writer) *RecordWriter {
	return &RecordWriter{w: w}
}

// Append writes one logical record.
func (rw *RecordWriter) Append(payload []byte) error {
	if rw.outErr != nil {
		return rw.outErr
	}
	first := true
	for {
		avail := BlockSize - rw.off
		if avail < headerLen {
			// Pad the block tail with zeros.
			if avail > 0 {
				zeros := make([]byte, avail)
				if _, err := rw.w.Write(zeros); err != nil {
					rw.outErr = err
					return err
				}
			}
			rw.off = 0
			avail = BlockSize
		}
		n := len(payload)
		if n > avail-headerLen {
			n = avail - headerLen
		}
		var typ byte
		last := n == len(payload)
		switch {
		case first && last:
			typ = typeFull
		case first:
			typ = typeFirst
		case last:
			typ = typeLast
		default:
			typ = typeMiddle
		}
		var hdr [headerLen]byte
		crc := crc32.Checksum(append([]byte{typ}, payload[:n]...), castagnoli)
		binary.LittleEndian.PutUint32(hdr[0:4], crc)
		binary.LittleEndian.PutUint16(hdr[4:6], uint16(n))
		hdr[6] = typ
		if _, err := rw.w.Write(hdr[:]); err != nil {
			rw.outErr = err
			return err
		}
		if _, err := rw.w.Write(payload[:n]); err != nil {
			rw.outErr = err
			return err
		}
		rw.off += headerLen + n
		payload = payload[n:]
		first = false
		if last {
			return nil
		}
	}
}

// Size returns the number of bytes that Append has emitted so far for the
// current block cycle; used only in tests.
func (rw *RecordWriter) blockOffset() int { return rw.off }

// RecordReader iterates logical records from an in-memory log image.
type RecordReader struct {
	data []byte
	off  int
}

// NewRecordReader reads records from data (a whole log segment).
func NewRecordReader(data []byte) *RecordReader {
	return &RecordReader{data: data}
}

// Next returns the next logical record. It returns io.EOF at a clean end,
// io.ErrUnexpectedEOF for a torn tail (crash mid-write), and ErrCorrupt for
// a checksum failure before the tail.
func (rr *RecordReader) Next() ([]byte, error) {
	var logical []byte
	expectContinuation := false
	for {
		blockOff := rr.off % BlockSize
		if BlockSize-blockOff < headerLen {
			rr.off += BlockSize - blockOff // skip pad
			continue
		}
		if rr.off >= len(rr.data) {
			if expectContinuation {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, io.EOF
		}
		if rr.off+headerLen > len(rr.data) {
			return nil, io.ErrUnexpectedEOF
		}
		hdr := rr.data[rr.off : rr.off+headerLen]
		crc := binary.LittleEndian.Uint32(hdr[0:4])
		n := int(binary.LittleEndian.Uint16(hdr[4:6]))
		typ := hdr[6]
		if typ == 0 && crc == 0 && n == 0 {
			// Zero-filled region: preallocated/padded tail.
			if expectContinuation {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, io.EOF
		}
		if rr.off+headerLen+n > len(rr.data) {
			return nil, io.ErrUnexpectedEOF
		}
		payload := rr.data[rr.off+headerLen : rr.off+headerLen+n]
		want := crc32.Checksum(append([]byte{typ}, payload...), castagnoli)
		if want != crc {
			// A bad checksum in the final partial record is a torn tail;
			// anywhere else it is corruption.
			if rr.off+headerLen+n >= len(rr.data) {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("%w: crc mismatch at offset %d", ErrCorrupt, rr.off)
		}
		rr.off += headerLen + n
		switch typ {
		case typeFull:
			if expectContinuation {
				return nil, fmt.Errorf("%w: FULL inside fragmented record", ErrCorrupt)
			}
			return payload, nil
		case typeFirst:
			if expectContinuation {
				return nil, fmt.Errorf("%w: FIRST inside fragmented record", ErrCorrupt)
			}
			logical = append(logical, payload...)
			expectContinuation = true
		case typeMiddle:
			if !expectContinuation {
				return nil, fmt.Errorf("%w: orphan MIDDLE", ErrCorrupt)
			}
			logical = append(logical, payload...)
		case typeLast:
			if !expectContinuation {
				return nil, fmt.Errorf("%w: orphan LAST", ErrCorrupt)
			}
			return append(logical, payload...), nil
		default:
			return nil, fmt.Errorf("%w: unknown type %d", ErrCorrupt, typ)
		}
	}
}
