package wal

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRecordRoundTripSmall(t *testing.T) {
	var buf bytes.Buffer
	w := NewRecordWriter(&buf)
	payloads := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	r := NewRecordReader(buf.Bytes())
	for i, want := range payloads {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRecordSpansBlocks(t *testing.T) {
	var buf bytes.Buffer
	w := NewRecordWriter(&buf)
	big := make([]byte, BlockSize*3+123)
	for i := range big {
		big[i] = byte(i)
	}
	if err := w.Append(big); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	r := NewRecordReader(buf.Bytes())
	got, err := r.Next()
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("big record: err=%v match=%v", err, bytes.Equal(got, big))
	}
	got, err = r.Next()
	if err != nil || string(got) != "after" {
		t.Fatalf("after record: %q %v", got, err)
	}
}

func TestBlockBoundaryPadding(t *testing.T) {
	var buf bytes.Buffer
	w := NewRecordWriter(&buf)
	// Fill to within <7 bytes of a block boundary, forcing padding.
	p1 := make([]byte, BlockSize-headerLen-3)
	if err := w.Append(p1); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("next-block")); err != nil {
		t.Fatal(err)
	}
	if w.blockOffset() == 0 {
		t.Fatal("writer should be inside the second block")
	}
	r := NewRecordReader(buf.Bytes())
	if got, err := r.Next(); err != nil || len(got) != len(p1) {
		t.Fatalf("p1: len=%d err=%v", len(got), err)
	}
	if got, err := r.Next(); err != nil || string(got) != "next-block" {
		t.Fatalf("p2: %q %v", got, err)
	}
}

func TestTornTailTolerated(t *testing.T) {
	var buf bytes.Buffer
	w := NewRecordWriter(&buf)
	w.Append([]byte("intact"))
	w.Append([]byte("will-be-torn"))
	data := buf.Bytes()
	// Chop the last few bytes to simulate a crash mid-write.
	data = data[:len(data)-5]
	r := NewRecordReader(data)
	got, err := r.Next()
	if err != nil || string(got) != "intact" {
		t.Fatalf("first record: %q %v", got, err)
	}
	if _, err := r.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn tail should give ErrUnexpectedEOF, got %v", err)
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewRecordWriter(&buf)
	w.Append(bytes.Repeat([]byte("a"), 100))
	w.Append(bytes.Repeat([]byte("b"), 100))
	data := append([]byte(nil), buf.Bytes()...)
	// Flip a payload byte of the first record.
	data[headerLen+10] ^= 0xff
	r := NewRecordReader(data)
	_, err := r.Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestZeroFilledTailIsEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewRecordWriter(&buf)
	w.Append([]byte("rec"))
	data := append(buf.Bytes(), make([]byte, 64)...) // preallocated zeros
	r := NewRecordReader(data)
	if got, err := r.Next(); err != nil || string(got) != "rec" {
		t.Fatalf("%q %v", got, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("zero tail should be clean EOF, got %v", err)
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		w := NewRecordWriter(&buf)
		var payloads [][]byte
		for i := 0; i < int(count); i++ {
			p := make([]byte, rng.Intn(3*BlockSize))
			rng.Read(p)
			payloads = append(payloads, p)
			if err := w.Append(p); err != nil {
				return false
			}
		}
		r := NewRecordReader(buf.Bytes())
		for _, want := range payloads {
			got, err := r.Next()
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		_, err := r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
