package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"rocksmash/internal/storage"
)

// SegmentMeta is the extended per-segment metadata the eWAL maintains in a
// side index. MinSeq/MaxSeq bound the sequence numbers of the batches the
// segment holds, letting recovery skip segments entirely covered by flushed
// SSTables without reading them.
type SegmentMeta struct {
	Num    uint64 `json:"num"`
	MinSeq uint64 `json:"min_seq"`
	MaxSeq uint64 `json:"max_seq"` // 0 while the segment is still active
	Closed bool   `json:"closed"`
	Bytes  int64  `json:"bytes"`
	// Spilled marks a segment created directly on the backup backend
	// because the local tier could not accept it (disk full / EIO). Its
	// only copy lives on the backup tier until DeleteObsolete retires it.
	Spilled bool `json:"spilled,omitempty"`
	// BackupPending marks a sealed segment whose backup-tier copy has not
	// landed yet (the upload failed — a cloud outage, say). The local copy
	// is durable; the next roll retries the upload. Deferring beats
	// failing the commit that triggered the roll over a redundant copy.
	BackupPending bool `json:"backup_pending,omitempty"`
}

type indexFile struct {
	Segments []SegmentMeta `json:"segments"`
}

// Options configures the eWAL manager.
type Options struct {
	// Dir is the object-name prefix for segments, e.g. "wal".
	Dir string
	// SegmentBytes rolls the active segment when it exceeds this size.
	SegmentBytes int64
	// Sync forces a durability barrier after every append.
	Sync bool
	// Extended enables the eWAL side index (segment seq ranges). When
	// false the manager behaves like a stock WAL: recovery must read every
	// segment serially from the oldest.
	Extended bool
	// Backup, when non-nil, receives a copy of every sealed segment
	// (typically the cloud backend), protecting unflushed writes against
	// loss of the local device. Recovery falls back to the backup copy
	// when a local segment is missing.
	Backup storage.Backend
}

// DefaultOptions returns production defaults.
func DefaultOptions() Options {
	return Options{Dir: "wal", SegmentBytes: 16 << 20, Sync: false, Extended: true}
}

// Manager owns the set of WAL segments on a backend (always the local
// tier in RocksMash; durability of cold segments is delegated to flushes).
type Manager struct {
	be   storage.Backend
	opts Options

	mu       sync.Mutex
	segments []SegmentMeta // closed + active, ascending by Num
	active   storage.Writer
	activeRW *RecordWriter
	nextNum  uint64
	spills   int64 // segments created on the backup tier (local write failure)
	restored int64 // corrupt/missing local segments re-read from the backup
}

// SegmentName formats the object name of segment n under dir.
func SegmentName(dir string, n uint64) string {
	return fmt.Sprintf("%s/%06d.log", dir, n)
}

func indexName(dir string) string { return dir + "/INDEX" }

// Open loads or initializes a WAL manager. nextNum must be larger than any
// previously used segment number (the DB derives it from the manifest).
func Open(be storage.Backend, opts Options, nextNum uint64) (*Manager, error) {
	if opts.Dir == "" {
		opts.Dir = "wal"
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 16 << 20
	}
	m := &Manager{be: be, opts: opts, nextNum: nextNum}
	if err := m.loadIndex(); err != nil {
		return nil, err
	}
	for _, s := range m.segments {
		if s.Num >= m.nextNum {
			m.nextNum = s.Num + 1
		}
	}
	return m, nil
}

// loadIndex reconciles the side index with the segments actually present.
// Segments missing from the index (crash before index write) are added with
// unknown sequence ranges so recovery still reads them.
func (m *Manager) loadIndex() error {
	var idx indexFile
	data, err := m.be.ReadAll(indexName(m.opts.Dir))
	switch {
	case err == nil:
		if jerr := json.Unmarshal(data, &idx); jerr != nil {
			// A torn index is recoverable: fall back to directory scan.
			idx = indexFile{}
		}
	case errors.Is(err, storage.ErrNotFound):
	default:
		return err
	}
	known := map[uint64]SegmentMeta{}
	for _, s := range idx.Segments {
		known[s.Num] = s
	}
	names, err := m.be.List(m.opts.Dir + "/")
	if err != nil {
		return err
	}
	m.segments = nil
	seen := map[uint64]bool{}
	for _, n := range names {
		var num uint64
		if _, err := fmt.Sscanf(n, m.opts.Dir+"/%06d.log", &num); err != nil {
			continue
		}
		sz, _ := m.be.Size(n)
		seen[num] = true
		if s, ok := known[num]; ok {
			s.Bytes = sz
			m.segments = append(m.segments, s)
		} else {
			// Unknown to the index: treat as active-at-crash (unbounded).
			m.segments = append(m.segments, SegmentMeta{Num: num, Bytes: sz})
		}
	}
	// Segments surviving only on the backup tier (local device loss).
	if m.opts.Backup != nil {
		bnames, err := m.opts.Backup.List(m.opts.Dir + "/")
		if err != nil {
			return err
		}
		for _, n := range bnames {
			var num uint64
			if _, err := fmt.Sscanf(n, m.opts.Dir+"/%06d.log", &num); err != nil {
				continue
			}
			if seen[num] {
				continue
			}
			sz, _ := m.opts.Backup.Size(n)
			if s, ok := known[num]; ok {
				s.Bytes = sz
				m.segments = append(m.segments, s)
			} else {
				m.segments = append(m.segments, SegmentMeta{Num: num, Bytes: sz})
			}
		}
	}
	sort.Slice(m.segments, func(i, j int) bool { return m.segments[i].Num < m.segments[j].Num })
	return nil
}

func (m *Manager) writeIndexLocked() error {
	if !m.opts.Extended {
		return nil
	}
	data, err := json.Marshal(indexFile{Segments: m.segments})
	if err != nil {
		return err
	}
	// The index is advisory: recovery survives a missing or stale copy by
	// reading the affected segments. Skipping the fsync keeps it off the
	// commit and recovery critical paths, and a failed write (e.g. local
	// disk full) must not fail the append that triggered it.
	w, err := m.be.Create(indexName(m.opts.Dir))
	if err != nil {
		return nil
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return nil
	}
	_ = w.Close()
	return nil
}

// Entry is one logical record of a vectored append: a batch payload and
// the sequence range it covers.
type Entry struct {
	Payload []byte
	MinSeq  uint64
	MaxSeq  uint64
}

// Append writes one batch payload covering sequence numbers
// [minSeq, maxSeq] and returns the segment number it landed in.
func (m *Manager) Append(payload []byte, minSeq, maxSeq uint64) (uint64, error) {
	return m.AppendBatch([]Entry{{Payload: payload, MinSeq: minSeq, MaxSeq: maxSeq}})
}

// AppendBatch writes a group of batch payloads under one lock acquisition
// and — when Sync is configured — one durability barrier for the whole
// group, amortizing the fsync the commit pipeline would otherwise pay per
// batch. It returns the segment the group landed in. Entries land
// contiguously in the active segment (a group never straddles a roll; the
// segment-size check runs after the group, so a segment may overshoot by at
// most one group).
func (m *Manager) AppendBatch(entries []Entry) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		if err := m.rollLocked(); err != nil {
			return 0, err
		}
	}
	num, err := m.appendGroupLocked(entries)
	if err != nil && m.opts.Backup != nil {
		// The local medium rejected the group (disk full, fsync EIO). The
		// group was never acknowledged, so retrying it is safe: abandon the
		// active segment — its intact prefix still replays; any partial
		// record at its tail is tolerated as torn — and roll to a fresh
		// segment, which rollLocked spills onto the backup tier when the
		// local Create fails too.
		m.abandonActiveLocked()
		if rerr := m.rollLocked(); rerr != nil {
			return 0, err
		}
		num, err = m.appendGroupLocked(entries)
		if err != nil {
			// The fresh local segment rejected the group too — the medium
			// is refusing writes outright (disk full), not just one bad
			// file. Spill the segment directly onto the backup tier and
			// retry once more there.
			m.abandonActiveLocked()
			if rerr := m.rollBackupLocked(); rerr != nil {
				return 0, err
			}
			num, err = m.appendGroupLocked(entries)
		}
	}
	return num, err
}

// rollBackupLocked starts a new active segment directly on the backup
// tier, bypassing the local medium entirely. Used when a freshly rolled
// local segment still rejects writes: Create succeeded but the device is
// out of space, so retrying locally is pointless. The next size-based
// roll tries the local medium again — recovery is automatic.
func (m *Manager) rollBackupLocked() error {
	if m.opts.Backup == nil {
		return errors.New("wal: no backup tier to spill to")
	}
	num := m.nextNum
	m.nextNum++
	w, err := m.opts.Backup.Create(SegmentName(m.opts.Dir, num))
	if err != nil {
		return err
	}
	m.active = w
	m.activeRW = NewRecordWriter(w)
	m.segments = append(m.segments, SegmentMeta{Num: num, Spilled: true})
	m.spills++
	return m.writeIndexLocked()
}

// appendGroupLocked writes one entry group into the active segment,
// applying the group fsync and the size-based roll.
func (m *Manager) appendGroupLocked(entries []Entry) (uint64, error) {
	cur := &m.segments[len(m.segments)-1]
	for _, e := range entries {
		if err := m.activeRW.Append(e.Payload); err != nil {
			return 0, err
		}
		cur.Bytes += int64(len(e.Payload) + headerLen)
		if cur.MinSeq == 0 || e.MinSeq < cur.MinSeq {
			cur.MinSeq = e.MinSeq
		}
		if e.MaxSeq > cur.MaxSeq {
			cur.MaxSeq = e.MaxSeq
		}
	}
	num := cur.Num
	if m.opts.Sync {
		if cur.Spilled {
			// A spilled segment lives on the backup (object) tier, where
			// Sync is a no-op: bytes become durable only when the object
			// commits atomically at Close. Acking a synced group against a
			// still-open object would lose it on crash, so seal the segment
			// — the group becomes a visible object — and leave no active
			// segment. The next append rolls, retrying the local medium
			// first, which doubles as the recovery probe.
			if err := m.sealActiveLocked(); err != nil {
				return 0, err
			}
			return num, nil
		}
		if err := m.active.Sync(); err != nil {
			return 0, err
		}
	}
	if cur.Bytes >= m.opts.SegmentBytes {
		if err := m.rollLocked(); err != nil {
			return 0, err
		}
	}
	return num, nil
}

// sealActiveLocked closes the active segment without opening a successor.
// For spilled segments this is the durability barrier: the backup-tier
// object becomes visible only when Close commits it, so a failed Close
// means the whole segment's records never existed and the caller must not
// acknowledge them.
func (m *Manager) sealActiveLocked() error {
	err := m.active.Close()
	m.segments[len(m.segments)-1].Closed = true
	m.active, m.activeRW = nil, nil
	if err != nil {
		return err
	}
	return m.writeIndexLocked()
}

// abandonActiveLocked closes the active segment after a write failure
// without requiring a successful sync; the on-media prefix replays with
// torn-tail tolerance.
func (m *Manager) abandonActiveLocked() {
	if m.active == nil {
		return
	}
	_ = m.active.Close()
	m.segments[len(m.segments)-1].Closed = true
	m.active, m.activeRW = nil, nil
}

// Sync forces the active segment to stable storage. A spilled segment has
// no sync primitive — its object tier persists only whole objects — so it
// is sealed instead, which is the same barrier appendGroupLocked applies
// per synced group.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		return nil
	}
	if m.segments[len(m.segments)-1].Spilled {
		return m.sealActiveLocked()
	}
	return m.active.Sync()
}

// Roll closes the active segment and starts a new one. The DB calls this
// when it seals a memtable so that segment boundaries align with flush
// units.
func (m *Manager) Roll() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rollLocked()
}

func (m *Manager) rollLocked() error {
	if m.active != nil {
		serr := m.active.Sync()
		cerr := m.active.Close()
		idx := len(m.segments) - 1
		m.segments[idx].Closed = true
		m.active, m.activeRW = nil, nil
		sealed := m.segments[idx]
		if serr != nil || cerr != nil {
			err := serr
			if err == nil {
				err = cerr
			}
			if m.opts.Backup == nil {
				return err
			}
			// Sealing failed on the local medium. The segment's durable
			// prefix still replays (torn-tail tolerance) and its contents
			// are also held by the memtable whose flush triggered this roll,
			// so abandon the handle and keep rolling — onto the backup tier
			// if the local Create below fails as well.
			if berr := m.backupSegmentLocked(sealed); berr != nil {
				m.segments[idx].BackupPending = true
			}
		} else if err := m.backupSegmentLocked(sealed); err != nil {
			// The local copy is sealed and durable; only the redundant
			// backup upload failed (an unreachable backup tier). Defer it —
			// the next roll retries — rather than failing the commit whose
			// append triggered this roll.
			m.segments[idx].BackupPending = true
		}
	}
	m.retryPendingBackupsLocked()
	num := m.nextNum
	m.nextNum++
	meta := SegmentMeta{Num: num}
	w, err := m.be.Create(SegmentName(m.opts.Dir, num))
	if err != nil {
		if m.opts.Backup == nil {
			return err
		}
		if w, err = m.opts.Backup.Create(SegmentName(m.opts.Dir, num)); err != nil {
			return err
		}
		meta.Spilled = true
		m.spills++
	}
	m.active = w
	m.activeRW = NewRecordWriter(w)
	m.segments = append(m.segments, meta)
	return m.writeIndexLocked()
}

// ActiveSegment returns the number of the segment new appends go to
// (0 if none has been created yet).
func (m *Manager) ActiveSegment() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		return 0
	}
	return m.segments[len(m.segments)-1].Num
}

// Spills returns how many segments were created directly on the backup
// tier because the local medium could not accept them.
func (m *Manager) Spills() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spills
}

// Restored returns how many corrupt or missing local segments were
// re-materialized from the backup tier.
func (m *Manager) Restored() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.restored
}

// scanRecords walks a whole segment image checking record structure and
// checksums. Torn tails return nil — recovery tolerates them — so a non-nil
// result means genuine mid-log corruption.
func scanRecords(data []byte) error {
	rr := NewRecordReader(data)
	for {
		_, err := rr.Next()
		switch {
		case err == io.EOF || err == io.ErrUnexpectedEOF:
			return nil
		case err != nil:
			return err
		}
	}
}

// Scrub verifies the record checksums of every sealed segment's local copy,
// restoring corrupt ones from the backup tier when a clean copy exists
// there. It returns how many segments were checked, found corrupt, and
// repaired in place.
func (m *Manager) Scrub() (checked, corrupt, repaired int) {
	segs := m.Segments()
	activeNum := m.ActiveSegment()
	for _, s := range segs {
		if activeNum != 0 && s.Num == activeNum {
			continue // being written; its tail is legitimately open
		}
		name := SegmentName(m.opts.Dir, s.Num)
		data, err := m.be.ReadAll(name)
		if err != nil {
			continue // spilled or already retired; backup copy is authoritative
		}
		checked++
		if scanRecords(data) == nil {
			continue
		}
		corrupt++
		if m.opts.Backup == nil {
			continue
		}
		bdata, berr := m.opts.Backup.ReadAll(name)
		if berr != nil || scanRecords(bdata) != nil {
			continue
		}
		if storage.WriteObject(m.be, name, bdata) == nil {
			m.mu.Lock()
			m.restored++
			m.mu.Unlock()
			repaired++
		}
	}
	return checked, corrupt, repaired
}

// Segments returns a copy of the segment metadata, ascending by number.
func (m *Manager) Segments() []SegmentMeta {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SegmentMeta, len(m.segments))
	copy(out, m.segments)
	return out
}

// retryPendingBackupsLocked re-attempts deferred backup uploads. Runs on
// every roll, so an outage's backlog drains as soon as the tier returns.
func (m *Manager) retryPendingBackupsLocked() {
	if m.opts.Backup == nil {
		return
	}
	for i := range m.segments {
		if !m.segments[i].BackupPending {
			continue
		}
		if err := m.backupSegmentLocked(m.segments[i]); err == nil {
			m.segments[i].BackupPending = false
		}
	}
}

// backupSegmentLocked copies a sealed segment to the backup backend. A
// spilled segment already lives there — it IS the backup copy.
func (m *Manager) backupSegmentLocked(s SegmentMeta) error {
	if m.opts.Backup == nil || s.Spilled {
		return nil
	}
	name := SegmentName(m.opts.Dir, s.Num)
	data, err := m.be.ReadAll(name)
	if err != nil {
		return err
	}
	return storage.WriteObject(m.opts.Backup, name, data)
}

// DeleteObsolete removes closed segments whose every sequence number is
// ≤ flushedSeq (their contents are durable in SSTables). A segment whose
// delete fails (an unreachable backup tier, a transient local error) stays
// in the index so the next call retries it — GC never strands an orphan
// object silently. Already-gone objects (a spilled segment's absent local
// copy, a retried delete) are not failures.
func (m *Manager) DeleteObsolete(flushedSeq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	keep := m.segments[:0]
	var firstErr error
	for _, s := range m.segments {
		if s.Closed && s.MaxSeq != 0 && s.MaxSeq <= flushedSeq {
			ok := true
			if err := m.be.Delete(SegmentName(m.opts.Dir, s.Num)); err != nil && !errors.Is(err, storage.ErrNotFound) {
				ok = false
				if firstErr == nil {
					firstErr = err
				}
			}
			if m.opts.Backup != nil {
				if err := m.opts.Backup.Delete(SegmentName(m.opts.Dir, s.Num)); err != nil && !errors.Is(err, storage.ErrNotFound) {
					ok = false
					if firstErr == nil {
						firstErr = err
					}
				}
			}
			if ok {
				continue
			}
		}
		keep = append(keep, s)
	}
	m.segments = keep
	if err := m.writeIndexLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// SealAll marks every inactive segment closed with maxSeq as an upper
// bound on its contents. Recovery calls this after replay so that segments
// left open by a crash (whose true range the index never learned) become
// eligible for garbage collection once their data is flushed.
func (m *Manager) SealAll(maxSeq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	activeIdx := -1
	if m.active != nil {
		activeIdx = len(m.segments) - 1
	}
	for i := range m.segments {
		if i == activeIdx {
			continue
		}
		s := &m.segments[i]
		s.Closed = true
		if s.MaxSeq == 0 {
			s.MaxSeq = maxSeq
		}
	}
	return m.writeIndexLocked()
}

// Close seals the active segment without starting a new one.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		return nil
	}
	if err := m.active.Sync(); err != nil {
		return err
	}
	if err := m.active.Close(); err != nil {
		return err
	}
	idx := len(m.segments) - 1
	m.segments[idx].Closed = true
	m.active, m.activeRW = nil, nil
	// Same deferral as rollLocked: the local copy is durable, so a failed
	// backup upload at close marks the segment pending (the reopened
	// manager's first roll retries) instead of failing the shutdown.
	if err := m.backupSegmentLocked(m.segments[idx]); err != nil {
		m.segments[idx].BackupPending = true
	}
	return m.writeIndexLocked()
}

// ReplayStats reports what recovery did.
type ReplayStats struct {
	SegmentsTotal   int
	SegmentsSkipped int // skipped via eWAL seq-range metadata
	Records         int64
	Bytes           int64
}

// Replay streams every logical record with sequence data above flushedSeq
// to fn. With parallelism > 1 and the extended index available, segments
// are read and decoded concurrently; fn must then be safe for concurrent
// calls (records within one segment are always delivered in order, by one
// goroutine). Torn tails are tolerated on the newest segment and on any
// segment that was active at crash time.
func (m *Manager) Replay(flushedSeq uint64, parallelism int, fn func(segNum uint64, payload []byte) error) (ReplayStats, error) {
	segs := m.Segments()
	var stats ReplayStats
	stats.SegmentsTotal = len(segs)

	var work []SegmentMeta
	for _, s := range segs {
		if m.opts.Extended && s.Closed && s.MaxSeq != 0 && s.MaxSeq <= flushedSeq {
			stats.SegmentsSkipped++
			continue
		}
		work = append(work, s)
	}
	if parallelism < 1 || !m.opts.Extended {
		parallelism = 1
	}
	if parallelism > len(work) {
		parallelism = len(work)
	}
	if len(work) == 0 {
		return stats, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		records  int64
		bytes    int64
	)
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for _, s := range work {
		wg.Add(1)
		sem <- struct{}{}
		go func(s SegmentMeta) {
			defer wg.Done()
			defer func() { <-sem }()
			recs, n, err := m.replaySegment(s, fn)
			mu.Lock()
			records += recs
			bytes += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	stats.Records = records
	stats.Bytes = bytes
	return stats, firstErr
}

func (m *Manager) replaySegment(s SegmentMeta, fn func(uint64, []byte) error) (int64, int64, error) {
	name := SegmentName(m.opts.Dir, s.Num)
	data, err := m.be.ReadAll(name)
	if errors.Is(err, storage.ErrNotFound) && m.opts.Backup != nil {
		// Local copy gone (e.g. device loss): restore from the backup tier.
		data, err = m.opts.Backup.ReadAll(name)
	}
	if errors.Is(err, storage.ErrNotFound) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	// Mid-log corruption (a failed record CRC that is not a tolerated torn
	// tail): when the backup tier holds a clean copy, replay that instead
	// and heal the local file — before delivering a single record.
	if cerr := scanRecords(data); errors.Is(cerr, ErrCorrupt) && m.opts.Backup != nil {
		if bdata, berr := m.opts.Backup.ReadAll(name); berr == nil && scanRecords(bdata) == nil {
			data = bdata
			m.mu.Lock()
			m.restored++
			m.mu.Unlock()
			_ = storage.WriteObject(m.be, name, bdata) // best-effort heal
		}
	}
	rr := NewRecordReader(data)
	var records, bytes int64
	for {
		payload, err := rr.Next()
		if err == io.EOF {
			return records, bytes, nil
		}
		if err == io.ErrUnexpectedEOF {
			// Torn tail: everything before it was intact; recovery keeps it.
			return records, bytes, nil
		}
		if err != nil {
			return records, bytes, err
		}
		records++
		bytes += int64(len(payload))
		if err := fn(s.Num, payload); err != nil {
			return records, bytes, err
		}
	}
}
