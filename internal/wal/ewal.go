package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"rocksmash/internal/storage"
)

// SegmentMeta is the extended per-segment metadata the eWAL maintains in a
// side index. MinSeq/MaxSeq bound the sequence numbers of the batches the
// segment holds, letting recovery skip segments entirely covered by flushed
// SSTables without reading them.
type SegmentMeta struct {
	Num    uint64 `json:"num"`
	MinSeq uint64 `json:"min_seq"`
	MaxSeq uint64 `json:"max_seq"` // 0 while the segment is still active
	Closed bool   `json:"closed"`
	Bytes  int64  `json:"bytes"`
}

type indexFile struct {
	Segments []SegmentMeta `json:"segments"`
}

// Options configures the eWAL manager.
type Options struct {
	// Dir is the object-name prefix for segments, e.g. "wal".
	Dir string
	// SegmentBytes rolls the active segment when it exceeds this size.
	SegmentBytes int64
	// Sync forces a durability barrier after every append.
	Sync bool
	// Extended enables the eWAL side index (segment seq ranges). When
	// false the manager behaves like a stock WAL: recovery must read every
	// segment serially from the oldest.
	Extended bool
	// Backup, when non-nil, receives a copy of every sealed segment
	// (typically the cloud backend), protecting unflushed writes against
	// loss of the local device. Recovery falls back to the backup copy
	// when a local segment is missing.
	Backup storage.Backend
}

// DefaultOptions returns production defaults.
func DefaultOptions() Options {
	return Options{Dir: "wal", SegmentBytes: 16 << 20, Sync: false, Extended: true}
}

// Manager owns the set of WAL segments on a backend (always the local
// tier in RocksMash; durability of cold segments is delegated to flushes).
type Manager struct {
	be   storage.Backend
	opts Options

	mu       sync.Mutex
	segments []SegmentMeta // closed + active, ascending by Num
	active   storage.Writer
	activeRW *RecordWriter
	nextNum  uint64
}

// SegmentName formats the object name of segment n under dir.
func SegmentName(dir string, n uint64) string {
	return fmt.Sprintf("%s/%06d.log", dir, n)
}

func indexName(dir string) string { return dir + "/INDEX" }

// Open loads or initializes a WAL manager. nextNum must be larger than any
// previously used segment number (the DB derives it from the manifest).
func Open(be storage.Backend, opts Options, nextNum uint64) (*Manager, error) {
	if opts.Dir == "" {
		opts.Dir = "wal"
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 16 << 20
	}
	m := &Manager{be: be, opts: opts, nextNum: nextNum}
	if err := m.loadIndex(); err != nil {
		return nil, err
	}
	for _, s := range m.segments {
		if s.Num >= m.nextNum {
			m.nextNum = s.Num + 1
		}
	}
	return m, nil
}

// loadIndex reconciles the side index with the segments actually present.
// Segments missing from the index (crash before index write) are added with
// unknown sequence ranges so recovery still reads them.
func (m *Manager) loadIndex() error {
	var idx indexFile
	data, err := m.be.ReadAll(indexName(m.opts.Dir))
	switch {
	case err == nil:
		if jerr := json.Unmarshal(data, &idx); jerr != nil {
			// A torn index is recoverable: fall back to directory scan.
			idx = indexFile{}
		}
	case errors.Is(err, storage.ErrNotFound):
	default:
		return err
	}
	known := map[uint64]SegmentMeta{}
	for _, s := range idx.Segments {
		known[s.Num] = s
	}
	names, err := m.be.List(m.opts.Dir + "/")
	if err != nil {
		return err
	}
	m.segments = nil
	seen := map[uint64]bool{}
	for _, n := range names {
		var num uint64
		if _, err := fmt.Sscanf(n, m.opts.Dir+"/%06d.log", &num); err != nil {
			continue
		}
		sz, _ := m.be.Size(n)
		seen[num] = true
		if s, ok := known[num]; ok {
			s.Bytes = sz
			m.segments = append(m.segments, s)
		} else {
			// Unknown to the index: treat as active-at-crash (unbounded).
			m.segments = append(m.segments, SegmentMeta{Num: num, Bytes: sz})
		}
	}
	// Segments surviving only on the backup tier (local device loss).
	if m.opts.Backup != nil {
		bnames, err := m.opts.Backup.List(m.opts.Dir + "/")
		if err != nil {
			return err
		}
		for _, n := range bnames {
			var num uint64
			if _, err := fmt.Sscanf(n, m.opts.Dir+"/%06d.log", &num); err != nil {
				continue
			}
			if seen[num] {
				continue
			}
			sz, _ := m.opts.Backup.Size(n)
			if s, ok := known[num]; ok {
				s.Bytes = sz
				m.segments = append(m.segments, s)
			} else {
				m.segments = append(m.segments, SegmentMeta{Num: num, Bytes: sz})
			}
		}
	}
	sort.Slice(m.segments, func(i, j int) bool { return m.segments[i].Num < m.segments[j].Num })
	return nil
}

func (m *Manager) writeIndexLocked() error {
	if !m.opts.Extended {
		return nil
	}
	data, err := json.Marshal(indexFile{Segments: m.segments})
	if err != nil {
		return err
	}
	// The index is advisory: recovery survives a missing or stale copy by
	// reading the affected segments. Skipping the fsync keeps it off the
	// commit and recovery critical paths.
	w, err := m.be.Create(indexName(m.opts.Dir))
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// Entry is one logical record of a vectored append: a batch payload and
// the sequence range it covers.
type Entry struct {
	Payload []byte
	MinSeq  uint64
	MaxSeq  uint64
}

// Append writes one batch payload covering sequence numbers
// [minSeq, maxSeq] and returns the segment number it landed in.
func (m *Manager) Append(payload []byte, minSeq, maxSeq uint64) (uint64, error) {
	return m.AppendBatch([]Entry{{Payload: payload, MinSeq: minSeq, MaxSeq: maxSeq}})
}

// AppendBatch writes a group of batch payloads under one lock acquisition
// and — when Sync is configured — one durability barrier for the whole
// group, amortizing the fsync the commit pipeline would otherwise pay per
// batch. It returns the segment the group landed in. Entries land
// contiguously in the active segment (a group never straddles a roll; the
// segment-size check runs after the group, so a segment may overshoot by at
// most one group).
func (m *Manager) AppendBatch(entries []Entry) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		if err := m.rollLocked(); err != nil {
			return 0, err
		}
	}
	cur := &m.segments[len(m.segments)-1]
	for _, e := range entries {
		if err := m.activeRW.Append(e.Payload); err != nil {
			return 0, err
		}
		cur.Bytes += int64(len(e.Payload) + headerLen)
		if cur.MinSeq == 0 || e.MinSeq < cur.MinSeq {
			cur.MinSeq = e.MinSeq
		}
		if e.MaxSeq > cur.MaxSeq {
			cur.MaxSeq = e.MaxSeq
		}
	}
	if m.opts.Sync {
		if err := m.active.Sync(); err != nil {
			return 0, err
		}
	}
	num := cur.Num
	if cur.Bytes >= m.opts.SegmentBytes {
		if err := m.rollLocked(); err != nil {
			return 0, err
		}
	}
	return num, nil
}

// Sync forces the active segment to stable storage.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		return nil
	}
	return m.active.Sync()
}

// Roll closes the active segment and starts a new one. The DB calls this
// when it seals a memtable so that segment boundaries align with flush
// units.
func (m *Manager) Roll() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rollLocked()
}

func (m *Manager) rollLocked() error {
	if m.active != nil {
		if err := m.active.Sync(); err != nil {
			return err
		}
		if err := m.active.Close(); err != nil {
			return err
		}
		m.segments[len(m.segments)-1].Closed = true
		m.active, m.activeRW = nil, nil
		if err := m.backupSegmentLocked(m.segments[len(m.segments)-1].Num); err != nil {
			return err
		}
	}
	num := m.nextNum
	m.nextNum++
	w, err := m.be.Create(SegmentName(m.opts.Dir, num))
	if err != nil {
		return err
	}
	m.active = w
	m.activeRW = NewRecordWriter(w)
	m.segments = append(m.segments, SegmentMeta{Num: num})
	return m.writeIndexLocked()
}

// ActiveSegment returns the number of the segment new appends go to
// (0 if none has been created yet).
func (m *Manager) ActiveSegment() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		return 0
	}
	return m.segments[len(m.segments)-1].Num
}

// Segments returns a copy of the segment metadata, ascending by number.
func (m *Manager) Segments() []SegmentMeta {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SegmentMeta, len(m.segments))
	copy(out, m.segments)
	return out
}

// backupSegmentLocked copies a sealed segment to the backup backend.
func (m *Manager) backupSegmentLocked(num uint64) error {
	if m.opts.Backup == nil {
		return nil
	}
	name := SegmentName(m.opts.Dir, num)
	data, err := m.be.ReadAll(name)
	if err != nil {
		return err
	}
	return storage.WriteObject(m.opts.Backup, name, data)
}

// DeleteObsolete removes closed segments whose every sequence number is
// ≤ flushedSeq (their contents are durable in SSTables).
func (m *Manager) DeleteObsolete(flushedSeq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	keep := m.segments[:0]
	var firstErr error
	for _, s := range m.segments {
		if s.Closed && s.MaxSeq != 0 && s.MaxSeq <= flushedSeq {
			if err := m.be.Delete(SegmentName(m.opts.Dir, s.Num)); err != nil && firstErr == nil {
				firstErr = err
			}
			if m.opts.Backup != nil {
				if err := m.opts.Backup.Delete(SegmentName(m.opts.Dir, s.Num)); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			continue
		}
		keep = append(keep, s)
	}
	m.segments = keep
	if err := m.writeIndexLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// SealAll marks every inactive segment closed with maxSeq as an upper
// bound on its contents. Recovery calls this after replay so that segments
// left open by a crash (whose true range the index never learned) become
// eligible for garbage collection once their data is flushed.
func (m *Manager) SealAll(maxSeq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	activeIdx := -1
	if m.active != nil {
		activeIdx = len(m.segments) - 1
	}
	for i := range m.segments {
		if i == activeIdx {
			continue
		}
		s := &m.segments[i]
		s.Closed = true
		if s.MaxSeq == 0 {
			s.MaxSeq = maxSeq
		}
	}
	return m.writeIndexLocked()
}

// Close seals the active segment without starting a new one.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		return nil
	}
	if err := m.active.Sync(); err != nil {
		return err
	}
	if err := m.active.Close(); err != nil {
		return err
	}
	m.segments[len(m.segments)-1].Closed = true
	m.active, m.activeRW = nil, nil
	if err := m.backupSegmentLocked(m.segments[len(m.segments)-1].Num); err != nil {
		return err
	}
	return m.writeIndexLocked()
}

// ReplayStats reports what recovery did.
type ReplayStats struct {
	SegmentsTotal   int
	SegmentsSkipped int // skipped via eWAL seq-range metadata
	Records         int64
	Bytes           int64
}

// Replay streams every logical record with sequence data above flushedSeq
// to fn. With parallelism > 1 and the extended index available, segments
// are read and decoded concurrently; fn must then be safe for concurrent
// calls (records within one segment are always delivered in order, by one
// goroutine). Torn tails are tolerated on the newest segment and on any
// segment that was active at crash time.
func (m *Manager) Replay(flushedSeq uint64, parallelism int, fn func(segNum uint64, payload []byte) error) (ReplayStats, error) {
	segs := m.Segments()
	var stats ReplayStats
	stats.SegmentsTotal = len(segs)

	var work []SegmentMeta
	for _, s := range segs {
		if m.opts.Extended && s.Closed && s.MaxSeq != 0 && s.MaxSeq <= flushedSeq {
			stats.SegmentsSkipped++
			continue
		}
		work = append(work, s)
	}
	if parallelism < 1 || !m.opts.Extended {
		parallelism = 1
	}
	if parallelism > len(work) {
		parallelism = len(work)
	}
	if len(work) == 0 {
		return stats, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		records  int64
		bytes    int64
	)
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for _, s := range work {
		wg.Add(1)
		sem <- struct{}{}
		go func(s SegmentMeta) {
			defer wg.Done()
			defer func() { <-sem }()
			recs, n, err := m.replaySegment(s, fn)
			mu.Lock()
			records += recs
			bytes += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	stats.Records = records
	stats.Bytes = bytes
	return stats, firstErr
}

func (m *Manager) replaySegment(s SegmentMeta, fn func(uint64, []byte) error) (int64, int64, error) {
	data, err := m.be.ReadAll(SegmentName(m.opts.Dir, s.Num))
	if errors.Is(err, storage.ErrNotFound) && m.opts.Backup != nil {
		// Local copy gone (e.g. device loss): restore from the backup tier.
		data, err = m.opts.Backup.ReadAll(SegmentName(m.opts.Dir, s.Num))
	}
	if errors.Is(err, storage.ErrNotFound) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	rr := NewRecordReader(data)
	var records, bytes int64
	for {
		payload, err := rr.Next()
		if err == io.EOF {
			return records, bytes, nil
		}
		if err == io.ErrUnexpectedEOF {
			// Torn tail: everything before it was intact; recovery keeps it.
			return records, bytes, nil
		}
		if err != nil {
			return records, bytes, err
		}
		records++
		bytes += int64(len(payload))
		if err := fn(s.Num, payload); err != nil {
			return records, bytes, err
		}
	}
}
