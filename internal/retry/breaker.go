package retry

import (
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int32

const (
	// StateClosed passes requests through, counting consecutive failures.
	StateClosed State = iota
	// StateOpen fails requests fast without touching the backend.
	StateOpen
	// StateHalfOpen lets a single probe through after the cooldown; its
	// outcome decides between closing and re-opening.
	StateHalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker open. Values below 1 default to 3.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing a probe.
	// Zero defaults to 2s.
	Cooldown time.Duration
	// OnStateChange, when non-nil, is invoked (outside the breaker's lock)
	// on every transition.
	OnStateChange func(from, to State)
}

func (c BreakerConfig) sanitize() BreakerConfig {
	if c.FailureThreshold < 1 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker. It is safe for
// concurrent use. Callers gate each request on Allow, then report the
// outcome with Success or Failure.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	consec   int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight

	trips     int64
	halfOpens int64

	// degraded accumulates time spent outside StateClosed; since marks when
	// the current non-closed span began.
	degraded time.Duration
	since    time.Time
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.sanitize()}
}

// transitionLocked moves to next and returns the callback to run after the
// lock is released (nil when no observer is configured).
func (b *Breaker) transitionLocked(next State) func() {
	from := b.state
	if from == next {
		return nil
	}
	b.state = next
	switch next {
	case StateOpen:
		b.openedAt = time.Now()
		b.trips++
		if from == StateClosed {
			b.since = time.Now()
		}
	case StateHalfOpen:
		b.halfOpens++
	case StateClosed:
		b.consec = 0
		if !b.since.IsZero() {
			b.degraded += time.Since(b.since)
			b.since = time.Time{}
		}
	}
	if cb := b.cfg.OnStateChange; cb != nil {
		return func() { cb(from, next) }
	}
	return nil
}

// Allow reports whether a request may proceed. While open it fails fast
// until the cooldown elapses, then admits exactly one half-open probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var cb func()
	allowed := false
	switch b.state {
	case StateClosed:
		allowed = true
	case StateOpen:
		if time.Since(b.openedAt) >= b.cfg.Cooldown {
			cb = b.transitionLocked(StateHalfOpen)
			b.probing = true
			allowed = true
		}
	case StateHalfOpen:
		if !b.probing {
			b.probing = true
			allowed = true
		}
	}
	b.mu.Unlock()
	if cb != nil {
		cb()
	}
	return allowed
}

// Success reports a request that reached the backend and got a response.
// It closes the breaker from any state.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.consec = 0
	b.probing = false
	cb := b.transitionLocked(StateClosed)
	b.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// Failure reports a failed request. At the configured threshold of
// consecutive failures the breaker trips open; a failed half-open probe
// re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	var cb func()
	switch b.state {
	case StateHalfOpen:
		b.probing = false
		cb = b.transitionLocked(StateOpen)
	case StateClosed:
		b.consec++
		if b.consec >= b.cfg.FailureThreshold {
			cb = b.transitionLocked(StateOpen)
		}
	}
	b.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// State returns the current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// ProbeDue reports that the breaker is open with its cooldown elapsed: the
// next Allow() would admit a half-open recovery probe. Background loops
// that fail fast while the breaker is open use this to know when issuing a
// request is worthwhile again — state transitions happen lazily in Allow,
// so without ProbeDue a quiescent system would never leave StateOpen.
func (b *Breaker) ProbeDue() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateOpen && time.Since(b.openedAt) >= b.cfg.Cooldown
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// HalfOpens returns how many probes the breaker has admitted.
func (b *Breaker) HalfOpens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.halfOpens
}

// DegradedDur returns the cumulative time spent outside StateClosed,
// including the current span when the breaker is open or half-open.
func (b *Breaker) DegradedDur() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.degraded
	if !b.since.IsZero() {
		d += time.Since(b.since)
	}
	return d
}
