// Package retry implements the engine's cloud fault-tolerance primitives:
// a retry policy (bounded attempts, exponential backoff with full jitter,
// per-operation deadline, retryable-error classification) and a circuit
// breaker that trips after consecutive failures and half-opens on a probe.
// Object stores return transient 5xx-style errors routinely; the policy
// absorbs those, while the breaker turns a sustained outage into fast,
// typed failures instead of a pile-up of blocked retry loops.
package retry

import (
	"errors"
	"math/rand"
	"time"
)

// ErrAborted is returned by Do when the cancel channel closes during a
// backoff wait (for example, the DB shutting down mid-outage). It is joined
// with the last attempt's error so callers can inspect both.
var ErrAborted = errors.New("retry: aborted")

// Policy bounds how an operation is retried.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first.
	// Values below 1 are treated as 1 (no retries).
	MaxAttempts int
	// BaseBackoff is the cap of the first retry's jittered wait; each
	// further retry doubles the cap up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff wait.
	MaxBackoff time.Duration
	// Deadline bounds the whole operation: once elapsed time plus the next
	// wait would exceed it, Do stops retrying and returns the last error.
	// Zero means no deadline.
	Deadline time.Duration
	// Retryable classifies errors; returning false stops retrying
	// immediately. Nil retries every error.
	Retryable func(error) bool
}

// Default returns the policy used for cloud requests: four attempts spread
// over roughly a second, bounded at thirty seconds end to end.
func Default() Policy {
	return Policy{
		MaxAttempts: 4,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Deadline:    30 * time.Second,
	}
}

// Sanitize fills zero fields with defaults so a partially specified policy
// behaves sensibly.
func (p Policy) Sanitize() Policy {
	d := Default()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.Deadline < 0 {
		p.Deadline = 0
	}
	return p
}

// Backoff returns the jittered wait before retry number attempt (1-based:
// attempt 1 is the wait after the first failure). Full jitter — uniform in
// [0, cap) where cap doubles per attempt — decorrelates retry storms from
// concurrent uploads hitting the same outage.
func (p Policy) Backoff(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	cap := p.BaseBackoff
	for i := 1; i < attempt && cap < p.MaxBackoff; i++ {
		cap *= 2
	}
	if cap > p.MaxBackoff {
		cap = p.MaxBackoff
	}
	if cap <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(cap)))
}

// retryable applies the classification with the nil default.
func (p Policy) retryable(err error) bool {
	if p.Retryable == nil {
		return true
	}
	return p.Retryable(err)
}

// Do runs op under the policy. onRetry, when non-nil, fires before each
// backoff wait with the 1-based attempt number that just failed, its error,
// and the chosen wait. A close of cancel during a wait aborts promptly,
// returning ErrAborted joined with the last attempt's error; attempts
// themselves are never interrupted.
func Do(p Policy, cancel <-chan struct{}, onRetry func(attempt int, err error, delay time.Duration), op func() error) error {
	p = p.Sanitize()
	start := time.Now()
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !p.retryable(err) || attempt >= p.MaxAttempts {
			return err
		}
		delay := p.Backoff(attempt)
		if p.Deadline > 0 && time.Since(start)+delay > p.Deadline {
			return err
		}
		if onRetry != nil {
			onRetry(attempt, err, delay)
		}
		if cancel != nil {
			select {
			case <-cancel:
				return errors.Join(ErrAborted, err)
			default:
			}
		}
		timer := time.NewTimer(delay)
		if cancel != nil {
			select {
			case <-cancel:
				timer.Stop()
				return errors.Join(ErrAborted, err)
			case <-timer.C:
			}
		} else {
			<-timer.C
		}
	}
}
