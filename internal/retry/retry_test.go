package retry

import (
	"errors"
	"testing"
	"time"
)

func TestBackoffBounds(t *testing.T) {
	p := Policy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	for attempt := 1; attempt <= 8; attempt++ {
		cap := p.BaseBackoff << (attempt - 1)
		if cap > p.MaxBackoff {
			cap = p.MaxBackoff
		}
		for i := 0; i < 100; i++ {
			d := p.Backoff(attempt)
			if d < 0 || d >= cap {
				t.Fatalf("Backoff(%d) = %s, want in [0, %s)", attempt, d, cap)
			}
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	var retries []int
	err := Do(Policy{MaxAttempts: 5, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond},
		nil,
		func(attempt int, err error, delay time.Duration) { retries = append(retries, attempt) },
		func() error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("onRetry attempts = %v, want [1 2]", retries)
	}
}

func TestDoStopsAtMaxAttempts(t *testing.T) {
	calls := 0
	fail := errors.New("persistent")
	err := Do(Policy{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond},
		nil, nil, func() error { calls++; return fail })
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v, want the op error", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoNonRetryableStopsImmediately(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	err := Do(Policy{
		MaxAttempts: 5, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond,
		Retryable: func(err error) bool { return !errors.Is(err, permanent) },
	}, nil, nil, func() error { calls++; return permanent })
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("err = %v calls = %d, want permanent after 1 call", err, calls)
	}
}

func TestDoCancelAbortsWait(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	fail := errors.New("outage")
	calls := 0
	start := time.Now()
	err := Do(Policy{MaxAttempts: 10, BaseBackoff: time.Hour, MaxBackoff: time.Hour},
		cancel, nil, func() error { calls++; return fail })
	if !errors.Is(err, ErrAborted) || !errors.Is(err, fail) {
		t.Fatalf("err = %v, want ErrAborted joined with op error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retries after cancel)", calls)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled Do slept anyway")
	}
}

func TestDoDeadlineStopsRetrying(t *testing.T) {
	fail := errors.New("slow outage")
	calls := 0
	err := Do(Policy{
		MaxAttempts: 100,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Deadline:    time.Nanosecond, // elapsed+delay always exceeds it
	}, nil, nil, func() error { calls++; return fail })
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v, want op error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (deadline exhausted)", calls)
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	var transitions []string
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         10 * time.Millisecond,
		OnStateChange: func(from, to State) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	})
	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("new breaker should be closed and allowing")
	}
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("breaker tripped before threshold")
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("breaker did not trip at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request before cooldown")
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", b.Trips())
	}

	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe not admitted")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe admitted while first in flight")
	}
	b.Failure() // failed probe re-opens
	if b.State() != StateOpen || b.Trips() != 2 {
		t.Fatalf("failed probe: state=%s trips=%d, want open/2", b.State(), b.Trips())
	}

	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	b.Success()
	if b.State() != StateClosed {
		t.Fatalf("state = %s after successful probe, want closed", b.State())
	}
	if b.HalfOpens() != 2 {
		t.Fatalf("HalfOpens = %d, want 2", b.HalfOpens())
	}
	if b.DegradedDur() <= 0 {
		t.Fatal("DegradedDur should be positive after an open span")
	}
	want := []string{
		"closed>open", "open>half-open", "half-open>open", "open>half-open", "half-open>closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour})
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("interleaved successes must reset the consecutive-failure count")
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("breaker should trip after two consecutive failures")
	}
}
