// Package vitals records how a running store's health evolves over time:
// a background sampler snapshots the engine's cumulative counters into a
// fixed-size lock-free ring at a configurable interval, and consecutive
// samples are differentiated into windowed rates — ops/s, bytes/s per
// tier, windowed cache hit ratios, write amplification, cloud $/hour and
// throughput-per-dollar. Point-in-time Metrics() answers "where is the
// store now"; vitals answers "which way is it moving", which is what
// dashboards (`mashctl top`), the /vitals endpoint, and the cost/perf
// autotuner consume.
//
// The package is engine-agnostic: the DB hands NewSampler a closure that
// produces a Sample, so vitals has no dependency on internal/db and the
// hot write/read paths never touch it (a disabled sampler is a nil
// pointer — zero goroutines, zero allocations).
package vitals

import (
	"sync"
	"sync/atomic"
	"time"
)

// HoursPerMonth converts a $/GB-month storage price into the $/hour rate
// the windowed cost split reports (365.25/12 days).
const HoursPerMonth = 730.5

// Sample is one point-in-time snapshot of the engine's cumulative
// counters and gauges. Counters only ever grow; Window differentiates
// consecutive samples into rates. Fields mirror a condensed db.Metrics.
type Sample struct {
	UnixNano int64 `json:"unix_nano"`

	// Cumulative engine counters.
	Reads              int64 `json:"reads"`
	Writes             int64 `json:"writes"`
	BytesWritten       int64 `json:"bytes_written"`
	WriteStalls        int64 `json:"write_stalls"`
	Flushes            int64 `json:"flushes"`
	FlushBytes         int64 `json:"flush_bytes"`
	Compactions        int64 `json:"compactions"`
	CompactBytesIn     int64 `json:"compact_bytes_in"`
	CompactBytesOut    int64 `json:"compact_bytes_out"`
	CommitGroups       int64 `json:"commit_groups"`
	CommitGroupBatches int64 `json:"commit_group_batches"`

	// Cumulative cache outcomes (counts, so ratios can be windowed).
	BlockHits    int64 `json:"block_hits"`
	BlockMisses  int64 `json:"block_misses"`
	PCacheHits   int64 `json:"pcache_hits"`
	PCacheMisses int64 `json:"pcache_misses"`

	// Cumulative storage-device traffic per tier.
	LocalGetOps     int64 `json:"local_get_ops"`
	LocalPutOps     int64 `json:"local_put_ops"`
	LocalReadBytes  int64 `json:"local_read_bytes"`
	LocalWriteBytes int64 `json:"local_write_bytes"`
	CloudGetOps     int64 `json:"cloud_get_ops"`
	CloudPutOps     int64 `json:"cloud_put_ops"`
	CloudReadBytes  int64 `json:"cloud_read_bytes"`
	CloudWriteBytes int64 `json:"cloud_write_bytes"`

	// Cumulative read-path attribution (profiled Gets).
	ProfiledGets    int64 `json:"profiled_gets"`
	ReadBlocks      int64 `json:"read_blocks"`
	ReadBlocksCloud int64 `json:"read_blocks_cloud"`

	// Cumulative range-scan attribution: sorted-view outcomes at iterator
	// construction, background view builds, live keys yielded by
	// iterators, and the blocks those iterators fetched.
	ScanViewHits   int64 `json:"scan_view_hits"`
	ScanViewMisses int64 `json:"scan_view_misses"`
	ViewBuilds     int64 `json:"view_builds"`
	IterKeys       int64 `json:"iter_keys"`
	IterBlocks     int64 `json:"iter_blocks"`

	// Per-level shape and compaction attribution, indexed by level. The
	// In/Out arrays are indexed by *source* level (outputs land one level
	// deeper); LevelServes/LevelProbes are the read-path per-level totals.
	LevelFiles    []int   `json:"level_files"`
	LevelBytes    []int64 `json:"level_bytes"`
	LevelBytesIn  []int64 `json:"level_bytes_in"`
	LevelBytesOut []int64 `json:"level_bytes_out"`
	LevelServes   []int64 `json:"level_serves"`
	LevelProbes   []int64 `json:"level_probes"`

	// Gauges.
	LocalBytes     int64   `json:"local_bytes"`
	CloudBytes     int64   `json:"cloud_bytes"`
	CompactionDebt int64   `json:"compaction_debt"`
	SpaceAmp       float64 `json:"space_amp"`
	PendingTables  int     `json:"pending_tables"`
	PendingBytes   int64   `json:"pending_bytes"`
	Breaker        string  `json:"breaker,omitempty"`

	// GetP99Nanos is the cumulative Get latency p99 gauge (0 before any
	// reads); the flight recorder's latency-spike detector baselines it.
	// IncidentsTriggered counts detector incidents fired so far.
	GetP99Nanos        int64 `json:"get_p99_nanos,omitempty"`
	IncidentsTriggered int64 `json:"incidents_triggered,omitempty"`

	// Local-tier robustness: the local breaker gauge, tables misplaced in
	// the cloud tier by local-degraded landings, and cumulative corruption
	// scrub/repair outcomes.
	LocalBreaker        string `json:"local_breaker,omitempty"`
	MisplacedTables     int    `json:"misplaced_tables"`
	LocalDegradedTables int64  `json:"local_degraded_tables"`
	LocalDrainedBack    int64  `json:"local_drained_back"`
	CorruptionsDetected int64  `json:"corruptions_detected"`
	CorruptionsRepaired int64  `json:"corruptions_repaired"`

	// Simulated cloud bill: storage is a $/month gauge at current
	// capacity; request and egress are cumulative dollars.
	CostStorageMonthly float64 `json:"cost_storage_monthly"`
	CostRequest        float64 `json:"cost_request"`
	CostEgress         float64 `json:"cost_egress"`

	// Per-shard cumulative ops (writes+reads), for balance skew. Empty
	// in an unsharded store.
	ShardOps []int64 `json:"shard_ops,omitempty"`
}

// Time returns the sample's wall-clock time.
func (s Sample) Time() time.Time { return time.Unix(0, s.UnixNano) }

// CostSplit is the windowed cloud bill rate, in dollars per hour.
type CostSplit struct {
	Storage float64 `json:"storage"`
	Request float64 `json:"request"`
	Egress  float64 `json:"egress"`
	Total   float64 `json:"total"`
}

// Window is the derivative of two consecutive samples: every rate is
// (end-start)/dt, ratios are computed over the window's own deltas, and
// gauges (breaker, debt, pending) carry the end sample's value.
type Window struct {
	StartUnixNano int64   `json:"start_unix_nano"`
	EndUnixNano   int64   `json:"end_unix_nano"`
	Seconds       float64 `json:"seconds"`

	WriteOpsPerSec  float64 `json:"write_ops_per_sec"`
	ReadOpsPerSec   float64 `json:"read_ops_per_sec"`
	UserBytesPerSec float64 `json:"user_bytes_per_sec"`
	StallsPerSec    float64 `json:"stalls_per_sec"`

	FlushBytesPerSec      float64 `json:"flush_bytes_per_sec"`
	CompactInBytesPerSec  float64 `json:"compact_in_bytes_per_sec"`
	CompactOutBytesPerSec float64 `json:"compact_out_bytes_per_sec"`
	// WriteAmp is the windowed physical-write amplification: table bytes
	// written by flushes and compactions per user byte committed in the
	// window (0 when no user bytes arrived).
	WriteAmp float64 `json:"write_amp"`
	// ReadAmpBlocksPerGet is the windowed blocks-per-profiled-Get.
	ReadAmpBlocksPerGet float64 `json:"read_amp_blocks_per_get"`
	CloudBlocksPerSec   float64 `json:"cloud_blocks_per_sec"`

	// ViewHitRatio is the windowed fraction of per-level iterator
	// constructions served by a sorted view; ScanBlocksPerKey the windowed
	// blocks fetched per live key yielded by iterators (scan read-amp).
	ViewHitRatio     float64 `json:"view_hit_ratio"`
	ScanBlocksPerKey float64 `json:"scan_blocks_per_key"`

	// Windowed cache hit ratios (NaN-free: 0 when no lookups happened).
	BlockHitRatio  float64 `json:"block_hit_ratio"`
	PCacheHitRatio float64 `json:"pcache_hit_ratio"`

	LocalReadBytesPerSec  float64 `json:"local_read_bytes_per_sec"`
	LocalWriteBytesPerSec float64 `json:"local_write_bytes_per_sec"`
	CloudReadBytesPerSec  float64 `json:"cloud_read_bytes_per_sec"`
	CloudWriteBytesPerSec float64 `json:"cloud_write_bytes_per_sec"`
	CloudGetsPerSec       float64 `json:"cloud_gets_per_sec"`
	CloudPutsPerSec       float64 `json:"cloud_puts_per_sec"`

	// CommitGroupSize is the windowed mean batches per commit group.
	CommitGroupSize float64 `json:"commit_group_size"`

	// Gauges at the window's end.
	Breaker        string  `json:"breaker,omitempty"`
	LocalBreaker   string  `json:"local_breaker,omitempty"`
	CompactionDebt int64   `json:"compaction_debt"`
	SpaceAmp       float64 `json:"space_amp"`
	PendingTables  int     `json:"pending_tables"`
	// MisplacedTables counts local-level tables currently living
	// cloud-side after local-degraded landings (end-gauge).
	MisplacedTables int `json:"misplaced_tables"`
	// CorruptionsPerSec is the windowed rate of corruption detections
	// (scrub plus read path); RepairsPerSec the matching repair rate.
	CorruptionsPerSec float64 `json:"corruptions_per_sec"`
	RepairsPerSec     float64 `json:"repairs_per_sec"`

	// ShardSkew is (max-min)/mean of the per-shard op deltas in the
	// window; 0 for perfect balance or a single shard.
	ShardSkew float64 `json:"shard_skew"`

	// GetP99Nanos carries the end sample's Get-latency p99 gauge;
	// IncidentsPerSec is the windowed detector-incident rate.
	GetP99Nanos     int64   `json:"get_p99_nanos,omitempty"`
	IncidentsPerSec float64 `json:"incidents_per_sec,omitempty"`

	// DollarsPerHour splits the windowed cloud cost rate: storage is the
	// end-capacity monthly price rescaled to an hour; request and egress
	// are the window's observed spend rescaled to an hour.
	DollarsPerHour CostSplit `json:"dollars_per_hour"`
	// OpsPerDollar is throughput-per-dollar: windowed ops/s divided by
	// the windowed $/hour rate, i.e. operations bought per dollar-hour.
	OpsPerDollar float64 `json:"ops_per_dollar"`
}

// ratio returns num/den, or 0 for an empty denominator.
func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// Derive differentiates two samples into a Window. prev must precede cur;
// a non-positive elapsed time yields a zero-duration window with only the
// end gauges filled in.
func Derive(prev, cur Sample) Window {
	w := Window{
		StartUnixNano:  prev.UnixNano,
		EndUnixNano:    cur.UnixNano,
		Breaker:        cur.Breaker,
		LocalBreaker:   cur.LocalBreaker,
		CompactionDebt: cur.CompactionDebt,
		SpaceAmp:       cur.SpaceAmp,
		PendingTables:  cur.PendingTables,

		MisplacedTables: cur.MisplacedTables,
		GetP99Nanos:     cur.GetP99Nanos,
	}
	dt := float64(cur.UnixNano-prev.UnixNano) / float64(time.Second)
	if dt <= 0 {
		return w
	}
	w.Seconds = dt
	per := func(a, b int64) float64 { return float64(b-a) / dt }

	w.WriteOpsPerSec = per(prev.Writes, cur.Writes)
	w.ReadOpsPerSec = per(prev.Reads, cur.Reads)
	w.UserBytesPerSec = per(prev.BytesWritten, cur.BytesWritten)
	w.StallsPerSec = per(prev.WriteStalls, cur.WriteStalls)
	w.FlushBytesPerSec = per(prev.FlushBytes, cur.FlushBytes)
	w.CompactInBytesPerSec = per(prev.CompactBytesIn, cur.CompactBytesIn)
	w.CompactOutBytesPerSec = per(prev.CompactBytesOut, cur.CompactBytesOut)
	w.WriteAmp = ratio(
		float64(cur.FlushBytes-prev.FlushBytes+cur.CompactBytesOut-prev.CompactBytesOut),
		float64(cur.BytesWritten-prev.BytesWritten))
	w.ReadAmpBlocksPerGet = ratio(
		float64(cur.ReadBlocks-prev.ReadBlocks),
		float64(cur.ProfiledGets-prev.ProfiledGets))
	w.CloudBlocksPerSec = per(prev.ReadBlocksCloud, cur.ReadBlocksCloud)
	w.ViewHitRatio = ratio(
		float64(cur.ScanViewHits-prev.ScanViewHits),
		float64(cur.ScanViewHits-prev.ScanViewHits+cur.ScanViewMisses-prev.ScanViewMisses))
	w.ScanBlocksPerKey = ratio(
		float64(cur.IterBlocks-prev.IterBlocks),
		float64(cur.IterKeys-prev.IterKeys))

	w.BlockHitRatio = ratio(
		float64(cur.BlockHits-prev.BlockHits),
		float64(cur.BlockHits-prev.BlockHits+cur.BlockMisses-prev.BlockMisses))
	w.PCacheHitRatio = ratio(
		float64(cur.PCacheHits-prev.PCacheHits),
		float64(cur.PCacheHits-prev.PCacheHits+cur.PCacheMisses-prev.PCacheMisses))

	w.LocalReadBytesPerSec = per(prev.LocalReadBytes, cur.LocalReadBytes)
	w.LocalWriteBytesPerSec = per(prev.LocalWriteBytes, cur.LocalWriteBytes)
	w.CloudReadBytesPerSec = per(prev.CloudReadBytes, cur.CloudReadBytes)
	w.CloudWriteBytesPerSec = per(prev.CloudWriteBytes, cur.CloudWriteBytes)
	w.CloudGetsPerSec = per(prev.CloudGetOps, cur.CloudGetOps)
	w.CloudPutsPerSec = per(prev.CloudPutOps, cur.CloudPutOps)

	w.CorruptionsPerSec = per(prev.CorruptionsDetected, cur.CorruptionsDetected)
	w.RepairsPerSec = per(prev.CorruptionsRepaired, cur.CorruptionsRepaired)
	w.IncidentsPerSec = per(prev.IncidentsTriggered, cur.IncidentsTriggered)

	w.CommitGroupSize = ratio(
		float64(cur.CommitGroupBatches-prev.CommitGroupBatches),
		float64(cur.CommitGroups-prev.CommitGroups))

	if n := len(cur.ShardOps); n > 1 && len(prev.ShardOps) == n {
		min, max, sum := int64(1<<62), int64(-1), int64(0)
		for i := range cur.ShardOps {
			d := cur.ShardOps[i] - prev.ShardOps[i]
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
			sum += d
		}
		if sum > 0 {
			mean := float64(sum) / float64(n)
			w.ShardSkew = float64(max-min) / mean
		}
	}

	// $/hour: storage is the capacity gauge rescaled from a month; the
	// request/egress components are the window's incremental spend
	// extrapolated to an hour.
	w.DollarsPerHour = CostSplit{
		Storage: cur.CostStorageMonthly / HoursPerMonth,
		Request: (cur.CostRequest - prev.CostRequest) / dt * 3600,
		Egress:  (cur.CostEgress - prev.CostEgress) / dt * 3600,
	}
	w.DollarsPerHour.Total = w.DollarsPerHour.Storage +
		w.DollarsPerHour.Request + w.DollarsPerHour.Egress
	w.OpsPerDollar = ratio(w.WriteOpsPerSec+w.ReadOpsPerSec, w.DollarsPerHour.Total)
	return w
}

// ring is the fixed-size lock-free sample history: a single writer (the
// sampler goroutine) publishes each sample through an atomic pointer slot
// and then advances the head; readers copy out pointers without blocking
// the writer. Samples are immutable once published.
type ring struct {
	slots []atomic.Pointer[Sample]
	head  atomic.Uint64 // total samples ever published
}

func newRing(n int) *ring {
	if n < 2 {
		n = 2
	}
	return &ring{slots: make([]atomic.Pointer[Sample], n)}
}

func (r *ring) push(s *Sample) {
	h := r.head.Load()
	r.slots[h%uint64(len(r.slots))].Store(s)
	r.head.Store(h + 1)
}

// snapshot returns the retained samples, oldest first. Racing pushes may
// tear at most the boundary: a slot observed both before and after an
// overwrite is dropped rather than misordered.
func (r *ring) snapshot() []Sample {
	h := r.head.Load()
	n := uint64(len(r.slots))
	lo := uint64(0)
	if h > n {
		lo = h - n
	}
	out := make([]Sample, 0, h-lo)
	var lastNano int64
	for i := lo; i < h; i++ {
		p := r.slots[i%n].Load()
		if p == nil || p.UnixNano < lastNano {
			// The writer lapped us into this slot; skip the torn entry.
			continue
		}
		lastNano = p.UnixNano
		out = append(out, *p)
	}
	return out
}

// DefaultHistory is the ring capacity when the caller does not choose one:
// at a 1s interval it retains 12 minutes of history.
const DefaultHistory = 720

// Sampler drives the ring: one background goroutine calls snap every
// interval and publishes the result. Stop (idempotent) halts the goroutine
// and waits for it to exit, so Close-time teardown leaks nothing.
type Sampler struct {
	interval time.Duration
	snap     func() Sample
	ring     *ring
	quit     chan struct{}
	done     chan struct{}
	stop     sync.Once
}

// NewSampler starts sampling snap every interval into a ring of history
// samples (DefaultHistory when history <= 0). One sample is taken
// synchronously so Latest never comes up empty on a just-opened store.
func NewSampler(interval time.Duration, history int, snap func() Sample) *Sampler {
	if history <= 0 {
		history = DefaultHistory
	}
	s := &Sampler{
		interval: interval,
		snap:     snap,
		ring:     newRing(history),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.observe()
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.observe()
		}
	}
}

// observe takes one sample now and publishes it.
func (s *Sampler) observe() {
	smp := s.snap()
	if smp.UnixNano == 0 {
		smp.UnixNano = time.Now().UnixNano()
	}
	s.ring.push(&smp)
}

// Stop halts the sampling goroutine and waits for it to exit. Safe to call
// more than once; the ring remains readable after Stop.
func (s *Sampler) Stop() {
	s.stop.Do(func() { close(s.quit) })
	<-s.done
}

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Samples returns the retained history, oldest first.
func (s *Sampler) Samples() []Sample { return s.ring.snapshot() }

// Latest returns the newest sample, if any has been taken.
func (s *Sampler) Latest() (Sample, bool) {
	all := s.ring.snapshot()
	if len(all) == 0 {
		return Sample{}, false
	}
	return all[len(all)-1], true
}

// Windows differentiates the retained history into len(samples)-1
// consecutive windows, oldest first.
func (s *Sampler) Windows() []Window {
	return WindowsOf(s.ring.snapshot())
}

// WindowsOf differentiates an already-captured sample series.
func WindowsOf(samples []Sample) []Window {
	if len(samples) < 2 {
		return nil
	}
	out := make([]Window, 0, len(samples)-1)
	for i := 1; i < len(samples); i++ {
		out = append(out, Derive(samples[i-1], samples[i]))
	}
	return out
}

// LatestWindow derives the rate window over the two newest samples.
func (s *Sampler) LatestWindow() (Window, bool) {
	all := s.ring.snapshot()
	if len(all) < 2 {
		return Window{}, false
	}
	return Derive(all[len(all)-2], all[len(all)-1]), true
}

// Report is the /vitals endpoint (and vitals.json artifact) payload: the
// full retained ring plus the latest derived window.
type Report struct {
	Enabled         bool     `json:"enabled"`
	IntervalSeconds float64  `json:"interval_seconds"`
	Latest          *Sample  `json:"latest,omitempty"`
	Window          *Window  `json:"window,omitempty"`
	Samples         []Sample `json:"samples,omitempty"`
	Windows         []Window `json:"windows,omitempty"`
}

// Report assembles the endpoint payload from the current ring contents.
func (s *Sampler) Report() Report {
	r := Report{Enabled: true, IntervalSeconds: s.interval.Seconds()}
	r.Samples = s.ring.snapshot()
	if len(r.Samples) > 0 {
		last := r.Samples[len(r.Samples)-1]
		r.Latest = &last
	}
	r.Windows = WindowsOf(r.Samples)
	if len(r.Windows) > 0 {
		w := r.Windows[len(r.Windows)-1]
		r.Window = &w
	}
	return r
}
