package vitals

import (
	"math"
	"runtime"
	"testing"
	"time"
)

// TestDeriveRates checks the windowed differentiation arithmetic on a
// hand-built pair of samples spanning exactly two seconds.
func TestDeriveRates(t *testing.T) {
	base := time.Now().UnixNano()
	prev := Sample{
		UnixNano:        base,
		Writes:          100,
		Reads:           50,
		BytesWritten:    1000,
		FlushBytes:      500,
		CompactBytesOut: 300,
		BlockHits:       10,
		BlockMisses:     10,
		ProfiledGets:    10,
		ReadBlocks:      20,
		CommitGroups:    4, CommitGroupBatches: 8,
		CostRequest: 1.0,
	}
	cur := Sample{
		UnixNano:        base + 2*int64(time.Second),
		Writes:          300,                       // +200 over 2s -> 100/s
		Reads:           150,                       // +100 -> 50/s
		BytesWritten:    3000,                      // +2000
		FlushBytes:      1500,                      // +1000
		CompactBytesOut: 1300,                      // +1000
		BlockHits:       40,                        // +30 hits
		BlockMisses:     20,                        // +10 misses -> 0.75
		ProfiledGets:    60,                        // +50 gets
		ReadBlocks:      120,                       // +100 blocks -> 2 blk/get
		CommitGroups:    8, CommitGroupBatches: 24, // +4 groups, +16 batches -> 4
		CostStorageMonthly: 7.305, // -> $0.01/hr
		CostRequest:        1.5,   // +$0.5 over 2s -> $900/hr
		Breaker:            "open",
		CompactionDebt:     42,
		PendingTables:      3,
	}
	w := Derive(prev, cur)

	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	approx("Seconds", w.Seconds, 2)
	approx("WriteOpsPerSec", w.WriteOpsPerSec, 100)
	approx("ReadOpsPerSec", w.ReadOpsPerSec, 50)
	approx("UserBytesPerSec", w.UserBytesPerSec, 1000)
	// (flush 1000 + compact-out 1000) / user 2000 = 1.0
	approx("WriteAmp", w.WriteAmp, 1.0)
	approx("ReadAmpBlocksPerGet", w.ReadAmpBlocksPerGet, 2.0)
	approx("BlockHitRatio", w.BlockHitRatio, 0.75)
	approx("CommitGroupSize", w.CommitGroupSize, 4.0)
	approx("DollarsPerHour.Storage", w.DollarsPerHour.Storage, 0.01)
	approx("DollarsPerHour.Request", w.DollarsPerHour.Request, 900)
	approx("DollarsPerHour.Total", w.DollarsPerHour.Total, 900.01)
	approx("OpsPerDollar", w.OpsPerDollar, 150/900.01)
	if w.Breaker != "open" || w.CompactionDebt != 42 || w.PendingTables != 3 {
		t.Errorf("end gauges not carried: %+v", w)
	}
}

// TestDeriveEmptyDenominators feeds identical samples one second apart:
// every ratio must come out 0, never NaN or Inf.
func TestDeriveEmptyDenominators(t *testing.T) {
	s := Sample{UnixNano: time.Now().UnixNano()}
	cur := s
	cur.UnixNano += int64(time.Second)
	w := Derive(s, cur)
	for name, v := range map[string]float64{
		"WriteAmp":            w.WriteAmp,
		"ReadAmpBlocksPerGet": w.ReadAmpBlocksPerGet,
		"BlockHitRatio":       w.BlockHitRatio,
		"PCacheHitRatio":      w.PCacheHitRatio,
		"CommitGroupSize":     w.CommitGroupSize,
		"OpsPerDollar":        w.OpsPerDollar,
		"ShardSkew":           w.ShardSkew,
	} {
		if v != 0 {
			t.Errorf("%s = %v on an all-zero window, want 0", name, v)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v, want finite", name, v)
		}
	}
}

// TestDeriveZeroDuration: a non-positive dt yields a zero-rate window that
// still carries the end gauges.
func TestDeriveZeroDuration(t *testing.T) {
	s := Sample{UnixNano: 1000, Writes: 50, Breaker: "half-open", PendingTables: 2}
	w := Derive(s, s)
	if w.Seconds != 0 || w.WriteOpsPerSec != 0 {
		t.Errorf("zero-dt window has rates: %+v", w)
	}
	if w.Breaker != "half-open" || w.PendingTables != 2 {
		t.Errorf("zero-dt window dropped gauges: %+v", w)
	}
}

// TestDeriveShardSkew: three shards with op deltas 10/20/30 — skew is
// (30-10)/20 = 1.0. Perfectly balanced deltas give 0.
func TestDeriveShardSkew(t *testing.T) {
	base := time.Now().UnixNano()
	prev := Sample{UnixNano: base, ShardOps: []int64{100, 100, 100}}
	cur := Sample{UnixNano: base + int64(time.Second), ShardOps: []int64{110, 120, 130}}
	if w := Derive(prev, cur); math.Abs(w.ShardSkew-1.0) > 1e-9 {
		t.Errorf("ShardSkew = %v, want 1.0", w.ShardSkew)
	}
	cur.ShardOps = []int64{120, 120, 120}
	if w := Derive(prev, cur); w.ShardSkew != 0 {
		t.Errorf("balanced ShardSkew = %v, want 0", w.ShardSkew)
	}
}

// TestRingWrapAround pushes 3x capacity and checks the snapshot returns
// exactly the newest capacity samples, oldest first.
func TestRingWrapAround(t *testing.T) {
	const cap = 8
	r := newRing(cap)
	for i := 1; i <= 3*cap; i++ {
		r.push(&Sample{UnixNano: int64(i)})
	}
	got := r.snapshot()
	if len(got) != cap {
		t.Fatalf("snapshot len = %d, want %d", len(got), cap)
	}
	for i, s := range got {
		want := int64(2*cap + i + 1)
		if s.UnixNano != want {
			t.Errorf("snapshot[%d].UnixNano = %d, want %d", i, s.UnixNano, want)
		}
	}
}

// TestRingPartial: fewer pushes than capacity returns just those samples.
func TestRingPartial(t *testing.T) {
	r := newRing(16)
	if got := r.snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot len = %d", len(got))
	}
	r.push(&Sample{UnixNano: 1})
	r.push(&Sample{UnixNano: 2})
	got := r.snapshot()
	if len(got) != 2 || got[0].UnixNano != 1 || got[1].UnixNano != 2 {
		t.Fatalf("partial snapshot = %+v", got)
	}
}

// TestWindowsOf: n samples derive n-1 windows in order.
func TestWindowsOf(t *testing.T) {
	base := time.Now().UnixNano()
	var samples []Sample
	for i := 0; i < 5; i++ {
		samples = append(samples, Sample{
			UnixNano: base + int64(i)*int64(time.Second),
			Writes:   int64(i) * 10,
		})
	}
	wins := WindowsOf(samples)
	if len(wins) != 4 {
		t.Fatalf("WindowsOf returned %d windows, want 4", len(wins))
	}
	for i, w := range wins {
		if math.Abs(w.WriteOpsPerSec-10) > 1e-9 {
			t.Errorf("window %d WriteOpsPerSec = %v, want 10", i, w.WriteOpsPerSec)
		}
	}
	if WindowsOf(samples[:1]) != nil {
		t.Error("WindowsOf(single sample) should be nil")
	}
}

// TestSamplerLifecycle: the sampler takes an immediate synchronous sample,
// accumulates more on its ticker, stops idempotently, and leaks no
// goroutine.
func TestSamplerLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	var n int64
	s := NewSampler(time.Millisecond, 64, func() Sample {
		n++
		return Sample{UnixNano: time.Now().UnixNano(), Writes: n}
	})
	if _, ok := s.Latest(); !ok {
		t.Fatal("no synchronous first sample")
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(s.Samples()) < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(s.Samples()); got < 5 {
		t.Fatalf("sampler only took %d samples", got)
	}
	if _, ok := s.LatestWindow(); !ok {
		t.Fatal("no latest window with >=2 samples")
	}
	rep := s.Report()
	if !rep.Enabled || rep.Latest == nil || rep.Window == nil || len(rep.Windows) != len(rep.Samples)-1 {
		t.Fatalf("bad report: enabled=%v latest=%v window=%v samples=%d windows=%d",
			rep.Enabled, rep.Latest != nil, rep.Window != nil, len(rep.Samples), len(rep.Windows))
	}
	s.Stop()
	s.Stop() // idempotent
	if len(s.Samples()) == 0 {
		t.Error("ring unreadable after Stop")
	}
	// The sampler goroutine must be gone; allow the runtime a moment.
	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d -> %d after Stop", before, after)
	}
}

// TestSamplerConcurrentReaders hammers snapshot/report from multiple
// goroutines while the sampler writes at a tight interval; run with -race.
func TestSamplerConcurrentReaders(t *testing.T) {
	s := NewSampler(100*time.Microsecond, 8, func() Sample {
		return Sample{UnixNano: time.Now().UnixNano()}
	})
	defer s.Stop()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 500; j++ {
				samples := s.Samples()
				for k := 1; k < len(samples); k++ {
					if samples[k].UnixNano < samples[k-1].UnixNano {
						t.Error("snapshot out of order")
						return
					}
				}
				s.Windows()
				s.Latest()
				s.Report()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}
