package db

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"rocksmash/internal/batch"
	"rocksmash/internal/cache"
	"rocksmash/internal/event"
	"rocksmash/internal/keys"
	"rocksmash/internal/manifest"
	"rocksmash/internal/pcache"
	"rocksmash/internal/retry"
	"rocksmash/internal/storage"
)

// Keyspace sharding: Options.Shards > 1 splits the store into N
// independent sub-LSMs behind the one DB facade. Each shard is a complete
// engine — its own memtable stack, eWAL segment stream, flush queue, and
// compaction scheduler — rooted under a "shard-NNN/" prefix of the local
// and cloud backends, so shards never contend on each other's commit,
// rotation, or compaction locks and recover their WALs concurrently at
// Open. What stays shared and global, owned by the facade:
//
//   - the in-memory block cache, persistent cache, and table cache
//     (striped file numbering keeps file numbers globally unique, so the
//     caches need no shard dimension in their keys; fileNum % Shards
//     recovers the owning shard for attribution);
//   - the cloud retry/breaker stack — the cloud endpoint is one
//     dependency, so an outage observed by any shard fails the others
//     fast, with state changes fanned out to every shard's drainer;
//   - the sequence-number source, which keeps one globally ordered
//     visibility watermark so snapshots and iterators are consistent
//     across shards.
//
// Keys route to shards by a stable hash of the user key; iteration merges
// the per-shard iterators (disjoint keyspaces, so no deduplication).

// shardMarkerName is the root-level object recording the shard count. It
// is written on the first sharded open and verified on every reopen: the
// shard count is part of the on-disk layout (it determines both the
// directory shape and the key-to-shard mapping) and cannot change without
// a rewrite.
const shardMarkerName = "SHARDS"

func shardPrefix(i int) string { return fmt.Sprintf("shard-%03d/", i) }

// shardIndex maps a user key to its shard with FNV-1a 64. The mapping
// must be deterministic across processes and restarts — it decides which
// shard's LSM holds the key.
func shardIndex(key []byte, n int) int {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range key {
		h ^= uint64(c)
		h *= prime64
	}
	return int(h % uint64(n))
}

func (d *DB) shardFor(key []byte) *DB {
	return d.shards[shardIndex(key, len(d.shards))]
}

// checkNotSharded rejects a standalone (Shards <= 1) open of a directory
// laid out by a sharded store.
func checkNotSharded(local storage.Backend) error {
	data, err := local.ReadAll(shardMarkerName)
	if err != nil {
		return nil
	}
	return fmt.Errorf("db: store was created with Shards=%s; reopen with the same shard count",
		strings.TrimSpace(string(data)))
}

// ensureShardMarker persists the shard count on first open and verifies
// it on reopen. A sharded open of an existing unsharded store is refused:
// the keyspace would silently split across empty shards while the old
// data sat unreachable at the root.
func ensureShardMarker(local storage.Backend, n int) error {
	if data, err := local.ReadAll(shardMarkerName); err == nil {
		have, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if perr != nil {
			return fmt.Errorf("db: unreadable shard marker %q", string(data))
		}
		if have != n {
			return fmt.Errorf("db: store has %d shards, opened with Shards=%d", have, n)
		}
		return nil
	}
	if _, err := local.ReadAll("CURRENT"); err == nil {
		return errors.New("db: cannot open an existing unsharded store with Shards > 1")
	}
	return storage.WriteObject(local, shardMarkerName, []byte(strconv.Itoa(n)+"\n"))
}

// breakerFanout distributes the shared breaker's state changes to every
// shard's observer (stats mirror + drainer wake-up). Shards register
// during their (concurrent) opens; fires copy the list under the lock.
type breakerFanout struct {
	mu  sync.Mutex
	fns []func(from, to retry.State)
}

func (f *breakerFanout) add(fn func(from, to retry.State)) {
	f.mu.Lock()
	f.fns = append(f.fns, fn)
	f.mu.Unlock()
}

func (f *breakerFanout) fire(from, to retry.State) {
	f.mu.Lock()
	fns := make([]func(from, to retry.State), len(f.fns))
	copy(fns, f.fns)
	f.mu.Unlock()
	for _, fn := range fns {
		fn(from, to)
	}
}

// openSharded builds the facade: shared resources first, then every shard
// opened concurrently against its prefixed slice of the backends.
func openSharded(opts Options, local, cloud storage.Backend) (*DB, error) {
	if cloud == nil && opts.Policy != PolicyLocalOnly {
		return nil, errors.New("db: policy requires a cloud backend")
	}
	n := opts.Shards
	start := time.Now()
	if err := ensureShardMarker(local, n); err != nil {
		return nil, err
	}

	d := &DB{
		opts:     opts,
		local:    local,
		cloud:    cloud,
		seqs:     newSeqSource(),
		openedAt: time.Now(),
	}
	if cs, ok := storage.BaseBackend(cloud).(*storage.Cloud); ok {
		d.cloudSim = cs
	}

	// The facade owns the trace writer; shards receive the merged listener
	// and no TracePath, so one JSONL stream interleaves every shard's
	// events.
	listener := opts.EventListener
	if opts.TracePath != "" {
		tw, err := event.CreateTraceRotating(opts.TracePath, opts.TraceRotateBytes, opts.TraceRotateKeep)
		if err != nil {
			return nil, fmt.Errorf("db: creating trace: %w", err)
		}
		d.trace = tw
		listener = event.Multi(listener, tw)
	}
	// The facade owns the one flight recorder: its ring taps the merged
	// listener (so it sees every shard's events) and its detector rides the
	// facade sampler. Shards get FlightRecorder forced off below.
	if opts.FlightRecorder {
		d.initFlight(local)
		listener = event.Multi(listener, d.flight.rec)
	}
	d.listener = listener

	d.blockCache = cache.New(opts.BlockCacheBytes)
	d.lat = newLatencies()
	d.tables = newTableCache(opts.MaxOpenTables)
	if err := d.initPCache(); err != nil {
		return nil, err
	}
	d.pcache.Stats().SetKeyspaceShards(n)

	var fanout *breakerFanout
	if cloud != nil {
		fanout = &breakerFanout{}
		userCB := opts.CloudBreaker.OnStateChange
		d.breaker = retry.NewBreaker(retry.BreakerConfig{
			FailureThreshold: opts.CloudBreaker.FailureThreshold,
			Cooldown:         opts.CloudBreaker.Cooldown,
			OnStateChange: func(from, to retry.State) {
				fanout.fire(from, to)
				if userCB != nil {
					userCB(from, to)
				}
			},
		})
	}
	// The local breaker is likewise shared: the shards sit on one disk, so a
	// device failure observed by any shard should degrade the others fast.
	localFanout := &breakerFanout{}
	{
		userCB := opts.LocalBreaker.OnStateChange
		d.localBreaker = retry.NewBreaker(retry.BreakerConfig{
			FailureThreshold: opts.LocalBreaker.FailureThreshold,
			Cooldown:         opts.LocalBreaker.Cooldown,
			OnStateChange: func(from, to retry.State) {
				localFanout.fire(from, to)
				if userCB != nil {
					userCB(from, to)
				}
			},
		})
	}

	child := opts
	child.EventListener = listener
	child.TracePath = ""
	child.FlightRecorder = false
	child.pcacheDir = ""
	child.sharedSeqs = d.seqs
	child.sharedCache = d.blockCache
	child.sharedPCache = d.pcache
	child.sharedTables = d.tables
	child.sharedLat = d.lat
	child.sharedBreaker = d.breaker
	child.breakerHooks = fanout
	child.sharedLocalBreaker = d.localBreaker
	child.localBreakerHooks = localFanout

	d.shards = make([]*DB, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			co := child
			co.shardID = i
			shardLocal := storage.NewPrefix(local, shardPrefix(i))
			var shardCloud storage.Backend
			if cloud != nil {
				shardCloud = storage.NewPrefix(cloud, shardPrefix(i))
			}
			d.shards[i], errs[i] = Open(co, shardLocal, shardCloud)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, sh := range d.shards {
			if sh != nil {
				_ = sh.Close()
			}
		}
		_ = d.pcache.Close()
		d.tables.close()
		if d.trace != nil {
			_ = d.trace.Close()
		}
		return nil, err
	}

	for _, sh := range d.shards {
		r := sh.recovery
		d.recovery.WALSegments += r.WALSegments
		d.recovery.WALSkipped += r.WALSkipped
		d.recovery.WALRecords += r.WALRecords
		d.recovery.WALBytes += r.WALBytes
		d.recovery.RecoveredKeys += r.RecoveredKeys
	}
	d.recovery.Parallelism = opts.RecoveryParallelism
	d.recovery.Duration = time.Since(start)
	// One sampler for the whole store, on the facade: its snapshot closure
	// routes through shardMetrics, so every sample is the cross-shard view.
	// (Shards skip startVitals themselves — see Open.)
	d.startVitals()
	return d, nil
}

// eachShard runs fn on every shard concurrently and joins the errors.
func (d *DB) eachShard(fn func(*DB) error) error {
	errs := make([]error, len(d.shards))
	var wg sync.WaitGroup
	for i, sh := range d.shards {
		wg.Add(1)
		go func(i int, sh *DB) {
			defer wg.Done()
			errs[i] = fn(sh)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// errMultiShard is the internal sentinel that stops the single-shard scan
// early once a batch is known to span shards.
var errMultiShard = errors.New("multi-shard")

// shardWrite routes a batch. The common case — every op hashes to one
// shard, which covers all Puts and Deletes — passes the batch through
// unmodified. A batch spanning shards is split into per-shard sub-batches
// committed concurrently: each sub-batch is atomic and all are applied
// when Write returns, but a reader racing the write can observe one
// shard's portion before another's.
func (d *DB) shardWrite(b *batch.Batch) error {
	n := len(d.shards)
	target := -1
	err := b.Iterate(func(op batch.Op) error {
		s := shardIndex(op.Key, n)
		if target < 0 {
			target = s
			return nil
		}
		if s != target {
			return errMultiShard
		}
		return nil
	})
	if err == nil {
		return d.shards[target].Write(b)
	}
	if err != errMultiShard {
		return err
	}

	subs := make([]*batch.Batch, n)
	if err := b.Iterate(func(op batch.Op) error {
		s := shardIndex(op.Key, n)
		if subs[s] == nil {
			subs[s] = batch.New()
		}
		if op.Kind == keys.KindDelete {
			subs[s].Delete(op.Key)
		} else {
			subs[s].Set(op.Key, op.Value)
		}
		return nil
	}); err != nil {
		return err
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, sb := range subs {
		if sb == nil {
			continue
		}
		wg.Add(1)
		go func(i int, sb *batch.Batch) {
			defer wg.Done()
			errs[i] = d.shards[i].Write(sb)
		}(i, sb)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// closeSharded closes every shard, then the facade-owned shared state.
func (d *DB) closeSharded() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	d.stopVitals()
	firstErr := d.eachShard(func(sh *DB) error { return sh.Close() })
	if err := d.pcache.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	d.tables.close()
	if d.trace != nil {
		if err := d.trace.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// crashSharded abandons every shard without flushing (see Crash).
func (d *DB) crashSharded() {
	if !d.closed.CompareAndSwap(false, true) {
		return
	}
	d.stopVitals()
	var wg sync.WaitGroup
	for _, sh := range d.shards {
		wg.Add(1)
		go func(sh *DB) {
			defer wg.Done()
			sh.Crash()
		}(sh)
	}
	wg.Wait()
	d.tables.close()
}

// shardMetrics aggregates the facade view: engine counters sum across
// shards, shared-resource figures (caches, latencies, breaker, device
// I/O) are reported once, and Metrics.Shards carries the per-shard
// attribution.
func (d *DB) shardMetrics() Metrics {
	m := Metrics{
		Policy:     d.opts.Policy.String(),
		LastSeq:    d.ackedSeq(),
		MetaBytes:  d.tables.metadataBytes(),
		PCacheMeta: d.pcache.MetadataBytes(),
		PCacheUsed: d.pcache.UsedBytes(),
		PCacheHit:  d.pcache.Stats().HitRatio(),
		BlockHit:   d.blockCache.HitRatio(),

		GetLat:      summarize(d.lat.get),
		PutLat:      summarize(d.lat.put),
		FlushLat:    summarize(d.lat.flush),
		CompactLat:  summarize(d.lat.compact),
		LocalGetLat: summarize(d.lat.localGet),
		LocalPutLat: summarize(d.lat.localPut),
		CloudGetLat: summarize(d.lat.cloudGet),
		CloudPutLat: summarize(d.lat.cloudPut),
	}
	m.LevelFiles = make([]int, manifest.NumLevels)
	m.LevelBytes = make([]uint64, manifest.NumLevels)
	m.LevelWriteAmp = make([]LevelWriteAmp, manifest.NumLevels)
	for l := range m.LevelWriteAmp {
		m.LevelWriteAmp[l] = LevelWriteAmp{Level: l, Target: l + 1}
	}
	m.Shards = make([]ShardSummary, len(d.shards))
	pcs := d.pcache.Stats()

	for i, sh := range d.shards {
		s := ShardSummary{
			Shard:       i,
			LastSeq:     sh.lastSeq.Load(),
			Writes:      sh.stats.Writes.Load(),
			Reads:       sh.stats.Reads.Load(),
			Flushes:     sh.stats.Flushes.Load(),
			Compactions: sh.stats.Compactions.Load(),
			WriteStalls: sh.stats.WriteStalls.Load(),
		}
		v := sh.vs.Current()
		for l := range v.Levels {
			m.LevelFiles[l] += len(v.Levels[l])
			m.LevelBytes[l] += v.LevelSize(l)
		}
		v.AllFiles(func(level int, f *manifest.FileMetadata) {
			s.Files++
			s.Bytes += int64(f.Size)
			if f.Tier == storage.TierCloud {
				m.CloudBytes += int64(f.Size)
			} else {
				m.LocalBytes += int64(f.Size)
			}
			if f.PendingCloud {
				s.PendingTables++
				m.PendingTables++
				m.PendingBytes += int64(f.Size)
			}
			if sh.isMisplaced(level, f) {
				m.MisplacedTables++
			}
		})
		if i < pcache.ShardBuckets-1 {
			s.PCacheHits = pcs.ShardHits[i].Load()
			s.PCacheMisses = pcs.ShardMisses[i].Load()
		}

		m.Flushes += s.Flushes
		m.Compactions += s.Compactions
		m.WriteStalls += s.WriteStalls
		m.Reads += s.Reads
		m.Writes += s.Writes
		m.BytesWritten += sh.stats.BytesWritten.Load()
		m.CommitGroups += sh.stats.CommitGroups.Load()
		m.CommitGroupBatches += sh.stats.CommitGroupBatches.Load()
		m.WALSyncsAmortized += sh.stats.WALSyncsAmortized.Load()
		m.FlushBytes += sh.stats.FlushBytes.Load()
		m.UploadRetries += sh.stats.UploadRetries.Load()
		m.ReadRetries += sh.stats.ReadRetries.Load()
		m.CompactBytesIn += sh.stats.CompactBytesIn.Load()
		m.CompactBytesOut += sh.stats.CompactBytesOut.Load()
		m.CompactDroppedKeys += sh.stats.CompactDroppedKeys.Load()
		m.PrefetchSpans += sh.stats.PrefetchSpans.Load()
		m.PrefetchBlocks += sh.stats.PrefetchBlocks.Load()
		m.ReadaheadSpans += sh.stats.ReadaheadSpans.Load()
		m.ReadaheadBlocks += sh.stats.ReadaheadBlocks.Load()
		m.ScanViewHits += sh.stats.ScanViewHits.Load()
		m.ScanViewMisses += sh.stats.ScanViewMisses.Load()
		m.ViewBuilds += sh.stats.ViewBuilds.Load()
		m.ViewBuildBytes += sh.stats.ViewBuildBytes.Load()
		m.IterKeys += sh.stats.IterKeys.Load()
		m.DegradedTables += sh.stats.DegradedTables.Load()
		m.DrainedTables += sh.stats.DrainedTables.Load()
		m.DeferredDeletes += sh.stats.DeferredDeletes.Load()
		m.CompactionsDeferred += sh.stats.CompactionsDeferred.Load()
		m.LocalDegradedTables += sh.stats.LocalDegradedTables.Load()
		m.LocalDrainedBack += sh.stats.LocalDrainedBack.Load()
		m.CorruptionsDetected += sh.stats.CorruptionsDetected.Load()
		m.CorruptionsRepaired += sh.stats.CorruptionsRepaired.Load()
		m.CorruptionsUnrepaired += sh.stats.CorruptionsUnrepaired.Load()
		m.ScrubPasses += sh.stats.ScrubPasses.Load()
		m.MirroredTables += sh.stats.MirroredTables.Load()
		m.QuarantinedTables += sh.quarantinedCount()
		if sh.wal != nil {
			m.WALSpills += sh.wal.Spills()
			m.WALRestored += sh.wal.Restored()
		}

		// Per-level compaction attribution and debt sum across shards: each
		// sub-LSM compacts its own tree, so the store-wide level picture is
		// the union.
		for l := range sh.stats.LevelCompact {
			lc := &sh.stats.LevelCompact[l]
			m.LevelWriteAmp[l].Count += lc.Count.Load()
			m.LevelWriteAmp[l].BytesInSource += lc.BytesInSource.Load()
			m.LevelWriteAmp[l].BytesInTarget += lc.BytesInTarget.Load()
			m.LevelWriteAmp[l].BytesOut += lc.BytesOut.Load()
		}
		m.CompactionDebt += sh.compactionDebt(v)

		m.ReadAmp.add(sh.readAgg.snapshot())
		m.Shards[i] = s
	}
	m.SpaceAmp = spaceAmpOf(m.LevelBytes)
	m.BlockCacheHits, m.BlockCacheMisses = d.blockCache.Counters()
	m.PCacheHits = pcs.Hits.Load()
	m.PCacheMisses = pcs.Misses.Load()

	// Every shard observes every transition of the shared breakers, so the
	// trip histories are any one shard's counts, not sums.
	m.BreakerTrips = d.shards[0].stats.BreakerTrips.Load()
	m.BreakerHalfOpens = d.shards[0].stats.BreakerHalfOpens.Load()
	if d.breaker != nil {
		m.BreakerState = d.breaker.State().String()
		m.DegradedDur = d.breaker.DegradedDur()
	}
	m.LocalBreakerTrips = d.shards[0].stats.LocalBreakerTrips.Load()
	m.LocalBreakerHalfOpens = d.shards[0].stats.LocalBreakerHalfOpens.Load()
	if d.localBreaker != nil {
		m.LocalBreakerState = d.localBreaker.State().String()
		m.LocalDegradedDur = d.localBreaker.DegradedDur()
	}
	m.PCacheCorruptReads = pcs.CorruptReads.Load()
	// Flight counters are facade-owned: the one detector ticks on the
	// facade's sampler, so these never sum across shards.
	d.fillFlightMetrics(&m)
	// The instrumented backends delegate Stats to the shared device, so
	// any shard's snapshot is the global per-device I/O view.
	m.LocalIO = d.shards[0].local.Stats().Snapshot()
	if d.shards[0].cloud != nil {
		m.CloudIO = d.shards[0].cloud.Stats().Snapshot()
	}
	if d.cloudSim != nil {
		m.CloudCost = d.cloudSim.CostReport()
	}
	for b := 0; b < pcache.LevelBuckets; b++ {
		m.ReadAmp.PCacheLevelHits[b] = pcs.LevelHits[b].Load()
		m.ReadAmp.PCacheLevelMisses[b] = pcs.LevelMisses[b].Load()
	}
	return m
}
