package db

import (
	"errors"
	"fmt"
	"testing"
)

// TestBackupAndRestore takes a backup of a tiered store and opens it as an
// independent store with identical contents.
func TestBackupAndRestore(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	ref := fillKeys(t, d, 2000, 100)
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().CloudBytes == 0 {
		t.Skip("dataset did not reach cloud levels")
	}

	backupDir := t.TempDir()
	if err := d.Backup(backupDir); err != nil {
		t.Fatal(err)
	}

	restored, err := OpenAt(backupDir, testOptions(PolicyMash))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	for k, v := range ref {
		got, err := restored.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("restored Get(%q) = %q, %v", k, got, err)
		}
	}
	// The restored store is fully functional.
	if err := restored.Put([]byte("post-restore"), []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestBackupIsConsistencyPoint verifies writes after the backup don't leak
// into it, and that the original store is unaffected.
func TestBackupIsConsistencyPoint(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	mustPut(t, d, "before", "1")
	backupDir := t.TempDir()
	if err := d.Backup(backupDir); err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "after", "2")

	restored, err := OpenAt(backupDir, testOptions(PolicyMash))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if v, err := restored.Get([]byte("before")); err != nil || string(v) != "1" {
		t.Fatalf("before = %q, %v", v, err)
	}
	if _, err := restored.Get([]byte("after")); !errors.Is(err, ErrNotFound) {
		t.Fatal("post-backup write leaked into the backup")
	}
	// Original store still has both.
	mustGet(t, d, "before", "1")
	mustGet(t, d, "after", "2")
}

// TestBackupSurvivesOriginalCompaction ensures the backup does not break
// when the original store later compacts and deletes the files the backup
// copied.
func TestBackupSurvivesOriginalCompaction(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	ref := fillKeys(t, d, 1500, 100)
	backupDir := t.TempDir()
	if err := d.Backup(backupDir); err != nil {
		t.Fatal(err)
	}
	// Churn the original heavily: overwrite everything and compact, which
	// deletes every file the backup was taken from.
	for i := 0; i < 1500; i++ {
		mustPut(t, d, fmt.Sprintf("key%06d", i), "overwritten")
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}

	restored, err := OpenAt(backupDir, testOptions(PolicyMash))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	n := 0
	for k, v := range ref {
		got, err := restored.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("restored Get(%q) = %q, %v", k, got, err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("empty reference")
	}
}
