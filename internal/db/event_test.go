package db

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rocksmash/internal/event"
	"rocksmash/internal/storage"
)

// eventWorkload drives enough writes through d to force several flushes,
// then compacts the whole tree.
func eventWorkload(t *testing.T, d *DB) {
	t.Helper()
	for i := 0; i < 3000; i++ {
		mustPut(t, d, fmt.Sprintf("k%06d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
}

// TestEventSequence runs a flush→compaction→upload cycle under an all-cloud
// Mash configuration and asserts the recorded event stream: pairing and
// ordering of begin/end events, uploads inside their owning operation, and
// compaction stage timings that are nonzero and mutually consistent.
func TestEventSequence(t *testing.T) {
	rec := &event.Recorder{}
	o := testOptions(PolicyMash)
	o.LocalLevels = -1 // every level cloud: flushes upload and warm the pcache
	o.EventListener = rec
	d, err := OpenAt(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	eventWorkload(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	events := rec.Events()
	idx := func(typ event.Type) int {
		for i, e := range events {
			if e.Type == typ {
				return i
			}
		}
		return -1
	}

	// Paired begin/end counts.
	for _, pair := range [][2]event.Type{
		{event.TFlushBegin, event.TFlushEnd},
		{event.TCompactionBegin, event.TCompactionEnd},
	} {
		nb, ne := rec.Count(pair[0]), rec.Count(pair[1])
		if nb == 0 || nb != ne {
			t.Errorf("%s=%d %s=%d, want equal and nonzero", pair[0], nb, pair[1], ne)
		}
	}
	if rec.Count(event.TFlushEnd) < 2 {
		t.Errorf("flushes = %d, want >= 2 (workload should seal several memtables)",
			rec.Count(event.TFlushEnd))
	}
	if n := rec.Count(event.TTableUploaded); n < rec.Count(event.TFlushEnd) {
		t.Errorf("table_uploaded = %d, want >= flush count %d", n, rec.Count(event.TFlushEnd))
	}
	for _, typ := range []event.Type{event.TTableDeleted, event.TPCacheAdmit} {
		if rec.Count(typ) == 0 {
			t.Errorf("no %s events", typ)
		}
	}

	// Ordering: the first flush brackets its own upload; compaction follows.
	fb, fe := idx(event.TFlushBegin), idx(event.TFlushEnd)
	up := idx(event.TTableUploaded)
	cb, ce := idx(event.TCompactionBegin), idx(event.TCompactionEnd)
	if !(fb < up && up < fe) {
		t.Errorf("first upload not inside first flush: begin=%d upload=%d end=%d", fb, up, fe)
	}
	if !(fe < cb && cb < ce) {
		t.Errorf("compaction not after first flush: flushEnd=%d begin=%d end=%d", fe, cb, ce)
	}
	del := idx(event.TTableDeleted)
	if !(cb < del && del < ce) {
		t.Errorf("first table_deleted not inside compaction: begin=%d deleted=%d end=%d", cb, del, ce)
	}

	// Stage timings: nonzero and monotonic where containment holds.
	first, ok := rec.First(event.TCompactionEnd)
	if !ok {
		t.Fatal("no compaction_end event")
	}
	e := first.Payload.(event.CompactionEnd)
	if e.Inputs == 0 || e.Outputs == 0 || e.InputBytes == 0 || e.OutputBytes == 0 {
		t.Errorf("compaction_end missing shape: %+v", e)
	}
	if !(0 < e.ReadDur && e.ReadDur <= e.MergeDur && e.MergeDur <= e.Duration) {
		t.Errorf("stage timings not monotonic: read=%s merge=%s total=%s",
			e.ReadDur, e.MergeDur, e.Duration)
	}
	if e.UploadDur <= 0 {
		t.Errorf("UploadDur = %s, want > 0", e.UploadDur)
	}
	if e.InstallDur <= 0 {
		t.Errorf("InstallDur = %s, want > 0", e.InstallDur)
	}
}

// TestTracePathAcceptance runs a PolicyMash workload with TracePath set and
// verifies the JSONL trace decodes and covers flush, compaction (with stage
// timings), upload, and pcache activity.
func TestTracePathAcceptance(t *testing.T) {
	dir := t.TempDir()
	o := testOptions(PolicyMash)
	o.LocalLevels = -1
	o.TracePath = filepath.Join(dir, "trace.jsonl")
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	eventWorkload(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := event.ReadTraceFile(o.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[event.Type]bool{}
	for i, rec := range recs {
		e, err := rec.Decode()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		seen[rec.Type] = true
		if ce, ok := e.(event.CompactionEnd); ok {
			if ce.ReadDur <= 0 || ce.MergeDur <= 0 || ce.UploadDur <= 0 || ce.InstallDur <= 0 {
				t.Errorf("record %d: compaction_end stage timing zero: %+v", i, ce)
			}
		}
	}
	for _, typ := range []event.Type{
		event.TFlushBegin, event.TFlushEnd,
		event.TCompactionBegin, event.TCompactionEnd,
		event.TTableUploaded, event.TTableDeleted, event.TPCacheAdmit,
	} {
		if !seen[typ] {
			t.Errorf("trace missing %s events (have %v)", typ, seen)
		}
	}
}

// metricsListener reads engine state from inside callbacks — allowed by the
// listener contract (events fire outside engine locks). The race detector
// turns any lock-ordering mistake into a failure here.
type metricsListener struct {
	event.NopListener
	d     atomic.Pointer[DB]
	fired atomic.Int64
}

func (l *metricsListener) observe() {
	l.fired.Add(1)
	if d := l.d.Load(); d != nil {
		_ = d.Metrics()
	}
}

func (l *metricsListener) OnFlushEnd(event.FlushEnd)           { l.observe() }
func (l *metricsListener) OnCompactionEnd(event.CompactionEnd) { l.observe() }
func (l *metricsListener) OnTableUploaded(event.TableUploaded) { l.observe() }
func (l *metricsListener) OnWriteStallEnd(event.WriteStallEnd) { l.observe() }
func (l *metricsListener) OnPCacheEvict(event.PCacheEvict)     { l.observe() }

// TestListenerConcurrentHammer drives concurrent reads and writes with a
// listener that calls Metrics() from every callback: no deadlock, no race.
func TestListenerConcurrentHammer(t *testing.T) {
	l := &metricsListener{}
	o := testOptions(PolicyMash)
	o.LocalLevels = -1
	o.EventListener = l
	d, err := OpenAt(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	l.d.Store(d)

	const (
		writers = 4
		readers = 4
		ops     = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("w%02d-%05d", w, i)
				if err := d.Put([]byte(k), []byte(pipelineValue(i))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("w%02d-%05d", i%writers, i)
				if _, err := d.Get([]byte(k)); err != nil && err != ErrNotFound {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if l.fired.Load() == 0 {
		t.Error("listener never fired")
	}
}

// TestNilListenerZeroAllocs verifies the overhead policy: with no listener
// attached, every fire helper and the histogram recording path allocate
// nothing.
func TestNilListenerZeroAllocs(t *testing.T) {
	d, _ := openTest(t, PolicyLocalOnly)
	defer d.Close()
	if d.listener != nil {
		t.Fatal("test requires a nil listener")
	}
	retryErr := errors.New("transient")
	allocs := testing.AllocsPerRun(200, func() {
		d.evFlushBegin("memtable")
		d.evFlushEnd(1, 4096, storage.TierLocal, time.Millisecond)
		d.evCompactionBegin(event.CompactionBegin{Level: 0, OutputLevel: 1})
		d.evCompactionEnd(event.CompactionEnd{Level: 0, OutputLevel: 1})
		d.evTableUploaded(1, storage.TierCloud, 4096, 1, time.Millisecond, false)
		d.evTableDeleted(1, storage.TierCloud)
		d.evCloudRetry("put", "tables/000001.sst", 1, retryErr)
		d.evBreakerState("cloud", "closed", "open")
		d.lat.get.Record(time.Microsecond)
		d.lat.put.Record(time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("nil-listener instrumentation allocates %.1f bytes-of-objects/op, want 0", allocs)
	}
}
