package db

import (
	"errors"
	"fmt"
	"io"
	"time"

	"rocksmash/internal/manifest"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
)

// This file implements the local tier's self-healing layer:
//
//   - repairLocalTable, the cloud-backed repair of a corrupt local SSTable
//     (re-fetch, verify, rewrite in place), invoked inline by the read path
//     and by the scrubber;
//   - repairSidecar, the recovery of a corrupt metadata sidecar (delete it;
//     the next open rebuilds it from the cloud object's own tail);
//   - Scrub, the on-demand full-checksum walk over every local artifact
//     class (SSTable blocks, metadata sidecars, WAL segments), and
//     scrubLoop, its background driver (Options.ScrubInterval).
//
// Counting invariant: every counted detection resolves to exactly one of
// CorruptionsRepaired or CorruptionsUnrepaired, so the three counters
// reconcile (Detected == Repaired + Unrepaired) at any quiescent point.

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Checked    int // artifacts verified end to end
	Corrupt    int // artifacts whose checksums failed
	Repaired   int // artifacts re-materialized from a cloud source
	Unrepaired int // damaged artifacts with no clean source

	// Per-artifact-class breakdown of Checked.
	Tables      int
	Sidecars    int
	WALSegments int
}

func (r *ScrubReport) add(o ScrubReport) {
	r.Checked += o.Checked
	r.Corrupt += o.Corrupt
	r.Repaired += o.Repaired
	r.Unrepaired += o.Unrepaired
	r.Tables += o.Tables
	r.Sidecars += o.Sidecars
	r.WALSegments += o.WALSegments
}

// isQuarantined reports whether a table's damage was already found
// unrepairable, so hot read paths fail fast with a typed error instead of
// re-fetching from the cloud on every block.
func (d *DB) isQuarantined(num uint64) bool {
	d.repairMu.Lock()
	defer d.repairMu.Unlock()
	return d.quarantined[num]
}

// unquarantine clears a table's quarantine mark (compaction retired it, or
// a forced scrub repaired it).
func (d *DB) unquarantine(num uint64) {
	d.repairMu.Lock()
	delete(d.quarantined, num)
	d.repairMu.Unlock()
}

func (d *DB) quarantinedCount() int {
	d.repairMu.Lock()
	defer d.repairMu.Unlock()
	return len(d.quarantined)
}

// verifyTableBytes checks a whole table image end to end: footer and
// metadata blocks (sstable.Open), then the CRC of every data block.
func (d *DB) verifyTableBytes(data []byte, num uint64) error {
	r, err := sstable.Open(bytesReader{data}, num)
	if err != nil {
		return err
	}
	defer r.Close()
	handles, err := r.DataHandles()
	if err != nil {
		return err
	}
	for _, h := range handles {
		if _, err := sstable.ReadRawBlock(bytesReader{data}, h); err != nil {
			return err
		}
	}
	return nil
}

// repairLocalTable re-materializes a corrupt local-tier table from its
// cloud copy (a lazy mirror, or the object left behind by a drain). On
// success the verified bytes are returned so the caller can serve the
// blocked read without re-rolling the damaged device, and the local file is
// rewritten in place (temp + rename, so concurrent readers holding the old
// inode never observe a truncated image). Damage with no clean cloud
// source quarantines the table: later reads fail fast with a typed error
// (wrapping storage.ErrCorruption) until force — a scrub pass — retries.
func (d *DB) repairLocalTable(num uint64, cause error, force bool) ([]byte, error) {
	name := manifest.TableName(num)
	d.repairMu.Lock()
	defer d.repairMu.Unlock()
	if d.quarantined[num] && !force {
		return nil, fmt.Errorf("db: table %s quarantined: %w", name, storage.ErrCorruption)
	}
	d.stats.CorruptionsDetected.Add(1)
	d.evCorruptionDetected("sstable-block", name, num, cause)
	start := time.Now()
	fail := func(reason error) ([]byte, error) {
		d.quarantined[num] = true
		d.stats.CorruptionsUnrepaired.Add(1)
		return nil, fmt.Errorf("db: table %s corrupt with no clean cloud source (%v): %w",
			name, reason, storage.ErrCorruption)
	}
	if d.cloud == nil {
		return fail(errors.New("no cloud tier"))
	}
	data, err := d.cloud.ReadAll(name)
	if err != nil {
		return fail(err)
	}
	if verr := d.verifyTableBytes(data, num); verr != nil {
		return fail(verr)
	}
	// The cloud source is clean: whatever happens to the rewrite below, the
	// table is repairable and must not stay quarantined.
	delete(d.quarantined, num)
	tmp := name + ".repair"
	werr := storage.WriteObject(d.local, tmp, data)
	if werr == nil {
		werr = d.local.Rename(tmp, name)
	}
	if werr != nil {
		// The clean bytes are in hand but the device refused them; serve the
		// read anyway and leave the on-disk damage for the next attempt. Not
		// a quarantine: the cloud source is good.
		_ = d.local.Delete(tmp)
		d.stats.CorruptionsRepaired.Add(1)
		d.evCorruptionRepaired("sstable-block", name, num, "cloud-mirror", time.Since(start))
		return data, nil
	}
	// Reopen against the rewritten file on next use.
	d.tables.evict(num)
	d.stats.CorruptionsRepaired.Add(1)
	d.evCorruptionRepaired("sstable-block", name, num, "cloud-mirror", time.Since(start))
	return data, nil
}

// repairSidecar handles a corrupt metadata sidecar discovered when opening
// a cloud-tier table: the sidecar is deleted so the next open rebuilds it
// from the cloud object's own metadata tail (overlayMetadata). It reports
// whether the open should be retried.
func (d *DB) repairSidecar(num uint64, cause error) bool {
	name := metaSidecarName(num)
	d.repairMu.Lock()
	defer d.repairMu.Unlock()
	if _, err := d.local.ReadAll(name); err != nil {
		// No cached sidecar fed the open: the corruption is in the cloud
		// object itself, which repair cannot fix.
		return false
	}
	d.stats.CorruptionsDetected.Add(1)
	d.evCorruptionDetected("sidecar", name, num, cause)
	start := time.Now()
	if err := d.local.Delete(name); err != nil {
		d.stats.CorruptionsUnrepaired.Add(1)
		return false
	}
	d.stats.CorruptionsRepaired.Add(1)
	d.evCorruptionRepaired("sidecar", name, num, "meta-tail", time.Since(start))
	return true
}

// sizeOnlyReader backs a TailReader when only the metadata overlay should
// ever be touched: any read below the tail is a bug and returns EOF.
type sizeOnlyReader struct{ size int64 }

func (r sizeOnlyReader) ReadAt([]byte, int64) (int, error) { return 0, io.EOF }
func (r sizeOnlyReader) Size() int64                       { return r.size }
func (r sizeOnlyReader) Close() error                      { return nil }

// verifySidecar structurally validates a cached metadata sidecar: the
// footer and every metadata block it holds are parsed and CRC-checked
// without touching the cloud object.
func (d *DB) verifySidecar(num uint64) (ok, present bool) {
	tailOff, tail, err := d.readMetaSidecar(num)
	if err != nil {
		return false, false
	}
	f := sstable.NewTailReader(sizeOnlyReader{int64(tailOff) + int64(len(tail))}, int64(tailOff), tail)
	r, err := sstable.Open(f, num)
	if err != nil {
		return false, true
	}
	_, err = r.DataHandles()
	_ = r.Close()
	return err == nil, true
}

// Scrub walks every local artifact the store owns — local-tier SSTables,
// cloud-tier metadata sidecars, sealed WAL segments — verifying checksums
// end to end and repairing damage that has a cloud source of truth in
// place. A sharded store fans the pass out over every shard. It is safe to
// run concurrently with reads and writes.
func (d *DB) Scrub() ScrubReport {
	if d.shards != nil {
		var rep ScrubReport
		for _, sh := range d.shards {
			r := sh.Scrub()
			rep.add(r)
		}
		return rep
	}
	var rep ScrubReport

	// Local-tier tables: full image verification, cloud-backed repair.
	// force=true retries quarantined tables — a mirror may have appeared
	// since the damage was first found.
	type tbl struct {
		num  uint64
		tier storage.Tier
	}
	var tables []tbl
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		tables = append(tables, tbl{f.Num, f.Tier})
	})
	for _, t := range tables {
		if t.tier == storage.TierCloud {
			// The cloud object is authoritative; what the local tier owns for
			// it is the metadata sidecar.
			ok, present := d.verifySidecar(t.num)
			if !present {
				continue // rebuilt lazily at next open; nothing to verify
			}
			rep.Checked++
			rep.Sidecars++
			if ok {
				continue
			}
			rep.Corrupt++
			if d.repairSidecar(t.num, errors.New("scrub: sidecar failed verification")) {
				rep.Repaired++
			} else {
				rep.Unrepaired++
			}
			continue
		}
		data, err := d.local.ReadAll(manifest.TableName(t.num))
		if err != nil {
			continue // retired mid-scrub, or unreadable (the read path will classify)
		}
		rep.Checked++
		rep.Tables++
		verr := d.verifyTableBytes(data, t.num)
		if verr == nil {
			continue
		}
		rep.Corrupt++
		if _, rerr := d.repairLocalTable(t.num, verr, true); rerr == nil {
			rep.Repaired++
		} else {
			rep.Unrepaired++
		}
	}

	// Sealed WAL segments: record checksums, backup-tier restore.
	if d.wal != nil {
		checked, corrupt, repaired := d.wal.Scrub()
		rep.Checked += checked
		rep.WALSegments += checked
		rep.Corrupt += corrupt
		rep.Repaired += repaired
		rep.Unrepaired += corrupt - repaired
		d.stats.CorruptionsDetected.Add(int64(corrupt))
		d.stats.CorruptionsRepaired.Add(int64(repaired))
		d.stats.CorruptionsUnrepaired.Add(int64(corrupt - repaired))
	}

	d.stats.ScrubPasses.Add(1)
	return rep
}

// scrubLoop drives periodic scrub passes (Options.ScrubInterval > 0).
func (d *DB) scrubLoop() {
	defer close(d.scrubDone)
	t := time.NewTicker(d.opts.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-d.bgQuit:
			return
		case <-t.C:
		}
		d.Scrub()
	}
}
