package db

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rocksmash/internal/batch"
	"rocksmash/internal/retry"
	"rocksmash/internal/storage"
)

// testOptions returns small-geometry options that force flushes and
// compactions quickly, with the zero-latency cloud simulator.
func testOptions(p Policy) Options {
	o := DefaultOptions()
	o.Policy = p
	o.MemtableBytes = 64 << 10
	o.BlockBytes = 1 << 10
	o.BlockCacheBytes = 256 << 10
	o.PCacheBytes = 4 << 20
	o.PCacheRegionBytes = 64 << 10
	o.L0CompactTrigger = 2
	o.LevelBaseBytes = 128 << 10
	o.LevelMultiplier = 4
	o.TargetFileBytes = 64 << 10
	o.CloudLatency = storage.NoLatency()
	// Fast fault-tolerance knobs: real backoffs and cooldowns would dominate
	// the injected-failure tests' wall time.
	o.CloudRetry = retry.Policy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Deadline:    10 * time.Second,
	}
	o.CloudBreaker = retry.BreakerConfig{Cooldown: 5 * time.Millisecond}
	o.LocalBreaker = retry.BreakerConfig{Cooldown: 5 * time.Millisecond}
	o.PendingDrainInterval = 10 * time.Millisecond
	return o
}

func openTest(t *testing.T, p Policy) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	d, err := OpenAt(dir, testOptions(p))
	if err != nil {
		t.Fatal(err)
	}
	return d, dir
}

func mustPut(t *testing.T, d *DB, k, v string) {
	t.Helper()
	if err := d.Put([]byte(k), []byte(v)); err != nil {
		t.Fatal(err)
	}
}

func mustGet(t *testing.T, d *DB, k, want string) {
	t.Helper()
	got, err := d.Get([]byte(k))
	if err != nil {
		t.Fatalf("Get(%q): %v", k, err)
	}
	if string(got) != want {
		t.Fatalf("Get(%q) = %q want %q", k, got, want)
	}
}

func mustMissing(t *testing.T, d *DB, k string) {
	t.Helper()
	if _, err := d.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(%q) err = %v, want ErrNotFound", k, err)
	}
}

func TestBasicPutGetDelete(t *testing.T) {
	for _, p := range []Policy{PolicyMash, PolicyLocalOnly, PolicyCloudOnly, PolicyCloudLRU} {
		t.Run(p.String(), func(t *testing.T) {
			d, _ := openTest(t, p)
			defer d.Close()
			mustPut(t, d, "hello", "world")
			mustGet(t, d, "hello", "world")
			mustMissing(t, d, "absent")
			if err := d.Delete([]byte("hello")); err != nil {
				t.Fatal(err)
			}
			mustMissing(t, d, "hello")
		})
	}
}

func TestOverwrite(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	mustPut(t, d, "k", "v1")
	mustPut(t, d, "k", "v2")
	mustGet(t, d, "k", "v2")
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	mustGet(t, d, "k", "v2")
	mustPut(t, d, "k", "v3")
	mustGet(t, d, "k", "v3")
}

func TestReadAfterFlush(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	for i := 0; i < 100; i++ {
		mustPut(t, d, fmt.Sprintf("key%04d", i), fmt.Sprintf("val%d", i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mustGet(t, d, fmt.Sprintf("key%04d", i), fmt.Sprintf("val%d", i))
	}
	if d.EngineStats().Flushes.Load() == 0 {
		t.Fatal("flush not recorded")
	}
}

func TestWriteBatchAtomicity(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	b := batch.New()
	b.Set([]byte("a"), []byte("1"))
	b.Set([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := d.Write(b); err != nil {
		t.Fatal(err)
	}
	mustMissing(t, d, "a")
	mustGet(t, d, "b", "2")
}

// fillKeys writes n keys with deterministic values, interleaving enough
// data to force flushes and compactions under the test geometry.
func fillKeys(t *testing.T, d *DB, n int, valLen int) map[string]string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ref := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", rng.Intn(n))
		v := fmt.Sprintf("val-%d-%s", i, bytes.Repeat([]byte("x"), valLen))
		mustPut(t, d, k, v)
		ref[k] = v
	}
	return ref
}

func TestCompactionPreservesData(t *testing.T) {
	for _, p := range []Policy{PolicyMash, PolicyLocalOnly, PolicyCloudLRU} {
		t.Run(p.String(), func(t *testing.T) {
			d, _ := openTest(t, p)
			defer d.Close()
			ref := fillKeys(t, d, 2000, 100)
			if err := d.CompactAll(); err != nil {
				t.Fatal(err)
			}
			if d.EngineStats().Compactions.Load() == 0 {
				t.Fatal("no compactions ran under test geometry")
			}
			for k, v := range ref {
				mustGet(t, d, k, v)
			}
		})
	}
}

func TestCompactionPlacementMash(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	fillKeys(t, d, 5000, 200)
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	v := d.vs.Current()
	if v.MaxLevel() < 2 {
		t.Skipf("tree too shallow (max level %d); increase data", v.MaxLevel())
	}
	var localDeep, cloudShallow int
	for l := 0; l < 7; l++ {
		for _, f := range v.Levels[l] {
			if l < d.opts.LocalLevels && f.Tier != storage.TierLocal {
				cloudShallow++
			}
			if l >= d.opts.LocalLevels && f.Tier != storage.TierCloud {
				localDeep++
			}
		}
	}
	if cloudShallow != 0 || localDeep != 0 {
		t.Fatalf("placement violated: %d cloud files in local levels, %d local files in cloud levels",
			cloudShallow, localDeep)
	}
	m := d.Metrics()
	if m.CloudBytes == 0 {
		t.Fatal("no bytes placed in cloud")
	}
	if m.LocalBytes == 0 {
		t.Fatal("no bytes kept local")
	}
}

func TestTombstonesSurviveCompaction(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	for i := 0; i < 500; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), "v")
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	// Delete half, compact again: deleted keys must stay deleted.
	for i := 0; i < 500; i += 2 {
		if err := d.Delete([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%05d", i)
		if i%2 == 0 {
			mustMissing(t, d, k)
		} else {
			mustGet(t, d, k, "v")
		}
	}
	if d.EngineStats().CompactDroppedKeys.Load() == 0 {
		t.Fatal("compaction dropped no shadowed keys")
	}
}

func TestIteratorFullScan(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	ref := fillKeys(t, d, 1500, 50)
	// Delete a handful.
	i := 0
	for k := range ref {
		if i%5 == 0 {
			if err := d.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(ref, k)
		}
		i++
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}

	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := map[string]string{}
	var prev []byte
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatal("iterator out of order")
		}
		prev = append(prev[:0], it.Key()...)
		got[string(it.Key())] = string(it.Value())
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(got) != len(ref) {
		t.Fatalf("scan found %d keys, want %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("key %q = %q want %q", k, got[k], v)
		}
	}
}

func TestIteratorSeek(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	for i := 0; i < 100; i += 2 {
		mustPut(t, d, fmt.Sprintf("k%04d", i), "v")
	}
	d.Flush()
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.Seek([]byte("k0013"))
	if !it.Valid() || string(it.Key()) != "k0014" {
		t.Fatalf("seek landed on %q valid=%v", it.Key(), it.Valid())
	}
	it.Seek([]byte("zzz"))
	if it.Valid() {
		t.Fatal("seek past end should invalidate")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	mustPut(t, d, "k", "old")
	snap := d.GetSnapshot()
	defer snap.Release()
	mustPut(t, d, "k", "new")
	if err := d.Delete([]byte("x")); err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "y", "added-later")

	if v, err := snap.Get([]byte("k")); err != nil || string(v) != "old" {
		t.Fatalf("snapshot read = %q, %v", v, err)
	}
	if _, err := snap.Get([]byte("y")); !errors.Is(err, ErrNotFound) {
		t.Fatal("snapshot saw later write")
	}
	mustGet(t, d, "k", "new")
}

func TestSnapshotSurvivesFlushAndCompaction(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	mustPut(t, d, "pinned", "v1")
	snap := d.GetSnapshot()
	defer snap.Release()
	fillKeys(t, d, 1000, 100)
	mustPut(t, d, "pinned", "v2")
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if v, err := snap.Get([]byte("pinned")); err != nil || string(v) != "v1" {
		t.Fatalf("snapshot after compaction = %q, %v", v, err)
	}
}

func TestIteratorSnapshotView(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	mustPut(t, d, "a", "1")
	mustPut(t, d, "b", "2")
	snap := d.GetSnapshot()
	defer snap.Release()
	mustPut(t, d, "c", "3")
	if err := d.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}

	it, err := snap.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var ks []string
	for it.First(); it.Valid(); it.Next() {
		ks = append(ks, string(it.Key()))
	}
	if fmt.Sprint(ks) != "[a b]" {
		t.Fatalf("snapshot scan = %v", ks)
	}
}

func TestRecoveryAfterCrash(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			dir := t.TempDir()
			opts := testOptions(PolicyMash)
			opts.RecoveryParallelism = par
			d, err := OpenAt(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			ref := map[string]string{}
			for i := 0; i < 800; i++ {
				k := fmt.Sprintf("key%05d", i%300)
				v := fmt.Sprintf("val-%d", i)
				mustPut(t, d, k, v)
				ref[k] = v
			}
			d.Delete([]byte("key00000"))
			delete(ref, "key00000")
			d.CrashForTest()

			d2, err := OpenAt(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			for k, v := range ref {
				mustGet(t, d2, k, v)
			}
			mustMissing(t, d2, "key00000")
			rep := d2.RecoveryReport()
			if rep.RecoveredKeys == 0 {
				t.Fatal("nothing recovered from WAL")
			}
		})
	}
}

func TestRecoverySkipsFlushedSegments(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(PolicyMash)
	opts.WALSegmentBytes = 8 << 10
	d, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Write enough to flush several memtables (and GC their segments),
	// then a little more that stays only in the WAL.
	for i := 0; i < 2000; i++ {
		mustPut(t, d, fmt.Sprintf("k%06d", i), string(bytes.Repeat([]byte("x"), 100)))
	}
	d.Flush()
	for i := 0; i < 50; i++ {
		mustPut(t, d, fmt.Sprintf("tail%03d", i), "fresh")
	}
	d.CrashForTest()

	d2, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i := 0; i < 50; i++ {
		mustGet(t, d2, fmt.Sprintf("tail%03d", i), "fresh")
	}
	mustGet(t, d2, "k000000", string(bytes.Repeat([]byte("x"), 100)))
}

func TestRecoveryEquivalenceSerialParallel(t *testing.T) {
	build := func(par int) map[string]string {
		dir := t.TempDir()
		opts := testOptions(PolicyMash)
		opts.RecoveryParallelism = par
		opts.WALSegmentBytes = 4 << 10
		d, err := OpenAt(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 600; i++ {
			k := fmt.Sprintf("k%04d", rng.Intn(200))
			if rng.Intn(10) == 0 {
				d.Delete([]byte(k))
			} else {
				d.Put([]byte(k), []byte(fmt.Sprintf("v%d", i)))
			}
		}
		d.CrashForTest()
		d2, err := OpenAt(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer d2.Close()
		out := map[string]string{}
		it, err := d2.NewIterator()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		for it.First(); it.Valid(); it.Next() {
			out[string(it.Key())] = string(it.Value())
		}
		return out
	}
	serial := build(1)
	parallel := build(8)
	if len(serial) != len(parallel) {
		t.Fatalf("key counts differ: %d vs %d", len(serial), len(parallel))
	}
	for k, v := range serial {
		if parallel[k] != v {
			t.Fatalf("divergence at %q: %q vs %q", k, v, parallel[k])
		}
	}
}

func TestCleanCloseAndReopen(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(PolicyMash)
	d, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref := fillKeys(t, d, 500, 50)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal("double close should be nil:", err)
	}
	d2, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for k, v := range ref {
		mustGet(t, d2, k, v)
	}
	if _, err := d.Get([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatal("closed DB should refuse reads")
	}
	if err := d.Put([]byte("x"), nil); !errors.Is(err, ErrClosed) {
		t.Fatal("closed DB should refuse writes")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	const writers, readers, perG = 4, 4, 300
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := fmt.Sprintf("w%d-k%04d", w, i)
				if err := d.Put([]byte(k), []byte(fmt.Sprint(i))); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := fmt.Sprintf("w%d-k%04d", r%writers, i)
				if _, err := d.Get([]byte(k)); err != nil && !errors.Is(err, ErrNotFound) {
					errCh <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// All writes must be present afterwards.
	for w := 0; w < writers; w++ {
		for i := 0; i < perG; i++ {
			mustGet(t, d, fmt.Sprintf("w%d-k%04d", w, i), fmt.Sprint(i))
		}
	}
}

func TestPCacheServesCloudReads(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	fillKeys(t, d, 3000, 200)
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.CloudBytes == 0 {
		t.Skip("dataset did not reach cloud levels")
	}
	// Read keys repeatedly; with the write-through pcache, cloud GETs for
	// data blocks should be largely avoided.
	before := d.cloud.Stats().Snapshot()
	for i := 0; i < 500; i++ {
		d.Get([]byte(fmt.Sprintf("key%06d", i)))
	}
	after := d.cloud.Stats().Snapshot()
	hit, _, _ := d.PCacheStats()
	if hit == 0 && after.GetOps-before.GetOps > 400 {
		t.Fatalf("persistent cache ineffective: hit=%f cloudGets=%d", hit, after.GetOps-before.GetOps)
	}
}

func TestMissingCloudObjectSurfacesError(t *testing.T) {
	d, dir := openTest(t, PolicyCloudOnly)
	defer d.Close()
	for i := 0; i < 200; i++ {
		mustPut(t, d, fmt.Sprintf("k%04d", i), string(bytes.Repeat([]byte("v"), 50)))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// Lose every cloud object, then force reads that need them.
	cl, err := storage.NewCloud(filepath.Join(dir, "cloud"), storage.NoLatency(), storage.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	names, _ := cl.List("sst/")
	if len(names) == 0 {
		t.Fatal("no cloud tables written")
	}
	d.cloudSim.LoseObject(names[0])
	// Some key in the lost file must now error (not silently miss).
	sawErr := false
	for i := 0; i < 200; i++ {
		_, err := d.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil && !errors.Is(err, ErrNotFound) {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("lost cloud object went unnoticed")
	}
}

func TestMetricsShape(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	fillKeys(t, d, 300, 50)
	d.Flush()
	// Table metadata is pinned lazily at first open; touch the tables.
	for i := 0; i < 300; i++ {
		d.Get([]byte(fmt.Sprintf("key%06d", i)))
	}
	m := d.Metrics()
	if m.Policy != "mash" {
		t.Fatalf("policy = %s", m.Policy)
	}
	if len(m.LevelFiles) != 7 {
		t.Fatalf("levels = %d", len(m.LevelFiles))
	}
	if m.LastSeq == 0 || m.Flushes == 0 {
		t.Fatalf("metrics not populated: %+v", m)
	}
	if m.MetaBytes <= 0 {
		t.Fatal("table metadata accounting empty")
	}
}

func TestEmptyBatchIsNoop(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	seq := d.LastSequence()
	if err := d.Write(batch.New()); err != nil {
		t.Fatal(err)
	}
	if d.LastSequence() != seq {
		t.Fatal("empty batch consumed a sequence number")
	}
}

func TestHas(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	mustPut(t, d, "exists", "v")
	ok, err := d.Has([]byte("exists"))
	if err != nil || !ok {
		t.Fatal("Has(exists) failed")
	}
	ok, err = d.Has([]byte("missing"))
	if err != nil || ok {
		t.Fatal("Has(missing) wrong")
	}
}
