package db

import (
	"fmt"
	"path/filepath"
	"testing"
)

// TestWALSegmentsGarbageCollected verifies the eWAL GC: once data is
// flushed to tables, the covering segments are deleted and the WAL
// directory does not grow with total writes.
func TestWALSegmentsGarbageCollected(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(PolicyMash)
	opts.WALSegmentBytes = 16 << 10
	d, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	countSegments := func() int {
		names, err := d.local.List("wal/")
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, name := range names {
			if filepath.Ext(name) == ".log" {
				n++
			}
		}
		return n
	}

	var maxSegs int
	for round := 0; round < 10; round++ {
		for i := 0; i < 500; i++ {
			mustPut(t, d, fmt.Sprintf("r%d-k%04d", round, i), "some-value-data")
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		if n := countSegments(); n > maxSegs {
			maxSegs = n
		}
	}
	// After the final flush everything is durable in tables; only the
	// active (post-roll) segment and at most a couple of stragglers may
	// remain.
	final := countSegments()
	if final > 3 {
		t.Fatalf("WAL GC ineffective: %d segments remain after full flush", final)
	}
	if maxSegs > 20 {
		t.Fatalf("WAL directory grew unboundedly: peak %d segments", maxSegs)
	}
}

// TestCloudCostReporting checks the cost plumbing end to end.
func TestCloudCostReporting(t *testing.T) {
	d, _ := openTest(t, PolicyCloudOnly)
	defer d.Close()
	fillKeys(t, d, 500, 100)
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, ok := d.CloudCost()
	if !ok {
		t.Fatal("simulated cloud should report cost")
	}
	if rep.StoredBytes == 0 {
		t.Fatal("no stored bytes priced")
	}
	if rep.TotalMonthly <= 0 {
		t.Fatalf("bill = %v", rep.TotalMonthly)
	}
	if rep.StorageCost <= 0 || rep.RequestCost <= 0 {
		t.Fatalf("cost components: %+v", rep)
	}

	// Local-only stores have no cloud bill.
	d2, _ := openTest(t, PolicyLocalOnly)
	defer d2.Close()
	if _, ok := d2.CloudCost(); ok {
		t.Fatal("local-only store should not report a cloud bill")
	}
}
