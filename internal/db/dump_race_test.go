package db

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStatsReadersRaceWriters hammers every stats read surface —
// DumpStats, Metrics, VitalsSample, and the vitals sampler's own ring —
// concurrently with live writers, readers, flushes and compactions. Run
// with -race: the point is that observability never tears or races the
// engine it observes.
func TestStatsReadersRaceWriters(t *testing.T) {
	o := testOptions(PolicyLocalOnly)
	o.VitalsInterval = time.Millisecond
	d, err := OpenAt(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: enough volume to keep flushes and compactions running.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := strings.Repeat("v", 200)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("race-%d-%06d", w, i%4000)
				if err := d.Put([]byte(k), []byte(val)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("race-0-%06d", i%4000)
			if _, err := d.Get([]byte(k)); err != nil && err != ErrNotFound {
				t.Error(err)
				return
			}
		}
	}()
	// Stats consumers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rep := d.DumpStats(); rep == "" {
					t.Error("empty DumpStats report")
					return
				}
				m := d.Metrics()
				// The counters are not one consistent snapshot mid-flight;
				// just exercise the read surfaces. Exact reconciliation is
				// asserted at quiescence in TestLevelWriteAmpReconciles.
				if len(m.LevelWriteAmp) == 0 {
					t.Error("Metrics().LevelWriteAmp empty")
					return
				}
				d.VitalsSample()
				if v := d.Vitals(); v != nil {
					v.Samples()
					v.LatestWindow()
				}
			}
		}()
	}

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
}
