package db

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"rocksmash/internal/manifest"
	"rocksmash/internal/storage"
	"rocksmash/internal/wal"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// localTableNums returns the file numbers of every local-tier table in the
// current version, smallest level first.
func localTableNums(d *DB) []uint64 {
	var nums []uint64
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		if f.Tier == storage.TierLocal {
			nums = append(nums, f.Num)
		}
	})
	return nums
}

// corruptObject flips one byte of a stored object at the given offset.
func corruptObject(t *testing.T, be storage.Backend, name string, off int) {
	t.Helper()
	data, err := be.ReadAll(name)
	if err != nil {
		t.Fatalf("reading %s to corrupt it: %v", name, err)
	}
	if off >= len(data) {
		t.Fatalf("corrupt offset %d beyond %s (%d bytes)", off, name, len(data))
	}
	data[off] ^= 0xFF
	if err := storage.WriteObject(be, name, data); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptLocalTableRepairedFromMirror damages a data block of a
// local-tier SSTable that has a lazy cloud mirror, and asserts the read
// path detects the bad checksum, repairs the file in place from the mirror,
// and serves every read byte-correct — the client never sees the damage.
func TestCorruptLocalTableRepairedFromMirror(t *testing.T) {
	o := testOptions(PolicyMash)
	o.MirrorLocalLevels = true
	dir := t.TempDir()
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const n = 300
	for i := 0; i < n; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	locals := localTableNums(d)
	if len(locals) == 0 {
		t.Fatal("no local-tier tables after flush")
	}
	waitFor(t, "lazy mirror", 10*time.Second, func() bool {
		return d.Metrics().MirroredTables >= int64(len(locals))
	})

	// Flip a byte in the first data block, then force a reopen so the next
	// read goes back to the damaged file.
	num := locals[0]
	corruptObject(t, d.local, manifest.TableName(num), 64)
	d.tables.evict(num)

	for i := 0; i < n; i++ {
		mustGet(t, d, fmt.Sprintf("k%05d", i), pipelineValue(i))
	}
	m := d.Metrics()
	if m.CorruptionsDetected == 0 || m.CorruptionsRepaired == 0 {
		t.Fatalf("corruption not detected/repaired: detected=%d repaired=%d",
			m.CorruptionsDetected, m.CorruptionsRepaired)
	}
	if m.CorruptionsUnrepaired != 0 {
		t.Fatalf("CorruptionsUnrepaired = %d, want 0 (a mirror exists)", m.CorruptionsUnrepaired)
	}
	if m.CorruptionsDetected != m.CorruptionsRepaired+m.CorruptionsUnrepaired {
		t.Fatalf("counters do not reconcile: %d != %d + %d",
			m.CorruptionsDetected, m.CorruptionsRepaired, m.CorruptionsUnrepaired)
	}
	// The on-disk file was rewritten from the mirror: it verifies clean.
	data, err := d.local.ReadAll(manifest.TableName(num))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.verifyTableBytes(data, num); err != nil {
		t.Fatalf("local file still damaged after repair: %v", err)
	}
}

// TestCorruptLocalTableNoCloudSourceQuarantines damages a local table in a
// store with no cloud tier at all: the read must surface a typed error
// wrapping storage.ErrCorruption — never silently wrong bytes — and the
// table is quarantined so later reads fail fast.
func TestCorruptLocalTableNoCloudSourceQuarantines(t *testing.T) {
	d, _ := openTest(t, PolicyLocalOnly)
	defer d.Close()

	const n = 300
	for i := 0; i < n; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	locals := localTableNums(d)
	if len(locals) == 0 {
		t.Fatal("no local tables after flush")
	}
	num := locals[0]
	corruptObject(t, d.local, manifest.TableName(num), 64)
	d.tables.evict(num)

	// The first key lives in the first data block — the damaged one.
	got, err := d.Get([]byte("k00000"))
	if !errors.Is(err, storage.ErrCorruption) {
		t.Fatalf("Get on damaged block: got (%q, %v), want ErrCorruption", got, err)
	}
	// Fail-fast on the quarantined table: same typed error, no re-probe.
	if _, err := d.Get([]byte("k00000")); !errors.Is(err, storage.ErrCorruption) {
		t.Fatalf("quarantined read err = %v, want ErrCorruption", err)
	}
	m := d.Metrics()
	if m.CorruptionsUnrepaired == 0 || m.QuarantinedTables != 1 {
		t.Fatalf("unrepaired=%d quarantined=%d, want >0 and 1",
			m.CorruptionsUnrepaired, m.QuarantinedTables)
	}
	if m.CorruptionsDetected != m.CorruptionsRepaired+m.CorruptionsUnrepaired {
		t.Fatalf("counters do not reconcile: %d != %d + %d",
			m.CorruptionsDetected, m.CorruptionsRepaired, m.CorruptionsUnrepaired)
	}
	// Damage in one block must not poison the rest of the table: the last
	// key lives blocks away and still reads correctly.
	mustGet(t, d, fmt.Sprintf("k%05d", n-1), pipelineValue(n-1))
}

// TestCorruptSidecarRepairedTransparently damages every cloud table's local
// metadata sidecar and asserts reads still succeed: the open classifies the
// sidecar corruption, deletes it, and rebuilds it from the cloud object's
// own metadata tail.
func TestCorruptSidecarRepairedTransparently(t *testing.T) {
	d, _ := openTest(t, PolicyCloudOnly)
	defer d.Close()

	const n = 300
	for i := 0; i < n; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	names, err := d.local.List("meta/")
	if err != nil || len(names) == 0 {
		t.Fatalf("no sidecars written: %v %v", names, err)
	}
	for _, name := range names {
		corruptObject(t, d.local, name, 12)
	}
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) { d.tables.evict(f.Num) })

	for i := 0; i < n; i++ {
		mustGet(t, d, fmt.Sprintf("k%05d", i), pipelineValue(i))
	}
	m := d.Metrics()
	if m.CorruptionsDetected == 0 || m.CorruptionsRepaired == 0 || m.CorruptionsUnrepaired != 0 {
		t.Fatalf("sidecar corruption counters: detected=%d repaired=%d unrepaired=%d",
			m.CorruptionsDetected, m.CorruptionsRepaired, m.CorruptionsUnrepaired)
	}
	// The rebuilt sidecars verify clean.
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		if f.Tier != storage.TierCloud {
			return
		}
		if ok, present := d.verifySidecar(f.Num); !present || !ok {
			t.Errorf("sidecar for table %d not rebuilt clean (present=%v ok=%v)", f.Num, present, ok)
		}
	})
}

// TestScrubRepairsOfflineDamage corrupts a mirrored local table while no
// reads are running and lets an on-demand Scrub find and repair it.
func TestScrubRepairsOfflineDamage(t *testing.T) {
	o := testOptions(PolicyMash)
	o.MirrorLocalLevels = true
	dir := t.TempDir()
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for i := 0; i < 300; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	locals := localTableNums(d)
	if len(locals) == 0 {
		t.Fatal("no local tables after flush")
	}
	waitFor(t, "lazy mirror", 10*time.Second, func() bool {
		return d.Metrics().MirroredTables >= int64(len(locals))
	})
	corruptObject(t, d.local, manifest.TableName(locals[0]), 64)

	rep := d.Scrub()
	if rep.Tables == 0 || rep.Corrupt != 1 || rep.Repaired != 1 || rep.Unrepaired != 0 {
		t.Fatalf("scrub report = %+v, want 1 corrupt table repaired", rep)
	}
	if rep.Checked != rep.Tables+rep.Sidecars+rep.WALSegments {
		t.Fatalf("report breakdown does not sum: %+v", rep)
	}
	// A second pass over the healed store finds nothing.
	if rep2 := d.Scrub(); rep2.Corrupt != 0 {
		t.Fatalf("second scrub still found %d corrupt artifacts", rep2.Corrupt)
	}
	if got := d.Metrics().ScrubPasses; got != 2 {
		t.Fatalf("ScrubPasses = %d, want 2", got)
	}
	for i := 0; i < 300; i++ {
		mustGet(t, d, fmt.Sprintf("k%05d", i), pipelineValue(i))
	}
}

// TestScrubIntervalBackgroundHeals verifies the background scrubber
// (Options.ScrubInterval) finds and repairs damage with no read traffic.
func TestScrubIntervalBackgroundHeals(t *testing.T) {
	o := testOptions(PolicyMash)
	o.MirrorLocalLevels = true
	o.ScrubInterval = 20 * time.Millisecond
	dir := t.TempDir()
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for i := 0; i < 300; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	locals := localTableNums(d)
	if len(locals) == 0 {
		t.Fatal("no local tables after flush")
	}
	waitFor(t, "lazy mirror", 10*time.Second, func() bool {
		return d.Metrics().MirroredTables >= int64(len(locals))
	})
	corruptObject(t, d.local, manifest.TableName(locals[0]), 64)

	waitFor(t, "background scrub repair", 10*time.Second, func() bool {
		m := d.Metrics()
		return m.CorruptionsRepaired > 0 && m.ScrubPasses > 0
	})
	mustGet(t, d, "k00000", pipelineValue(0))
}

// TestWALSegmentCorruptionScrubRestore damages a sealed WAL segment whose
// clean copy lives on the cloud backup and asserts the store's scrub pass
// restores it and counts the detection.
func TestWALSegmentCorruptionScrubRestore(t *testing.T) {
	o := testOptions(PolicyMash)
	o.WALCloudBackup = true
	dir := t.TempDir()
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for i := 0; i < 50; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), pipelineValue(i))
	}
	// Seal the active segment (copying it to the backup tier) and keep
	// writing into its successor so the sealed one stays referenced.
	if err := d.wal.Roll(); err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "after-roll", "v")

	segs, err := d.local.List("wal/")
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v %v", segs, err)
	}
	// Damage a mid-stream record of the sealed (oldest) segment: offset 7
	// is the first record's payload, past the crc/len/type header.
	corruptObject(t, d.local, segs[0], 7)

	rep := d.Scrub()
	if rep.WALSegments == 0 || rep.Corrupt != 1 || rep.Repaired != 1 {
		t.Fatalf("scrub report = %+v, want 1 corrupt wal segment restored", rep)
	}
	m := d.Metrics()
	if m.CorruptionsDetected == 0 || m.CorruptionsDetected != m.CorruptionsRepaired+m.CorruptionsUnrepaired {
		t.Fatalf("wal corruption counters do not reconcile: %+v", m)
	}
}

// TestManifestCorruptionTypedErrorOnReopen damages the MANIFEST mid-stream
// and asserts reopen refuses with the WAL record reader's typed corruption
// error instead of silently opening an empty or partial store.
func TestManifestCorruptionTypedErrorOnReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenAt(dir, testOptions(PolicyCloudOnly))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	local, err := storage.NewLocal(filepath.Join(dir, "local"))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := local.ReadAll("CURRENT")
	if err != nil {
		t.Fatal(err)
	}
	// Offset 10 sits inside the first record's payload (the snapshot edit):
	// mid-stream damage, not a tolerable torn tail.
	corruptObject(t, local, string(cur), 10)

	if _, err := OpenAt(dir, testOptions(PolicyCloudOnly)); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("reopen with corrupt MANIFEST err = %v, want wal.ErrCorrupt", err)
	}
}

// TestCurrentCorruptionFailsReopen scribbles over CURRENT and asserts the
// reopen fails loudly rather than initializing a fresh, empty store on top
// of existing data.
func TestCurrentCorruptionFailsReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenAt(dir, testOptions(PolicyCloudOnly))
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "k", "v")
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	local, err := storage.NewLocal(filepath.Join(dir, "local"))
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteObject(local, "CURRENT", []byte("MANIFEST-garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAt(dir, testOptions(PolicyCloudOnly)); err == nil {
		t.Fatal("reopen with corrupt CURRENT succeeded; data silently dropped")
	}
}

// TestLocalDegradedFlushAndDrainBack is the local twin of the cloud-outage
// degraded test: the local device fills mid-run, every write must keep
// succeeding (flushes land cloud-direct behind the open local breaker, WAL
// segments spill to the cloud backup), and once space returns the drainer
// migrates the misplaced tables back to the local tier.
func TestLocalDegradedFlushAndDrainBack(t *testing.T) {
	o := testOptions(PolicyMash)
	o.WALCloudBackup = true
	d, lf, _, err := OpenAtChaosLocal(t.TempDir(), o,
		storage.FaultConfig{BudgetExemptPrefixes: []string{"MANIFEST", "CURRENT"}},
		storage.FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const batches, perBatch = 4, 60
	for i := 0; i < perBatch; i++ {
		mustPut(t, d, fmt.Sprintf("k%02d-%04d", 0, i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	// The disk fills: table and WAL writes get ENOSPC, manifest appends
	// draw from the reserved metadata headroom.
	lf.SetWriteBudget(lf.WrittenBytes() + 2<<10)
	for b := 1; b < batches; b++ {
		for i := 0; i < perBatch; i++ {
			mustPut(t, d, fmt.Sprintf("k%02d-%04d", b, i), pipelineValue(i))
		}
		if err := d.Flush(); err != nil {
			t.Fatalf("flush %d during disk-full must degrade, not fail: %v", b, err)
		}
	}
	m := d.Metrics()
	if m.LocalBreakerState != "open" {
		t.Fatalf("local breaker state = %q during disk-full, want open", m.LocalBreakerState)
	}
	if m.LocalBreakerTrips == 0 || m.LocalDegradedTables == 0 || m.MisplacedTables == 0 {
		t.Fatalf("degraded landings missing: trips=%d cloud-direct=%d misplaced=%d",
			m.LocalBreakerTrips, m.LocalDegradedTables, m.MisplacedTables)
	}
	if m.WALSpills == 0 {
		t.Fatal("WAL segments did not spill to the cloud backup")
	}
	// Every acked key reads back mid-degradation.
	for b := 0; b < batches; b++ {
		mustGet(t, d, fmt.Sprintf("k%02d-%04d", b, 0), pipelineValue(0))
		mustGet(t, d, fmt.Sprintf("k%02d-%04d", b, perBatch-1), pipelineValue(perBatch-1))
	}

	// Space returns: the breaker's probe closes it and the misplaced tables
	// drain back to local storage.
	lf.SetWriteBudget(0)
	waitFor(t, "misplaced tables to drain back", 10*time.Second, func() bool {
		return d.MisplacedTables() == 0
	})
	m = d.Metrics()
	if m.LocalDrainedBack == 0 {
		t.Fatal("LocalDrainedBack counter not incremented")
	}
	if m.LocalDegradedDur <= 0 {
		t.Fatal("LocalDegradedDur not recorded")
	}
	for b := 0; b < batches; b++ {
		for i := 0; i < perBatch; i++ {
			mustGet(t, d, fmt.Sprintf("k%02d-%04d", b, i), pipelineValue(i))
		}
	}
}

// TestBitFlipStormByteCorrect is the acceptance bar from the issue: under a
// percent-scale local read bit-flip rate with MirrorLocalLevels on, a
// full-keyspace readback returns byte-correct values with zero corruption
// errors surfaced to clients, and the detection/repair counters reconcile.
func TestBitFlipStormByteCorrect(t *testing.T) {
	o := testOptions(PolicyMash)
	o.MirrorLocalLevels = true
	d, lf, _, err := OpenAtChaosLocal(t.TempDir(), o,
		storage.FaultConfig{Seed: 42}, storage.FaultConfig{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const n = 1500
	for i := 0; i < n; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	locals := localTableNums(d)
	if len(locals) == 0 {
		t.Fatal("no local tables to mirror")
	}
	waitFor(t, "lazy mirror", 10*time.Second, func() bool {
		return d.Metrics().MirroredTables >= int64(len(locals))
	})

	lf.SetCorruptRate(0.05)
	for i := 0; i < n; i++ {
		got, gerr := d.Get([]byte(fmt.Sprintf("k%05d", i)))
		if gerr != nil {
			t.Fatalf("Get(%d) surfaced %v during bit-flip storm", i, gerr)
		}
		if !bytes.Equal(got, []byte(pipelineValue(i))) {
			t.Fatalf("Get(%d) returned wrong bytes during bit-flip storm", i)
		}
	}
	lf.SetCorruptRate(0)

	if lf.CorruptedReads() == 0 {
		t.Fatal("fault injector corrupted no reads; the storm never happened")
	}
	m := d.Metrics()
	if m.CorruptionsDetected == 0 {
		t.Fatalf("%d reads corrupted but none detected", lf.CorruptedReads())
	}
	if m.CorruptionsDetected != m.CorruptionsRepaired+m.CorruptionsUnrepaired {
		t.Fatalf("counters do not reconcile: %d != %d + %d",
			m.CorruptionsDetected, m.CorruptionsRepaired, m.CorruptionsUnrepaired)
	}
}

// TestCrashPointLocalDegraded sweeps randomized crash points through the
// self-healing machinery: the local device fills mid-run (forcing degraded
// landings and WAL spills) while the background scrubber runs, then all
// storage dies at a random operation index. Reopening against clean
// backends must recover every acknowledged write.
func TestCrashPointLocalDegraded(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(int64(seed)*6151 + 11))
			crashAt := int64(50 + rng.Intn(600))
			headroom := int64(2<<10 + rng.Intn(16<<10))

			degradedOptions := func() Options {
				o := testOptions(PolicyMash)
				o.WALSync = true
				o.WALCloudBackup = true
				o.MirrorLocalLevels = true
				o.ScrubInterval = 5 * time.Millisecond
				o.pcacheDir = filepath.Join(dir, "pcache")
				return o
			}
			o := degradedOptions()
			local, err := storage.NewLocal(filepath.Join(dir, "local"))
			if err != nil {
				t.Fatal(err)
			}
			cloud, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
			if err != nil {
				t.Fatal(err)
			}
			fl := storage.NewFaulty(local, storage.FaultConfig{
				BudgetExemptPrefixes: []string{"MANIFEST", "CURRENT"},
			})
			fc := storage.NewFaulty(cloud, storage.FaultConfig{})
			var ops atomic.Int64
			dead := func(op, name string) error {
				if ops.Add(1) > crashAt {
					return errors.New("crash point reached")
				}
				return nil
			}
			fl.SetHook(dead)
			fc.SetHook(dead)

			acked := map[string]string{}
			d, err := Open(o, fl, fc)
			if err == nil {
				for i := 0; i < 400; i++ {
					if i == 100 {
						// The disk fills a quarter of the way in, pushing the
						// rest of the run through local-degraded transitions.
						fl.SetWriteBudget(fl.WrittenBytes() + headroom)
					}
					k := fmt.Sprintf("k%04d", i)
					v := pipelineValue(i)
					if perr := d.Put([]byte(k), []byte(v)); perr != nil {
						break
					}
					acked[k] = v
					if i%53 == 52 {
						if ferr := d.Flush(); ferr != nil {
							break
						}
					}
				}
				d.Crash()
			}

			local2, err := storage.NewLocal(filepath.Join(dir, "local"))
			if err != nil {
				t.Fatal(err)
			}
			cloud2, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := Open(degradedOptions(), local2, cloud2)
			if err != nil {
				t.Fatalf("crashAt=%d acked=%d: reopen after crash: %v", crashAt, len(acked), err)
			}
			defer d2.Close()
			for k, v := range acked {
				got, gerr := d2.Get([]byte(k))
				if gerr != nil {
					t.Fatalf("crashAt=%d: acked key %s lost: %v", crashAt, k, gerr)
				}
				if string(got) != v {
					t.Fatalf("crashAt=%d: acked key %s corrupted", crashAt, k)
				}
			}
		})
	}
}
