package db

import (
	"bytes"
	"fmt"
	"testing"

	"rocksmash/internal/sstable"
)

// TestCompressionEndToEnd runs a full write/flush/compact/read cycle with
// flate-compressed data blocks and verifies correctness plus the capacity
// saving on the cloud tier.
func TestCompressionEndToEnd(t *testing.T) {
	sizes := map[string]int64{}
	for _, codec := range []sstable.Compression{sstable.CompressionNone, sstable.CompressionFlate} {
		opts := testOptions(PolicyCloudOnly)
		opts.Compression = codec
		d, err := OpenAt(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		// Repetitive JSON-ish values compress well.
		for i := 0; i < 2000; i++ {
			v := []byte(fmt.Sprintf(`{"id":%d,"status":"active","tags":["alpha","beta","gamma"]}`, i))
			if err := d.Put([]byte(fmt.Sprintf("doc%06d", i)), v); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.CompactAll(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i += 97 {
			want := fmt.Sprintf(`{"id":%d,"status":"active","tags":["alpha","beta","gamma"]}`, i)
			v, err := d.Get([]byte(fmt.Sprintf("doc%06d", i)))
			if err != nil || !bytes.Equal(v, []byte(want)) {
				t.Fatalf("codec %d: doc%06d = %q, %v", codec, i, v, err)
			}
		}
		name := "raw"
		if codec == sstable.CompressionFlate {
			name = "flate"
		}
		sizes[name] = d.Metrics().CloudBytes
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if sizes["flate"] >= sizes["raw"] {
		t.Fatalf("compression saved nothing: flate=%d raw=%d", sizes["flate"], sizes["raw"])
	}
	t.Logf("cloud bytes: raw=%d flate=%d (%.1f%%)", sizes["raw"], sizes["flate"],
		100*float64(sizes["flate"])/float64(sizes["raw"]))
}

// TestCompressedReopen verifies compressed tables survive close/reopen and
// crash/recovery.
func TestCompressedReopen(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(PolicyMash)
	opts.Compression = sstable.CompressionFlate
	d, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref := fillKeys(t, d, 1000, 200)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for k, v := range ref {
		mustGet(t, d2, k, v)
	}
}
