package db

import (
	"sync"
	"time"

	"rocksmash/internal/block"
	"rocksmash/internal/cache"
	"rocksmash/internal/keys"
	"rocksmash/internal/manifest"
	"rocksmash/internal/pcache"
	"rocksmash/internal/readprof"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
)

// Sorted-view plumbing (REMIX-style). Each level >= 1 can carry a sorted
// view: a local-tier sidecar ("view/L<level>-<fingerprint>.view") holding
// the level's global block-cursor run, built from the members' pinned
// index blocks — zero data or cloud I/O. The registry below caches the
// decoded view per level, keyed by the fingerprint of the level's exact
// member set; a compaction install changes membership, the fingerprint
// diverges, and the cached view goes stale implicitly. Stale or missing
// views are rebuilt lazily in the background — the first scan after a
// compaction takes the plain merge path and schedules the rebuild.

// levelView is one level's registry slot.
type levelView struct {
	fp       uint64
	view     *sstable.View // nil while building
	building bool
}

// viewRegistry caches decoded sorted views per level. closing gates new
// builder goroutines against Close's WaitGroup drain.
type viewRegistry struct {
	mu      sync.Mutex
	levels  map[int]*levelView
	closing bool
}

// viewFor returns the level's sorted view when one matching the exact
// current member set is installed, else nil — scheduling a background
// (re)build at most once per fingerprint.
func (d *DB) viewFor(level int, files []*manifest.FileMetadata) *sstable.View {
	if d.opts.DisableSortedViews || level == 0 || len(files) == 0 {
		return nil
	}
	fp := manifest.ViewFingerprint(files)
	d.views.mu.Lock()
	defer d.views.mu.Unlock()
	if lv := d.views.levels[level]; lv != nil && lv.fp == fp {
		return lv.view // nil while the build is still in flight
	}
	if d.views.closing || d.closed.Load() {
		return nil
	}
	if d.views.levels == nil {
		d.views.levels = map[int]*levelView{}
	}
	d.views.levels[level] = &levelView{fp: fp, building: true}
	snap := make([]*manifest.FileMetadata, len(files))
	copy(snap, files)
	d.viewWG.Add(1)
	go d.buildView(level, fp, snap)
	return nil
}

// buildView materializes one level's view: load the persisted sidecar if a
// matching one survives on disk, otherwise rebuild from the members' pinned
// indexes and persist. Runs on its own goroutine; failures leave the level
// on the plain merge path (a later scan retries).
func (d *DB) buildView(level int, fp uint64, files []*manifest.FileMetadata) {
	defer d.viewWG.Done()
	name := manifest.ViewName(level, fp)
	start := time.Now()
	v := d.loadViewObject(name, level, files)
	if v == nil {
		members := make([]uint64, len(files))
		indexes := make([][]sstable.IndexEntry, len(files))
		uppers := make([][]byte, len(files))
		for i, f := range files {
			if d.closed.Load() {
				d.finishView(level, fp, nil)
				return
			}
			h, err := d.tables.get(d, f)
			if err != nil {
				d.finishView(level, fp, nil)
				return
			}
			es, err := h.reader.IndexEntries()
			h.release()
			if err != nil {
				d.finishView(level, fp, nil)
				return
			}
			members[i] = f.Num
			indexes[i] = es
			uppers[i] = f.Largest
		}
		v = sstable.BuildView(level, members, indexes, uppers)
		data := sstable.EncodeView(v)
		// Persisting is best-effort: the view is derived data, and a full
		// disk must not take the fast path away from the in-memory copy.
		_ = storage.WriteObject(d.local, name, data)
		d.stats.ViewBuilds.Add(1)
		d.stats.ViewBuildBytes.Add(int64(len(data)))
		d.evViewBuilt(level, len(members), len(v.Entries), len(data), time.Since(start))
	}
	d.finishView(level, fp, v)
	d.sweepStaleViews(level, fp)
}

// finishView installs the build result, unless the level has been retaken
// by a newer fingerprint in the meantime. A nil view (failed build) drops
// the slot so a later scan can retry.
func (d *DB) finishView(level int, fp uint64, v *sstable.View) {
	d.views.mu.Lock()
	if lv := d.views.levels[level]; lv != nil && lv.fp == fp {
		if v == nil {
			delete(d.views.levels, level)
		} else {
			lv.view = v
			lv.building = false
		}
	}
	d.views.mu.Unlock()
}

// loadViewObject decodes a persisted view sidecar, validating that it
// still describes exactly this member set. Any mismatch or damage reads as
// "absent" — views are rebuildable.
func (d *DB) loadViewObject(name string, level int, files []*manifest.FileMetadata) *sstable.View {
	data, err := d.local.ReadAll(name)
	if err != nil {
		return nil
	}
	v, err := sstable.DecodeView(data)
	if err != nil || v.Level != level || len(v.Members) != len(files) {
		return nil
	}
	for i, f := range files {
		if v.Members[i] != f.Num {
			return nil
		}
	}
	return v
}

// sweepStaleViews deletes this level's superseded view objects.
func (d *DB) sweepStaleViews(level int, keep uint64) {
	names, err := d.local.List(manifest.ViewPrefix)
	if err != nil {
		return
	}
	for _, name := range names {
		if l, fp, ok := manifest.ParseViewName(name); ok && l == level && fp != keep {
			_ = d.local.Delete(name)
		}
	}
}

// invalidateViews drops registry slots whose membership no longer matches
// the just-installed version and deletes their sidecars. The next scan of
// an invalidated level falls back to the plain merge and schedules a
// rebuild.
func (d *DB) invalidateViews(v *manifest.Version, levels ...int) {
	if d.opts.DisableSortedViews {
		return
	}
	var stale []string
	d.views.mu.Lock()
	for _, l := range levels {
		lv := d.views.levels[l]
		if lv == nil || lv.building {
			continue
		}
		if manifest.ViewFingerprint(v.Levels[l]) != lv.fp {
			delete(d.views.levels, l)
			stale = append(stale, manifest.ViewName(l, lv.fp))
		}
	}
	d.views.mu.Unlock()
	for _, name := range stale {
		_ = d.local.Delete(name)
	}
}

// stopViewBuilders bars new builds and drains in-flight ones. Called from
// Close/Crash after the background loops stop and before the table cache
// is torn down (builders hold table handles).
func (d *DB) stopViewBuilders() {
	d.views.mu.Lock()
	d.views.closing = true
	d.views.mu.Unlock()
	d.viewWG.Wait()
}

// BuildViews synchronously materializes the sorted view of every eligible
// level (and every shard), so tests and harnesses can pin the fast path
// instead of racing the lazy background rebuild. No-op when views are
// disabled.
func (d *DB) BuildViews() error {
	if d.shards != nil {
		return d.eachShard(func(sh *DB) error { return sh.BuildViews() })
	}
	if d.opts.DisableSortedViews || d.closed.Load() {
		return nil
	}
	v := d.vs.Current()
	for lvl := 1; lvl < manifest.NumLevels; lvl++ {
		d.viewFor(lvl, v.Levels[lvl])
	}
	for {
		building := false
		d.views.mu.Lock()
		for _, lv := range d.views.levels {
			building = building || lv.building
		}
		d.views.mu.Unlock()
		if !building {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
}

// Sorted views carry their own readahead policy: the sidecar spells out the
// exact block sequence a forward scan will touch, so span reads never
// mispredict and are safe to enable by default. IteratorReadaheadBlocks > 1
// overrides the span width (it tunes the adjacency heuristic the plain path
// uses, and the view path follows it for comparability); when unset, view
// scans use defaultViewSpanBlocks. viewPipelineDepth spans are kept in
// flight ahead of the cursor — the schedule is known, so the pipeline can
// run deep without risk, and cold full-scan throughput scales with depth.
const (
	defaultViewSpanBlocks = 16
	viewPipelineDepth     = 3
)

// viewPrefetch is one in-flight pipelined span GET over the view's block
// schedule: the goroutine reads entries [start,end) and bulk-admits them
// into the block and persistent caches, so the iterator consumes them
// through the ordinary cache ladder when it catches up.
type viewPrefetch struct {
	start, end int
	done       chan struct{}
	err        error
}

// viewIter walks one level through its sorted view: a seek is one binary
// search over the cursor run plus one in-block seek, and every advance is
// a pure sequential step — no per-key heap or compare work, no index-block
// consultation. Because the view spells out the exact upcoming block
// sequence across member tables, cloud readahead is exact: misses read
// multi-block spans along the schedule and pipeline the next span while
// the current one is consumed.
type viewIter struct {
	db        *DB
	v         *sstable.View
	files     []*manifest.FileMetadata // files[i].Num == v.Members[i]
	handles   []*tableHandle           // lazily opened, held until Close
	fetch     []sstable.FetchFunc      // per-member single-block fallback path
	pos       int                      // current entry ordinal
	data      *block.Iter
	forward   bool
	pres      []*viewPrefetch // in-flight pipelined spans, ordered by start
	spansDone int             // spans this scan has consumed (pipeline ramp)
	prof      *readprof.Profile
	err       error
}

func newViewIter(d *DB, v *sstable.View, files []*manifest.FileMetadata) *viewIter {
	return &viewIter{
		db:      d,
		v:       v,
		files:   files,
		handles: make([]*tableHandle, len(files)),
		fetch:   make([]sstable.FetchFunc, len(files)),
		pos:     -1,
	}
}

// handle returns member m's table handle, opening it on first use.
func (vi *viewIter) handle(m int32) (*tableHandle, error) {
	if h := vi.handles[m]; h != nil {
		return h, nil
	}
	h, err := vi.db.tables.get(vi.db, vi.files[m])
	if err != nil {
		return nil, err
	}
	vi.handles[m] = h
	vi.fetch[m] = vi.db.tables.fetchFor(h)
	return h, nil
}

// spanEnd returns the first ordinal past start that breaks the physical
// span: a different member, a file-layout gap, or the n-block cap.
func (vi *viewIter) spanEnd(start, n int) int {
	es := vi.v.Entries
	end := start + 1
	for end < len(es) && end-start < n &&
		es[end].Member == es[end-1].Member &&
		es[end].H.Offset == es[end-1].H.End() {
		end++
	}
	return end
}

// readSpan performs one range GET over entries [start,end) of a single
// member and bulk-admits every block into the block and persistent caches.
func (vi *viewIter) readSpan(h *tableHandle, start, end int) ([][]byte, error) {
	es := vi.v.Entries
	span := make([]sstable.Handle, end-start)
	for i := range span {
		span[i] = es[start+i].H
	}
	bodies, err := sstable.ReadRawSpan(h.reader.File(), span)
	if err != nil {
		return nil, err
	}
	fileNum := vi.files[es[start].Member].Num
	bulk := make([]pcache.Block, len(span))
	for i, bh := range span {
		bulk[i] = pcache.Block{Off: bh.Offset, Body: bodies[i]}
		vi.db.blockCache.Put(cache.Key{FileNum: fileNum, Offset: bh.Offset}, bodies[i])
	}
	vi.db.pcache.PutBulk(fileNum, bulk)
	vi.db.stats.ReadaheadSpans.Add(1)
	vi.db.stats.ReadaheadBlocks.Add(int64(len(span)))
	return bodies, nil
}

// spanBlocks is the span width for view-scheduled readahead: the
// IteratorReadaheadBlocks knob when set, else the view default. Sorted
// views always read ahead — the schedule is exact, so there is no
// mispredicted fetch for a conservative default to guard against.
func (vi *viewIter) spanBlocks() int {
	if n := vi.db.opts.IteratorReadaheadBlocks; n > 1 {
		return n
	}
	return defaultViewSpanBlocks
}

// topUpPipeline keeps span GETs in flight along the schedule, chaining
// each new span from the end of the last queued one (or from `from` when
// the pipeline is empty). The depth ramps with the spans the scan has
// already consumed — slow start — so a short scan over-fetches at most
// about one span while a full scan reaches viewPipelineDepth within a few
// spans. Only cloud-resident spans are launched; the pipeline stops at the
// first local member.
func (vi *viewIter) topUpPipeline(from, n int) {
	depth := vi.spansDone
	if depth > viewPipelineDepth {
		depth = viewPipelineDepth
	}
	next := from
	if len(vi.pres) > 0 {
		next = vi.pres[len(vi.pres)-1].end
	}
	for len(vi.pres) < depth && next < len(vi.v.Entries) {
		h, err := vi.handle(vi.v.Entries[next].Member)
		if err != nil || h.tier != storage.TierCloud {
			return
		}
		end := vi.spanEnd(next, n)
		pre := &viewPrefetch{start: next, end: end, done: make(chan struct{})}
		vi.pres = append(vi.pres, pre)
		go func(h *tableHandle, pre *viewPrefetch) {
			defer close(pre.done)
			_, pre.err = vi.readSpan(h, pre.start, pre.end)
		}(h, pre)
		next = end
	}
}

// drainPipeline waits out every in-flight span and forgets them; their
// cache admissions still land. Used when the scan direction flips and on
// Close — the span GETs borrow member handles, so they must finish before
// the handles are released.
func (vi *viewIter) drainPipeline() {
	for _, pre := range vi.pres {
		<-pre.done
	}
	vi.pres = vi.pres[:0]
}

// fetchEntry returns the verified body of the block at ordinal pos. The
// ladder mirrors the table cache's fetch path — block cache, persistent
// cache, then the backend — but a cloud miss during a forward scan reads
// the exact span the view schedules next (no adjacency heuristic) and keeps
// viewPipelineDepth further spans in flight. Pipelined spans bulk-admit
// into the caches, so the iterator consumes them as cache hits: only the
// block that actually stalls on an in-flight GET (or triggers a synchronous
// one) is attributed to the cloud tier, exactly like the plain path's
// adjacency readahead.
func (vi *viewIter) fetchEntry(pos int) ([]byte, error) {
	e := &vi.v.Entries[pos]
	h, err := vi.handle(e.Member)
	if err != nil {
		return nil, err
	}
	fileNum := vi.files[e.Member].Num
	n := vi.spanBlocks()
	if !vi.forward {
		vi.drainPipeline()
	}

	// Retire pipelined spans the scan has moved past, and wait out the one
	// covering this block: its GET bulk-admitted every block, so after the
	// wait the cache ladder below serves the whole span locally. The wait
	// is the real cloud fetch cost and is attributed as such — with the
	// pipeline warm it is near zero.
	timed := vi.prof != nil && vi.prof.Timed
	var waitNs int64
	waited := false
	for len(vi.pres) > 0 && vi.pres[0].start <= pos {
		pre := vi.pres[0]
		var start time.Time
		if timed {
			start = time.Now()
		}
		<-pre.done
		vi.pres = vi.pres[1:]
		if pos < pre.end {
			if timed {
				waitNs = time.Since(start).Nanoseconds()
			}
			waited = pre.err == nil
			vi.spansDone++
			vi.topUpPipeline(pre.end, n)
			break
		}
	}

	ck := cache.Key{FileNum: fileNum, Offset: e.H.Offset}
	if body, ok := vi.db.blockCache.Get(ck); ok {
		if vi.prof != nil {
			if waited {
				vi.prof.Block(readprof.TierCloud, len(body), waitNs)
			} else {
				vi.prof.Block(readprof.TierBlockCache, len(body), 0)
			}
		}
		return body, nil
	}
	if h.tier == storage.TierCloud && vi.forward && n > 1 {
		var start time.Time
		if timed {
			start = time.Now()
		}
		if body, ok := vi.db.pcache.Get(fileNum, e.H.Offset); ok {
			vi.db.blockCache.Put(ck, body)
			if vi.prof != nil {
				var ns int64
				if timed {
					ns = time.Since(start).Nanoseconds()
				}
				vi.prof.Block(readprof.TierPCache, len(body), ns)
			}
			return body, nil
		}
		// Exact-schedule span read: the view says precisely which blocks a
		// forward scan touches next, so read them in one GET and start the
		// pipeline behind it.
		if end := vi.spanEnd(pos, n); end-pos > 1 {
			if bodies, err := vi.readSpan(h, pos, end); err == nil {
				vi.spansDone++
				vi.topUpPipeline(end, n)
				if vi.prof != nil {
					var ns int64
					if timed {
						ns = time.Since(start).Nanoseconds()
					}
					vi.prof.Block(readprof.TierCloud, len(bodies[0]), ns)
				}
				return bodies[0], nil
			}
		}
	}
	// Single-block fallback: the standard fetch path (persistent cache,
	// CRC repair for local damage, cache admission, attribution).
	return vi.fetch[e.Member](fileNum, e.H, vi.prof)
}

// load positions the iterator on the block at ordinal pos.
func (vi *viewIter) load(pos int) bool {
	if vi.err != nil {
		return false
	}
	if pos < 0 || pos >= len(vi.v.Entries) {
		vi.pos = pos
		vi.data = nil
		return false
	}
	body, err := vi.fetchEntry(pos)
	if err != nil {
		vi.err = err
		vi.data = nil
		return false
	}
	br, err := block.NewReader(body)
	if err != nil {
		vi.err = err
		vi.data = nil
		return false
	}
	vi.pos = pos
	vi.data = br.NewIter()
	return true
}

func (vi *viewIter) skipForward() {
	for vi.data != nil && !vi.data.Valid() {
		if err := vi.data.Err(); err != nil {
			vi.err = err
			vi.data = nil
			return
		}
		if !vi.load(vi.pos + 1) {
			return
		}
		vi.data.First()
	}
}

func (vi *viewIter) skipBackward() {
	for vi.data != nil && !vi.data.Valid() {
		if err := vi.data.Err(); err != nil {
			vi.err = err
			vi.data = nil
			return
		}
		if !vi.load(vi.pos - 1) {
			return
		}
		vi.data.Last()
	}
}

func (vi *viewIter) First() {
	vi.forward = true
	if vi.load(0) {
		vi.data.First()
		vi.skipForward()
	}
}

func (vi *viewIter) Last() {
	vi.forward = false
	if vi.load(len(vi.v.Entries) - 1) {
		vi.data.Last()
		vi.skipBackward()
	}
}

func (vi *viewIter) SeekGE(ikey []byte) {
	vi.forward = true
	if vi.load(vi.v.Seek(ikey)) {
		vi.data.SeekGE(ikey)
		vi.skipForward()
	}
}

func (vi *viewIter) SeekLT(ikey []byte) {
	vi.forward = false
	pos := vi.v.Seek(ikey)
	if pos == len(vi.v.Entries) {
		// ikey is beyond every separator: the level's last entry (if any)
		// is < ikey.
		vi.Last()
		if vi.Valid() && keys.Compare(vi.Key(), ikey) >= 0 {
			vi.Prev()
		}
		return
	}
	if vi.load(pos) {
		vi.data.SeekLT(ikey)
		vi.skipBackward()
	}
}

func (vi *viewIter) Next() {
	if vi.data == nil {
		return
	}
	vi.forward = true
	vi.data.Next()
	vi.skipForward()
}

func (vi *viewIter) Prev() {
	if vi.data == nil {
		return
	}
	vi.forward = false
	vi.data.Prev()
	vi.skipBackward()
}

func (vi *viewIter) Valid() bool   { return vi.data != nil && vi.data.Valid() }
func (vi *viewIter) Key() []byte   { return vi.data.Key() }
func (vi *viewIter) Value() []byte { return vi.data.Value() }
func (vi *viewIter) Err() error    { return vi.err }

func (vi *viewIter) Close() error {
	// In-flight span GETs borrow member handles; let them land before
	// releasing.
	vi.drainPipeline()
	for i, h := range vi.handles {
		if h != nil {
			h.release()
			vi.handles[i] = nil
		}
	}
	vi.data = nil
	return vi.err
}
