package db

import (
	"fmt"
	"testing"
)

// TestTableCacheBoundsOpenFiles fills the tree with many small tables and
// verifies the open-table count stays at or below the configured cap while
// reads keep working.
func TestTableCacheBoundsOpenFiles(t *testing.T) {
	opts := testOptions(PolicyLocalOnly)
	opts.MaxOpenTables = 8
	// Disable compaction consolidation so many tables accumulate.
	opts.L0CompactTrigger = 100
	opts.L0StallFiles = 400
	d, err := OpenAt(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for round := 0; round < 30; round++ {
		for i := 0; i < 50; i++ {
			mustPut(t, d, fmt.Sprintf("r%02d-k%03d", round, i), "v")
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if d.vs.Current().NumFiles() < 20 {
		t.Fatalf("fixture built only %d tables", d.vs.Current().NumFiles())
	}
	// Touch every table via reads.
	for round := 0; round < 30; round++ {
		mustGet(t, d, fmt.Sprintf("r%02d-k%03d", round, round), "v")
	}
	d.tables.mu.Lock()
	open := len(d.tables.tables)
	d.tables.mu.Unlock()
	// The cap is 8 (with the min clamp); transiently referenced tables may
	// push slightly over, but after the reads completed everything is idle.
	if open > opts.MaxOpenTables {
		t.Fatalf("open tables = %d, cap %d", open, opts.MaxOpenTables)
	}
	// Reads still work for evicted tables (they reopen transparently).
	for round := 0; round < 30; round++ {
		mustGet(t, d, fmt.Sprintf("r%02d-k%03d", round, 7), "v")
	}
}

// TestTableCacheSkipsReferencedHandles ensures an iterator's pinned tables
// survive cap enforcement.
func TestTableCacheSkipsReferencedHandles(t *testing.T) {
	opts := testOptions(PolicyLocalOnly)
	opts.MaxOpenTables = 8
	opts.L0CompactTrigger = 100
	opts.L0StallFiles = 400
	d, err := OpenAt(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for round := 0; round < 20; round++ {
		for i := 0; i < 30; i++ {
			mustPut(t, d, fmt.Sprintf("r%02d-k%03d", round, i), fmt.Sprint(round))
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	it.First()
	// Churn the cache with reads while the iterator holds references.
	for round := 0; round < 20; round++ {
		mustGet(t, d, fmt.Sprintf("r%02d-k%03d", round, 3), fmt.Sprint(round))
	}
	// The iterator must still scan correctly to the end.
	n := 0
	for ; it.Valid(); it.Next() {
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 20*30 {
		t.Fatalf("scan saw %d keys, want %d", n, 20*30)
	}
}
