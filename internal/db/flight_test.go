package db

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rocksmash/internal/flight"
	"rocksmash/internal/storage"
)

// TestFlightOffPath verifies the FlightRecorder-off contract: no flight
// state exists, the health surface still works off the plain metrics, and
// the Put path allocates exactly what a store without the feature does.
func TestFlightOffPath(t *testing.T) {
	d, _ := openTest(t, PolicyLocalOnly)
	defer d.Close()

	if d.flight != nil {
		t.Fatal("flight state allocated with FlightRecorder off")
	}
	if incs := d.Incidents(); incs != nil {
		t.Fatalf("Incidents() = %v with recorder off, want nil", incs)
	}
	if bundles, err := d.FlightBundles(); err != nil || bundles != nil {
		t.Fatalf("FlightBundles() = %v, %v with recorder off, want nil, nil", bundles, err)
	}
	h := d.Health()
	if h.Status != HealthHealthy {
		t.Fatalf("fresh store Health = %+v, want healthy", h)
	}
	m := d.Metrics()
	if m.IncidentsTriggered != 0 || m.BundlesWritten != 0 || len(m.ActiveIncidents) != 0 {
		t.Fatalf("flight metrics nonzero with recorder off: %+v", m)
	}
	if !strings.Contains(d.DumpStats(), "DB Stats") || strings.Contains(d.DumpStats(), "Flight Recorder") {
		t.Fatal("DumpStats printed a Flight Recorder section with the recorder off")
	}
}

// TestFlightOffPathAllocParity pins the off path to the no-feature
// baseline: a store opened with FlightRecorder false must allocate exactly
// as many objects per Put as one that never heard of the flight recorder.
func TestFlightOffPathAllocParity(t *testing.T) {
	open := func(mutate func(*Options)) *DB {
		o := testOptions(PolicyLocalOnly)
		o.MemtableBytes = 256 << 20 // never flush: isolate the commit path
		if mutate != nil {
			mutate(&o)
		}
		d, err := OpenAt(t.TempDir(), o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		return d
	}
	val := make([]byte, 100)
	measure := func(d *DB) float64 {
		i := 0
		return testing.AllocsPerRun(200, func() {
			if err := d.Put([]byte(fmt.Sprintf("alloc-%06d", i)), val); err != nil {
				t.Fatal(err)
			}
			i++
		})
	}
	baseline := measure(open(nil))
	offPath := measure(open(func(o *Options) { o.FlightRecorder = false }))
	if offPath != baseline {
		t.Fatalf("FlightRecorder-off Put allocates %.1f objects/op, baseline %.1f", offPath, baseline)
	}
}

// TestFlightCloudOutageIncident drives a real outage through a recorder-on
// store: the detector must fire cloud-outage exactly once for the episode,
// dump a bundle whose ring demonstrably holds pre-trigger events, and flip
// Health to degraded.
func TestFlightCloudOutageIncident(t *testing.T) {
	dir := t.TempDir()
	o := testOptions(PolicyCloudOnly)
	o.FlightRecorder = true
	o.VitalsInterval = 5 * time.Millisecond
	o.FlightDir = filepath.Join(dir, "flight")
	local, err := storage.NewLocal(filepath.Join(dir, "local"))
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
	if err != nil {
		t.Fatal(err)
	}
	faulty := storage.NewFaulty(cloud, storage.FaultConfig{})
	o.pcacheDir = filepath.Join(dir, "pcache")
	d, err := Open(o, local, faulty)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Pre-outage traffic gives the ring a healthy window to capture.
	for i := 0; i < 50; i++ {
		mustPut(t, d, fmt.Sprintf("pre-%04d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	faulty.StartOutage(0)
	for i := 0; i < 50; i++ {
		mustPut(t, d, fmt.Sprintf("out-%04d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush during outage must degrade, not fail: %v", err)
	}

	// The detector fires on the next vitals tick after the breaker opens.
	var inc flight.Incident
	deadline := time.Now().Add(5 * time.Second)
	for {
		found := false
		for _, i := range d.Incidents() {
			if i.Rule == flight.RuleCloudOutage {
				inc, found = i, true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no cloud-outage incident within deadline; incidents: %+v", d.Incidents())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The whole flapping episode (open <-> half-open probes under the 5ms
	// cooldown) must stay one incident.
	time.Sleep(100 * time.Millisecond)
	count := 0
	for _, i := range d.Incidents() {
		if i.Rule == flight.RuleCloudOutage {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("outage episode fired %d cloud-outage incidents, want exactly 1", count)
	}

	h := d.Health()
	if h.Status == HealthHealthy {
		t.Fatalf("Health still healthy mid-outage: %+v", h)
	}
	m := d.Metrics()
	if m.IncidentsTriggered < 1 {
		t.Fatalf("Metrics.IncidentsTriggered = %d, want >= 1", m.IncidentsTriggered)
	}
	if !strings.Contains(d.DumpStats(), "Flight Recorder") {
		t.Fatal("DumpStats missing the Flight Recorder section")
	}

	if inc.Bundle == "" {
		t.Fatalf("incident carried no bundle path: %+v", inc)
	}
	bundles, err := d.FlightBundles()
	if err != nil || len(bundles) != 1 {
		t.Fatalf("FlightBundles = %v, %v, want exactly one", bundles, err)
	}
	man := bundles[0].Manifest
	if man.Incident.Rule != flight.RuleCloudOutage {
		t.Fatalf("bundle manifest rule = %q", man.Incident.Rule)
	}
	// The captured ring must demonstrably precede the trigger.
	if man.EventCount == 0 || man.EventsFrom >= man.Incident.UnixNano {
		t.Fatalf("bundle does not capture the pre-trigger window: %+v", man)
	}
	if diag, err := flight.Analyze(bundles[0].Dir); err != nil || len(diag.Findings) == 0 {
		t.Fatalf("doctor failed on a live bundle: %v (%+v)", err, diag)
	}

	faulty.EndOutage()
}

// TestFlightShardedFacade verifies the sharded wiring: one recorder on the
// facade, none on the shards, and the facade metrics carry the counters.
func TestFlightShardedFacade(t *testing.T) {
	o := testOptions(PolicyLocalOnly)
	o.Shards = 4
	o.FlightRecorder = true
	o.VitalsInterval = 10 * time.Millisecond
	d, err := OpenAt(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if d.flight == nil {
		t.Fatal("facade has no flight state")
	}
	for i, sh := range d.shards {
		if sh.flight != nil {
			t.Fatalf("shard %d grew its own flight state", i)
		}
	}
	for i := 0; i < 100; i++ {
		mustPut(t, d, fmt.Sprintf("sh-%04d", i), pipelineValue(i))
	}
	// Shard events reach the facade ring through the merged listener.
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec := d.flight.rec.Ring().Recorded(); rec == 0 {
		t.Fatal("facade ring captured no shard events")
	}
	if h := d.Health(); h.Status != HealthHealthy {
		t.Fatalf("sharded store unexpectedly unhealthy: %+v", h)
	}
}
