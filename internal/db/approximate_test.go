package db

import (
	"fmt"
	"testing"
)

func TestApproximateSizeWholeRange(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	fillKeys(t, d, 3000, 200)
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	est := d.ApproximateSize(nil, nil)
	if est.Total() == 0 {
		t.Fatal("estimate is zero for a populated store")
	}
	// Unbounded range must equal the full file footprint.
	if est.LocalBytes != m.LocalBytes || est.CloudBytes != m.CloudBytes {
		t.Fatalf("unbounded estimate %+v != metrics local=%d cloud=%d",
			est, m.LocalBytes, m.CloudBytes)
	}
}

func TestApproximateSizeSubRange(t *testing.T) {
	d, _ := openTest(t, PolicyLocalOnly)
	defer d.Close()
	// Uniform keys so proration is meaningful.
	for i := 0; i < 4000; i++ {
		mustPut(t, d, fmt.Sprintf("key%06d", i), fmt.Sprintf("v%0100d", i))
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	whole := d.ApproximateSize(nil, nil).Total()
	half := d.ApproximateSize([]byte("key000000"), []byte("key002000")).Total()
	frac := float64(half) / float64(whole)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("half-range estimate fraction = %.2f, want ~0.5", frac)
	}
	empty := d.ApproximateSize([]byte("zzz"), nil).Total()
	if empty != 0 {
		t.Fatalf("out-of-range estimate = %d", empty)
	}
}

func TestApproximateSizeEmptyStore(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	if est := d.ApproximateSize(nil, nil); est.Total() != 0 {
		t.Fatalf("empty store estimate = %+v", est)
	}
	if d.smallestUserKey() != nil {
		t.Fatal("empty store has no smallest key")
	}
}
