package db

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestWALCloudBackupSurvivesLocalSegmentLoss enables WAL cloud backup,
// crashes, deletes a sealed local WAL segment, and verifies the data still
// recovers from the cloud copy — the paper's reliability story for
// unflushed writes.
func TestWALCloudBackupSurvivesLocalSegmentLoss(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(PolicyMash)
	opts.WALCloudBackup = true
	opts.WALSegmentBytes = 8 << 10
	opts.MemtableBytes = 1 << 30 // keep everything in the WAL

	d, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	for i := 0; i < n; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), fmt.Sprintf("v%d-%0100d", i, i))
	}
	d.CrashForTest()

	// Delete every *sealed* local segment (keep only the newest, which
	// was active at crash and never reached the cloud).
	walDir := filepath.Join(dir, "local", "wal")
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	for _, s := range segs[:len(segs)-1] {
		if err := os.Remove(filepath.Join(walDir, s)); err != nil {
			t.Fatal(err)
		}
	}

	d2, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i := 0; i < n; i++ {
		mustGet(t, d2, fmt.Sprintf("k%05d", i), fmt.Sprintf("v%d-%0100d", i, i))
	}
}

// TestWALBackupDisabledLosesSegments is the control: without backup,
// deleting local segments loses their data (recovery still succeeds for
// the rest — the engine must not fail the open).
func TestWALBackupDisabledLosesSegments(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(PolicyMash)
	opts.WALCloudBackup = false
	opts.WALSegmentBytes = 8 << 10
	opts.MemtableBytes = 1 << 30

	d, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	for i := 0; i < n; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), "v")
	}
	d.CrashForTest()

	walDir := filepath.Join(dir, "local", "wal")
	entries, _ := os.ReadDir(walDir)
	removed := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" && removed == 0 {
			os.Remove(filepath.Join(walDir, e.Name()))
			removed++
		}
	}
	d2, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	missing := 0
	for i := 0; i < n; i++ {
		if _, err := d2.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("control: expected data loss without backup")
	}
}
