package db

import (
	"sync"
	"sync/atomic"
)

// seqSource is the sequence-number authority: it allocates contiguous
// sequence ranges to commits and tracks two visibility frontiers over the
// shared allocation order. A standalone DB owns one; keyspace shards share
// their parent's, which is what keeps snapshots and iterators consistent
// across shards — a snapshot at sequence S observes exactly the writes
// with sequence ≤ S, no matter which shard's memtable they landed in.
//
// The two frontiers exist so shards do not serialize on each other's WAL
// writes:
//
//   - Each shard acknowledges its writers at the shard-local frontier:
//     an entry's visible signal fires once every earlier entry of the
//     same shard has been applied. A point Get on shard s depends only
//     on writes to shard s, so acking there preserves read-your-writes
//     without making a commit wait out another shard's in-flight group.
//
//   - The global watermark (visible) advances only when every entry
//     allocated before it — on any shard — has been applied. Snapshots
//     and merged iterators read at this watermark; waitVisible lets them
//     first catch it up to the acked frontier, so a snapshot taken after
//     a Put returned always includes that Put. The lag is bounded by
//     in-flight commit time (the window between a group's sequence
//     allocation and its memtable apply), not by anyone blocking on it.
type seqSource struct {
	// mu guards nextSeq and both pending rings together: allocation and
	// ring append must be atomic with respect to each other across
	// concurrent shard leaders, or the rings would not be in sequence
	// order. Per-shard rings live on each DB (shardRing/shardHead) but are
	// guarded by this same lock.
	mu      sync.Mutex
	nextSeq uint64
	// pending is the global ring in allocation order. It holds plain
	// (seq, done) slots rather than entry pointers: an entry is released
	// to its pool as soon as its owner is acked at the shard frontier,
	// which can happen while the global ring is still waiting on an
	// earlier shard's group.
	pending []gslot
	head    int
	// base is the absolute allocation index of pending[0]; entries record
	// their own absolute index (gidx) so markApplied can find their slot
	// after the ring compacts.
	base uint64

	// visible is the published global watermark: the newest sequence all
	// of whose predecessors are applied. Readers load it lock-free.
	visible atomic.Uint64

	// waiters counts goroutines blocked in waitVisible; markApplied only
	// takes the wake lock when someone is actually waiting.
	waiters atomic.Int64
	wakeMu  sync.Mutex
	wake    *sync.Cond
}

type gslot struct {
	seq  uint64
	done bool
}

// ringCompactAt bounds how far a ring's acked prefix may grow before the
// live tail is shifted down in place.
const ringCompactAt = 1024

func newSeqSource() *seqSource {
	ss := &seqSource{nextSeq: 1}
	ss.wake = sync.NewCond(&ss.wakeMu)
	return ss
}

// raise lifts the allocator and the watermark to cover sequences ≤ last.
// Called after each shard's recovery: replayed writes are already applied,
// so they are visible by definition.
func (ss *seqSource) raise(last uint64) {
	ss.mu.Lock()
	if last+1 > ss.nextSeq {
		ss.nextSeq = last + 1
	}
	ss.mu.Unlock()
	raiseMax(&ss.visible, last)
}

// enqueueLocked records a freshly allocated entry in both rings. Caller
// holds ss.mu and has already assigned e's sequences and owner d.
func (ss *seqSource) enqueueLocked(d *DB, e *commitEntry) {
	e.gidx = ss.base + uint64(len(ss.pending))
	ss.pending = append(ss.pending, gslot{seq: e.maxSeq})
	d.shardRing = append(d.shardRing, e)
}

// markApplied records that e's owner finished its memtable apply, acks
// every leading applied entry of e's shard in allocation order, and
// advances the global watermark past every leading applied slot.
func (ss *seqSource) markApplied(e *commitEntry) {
	var (
		one  *commitEntry
		many []*commitEntry
		vis  uint64
	)
	d := e.d
	ss.mu.Lock()
	e.applied = true
	ss.pending[e.gidx-ss.base].done = true

	// Shard-local frontier: ack this shard's contiguous applied prefix.
	for d.shardHead < len(d.shardRing) {
		front := d.shardRing[d.shardHead]
		if !front.applied {
			break
		}
		d.shardRing[d.shardHead] = nil
		d.shardHead++
		if one == nil {
			one = front
		} else {
			many = append(many, front)
		}
	}
	if d.shardHead == len(d.shardRing) {
		d.shardRing = d.shardRing[:0]
		d.shardHead = 0
	} else if d.shardHead >= ringCompactAt && d.shardHead*2 >= len(d.shardRing) {
		// Under sustained load the ring may never fully drain; shift the
		// live tail down so the acked prefix doesn't accumulate forever.
		n := copy(d.shardRing, d.shardRing[d.shardHead:])
		for i := n; i < len(d.shardRing); i++ {
			d.shardRing[i] = nil
		}
		d.shardRing = d.shardRing[:n]
		d.shardHead = 0
	}

	// Global frontier: pop applied slots regardless of owning shard. Slots
	// are values, so popping an entry another shard's owner has already
	// recycled is safe.
	for ss.head < len(ss.pending) {
		front := ss.pending[ss.head]
		if !front.done {
			break
		}
		ss.head++
		vis = front.seq
	}
	if ss.head == len(ss.pending) {
		ss.base += uint64(len(ss.pending))
		ss.pending = ss.pending[:0]
		ss.head = 0
	} else if ss.head >= ringCompactAt && ss.head*2 >= len(ss.pending) {
		n := copy(ss.pending, ss.pending[ss.head:])
		ss.pending = ss.pending[:n]
		ss.base += uint64(ss.head)
		ss.head = 0
	}
	ss.mu.Unlock()

	// Publish outside ss.mu: SetLastSeq contends with the manifest lock,
	// which flushes hold across an fsync — publishing under ss.mu would
	// stall every shard's commits behind one shard's manifest write. All
	// stores are raise-only, so out-of-order publication between
	// concurrent markApplied calls cannot regress a frontier, and each
	// entry's visible signal still follows its own stores.
	if one != nil {
		publishAcked(one)
		for _, front := range many {
			publishAcked(front)
		}
	}
	if vis > 0 {
		raiseMax(&ss.visible, vis)
		if ss.waiters.Load() > 0 {
			ss.wakeMu.Lock()
			ss.wake.Broadcast()
			ss.wakeMu.Unlock()
		}
	}
}

// publishAcked publishes front at its shard's acked frontier and releases
// its writer. After the signal the owner may recycle the entry.
func publishAcked(front *commitEntry) {
	raiseMax(&front.d.lastSeq, front.maxSeq)
	front.d.vs.SetLastSeq(front.maxSeq)
	front.visible <- struct{}{}
}

// waitVisible blocks until the global watermark reaches target. Snapshot
// and iterator creation use it to fold every already-acked write into the
// watermark before pinning it.
func (ss *seqSource) waitVisible(target uint64) {
	if ss.visible.Load() >= target {
		return
	}
	ss.waiters.Add(1)
	ss.wakeMu.Lock()
	for ss.visible.Load() < target {
		ss.wake.Wait()
	}
	ss.wakeMu.Unlock()
	ss.waiters.Add(-1)
}

// raiseMax lifts a to at least v (CAS loop; raise-only).
func raiseMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
