package db

import (
	"fmt"
	"testing"
)

// TestWALSyncMode exercises the synchronous-commit configuration.
func TestWALSyncMode(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(PolicyMash)
	opts.WALSync = true
	d, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		mustPut(t, d, fmt.Sprintf("k%04d", i), "durable")
	}
	d.CrashForTest()
	d2, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i := 0; i < 200; i++ {
		mustGet(t, d2, fmt.Sprintf("k%04d", i), "durable")
	}
}

// TestLevelsMigrateToCloudAsTreeGrows tracks that under PolicyMash data
// demotes from local levels to cloud levels as compaction pushes it down.
func TestLevelsMigrateToCloudAsTreeGrows(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	var sawCloudGrowth bool
	prevCloud := int64(0)
	for round := 0; round < 6; round++ {
		for i := 0; i < 1000; i++ {
			mustPut(t, d, fmt.Sprintf("key%06d", round*1000+i), fmt.Sprintf("v%0100d", i))
		}
		if err := d.CompactAll(); err != nil {
			t.Fatal(err)
		}
		m := d.Metrics()
		if m.CloudBytes > prevCloud {
			sawCloudGrowth = true
		}
		prevCloud = m.CloudBytes
	}
	if !sawCloudGrowth {
		t.Fatal("cold data never migrated to the cloud tier")
	}
	// The local tier must stay bounded near its level budget while cloud
	// holds the rest.
	m := d.Metrics()
	if m.LocalBytes == 0 || m.CloudBytes == 0 {
		t.Fatalf("placement degenerate: local=%d cloud=%d", m.LocalBytes, m.CloudBytes)
	}
}
