package db

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rocksmash/internal/manifest"
	"rocksmash/internal/storage"
)

// uploader ships finished compaction output tables to their tier while the
// merge keeps running. With parallelism <= 1 uploads happen inline on the
// caller (the historical serial behavior); above that, up to parallelism
// uploads proceed concurrently, each with uploadTable's retry semantics.
// wait must be called (and return nil) before the outputs are installed in
// the manifest, so installation stays atomic.
type uploader struct {
	d    *DB
	warm bool
	sem  chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	err      error
	uploaded []*builtTable

	// ns sums per-table upload wall time (including pcache warming). With
	// parallel uploads this can exceed the compaction's elapsed time; the
	// sum still measures how much work the upload stage absorbed.
	ns atomic.Int64
}

// dur returns the summed upload wall time recorded so far.
func (u *uploader) dur() time.Duration { return time.Duration(u.ns.Load()) }

func (d *DB) newUploader(parallelism int, warm bool) *uploader {
	if parallelism < 1 {
		parallelism = 1
	}
	return &uploader{d: d, warm: warm, sem: make(chan struct{}, parallelism)}
}

// add hands a finished table to the pool. It blocks only when parallelism
// uploads are already in flight (backpressure so the merge cannot build
// output tables faster than they drain).
func (u *uploader) add(t *builtTable) {
	if cap(u.sem) <= 1 {
		u.record(t, u.uploadOne(t))
		return
	}
	u.sem <- struct{}{}
	u.wg.Add(1)
	go func() {
		defer u.wg.Done()
		defer func() { <-u.sem }()
		u.record(t, u.uploadOne(t))
	}()
}

func (u *uploader) uploadOne(t *builtTable) error {
	start := time.Now()
	defer func() { u.ns.Add(time.Since(start).Nanoseconds()) }()
	if err := u.d.uploadTable(t); err != nil {
		return fmt.Errorf("db: compaction upload: %w", err)
	}
	// A degraded landing leaves the table on local storage; skip warming —
	// the persistent cache only fronts cloud-tier reads.
	if u.warm && t.meta.Tier == storage.TierCloud {
		return u.d.warmPCache(t)
	}
	return nil
}

func (u *uploader) record(t *builtTable, err error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if err != nil {
		if u.err == nil {
			u.err = err
		}
		return
	}
	u.uploaded = append(u.uploaded, t)
}

// peekErr reports the first failure recorded so far without waiting, so the
// merge loop can stop producing outputs early.
func (u *uploader) peekErr() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.err
}

// wait blocks until every submitted upload finished and returns the first
// failure, if any.
func (u *uploader) wait() error {
	u.wg.Wait()
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.err
}

// abort waits out in-flight uploads and then deletes every output object
// (and local metadata sidecar) that already landed, so a failed compaction
// does not leak orphaned tables into the cloud backend. A delete that fails
// (cloud breaker open during an outage) goes on the deferred queue and the
// drainer retries it once the cloud recovers.
func (u *uploader) abort() {
	u.wg.Wait()
	u.mu.Lock()
	uploaded := u.uploaded
	u.uploaded = nil
	u.mu.Unlock()
	for _, t := range uploaded {
		name := manifest.TableName(t.meta.Num)
		if err := u.d.backendFor(t.meta.Tier).Delete(name); err != nil {
			u.d.deferDelete(t.meta.Tier, name)
		}
		if t.meta.Tier == storage.TierCloud {
			if err := u.d.local.Delete(metaSidecarName(t.meta.Num)); err != nil {
				u.d.deferDelete(storage.TierLocal, metaSidecarName(t.meta.Num))
			}
		}
	}
}
