package db

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rocksmash/internal/batch"
	"rocksmash/internal/event"
	"rocksmash/internal/memtable"
	"rocksmash/internal/wal"
)

// commitEntry is one writer's batch travelling through the commit pipeline.
// Entries are pooled: the signal channels are 1-buffered and signalled by
// send (never closed), so a drained entry can be reset and reused without
// reallocating channels — commits become allocation-free in steady state.
type commitEntry struct {
	b *batch.Batch
	// d is the DB (the keyspace shard, in a sharded store) this entry
	// commits into; the shared seqSource publishes the entry's sequence to
	// d's watermark and manifest when it becomes visible.
	d *DB
	// mem is the memtable the group leader captured for this entry; the
	// owning writer applies its batch there after the group's WAL write.
	mem    *memtable.MemTable
	maxSeq uint64
	err    error

	// gidx is this entry's absolute allocation index in the seqSource's
	// global ring, assigned at enqueue; markApplied uses it to find the
	// entry's slot after ring compaction.
	gidx uint64

	// wake is signalled by the group leader once sequences are assigned and
	// the WAL write is done — or, for the head of the follow-up queue, when
	// it is promoted to lead the next group (promoted tells the two apart).
	wake     chan struct{}
	promoted bool
	// applied flips (under the seqSource lock) once the owning writer
	// finished its memtable apply; markApplied pops entries off the pending
	// ring in commit order only while the head has applied, so readers
	// never observe a sequence gap.
	applied bool
	// visible is signalled when the entry's maxSeq has been published as
	// the DB's last visible sequence.
	visible chan struct{}
}

// entryPool recycles commitEntries across commits. An entry re-enters the
// pool only after its owner received the visible signal, at which point no
// other goroutine holds a live reference: publishVisible drops the pending
// slot before signalling, and the leader's group slice is abandoned before
// members are woken for the last time.
var entryPool = sync.Pool{
	New: func() any {
		return &commitEntry{
			wake:    make(chan struct{}, 1),
			visible: make(chan struct{}, 1),
		}
	},
}

// commitPipeline implements parallel group commit (the RocksDB write-group /
// Pebble commit-pipeline design). Concurrent writers enqueue their batches;
// the first writer to find the queue unled becomes the leader, claims every
// queued batch, assigns the group a contiguous sequence range under d.mu
// (atomically with memtable rotation), persists all payloads with a single
// vectored WAL append — one fsync for the whole group when WALSync is on —
// then hands leadership to the next queue head before applying its own
// batch, so the next group's WAL write overlaps this group's memtable
// inserts. Each member applies its own batch to the (concurrency-safe)
// memtable in parallel; a pending ring publishes lastSeq strictly in commit
// order, so a reader's snapshot never exposes sequence n+1 before n is in
// the memtable.
type commitPipeline struct {
	d *DB

	// qmu guards the writer queue and the leading flag. qfree is a spare
	// backing array recycled from claimed groups so steady-state enqueues
	// don't grow a fresh slice per group.
	qmu     sync.Mutex
	queue   []*commitEntry
	qfree   []*commitEntry
	leading bool

	// Sequence allocation and the pending visibility ring live in the
	// DB's seqSource (d.seqs): allocation runs ahead of visibility while
	// appliers work, a failed group leaves a harmless hole, and in a
	// sharded store every shard's pipeline feeds the same source so the
	// watermark stays globally ordered.

	// inflight counts writers currently inside commit. Group formation
	// reads it (advisorily) to decide whether yielding could possibly add
	// a member: a lone writer must not defer its own fsync.
	inflight atomic.Int64

	// walBuf is the reusable vectored-append scratch. Leaders are mutually
	// exclusive from queue claim through AppendBatch return (handoff only
	// happens after the append), so a single buffer suffices.
	walBuf []wal.Entry
}

func newCommitPipeline(d *DB) *commitPipeline {
	return &commitPipeline{d: d}
}

// commit runs one batch through the pipeline, returning once the batch is
// in the WAL, applied to the memtable, and visible to readers.
func (p *commitPipeline) commit(b *batch.Batch) error {
	e := entryPool.Get().(*commitEntry)
	e.b = b
	e.d = nil
	e.mem = nil
	e.maxSeq = 0
	e.err = nil
	e.promoted = false
	e.applied = false

	p.inflight.Add(1)
	p.qmu.Lock()
	p.queue = append(p.queue, e)
	lead := !p.leading
	if lead {
		p.leading = true
	}
	p.qmu.Unlock()

	if !lead {
		// Wait for a leader to either carry this batch in its group or
		// promote this writer to lead the next one.
		<-e.wake
		lead = e.promoted
	}
	if lead {
		p.leadGroup(e)
	}

	// Sequences are assigned and the group's WAL write is done (or failed).
	// Apply our own batch; members of a group run this concurrently against
	// the same memtable.
	if e.err == nil {
		e.err = e.b.Iterate(func(op batch.Op) error {
			e.mem.Add(op.Seq, op.Kind, op.Key, op.Value)
			return nil
		})
	}
	e.mem.WriterDone()
	p.d.seqs.markApplied(e)
	<-e.visible
	p.inflight.Add(-1)
	err := e.err
	e.b, e.d, e.mem = nil, nil, nil
	entryPool.Put(e)
	return err
}

// leadGroup claims the queued batches (self included), assigns sequences,
// writes the coalesced group to the WAL, and hands off leadership.
func (p *commitPipeline) leadGroup(self *commitEntry) {
	d := p.d

	p.qmu.Lock()
	group := p.queue
	p.queue = p.qfree
	p.qfree = nil
	p.qmu.Unlock()

	// Group formation: a synced append pays one fsync regardless of group
	// size, so before the claim becomes final give runnable writers a
	// bounded chance to reach the queue — each yield lets a writer that
	// just finished the previous group re-enqueue and ride this fsync
	// instead of paying its own. Yielding only helps while some in-flight
	// writer is not yet in the group: a lone writer skips straight to its
	// fsync. Not worth it for unsynced appends, where the append itself
	// is cheaper than the yield.
	if d.opts.WALSync {
		for round := 0; round < 4 && p.inflight.Load() > int64(len(group)); round++ {
			runtime.Gosched()
			p.qmu.Lock()
			grew := len(p.queue) > 0
			group = append(group, p.queue...)
			p.queue = p.queue[:0]
			p.qmu.Unlock()
			if !grew {
				break
			}
		}
	}

	// Assign a contiguous sequence range and capture the target memtable
	// atomically with respect to rotation: makeRoomForWrite swaps d.mem
	// under the same lock, and RegisterWriters here is what lets a later
	// flush wait out in-flight appliers after the seal. Allocation and the
	// pending-ring append happen together under the seqSource lock (nested
	// inside d.mu) so the ring stays in sequence order even when leaders
	// of different shards race for the shared source.
	ss := d.seqs
	d.mu.Lock()
	mem := d.mem
	ss.mu.Lock()
	seq := ss.nextSeq
	for _, e := range group {
		e.b.SetSeq(seq)
		seq += uint64(e.b.Count())
		e.d = d
		e.mem = mem
		e.maxSeq = e.b.MaxSeq()
		ss.enqueueLocked(d, e)
	}
	ss.nextSeq = seq
	ss.mu.Unlock()
	mem.RegisterWriters(len(group))
	d.mu.Unlock()

	// One vectored WAL append for the whole group: a single segment-writer
	// critical section and, when WALSync is on, a single fsync amortized
	// over len(group) commits. The scratch slice is pipeline-owned: leaders
	// are exclusive until after AppendBatch returns.
	entries := p.walBuf
	if cap(entries) < len(group) {
		entries = make([]wal.Entry, len(group))
	} else {
		entries = entries[:len(group)]
	}
	var ops, bytes int64
	for i, e := range group {
		minSeq, maxSeq := e.b.SeqRange()
		entries[i] = wal.Entry{Payload: e.b.Payload(), MinSeq: minSeq, MaxSeq: maxSeq}
		ops += int64(e.b.Count())
		bytes += int64(e.b.Size())
	}
	p.walBuf = entries
	start := time.Now()
	_, err := d.wal.AppendBatch(entries)
	dur := time.Since(start)
	if err != nil {
		// The group's writes never reached the WAL; fail every member and
		// leave the allocated sequences as a hole (harmless: recovery and
		// visibility both tolerate gaps in the allocation space).
		for _, e := range group {
			e.err = err
		}
	} else {
		d.stats.Writes.Add(ops)
		d.stats.BytesWritten.Add(bytes)
		d.stats.CommitGroups.Add(1)
		d.stats.CommitGroupBatches.Add(int64(len(group)))
		if d.opts.WALSync {
			d.stats.WALSyncsAmortized.Add(int64(len(group) - 1))
		}
		d.evCommitGroup(event.CommitGroup{
			Batches:  len(group),
			Ops:      ops,
			Bytes:    bytes,
			Synced:   d.opts.WALSync,
			Duration: dur,
		})
	}

	// Hand leadership to the head of whatever queued up meanwhile, before
	// applying our own batch: the next group's WAL write proceeds while
	// this group's members insert into the memtable.
	p.qmu.Lock()
	if len(p.queue) > 0 {
		next := p.queue[0]
		next.promoted = true
		next.wake <- struct{}{}
	} else {
		p.leading = false
	}
	p.qmu.Unlock()

	// Release the members; the leader applies its own batch on return. A
	// woken member may finish, pool its entry, and see it reused while this
	// loop continues — the stale group pointers are never dereferenced
	// again, and the backing array is recycled only after they are cleared.
	for _, e := range group {
		if e != self {
			e.wake <- struct{}{}
		}
	}
	for i := range group {
		group[i] = nil
	}
	p.qmu.Lock()
	if p.qfree == nil {
		p.qfree = group[:0]
	}
	p.qmu.Unlock()
}
