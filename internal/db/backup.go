package db

import (
	"fmt"
	"path/filepath"

	"rocksmash/internal/manifest"
	"rocksmash/internal/storage"
)

// Backup writes a self-contained, consistent copy of the store under dir:
// a manifest snapshot plus every live table — local tables and metadata
// sidecars into dir/local, cloud-resident tables into dir/cloud (so the
// backup does not reference objects the live store may later delete). The
// memtable is flushed first, so the backup needs no WAL. The result opens
// with OpenAt(dir, sameOptions).
//
// Compactions are held off for the duration, writes remain possible (they
// land after the backup's consistency point).
func (d *DB) Backup(dir string) error {
	if d.closed.Load() {
		return ErrClosed
	}
	dstLocal, err := storage.NewLocal(filepath.Join(dir, "local"))
	if err != nil {
		return err
	}
	dstCloud, err := storage.NewLocal(filepath.Join(dir, "cloud"))
	if err != nil {
		return err
	}
	if d.shards != nil {
		// Reproduce the sharded layout: the marker at the destination root,
		// each shard backed up into its prefix. Per-shard consistency
		// points may differ slightly (each shard freezes independently);
		// writes racing the backup land after some shard's point, the same
		// guarantee the live store gives racing readers.
		if err := storage.WriteObject(dstLocal, shardMarkerName,
			[]byte(fmt.Sprintf("%d\n", len(d.shards)))); err != nil {
			return err
		}
		return d.eachShard(func(sh *DB) error {
			return sh.backupInto(
				storage.NewPrefix(dstLocal, shardPrefix(sh.opts.shardID)),
				storage.NewPrefix(dstCloud, shardPrefix(sh.opts.shardID)))
		})
	}
	return d.backupInto(dstLocal, dstCloud)
}

// backupInto copies this engine's live tables and a manifest snapshot into
// the destination backends.
func (d *DB) backupInto(dstLocal, dstCloud storage.Backend) error {
	// Make the memtable durable in tables so the backup is WAL-free.
	if err := d.Flush(); err != nil {
		return err
	}
	// Freeze the file set: compactions delete inputs, so hold them off and
	// pin the current version.
	d.compactionMu.Lock()
	defer d.compactionMu.Unlock()
	v := d.vs.Current()

	copyObject := func(src storage.Backend, dst storage.Backend, name string) error {
		data, err := src.ReadAll(name)
		if err != nil {
			return fmt.Errorf("db: backup read %s: %w", name, err)
		}
		return storage.WriteObject(dst, name, data)
	}

	var firstErr error
	v.AllFiles(func(level int, f *manifest.FileMetadata) {
		if firstErr != nil {
			return
		}
		name := manifest.TableName(f.Num)
		if f.Tier == storage.TierCloud {
			if err := copyObject(d.cloud, dstCloud, name); err != nil {
				firstErr = err
				return
			}
			// The sidecar lets the restored store open the table without
			// touching its cloud copy.
			if err := copyObject(d.local, dstLocal, metaSidecarName(f.Num)); err != nil {
				firstErr = err
				return
			}
		} else {
			if err := copyObject(d.local, dstLocal, name); err != nil {
				firstErr = err
				return
			}
		}
	})
	if firstErr != nil {
		return firstErr
	}

	return manifest.WriteSnapshot(dstLocal, v,
		d.vs.PeekFileNum(), d.lastSeq.Load(), d.vs.FlushedSeq())
}
