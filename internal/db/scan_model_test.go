package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"rocksmash/internal/keys"
)

// TestScanViewMatchesPlainMerge drives two stores loaded with an identical
// randomized history — one scanning through sorted views, one with
// DisableSortedViews — through the same randomized trace of seeks, nexts,
// prevs and direction switches, asserting byte-identical position, key and
// value after every step. Runs unsharded and sharded.
func TestScanViewMatchesPlainMerge(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			oa := viewTestOptions()
			oa.Shards = shards
			ob := viewTestOptions()
			ob.Shards = shards
			ob.DisableSortedViews = true
			da, err := OpenAt(t.TempDir(), oa)
			if err != nil {
				t.Fatal(err)
			}
			defer da.Close()
			dbPlain, err := OpenAt(t.TempDir(), ob)
			if err != nil {
				t.Fatal(err)
			}
			defer dbPlain.Close()

			rng := rand.New(rand.NewSource(int64(shards)*31 + 7))
			pad := fmt.Sprintf("%0100d", 3)
			for i := 0; i < 4000; i++ {
				k := []byte(fmt.Sprintf("key%06d", rng.Intn(1500)))
				if rng.Intn(12) == 0 {
					if err := da.Delete(k); err != nil {
						t.Fatal(err)
					}
					if err := dbPlain.Delete(k); err != nil {
						t.Fatal(err)
					}
					continue
				}
				v := []byte(fmt.Sprintf("v%06d-%s", i, pad))
				if err := da.Put(k, v); err != nil {
					t.Fatal(err)
				}
				if err := dbPlain.Put(k, v); err != nil {
					t.Fatal(err)
				}
				if i%977 == 976 {
					if err := da.Flush(); err != nil {
						t.Fatal(err)
					}
					if err := dbPlain.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := da.CompactAll(); err != nil {
				t.Fatal(err)
			}
			if err := dbPlain.CompactAll(); err != nil {
				t.Fatal(err)
			}
			if err := da.BuildViews(); err != nil {
				t.Fatal(err)
			}

			ita, err := da.NewIterator()
			if err != nil {
				t.Fatal(err)
			}
			itb, err := dbPlain.NewIterator()
			if err != nil {
				t.Fatal(err)
			}

			compare := func(step int, op string) {
				t.Helper()
				if ita.Err() != nil || itb.Err() != nil {
					t.Fatalf("step %d %s: errs view=%v plain=%v", step, op, ita.Err(), itb.Err())
				}
				if ita.Valid() != itb.Valid() {
					t.Fatalf("step %d %s: valid view=%t plain=%t", step, op, ita.Valid(), itb.Valid())
				}
				if !ita.Valid() {
					return
				}
				if !bytes.Equal(ita.Key(), itb.Key()) {
					t.Fatalf("step %d %s: key view=%q plain=%q", step, op, ita.Key(), itb.Key())
				}
				if !bytes.Equal(ita.Value(), itb.Value()) {
					t.Fatalf("step %d %s: value mismatch at %q", step, op, ita.Key())
				}
			}

			for step := 0; step < 3000; step++ {
				var op string
				switch rng.Intn(10) {
				case 0:
					k := []byte(fmt.Sprintf("key%06d", rng.Intn(1600)))
					op = fmt.Sprintf("Seek(%s)", k)
					ita.Seek(k)
					itb.Seek(k)
				case 1:
					k := []byte(fmt.Sprintf("key%06d", rng.Intn(1600)))
					op = fmt.Sprintf("SeekForPrev(%s)", k)
					ita.SeekForPrev(k)
					itb.SeekForPrev(k)
				case 2:
					op = "First"
					ita.First()
					itb.First()
				case 3:
					op = "Last"
					ita.Last()
					itb.Last()
				case 4, 5, 6:
					if !ita.Valid() {
						op = "First"
						ita.First()
						itb.First()
					} else {
						op = "Next"
						ita.Next()
						itb.Next()
					}
				default:
					if !ita.Valid() {
						op = "Last"
						ita.Last()
						itb.Last()
					} else {
						op = "Prev"
						ita.Prev()
						itb.Prev()
					}
				}
				compare(step, op)
			}
			if err := ita.Close(); err != nil {
				t.Fatal(err)
			}
			if err := itb.Close(); err != nil {
				t.Fatal(err)
			}
			if da.Metrics().ScanViewHits == 0 {
				t.Fatal("trace never rode a sorted view; test is vacuous")
			}
		})
	}
}

// TestScanViewUnderConcurrentCompaction walks full scans while a writer
// overwrites the same keyspace and keeps forcing compactions and view
// rebuilds: each snapshot scan must still see exactly the loaded key set,
// in order, with no duplicates — views being invalidated and reinstalled
// mid-scan must never surface. Run with -race this also proves the
// registry's locking.
func TestScanViewUnderConcurrentCompaction(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	model := loadAndSettle(t, d, 2500)
	if err := d.BuildViews(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("key%05d", i%2500)
			if err := d.Put([]byte(k), []byte(fmt.Sprintf("new%07d", i))); err != nil {
				return
			}
			i++
			if i%400 == 0 {
				if err := d.CompactAll(); err != nil {
					return
				}
				_ = d.BuildViews()
			}
		}
	}()

	for round := 0; round < 6; round++ {
		it, err := d.NewIterator()
		if err != nil {
			t.Fatal(err)
		}
		var seen []string
		for it.First(); it.Valid(); it.Next() {
			seen = append(seen, string(it.Key()))
		}
		if it.Err() != nil {
			t.Fatalf("round %d: %v", round, it.Err())
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(model) {
			t.Fatalf("round %d: scan saw %d keys, want %d", round, len(seen), len(model))
		}
		if !sort.StringsAreSorted(seen) {
			t.Fatalf("round %d: scan out of order", round)
		}
		for _, k := range seen {
			if _, ok := model[k]; !ok {
				t.Fatalf("round %d: unexpected key %q", round, k)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// sliceIter is a synthetic internalIterator over pre-sorted internal keys,
// used to benchmark the merging layer in isolation.
type sliceIter struct {
	ikeys [][]byte
	i     int
}

func (s *sliceIter) First() { s.i = 0 }
func (s *sliceIter) Last()  { s.i = len(s.ikeys) - 1 }
func (s *sliceIter) Valid() bool {
	return s.i >= 0 && s.i < len(s.ikeys)
}
func (s *sliceIter) SeekGE(ikey []byte) {
	s.i = sort.Search(len(s.ikeys), func(i int) bool {
		return keys.Compare(s.ikeys[i], ikey) >= 0
	})
}
func (s *sliceIter) SeekLT(ikey []byte) {
	s.i = sort.Search(len(s.ikeys), func(i int) bool {
		return keys.Compare(s.ikeys[i], ikey) >= 0
	}) - 1
}
func (s *sliceIter) Next() {
	if s.i < len(s.ikeys) {
		s.i++
	}
}
func (s *sliceIter) Prev() {
	if s.i >= 0 {
		s.i--
	}
}
func (s *sliceIter) Key() []byte   { return s.ikeys[s.i] }
func (s *sliceIter) Value() []byte { return s.ikeys[s.i] }
func (s *sliceIter) Err() error    { return nil }
func (s *sliceIter) Close() error  { return nil }

// BenchmarkMergingIter measures a full forward sweep through the loser
// tree at varying fan-in: the same 64k total keys striped round-robin
// across 2, 4, 8 and 16 children, so wider merges pay tree depth, not more
// data.
func BenchmarkMergingIter(b *testing.B) {
	const total = 1 << 16
	for _, fan := range []int{2, 4, 8, 16} {
		fan := fan
		b.Run(fmt.Sprintf("children=%d", fan), func(b *testing.B) {
			kids := make([]*sliceIter, fan)
			for i := range kids {
				kids[i] = &sliceIter{}
			}
			for i := 0; i < total; i++ {
				ik := keys.MakeInternalKey(nil, []byte(fmt.Sprintf("key%08d", i)), 1, keys.KindSet)
				c := kids[i%fan]
				c.ikeys = append(c.ikeys, ik)
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				children := make([]internalIterator, fan)
				for i, k := range kids {
					children[i] = k
				}
				m := newMergingIter(children...)
				cnt := 0
				for m.First(); m.Valid(); m.Next() {
					cnt++
				}
				if cnt != total {
					b.Fatalf("merged %d keys, want %d", cnt, total)
				}
			}
			b.ReportMetric(float64(total), "keys/op")
		})
	}
}
