package db

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"

	"rocksmash/internal/manifest"
	"rocksmash/internal/storage"
)

// viewTestOptions keeps the tree cloud-resident (only L0 local) so view
// scans exercise the pipelined cloud span reads, with files small enough
// that levels >= 1 hold several member tables.
func viewTestOptions() Options {
	o := testOptions(PolicyMash)
	o.LocalLevels = 1
	return o
}

// loadAndSettle fills n sequential keys (values padded so the load spans
// several target-size files) and compacts so levels >= 1 are populated
// with multi-table membership.
func loadAndSettle(t *testing.T, d *DB, n int) map[string]string {
	t.Helper()
	model := map[string]string{}
	pad := fmt.Sprintf("%0120d", 7)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%05d", i)
		v := fmt.Sprintf("val%05d-%s", i, pad)
		mustPut(t, d, k, v)
		model[k] = v
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	return model
}

func listViews(t *testing.T, d *DB) []string {
	t.Helper()
	names, err := d.local.List(manifest.ViewPrefix)
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestViewBuildAndPersist builds views explicitly and checks that sidecar
// objects land under view/ with fingerprints matching the live manifest,
// and that a full scan is then served through the views.
func TestViewBuildAndPersist(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenAt(dir, viewTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	model := loadAndSettle(t, d, 3000)

	if err := d.BuildViews(); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.ViewBuilds == 0 {
		t.Fatal("BuildViews built nothing; expected populated levels >= 1")
	}
	names := listViews(t, d)
	if len(names) == 0 {
		t.Fatal("no view sidecars persisted")
	}
	cur := d.vs.Current()
	for _, n := range names {
		level, fp, ok := manifest.ParseViewName(n)
		if !ok {
			t.Fatalf("unparseable view name %q", n)
		}
		if want := manifest.ViewFingerprint(cur.Levels[level]); fp != want {
			t.Fatalf("%s: fingerprint %x, manifest says %x", n, fp, want)
		}
	}

	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for it.First(); it.Valid(); it.Next() {
		if want := model[string(it.Key())]; want != string(it.Value()) {
			t.Fatalf("%q = %q want %q", it.Key(), it.Value(), want)
		}
		got++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if got != len(model) {
		t.Fatalf("scan saw %d keys, want %d", got, len(model))
	}
	if hits := d.Metrics().ScanViewHits; hits == 0 {
		t.Fatal("scan did not ride any sorted view")
	}
}

// TestViewReloadAcrossReopen persists views, reopens the store, and
// verifies the sidecars decode and serve scans without being rebuilt from
// the member indexes.
func TestViewReloadAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenAt(dir, viewTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	model := loadAndSettle(t, d, 2000)
	if err := d.BuildViews(); err != nil {
		t.Fatal(err)
	}
	persisted := listViews(t, d)
	if len(persisted) == 0 {
		t.Fatal("no sidecars to reload")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenAt(dir, viewTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d2.BuildViews(); err != nil {
		t.Fatal(err)
	}
	// The second build pass must have loaded the persisted sidecars rather
	// than re-deriving them: loads count no encoded bytes.
	if b := d2.Metrics().ViewBuildBytes; b != 0 {
		t.Fatalf("reopen re-encoded views (%d bytes); expected sidecar reload", b)
	}
	it, err := d2.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for it.First(); it.Valid(); it.Next() {
		if want := model[string(it.Key())]; want != string(it.Value()) {
			t.Fatalf("%q = %q want %q", it.Key(), it.Value(), want)
		}
		got++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if got != len(model) {
		t.Fatalf("scan saw %d keys, want %d", got, len(model))
	}
	if d2.Metrics().ScanViewHits == 0 {
		t.Fatal("reloaded views not used by scan")
	}
}

// TestViewInvalidationOnCompaction checks that a compaction that changes a
// level's membership drops the now-stale sidecars: every surviving view/
// object must carry the fingerprint of the current manifest.
func TestViewInvalidationOnCompaction(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenAt(dir, viewTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loadAndSettle(t, d, 2000)
	if err := d.BuildViews(); err != nil {
		t.Fatal(err)
	}
	before := listViews(t, d)
	if len(before) == 0 {
		t.Fatal("no sidecars before compaction")
	}

	// Overwrite a chunk of the keyspace and force another full compaction:
	// level memberships change, fingerprints move on.
	for i := 0; i < 2000; i += 2 {
		mustPut(t, d, fmt.Sprintf("key%05d", i), fmt.Sprintf("new%05d", i))
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}

	cur := d.vs.Current()
	for _, n := range listViews(t, d) {
		level, fp, ok := manifest.ParseViewName(n)
		if !ok {
			t.Fatalf("unparseable view name %q", n)
		}
		if want := manifest.ViewFingerprint(cur.Levels[level]); fp != want {
			t.Fatalf("stale sidecar %s survived compaction (fp %x, manifest %x)", n, fp, want)
		}
	}
}

// TestViewSweepAtOpen plants a bogus sidecar whose fingerprint matches no
// level and reopens the store: the orphan sweep must delete it.
func TestViewSweepAtOpen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenAt(dir, viewTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	loadAndSettle(t, d, 500)
	stale := manifest.ViewName(2, 0xdeadbeef)
	if err := storage.WriteObject(d.local, stale, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenAt(dir, viewTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for _, n := range listViews(t, d2) {
		if n == stale {
			t.Fatalf("stale sidecar %s survived the open-time sweep", n)
		}
	}
}

// TestViewDisabled verifies the kill switch: with DisableSortedViews set,
// no sidecars are built and scans still return the full dataset.
func TestViewDisabled(t *testing.T) {
	dir := t.TempDir()
	o := viewTestOptions()
	o.DisableSortedViews = true
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	model := loadAndSettle(t, d, 1000)
	if err := d.BuildViews(); err != nil {
		t.Fatal(err)
	}
	if n := listViews(t, d); len(n) != 0 {
		t.Fatalf("views built despite DisableSortedViews: %v", n)
	}
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for it.First(); it.Valid(); it.Next() {
		got++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if got != len(model) {
		t.Fatalf("scan saw %d keys, want %d", got, len(model))
	}
	if d.Metrics().ScanViewHits != 0 {
		t.Fatal("ScanViewHits counted with views disabled")
	}
}

// TestViewCrashSweep kills all storage I/O at a randomized operation index
// while writes, compactions and view builds are in flight, crashes, and
// reopens against clean backends: recovery must succeed, every acknowledged
// write must survive, and any sidecars left behind must either match the
// recovered manifest or be swept — a scan after reopen must be complete
// and correct either way.
func TestViewCrashSweep(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(int64(seed)*6121 + 11))
			crashAt := int64(20 + rng.Intn(600))

			local, err := storage.NewLocal(filepath.Join(dir, "local"))
			if err != nil {
				t.Fatal(err)
			}
			o := viewTestOptions()
			o.WALSync = true
			o.pcacheDir = filepath.Join(dir, "pcache")
			cloud, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
			if err != nil {
				t.Fatal(err)
			}
			fl := storage.NewFaulty(local, storage.FaultConfig{})
			fc := storage.NewFaulty(cloud, storage.FaultConfig{})
			var ops atomic.Int64
			dead := func(op, name string) error {
				if ops.Add(1) > crashAt {
					return errors.New("crash point reached")
				}
				return nil
			}
			fl.SetHook(dead)
			fc.SetHook(dead)

			acked := map[string]string{}
			d, err := Open(o, fl, fc)
			if err == nil {
				for i := 0; i < 400; i++ {
					k := fmt.Sprintf("k%04d", i)
					v := fmt.Sprintf("v%04d-%d", i, seed)
					if perr := d.Put([]byte(k), []byte(v)); perr != nil {
						break
					}
					acked[k] = v
					switch {
					case i%61 == 60:
						// Drive the crash point through compaction +
						// view invalidation + background rebuild.
						if cerr := d.CompactAll(); cerr != nil {
							break
						}
						if verr := d.BuildViews(); verr != nil {
							break
						}
					case i%23 == 22:
						if ferr := d.Flush(); ferr != nil {
							break
						}
					}
				}
				d.Crash()
			}

			local2, err := storage.NewLocal(filepath.Join(dir, "local"))
			if err != nil {
				t.Fatal(err)
			}
			cloud2, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
			if err != nil {
				t.Fatal(err)
			}
			o2 := viewTestOptions()
			o2.WALSync = true
			o2.pcacheDir = filepath.Join(dir, "pcache")
			d2, err := Open(o2, local2, cloud2)
			if err != nil {
				t.Fatalf("crashAt=%d: reopen after crash: %v", crashAt, err)
			}
			defer d2.Close()

			// Surviving sidecars must match the recovered manifest.
			cur := d2.vs.Current()
			if names, lerr := d2.local.List(manifest.ViewPrefix); lerr == nil {
				for _, n := range names {
					level, fp, ok := manifest.ParseViewName(n)
					if !ok {
						t.Fatalf("crashAt=%d: unparseable view name %q", crashAt, n)
					}
					if want := manifest.ViewFingerprint(cur.Levels[level]); fp != want {
						t.Fatalf("crashAt=%d: stale sidecar %s after recovery", crashAt, n)
					}
				}
			}

			if err := d2.BuildViews(); err != nil {
				t.Fatalf("crashAt=%d: BuildViews after recovery: %v", crashAt, err)
			}
			it, err := d2.NewIterator()
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]string{}
			for it.First(); it.Valid(); it.Next() {
				got[string(it.Key())] = string(it.Value())
			}
			if err := it.Close(); err != nil {
				t.Fatal(err)
			}
			for k, v := range acked {
				if got[k] != v {
					t.Fatalf("crashAt=%d: acked key %s = %q want %q", crashAt, k, got[k], v)
				}
			}
		})
	}
}
