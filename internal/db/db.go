package db

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rocksmash/internal/batch"
	"rocksmash/internal/cache"
	"rocksmash/internal/event"
	"rocksmash/internal/manifest"
	"rocksmash/internal/memtable"
	"rocksmash/internal/pcache"
	"rocksmash/internal/readprof"
	"rocksmash/internal/retry"
	"rocksmash/internal/storage"
	"rocksmash/internal/vitals"
	"rocksmash/internal/wal"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("db: closed")

// ErrNotFound is returned by Get when the key does not exist.
var ErrNotFound = errors.New("db: key not found")

// ErrCloudUnavailable marks reads that genuinely need the cloud tier while
// its circuit breaker is open. Locally held data (memtables, local-tier
// tables, cached blocks) keeps serving during an outage; only a cold
// cloud-block fetch surfaces this error.
var ErrCloudUnavailable = storage.ErrCloudUnavailable

// ErrLocalUnavailable marks writes that genuinely need the local tier while
// its circuit breaker is open and no cloud fallback exists (PolicyLocalOnly
// or DisableLocalDegradedMode).
var ErrLocalUnavailable = storage.ErrLocalUnavailable

// DB is the LSM-tree store. It is safe for concurrent use.
type DB struct {
	opts  Options
	local storage.Backend
	cloud storage.Backend
	// cloudSim is non-nil when the DB owns a simulated cloud backend and
	// can produce cost reports.
	cloudSim *storage.Cloud
	// cloudRel is the retry/breaker decorator d.cloud points at (nil for
	// PolicyLocalOnly); breaker is its circuit breaker.
	cloudRel *storage.Reliable
	breaker  *retry.Breaker
	// localBreaker is the local tier's circuit breaker, the cloud breaker's
	// symmetric twin: consecutive local write failures (ENOSPC, fsync EIO)
	// open it, flushes and compactions land their outputs cloud-direct while
	// it is open, and its close transition wakes the drainer to migrate
	// misplaced tables back. Keyspace shards share one instance (one disk).
	localBreaker *retry.Breaker

	vs         *manifest.Set
	wal        *wal.Manager
	blockCache *cache.Cache
	pcache     pcache.BlockCache
	tables     *tableCache

	// shards is non-nil on the facade of a sharded store (Options.Shards >
	// 1): the keyspace is hash-partitioned across these child DBs and every
	// public method routes by key or fans out. The facade runs no engine of
	// its own — vs, wal, mem, and pipeline stay nil and its background
	// loops never start.
	shards []*DB
	// seqs allocates sequence numbers and publishes the visibility
	// watermark. A standalone DB owns its own; keyspace shards share the
	// facade's, which keeps snapshots consistent across shards.
	seqs *seqSource
	// shardRing is this engine's slice of the seqSource's allocation
	// order: its own commits, in sequence order, awaiting their memtable
	// apply. Writers are acked when their entry reaches the front, so one
	// shard's commits never wait out another shard's in-flight group.
	// Guarded by seqs.mu.
	shardRing []*commitEntry
	shardHead int

	// commitMu serializes the legacy write path (WAL append + memtable
	// apply) when the commit pipeline is disabled.
	commitMu sync.Mutex
	// pipeline is the parallel group-commit path (see commit.go); nil when
	// Options.DisableCommitPipeline reverts to the serial commitMu path.
	pipeline *commitPipeline
	// compactionMu serializes compaction pick+execute units.
	compactionMu sync.Mutex

	// mu guards memtable rotation and background state.
	mu      sync.Mutex
	mem     *memtable.MemTable
	imm     *memtable.MemTable // sealed memtable being flushed
	immWake *sync.Cond         // signalled when imm drains
	// recovered holds read-only memtables rebuilt by WAL recovery (one
	// per replayed segment, enabling parallel replay). They contain only
	// sequence numbers older than mem/imm and drain into L0 at the next
	// flush.
	recovered []*memtable.MemTable
	// rs caches the read-visible memtable set (mem/imm/recovered) behind an
	// atomic pointer so point reads and iterator construction never contend
	// on d.mu; every mutation site republishes via updateReadStateLocked.
	rs         atomic.Pointer[readState]
	lastSeq    atomic.Uint64
	bgErr      error
	snaps      map[uint64]int // active snapshot seq -> refcount
	compactPtr map[int][]byte // per-level round-robin compaction cursor

	bgWork chan struct{}
	bgQuit chan struct{}
	bgDone chan struct{}
	closed atomic.Bool

	// drainWake nudges the pending-upload drainer ahead of its ticker (the
	// breaker closing sends here); drainDone closes when the drainer exits.
	// deferredMu guards deferred, the queue of table/sidecar deletions that
	// failed and will be retried by the drainer.
	drainWake  chan struct{}
	drainDone  chan struct{}
	deferredMu sync.Mutex
	deferred   []deferredDelete

	// repairMu serializes cloud-backed repairs of corrupt local artifacts so
	// concurrent readers hitting the same damage trigger one re-fetch;
	// quarantined holds table numbers whose damage had no clean source and
	// must not be recounted on every read.
	repairMu    sync.Mutex
	quarantined map[uint64]bool
	// mirrorMu guards mirrored, the set of local-tier tables whose bytes are
	// known to have a cloud copy (Options.MirrorLocalLevels lazy uploads,
	// plus copies reconciled from a cloud listing at Open).
	mirrorMu sync.Mutex
	mirrored map[uint64]bool
	// scrubDone closes when the background scrub loop exits; nil when
	// Options.ScrubInterval is zero.
	scrubDone chan struct{}

	// views caches decoded sorted-view sidecars per level and dedupes their
	// background builds; viewWG tracks in-flight builders so Close can drain
	// them before tearing down the table cache.
	views  viewRegistry
	viewWG sync.WaitGroup

	stats Stats
	// lat holds the always-on per-operation latency histograms.
	lat *latencies
	// profTick drives 1-in-N selection of Timed (clock-reading) read
	// profiles; readAgg accumulates every sampled profile; slow tracks the
	// worst timed Gets per interval for slow-read trace emission.
	profTick atomic.Uint64
	readAgg  readAgg
	slow     slowTracker
	// listener receives lifecycle events; nil when observability is off
	// (the fast path — every fire site is nil-guarded and allocation-free).
	listener event.Listener
	// trace is the DB-owned JSONL writer behind Options.TracePath.
	trace    *event.TraceWriter
	openedAt time.Time

	// dumpMu guards lastDump, the windowed-delta baseline for DumpStats.
	dumpMu   sync.Mutex
	lastDump dumpWindow

	// vit is the time-series telemetry sampler (Options.VitalsInterval);
	// nil when vitals are off. In a sharded store only the facade runs one.
	vit *vitals.Sampler

	// flight is the flight recorder (Options.FlightRecorder): the event
	// ring, anomaly detector, and incident-bundle writer. Nil when off —
	// the off path is byte-identical to a build without the recorder. In a
	// sharded store only the facade carries one.
	flight *flightState

	recovery RecoveryReport
}

// Open creates or reopens a DB with explicit backends. local must also host
// the WAL and manifest; cloud may be nil for PolicyLocalOnly.
func Open(opts Options, local storage.Backend, cloud storage.Backend) (*DB, error) {
	opts = opts.sanitize()
	if opts.Shards > 1 && opts.sharedSeqs == nil {
		return openSharded(opts, local, cloud)
	}
	if cloud == nil && opts.Policy != PolicyLocalOnly {
		return nil, errors.New("db: policy requires a cloud backend")
	}
	if opts.sharedSeqs == nil {
		// A standalone open must not claim a directory laid out by a
		// sharded store: the root holds only per-shard prefixes there.
		if err := checkNotSharded(local); err != nil {
			return nil, err
		}
	}
	d := &DB{
		opts:      opts,
		local:     local,
		cloud:     cloud,
		mem:       memtable.New(),
		bgWork:    make(chan struct{}, 1),
		bgQuit:    make(chan struct{}),
		bgDone:    make(chan struct{}),
		drainWake: make(chan struct{}, 1),
		drainDone: make(chan struct{}),
		openedAt:  time.Now(),
	}
	// Facade-owned resources stay shared across keyspace shards: one block
	// cache, one latency set, one sequence source, one table cache — the
	// caches see the union of all shards' files (striped file numbering
	// keeps file numbers globally unique), and the shared seqSource keeps
	// one globally ordered visibility watermark.
	if d.blockCache = opts.sharedCache; d.blockCache == nil {
		d.blockCache = cache.New(opts.BlockCacheBytes)
	}
	if d.lat = opts.sharedLat; d.lat == nil {
		d.lat = newLatencies()
	}
	if d.seqs = opts.sharedSeqs; d.seqs == nil {
		d.seqs = newSeqSource()
	}
	if d.tables = opts.sharedTables; d.tables == nil {
		d.tables = newTableCache(opts.MaxOpenTables)
	}
	// Unwrap decorators (Faulty, Instrumented, ...) to find the simulated
	// cloud for cost reporting and object-loss injection.
	if cs, ok := storage.BaseBackend(cloud).(*storage.Cloud); ok {
		d.cloudSim = cs
	}
	// Assemble the effective listener: user listener plus the JSONL trace
	// writer when TracePath is set, plus the flight recorder's event ring.
	listener := opts.EventListener
	if opts.TracePath != "" {
		tw, err := event.CreateTraceRotating(opts.TracePath, opts.TraceRotateBytes, opts.TraceRotateKeep)
		if err != nil {
			return nil, fmt.Errorf("db: creating trace: %w", err)
		}
		d.trace = tw
		listener = event.Multi(listener, tw)
	}
	if opts.FlightRecorder && opts.sharedSeqs == nil {
		d.initFlight(local)
		listener = event.Multi(listener, d.flight.rec)
	}
	d.listener = listener
	// Route SSTable and sidecar I/O through recording wrappers so GET/PUT
	// latency is measured per tier. The WAL and manifest keep the raw local
	// backend: their I/O granularity (append, rotate) is not a per-object
	// PUT and would pollute the distribution.
	d.local = storage.Instrument(local, d.lat.localGet, d.lat.localPut)
	if cloud != nil {
		// Layering: Reliable(Instrumented(cloud)) — each retry attempt is a
		// real request and lands in the latency histograms; the breaker and
		// backoff sit above them. The breaker's OnStateChange feeds events,
		// stats, and the drainer wake-up; backoff waits abort at bgQuit so
		// Close never sleeps out an outage. Keyspace shards share one
		// breaker (the cloud endpoint is one dependency: an outage seen by
		// one shard should fail the others fast) whose state changes fan
		// out to every shard's drainer.
		if opts.sharedBreaker != nil {
			d.breaker = opts.sharedBreaker
			opts.breakerHooks.add(d.onBreakerChange)
		} else {
			userCB := opts.CloudBreaker.OnStateChange
			d.breaker = retry.NewBreaker(retry.BreakerConfig{
				FailureThreshold: opts.CloudBreaker.FailureThreshold,
				Cooldown:         opts.CloudBreaker.Cooldown,
				OnStateChange: func(from, to retry.State) {
					d.onBreakerChange(from, to)
					if userCB != nil {
						userCB(from, to)
					}
				},
			})
		}
		d.cloudRel = storage.NewReliable(
			storage.Instrument(cloud, d.lat.cloudGet, d.lat.cloudPut),
			opts.CloudRetry, d.breaker, d.onCloudRetry, d.bgQuit)
		d.cloud = d.cloudRel
	}
	// The local tier gets the symmetric breaker. It exists even for
	// PolicyLocalOnly (there is always a local device): without a cloud
	// fallback an open local breaker cannot redirect flushes, but its state
	// still gates pcache admissions and feeds the metrics.
	if opts.sharedLocalBreaker != nil {
		d.localBreaker = opts.sharedLocalBreaker
		opts.localBreakerHooks.add(d.onLocalBreakerChange)
	} else {
		userCB := opts.LocalBreaker.OnStateChange
		d.localBreaker = retry.NewBreaker(retry.BreakerConfig{
			FailureThreshold: opts.LocalBreaker.FailureThreshold,
			Cooldown:         opts.LocalBreaker.Cooldown,
			OnStateChange: func(from, to retry.State) {
				d.onLocalBreakerChange(from, to)
				if userCB != nil {
					userCB(from, to)
				}
			},
		})
	}
	d.quarantined = map[uint64]bool{}
	d.mirrored = map[uint64]bool{}
	d.immWake = sync.NewCond(&d.mu)
	d.rs.Store(&readState{mem: d.mem})

	var err error
	if d.vs, err = manifest.Open(local); err != nil {
		return nil, err
	}
	if opts.sharedSeqs != nil {
		// Stripe file numbering so file numbers are globally unique across
		// shards: the shared caches key on bare file numbers, and
		// fileNum % Shards recovers the owning shard for attribution.
		d.vs.SetStride(uint64(opts.Shards), uint64(opts.shardID))
	}
	d.lastSeq.Store(d.vs.LastSeq())

	if d.pcache = opts.sharedPCache; d.pcache == nil {
		if err := d.initPCache(); err != nil {
			return nil, err
		}
	}

	walOpts := wal.Options{
		Dir:          "wal",
		SegmentBytes: opts.WALSegmentBytes,
		Sync:         opts.WALSync,
		Extended:     opts.ExtendedWAL,
	}
	if opts.WALCloudBackup && cloud != nil {
		// Through the instrumented wrapper: segment backups are whole-object
		// PUTs and belong in the cloud PUT latency distribution.
		walOpts.Backup = d.cloud
	}
	if d.wal, err = wal.Open(local, walOpts, 1); err != nil {
		return nil, err
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	// Replayed writes are already applied, so they are visible by
	// definition; lift the (possibly shared) sequence source over them.
	d.seqs.raise(d.lastSeq.Load())
	// Register every live file's level with the persistent cache so its
	// hit/miss counters attribute correctly from the first read.
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		d.pcache.SetLevel(f.Num, level)
	})
	if !opts.DisableCommitPipeline {
		d.pipeline = newCommitPipeline(d)
	}
	// A crash between an object write and its manifest edit (or during a
	// degraded-mode drain) can strand table objects no version references.
	// Background work has not started yet, so the sweep races nothing.
	d.cleanOrphans()
	go d.backgroundLoop()
	go d.drainLoop()
	if opts.ScrubInterval > 0 {
		d.scrubDone = make(chan struct{})
		go d.scrubLoop()
	}
	// Keyspace shards never sample on their own: the facade runs the one
	// sampler over the aggregated cross-shard view.
	if !d.isShard() {
		d.startVitals()
	}
	return d, nil
}

// OpenAt opens a DB under dir, creating local storage at dir/local, the
// simulated cloud at dir/cloud, and the persistent cache at dir/pcache.
func OpenAt(dir string, opts Options) (*DB, error) {
	opts = opts.sanitize()
	local, err := storage.NewLocal(filepath.Join(dir, "local"))
	if err != nil {
		return nil, err
	}
	var cloud storage.Backend
	if opts.Policy != PolicyLocalOnly {
		c, err := storage.NewCloud(filepath.Join(dir, "cloud"), opts.CloudLatency, opts.CloudCost)
		if err != nil {
			return nil, err
		}
		cloud = c
	}
	opts.pcacheDir = filepath.Join(dir, "pcache")
	return Open(opts, local, cloud)
}

// OpenAtChaos opens like OpenAt but wraps the cloud backend in a Faulty
// fault-injection decorator, for benchmark chaos flags and robustness
// experiments. The returned Faulty handle scripts outages and reports
// injected-fault counts; it is nil for PolicyLocalOnly.
func OpenAtChaos(dir string, opts Options, cfg storage.FaultConfig) (*DB, *storage.Faulty, error) {
	opts = opts.sanitize()
	local, err := storage.NewLocal(filepath.Join(dir, "local"))
	if err != nil {
		return nil, nil, err
	}
	var cloud storage.Backend
	var faulty *storage.Faulty
	if opts.Policy != PolicyLocalOnly {
		c, err := storage.NewCloud(filepath.Join(dir, "cloud"), opts.CloudLatency, opts.CloudCost)
		if err != nil {
			return nil, nil, err
		}
		faulty = storage.NewFaulty(c, cfg)
		cloud = faulty
	}
	opts.pcacheDir = filepath.Join(dir, "pcache")
	d, err := Open(opts, local, cloud)
	if err != nil {
		return nil, nil, err
	}
	return d, faulty, nil
}

// OpenAtChaosLocal opens like OpenAtChaos but wraps *both* tiers in Faulty
// decorators, so experiments can script local-device faults (bit flips,
// ENOSPC, fsync EIO) alongside cloud outages. The returned handles are
// (localFaulty, cloudFaulty); cloudFaulty is nil for PolicyLocalOnly.
func OpenAtChaosLocal(dir string, opts Options, localCfg, cloudCfg storage.FaultConfig) (*DB, *storage.Faulty, *storage.Faulty, error) {
	opts = opts.sanitize()
	l, err := storage.NewLocal(filepath.Join(dir, "local"))
	if err != nil {
		return nil, nil, nil, err
	}
	localFaulty := storage.NewFaulty(l, localCfg)
	var cloud storage.Backend
	var cloudFaulty *storage.Faulty
	if opts.Policy != PolicyLocalOnly {
		c, err := storage.NewCloud(filepath.Join(dir, "cloud"), opts.CloudLatency, opts.CloudCost)
		if err != nil {
			return nil, nil, nil, err
		}
		cloudFaulty = storage.NewFaulty(c, cloudCfg)
		cloud = cloudFaulty
	}
	opts.pcacheDir = filepath.Join(dir, "pcache")
	d, err := Open(opts, localFaulty, cloud)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, localFaulty, cloudFaulty, nil
}

func (d *DB) initPCache() error {
	dir := d.opts.pcacheDir
	if dir == "" {
		if l, ok := storage.BaseBackend(d.local).(*storage.Local); ok {
			dir = filepath.Join(l.Root(), "..", "pcache")
		} else {
			dir = "pcache"
		}
	}
	switch {
	case d.opts.Policy == PolicyMash && d.opts.PCacheBytes > 0:
		pc, err := pcache.New(pcache.Options{
			Dir:           dir,
			CapacityBytes: d.opts.PCacheBytes,
			RegionBytes:   d.opts.PCacheRegionBytes,
		})
		if err != nil {
			return err
		}
		pc.SetListener(d.listener)
		if pc.IndexWasCorrupt() {
			// A damaged index snapshot is self-healing by design: the cache
			// restarts cold and refills from the cloud. Count it as a detected
			// and repaired corruption so scrub reconciliation stays honest.
			d.stats.CorruptionsDetected.Add(1)
			d.stats.CorruptionsRepaired.Add(1)
			d.evCorruptionDetected("pcache-index", "INDEX", 0, errors.New("pcache: index snapshot corrupt"))
			d.evCorruptionRepaired("pcache-index", "INDEX", 0, "cold-start", 0)
		}
		d.pcache = pc
	case d.opts.Policy == PolicyCloudLRU && d.opts.PCacheBytes > 0:
		pc, err := pcache.NewGenericLRU(dir, d.opts.PCacheBytes)
		if err != nil {
			return err
		}
		pc.SetListener(d.listener)
		d.pcache = pc
	default:
		d.pcache = pcache.NewNull()
	}
	// Cache admissions are writes to the local device; gate them off while
	// the local tier is degraded. The closure reads d.localBreaker at call
	// time, so facade/shard wiring order does not matter.
	d.pcache.SetAdmit(func() bool {
		return d.localBreaker == nil || d.localBreaker.State() != retry.StateOpen
	})
	return nil
}

func (d *DB) backendFor(t storage.Tier) storage.Backend {
	if t == storage.TierCloud {
		return d.cloud
	}
	return d.local
}

// Put stores a key/value pair.
func (d *DB) Put(key, value []byte) error {
	b := batch.New()
	b.Set(key, value)
	return d.Write(b)
}

// Delete removes a key.
func (d *DB) Delete(key []byte) error {
	b := batch.New()
	b.Delete(key)
	return d.Write(b)
}

// Write applies a batch atomically. In a sharded store the batch is split
// by key hash and committed per shard: each sub-batch is atomic and the
// caller observes all of them applied on return, but a reader racing the
// write may see one shard's portion before another's.
func (d *DB) Write(b *batch.Batch) error {
	if d.closed.Load() {
		return ErrClosed
	}
	if b.Empty() {
		return nil
	}
	if d.shards != nil {
		return d.shardWrite(b)
	}
	start := time.Now()
	err := d.write(b)
	// Commit latency includes any stall time: that is what a caller of Put
	// observes, and stall tails are exactly what the histogram is for.
	d.lat.put.Record(time.Since(start))
	return err
}

func (d *DB) write(b *batch.Batch) error {
	if err := d.makeRoomForWrite(int64(b.Size())); err != nil {
		return err
	}
	if p := d.pipeline; p != nil {
		return p.commit(b)
	}

	// Serial path: one writer at a time per shard (commitMu), but sequence
	// allocation and visibility still route through the shared seqSource so
	// sharded stores keep one globally ordered watermark regardless of
	// which commit path is configured.
	d.commitMu.Lock()
	defer d.commitMu.Unlock()
	ss := d.seqs
	e := entryPool.Get().(*commitEntry)
	e.b, e.d, e.mem = b, d, nil
	e.err, e.promoted, e.applied = nil, false, false
	ss.mu.Lock()
	b.SetSeq(ss.nextSeq)
	ss.nextSeq += uint64(b.Count())
	e.maxSeq = b.MaxSeq()
	ss.enqueueLocked(d, e)
	ss.mu.Unlock()
	if _, err := d.wal.Append(b.Payload(), b.Seq(), e.maxSeq); err != nil {
		// The allocated range is a hole: recovery and visibility tolerate
		// gaps, matching the pipeline's failed-group semantics.
		e.err = err
	} else {
		mem := d.currentMem()
		e.err = b.Iterate(func(op batch.Op) error {
			mem.Add(op.Seq, op.Kind, op.Key, op.Value)
			return nil
		})
		if e.err == nil {
			d.stats.Writes.Add(int64(b.Count()))
			d.stats.BytesWritten.Add(int64(b.Size()))
		}
	}
	ss.markApplied(e)
	<-e.visible
	err := e.err
	e.b, e.d, e.mem = nil, nil, nil
	entryPool.Put(e)
	return err
}

func (d *DB) currentMem() *memtable.MemTable {
	d.mu.Lock()
	m := d.mem
	d.mu.Unlock()
	return m
}

// readState is the immutable snapshot of the read-visible memtable set.
// Readers load it with one atomic pointer read instead of taking d.mu.
type readState struct {
	mem       *memtable.MemTable
	imm       *memtable.MemTable
	recovered []*memtable.MemTable
}

// updateReadStateLocked republishes the read snapshot; the caller holds
// d.mu and has just mutated mem, imm, or recovered.
func (d *DB) updateReadStateLocked() {
	d.rs.Store(&readState{mem: d.mem, imm: d.imm, recovered: d.recovered})
}

// makeRoomForWrite seals the memtable when full and applies backpressure
// when flushing or L0 falls behind. Stall events fire with d.mu released
// (the listener contract); the loop re-evaluates its conditions after every
// re-acquisition, so the temporary unlock is safe.
func (d *DB) makeRoomForWrite(incoming int64) (err error) {
	var (
		stallStart  time.Time
		stallReason string
	)
	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
		if !stallStart.IsZero() {
			if l := d.listener; l != nil {
				l.OnWriteStallEnd(event.WriteStallEnd{
					Reason:   stallReason,
					Duration: time.Since(stallStart),
				})
			}
		}
	}()
	// stallBegin marks the stall and fires WriteStallBegin outside d.mu.
	// It returns with d.mu re-held; the caller must re-check conditions.
	stallBegin := func(reason string) {
		stallStart, stallReason = time.Now(), reason
		if l := d.listener; l != nil {
			d.mu.Unlock()
			l.OnWriteStallBegin(event.WriteStallBegin{Reason: reason})
			d.mu.Lock()
		}
	}
	for {
		if d.bgErr != nil {
			return d.bgErr
		}
		switch {
		case d.mem.ApproximateSize()+incoming < d.opts.MemtableBytes,
			d.mem.Empty():
			// A batch larger than the memtable budget must still be
			// admitted once the memtable is empty, or it could never
			// commit.
			return nil
		case d.imm != nil:
			// A flush is already in flight; wait for it.
			if stallStart.IsZero() {
				stallBegin("memtable")
				continue
			}
			d.immWake.Wait()
		case len(d.vs.Current().Levels[0]) >= d.opts.L0StallFiles:
			// Too many L0 files; wait for compaction to catch up.
			if stallStart.IsZero() {
				d.stats.WriteStalls.Add(1)
				stallBegin("l0")
				continue
			}
			d.immWake.Wait()
		default:
			// Seal the memtable. Roll the WAL so the sealed memtable's
			// tail aligns with a segment boundary (eWAL design).
			d.imm = d.mem
			d.mem = memtable.New()
			d.updateReadStateLocked()
			if err := d.wal.Roll(); err != nil {
				d.bgErr = err
				return err
			}
			d.scheduleWork()
			return nil
		}
	}
}

func (d *DB) scheduleWork() {
	select {
	case d.bgWork <- struct{}{}:
	default:
	}
}

// Get returns the value for key at the latest sequence number.
func (d *DB) Get(key []byte) ([]byte, error) {
	if d.shards != nil {
		// A point read depends only on writes to key's own shard, so it
		// reads at that shard's acked frontier — no need to touch the
		// global watermark, which may trail another shard's in-flight
		// commits.
		sh := d.shardFor(key)
		return sh.GetAt(key, sh.lastSeq.Load())
	}
	return d.GetAt(key, d.lastSeq.Load())
}

// GetAt returns the value for key visible at snapshot seq.
func (d *DB) GetAt(key []byte, seq uint64) ([]byte, error) {
	if d.shards != nil {
		return d.shardFor(key).GetAt(key, seq)
	}
	if d.closed.Load() {
		return nil, ErrClosed
	}
	d.stats.Reads.Add(1)
	// Read profiling: every Get carries a pooled profile (cheap counter
	// core) unless disabled; 1-in-ReadProfileSampleRate of them are Timed
	// and additionally pay per-stage clock reads.
	var prof *readprof.Profile
	if rate := d.opts.ReadProfileSampleRate; rate > 0 {
		prof = getProfile()
		prof.Timed = rate == 1 || d.profTick.Add(1)%uint64(rate) == 0
	}
	start := time.Now()
	v, err := d.getAt(key, seq, prof)
	elapsed := time.Since(start)
	d.lat.get.Record(elapsed)
	if prof != nil {
		d.finishProfile(key, prof, elapsed)
	}
	return v, err
}

// GetProfiled is Get with full attribution: the returned Profile reports
// where the read was served from and what it cost, regardless of the
// sampling rate. The read still feeds the aggregate counters.
func (d *DB) GetProfiled(key []byte) ([]byte, readprof.Profile, error) {
	if d.shards != nil {
		return d.shardFor(key).GetProfiled(key)
	}
	if d.closed.Load() {
		return nil, readprof.Profile{}, ErrClosed
	}
	d.stats.Reads.Add(1)
	prof := getProfile()
	prof.Timed = true
	start := time.Now()
	v, err := d.getAt(key, d.lastSeq.Load(), prof)
	elapsed := time.Since(start)
	d.lat.get.Record(elapsed)
	prof.TotalNanos = elapsed.Nanoseconds()
	out := *prof
	d.finishProfile(key, prof, elapsed)
	return v, out, err
}

func (d *DB) getAt(key []byte, seq uint64, prof *readprof.Profile) ([]byte, error) {
	// One atomic load instead of d.mu: reads stay off the rotation lock so
	// a write-heavy workload cannot starve point lookups (and vice versa).
	rs := d.rs.Load()
	mem, imm := rs.mem, rs.imm
	recovered := rs.recovered

	if v, found, live := mem.Get(key, seq); found {
		if prof != nil {
			prof.LevelServed = readprof.LevelMemtable
		}
		if !live {
			return nil, ErrNotFound
		}
		return append([]byte(nil), v...), nil
	}
	if imm != nil {
		if v, found, live := imm.Get(key, seq); found {
			if prof != nil {
				prof.LevelServed = readprof.LevelMemtable
			}
			if !live {
				return nil, ErrNotFound
			}
			return append([]byte(nil), v...), nil
		}
	}
	if len(recovered) > 0 {
		// Recovered memtables are unordered relative to each other; pick
		// the newest visible entry across all of them.
		if v, live, ok := getFromRecovered(recovered, key, seq); ok {
			if prof != nil {
				prof.LevelServed = readprof.LevelMemtable
			}
			if !live {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}

	// The version walk does not pin the version: a concurrent compaction
	// may install a successor and delete its input tables while we hold
	// the old file list. Losing that race surfaces as a storage not-found
	// from the table open; re-walking the fresh version (which no longer
	// references the deleted table) is always correct at the same seq —
	// data only moves down the tree, never out of it. Bounded so a
	// genuinely missing object still fails loudly.
	for attempt := 0; ; attempt++ {
		v := d.vs.Current()
		var (
			value []byte
			state int // 0 = not found, 1 = live, 2 = tombstone
		)
		err := v.FilesFor(key, func(level int, f *manifest.FileMetadata) (bool, error) {
			if prof != nil {
				prof.ProbeLevel(level)
			}
			if seq < f.MinSeq && level > 0 {
				// Nothing in this file is visible at the snapshot.
				return false, nil
			}
			h, err := d.tables.get(d, f)
			if err != nil {
				return false, err
			}
			defer h.release()
			if prof != nil {
				prof.Tables++
			}
			val, found, live, err := h.reader.GetProf(key, seq, prof)
			if err != nil {
				return false, err
			}
			if !found {
				return false, nil
			}
			if prof != nil {
				prof.LevelServed = int8(level)
			}
			if live {
				value, state = val, 1
			} else {
				state = 2
			}
			return true, nil
		})
		if err != nil {
			if errors.Is(err, storage.ErrNotFound) && attempt < 3 {
				continue
			}
			return nil, err
		}
		if state == 1 {
			return value, nil
		}
		return nil, ErrNotFound
	}
}

// Has reports whether key exists.
func (d *DB) Has(key []byte) (bool, error) {
	_, err := d.Get(key)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Snapshot captures a read view of the DB. Release it when done so
// compaction can reclaim versions it pins.
type Snapshot struct {
	db       *DB
	seq      uint64
	released bool
}

// GetSnapshot returns a consistent read view at the current sequence. In a
// sharded store the snapshot sequence comes from the shared visibility
// watermark and is pinned in every shard, so reads through it observe a
// single cross-shard point in time. The watermark is first caught up to
// the acked frontier, so every write that returned before this call is
// inside the snapshot.
func (d *DB) GetSnapshot() *Snapshot {
	if d.shards != nil {
		d.seqs.waitVisible(d.ackedSeq())
		s := &Snapshot{db: d, seq: d.seqs.visible.Load()}
		for _, sh := range d.shards {
			sh.registerSnapshot(s.seq)
		}
		return s
	}
	s := &Snapshot{db: d, seq: d.lastSeq.Load()}
	d.registerSnapshot(s.seq)
	return s
}

func (d *DB) registerSnapshot(seq uint64) {
	d.mu.Lock()
	if d.snaps == nil {
		d.snaps = map[uint64]int{}
	}
	d.snaps[seq]++
	d.mu.Unlock()
}

func (d *DB) unregisterSnapshot(seq uint64) {
	d.mu.Lock()
	if n := d.snaps[seq]; n <= 1 {
		delete(d.snaps, seq)
	} else {
		d.snaps[seq] = n - 1
	}
	d.mu.Unlock()
}

// Release unpins the snapshot. Reads through a released snapshot may
// observe compacted state.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	if s.db.shards != nil {
		for _, sh := range s.db.shards {
			sh.unregisterSnapshot(s.seq)
		}
		return
	}
	s.db.unregisterSnapshot(s.seq)
}

// Get reads key at the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) { return s.db.GetAt(key, s.seq) }

// Seq returns the snapshot's sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Flush forces the current memtable (and any recovery memtables) to an
// SSTable and waits. A sharded store flushes every shard concurrently.
func (d *DB) Flush() error {
	if d.shards != nil {
		return d.eachShard(func(sh *DB) error { return sh.Flush() })
	}
	d.mu.Lock()
	if d.mem.Empty() && d.imm == nil && len(d.recovered) == 0 {
		d.mu.Unlock()
		return nil
	}
	for d.imm != nil {
		if d.bgErr != nil {
			err := d.bgErr
			d.mu.Unlock()
			return err
		}
		d.immWake.Wait()
	}
	if d.mem.Empty() && len(d.recovered) == 0 {
		d.mu.Unlock()
		return nil
	}
	d.imm = d.mem
	d.mem = memtable.New()
	d.updateReadStateLocked()
	if err := d.wal.Roll(); err != nil {
		d.mu.Unlock()
		return err
	}
	d.scheduleWork()
	for d.imm != nil && d.bgErr == nil {
		d.immWake.Wait()
	}
	err := d.bgErr
	d.mu.Unlock()
	return err
}

// CompactAll flushes and repeatedly compacts until the tree is quiescent.
// Used by experiments to reach a steady state.
func (d *DB) CompactAll() error {
	if d.shards != nil {
		return d.eachShard(func(sh *DB) error { return sh.CompactAll() })
	}
	if err := d.Flush(); err != nil {
		return err
	}
	for {
		did, err := d.maybeCompact()
		if err != nil {
			return err
		}
		if !did {
			return nil
		}
	}
}

// backgroundLoop runs flushes and compactions.
func (d *DB) backgroundLoop() {
	defer close(d.bgDone)
	for {
		select {
		case <-d.bgQuit:
			return
		case <-d.bgWork:
		}
		if d.closed.Load() {
			return
		}
		d.mu.Lock()
		imm := d.imm
		d.mu.Unlock()
		if imm != nil {
			err := d.flushMemtable(imm)
			d.mu.Lock()
			if err != nil {
				d.bgErr = err
			} else {
				d.imm = nil
				d.updateReadStateLocked()
			}
			d.immWake.Broadcast()
			d.mu.Unlock()
			if err != nil {
				continue
			}
		}
		// Compact until no level is over threshold.
		for {
			did, err := d.maybeCompact()
			if err != nil {
				// A compaction stopped by a cloud outage is deferred, not
				// fatal: the tree is unchanged, and the breaker's close
				// transition reschedules background work. Anything else
				// wedges the DB as before.
				if errors.Is(err, storage.ErrCloudUnavailable) {
					d.stats.CompactionsDeferred.Add(1)
					break
				}
				d.mu.Lock()
				d.bgErr = err
				d.immWake.Broadcast()
				d.mu.Unlock()
				break
			}
			if !did {
				break
			}
			d.mu.Lock()
			d.immWake.Broadcast() // L0 may have drained below the stall limit
			d.mu.Unlock()
			// A flush may be pending while we compact.
			d.mu.Lock()
			pending := d.imm != nil
			d.mu.Unlock()
			if pending {
				d.scheduleWork()
				break
			}
		}
	}
}

// isShard reports whether d is a keyspace shard inside a sharded store
// (as opposed to a standalone DB or the facade itself). Shards borrow the
// facade-owned shared resources and must not close them.
func (d *DB) isShard() bool { return d.opts.sharedSeqs != nil }

// Close flushes state and releases resources.
func (d *DB) Close() error {
	if d.shards != nil {
		return d.closeSharded()
	}
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Stop background work (the vitals sampler, the flush/compaction loop,
	// and the drainer).
	d.stopVitals()
	close(d.bgQuit)
	<-d.bgDone
	<-d.drainDone
	if d.scrubDone != nil {
		<-d.scrubDone
	}
	// Bar new sorted-view builds and drain in-flight ones while their table
	// handles are still valid.
	d.stopViewBuilders()

	// Flush any sealed or recovered memtables synchronously so no WAL
	// data is stranded longer than necessary (the WAL still covers the
	// active memtable).
	d.mu.Lock()
	imm := d.imm
	haveRecovered := len(d.recovered) > 0
	d.mu.Unlock()
	var firstErr error
	if imm != nil || haveRecovered {
		if err := d.flushMemtable(imm); err != nil {
			firstErr = err
		} else {
			d.mu.Lock()
			d.imm = nil
			d.updateReadStateLocked()
			d.mu.Unlock()
		}
	}
	if err := d.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if !d.isShard() {
		// Shared across keyspace shards and closed once by the facade.
		if err := d.pcache.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		d.tables.close()
	}
	if err := d.vs.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	// Drain any slow reads buffered in the current tracking window so their
	// trace records are not lost; then close the trace last — the flushes
	// above may still fire events into it.
	d.flushSlowReads()
	if d.trace != nil {
		if err := d.trace.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// LastSequence returns the newest committed sequence number.
func (d *DB) LastSequence() uint64 {
	if d.shards != nil {
		return d.ackedSeq()
	}
	return d.lastSeq.Load()
}

// ackedSeq returns the facade's acknowledged frontier: the newest sequence
// any shard has acked a writer for.
func (d *DB) ackedSeq() uint64 {
	var max uint64
	for _, sh := range d.shards {
		if ls := sh.lastSeq.Load(); ls > max {
			max = ls
		}
	}
	return max
}

// Crash abandons the DB without flushing or closing cleanly, simulating a
// process crash. Used by recovery experiments and tests; the handle must
// not be used afterwards. Data appended to the WAL remains recoverable.
func (d *DB) Crash() {
	if d.shards != nil {
		d.crashSharded()
		return
	}
	if !d.closed.CompareAndSwap(false, true) {
		return
	}
	d.stopVitals()
	close(d.bgQuit)
	<-d.bgDone
	<-d.drainDone
	if d.scrubDone != nil {
		<-d.scrubDone
	}
	d.stopViewBuilders()
	if !d.isShard() {
		d.tables.close()
	}
}

// LoseCloudObject simulates silent loss of a cloud object (reliability
// experiments). It reports false when the DB has no simulated cloud.
func (d *DB) LoseCloudObject(name string) bool {
	if d.cloudSim == nil {
		return false
	}
	if d.shards != nil {
		// Objects live under per-shard prefixes; losing the name in every
		// shard's namespace hits whichever shard actually holds it.
		for i := range d.shards {
			d.cloudSim.LoseObject(shardPrefix(i) + name)
		}
		return true
	}
	d.cloudSim.LoseObject(name)
	return true
}

// debugCheckLevels is used by tests to inspect the file layout.
func (d *DB) debugLevels() [manifest.NumLevels]int {
	var out [manifest.NumLevels]int
	if d.shards != nil {
		for _, sh := range d.shards {
			sub := sh.debugLevels()
			for l := range sub {
				out[l] += sub[l]
			}
		}
		return out
	}
	v := d.vs.Current()
	for l := range v.Levels {
		out[l] = len(v.Levels[l])
	}
	return out
}

// String summarizes the DB for logs.
func (d *DB) String() string {
	if d.shards != nil {
		var files int
		for _, sh := range d.shards {
			files += sh.vs.Current().NumFiles()
		}
		return fmt.Sprintf("db{policy=%s shards=%d files=%d lastSeq=%d}",
			d.opts.Policy, len(d.shards), files, d.ackedSeq())
	}
	v := d.vs.Current()
	return fmt.Sprintf("db{policy=%s files=%d lastSeq=%d}", d.opts.Policy, v.NumFiles(), d.lastSeq.Load())
}
