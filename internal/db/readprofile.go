package db

import (
	"sync"
	"sync/atomic"
	"time"

	"rocksmash/internal/event"
	"rocksmash/internal/manifest"
	"rocksmash/internal/readprof"
)

// Read-path profiling (see internal/readprof and DESIGN.md §5e). Every Get
// carries a pooled profile unless ReadProfileSampleRate is negative; the
// counter core (levels probed, tables, bloom, blocks by tier) is always
// recorded, and 1-in-N profiles are additionally Timed — they pay per-stage
// clock reads and feed the slow-read tracker. Profiles are recycled through
// a sync.Pool so the sampled path stays allocation-free in steady state.

var profilePool = sync.Pool{New: func() any { return readprof.New() }}

func getProfile() *readprof.Profile {
	p := profilePool.Get().(*readprof.Profile)
	p.Reset()
	return p
}

// readAgg accumulates every sampled profile into lock-free totals. Point
// lookups and iterators aggregate separately so per-get read-amp math is
// not skewed by scans.
type readAgg struct {
	profiled atomic.Int64 // Gets that carried a profile
	timed    atomic.Int64 // subset that paid per-stage clock reads

	memServes   atomic.Int64 // Gets resolved by a memtable
	notFound    atomic.Int64 // Gets resolved nowhere
	levelProbes [manifest.NumLevels]atomic.Int64
	levelServes [manifest.NumLevels]atomic.Int64

	tables        atomic.Int64
	bloomChecked  atomic.Int64
	bloomNegative atomic.Int64

	blocks     [readprof.NumTiers]atomic.Int64
	bytes      [readprof.NumTiers]atomic.Int64
	fetchNanos [readprof.NumTiers]atomic.Int64 // Timed profiles only
	totalNanos atomic.Int64                    // Timed profiles only

	iterSeeks      atomic.Int64
	iterBlocks     [readprof.NumTiers]atomic.Int64
	iterBytes      [readprof.NumTiers]atomic.Int64
	iterNanos      [readprof.NumTiers]atomic.Int64
	iterViewHits   atomic.Int64
	iterViewMisses atomic.Int64
}

func (a *readAgg) merge(p *readprof.Profile) {
	a.profiled.Add(1)
	if p.Timed {
		a.timed.Add(1)
		a.totalNanos.Add(p.TotalNanos)
	}
	switch p.LevelServed {
	case readprof.LevelMemtable:
		a.memServes.Add(1)
	case readprof.LevelNone:
		a.notFound.Add(1)
	default:
		if l := int(p.LevelServed); l >= 0 && l < manifest.NumLevels {
			a.levelServes[l].Add(1)
		}
	}
	if p.LevelMask != 0 {
		for l := 0; l < manifest.NumLevels; l++ {
			if p.Probed(l) {
				a.levelProbes[l].Add(1)
			}
		}
	}
	a.tables.Add(int64(p.Tables))
	a.bloomChecked.Add(int64(p.BloomChecked))
	a.bloomNegative.Add(int64(p.BloomNegative))
	for t := 0; t < readprof.NumTiers; t++ {
		if p.Blocks[t] != 0 {
			a.blocks[t].Add(int64(p.Blocks[t]))
			a.bytes[t].Add(p.Bytes[t])
			a.fetchNanos[t].Add(p.FetchNanos[t])
		}
	}
}

// snapshot copies the aggregates into a ReadAmp (pcache per-level
// counters are filled in by Metrics).
func (a *readAgg) snapshot() ReadAmp {
	r := ReadAmp{
		ProfiledGets:   a.profiled.Load(),
		TimedGets:      a.timed.Load(),
		MemServes:      a.memServes.Load(),
		NotFound:       a.notFound.Load(),
		Tables:         a.tables.Load(),
		BloomChecked:   a.bloomChecked.Load(),
		BloomNegative:  a.bloomNegative.Load(),
		TotalNanos:     a.totalNanos.Load(),
		IterSeeks:      a.iterSeeks.Load(),
		IterViewHits:   a.iterViewHits.Load(),
		IterViewMisses: a.iterViewMisses.Load(),
	}
	for l := 0; l < manifest.NumLevels; l++ {
		r.LevelProbes[l] = a.levelProbes[l].Load()
		r.LevelServes[l] = a.levelServes[l].Load()
	}
	for t := 0; t < readprof.NumTiers; t++ {
		r.Blocks[t] = a.blocks[t].Load()
		r.Bytes[t] = a.bytes[t].Load()
		r.FetchNanos[t] = a.fetchNanos[t].Load()
		r.IterBlocks[t] = a.iterBlocks[t].Load()
		r.IterBytes[t] = a.iterBytes[t].Load()
		r.IterNanos[t] = a.iterNanos[t].Load()
	}
	return r
}

// mergeIter folds an iterator's lifetime profile into the scan-side
// aggregates when the iterator closes.
func (a *readAgg) mergeIter(p *readprof.Profile, seeks int64) {
	a.iterSeeks.Add(seeks)
	for t := 0; t < readprof.NumTiers; t++ {
		if p.Blocks[t] != 0 {
			a.iterBlocks[t].Add(int64(p.Blocks[t]))
			a.iterBytes[t].Add(p.Bytes[t])
			a.iterNanos[t].Add(p.FetchNanos[t])
		}
	}
	a.iterViewHits.Add(int64(p.ViewHits))
	a.iterViewMisses.Add(int64(p.ViewMisses))
}

// finishProfile completes one Get's profile: stamps the total latency,
// folds it into the aggregates, offers it to the slow-read tracker, and
// returns it to the pool.
func (d *DB) finishProfile(key []byte, p *readprof.Profile, elapsed time.Duration) {
	if p.Timed {
		p.TotalNanos = elapsed.Nanoseconds()
	}
	d.readAgg.merge(p)
	if p.Timed && d.listener != nil {
		d.slow.observe(d, key, p)
	}
	profilePool.Put(p)
}

// Slow-read tracking: a small top-K reservoir of the worst Timed Gets in
// each interval. When the interval rolls over (lazily, on the next timed
// Get, and at Close), the reservoir is emitted as event.SlowRead records
// through the regular listener plumbing.

const (
	defaultSlowKeep   = 8
	defaultSlowWindow = 10 * time.Second
	// slowKeyPrefix bounds the key bytes carried in a SlowRead record.
	slowKeyPrefix = 64
)

type slowRead struct {
	key  []byte
	prof readprof.Profile
}

type slowTracker struct {
	mu        sync.Mutex
	keep      int           // reservoir size (0 = default)
	window    time.Duration // interval length (0 = default)
	windowEnd time.Time
	entries   []slowRead
}

// observe offers one timed profile. Called only when a listener is
// attached; emission of an expired window happens outside the lock.
func (t *slowTracker) observe(d *DB, key []byte, p *readprof.Profile) {
	now := time.Now()
	var emit []slowRead
	t.mu.Lock()
	keep, window := t.keep, t.window
	if keep <= 0 {
		keep = defaultSlowKeep
	}
	if window <= 0 {
		window = defaultSlowWindow
	}
	if t.windowEnd.IsZero() {
		t.windowEnd = now.Add(window)
	} else if now.After(t.windowEnd) {
		emit = t.entries
		t.entries = nil
		t.windowEnd = now.Add(window)
	}
	if len(t.entries) < keep {
		t.entries = append(t.entries, slowRead{key: clipKey(key), prof: *p})
	} else {
		mi := 0
		for i := 1; i < len(t.entries); i++ {
			if t.entries[i].prof.TotalNanos < t.entries[mi].prof.TotalNanos {
				mi = i
			}
		}
		if p.TotalNanos > t.entries[mi].prof.TotalNanos {
			t.entries[mi] = slowRead{key: clipKey(key), prof: *p}
		}
	}
	t.mu.Unlock()
	for i := range emit {
		d.evSlowRead(&emit[i])
	}
}

func clipKey(key []byte) []byte {
	if len(key) > slowKeyPrefix {
		key = key[:slowKeyPrefix]
	}
	return append([]byte(nil), key...)
}

// flushSlowReads emits whatever the current window holds. Close calls it
// before the trace writer shuts down so buffered slow reads are not lost.
func (d *DB) flushSlowReads() {
	d.slow.mu.Lock()
	emit := d.slow.entries
	d.slow.entries = nil
	d.slow.windowEnd = time.Time{}
	d.slow.mu.Unlock()
	for i := range emit {
		d.evSlowRead(&emit[i])
	}
}

func (d *DB) evSlowRead(s *slowRead) {
	l := d.listener
	if l == nil {
		return
	}
	p := &s.prof
	e := event.SlowRead{
		Key:           string(s.key),
		Duration:      time.Duration(p.TotalNanos),
		LevelsProbed:  p.LevelsProbed(),
		LevelServed:   int(p.LevelServed),
		Tables:        int(p.Tables),
		BloomChecked:  int(p.BloomChecked),
		BloomNegative: int(p.BloomNegative),
		Path:          p.Path(),
	}
	for t := 0; t < readprof.NumTiers; t++ {
		e.Blocks[t] = int(p.Blocks[t])
		e.Bytes[t] = p.Bytes[t]
		e.FetchDur[t] = time.Duration(p.FetchNanos[t])
	}
	l.OnSlowRead(e)
}
