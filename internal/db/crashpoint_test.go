package db

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"rocksmash/internal/storage"
)

// crashOptions returns the geometry used by the crash-point runs: synced WAL
// so every acknowledged Put is durable at the moment it is acknowledged.
func crashOptions(dir string) Options {
	o := testOptions(PolicyCloudOnly)
	o.WALSync = true
	o.pcacheDir = filepath.Join(dir, "pcache")
	return o
}

// TestCrashPointRecovery kills all storage I/O — local and cloud alike — at
// a randomized operation index while a write workload (with periodic
// flushes) runs, crashes the DB, reopens it against clean backends on the
// same directories, and verifies every acknowledged write survived. Each
// seed picks a different crash point, sweeping the fault across WAL
// appends, flush uploads, manifest edits and compactions.
func TestCrashPointRecovery(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 15
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(int64(seed)*7919 + 1))
			crashAt := int64(5 + rng.Intn(400))

			local, err := storage.NewLocal(filepath.Join(dir, "local"))
			if err != nil {
				t.Fatal(err)
			}
			o := crashOptions(dir)
			cloud, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
			if err != nil {
				t.Fatal(err)
			}
			fl := storage.NewFaulty(local, storage.FaultConfig{})
			fc := storage.NewFaulty(cloud, storage.FaultConfig{})
			var ops atomic.Int64
			dead := func(op, name string) error {
				if ops.Add(1) > crashAt {
					return errors.New("crash point reached")
				}
				return nil
			}
			fl.SetHook(dead)
			fc.SetHook(dead)

			// Write until the crash point bites; every Put that returned nil
			// is an acknowledged, synced write and must survive.
			acked := map[string]string{}
			d, err := Open(o, fl, fc)
			if err == nil {
				for i := 0; i < 500; i++ {
					k := fmt.Sprintf("k%04d", i)
					v := pipelineValue(i)
					if perr := d.Put([]byte(k), []byte(v)); perr != nil {
						break
					}
					acked[k] = v
					if i%37 == 36 {
						if ferr := d.Flush(); ferr != nil {
							break
						}
					}
				}
				d.Crash()
			}

			// Reopen against clean backends on the same directories: recovery
			// must replay the WAL, reconcile the manifest and sweep orphans.
			local2, err := storage.NewLocal(filepath.Join(dir, "local"))
			if err != nil {
				t.Fatal(err)
			}
			cloud2, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := Open(crashOptions(dir), local2, cloud2)
			if err != nil {
				t.Fatalf("crashAt=%d acked=%d: reopen after crash: %v", crashAt, len(acked), err)
			}
			defer d2.Close()
			for k, v := range acked {
				got, gerr := d2.Get([]byte(k))
				if gerr != nil {
					t.Fatalf("crashAt=%d: acked key %s lost: %v", crashAt, k, gerr)
				}
				if string(got) != v {
					t.Fatalf("crashAt=%d: acked key %s corrupted", crashAt, k)
				}
			}
		})
	}
}

// TestCrashPointRecoveryConcurrentWriters is the crash-point sweep over the
// commit pipeline's group-commit path: several writers commit concurrently
// (so the WAL carries coalesced groups with shared fsyncs) when storage
// dies at a randomized operation index. A Put acked by a group leader's
// synced AppendBatch must survive the crash regardless of which group it
// rode in. Writers keep per-writer acked maps so group boundaries don't
// matter to the check.
func TestCrashPointRecoveryConcurrentWriters(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	const writers = 4
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(int64(seed)*104729 + 3))
			crashAt := int64(10 + rng.Intn(500))

			local, err := storage.NewLocal(filepath.Join(dir, "local"))
			if err != nil {
				t.Fatal(err)
			}
			o := crashOptions(dir)
			cloud, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
			if err != nil {
				t.Fatal(err)
			}
			fl := storage.NewFaulty(local, storage.FaultConfig{})
			fc := storage.NewFaulty(cloud, storage.FaultConfig{})
			var ops atomic.Int64
			dead := func(op, name string) error {
				if ops.Add(1) > crashAt {
					return errors.New("crash point reached")
				}
				return nil
			}
			fl.SetHook(dead)
			fc.SetHook(dead)

			ackedBy := make([]map[string]string, writers)
			d, err := Open(o, fl, fc)
			if err == nil {
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					ackedBy[w] = map[string]string{}
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < 200; i++ {
							k := fmt.Sprintf("w%d-k%04d", w, i)
							v := pipelineValue(w*1000 + i)
							if perr := d.Put([]byte(k), []byte(v)); perr != nil {
								return
							}
							ackedBy[w][k] = v
						}
					}(w)
				}
				wg.Wait()
				d.Crash()
			}

			local2, err := storage.NewLocal(filepath.Join(dir, "local"))
			if err != nil {
				t.Fatal(err)
			}
			cloud2, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := Open(crashOptions(dir), local2, cloud2)
			if err != nil {
				t.Fatalf("crashAt=%d: reopen after crash: %v", crashAt, err)
			}
			defer d2.Close()
			for w := range ackedBy {
				for k, v := range ackedBy[w] {
					got, gerr := d2.Get([]byte(k))
					if gerr != nil {
						t.Fatalf("crashAt=%d: acked key %s lost: %v", crashAt, k, gerr)
					}
					if string(got) != v {
						t.Fatalf("crashAt=%d: acked key %s corrupted", crashAt, k)
					}
				}
			}
		})
	}
}
