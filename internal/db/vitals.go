package db

import (
	"time"

	"rocksmash/internal/readprof"
	"rocksmash/internal/vitals"
)

// Vitals bridges the engine to the internal/vitals time-series sampler:
// when Options.VitalsInterval > 0, the DB (or the facade, in a sharded
// store) runs one background sampler whose snapshot closure condenses
// Metrics() into a vitals.Sample. With the interval at 0 (the default)
// nothing starts: d.vit stays nil, Vitals() returns nil, and the write
// and read hot paths never see a vitals instruction.

// Vitals returns the time-series sampler, or nil when
// Options.VitalsInterval is 0. The sampler remains readable (but frozen)
// after Close.
func (d *DB) Vitals() *vitals.Sampler { return d.vit }

// startVitals launches the sampler; the caller has fully initialized d.
// With the flight recorder on, the sampler's snapshot closure also feeds
// each sample to the anomaly detector, so detection ticks at exactly the
// vitals cadence with no goroutine of its own.
func (d *DB) startVitals() {
	if d.opts.VitalsInterval <= 0 {
		return
	}
	snap := d.VitalsSample
	if d.flight != nil {
		snap = func() vitals.Sample {
			s := d.VitalsSample()
			d.flightObserve(s)
			return s
		}
	}
	d.vit = vitals.NewSampler(d.opts.VitalsInterval, d.opts.VitalsHistory, snap)
}

// stopVitals halts the sampler goroutine; safe when vitals never started.
func (d *DB) stopVitals() {
	if d.vit != nil {
		d.vit.Stop()
	}
}

// VitalsSample condenses the current Metrics into one time-series point —
// the same snapshot the background sampler records. Exported so harnesses
// and tuners can pin samples to their own boundaries (phase edges) and
// vitals.Derive exact windows between them, independent of the sampler's
// cadence (or with sampling off entirely).
func (d *DB) VitalsSample() vitals.Sample {
	m := d.Metrics()
	s := vitals.Sample{
		UnixNano: time.Now().UnixNano(),

		Reads:              m.Reads,
		Writes:             m.Writes,
		BytesWritten:       m.BytesWritten,
		WriteStalls:        m.WriteStalls,
		Flushes:            m.Flushes,
		FlushBytes:         m.FlushBytes,
		Compactions:        m.Compactions,
		CompactBytesIn:     m.CompactBytesIn,
		CompactBytesOut:    m.CompactBytesOut,
		CommitGroups:       m.CommitGroups,
		CommitGroupBatches: m.CommitGroupBatches,

		BlockHits:    m.BlockCacheHits,
		BlockMisses:  m.BlockCacheMisses,
		PCacheHits:   m.PCacheHits,
		PCacheMisses: m.PCacheMisses,

		LocalGetOps:     m.LocalIO.GetOps,
		LocalPutOps:     m.LocalIO.PutOps,
		LocalReadBytes:  m.LocalIO.BytesRead,
		LocalWriteBytes: m.LocalIO.BytesWrite,
		CloudGetOps:     m.CloudIO.GetOps,
		CloudPutOps:     m.CloudIO.PutOps,
		CloudReadBytes:  m.CloudIO.BytesRead,
		CloudWriteBytes: m.CloudIO.BytesWrite,

		ProfiledGets:    m.ReadAmp.ProfiledGets,
		ReadBlocks:      m.ReadAmp.BlocksTotal(),
		ReadBlocksCloud: m.ReadAmp.Blocks[readprof.TierCloud],

		ScanViewHits:   m.ScanViewHits,
		ScanViewMisses: m.ScanViewMisses,
		ViewBuilds:     m.ViewBuilds,
		IterKeys:       m.IterKeys,

		LocalBytes:     m.LocalBytes,
		CloudBytes:     m.CloudBytes,
		CompactionDebt: m.CompactionDebt,
		SpaceAmp:       m.SpaceAmp,
		PendingTables:  m.PendingTables,
		PendingBytes:   m.PendingBytes,
		Breaker:        m.BreakerState,

		LocalBreaker:        m.LocalBreakerState,
		MisplacedTables:     m.MisplacedTables,
		LocalDegradedTables: m.LocalDegradedTables,
		LocalDrainedBack:    m.LocalDrainedBack,
		CorruptionsDetected: m.CorruptionsDetected,
		CorruptionsRepaired: m.CorruptionsRepaired,

		CostStorageMonthly: m.CloudCost.StorageCost,
		CostRequest:        m.CloudCost.RequestCost,
		CostEgress:         m.CloudCost.EgressCost,

		GetP99Nanos:        m.GetLat.P99.Nanoseconds(),
		IncidentsTriggered: m.IncidentsTriggered,
	}
	s.LevelFiles = append(s.LevelFiles, m.LevelFiles...)
	for _, b := range m.LevelBytes {
		s.LevelBytes = append(s.LevelBytes, int64(b))
	}
	for _, lw := range m.LevelWriteAmp {
		s.LevelBytesIn = append(s.LevelBytesIn, lw.BytesInSource+lw.BytesInTarget)
		s.LevelBytesOut = append(s.LevelBytesOut, lw.BytesOut)
	}
	s.LevelServes = append(s.LevelServes, m.ReadAmp.LevelServes[:]...)
	s.LevelProbes = append(s.LevelProbes, m.ReadAmp.LevelProbes[:]...)
	for _, b := range m.ReadAmp.IterBlocks {
		s.IterBlocks += b
	}
	if len(m.Shards) > 1 {
		s.ShardOps = make([]int64, len(m.Shards))
		for i, sh := range m.Shards {
			s.ShardOps[i] = sh.Writes + sh.Reads
		}
	}
	return s
}
