package db

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"rocksmash/internal/manifest"
	"rocksmash/internal/memtable"
	"rocksmash/internal/pcache"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
)

// memWriter buffers a table being built so the finished bytes can be
// uploaded as one object and, when warranted, warmed into the persistent
// cache without a round trip back to the cloud.
type memWriter struct {
	buf bytes.Buffer
}

func (w *memWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }
func (w *memWriter) Sync() error                 { return nil }
func (w *memWriter) Close() error                { return nil }

// bytesReader adapts a byte slice to storage.Reader.
type bytesReader struct {
	data []byte
}

func (r bytesReader) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(r.data)) {
		return 0, io.EOF
	}
	n := copy(p, r.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}
func (r bytesReader) Size() int64  { return int64(len(r.data)) }
func (r bytesReader) Close() error { return nil }

// builtTable is a finished, not-yet-installed table.
type builtTable struct {
	meta    manifest.FileMetadata
	metaOff uint64 // offset of the metadata tail within data
	data    []byte
}

// metaSidecarName is the local object holding a cloud table's metadata
// tail (filter + index + properties + footer).
func metaSidecarName(num uint64) string { return fmt.Sprintf("meta/%06d.meta", num) }

// uploadTable writes the table object to its tier's backend. Cloud uploads
// go through the Reliable wrapper (retry policy + circuit breaker); the
// backoff waits abort when the DB closes mid-outage. For cloud-tier tables
// the metadata tail is additionally persisted on local storage so future
// opens never fetch metadata from the cloud.
//
// When a cloud upload exhausts its retries (or the breaker is open) and
// degraded mode is enabled, the table is landed on *local* storage instead
// and marked PendingCloud in its metadata: the flush or compaction
// succeeds, acked writes stay durable, and the background drainer migrates
// the file to the cloud once the breaker closes. t.meta.Tier reflects
// where the table actually landed when uploadTable returns.
func (d *DB) uploadTable(t *builtTable) error {
	name := manifest.TableName(t.meta.Num)
	start := time.Now()
	if t.meta.Tier != storage.TierCloud {
		// Local landing, guarded by the local breaker. While it is open the
		// local attempt is skipped entirely (fail fast, no doomed write);
		// when half-open the write doubles as the recovery probe.
		var lerr error
		if d.localBreaker.Allow() {
			lerr = storage.WriteObject(d.local, name, t.data)
			if lerr == nil {
				d.localBreaker.Success()
				d.evTableUploaded(t.meta.Num, t.meta.Tier, int64(t.meta.Size), 1, time.Since(start), false)
				return nil
			}
			d.localBreaker.Failure()
		}
		if d.opts.DisableLocalDegradedMode || d.cloud == nil {
			if lerr == nil {
				lerr = storage.ErrLocalUnavailable
			}
			return lerr
		}
		// Local-degraded landing: the table goes cloud-direct. It is marked
		// neither PendingCloud (it is already durable at its final backend)
		// nor local-tier — the drainer migrates it back by its misplaced
		// level once the breaker closes.
		attempts, cerr := d.cloudPut(name, t.data)
		if cerr != nil {
			if lerr == nil {
				return fmt.Errorf("db: cloud-direct landing with local breaker open: %w", cerr)
			}
			return fmt.Errorf("db: cloud-direct landing after local failure (%v): %w", lerr, cerr)
		}
		// The sidecar write targets the failing local device; tolerate its
		// loss — overlayMetadata rebuilds it from the cloud object's tail.
		_ = d.writeMetaSidecar(t.meta.Num, t.metaOff, t.data[t.metaOff:])
		t.meta.Tier = storage.TierCloud
		d.stats.LocalDegradedTables.Add(1)
		d.evTableUploaded(t.meta.Num, t.meta.Tier, int64(t.meta.Size), attempts, time.Since(start), true)
		return nil
	}
	attempts, err := d.cloudPut(name, t.data)
	if err == nil {
		// The sidecar is a rebuildable cache of the object's metadata tail
		// (overlayMetadata recreates it at the next open): losing it must not
		// fail a flush whose data is already durable in the cloud. Routing it
		// through the local breaker lets a failing device trip degradation.
		if d.localBreaker.Allow() {
			if serr := d.writeMetaSidecar(t.meta.Num, t.metaOff, t.data[t.metaOff:]); serr != nil {
				d.localBreaker.Failure()
			} else {
				d.localBreaker.Success()
			}
		}
		d.evTableUploaded(t.meta.Num, t.meta.Tier, int64(t.meta.Size), attempts, time.Since(start), false)
		return nil
	}
	if d.opts.DisableDegradedMode {
		return err
	}
	if lerr := storage.WriteObject(d.local, name, t.data); lerr != nil {
		// Both tiers failing is a real wedge; surface the local error with
		// the cloud failure that forced the degraded landing.
		return fmt.Errorf("db: degraded landing after cloud failure (%v): %w", err, lerr)
	}
	t.meta.Tier = storage.TierLocal
	t.meta.PendingCloud = true
	d.stats.DegradedTables.Add(1)
	d.evTableUploaded(t.meta.Num, t.meta.Tier, int64(t.meta.Size), attempts, time.Since(start), true)
	return nil
}

// cloudPut uploads one whole object to the cloud tier under the retry
// policy, reporting how many attempts ran.
func (d *DB) cloudPut(name string, data []byte) (attempts int, err error) {
	if d.cloudRel != nil {
		return d.cloudRel.WriteObject(name, data)
	}
	return 1, storage.WriteObject(d.cloud, name, data)
}

// writeMetaSidecar persists a table's metadata tail locally:
// [tailOff uint64 LE][tail bytes].
func (d *DB) writeMetaSidecar(num uint64, tailOff uint64, tail []byte) error {
	buf := make([]byte, 8+len(tail))
	binary.LittleEndian.PutUint64(buf, tailOff)
	copy(buf[8:], tail)
	return storage.WriteObject(d.local, metaSidecarName(num), buf)
}

// readMetaSidecar loads a table's locally cached metadata tail.
func (d *DB) readMetaSidecar(num uint64) (tailOff uint64, tail []byte, err error) {
	buf, err := d.local.ReadAll(metaSidecarName(num))
	if err != nil {
		return 0, nil, err
	}
	if len(buf) < 8 {
		return 0, nil, storage.ErrNotFound
	}
	return binary.LittleEndian.Uint64(buf), buf[8:], nil
}

// warmPCache admits every data block of a freshly built cloud table into
// the persistent cache (compaction inheritance / flush write-through).
func (d *DB) warmPCache(t *builtTable) error {
	r, err := sstable.Open(bytesReader{t.data}, t.meta.Num)
	if err != nil {
		return err
	}
	defer r.Close()
	handles, err := r.DataHandles()
	if err != nil {
		return err
	}
	blocks := make([]pcache.Block, 0, len(handles))
	for _, h := range handles {
		body, err := sstable.ReadRawBlock(bytesReader{t.data}, h)
		if err != nil {
			return err
		}
		blocks = append(blocks, pcache.Block{Off: h.Offset, Body: body})
	}
	d.pcache.PutBulk(t.meta.Num, blocks)
	return nil
}

// flushMemtable builds an L0 table from imm plus any memtables rebuilt by
// WAL recovery, and installs it. imm may be nil (recovery-only flush).
func (d *DB) flushMemtable(imm *memtable.MemTable) error {
	d.mu.Lock()
	rec := d.takeRecoveredLocked()
	d.updateReadStateLocked()
	d.mu.Unlock()

	// The memtable was sealed under d.mu, after which no commit group can
	// register new appliers against it; wait out the ones already in
	// flight so the flush iterator sees every acked write.
	if imm != nil {
		imm.WaitWriters()
	}

	var children []internalIterator
	if imm != nil && !imm.Empty() {
		children = append(children, &memIter{imm.NewIterator()})
	}
	for _, m := range rec {
		if !m.Empty() {
			children = append(children, &memIter{m.NewIterator()})
		}
	}
	if len(children) == 0 {
		return nil
	}
	reason := "memtable"
	if imm == nil || imm.Empty() {
		reason = "recovery"
	}
	d.evFlushBegin(reason)
	flushStart := time.Now()
	restoreOnError := func() {
		if len(rec) == 0 {
			return
		}
		d.mu.Lock()
		d.recovered = append(rec, d.recovered...)
		d.updateReadStateLocked()
		d.mu.Unlock()
	}

	num := d.vs.NewFileNum()
	tier := d.opts.tierForLevel(0)

	w := &memWriter{}
	b := sstable.NewBuilder(w, sstable.BuilderOptions{
		BlockBytes:      d.opts.BlockBytes,
		BloomBitsPerKey: d.opts.BloomBitsPerKey,
		Compression:     d.opts.Compression,
	})
	it := newMergingIter(children...)
	for it.First(); it.Valid(); it.Next() {
		if err := b.Add(it.Key(), it.Value()); err != nil {
			restoreOnError()
			return err
		}
	}
	if err := it.Err(); err != nil {
		restoreOnError()
		return err
	}
	props, err := b.Finish()
	if err != nil {
		restoreOnError()
		return err
	}
	t := &builtTable{
		meta: manifest.FileMetadata{
			Num:      num,
			Size:     uint64(w.buf.Len()),
			Smallest: props.Smallest,
			Largest:  props.Largest,
			MinSeq:   props.MinSeq,
			MaxSeq:   props.MaxSeq,
			Tier:     tier,
		},
		metaOff: b.MetaOffset(),
		data:    w.buf.Bytes(),
	}
	if err := d.uploadTable(t); err != nil {
		restoreOnError()
		return fmt.Errorf("db: flush upload: %w", err)
	}
	// uploadTable may have landed the table locally (degraded mode); trust
	// the metadata, not the intended tier, from here on.
	if t.meta.Tier == storage.TierCloud && d.opts.Policy == PolicyMash {
		// Fresh L0 data is by definition hot; write it through to the
		// persistent cache so first reads don't pay a cloud round trip.
		if err := d.warmPCache(t); err != nil {
			restoreOnError()
			return err
		}
	}

	edit := &manifest.VersionEdit{
		Added:         []manifest.AddedFile{{Level: 0, Meta: t.meta}},
		HasFlushedSeq: true,
		FlushedSeq:    props.MaxSeq,
		HasLastSeq:    true,
		LastSeq:       d.lastSeq.Load(),
	}
	if err := d.vs.LogAndApply(edit); err != nil {
		restoreOnError()
		return err
	}
	d.pcache.SetLevel(t.meta.Num, 0)
	d.stats.Flushes.Add(1)
	d.stats.FlushBytes.Add(int64(t.meta.Size))
	// Sequence numbers up to FlushedSeq are durable in tables: the WAL
	// segments covering them can go (eWAL GC). GC is deferred, not fatal —
	// a segment whose delete fails (an open breaker retiring its cloud
	// backup, say) stays indexed for the next flush to retry; wedging the
	// shard over retired-log cleanup would turn a cloud blip into a
	// permanent write stall.
	if err := d.wal.DeleteObsolete(d.vs.FlushedSeq()); err != nil {
		d.stats.DeferredDeletes.Add(1)
		d.evCloudRetry("DELETE", "wal-gc", 0, err)
	}
	dur := time.Since(flushStart)
	d.lat.flush.Record(dur)
	d.evFlushEnd(t.meta.Num, int64(t.meta.Size), t.meta.Tier, dur)
	return nil
}
