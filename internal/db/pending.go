package db

import (
	"time"

	"rocksmash/internal/manifest"
	"rocksmash/internal/retry"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
)

// This file implements the degraded-mode machinery behind the cloud
// fault-tolerance layer:
//
//   - the pending-upload drainer, which migrates tables landed on local
//     storage during an outage (FileMetadata.PendingCloud) to the cloud
//     tier once the circuit breaker closes;
//   - the deferred-delete queue, which retries object deletions that
//     failed during compaction retirement (the version no longer
//     references them, so losing a delete must not fail the compaction);
//   - the orphan sweep at Open, which removes table objects no version
//     references (crash between an object write and its manifest edit).
//
// Invariants:
//
//   - A PendingCloud file is always on TierLocal and readable locally; the
//     manifest never references a cloud object that is not durable.
//   - Migration is atomic in the manifest: one edit deletes the local
//     entry and re-adds it as TierCloud with the flag cleared, applied
//     only after the cloud object and its metadata sidecar are durable.
//   - The drainer is the only mutator of a file's tier, and it re-verifies
//     the file is still live under compactionMu before the edit, so a
//     concurrent compaction can never resurrect a retired table.

// deferredDelete is an object deletion that failed and awaits retry.
type deferredDelete struct {
	tier storage.Tier
	name string
}

// deferDelete queues an object deletion for the drainer to retry.
func (d *DB) deferDelete(tier storage.Tier, name string) {
	d.deferredMu.Lock()
	d.deferred = append(d.deferred, deferredDelete{tier: tier, name: name})
	d.deferredMu.Unlock()
	d.stats.DeferredDeletes.Add(1)
}

// onCloudRetry is the Reliable wrapper's retry observer: it keeps the
// per-direction retry counters and fires the CloudRetry event.
func (d *DB) onCloudRetry(op, name string, attempt int, err error, delay time.Duration) {
	if op == "put" {
		d.stats.UploadRetries.Add(1)
	} else {
		d.stats.ReadRetries.Add(1)
	}
	d.evCloudRetry(op, name, attempt, err)
}

// onBreakerChange observes circuit-breaker transitions: it mirrors them
// into stats and events, and nudges the drainer when the cloud recovers so
// the pending backlog starts migrating immediately.
func (d *DB) onBreakerChange(from, to retry.State) {
	switch to {
	case retry.StateOpen:
		d.stats.BreakerTrips.Add(1)
	case retry.StateHalfOpen:
		d.stats.BreakerHalfOpens.Add(1)
	case retry.StateClosed:
		select {
		case d.drainWake <- struct{}{}:
		default:
		}
		// Compactions deferred during the outage can run again.
		d.scheduleWork()
	}
	d.evBreakerState("cloud", from.String(), to.String())
}

// onLocalBreakerChange is the local tier's twin of onBreakerChange: trips
// and half-opens mirror into stats, and the close transition wakes the
// drainer so misplaced tables start migrating back immediately.
func (d *DB) onLocalBreakerChange(from, to retry.State) {
	switch to {
	case retry.StateOpen:
		d.stats.LocalBreakerTrips.Add(1)
	case retry.StateHalfOpen:
		d.stats.LocalBreakerHalfOpens.Add(1)
	case retry.StateClosed:
		select {
		case d.drainWake <- struct{}{}:
		default:
		}
		d.scheduleWork()
	}
	d.evBreakerState("local", from.String(), to.String())
}

// drainLoop runs until shutdown, retrying deferred deletes and migrating
// pending-upload tables. Each round is also the outage probe: the first
// cloud request either passes (half-open probe admitted) or fails fast
// with ErrCloudUnavailable, so recovery needs no foreground traffic.
func (d *DB) drainLoop() {
	defer close(d.drainDone)
	ticker := time.NewTicker(d.opts.PendingDrainInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.bgQuit:
			return
		case <-ticker.C:
		case <-d.drainWake:
		}
		d.drainDeferredDeletes()
		if d.cloudRel != nil {
			d.drainPending()
			// While the local breaker is open the drain-back fails fast
			// without touching the cloud; once the cooldown elapses the
			// round itself carries the recovery probe (drainBackOne's local
			// write), so recovery needs no foreground traffic.
			if d.localBreaker.State() != retry.StateOpen || d.localBreaker.ProbeDue() {
				d.drainMisplaced()
			}
			d.mirrorLocals()
		}
	}
}

// drainDeferredDeletes retries queued deletions, re-queueing failures.
func (d *DB) drainDeferredDeletes() {
	d.deferredMu.Lock()
	q := d.deferred
	d.deferred = nil
	d.deferredMu.Unlock()
	if len(q) == 0 {
		return
	}
	var keep []deferredDelete
	for _, dd := range q {
		if err := d.backendFor(dd.tier).Delete(dd.name); err != nil {
			keep = append(keep, dd)
		}
	}
	if len(keep) > 0 {
		d.deferredMu.Lock()
		d.deferred = append(keep, d.deferred...)
		d.deferredMu.Unlock()
	}
}

// pendingFile locates one PendingCloud file in a version snapshot.
type pendingFile struct {
	level int
	meta  manifest.FileMetadata
}

func (d *DB) nextPending() *pendingFile {
	var out *pendingFile
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		if out == nil && f.PendingCloud {
			out = &pendingFile{level: level, meta: *f}
		}
	})
	return out
}

// drainPending migrates pending tables one at a time until the backlog is
// empty or the cloud stops cooperating.
func (d *DB) drainPending() {
	for {
		select {
		case <-d.bgQuit:
			return
		default:
		}
		p := d.nextPending()
		if p == nil {
			return
		}
		if !d.drainOne(p.level, p.meta) {
			return
		}
	}
}

// drainOne uploads one pending table to the cloud and installs the tier
// change. It returns false when the round should stop (cloud still down,
// shutdown, manifest failure) and true when the drainer may continue with
// the next candidate.
func (d *DB) drainOne(level int, meta manifest.FileMetadata) bool {
	name := manifest.TableName(meta.Num)
	start := time.Now()
	data, err := d.local.ReadAll(name)
	if err != nil {
		// The table vanished: a concurrent compaction retired it between the
		// version snapshot and now. The next round sees the fresh version.
		return true
	}
	attempts, err := d.cloudPut(name, data)
	if err != nil {
		// Cloud still unreachable (breaker open fails fast); try next tick.
		return false
	}
	tailOff, tail, err := sstable.MetaTail(bytesReader{data})
	if err == nil {
		err = d.writeMetaSidecar(meta.Num, tailOff, tail)
	}
	if err != nil {
		_ = d.cloud.Delete(name)
		return false
	}

	// Install the migration, re-verifying liveness under compactionMu so a
	// concurrent compaction cannot retire the file between our check and
	// the manifest append (LogAndApply persists before applying, so a
	// conflicting edit must be impossible, not merely detected).
	d.compactionMu.Lock()
	live := false
	for _, f := range d.vs.Current().Levels[level] {
		if f.Num == meta.Num && f.PendingCloud {
			live = true
			break
		}
	}
	if !live {
		d.compactionMu.Unlock()
		// Compacted away mid-drain: the cloud copy and sidecar are orphans.
		_ = d.cloud.Delete(name)
		_ = d.local.Delete(metaSidecarName(meta.Num))
		return true
	}
	newMeta := meta
	newMeta.Tier = storage.TierCloud
	newMeta.PendingCloud = false
	err = d.vs.LogAndApply(&manifest.VersionEdit{
		Deleted: []manifest.DeletedFile{{Level: level, Num: meta.Num}},
		Added:   []manifest.AddedFile{{Level: level, Meta: newMeta}},
	})
	d.compactionMu.Unlock()
	if err != nil {
		// Manifest I/O failure is a local-tier problem; wedge like any
		// other background failure.
		d.mu.Lock()
		if d.bgErr == nil {
			d.bgErr = err
		}
		d.immWake.Broadcast()
		d.mu.Unlock()
		return false
	}

	// The handle cached for the local file must be reopened against the
	// cloud tier (with its sidecar overlay) on next use. Block-cache
	// entries are content-identical and stay valid.
	d.tables.evict(meta.Num)
	if err := d.local.Delete(name); err != nil {
		d.deferDelete(storage.TierLocal, name)
	}
	if d.opts.Policy == PolicyMash {
		// Keep the just-migrated data warm: it was serving reads locally a
		// moment ago and must not fall off a latency cliff.
		_ = d.warmPCache(&builtTable{meta: newMeta, metaOff: tailOff, data: data})
	}
	d.stats.DrainedTables.Add(1)
	d.evTableUploaded(meta.Num, storage.TierCloud, int64(meta.Size), attempts, time.Since(start), false)
	return true
}

// nextMisplaced locates one misplaced file: a table sitting on the cloud
// tier whose level belongs to the local tier under the placement policy —
// the footprint of a cloud-direct landing during local degradation.
func (d *DB) nextMisplaced() *pendingFile {
	var out *pendingFile
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		if out == nil && d.isMisplaced(level, f) {
			out = &pendingFile{level: level, meta: *f}
		}
	})
	return out
}

func (d *DB) isMisplaced(level int, f *manifest.FileMetadata) bool {
	return f.Tier == storage.TierCloud && !f.PendingCloud &&
		d.opts.tierForLevel(level) == storage.TierLocal
}

// drainMisplaced migrates misplaced tables back to local storage one at a
// time until the backlog is empty or either tier stops cooperating.
func (d *DB) drainMisplaced() {
	for {
		select {
		case <-d.bgQuit:
			return
		default:
		}
		p := d.nextMisplaced()
		if p == nil {
			return
		}
		if !d.drainBackOne(p.level, p.meta) {
			return
		}
	}
}

// drainBackOne copies one misplaced table's bytes back to local storage and
// installs the tier change, mirroring drainOne's liveness discipline. The
// local write doubles as the local breaker's recovery probe: it runs only
// when Allow() admits it, and its outcome is reported back.
func (d *DB) drainBackOne(level int, meta manifest.FileMetadata) bool {
	name := manifest.TableName(meta.Num)
	data, err := d.cloud.ReadAll(name)
	if err != nil {
		// Cloud unreachable (or the object vanished with its table mid-race);
		// stop the round and let the next tick re-evaluate the fresh version.
		return false
	}
	if !d.localBreaker.Allow() {
		return false
	}
	if err := storage.WriteObject(d.local, name, data); err != nil {
		d.localBreaker.Failure()
		return false
	}
	d.localBreaker.Success()

	d.compactionMu.Lock()
	live := false
	for _, f := range d.vs.Current().Levels[level] {
		if f.Num == meta.Num && f.Tier == storage.TierCloud {
			live = true
			break
		}
	}
	if !live {
		d.compactionMu.Unlock()
		// Compacted away mid-drain: the fresh local copy is an orphan.
		_ = d.local.Delete(name)
		return true
	}
	newMeta := meta
	newMeta.Tier = storage.TierLocal
	err = d.vs.LogAndApply(&manifest.VersionEdit{
		Deleted: []manifest.DeletedFile{{Level: level, Num: meta.Num}},
		Added:   []manifest.AddedFile{{Level: level, Meta: newMeta}},
	})
	d.compactionMu.Unlock()
	if err != nil {
		d.mu.Lock()
		if d.bgErr == nil {
			d.bgErr = err
		}
		d.immWake.Broadcast()
		d.mu.Unlock()
		return false
	}

	// Reopen against the local tier on next use; the sidecar is no longer
	// referenced (local-tier tables carry their metadata in-file).
	d.tables.evict(meta.Num)
	if err := d.local.Delete(metaSidecarName(meta.Num)); err != nil {
		d.deferDelete(storage.TierLocal, metaSidecarName(meta.Num))
	}
	if d.opts.MirrorLocalLevels {
		// The cloud object we just copied from is a byte-identical mirror of
		// the new local table; keep it as the repair source.
		d.markMirrored(meta.Num)
	} else if err := d.cloud.Delete(name); err != nil {
		d.deferDelete(storage.TierCloud, name)
	}
	d.stats.LocalDrainedBack.Add(1)
	return true
}

// markMirrored / isMirrored / dropMirror track which local-tier tables have
// a byte-identical cloud copy. dropMirror reports whether the table was
// mirrored, so compaction retirement knows to delete the cloud object.
func (d *DB) markMirrored(num uint64) {
	d.mirrorMu.Lock()
	d.mirrored[num] = true
	d.mirrorMu.Unlock()
}

func (d *DB) isMirrored(num uint64) bool {
	d.mirrorMu.Lock()
	defer d.mirrorMu.Unlock()
	return d.mirrored[num]
}

func (d *DB) dropMirror(num uint64) bool {
	d.mirrorMu.Lock()
	defer d.mirrorMu.Unlock()
	if !d.mirrored[num] {
		return false
	}
	delete(d.mirrored, num)
	return true
}

// mirrorLocals lazily uploads local-tier tables to the cloud so every table
// has a repair source (Options.MirrorLocalLevels). It rides the drainer —
// strictly off the write path — and verifies each table's checksums before
// upload so a mirror is never seeded from already-damaged bytes.
func (d *DB) mirrorLocals() {
	if !d.opts.MirrorLocalLevels {
		return
	}
	var cands []uint64
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		if f.Tier == storage.TierLocal && !f.PendingCloud &&
			!d.isMirrored(f.Num) && !d.isQuarantined(f.Num) {
			cands = append(cands, f.Num)
		}
	})
	for _, num := range cands {
		select {
		case <-d.bgQuit:
			return
		default:
		}
		name := manifest.TableName(num)
		data, err := d.local.ReadAll(name)
		if err != nil {
			continue // retired mid-round; the next round sees the fresh version
		}
		if err := d.verifyTableBytes(data, num); err != nil {
			// Never poison the mirror: the read path and scrubber classify
			// the damage through their own channels.
			continue
		}
		if _, err := d.cloudPut(name, data); err != nil {
			return // cloud uncooperative; next tick
		}
		// A compaction may have retired the table mid-upload, in which case
		// its retirement already passed dropMirror (a no-op then) and the
		// fresh cloud object is an orphan until the next Open's sweep.
		live := false
		d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
			if f.Num == num && f.Tier == storage.TierLocal {
				live = true
			}
		})
		if !live {
			if err := d.cloud.Delete(name); err != nil {
				d.deferDelete(storage.TierCloud, name)
			}
			continue
		}
		d.markMirrored(num)
		d.stats.MirroredTables.Add(1)
	}
}

// cleanOrphans removes table objects and metadata sidecars that no version
// references: leftovers of a crash between an object write and its
// manifest edit, or of a degraded-mode drain cut short. It runs during
// Open, before background work starts. The cloud sweep is skipped wholesale
// when the cloud is unreachable (the next Open retries it).
func (d *DB) cleanOrphans() {
	localRef := map[string]bool{}
	cloudRef := map[string]bool{}
	sidecarRef := map[string]bool{}
	localNum := map[string]uint64{}
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		name := manifest.TableName(f.Num)
		// Every live table's cloud object is legitimate regardless of tier:
		// cloud-tier primaries, lazy mirrors of local-tier tables, and copies
		// left mid-flight by a drain in either direction.
		cloudRef[name] = true
		if f.Tier == storage.TierCloud {
			sidecarRef[metaSidecarName(f.Num)] = true
		} else {
			localRef[name] = true
			localNum[name] = f.Num
		}
	})
	if names, err := d.local.List("sst/"); err == nil {
		for _, n := range names {
			if !localRef[n] {
				_ = d.local.Delete(n)
			}
		}
	}
	if names, err := d.local.List("meta/"); err == nil {
		for _, n := range names {
			if !sidecarRef[n] {
				_ = d.local.Delete(n)
			}
		}
	}
	// Sorted-view sidecars are valid only when named for the exact current
	// membership of their level; anything else is leftover from a previous
	// run's compactions.
	viewRef := map[string]bool{}
	cur := d.vs.Current()
	for l := 1; l < manifest.NumLevels; l++ {
		if len(cur.Levels[l]) > 0 {
			viewRef[manifest.ViewName(l, manifest.ViewFingerprint(cur.Levels[l]))] = true
		}
	}
	if names, err := d.local.List(manifest.ViewPrefix); err == nil {
		for _, n := range names {
			if !viewRef[n] {
				_ = d.local.Delete(n)
			}
		}
	}
	if d.cloud == nil {
		return
	}
	if names, err := d.cloud.List("sst/"); err == nil {
		for _, n := range names {
			if !cloudRef[n] {
				_ = d.cloud.Delete(n)
			} else if num, ok := localNum[n]; ok {
				// A cloud copy of a live local-tier table is a mirror from a
				// previous run; remember it so the mirror pass skips it and
				// the repair path can trust that a source may exist.
				d.markMirrored(num)
			}
		}
	}
}

// PendingCloudTables reports the degraded-mode backlog: how many tables
// (and bytes) are on local storage awaiting upload to the cloud tier.
func (d *DB) PendingCloudTables() (tables int, bytes int64) {
	if d.shards != nil {
		for _, sh := range d.shards {
			t, b := sh.PendingCloudTables()
			tables += t
			bytes += b
		}
		return tables, bytes
	}
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		if f.PendingCloud {
			tables++
			bytes += int64(f.Size)
		}
	})
	return tables, bytes
}

// BreakerState returns the cloud circuit breaker's position ("closed",
// "open", "half-open"), or "" when the DB has no cloud tier.
func (d *DB) BreakerState() string {
	if d.breaker == nil {
		return ""
	}
	return d.breaker.State().String()
}

// LocalBreakerState returns the local tier's breaker position.
func (d *DB) LocalBreakerState() string {
	if d.localBreaker == nil {
		return ""
	}
	return d.localBreaker.State().String()
}

// MisplacedTables reports how many tables are sitting on the cloud tier
// while their level belongs to the local tier — the drain-back backlog
// left by a local-degraded episode.
func (d *DB) MisplacedTables() int {
	if d.shards != nil {
		n := 0
		for _, sh := range d.shards {
			n += sh.MisplacedTables()
		}
		return n
	}
	n := 0
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		if d.isMisplaced(level, f) {
			n++
		}
	})
	return n
}
