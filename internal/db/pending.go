package db

import (
	"time"

	"rocksmash/internal/manifest"
	"rocksmash/internal/retry"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
)

// This file implements the degraded-mode machinery behind the cloud
// fault-tolerance layer:
//
//   - the pending-upload drainer, which migrates tables landed on local
//     storage during an outage (FileMetadata.PendingCloud) to the cloud
//     tier once the circuit breaker closes;
//   - the deferred-delete queue, which retries object deletions that
//     failed during compaction retirement (the version no longer
//     references them, so losing a delete must not fail the compaction);
//   - the orphan sweep at Open, which removes table objects no version
//     references (crash between an object write and its manifest edit).
//
// Invariants:
//
//   - A PendingCloud file is always on TierLocal and readable locally; the
//     manifest never references a cloud object that is not durable.
//   - Migration is atomic in the manifest: one edit deletes the local
//     entry and re-adds it as TierCloud with the flag cleared, applied
//     only after the cloud object and its metadata sidecar are durable.
//   - The drainer is the only mutator of a file's tier, and it re-verifies
//     the file is still live under compactionMu before the edit, so a
//     concurrent compaction can never resurrect a retired table.

// deferredDelete is an object deletion that failed and awaits retry.
type deferredDelete struct {
	tier storage.Tier
	name string
}

// deferDelete queues an object deletion for the drainer to retry.
func (d *DB) deferDelete(tier storage.Tier, name string) {
	d.deferredMu.Lock()
	d.deferred = append(d.deferred, deferredDelete{tier: tier, name: name})
	d.deferredMu.Unlock()
	d.stats.DeferredDeletes.Add(1)
}

// onCloudRetry is the Reliable wrapper's retry observer: it keeps the
// per-direction retry counters and fires the CloudRetry event.
func (d *DB) onCloudRetry(op, name string, attempt int, err error, delay time.Duration) {
	if op == "put" {
		d.stats.UploadRetries.Add(1)
	} else {
		d.stats.ReadRetries.Add(1)
	}
	d.evCloudRetry(op, name, attempt, err)
}

// onBreakerChange observes circuit-breaker transitions: it mirrors them
// into stats and events, and nudges the drainer when the cloud recovers so
// the pending backlog starts migrating immediately.
func (d *DB) onBreakerChange(from, to retry.State) {
	switch to {
	case retry.StateOpen:
		d.stats.BreakerTrips.Add(1)
	case retry.StateHalfOpen:
		d.stats.BreakerHalfOpens.Add(1)
	case retry.StateClosed:
		select {
		case d.drainWake <- struct{}{}:
		default:
		}
		// Compactions deferred during the outage can run again.
		d.scheduleWork()
	}
	d.evBreakerState(from.String(), to.String())
}

// drainLoop runs until shutdown, retrying deferred deletes and migrating
// pending-upload tables. Each round is also the outage probe: the first
// cloud request either passes (half-open probe admitted) or fails fast
// with ErrCloudUnavailable, so recovery needs no foreground traffic.
func (d *DB) drainLoop() {
	defer close(d.drainDone)
	ticker := time.NewTicker(d.opts.PendingDrainInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.bgQuit:
			return
		case <-ticker.C:
		case <-d.drainWake:
		}
		d.drainDeferredDeletes()
		if d.cloudRel != nil {
			d.drainPending()
		}
	}
}

// drainDeferredDeletes retries queued deletions, re-queueing failures.
func (d *DB) drainDeferredDeletes() {
	d.deferredMu.Lock()
	q := d.deferred
	d.deferred = nil
	d.deferredMu.Unlock()
	if len(q) == 0 {
		return
	}
	var keep []deferredDelete
	for _, dd := range q {
		if err := d.backendFor(dd.tier).Delete(dd.name); err != nil {
			keep = append(keep, dd)
		}
	}
	if len(keep) > 0 {
		d.deferredMu.Lock()
		d.deferred = append(keep, d.deferred...)
		d.deferredMu.Unlock()
	}
}

// pendingFile locates one PendingCloud file in a version snapshot.
type pendingFile struct {
	level int
	meta  manifest.FileMetadata
}

func (d *DB) nextPending() *pendingFile {
	var out *pendingFile
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		if out == nil && f.PendingCloud {
			out = &pendingFile{level: level, meta: *f}
		}
	})
	return out
}

// drainPending migrates pending tables one at a time until the backlog is
// empty or the cloud stops cooperating.
func (d *DB) drainPending() {
	for {
		select {
		case <-d.bgQuit:
			return
		default:
		}
		p := d.nextPending()
		if p == nil {
			return
		}
		if !d.drainOne(p.level, p.meta) {
			return
		}
	}
}

// drainOne uploads one pending table to the cloud and installs the tier
// change. It returns false when the round should stop (cloud still down,
// shutdown, manifest failure) and true when the drainer may continue with
// the next candidate.
func (d *DB) drainOne(level int, meta manifest.FileMetadata) bool {
	name := manifest.TableName(meta.Num)
	start := time.Now()
	data, err := d.local.ReadAll(name)
	if err != nil {
		// The table vanished: a concurrent compaction retired it between the
		// version snapshot and now. The next round sees the fresh version.
		return true
	}
	attempts, err := d.cloudPut(name, data)
	if err != nil {
		// Cloud still unreachable (breaker open fails fast); try next tick.
		return false
	}
	tailOff, tail, err := sstable.MetaTail(bytesReader{data})
	if err == nil {
		err = d.writeMetaSidecar(meta.Num, tailOff, tail)
	}
	if err != nil {
		_ = d.cloud.Delete(name)
		return false
	}

	// Install the migration, re-verifying liveness under compactionMu so a
	// concurrent compaction cannot retire the file between our check and
	// the manifest append (LogAndApply persists before applying, so a
	// conflicting edit must be impossible, not merely detected).
	d.compactionMu.Lock()
	live := false
	for _, f := range d.vs.Current().Levels[level] {
		if f.Num == meta.Num && f.PendingCloud {
			live = true
			break
		}
	}
	if !live {
		d.compactionMu.Unlock()
		// Compacted away mid-drain: the cloud copy and sidecar are orphans.
		_ = d.cloud.Delete(name)
		_ = d.local.Delete(metaSidecarName(meta.Num))
		return true
	}
	newMeta := meta
	newMeta.Tier = storage.TierCloud
	newMeta.PendingCloud = false
	err = d.vs.LogAndApply(&manifest.VersionEdit{
		Deleted: []manifest.DeletedFile{{Level: level, Num: meta.Num}},
		Added:   []manifest.AddedFile{{Level: level, Meta: newMeta}},
	})
	d.compactionMu.Unlock()
	if err != nil {
		// Manifest I/O failure is a local-tier problem; wedge like any
		// other background failure.
		d.mu.Lock()
		if d.bgErr == nil {
			d.bgErr = err
		}
		d.immWake.Broadcast()
		d.mu.Unlock()
		return false
	}

	// The handle cached for the local file must be reopened against the
	// cloud tier (with its sidecar overlay) on next use. Block-cache
	// entries are content-identical and stay valid.
	d.tables.evict(meta.Num)
	if err := d.local.Delete(name); err != nil {
		d.deferDelete(storage.TierLocal, name)
	}
	if d.opts.Policy == PolicyMash {
		// Keep the just-migrated data warm: it was serving reads locally a
		// moment ago and must not fall off a latency cliff.
		_ = d.warmPCache(&builtTable{meta: newMeta, metaOff: tailOff, data: data})
	}
	d.stats.DrainedTables.Add(1)
	d.evTableUploaded(meta.Num, storage.TierCloud, int64(meta.Size), attempts, time.Since(start), false)
	return true
}

// cleanOrphans removes table objects and metadata sidecars that no version
// references: leftovers of a crash between an object write and its
// manifest edit, or of a degraded-mode drain cut short. It runs during
// Open, before background work starts. The cloud sweep is skipped wholesale
// when the cloud is unreachable (the next Open retries it).
func (d *DB) cleanOrphans() {
	localRef := map[string]bool{}
	cloudRef := map[string]bool{}
	sidecarRef := map[string]bool{}
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		name := manifest.TableName(f.Num)
		if f.Tier == storage.TierCloud {
			cloudRef[name] = true
			sidecarRef[metaSidecarName(f.Num)] = true
		} else {
			localRef[name] = true
		}
	})
	if names, err := d.local.List("sst/"); err == nil {
		for _, n := range names {
			if !localRef[n] {
				_ = d.local.Delete(n)
			}
		}
	}
	if names, err := d.local.List("meta/"); err == nil {
		for _, n := range names {
			if !sidecarRef[n] {
				_ = d.local.Delete(n)
			}
		}
	}
	if d.cloud == nil {
		return
	}
	if names, err := d.cloud.List("sst/"); err == nil {
		for _, n := range names {
			if !cloudRef[n] {
				_ = d.cloud.Delete(n)
			}
		}
	}
}

// PendingCloudTables reports the degraded-mode backlog: how many tables
// (and bytes) are on local storage awaiting upload to the cloud tier.
func (d *DB) PendingCloudTables() (tables int, bytes int64) {
	if d.shards != nil {
		for _, sh := range d.shards {
			t, b := sh.PendingCloudTables()
			tables += t
			bytes += b
		}
		return tables, bytes
	}
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		if f.PendingCloud {
			tables++
			bytes += int64(f.Size)
		}
	})
	return tables, bytes
}

// BreakerState returns the cloud circuit breaker's position ("closed",
// "open", "half-open"), or "" when the DB has no cloud tier.
func (d *DB) BreakerState() string {
	if d.breaker == nil {
		return ""
	}
	return d.breaker.State().String()
}
