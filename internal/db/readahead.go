package db

import (
	"sort"
	"sync"

	"rocksmash/internal/cache"
	"rocksmash/internal/pcache"
	"rocksmash/internal/sstable"
)

// Iterator readahead: a scan over a cloud-tier table misses block after
// block in file order, paying one GET's first-byte latency per block. Once
// two consecutive misses land at adjacent offsets the access is treated as
// sequential and escalated: the next miss issues a single range GET covering
// up to IteratorReadaheadBlocks blocks, and the extra blocks are
// bulk-admitted into the persistent cache and block cache so the scan's
// following reads hit locally.

// raState tracks per-table sequential-access detection. It lives on the
// tableHandle so detection spans iterators: a scan that reopens iterators
// per level still reads one table front to back.
type raState struct {
	mu      sync.Mutex
	handles []sstable.Handle // lazily loaded block index
	loaded  bool
	broken  bool // block index unavailable; readahead disabled
	nextOff uint64
	primed  bool // nextOff is valid (guards the offset-0 first read)
}

// tryReadahead serves a cloud-tier block miss with a multi-block range GET
// when the access pattern looks sequential. ok=false means the miss was not
// sequential, the span degenerated to one block, or the span read failed —
// in every case the caller falls back to the normal single-block read, so
// readahead is purely an optimization and never a new failure mode.
func (h *tableHandle) tryReadahead(db *DB, fileNum uint64, hd sstable.Handle, n int) ([]byte, bool) {
	ra := &h.ra
	ra.mu.Lock()
	defer ra.mu.Unlock()
	if ra.broken {
		return nil, false
	}
	if !ra.loaded {
		hs, err := h.reader.DataHandles()
		if err != nil {
			ra.broken = true
			return nil, false
		}
		ra.handles, ra.loaded = hs, true
	}

	sequential := ra.primed && hd.Offset == ra.nextOff
	ra.primed, ra.nextOff = true, hd.End()
	if !sequential {
		return nil, false
	}

	i := sort.Search(len(ra.handles), func(j int) bool {
		return ra.handles[j].Offset >= hd.Offset
	})
	if i == len(ra.handles) || ra.handles[i].Offset != hd.Offset {
		return nil, false
	}
	end := i + n
	if end > len(ra.handles) {
		end = len(ra.handles)
	}
	// PlanSpans clamps the span at any physical gap in the file.
	span := sstable.PlanSpans(ra.handles[i:end], n)[0]
	if len(span) <= 1 {
		return nil, false
	}

	bodies, err := sstable.ReadRawSpan(h.reader.File(), span)
	if err != nil {
		return nil, false
	}
	bulk := make([]pcache.Block, len(span))
	for j, bh := range span {
		bulk[j] = pcache.Block{Off: bh.Offset, Body: bodies[j]}
		db.blockCache.Put(cache.Key{FileNum: fileNum, Offset: bh.Offset}, bodies[j])
	}
	db.pcache.PutBulk(fileNum, bulk)
	ra.nextOff = span[len(span)-1].End()
	db.stats.ReadaheadSpans.Add(1)
	db.stats.ReadaheadBlocks.Add(int64(len(span)))
	return bodies[0], true
}
