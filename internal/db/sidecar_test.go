package db

import (
	"fmt"
	"testing"

	"rocksmash/internal/manifest"
)

// TestMetadataStaysLocal verifies the paper's placement rule: opening a
// cloud-resident table must not fetch metadata (footer/index/filter) from
// the cloud — the sidecar serves it from local storage.
func TestMetadataStaysLocal(t *testing.T) {
	d, _ := openTest(t, PolicyCloudOnly)
	defer d.Close()
	for i := 0; i < 300; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), "some-value-payload")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// Table opens are lazy: the next read opens the cloud table. With the
	// sidecar in place, the only cloud GET should be the data block.
	before := d.cloud.Stats().Snapshot()
	mustGet(t, d, "k00000", "some-value-payload")
	after := d.cloud.Stats().Snapshot()
	gets := after.GetOps - before.GetOps
	if gets > 1 {
		t.Fatalf("opening a cloud table cost %d cloud GETs; metadata should be local", gets)
	}
}

// TestSidecarRebuiltWhenMissing deletes the sidecar (crash window between
// upload and sidecar write) and verifies the table still opens, with the
// sidecar re-persisted for the next open.
func TestSidecarRebuiltWhenMissing(t *testing.T) {
	d, _ := openTest(t, PolicyCloudOnly)
	defer d.Close()
	for i := 0; i < 300; i++ {
		mustPut(t, d, fmt.Sprintf("k%05d", i), "v")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// Find and remove the sidecar(s).
	names, err := d.local.List("meta/")
	if err != nil || len(names) == 0 {
		t.Fatalf("no sidecars written: %v %v", names, err)
	}
	for _, n := range names {
		if err := d.local.Delete(n); err != nil {
			t.Fatal(err)
		}
	}
	// Evict open tables so the next read re-opens them.
	v := d.vs.Current()
	v.AllFiles(func(level int, f *manifest.FileMetadata) { d.tables.evict(f.Num) })

	mustGet(t, d, "k00000", "v")
	rebuilt, err := d.local.List("meta/")
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) == 0 {
		t.Fatal("sidecar not rebuilt after fallback open")
	}
}

// TestSidecarDeletedWithTable verifies compaction retires sidecars along
// with their cloud tables.
func TestSidecarDeletedWithTable(t *testing.T) {
	d, _ := openTest(t, PolicyCloudOnly)
	defer d.Close()
	fillKeys(t, d, 2000, 100)
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	sidecars, err := d.local.List("meta/")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := d.cloud.List("sst/")
	if err != nil {
		t.Fatal(err)
	}
	if len(sidecars) != len(tables) {
		t.Fatalf("sidecars (%d) out of sync with cloud tables (%d)", len(sidecars), len(tables))
	}
	if len(sidecars) == 0 {
		t.Fatal("no tables survived")
	}
}
