package db

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// reverseFixture loads keys across memtable, L0 and deeper levels with
// overwrites and deletions so reverse iteration crosses every source.
func reverseFixture(t *testing.T) (*DB, []string) {
	t.Helper()
	d, _ := openTest(t, PolicyMash)
	t.Cleanup(func() { d.Close() })

	live := map[string]bool{}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key%04d", rng.Intn(600))
		if rng.Intn(6) == 0 {
			if err := d.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(live, k)
		} else {
			mustPut(t, d, k, "v-"+k)
			live[k] = true
		}
		if i == 1000 {
			if err := d.CompactAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Leave the tail of writes in the memtable (no final flush).
	var sorted []string
	for k := range live {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	if len(sorted) < 100 {
		t.Fatal("fixture too small")
	}
	return d, sorted
}

func TestReverseFullScan(t *testing.T) {
	d, sorted := reverseFixture(t)
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := len(sorted) - 1
	for it.Last(); it.Valid(); it.Prev() {
		if i < 0 {
			t.Fatalf("reverse scan yielded extra key %q", it.Key())
		}
		if string(it.Key()) != sorted[i] {
			t.Fatalf("reverse position %d = %q want %q", i, it.Key(), sorted[i])
		}
		if want := "v-" + sorted[i]; string(it.Value()) != want {
			t.Fatalf("reverse value for %q = %q", it.Key(), it.Value())
		}
		i--
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != -1 {
		t.Fatalf("reverse scan stopped early; %d keys unvisited", i+1)
	}
}

func TestSeekForPrev(t *testing.T) {
	d, sorted := reverseFixture(t)
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		target := fmt.Sprintf("key%04d", rng.Intn(700))
		it.SeekForPrev([]byte(target))
		// Reference: last key <= target.
		i := sort.SearchStrings(sorted, target)
		if i < len(sorted) && sorted[i] == target {
			// exact hit
		} else {
			i--
		}
		if i < 0 {
			if it.Valid() {
				t.Fatalf("SeekForPrev(%q) = %q, want invalid", target, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != sorted[i] {
			t.Fatalf("SeekForPrev(%q) = %q (valid=%v), want %q", target, it.Key(), it.Valid(), sorted[i])
		}
	}
}

// TestMixedDirectionFuzz drives the iterator with random moves and checks
// every position against the sorted reference.
func TestMixedDirectionFuzz(t *testing.T) {
	d, sorted := reverseFixture(t)
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	rng := rand.New(rand.NewSource(9))

	pos := -2 // -2 = unpositioned, -1 = before-first/after-last (invalid)
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(6); op {
		case 0:
			it.First()
			if len(sorted) == 0 {
				pos = -1
			} else {
				pos = 0
			}
		case 1:
			it.Last()
			pos = len(sorted) - 1
		case 2:
			k := fmt.Sprintf("key%04d", rng.Intn(700))
			it.Seek([]byte(k))
			pos = sort.SearchStrings(sorted, k)
			if pos == len(sorted) {
				pos = -1
			}
		case 3:
			k := fmt.Sprintf("key%04d", rng.Intn(700))
			it.SeekForPrev([]byte(k))
			i := sort.SearchStrings(sorted, k)
			if i == len(sorted) || sorted[i] != k {
				i--
			}
			pos = i // may be -1
		case 4:
			if pos < 0 {
				continue
			}
			it.Next()
			pos++
			if pos >= len(sorted) {
				pos = -1
			}
		case 5:
			if pos < 0 {
				continue
			}
			it.Prev()
			pos--
		}
		if pos < 0 {
			if it.Valid() {
				t.Fatalf("step %d: iterator valid at %q, model says invalid", step, it.Key())
			}
			pos = -1
			continue
		}
		if !it.Valid() {
			t.Fatalf("step %d: iterator invalid, model at %q (pos %d)", step, sorted[pos], pos)
		}
		if string(it.Key()) != sorted[pos] {
			t.Fatalf("step %d: iterator at %q, model at %q", step, it.Key(), sorted[pos])
		}
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestReverseRespectsSnapshots(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	mustPut(t, d, "a", "1")
	mustPut(t, d, "b", "2")
	mustPut(t, d, "c", "3")
	snap := d.GetSnapshot()
	defer snap.Release()
	mustPut(t, d, "b", "2-new")
	if err := d.Delete([]byte("c")); err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "d", "4")
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	it, err := snap.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for it.Last(); it.Valid(); it.Prev() {
		got = append(got, string(it.Key())+"="+string(it.Value()))
	}
	want := "[c=3 b=2 a=1]"
	if fmt.Sprint(got) != want {
		t.Fatalf("snapshot reverse scan = %v want %v", got, want)
	}
}

func TestReverseEmptyDB(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.Last()
	if it.Valid() {
		t.Fatal("Last on empty DB should be invalid")
	}
	it.SeekForPrev([]byte("anything"))
	if it.Valid() {
		t.Fatal("SeekForPrev on empty DB should be invalid")
	}
}

func TestReverseTombstoneRuns(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	// A long run of deleted keys between live ones, spread across a flush
	// boundary so tombstones shadow table data.
	for i := 0; i < 50; i++ {
		mustPut(t, d, fmt.Sprintf("k%03d", i), "v")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 40; i++ {
		if err := d.Delete([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.SeekForPrev([]byte("k039"))
	if !it.Valid() || string(it.Key()) != "k009" {
		t.Fatalf("SeekForPrev over tombstone run = %q (valid=%v), want k009", it.Key(), it.Valid())
	}
	it.Prev()
	if !it.Valid() || string(it.Key()) != "k008" {
		t.Fatalf("Prev = %q", it.Key())
	}
	it.Next()
	if !it.Valid() || string(it.Key()) != "k009" {
		t.Fatalf("Next after Prev = %q", it.Key())
	}
	it.Next()
	if !it.Valid() || string(it.Key()) != "k040" {
		t.Fatalf("Next across tombstone run = %q", it.Key())
	}
}
