package db

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// benchOptions is the fillrandom geometry: a memtable large enough that the
// run never seals, so the benchmark measures the commit path (WAL + memtable
// + visibility) rather than flush churn.
func benchOptions(pipeline, walSync bool) Options {
	o := testOptions(PolicyLocalOnly)
	o.MemtableBytes = 512 << 20
	o.L0StallFiles = 64
	o.WALSync = walSync
	o.DisableCommitPipeline = !pipeline
	return o
}

// BenchmarkConcurrentFillRandom measures commit throughput across writer
// counts for the pipeline×WALSync matrix — the ISSUE's headline numbers
// (pipeline vs serial at 8 writers, with and without per-commit fsync).
// Run with: go test -bench ConcurrentFillRandom -benchtime 2s ./internal/db/
func BenchmarkConcurrentFillRandom(b *testing.B) {
	for _, pipeline := range []bool{true, false} {
		for _, walSync := range []bool{false, true} {
			for _, writers := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("pipeline=%v/sync=%v/writers=%d", pipeline, walSync, writers)
				b.Run(name, func(b *testing.B) {
					d, err := OpenAt(b.TempDir(), benchOptions(pipeline, walSync))
					if err != nil {
						b.Fatal(err)
					}
					defer d.Close()
					val := make([]byte, 100)
					b.ResetTimer()
					var wg sync.WaitGroup
					per := b.N / writers
					for w := 0; w < writers; w++ {
						n := per
						if w == writers-1 {
							n = b.N - per*(writers-1)
						}
						wg.Add(1)
						go func(w, n int) {
							defer wg.Done()
							rng := rand.New(rand.NewSource(int64(w) + 1))
							key := make([]byte, 0, 24)
							for i := 0; i < n; i++ {
								key = fmt.Appendf(key[:0], "key%012d", rng.Intn(1<<20))
								if err := d.Put(key, val); err != nil {
									b.Error(err)
									return
								}
							}
						}(w, n)
					}
					wg.Wait()
					b.StopTimer()
					if g := d.EngineStats().CommitGroups.Load(); g > 0 {
						bat := d.EngineStats().CommitGroupBatches.Load()
						b.ReportMetric(float64(bat)/float64(g), "batches/group")
					}
				})
			}
		}
	}
}
