package db

import (
	"bytes"

	"rocksmash/internal/keys"
	"rocksmash/internal/memtable"
)

// getFromRecovered scans the recovery memtables for the newest entry of
// key visible at snapshot seq. The memtables were rebuilt from distinct
// WAL segments, so a key may appear in several of them with different
// sequence numbers; the largest visible one wins.
func getFromRecovered(ms []*memtable.MemTable, key []byte, seq uint64) (value []byte, live, found bool) {
	var bestSeq uint64
	seek := keys.MakeSeekKey(nil, key, seq)
	for _, m := range ms {
		it := m.NewIterator()
		it.SeekGE(seek)
		if !it.Valid() {
			continue
		}
		ik := it.Key()
		if !bytes.Equal(keys.UserKey(ik), key) {
			continue
		}
		s, kind := keys.DecodeTrailer(ik)
		if !found || s > bestSeq {
			found = true
			bestSeq = s
			if kind == keys.KindSet {
				live = true
				value = append([]byte(nil), it.Value()...)
			} else {
				live = false
				value = nil
			}
		}
	}
	return value, live, found
}

// takeRecoveredLocked detaches the recovery memtables (caller holds d.mu).
func (d *DB) takeRecoveredLocked() []*memtable.MemTable {
	r := d.recovered
	d.recovered = nil
	return r
}

// recoveredBytes sums the recovery memtables' sizes (caller holds d.mu).
func (d *DB) recoveredBytesLocked() int64 {
	var n int64
	for _, m := range d.recovered {
		n += m.ApproximateSize()
	}
	return n
}
