package db

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rocksmash/internal/storage"
)

// openFaultyTest opens a DB whose cloud backend is wrapped in a Faulty
// decorator, so tests can script outages and random fault injection.
func openFaultyTest(t *testing.T, p Policy, cfg storage.FaultConfig) (*DB, *storage.Faulty) {
	t.Helper()
	dir := t.TempDir()
	o := testOptions(p)
	local, err := storage.NewLocal(filepath.Join(dir, "local"))
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
	if err != nil {
		t.Fatal(err)
	}
	faulty := storage.NewFaulty(cloud, cfg)
	o.pcacheDir = filepath.Join(dir, "pcache")
	d, err := Open(o, local, faulty)
	if err != nil {
		t.Fatal(err)
	}
	return d, faulty
}

// TestOutageDegradedFlushAndDrain scripts a total cloud outage spanning
// several flushes: every flush must succeed by landing its table locally
// marked pending-upload, reads must keep serving from the local copies, and
// once the outage ends the drainer must migrate the whole backlog to the
// cloud without losing a key.
func TestOutageDegradedFlushAndDrain(t *testing.T) {
	d, faulty := openFaultyTest(t, PolicyCloudOnly, storage.FaultConfig{})
	defer d.Close()

	faulty.StartOutage(0) // until EndOutage
	const batches, perBatch = 4, 60
	for b := 0; b < batches; b++ {
		for i := 0; i < perBatch; i++ {
			mustPut(t, d, fmt.Sprintf("k%02d-%04d", b, i), pipelineValue(i))
		}
		if err := d.Flush(); err != nil {
			t.Fatalf("flush %d during outage must degrade, not fail: %v", b, err)
		}
	}
	pending, pendingBytes := d.PendingCloudTables()
	if pending == 0 {
		t.Fatal("outage flushes left no pending-upload backlog")
	}
	if pendingBytes == 0 {
		t.Fatal("pending backlog reports zero bytes")
	}
	if got := d.BreakerState(); got != "open" {
		t.Fatalf("breaker state during outage = %q, want open", got)
	}
	if d.EngineStats().BreakerTrips.Load() == 0 {
		t.Fatal("breaker never tripped")
	}
	// Every key is readable from the locally landed tables mid-outage.
	for b := 0; b < batches; b++ {
		mustGet(t, d, fmt.Sprintf("k%02d-%04d", b, 0), pipelineValue(0))
		mustGet(t, d, fmt.Sprintf("k%02d-%04d", b, perBatch-1), pipelineValue(perBatch-1))
	}

	faulty.EndOutage()
	waitForDrain(t, d, 10*time.Second)
	if d.EngineStats().DrainedTables.Load() == 0 {
		t.Fatal("DrainedTables counter not incremented")
	}
	if names, err := faulty.List("sst/"); err != nil || len(names) == 0 {
		t.Fatalf("drained tables missing from cloud: names=%v err=%v", names, err)
	}
	for b := 0; b < batches; b++ {
		for i := 0; i < perBatch; i++ {
			mustGet(t, d, fmt.Sprintf("k%02d-%04d", b, i), pipelineValue(i))
		}
	}
	m := d.Metrics()
	if m.DegradedTables == 0 || m.DegradedDur <= 0 {
		t.Errorf("metrics missing degraded-mode history: tables=%d dur=%s",
			m.DegradedTables, m.DegradedDur)
	}
}

// TestOutageReadsErrCloudUnavailable verifies the read-path contract during
// an outage: data held locally (here, the memtable) keeps serving, while a
// cold read that genuinely needs a cloud block surfaces ErrCloudUnavailable
// — a typed error, not a hang or a generic failure.
func TestOutageReadsErrCloudUnavailable(t *testing.T) {
	d, faulty := openFaultyTest(t, PolicyCloudOnly, storage.FaultConfig{})
	defer d.Close()

	for i := 0; i < 100; i++ {
		mustPut(t, d, fmt.Sprintf("cold%04d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "hot", "in-memtable")

	faulty.StartOutage(0)
	// The memtable key is local state; the outage must not affect it.
	mustGet(t, d, "hot", "in-memtable")
	// The flushed keys live only in the cloud tier (no pcache under
	// PolicyCloudOnly) and the block cache is cold: the read must fail with
	// the typed outage error.
	if _, err := d.Get([]byte("cold0000")); !errors.Is(err, ErrCloudUnavailable) {
		t.Fatalf("cold cloud read during outage = %v, want ErrCloudUnavailable", err)
	}

	faulty.EndOutage()
	// After the cooldown a probe closes the breaker and reads recover.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := d.Get([]byte("cold0000")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reads did not recover after the outage ended")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mustGet(t, d, "cold0099", pipelineValue(99))
}

// TestOutageSoak runs concurrent writers across a scripted outage window.
// No write may fail — flushes degrade, compactions defer — and after the
// outage ends every acknowledged key must be present and the pending
// backlog fully drained. Run under -race this doubles as the concurrency
// soak for the degraded-mode machinery.
func TestOutageSoak(t *testing.T) {
	d, faulty := openFaultyTest(t, PolicyCloudOnly, storage.FaultConfig{})
	defer d.Close()

	const writers, perWriter = 4, 250
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%02d-%05d", w, i)
				if err := d.Put([]byte(k), []byte(pipelineValue(i))); err != nil {
					t.Errorf("put %s during outage: %v", k, err)
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	faulty.StartOutage(0)
	time.Sleep(30 * time.Millisecond)
	faulty.EndOutage()
	wg.Wait()

	if err := d.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	waitForDrain(t, d, 10*time.Second)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			mustGet(t, d, fmt.Sprintf("w%02d-%05d", w, i), pipelineValue(i))
		}
	}
}
