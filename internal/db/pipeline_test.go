package db

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rocksmash/internal/manifest"
	"rocksmash/internal/storage"
)

// pipelineValue returns a deterministic ~100 B value for key i.
func pipelineValue(i int) string {
	return strings.Repeat(fmt.Sprintf("v%05d-", i), 14)
}

// loadPipelineDir builds a DB directory with nkeys keys spread over several
// cloud-tier L0 tables and no compactions, so a later reopen can drive one
// big compaction under controlled pipeline knobs. The load phase is
// identical for every variant, making the reopened trees comparable.
func loadPipelineDir(t *testing.T, nkeys int) string {
	t.Helper()
	dir := t.TempDir()
	o := testOptions(PolicyCloudOnly)
	o.L0CompactTrigger = 100 // no compactions during load
	o.L0StallFiles = 300
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nkeys; i++ {
		mustPut(t, d, fmt.Sprintf("k%06d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// reopenPipeline reopens a loaded directory with compaction enabled and the
// given pipeline knobs.
func reopenPipeline(t *testing.T, dir string, lat storage.LatencyModel, prefetch, uploads, readahead int) *DB {
	t.Helper()
	o := testOptions(PolicyCloudOnly)
	o.L0CompactTrigger = 2
	o.CloudLatency = lat
	o.CompactionPrefetchBlocks = prefetch
	o.UploadParallelism = uploads
	o.IteratorReadaheadBlocks = readahead
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// levelShape captures the logical output of a compaction: per level, each
// file's size and key bounds (file numbers differ across runs only if the
// compaction sequence diverged, so they are included too).
func levelShape(d *DB) string {
	var b strings.Builder
	v := d.vs.Current()
	for l := range v.Levels {
		for _, f := range v.Levels[l] {
			fmt.Fprintf(&b, "L%d n%d sz%d %s..%s\n", l, f.Num, f.Size, f.Smallest, f.Largest)
		}
	}
	return b.String()
}

// scanAll returns every key/value visible through a full iterator pass.
func scanAll(t *testing.T, d *DB) []string {
	t.Helper()
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []string
	for it.First(); it.Valid(); it.Next() {
		out = append(out, string(it.Key())+"="+string(it.Value()))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPipelineEquivalence drives the same compaction work serially and with
// every pipeline knob enabled, and requires identical logical results —
// same table shapes, same scan contents — with strictly fewer cloud GETs on
// the pipelined side.
func TestPipelineEquivalence(t *testing.T) {
	const nkeys = 3000

	run := func(prefetch, uploads, readahead int) (shape string, scan []string, io storage.Snapshot, m Metrics) {
		dir := loadPipelineDir(t, nkeys)
		d := reopenPipeline(t, dir, storage.NoLatency(), prefetch, uploads, readahead)
		defer d.Close()
		if err := d.CompactAll(); err != nil {
			t.Fatal(err)
		}
		io = d.cloudSim.Stats().Snapshot() // before the scan: compaction I/O only
		return levelShape(d), scanAll(t, d), io, d.Metrics()
	}

	serialShape, serialScan, serialIO, serialM := run(0, 1, 0)
	pipeShape, pipeScan, pipeIO, pipeM := run(16, 4, 0)

	if len(serialScan) != nkeys {
		t.Fatalf("serial scan returned %d keys, want %d", len(serialScan), nkeys)
	}
	if serialShape != pipeShape {
		t.Errorf("level shapes diverged:\nserial:\n%s\npipelined:\n%s", serialShape, pipeShape)
	}
	for i := range serialScan {
		if serialScan[i] != pipeScan[i] {
			t.Fatalf("scan diverged at %d: %q vs %q", i, serialScan[i], pipeScan[i])
		}
	}
	if serialM.PrefetchSpans != 0 {
		t.Errorf("serial run issued %d prefetch spans, want 0", serialM.PrefetchSpans)
	}
	if pipeM.PrefetchSpans == 0 {
		t.Error("pipelined run issued no prefetch spans")
	}
	if pipeIO.GetOps*4 > serialIO.GetOps {
		t.Errorf("prefetch did not coalesce GETs: serial=%d pipelined=%d", serialIO.GetOps, pipeIO.GetOps)
	}
	if serialIO.PutOps != pipeIO.PutOps {
		t.Errorf("PutOps diverged: serial=%d pipelined=%d", serialIO.PutOps, pipeIO.PutOps)
	}
	if serialIO.BytesWrite != pipeIO.BytesWrite {
		t.Errorf("uploaded bytes diverged: serial=%d pipelined=%d", serialIO.BytesWrite, pipeIO.BytesWrite)
	}
}

// TestCompactionOutageDegradesAndRecovers lets the first compaction output
// upload land and then fails every later cloud sst PUT. Depending on when
// the breaker trips relative to the merge, the compaction either degrades
// (outputs land locally marked pending-upload) or stops with a typed
// ErrCloudUnavailable and no manifest change — both are legal. Once the
// outage clears, the drainer migrates the backlog and retries deferred
// deletes; afterwards the tree holds no pending files, every cloud object
// is referenced by the manifest, every referenced object exists, and a full
// scan sees all the data.
func TestCompactionOutageDegradesAndRecovers(t *testing.T) {
	dir := loadPipelineDir(t, 3000)
	d := reopenPipeline(t, dir, storage.NoLatency(), 0, 2, 0)
	defer d.Close()

	var sstPuts atomic.Int32
	d.cloudSim.SetFailureHook(func(op, name string) error {
		if op == "PUT" && strings.HasPrefix(name, "sst/") && sstPuts.Add(1) > 1 {
			return errors.New("injected persistent PUT outage")
		}
		return nil
	})
	err := d.CompactAll()
	if err != nil && !errors.Is(err, ErrCloudUnavailable) {
		t.Fatalf("compaction during outage failed with untyped error: %v", err)
	}
	if err == nil {
		// The whole compaction ran degraded: it must have left a backlog.
		if n, _ := d.PendingCloudTables(); n == 0 {
			t.Fatal("degraded compaction finished with no pending-upload backlog")
		}
	}

	// Outage clears: the drainer migrates pending tables and deferred
	// deletes remove anything an aborted compaction left behind.
	d.cloudSim.SetFailureHook(nil)
	waitForDrain(t, d, 10*time.Second)
	var cerr error
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(5 * time.Millisecond) {
		if cerr = d.CompactAll(); cerr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction after outage cleared: %v", cerr)
		}
	}
	waitForDrain(t, d, 10*time.Second)
	waitForDeferredEmpty(t, d, 10*time.Second)

	// Every surviving cloud object is referenced by the current version and
	// every referenced object exists; nothing is still pending.
	referenced := map[string]bool{}
	d.vs.Current().AllFiles(func(level int, f *manifest.FileMetadata) {
		if f.PendingCloud {
			t.Errorf("file %d still pending-upload after drain", f.Num)
		}
		if f.Tier == storage.TierCloud {
			referenced[manifest.TableName(f.Num)] = true
		}
	})
	names, lerr := d.cloudSim.List("sst/")
	if lerr != nil {
		t.Fatal(lerr)
	}
	for _, n := range names {
		if !referenced[n] {
			t.Errorf("orphaned cloud object left behind: %s", n)
		}
	}
	for n := range referenced {
		if _, serr := d.cloudSim.Size(n); serr != nil {
			t.Errorf("referenced object %s missing from cloud: %v", n, serr)
		}
	}
	if scan := scanAll(t, d); len(scan) != 3000 {
		t.Fatalf("scan after recovery returned %d keys, want 3000", len(scan))
	}
}

// TestCompactionPrefetchFailureSurfaces fails every in-flight cloud GET
// while a prefetching compaction runs: the error must surface through
// CompactAll (no hang, no partial manifest edit), and the store must work
// again once reads recover.
func TestCompactionPrefetchFailureSurfaces(t *testing.T) {
	dir := loadPipelineDir(t, 3000)
	d := reopenPipeline(t, dir, storage.NoLatency(), 8, 2, 0)
	defer d.Close()

	d.cloudSim.SetFailureHook(func(op, name string) error {
		if op == "GET" && strings.HasPrefix(name, "sst/") {
			return errors.New("injected read outage")
		}
		return nil
	})
	before := d.debugLevels()
	done := make(chan error, 1)
	go func() { done <- d.CompactAll() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("compaction with failing reads should error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("compaction hung on injected read failures")
	}
	if got := d.debugLevels(); got != before {
		t.Errorf("failed compaction changed the tree: %v -> %v", before, got)
	}

	// Recovery: the breaker needs its cooldown to elapse before it admits
	// the probe that closes it, so retry briefly.
	d.cloudSim.SetFailureHook(nil)
	var cerr error
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(5 * time.Millisecond) {
		if cerr = d.CompactAll(); cerr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction after outage cleared: %v", cerr)
		}
	}
	scan := scanAll(t, d)
	if len(scan) != 3000 {
		t.Fatalf("scan after recovery returned %d keys, want 3000", len(scan))
	}
}

// TestCompactionPipelineSpeedup reproduces the headline claim: under the
// default cloud latency model, a cloud-tier compaction with prefetch and
// overlapped uploads runs at least 2x faster than the serial path, with
// GETs coalesced proportionally.
func TestCompactionPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-simulation timing test")
	}
	const nkeys = 3000

	run := func(prefetch, uploads int) (time.Duration, storage.Snapshot) {
		dir := loadPipelineDir(t, nkeys)
		d := reopenPipeline(t, dir, storage.DefaultLatency(), prefetch, uploads, 0)
		defer d.Close()
		start := time.Now()
		if err := d.CompactAll(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start), d.cloudSim.Stats().Snapshot()
	}

	serialDur, serialIO := run(0, 1)
	pipeDur, pipeIO := run(16, 4)

	t.Logf("serial:    %v  gets=%d", serialDur, serialIO.GetOps)
	t.Logf("pipelined: %v  gets=%d", pipeDur, pipeIO.GetOps)
	if pipeDur*2 > serialDur {
		t.Errorf("pipelined compaction not >=2x faster: serial=%v pipelined=%v", serialDur, pipeDur)
	}
	if pipeIO.GetOps*4 > serialIO.GetOps {
		t.Errorf("GETs not coalesced: serial=%d pipelined=%d", serialIO.GetOps, pipeIO.GetOps)
	}
}

// TestIteratorReadaheadColdScan scans a cloud-resident tree cold with and
// without readahead: contents must match exactly and readahead must cut the
// number of cloud GETs.
func TestIteratorReadaheadColdScan(t *testing.T) {
	const nkeys = 3000

	run := func(readahead int) ([]string, storage.Snapshot, Metrics) {
		dir := loadPipelineDir(t, nkeys)
		d := reopenPipeline(t, dir, storage.NoLatency(), 0, 1, readahead)
		defer d.Close()
		if err := d.CompactAll(); err != nil {
			t.Fatal(err)
		}
		base := d.cloudSim.Stats().Snapshot()
		scan := scanAll(t, d)
		io := d.cloudSim.Stats().Snapshot()
		io.GetOps -= base.GetOps
		return scan, io, d.Metrics()
	}

	plainScan, plainIO, plainM := run(0)
	raScan, raIO, raM := run(16)

	if len(plainScan) != nkeys {
		t.Fatalf("scan returned %d keys, want %d", len(plainScan), nkeys)
	}
	for i := range plainScan {
		if plainScan[i] != raScan[i] {
			t.Fatalf("scan diverged at %d: %q vs %q", i, plainScan[i], raScan[i])
		}
	}
	if plainM.ReadaheadSpans != 0 {
		t.Errorf("readahead-off run issued %d spans", plainM.ReadaheadSpans)
	}
	if raM.ReadaheadSpans == 0 {
		t.Error("readahead-on run issued no spans")
	}
	if raIO.GetOps*2 > plainIO.GetOps {
		t.Errorf("readahead did not cut scan GETs: plain=%d readahead=%d", plainIO.GetOps, raIO.GetOps)
	}
}
