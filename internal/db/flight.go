package db

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"rocksmash/internal/event"
	"rocksmash/internal/flight"
	"rocksmash/internal/storage"
	"rocksmash/internal/vitals"
)

// Flight recorder wiring: the engine-agnostic pieces live in
// internal/flight (event ring, detector rules, bundle format, offline
// doctor); this file connects them to the DB. The recorder taps the
// listener chain (so the ring sees exactly the event stream a trace
// would), the detector rides the vitals sampler's tick, and bundle dumps
// run on the sampler goroutine — so a firing rule serializes its own
// postmortem and never blocks a foreground operation.

// flightRecentCap bounds the in-memory incident log behind DB.Incidents.
const flightRecentCap = 64

type flightState struct {
	rec *flight.Recorder
	det *flight.Detector
	cfg flight.BundleConfig

	// mu guards recent (the capped incident log) and lastBundle (the
	// rate-limit clock).
	mu         sync.Mutex
	recent     []flight.Incident
	lastBundle time.Time
}

// initFlight builds the recorder/detector pair. local is the raw local
// backend the bundle directory is derived from when FlightDir is unset.
func (d *DB) initFlight(local storage.Backend) {
	o := d.opts
	history := o.FlightHistory
	if history <= 0 {
		history = 1024
	}
	dir := o.FlightDir
	if dir == "" {
		if l, ok := storage.BaseBackend(local).(*storage.Local); ok {
			dir = filepath.Join(l.Root(), "..", "flight")
		}
	}
	maxBundles := o.FlightMaxBundles
	if maxBundles <= 0 {
		maxBundles = 8
	}
	minInterval := o.FlightBundleInterval
	if minInterval <= 0 {
		minInterval = 30 * time.Second
	}
	d.flight = &flightState{
		rec: flight.NewRecorder(history),
		det: flight.NewDetector(flight.DefaultRules(o.FlightThresholds)),
		cfg: flight.BundleConfig{
			Dir:           dir,
			MaxBundles:    maxBundles,
			MinInterval:   minInterval,
			MaxEventBytes: 1 << 20,
		},
	}
}

// flightObserve feeds one vitals sample to the detector and handles any
// incidents it fires: counters, bundle dump, the incident log, and the
// IncidentTriggered event. Runs on the vitals sampler goroutine.
func (d *DB) flightObserve(s vitals.Sample) {
	fs := d.flight
	if fs == nil {
		return
	}
	incs := fs.det.Observe(s)
	d.stats.IncidentsSuppressed.Store(fs.det.Suppressed())
	for i := range incs {
		inc := &incs[i]
		d.stats.IncidentsTriggered.Add(1)
		fs.maybeWriteBundle(d, inc)
		fs.mu.Lock()
		fs.recent = append(fs.recent, *inc)
		if len(fs.recent) > flightRecentCap {
			fs.recent = fs.recent[len(fs.recent)-flightRecentCap:]
		}
		fs.mu.Unlock()
		d.evIncidentTriggered(*inc)
	}
}

// maybeWriteBundle dumps a postmortem for inc unless rate-limited or
// bundling is unconfigured. On success inc.Bundle is filled with the
// committed directory. Note the DumpStats call resets the interval-delta
// baseline a concurrent stats consumer sees — an accepted cost of a
// self-contained postmortem.
func (fs *flightState) maybeWriteBundle(d *DB, inc *flight.Incident) {
	if fs.cfg.Dir == "" {
		return
	}
	now := time.Unix(0, inc.UnixNano)
	fs.mu.Lock()
	if !fs.lastBundle.IsZero() && now.Sub(fs.lastBundle) < fs.cfg.MinInterval {
		fs.mu.Unlock()
		return
	}
	fs.lastBundle = now
	fs.mu.Unlock()

	m := d.Metrics()
	metricsJSON, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		metricsJSON = []byte("{}")
	}
	in := flight.BundleInputs{
		Incident:     *inc,
		Active:       fs.det.Active(),
		Counts:       fs.det.Counts(),
		Events:       fs.rec.Snapshot(),
		MetricsJSON:  metricsJSON,
		StatsText:    d.DumpStats(),
		ManifestText: levelSummary(m),
	}
	// Nil during the sampler's synchronous first sample (d.vit is assigned
	// only after NewSampler returns); the events ring still captures that
	// window.
	if vit := d.vit; vit != nil {
		in.Vitals = vit.Samples()
	}
	path, werr := flight.WriteBundle(fs.cfg, in)
	if werr != nil {
		d.stats.BundleErrors.Add(1)
		return
	}
	inc.Bundle = path
	d.stats.BundlesWritten.Add(1)
}

// levelSummary renders the manifest shape for the bundle's manifest.txt.
func levelSummary(m Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s lastSeq=%d local=%s cloud=%s debt=%s spaceAmp=%.2f\n",
		m.Policy, m.LastSeq, humanBytes(m.LocalBytes), humanBytes(m.CloudBytes),
		humanBytes(m.CompactionDebt), m.SpaceAmp)
	for l := range m.LevelFiles {
		if m.LevelFiles[l] == 0 {
			continue
		}
		fmt.Fprintf(&b, "L%d: %d files, %s\n", l, m.LevelFiles[l], humanBytes(int64(m.LevelBytes[l])))
	}
	if m.PendingTables > 0 {
		fmt.Fprintf(&b, "pending-cloud: %d tables, %s\n", m.PendingTables, humanBytes(m.PendingBytes))
	}
	if m.MisplacedTables > 0 {
		fmt.Fprintf(&b, "misplaced: %d tables\n", m.MisplacedTables)
	}
	return b.String()
}

// fillFlightMetrics copies the flight counters and active-rule set into a
// Metrics snapshot; a no-op (all zero) when the recorder is off.
func (d *DB) fillFlightMetrics(m *Metrics) {
	m.IncidentsTriggered = d.stats.IncidentsTriggered.Load()
	m.IncidentsSuppressed = d.stats.IncidentsSuppressed.Load()
	m.BundlesWritten = d.stats.BundlesWritten.Load()
	m.BundleErrors = d.stats.BundleErrors.Load()
	if d.flight != nil {
		m.ActiveIncidents = d.flight.det.Active()
	}
}

func (d *DB) evIncidentTriggered(inc flight.Incident) {
	if l := d.listener; l != nil {
		l.OnIncidentTriggered(event.IncidentTriggered{
			Rule:      inc.Rule,
			Severity:  inc.Severity,
			Reason:    inc.Reason,
			Value:     inc.Value,
			Threshold: inc.Threshold,
			Bundle:    inc.Bundle,
		})
	}
}

// Health status values.
const (
	HealthHealthy   = "healthy"
	HealthDegraded  = "degraded"
	HealthUnhealthy = "unhealthy"
)

// Health is the store's coarse liveness summary: healthy (serving
// normally), degraded (serving, but a tier is impaired or debt is
// accumulating), or unhealthy (data-path failure).
type Health struct {
	Status  string   `json:"status"`
	Reasons []string `json:"reasons,omitempty"`
	// ActiveRules lists the detector rules currently active (empty when the
	// flight recorder is off).
	ActiveRules        []string `json:"active_rules,omitempty"`
	IncidentsTriggered int64    `json:"incidents_triggered"`
	BundlesWritten     int64    `json:"bundles_written"`
}

// backgroundErr returns the first wedging background error, if any.
func (d *DB) backgroundErr() error {
	if d.shards != nil {
		for _, sh := range d.shards {
			if err := sh.backgroundErr(); err != nil {
				return err
			}
		}
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bgErr
}

// Health computes the store's health from the metrics snapshot and (when
// the flight recorder is on) the detector's active-rule set. It works with
// the recorder off — breaker and backlog degradation is visible either way.
func (d *DB) Health() Health {
	m := d.Metrics()
	h := Health{
		Status:             HealthHealthy,
		IncidentsTriggered: m.IncidentsTriggered,
		BundlesWritten:     m.BundlesWritten,
		ActiveRules:        m.ActiveIncidents,
	}
	degraded := func(reason string) {
		if h.Status == HealthHealthy {
			h.Status = HealthDegraded
		}
		h.Reasons = append(h.Reasons, reason)
	}
	unhealthy := func(reason string) {
		h.Status = HealthUnhealthy
		h.Reasons = append(h.Reasons, reason)
	}

	cloudOpen := m.BreakerState != "" && m.BreakerState != "closed"
	localOpen := m.LocalBreakerState != "" && m.LocalBreakerState != "closed"
	if err := d.backgroundErr(); err != nil {
		unhealthy("background error: " + err.Error())
	}
	if cloudOpen && localOpen {
		unhealthy("both storage tiers unavailable (cloud and local breakers open)")
	} else {
		if cloudOpen {
			degraded("cloud breaker " + m.BreakerState + ": flushes landing degraded")
		}
		if localOpen {
			degraded("local breaker " + m.LocalBreakerState + ": tables landing cloud-direct")
		}
	}
	if m.PendingTables > 0 {
		degraded(fmt.Sprintf("%d tables pending cloud upload (%s)", m.PendingTables, humanBytes(m.PendingBytes)))
	}
	if m.MisplacedTables > 0 {
		degraded(fmt.Sprintf("%d misplaced tables awaiting drain-back", m.MisplacedTables))
	}
	if m.QuarantinedTables > 0 {
		degraded(fmt.Sprintf("%d quarantined tables (unrepairable corruption)", m.QuarantinedTables))
	}
	for _, rule := range m.ActiveIncidents {
		switch rule {
		case flight.RuleCloudOutage, flight.RuleLocalDegraded:
			// Already surfaced via the breaker gauges above.
		default:
			degraded("active incident: " + rule)
		}
	}
	return h
}

// Incidents returns the most recent fired incidents, oldest first (capped
// at flightRecentCap; nil when the flight recorder is off).
func (d *DB) Incidents() []flight.Incident {
	fs := d.flight
	if fs == nil {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]flight.Incident(nil), fs.recent...)
}

// FlightBundles lists the committed postmortem bundles on disk, oldest
// first (nil when the recorder is off or bundling is unconfigured).
func (d *DB) FlightBundles() ([]flight.BundleMeta, error) {
	fs := d.flight
	if fs == nil || fs.cfg.Dir == "" {
		return nil, nil
	}
	return flight.ListBundles(fs.cfg.Dir)
}

// FlightEnabled reports whether this store runs a flight recorder (in a
// sharded store, true only on the facade).
func (d *DB) FlightEnabled() bool { return d.flight != nil }

// FlightBundleDir returns where incident bundles are written ("" when
// disabled).
func (d *DB) FlightBundleDir() string {
	if d.flight == nil {
		return ""
	}
	return d.flight.cfg.Dir
}
