package db

import (
	"sync"
	"time"

	"rocksmash/internal/batch"
	"rocksmash/internal/memtable"
)

// recover replays WAL segments not covered by flushed tables. With the
// extended WAL, segments whose sequence range is wholly below the flushed
// watermark are skipped without being read, and the remainder are replayed
// by RecoveryParallelism goroutines, each rebuilding its segment into its
// own memtable (the paper's fast parallel recovery — the same structure
// RocksDB uses, one memtable per recovered log). The per-segment memtables
// are installed as read-only side memtables and drain into L0 at the next
// flush; sequence numbers in internal keys make cross-segment ordering a
// non-issue.
func (d *DB) recover() error {
	start := time.Now()
	flushed := d.vs.FlushedSeq()

	var (
		mu      sync.Mutex
		maxSeq  = d.lastSeq.Load()
		applied int64
		tables  sync.Map // segment number -> *memtable.MemTable
	)
	stats, err := d.wal.Replay(flushed, d.opts.RecoveryParallelism, func(segNum uint64, payload []byte) error {
		b, err := batch.FromPayload(payload)
		if err != nil {
			return err
		}
		mti, ok := tables.Load(segNum)
		if !ok {
			mti, _ = tables.LoadOrStore(segNum, memtable.New())
		}
		mt := mti.(*memtable.MemTable) // one goroutine per segment: single writer
		var localMax uint64
		var localApplied int64
		err = b.Iterate(func(op batch.Op) error {
			if op.Seq > localMax {
				localMax = op.Seq
			}
			if op.Seq <= flushed {
				// Already durable in an SSTable (segment straddling the
				// watermark); skip the entry.
				return nil
			}
			mt.Add(op.Seq, op.Kind, op.Key, op.Value)
			localApplied++
			return nil
		})
		if err != nil {
			return err
		}
		mu.Lock()
		if localMax > maxSeq {
			maxSeq = localMax
		}
		applied += localApplied
		mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}

	var rec []*memtable.MemTable
	tables.Range(func(_, v any) bool {
		if m := v.(*memtable.MemTable); !m.Empty() {
			rec = append(rec, m)
		}
		return true
	})
	d.mu.Lock()
	d.recovered = rec
	d.updateReadStateLocked()
	d.mu.Unlock()

	d.lastSeq.Store(maxSeq)
	d.vs.SetLastSeq(maxSeq)

	d.recovery = RecoveryReport{
		WALSegments:   stats.SegmentsTotal,
		WALSkipped:    stats.SegmentsSkipped,
		WALRecords:    stats.Records,
		WALBytes:      stats.Bytes,
		RecoveredKeys: applied,
		Parallelism:   d.opts.RecoveryParallelism,
		Duration:      time.Since(start),
	}

	// Begin a fresh segment so post-recovery writes never append to a
	// segment that predates the crash.
	if err := d.wal.Roll(); err != nil {
		return err
	}
	// Segments left open by the crash now have a known upper bound; seal
	// them so future flushes can garbage-collect them.
	if err := d.wal.SealAll(maxSeq); err != nil {
		return err
	}
	// If recovery rebuilt a large volume, flush it promptly instead of
	// carrying it in memory.
	d.mu.Lock()
	big := d.recoveredBytesLocked() >= d.opts.MemtableBytes
	d.mu.Unlock()
	if big {
		if err := d.flushMemtable(nil); err != nil {
			return err
		}
		if err := d.wal.DeleteObsolete(d.vs.FlushedSeq()); err != nil {
			return err
		}
	}
	return nil
}
