package db

import (
	"sync/atomic"
	"time"

	"rocksmash/internal/event"
	"rocksmash/internal/histogram"
	"rocksmash/internal/readprof"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
)

// latencies holds the engine's always-on per-operation histograms. Recording
// is lock-free and allocation-free (atomic bucket increments), so these stay
// enabled regardless of whether an EventListener is attached.
type latencies struct {
	get      *histogram.H // DB.Get / DB.GetAt
	put      *histogram.H // DB.Write commit latency (includes stall time)
	flush    *histogram.H // whole flushMemtable units
	compact  *histogram.H // whole doCompaction units
	localGet *histogram.H // local-tier read requests
	localPut *histogram.H // local-tier object creations
	cloudGet *histogram.H // cloud-tier read requests
	cloudPut *histogram.H // cloud-tier object creations
}

func newLatencies() *latencies {
	return &latencies{
		get:      histogram.New(),
		put:      histogram.New(),
		flush:    histogram.New(),
		compact:  histogram.New(),
		localGet: histogram.New(),
		localPut: histogram.New(),
		cloudGet: histogram.New(),
		cloudPut: histogram.New(),
	}
}

// Event fire helpers. Each checks the nil-listener fast path inline so call
// sites stay one line and unset listeners cost a predicted branch and zero
// allocations. Listeners run outside d.mu and d.commitMu (see package event
// for the listener contract).

func (d *DB) evFlushBegin(reason string) {
	if l := d.listener; l != nil {
		l.OnFlushBegin(event.FlushBegin{Reason: reason})
	}
}

func (d *DB) evFlushEnd(table uint64, bytes int64, tier storage.Tier, dur time.Duration) {
	if l := d.listener; l != nil {
		l.OnFlushEnd(event.FlushEnd{Table: table, Bytes: bytes, Tier: tier.String(), Duration: dur})
	}
}

func (d *DB) evCompactionBegin(e event.CompactionBegin) {
	if l := d.listener; l != nil {
		l.OnCompactionBegin(e)
	}
}

func (d *DB) evCompactionEnd(e event.CompactionEnd) {
	if l := d.listener; l != nil {
		l.OnCompactionEnd(e)
	}
}

func (d *DB) evTableUploaded(table uint64, tier storage.Tier, bytes int64, attempts int, dur time.Duration, pending bool) {
	if l := d.listener; l != nil {
		l.OnTableUploaded(event.TableUploaded{
			Table: table, Tier: tier.String(), Bytes: bytes, Attempts: attempts, Duration: dur,
			Pending: pending,
		})
	}
}

func (d *DB) evTableDeleted(table uint64, tier storage.Tier) {
	if l := d.listener; l != nil {
		l.OnTableDeleted(event.TableDeleted{Table: table, Tier: tier.String()})
	}
}

func (d *DB) evCommitGroup(e event.CommitGroup) {
	if l := d.listener; l != nil {
		l.OnCommitGroup(e)
	}
}

func (d *DB) evCloudRetry(op, object string, attempt int, err error) {
	if l := d.listener; l != nil {
		l.OnCloudRetry(event.CloudRetry{Op: op, Object: object, Attempt: attempt, Err: err.Error()})
	}
}

func (d *DB) evBreakerState(tier, from, to string) {
	if l := d.listener; l != nil {
		l.OnBreakerState(event.BreakerState{From: from, To: to, Tier: tier})
	}
}

func (d *DB) evCorruptionDetected(artifact, object string, file uint64, err error) {
	if l := d.listener; l != nil {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		l.OnCorruptionDetected(event.CorruptionDetected{
			Artifact: artifact, Object: object, File: file, Err: msg,
		})
	}
}

func (d *DB) evCorruptionRepaired(artifact, object string, file uint64, source string, dur time.Duration) {
	if l := d.listener; l != nil {
		l.OnCorruptionRepaired(event.CorruptionRepaired{
			Artifact: artifact, Object: object, File: file, Source: source, Duration: dur,
		})
	}
}

func (d *DB) evViewBuilt(level, members, entries, bytes int, dur time.Duration) {
	if l := d.listener; l != nil {
		l.OnViewBuilt(event.ViewBuilt{
			Level: level, Members: members, Entries: entries, Bytes: bytes, Duration: dur,
		})
	}
}

// timedFetch wraps a block-fetch function, accumulating time spent blocked
// on fetches into ns. Compaction uses it to separate read wait from merge
// CPU in CompactionEnd stage timings; it is only installed when a listener
// is attached.
func timedFetch(f sstable.FetchFunc, ns *atomic.Int64) sstable.FetchFunc {
	return func(fileNum uint64, hd sstable.Handle, prof *readprof.Profile) ([]byte, error) {
		start := time.Now()
		body, err := f(fileNum, hd, prof)
		ns.Add(time.Since(start).Nanoseconds())
		return body, err
	}
}
