package db

import (
	"path/filepath"
	"testing"
	"time"
)

// benchDBFlight opens the no-flush benchmark store with the flight
// recorder on or off. The on/off pair bounds the recorder tax on the fill
// path — the observability contract is a throughput delta within a couple
// of percent, and byte-identical behavior when off.
func benchDBFlight(b *testing.B, on bool) *DB {
	b.Helper()
	o := testOptions(PolicyLocalOnly)
	o.MemtableBytes = 256 << 20
	o.FlightRecorder = on
	if on {
		o.VitalsInterval = time.Second
		o.FlightDir = filepath.Join(b.TempDir(), "flight")
	}
	d, err := OpenAt(b.TempDir(), o)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	return d
}

func benchmarkPutFlight(b *testing.B, on bool) {
	d := benchDBFlight(b, on)
	keys := benchKeys(1 << 12)
	val := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Put(keys[i&(len(keys)-1)], val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutFlightOff(b *testing.B) { benchmarkPutFlight(b, false) }
func BenchmarkPutFlightOn(b *testing.B)  { benchmarkPutFlight(b, true) }
