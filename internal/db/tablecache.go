package db

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"rocksmash/internal/cache"
	"rocksmash/internal/manifest"
	"rocksmash/internal/readprof"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
)

// tableHandle is a refcounted open table. Readers (Get, iterators,
// compactions) acquire a handle and release it when done; eviction closes
// the underlying file once the last reference drops.
type tableHandle struct {
	reader *sstable.Reader
	tier   storage.Tier
	// db is the DB that owns the file (the keyspace shard, in a sharded
	// store): its backends serve block reads and its options shape the
	// fetch path. The cache itself is shard-agnostic — striped file
	// numbering keeps file numbers globally unique.
	db *DB
	ra raState // sequential-scan readahead detection (cloud tables)

	mu    sync.Mutex
	refs  int
	dead  bool // evicted: close when refs drop to zero
	cache *tableCache
}

func (h *tableHandle) release() {
	h.mu.Lock()
	h.refs--
	shouldClose := h.dead && h.refs == 0
	h.mu.Unlock()
	if shouldClose {
		_ = h.reader.Close()
	}
}

// tableCache keeps table readers open with their metadata (index, filter)
// pinned in local memory, and routes data-block reads through the cache
// hierarchy: in-memory block cache, then (for cloud files) the persistent
// cache, then the owning backend. The number of open tables is bounded:
// past maxOpen, the least-recently-used idle table is closed (RocksDB's
// max_open_files analogue) — file descriptors must not scale with the
// tree size.
type tableCache struct {
	maxOpen int

	mu     sync.Mutex
	tables map[uint64]*tableHandle
	lru    *list.List // front = most recently used; values are file numbers
	lruPos map[uint64]*list.Element
}

func newTableCache(maxOpen int) *tableCache {
	if maxOpen < 8 {
		maxOpen = 8
	}
	return &tableCache{
		maxOpen: maxOpen,
		tables:  map[uint64]*tableHandle{},
		lru:     list.New(),
		lruPos:  map[uint64]*list.Element{},
	}
}

// touchLocked marks fileNum as most recently used (caller holds tc.mu).
func (tc *tableCache) touchLocked(fileNum uint64) {
	if e, ok := tc.lruPos[fileNum]; ok {
		tc.lru.MoveToFront(e)
		return
	}
	tc.lruPos[fileNum] = tc.lru.PushFront(fileNum)
}

// enforceCapLocked closes least-recently-used idle tables while over
// budget. Tables with outstanding references are skipped; they re-enter
// the budget when released.
func (tc *tableCache) enforceCapLocked() {
	for e := tc.lru.Back(); e != nil && len(tc.tables) > tc.maxOpen; {
		prev := e.Prev()
		num := e.Value.(uint64)
		h := tc.tables[num]
		h.mu.Lock()
		idle := h.refs == 1 // only the cache's own reference
		if idle {
			h.dead = true
			h.refs = 0
		}
		h.mu.Unlock()
		if idle {
			delete(tc.tables, num)
			tc.lru.Remove(e)
			delete(tc.lruPos, num)
			_ = h.reader.Close()
		}
		e = prev
	}
}

// get opens (or reuses) the table and returns a referenced handle. d is
// the DB that owns the file; in a sharded store every shard shares one
// cache, so the open-table budget is global.
func (tc *tableCache) get(d *DB, meta *manifest.FileMetadata) (*tableHandle, error) {
	tc.mu.Lock()
	if h, ok := tc.tables[meta.Num]; ok {
		h.mu.Lock()
		h.refs++
		h.mu.Unlock()
		tc.touchLocked(meta.Num)
		tc.mu.Unlock()
		return h, nil
	}
	tc.mu.Unlock()

	// Open outside the cache lock: cloud opens can be slow. A corrupt open
	// is classified and repaired, then retried: for a local-tier table the
	// damage is in the file itself (cloud-backed rewrite); for a cloud-tier
	// table the authoritative object was not touched, so the garbage came
	// from the locally cached metadata sidecar — drop it and the retry's
	// overlayMetadata rebuilds it from the object's own tail.
	var r *sstable.Reader
	var err error
	for attempt := 0; ; attempt++ {
		r, err = tc.open(d, meta)
		if err == nil || attempt >= 2 || !errors.Is(err, sstable.ErrCorrupt) {
			break
		}
		if meta.Tier == storage.TierCloud {
			if !d.repairSidecar(meta.Num, err) {
				break
			}
			continue
		}
		if _, rerr := d.repairLocalTable(meta.Num, err, false); rerr != nil {
			return nil, rerr
		}
	}
	if err != nil {
		return nil, err
	}
	h := &tableHandle{reader: r, tier: meta.Tier, db: d, refs: 1, cache: tc}
	r.SetFetch(tc.fetchFor(h))

	tc.mu.Lock()
	if existing, ok := tc.tables[meta.Num]; ok {
		// Raced with another opener; keep theirs.
		existing.mu.Lock()
		existing.refs++
		existing.mu.Unlock()
		tc.mu.Unlock()
		_ = r.Close()
		return existing, nil
	}
	tc.tables[meta.Num] = h
	h.mu.Lock()
	h.refs++ // the cache's own reference
	h.mu.Unlock()
	tc.touchLocked(meta.Num)
	tc.enforceCapLocked()
	tc.mu.Unlock()
	return h, nil
}

// open performs one open attempt against the table's backend.
func (tc *tableCache) open(d *DB, meta *manifest.FileMetadata) (*sstable.Reader, error) {
	be := d.backendFor(meta.Tier)
	f, err := be.Open(manifest.TableName(meta.Num))
	if err != nil {
		return nil, fmt.Errorf("db: opening table %s: %w", meta, err)
	}
	if meta.Tier == storage.TierCloud {
		// Per the placement rule, table metadata lives locally: overlay
		// the sidecar so Open performs zero cloud I/O. A missing sidecar
		// (crash window) is rebuilt from the cloud copy.
		f, err = d.overlayMetadata(f, meta)
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	r, err := sstable.Open(f, meta.Num)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("db: reading table %s metadata: %w", meta, err)
	}
	return r, nil
}

// fetchFor builds the data-block fetch path for one table:
//
//	block cache → [cloud only: persistent cache →] backend read
//
// Each block served is attributed to its source tier on prof; per-stage
// clock reads happen only for Timed (sampled) profiles.
func (tc *tableCache) fetchFor(h *tableHandle) sstable.FetchFunc {
	db := h.db
	return func(fileNum uint64, hd sstable.Handle, prof *readprof.Profile) ([]byte, error) {
		ck := cache.Key{FileNum: fileNum, Offset: hd.Offset}
		if body, ok := db.blockCache.Get(ck); ok {
			if prof != nil {
				prof.Block(readprof.TierBlockCache, len(body), 0)
			}
			return body, nil
		}
		timed := prof != nil && prof.Timed
		var start time.Time
		if timed {
			start = time.Now()
		}
		if h.tier == storage.TierCloud {
			if body, ok := db.pcache.Get(fileNum, hd.Offset); ok {
				db.blockCache.Put(ck, body)
				if prof != nil {
					var ns int64
					if timed {
						ns = time.Since(start).Nanoseconds()
					}
					prof.Block(readprof.TierPCache, len(body), ns)
				}
				return body, nil
			}
			if n := db.opts.IteratorReadaheadBlocks; n > 1 {
				if body, ok := h.tryReadahead(db, fileNum, hd, n); ok {
					if prof != nil {
						var ns int64
						if timed {
							ns = time.Since(start).Nanoseconds()
						}
						prof.Block(readprof.TierCloud, len(body), ns)
					}
					return body, nil
				}
			}
		}
		body, err := sstable.ReadRawBlock(h.reader.File(), hd)
		if err != nil && h.tier != storage.TierCloud && errors.Is(err, sstable.ErrCorrupt) {
			// A local-tier block failed its CRC: repair from the cloud copy
			// and serve this read from the freshly verified bytes — never a
			// silently wrong value, never a raw checksum error if a clean
			// source exists.
			data, rerr := db.repairLocalTable(fileNum, err, false)
			if rerr != nil {
				return nil, rerr
			}
			body, err = sstable.ReadRawBlock(bytesReader{data}, hd)
		}
		if err != nil {
			return nil, err
		}
		if h.tier == storage.TierCloud {
			db.pcache.Put(fileNum, hd.Offset, body)
		}
		db.blockCache.Put(ck, body)
		if prof != nil {
			t := readprof.TierLocal
			if h.tier == storage.TierCloud {
				t = readprof.TierCloud
			}
			var ns int64
			if timed {
				ns = time.Since(start).Nanoseconds()
			}
			prof.Block(t, len(body), ns)
		}
		return body, nil
	}
}

// compactionFetchFor builds the scan-resistant fetch path used by
// compaction input iterators: cached blocks are used when present, but
// misses go straight to the backend without admitting anything — a bulk
// merge must not evict the workload's hot set.
func (tc *tableCache) compactionFetchFor(h *tableHandle) sstable.FetchFunc {
	db := h.db
	return func(fileNum uint64, hd sstable.Handle, _ *readprof.Profile) ([]byte, error) {
		ck := cache.Key{FileNum: fileNum, Offset: hd.Offset}
		if body, ok := db.blockCache.Get(ck); ok {
			return body, nil
		}
		if h.tier == storage.TierCloud {
			if body, ok := db.pcache.Probe(fileNum, hd.Offset); ok {
				return body, nil
			}
		}
		body, err := sstable.ReadRawBlock(h.reader.File(), hd)
		if err != nil && h.tier != storage.TierCloud && errors.Is(err, sstable.ErrCorrupt) {
			// Compaction inputs get the same cloud-backed repair as the read
			// path, so one damaged block doesn't wedge the tree.
			data, rerr := db.repairLocalTable(fileNum, err, false)
			if rerr != nil {
				return nil, rerr
			}
			return sstable.ReadRawBlock(bytesReader{data}, hd)
		}
		return body, err
	}
}

// evict drops the cache's reference; the table closes once readers finish.
func (tc *tableCache) evict(fileNum uint64) {
	tc.mu.Lock()
	h, ok := tc.tables[fileNum]
	if ok {
		delete(tc.tables, fileNum)
		if e, lok := tc.lruPos[fileNum]; lok {
			tc.lru.Remove(e)
			delete(tc.lruPos, fileNum)
		}
	}
	tc.mu.Unlock()
	if !ok {
		return
	}
	h.mu.Lock()
	h.dead = true
	h.refs--
	shouldClose := h.refs == 0
	h.mu.Unlock()
	if shouldClose {
		_ = h.reader.Close()
	}
}

// metadataBytes sums the pinned metadata of every open table.
func (tc *tableCache) metadataBytes() int64 {
	tc.mu.Lock()
	hs := make([]*tableHandle, 0, len(tc.tables))
	for _, h := range tc.tables {
		hs = append(hs, h)
	}
	tc.mu.Unlock()
	var n int64
	for _, h := range hs {
		n += int64(h.reader.MetadataBytes())
	}
	return n
}

// close releases every table.
func (tc *tableCache) close() {
	tc.mu.Lock()
	hs := tc.tables
	tc.tables = map[uint64]*tableHandle{}
	tc.lru.Init()
	tc.lruPos = map[uint64]*list.Element{}
	tc.mu.Unlock()
	for _, h := range hs {
		h.mu.Lock()
		h.dead = true
		h.refs--
		shouldClose := h.refs == 0
		h.mu.Unlock()
		if shouldClose {
			_ = h.reader.Close()
		}
	}
}

// overlayMetadata wraps a cloud table's reader with its locally stored
// metadata tail. A missing or unreadable sidecar is rebuilt from the cloud
// copy (crash between upload and sidecar write) and re-persisted.
func (d *DB) overlayMetadata(f storage.Reader, meta *manifest.FileMetadata) (storage.Reader, error) {
	tailOff, tail, err := d.readMetaSidecar(meta.Num)
	if err != nil {
		tailOff, tail, err = sstable.MetaTail(f)
		if err != nil {
			return f, fmt.Errorf("db: rebuilding metadata for %s: %w", meta, err)
		}
		// Re-persisting is best-effort: the tail is already in hand, and a
		// full local disk must not fail a read it cannot improve. The next
		// open just rebuilds again.
		_ = d.writeMetaSidecar(meta.Num, tailOff, tail)
	}
	return sstable.NewTailReader(f, int64(tailOff), tail), nil
}
