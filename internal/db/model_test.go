package db

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rocksmash/internal/batch"
)

// TestRandomOpsMatchReferenceModel drives the engine with a random mix of
// puts, deletes, batches, flushes, compactions, crashes and reopens, and
// checks it always agrees with an in-memory map — the strongest end-to-end
// invariant the store offers.
func TestRandomOpsMatchReferenceModel(t *testing.T) {
	for _, p := range []Policy{PolicyMash, PolicyCloudLRU} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := testOptions(p)
			opts.WALSegmentBytes = 8 << 10
			d, err := OpenAt(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { d.Close() }()

			rng := rand.New(rand.NewSource(99))
			ref := map[string][]byte{}
			key := func() []byte { return []byte(fmt.Sprintf("key%04d", rng.Intn(400))) }

			for step := 0; step < 4000; step++ {
				switch r := rng.Intn(100); {
				case r < 55: // put
					k := key()
					v := make([]byte, rng.Intn(300)+1)
					rng.Read(v)
					if err := d.Put(k, v); err != nil {
						t.Fatal(err)
					}
					ref[string(k)] = v
				case r < 70: // delete
					k := key()
					if err := d.Delete(k); err != nil {
						t.Fatal(err)
					}
					delete(ref, string(k))
				case r < 80: // batch
					b := batch.New()
					var ks [][]byte
					var vs [][]byte
					for i := 0; i < rng.Intn(5)+1; i++ {
						k := key()
						v := []byte(fmt.Sprint(step, i))
						b.Set(k, v)
						ks, vs = append(ks, k), append(vs, v)
					}
					if err := d.Write(b); err != nil {
						t.Fatal(err)
					}
					for i := range ks {
						ref[string(ks[i])] = vs[i]
					}
				case r < 85: // random point check
					k := key()
					v, err := d.Get(k)
					want, ok := ref[string(k)]
					if ok {
						if err != nil || !bytes.Equal(v, want) {
							t.Fatalf("step %d: Get(%q) = %q, %v; want %q", step, k, v, err, want)
						}
					} else if !errors.Is(err, ErrNotFound) {
						t.Fatalf("step %d: Get(%q) = %q, %v; want ErrNotFound", step, k, v, err)
					}
				case r < 90: // flush
					if err := d.Flush(); err != nil {
						t.Fatal(err)
					}
				case r < 93: // full compaction
					if err := d.CompactAll(); err != nil {
						t.Fatal(err)
					}
				case r < 97: // crash + recover
					d.CrashForTest()
					if d, err = OpenAt(dir, opts); err != nil {
						t.Fatalf("step %d: reopen after crash: %v", step, err)
					}
				default: // clean close + reopen
					if err := d.Close(); err != nil {
						t.Fatal(err)
					}
					if d, err = OpenAt(dir, opts); err != nil {
						t.Fatalf("step %d: reopen: %v", step, err)
					}
				}
			}

			// Final full comparison via iterator.
			it, err := d.NewIterator()
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			got := map[string][]byte{}
			for it.First(); it.Valid(); it.Next() {
				got[string(it.Key())] = append([]byte(nil), it.Value()...)
			}
			if it.Err() != nil {
				t.Fatal(it.Err())
			}
			if len(got) != len(ref) {
				var missing, extra []string
				for k := range ref {
					if _, ok := got[k]; !ok {
						missing = append(missing, k)
					}
				}
				for k := range got {
					if _, ok := ref[k]; !ok {
						extra = append(extra, k)
					}
				}
				sort.Strings(missing)
				sort.Strings(extra)
				t.Fatalf("key count: got %d want %d\nmissing: %v\nextra: %v",
					len(got), len(ref), missing, extra)
			}
			for k, v := range ref {
				if !bytes.Equal(got[k], v) {
					t.Fatalf("final scan: key %q = %x want %x", k, got[k], v)
				}
			}
		})
	}
}
