package db

import (
	"bytes"
	"sync/atomic"
	"time"

	"rocksmash/internal/event"
	"rocksmash/internal/keys"
	"rocksmash/internal/manifest"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
)

// compaction describes one unit of compaction work.
type compaction struct {
	level   int // inputs come from this level...
	output  int // ...and merge into this one
	inputs  []*manifest.FileMetadata
	overlap []*manifest.FileMetadata // files at output level
}

// pickCompaction selects the most over-budget level, or nil when the tree
// is within shape.
func (d *DB) pickCompaction() *compaction {
	v := d.vs.Current()
	bestScore := 1.0
	bestLevel := -1

	if s := float64(len(v.Levels[0])) / float64(d.opts.L0CompactTrigger); s >= bestScore {
		bestScore, bestLevel = s, 0
	}
	for l := 1; l < manifest.NumLevels-1; l++ {
		size := v.LevelSize(l)
		if size == 0 {
			continue
		}
		if s := float64(size) / float64(d.opts.levelTargetBytes(l)); s > bestScore {
			bestScore, bestLevel = s, l
		}
	}
	if bestLevel < 0 {
		return nil
	}

	c := &compaction{level: bestLevel, output: bestLevel + 1}
	if bestLevel == 0 {
		// Take every L0 file: they may overlap each other arbitrarily.
		c.inputs = append(c.inputs, v.Levels[0]...)
	} else {
		// Round-robin through the level so every key range gets its turn.
		files := v.Levels[bestLevel]
		ptr := d.compactPtr[bestLevel]
		pick := files[0]
		for _, f := range files {
			if ptr != nil && bytes.Compare(keys.UserKey(f.Largest), ptr) > 0 {
				pick = f
				break
			}
		}
		c.inputs = []*manifest.FileMetadata{pick}
	}

	lo, hi := keyRange(c.inputs)
	c.overlap = v.Overlapping(c.output, lo, hi)
	return c
}

// keyRange returns the user-key bounds covered by files.
func keyRange(files []*manifest.FileMetadata) (lo, hi []byte) {
	for _, f := range files {
		fl, fh := keys.UserKey(f.Smallest), keys.UserKey(f.Largest)
		if lo == nil || bytes.Compare(fl, lo) < 0 {
			lo = fl
		}
		if hi == nil || bytes.Compare(fh, hi) > 0 {
			hi = fh
		}
	}
	return lo, hi
}

// maybeCompact runs one compaction if any level is over threshold.
// It reports whether work was done. Compactions are serialized: both the
// background loop and CompactAll may call this concurrently.
func (d *DB) maybeCompact() (bool, error) {
	d.compactionMu.Lock()
	defer d.compactionMu.Unlock()
	c := d.pickCompaction()
	if c == nil {
		return false, nil
	}
	if err := d.doCompaction(c); err != nil {
		return false, err
	}
	return true, nil
}

// smallestSnapshot returns the oldest sequence number any live snapshot
// might read, bounding which old versions compaction may drop.
func (d *DB) smallestSnapshot() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	min := d.lastSeq.Load()
	for seq := range d.snaps {
		if seq < min {
			min = seq
		}
	}
	return min
}

// isBaseLevelForRange reports whether no level deeper than c.output holds
// data overlapping [lo,hi] — if so, tombstones in that range can be
// dropped entirely.
func (d *DB) isBaseLevelForRange(c *compaction, lo, hi []byte) bool {
	v := d.vs.Current()
	for l := c.output + 1; l < manifest.NumLevels; l++ {
		if len(v.Overlapping(l, lo, hi)) > 0 {
			return false
		}
	}
	return true
}

// doCompaction merges c's inputs into the output level, applying the
// paper's placement rule for the output tier and the compaction-aware
// persistent-cache transitions (heat inheritance, whole-file drops).
func (d *DB) doCompaction(c *compaction) error {
	outTier := d.opts.tierForLevel(c.output)
	smallestSnap := d.smallestSnapshot()
	lo, hi := keyRange(append(append([]*manifest.FileMetadata{}, c.inputs...), c.overlap...))
	dropDeletes := d.isBaseLevelForRange(c, lo, hi)

	// Measure input heat before anything is dropped: hot inputs mean the
	// output's key range is being read, so its blocks deserve admission.
	var inputHeat int64
	for _, f := range append(append([]*manifest.FileMetadata{}, c.inputs...), c.overlap...) {
		inputHeat += d.pcache.FileHeat(f.Num)
	}

	// Stage-timing state for CompactionEnd. The fetch-wait accumulator is
	// only wired when a listener is attached, keeping the unobserved path
	// free of per-block clock reads.
	all := append(append([]*manifest.FileMetadata{}, c.inputs...), c.overlap...)
	inputBytes := int64(sumSizes(all))
	observed := d.listener != nil
	var readNS *atomic.Int64
	var droppedBefore, spansBefore int64
	compactStart := time.Now()
	if observed {
		readNS = new(atomic.Int64)
		droppedBefore = d.stats.CompactDroppedKeys.Load()
		spansBefore = d.stats.PrefetchSpans.Load()
		d.evCompactionBegin(event.CompactionBegin{
			Level: c.level, OutputLevel: c.output,
			Inputs: len(all), InputBytes: inputBytes,
		})
	}

	// Build the merged input iterator, pipelining cloud-tier block reads
	// through span prefetchers when CompactionPrefetchBlocks is enabled.
	var (
		children []internalIterator
		pool     *prefetchPool
	)
	for _, f := range all {
		h, err := d.tables.get(d, f)
		if err != nil {
			if pool != nil {
				pool.close()
			}
			for _, ch := range children {
				ch.Close()
			}
			return err
		}
		var fetch sstable.FetchFunc
		if d.opts.CompactionPrefetchBlocks > 1 && f.Tier == storage.TierCloud {
			if pool == nil {
				pool = newPrefetchPool()
			}
			if pf, perr := newTablePrefetcher(h.reader, pool, d.opts.CompactionPrefetchBlocks, &d.stats); perr == nil {
				fetch = d.tables.prefetchFetchFor(h, pf)
			}
			// An unreadable block index will fail the merge too; let the
			// unpipelined path surface the error.
		}
		if fetch == nil {
			fetch = d.tables.compactionFetchFor(h)
		}
		if readNS != nil {
			fetch = timedFetch(fetch, readNS)
		}
		children = append(children, &tableIter{h: h, it: h.reader.NewIterWithFetch(fetch)})
	}
	merged := newMergingIter(children...)
	defer merged.Close()
	if pool != nil {
		// Deferred after merged.Close so it runs first: in-flight span
		// fetches must drain before table references are released.
		defer pool.close()
	}

	// Finished outputs are handed to the upload pool as they complete, so
	// uploads overlap the remaining merge work; wait gathers them before
	// the manifest edit, and abort removes any already-uploaded objects on
	// failure so an aborted compaction leaves no orphans behind.
	warm := d.opts.Policy == PolicyMash && d.opts.CompactionInheritance &&
		outTier == storage.TierCloud && inputHeat > 0
	up := d.newUploader(d.opts.UploadParallelism, warm)
	fail := func(err error) error {
		up.abort()
		return err
	}

	var (
		outputs  []*builtTable
		builder  *sstable.Builder
		out      *memWriter
		curNum   uint64
		lastUkey []byte
		haveUkey bool
		lastKept uint64 = keys.MaxSequence // seq of the last kept entry for lastUkey
	)
	finishOutput := func() error {
		if builder == nil {
			return nil
		}
		props, err := builder.Finish()
		if err != nil {
			return err
		}
		if props.NumEntries > 0 {
			t := &builtTable{
				meta: manifest.FileMetadata{
					Num: curNum, Size: uint64(out.buf.Len()),
					Smallest: props.Smallest, Largest: props.Largest,
					MinSeq: props.MinSeq, MaxSeq: props.MaxSeq,
					Tier: outTier,
				},
				metaOff: builder.MetaOffset(),
				data:    out.buf.Bytes(),
			}
			outputs = append(outputs, t)
			up.add(t)
			// Stop merging early if an upload already failed; the work
			// could only produce more outputs to clean up.
			if err := up.peekErr(); err != nil {
				return err
			}
		}
		builder, out = nil, nil
		return nil
	}

	mergeStart := time.Now()
	for merged.First(); merged.Valid(); merged.Next() {
		ik := merged.Key()
		uk := keys.UserKey(ik)
		seq, kind := keys.DecodeTrailer(ik)

		newUserKey := !haveUkey || !bytes.Equal(uk, lastUkey)
		if newUserKey {
			lastUkey = append(lastUkey[:0], uk...)
			haveUkey = true
			lastKept = keys.MaxSequence
		}

		drop := false
		if lastKept <= smallestSnap {
			// A newer entry for this key is already visible at every
			// snapshot; this one can never be read.
			drop = true
		} else if kind == keys.KindDelete && seq <= smallestSnap && dropDeletes {
			// The tombstone itself is no longer needed once nothing below
			// the output level can resurrect the key.
			drop = true
			lastKept = seq
		}
		if drop {
			d.stats.CompactDroppedKeys.Add(1)
			continue
		}
		lastKept = seq

		// Split outputs only between user keys: all versions of one key
		// must land in one file or the level's non-overlap invariant (and
		// the read path's one-file-per-level assumption) breaks.
		if builder != nil && newUserKey &&
			int64(builder.EstimatedSize()) >= d.opts.TargetFileBytes {
			if err := finishOutput(); err != nil {
				return fail(err)
			}
		}
		if builder == nil {
			curNum = d.vs.NewFileNum()
			out = &memWriter{}
			builder = sstable.NewBuilder(out, sstable.BuilderOptions{
				BlockBytes:      d.opts.BlockBytes,
				BloomBitsPerKey: d.opts.BloomBitsPerKey,
				Compression:     d.opts.Compression,
			})
		}
		if err := builder.Add(ik, merged.Value()); err != nil {
			return fail(err)
		}
	}
	if err := merged.Err(); err != nil {
		return fail(err)
	}
	if err := finishOutput(); err != nil {
		return fail(err)
	}
	mergeDur := time.Since(mergeStart)
	// Gather in-flight uploads before the manifest edit: outputs must be
	// durable in their tier before any version references them.
	if err := up.wait(); err != nil {
		return fail(err)
	}

	// Install the edit.
	installStart := time.Now()
	edit := &manifest.VersionEdit{}
	for _, f := range c.inputs {
		edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: c.level, Num: f.Num})
	}
	for _, f := range c.overlap {
		edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: c.output, Num: f.Num})
	}
	for _, t := range outputs {
		edit.Added = append(edit.Added, manifest.AddedFile{Level: c.output, Meta: t.meta})
	}
	if err := d.vs.LogAndApply(edit); err != nil {
		return err
	}
	for _, t := range outputs {
		d.pcache.SetLevel(t.meta.Num, c.output)
	}
	// Both levels' memberships just changed, so their sorted views are
	// stale by fingerprint; drop the cached copies and sidecar objects now
	// rather than waiting for the next scan to notice.
	d.invalidateViews(d.vs.Current(), c.level, c.output)
	if c.level > 0 && len(c.inputs) > 0 {
		if d.compactPtr == nil {
			d.compactPtr = map[int][]byte{}
		}
		d.compactPtr[c.level] = append([]byte(nil),
			keys.UserKey(c.inputs[len(c.inputs)-1].Largest)...)
	}

	// Retire the inputs: caches first (constant-time region frees for the
	// LSM-aware cache), then the objects themselves. The version no longer
	// references these objects, so a failed delete (cloud outage) is not an
	// error: it goes on the deferred queue and the drainer retries it.
	for _, f := range all {
		d.tables.evict(f.Num)
		d.blockCache.InvalidateFile(f.Num)
		d.pcache.DropFile(f.Num)
		if err := d.backendFor(f.Tier).Delete(manifest.TableName(f.Num)); err != nil {
			d.deferDelete(f.Tier, manifest.TableName(f.Num))
		}
		if f.Tier == storage.TierCloud {
			if err := d.local.Delete(metaSidecarName(f.Num)); err != nil {
				d.deferDelete(storage.TierLocal, metaSidecarName(f.Num))
			}
		} else if d.dropMirror(f.Num) {
			// A retired local table's lazy cloud mirror goes with it.
			if err := d.cloud.Delete(manifest.TableName(f.Num)); err != nil {
				d.deferDelete(storage.TierCloud, manifest.TableName(f.Num))
			}
		}
		d.unquarantine(f.Num)
		d.evTableDeleted(f.Num, f.Tier)
	}

	d.stats.Compactions.Add(1)
	d.stats.CompactBytesIn.Add(int64(sumSizes(all)))
	d.stats.CompactBytesOut.Add(int64(sumBuilt(outputs)))
	// Per-level attribution, indexed by source level (the target is always
	// c.level+1): source inputs and target-overlap inputs are recorded
	// separately so the two partitions sum exactly to the store totals.
	lc := &d.stats.LevelCompact[c.level]
	lc.Count.Add(1)
	lc.BytesInSource.Add(int64(sumSizes(c.inputs)))
	lc.BytesInTarget.Add(int64(sumSizes(c.overlap)))
	lc.BytesOut.Add(int64(sumBuilt(outputs)))
	dur := time.Since(compactStart)
	d.lat.compact.Record(dur)
	if observed {
		d.evCompactionEnd(event.CompactionEnd{
			Level:         c.level,
			OutputLevel:   c.output,
			Inputs:        len(all),
			Outputs:       len(outputs),
			InputBytes:    inputBytes,
			OutputBytes:   int64(sumBuilt(outputs)),
			DroppedKeys:   d.stats.CompactDroppedKeys.Load() - droppedBefore,
			PrefetchSpans: d.stats.PrefetchSpans.Load() - spansBefore,
			ReadDur:       time.Duration(readNS.Load()),
			MergeDur:      mergeDur,
			UploadDur:     up.dur(),
			InstallDur:    time.Since(installStart),
			Duration:      dur,
		})
	}
	return nil
}

func sumSizes(files []*manifest.FileMetadata) uint64 {
	var n uint64
	for _, f := range files {
		n += f.Size
	}
	return n
}

func sumBuilt(ts []*builtTable) uint64 {
	var n uint64
	for _, t := range ts {
		n += t.meta.Size
	}
	return n
}
