package db

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestBinaryKeysAndValues(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	cases := [][2][]byte{
		{{0}, {0}},
		{{0, 0, 0}, {1, 2, 3}},
		{{0xff, 0xfe}, {0xff}},
		{[]byte("k\x00embedded"), []byte("v\x00embedded")},
		{bytes.Repeat([]byte{0xab}, 500), bytes.Repeat([]byte{0xcd}, 500)},
	}
	for _, c := range cases {
		if err := d.Put(c[0], c[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		v, err := d.Get(c[0])
		if err != nil || !bytes.Equal(v, c[1]) {
			t.Fatalf("Get(%x) = %x, %v", c[0], v, err)
		}
	}
}

func TestEmptyValue(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	if err := d.Put([]byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	v, err := d.Get([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("empty value read back as %q", v)
	}
	// Empty value must survive flush and must be distinct from deletion.
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get([]byte("k")); err != nil {
		t.Fatal("empty value lost after flush:", err)
	}
}

func TestLargeValuesSpanBlocks(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	// Values much larger than BlockBytes (1 KiB under test geometry).
	big := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB
	if err := d.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := d.Get([]byte("big"))
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("large value corrupted: len=%d err=%v", len(v), err)
	}
}

func TestGetAtHistoricalVersions(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	var seqs []uint64
	for i := 0; i < 5; i++ {
		mustPut(t, d, "k", fmt.Sprintf("v%d", i))
		seqs = append(seqs, d.LastSequence())
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, s := range seqs {
		v, err := d.GetAt([]byte("k"), s)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("GetAt(seq=%d) = %q, %v", s, v, err)
		}
	}
	if _, err := d.GetAt([]byte("k"), seqs[0]-1); !errors.Is(err, ErrNotFound) {
		t.Fatal("pre-history read should be not found")
	}
}

func TestIteratorDuringBackgroundChurn(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	for i := 0; i < 1000; i++ {
		mustPut(t, d, fmt.Sprintf("stable%05d", i), "v")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}

	// Heavy churn while the iterator walks: compactions must not yank the
	// tables out from under it (refcounted handles).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			d.Put([]byte(fmt.Sprintf("churn%06d", i)), bytes.Repeat([]byte("x"), 200))
		}
		d.CompactAll()
	}()

	count := 0
	for it.First(); it.Valid(); it.Next() {
		if bytes.HasPrefix(it.Key(), []byte("stable")) {
			count++
		}
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if count != 1000 {
		t.Fatalf("iterator saw %d stable keys, want 1000", count)
	}
}

func TestWriteStallAccounting(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	// Hammer writes; under the tiny test geometry L0 will periodically
	// exceed the stall limit. We only assert the DB survives and counts.
	for i := 0; i < 5000; i++ {
		mustPut(t, d, fmt.Sprintf("k%06d", i), string(bytes.Repeat([]byte("v"), 200)))
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	// Sanity: everything is still readable.
	mustGet(t, d, "k000000", string(bytes.Repeat([]byte("v"), 200)))
	mustGet(t, d, "k004999", string(bytes.Repeat([]byte("v"), 200)))
}

func TestKeysArePrefixSafe(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	mustPut(t, d, "app", "1")
	mustPut(t, d, "apple", "2")
	mustPut(t, d, "applesauce", "3")
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	mustGet(t, d, "app", "1")
	mustGet(t, d, "apple", "2")
	mustGet(t, d, "applesauce", "3")
	mustMissing(t, d, "appl")
	mustMissing(t, d, "apples")
}

func TestDeleteNonexistentKey(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	if err := d.Delete([]byte("never-existed")); err != nil {
		t.Fatal(err)
	}
	mustMissing(t, d, "never-existed")
	// The tombstone must survive flush and compaction without issue.
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	mustMissing(t, d, "never-existed")
}

func TestReopenEmptyDB(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(PolicyMash)
	d, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenAt(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	mustMissing(t, d2, "anything")
	mustPut(t, d2, "k", "v")
	mustGet(t, d2, "k", "v")
}

func TestManyReopenCycles(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(PolicyMash)
	for cycle := 0; cycle < 8; cycle++ {
		d, err := OpenAt(dir, opts)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		mustPut(t, d, fmt.Sprintf("cycle%02d", cycle), "v")
		// Verify all earlier cycles.
		for j := 0; j <= cycle; j++ {
			mustGet(t, d, fmt.Sprintf("cycle%02d", j), "v")
		}
		if cycle%2 == 0 {
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
		} else {
			d.CrashForTest()
		}
	}
}

func TestSnapshotReleaseAllowsReclaim(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	mustPut(t, d, "k", "old")
	snap := d.GetSnapshot()
	mustPut(t, d, "k", "new")
	snap.Release()
	snap.Release() // double release is safe
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	dropped := d.EngineStats().CompactDroppedKeys.Load()
	_ = dropped // old version may or may not have been reachable; just assert liveness
	mustGet(t, d, "k", "new")
}

func TestIteratorAfterCloseIsInert(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	mustPut(t, d, "a", "1")
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	it.First()
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if it.Valid() {
		t.Fatal("closed iterator should be invalid")
	}
	if err := it.Close(); err != nil {
		t.Fatal("double close should be clean")
	}
}
