package db

import (
	"fmt"
	"sync/atomic"
	"time"

	"rocksmash/internal/histogram"
	"rocksmash/internal/manifest"
	"rocksmash/internal/pcache"
	"rocksmash/internal/readprof"
	"rocksmash/internal/storage"
)

// Stats aggregates engine activity counters.
type Stats struct {
	Writes       atomic.Int64
	Reads        atomic.Int64
	BytesWritten atomic.Int64
	WriteStalls  atomic.Int64

	// Commit-pipeline counters: groups led, batches carried by those groups
	// (batches/groups = mean group size), and fsyncs amortized away by group
	// commit (group size minus one per synced group; 0 unless WALSync).
	CommitGroups       atomic.Int64
	CommitGroupBatches atomic.Int64
	WALSyncsAmortized  atomic.Int64

	Flushes    atomic.Int64
	FlushBytes atomic.Int64

	UploadRetries       atomic.Int64
	ReadRetries         atomic.Int64
	BreakerTrips        atomic.Int64
	BreakerHalfOpens    atomic.Int64
	DegradedTables      atomic.Int64 // tables landed locally during outages
	DrainedTables       atomic.Int64 // pending tables migrated to cloud
	DeferredDeletes     atomic.Int64 // object deletions queued for retry
	CompactionsDeferred atomic.Int64 // compactions postponed by an open breaker

	// Local-tier fault-tolerance counters (the self-healing layer): the
	// local breaker's history, tables landed cloud-direct while the local
	// tier was degraded and later migrated back, corruption scrub/repair
	// outcomes, and lazy mirror uploads of local-level tables.
	LocalBreakerTrips     atomic.Int64
	LocalBreakerHalfOpens atomic.Int64
	LocalDegradedTables   atomic.Int64 // tables landed cloud-direct during local degradation
	LocalDrainedBack      atomic.Int64 // misplaced tables migrated back to local
	CorruptionsDetected   atomic.Int64 // checksum failures classified on local artifacts
	CorruptionsRepaired   atomic.Int64 // artifacts re-materialized from a cloud source
	CorruptionsUnrepaired atomic.Int64 // damage with no clean source (quarantined)
	ScrubPasses           atomic.Int64 // completed scrub walks
	MirroredTables        atomic.Int64 // local-level tables lazily copied to cloud
	Compactions           atomic.Int64
	CompactBytesIn        atomic.Int64
	CompactBytesOut       atomic.Int64
	CompactDroppedKeys    atomic.Int64

	// I/O pipeline counters: coalesced range GETs issued by the compaction
	// prefetcher and by iterator readahead, and the blocks they carried.
	PrefetchSpans   atomic.Int64
	PrefetchBlocks  atomic.Int64
	ReadaheadSpans  atomic.Int64
	ReadaheadBlocks atomic.Int64

	// Sorted-view counters: per-level iterators constructed on a valid view
	// vs falling back to the per-table merge, background view builds and
	// their encoded bytes, and live keys yielded by iterators (the
	// denominator of blocks-per-scanned-key).
	ScanViewHits   atomic.Int64
	ScanViewMisses atomic.Int64
	ViewBuilds     atomic.Int64
	ViewBuildBytes atomic.Int64
	IterKeys       atomic.Int64

	// Flight-recorder counters (facade-level in a sharded store: the
	// detector runs once, on the facade's vitals tick).
	IncidentsTriggered  atomic.Int64 // detector rules fired
	IncidentsSuppressed atomic.Int64 // re-triggers absorbed by per-rule cooldowns
	BundlesWritten      atomic.Int64 // postmortem bundles committed
	BundleErrors        atomic.Int64 // bundle dumps that failed

	// LevelCompact attributes compaction traffic to its source level: every
	// compaction moves level → level+1, so indexing by the source level
	// captures the full source→target pair. The per-level counters
	// partition the store totals exactly: Σ(BytesInSource+BytesInTarget)
	// == CompactBytesIn and Σ BytesOut == CompactBytesOut.
	LevelCompact [manifest.NumLevels]LevelCompactCounters
}

// LevelCompactCounters are the raw per-source-level compaction counters.
type LevelCompactCounters struct {
	Count         atomic.Int64 // compactions picked at this source level
	BytesInSource atomic.Int64 // bytes read from the source level's inputs
	BytesInTarget atomic.Int64 // bytes read from overlapping target files
	BytesOut      atomic.Int64 // bytes written to the target level
}

// RecoveryReport describes what the last Open had to do to recover.
type RecoveryReport struct {
	WALSegments   int
	WALSkipped    int
	WALRecords    int64
	WALBytes      int64
	RecoveredKeys int64
	Parallelism   int
	Duration      time.Duration
}

// String renders the report.
func (r RecoveryReport) String() string {
	return fmt.Sprintf("recovery{segments=%d skipped=%d records=%d bytes=%d keys=%d par=%d dur=%s}",
		r.WALSegments, r.WALSkipped, r.WALRecords, r.WALBytes, r.RecoveredKeys, r.Parallelism, r.Duration)
}

// LatencySummary condenses one latency histogram into the percentiles
// reporting cares about. Durations are zero when Count is zero.
type LatencySummary struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// summarize extracts a LatencySummary from a histogram.
func summarize(h *histogram.H) LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}

// String renders the summary on one line.
func (s LatencySummary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s max=%s",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// ReadAmp summarizes read-path attribution across every profiled request
// (see internal/readprof): where Gets were served, how many tables and
// blocks each one touched, which tier produced the blocks, and how
// effective the bloom filters were. Per-tier arrays are indexed in
// readprof.Tier order (block cache, pcache, local, cloud); iterator reads
// aggregate separately so scans don't skew per-Get amplification.
type ReadAmp struct {
	ProfiledGets int64 // Gets that carried a profile
	TimedGets    int64 // subset with per-stage timings

	MemServes   int64 // resolved by a memtable
	NotFound    int64 // resolved nowhere
	LevelProbes [manifest.NumLevels]int64
	LevelServes [manifest.NumLevels]int64

	Tables        int64
	BloomChecked  int64
	BloomNegative int64

	Blocks     [readprof.NumTiers]int64
	Bytes      [readprof.NumTiers]int64
	FetchNanos [readprof.NumTiers]int64
	TotalNanos int64

	IterSeeks  int64
	IterBlocks [readprof.NumTiers]int64
	IterBytes  [readprof.NumTiers]int64
	IterNanos  [readprof.NumTiers]int64
	// Per-level sorted-view outcomes during iterator construction: levels
	// served by a view cursor run vs levels that fell back to the
	// per-table merge (view missing or still building).
	IterViewHits   int64
	IterViewMisses int64

	// Persistent-cache outcomes by LSM level (see pcache.LevelBucket; the
	// last bucket holds files with no registered level).
	PCacheLevelHits   [pcache.LevelBuckets]int64
	PCacheLevelMisses [pcache.LevelBuckets]int64
}

// TablesPerGet is mean table readers consulted per profiled Get.
func (r ReadAmp) TablesPerGet() float64 {
	if r.ProfiledGets == 0 {
		return 0
	}
	return float64(r.Tables) / float64(r.ProfiledGets)
}

// BlocksPerGet is mean data blocks read per profiled Get.
func (r ReadAmp) BlocksPerGet() float64 {
	if r.ProfiledGets == 0 {
		return 0
	}
	return float64(r.BlocksTotal()) / float64(r.ProfiledGets)
}

// BytesPerGet is mean data-block bytes read per profiled Get.
func (r ReadAmp) BytesPerGet() float64 {
	if r.ProfiledGets == 0 {
		return 0
	}
	return float64(r.BytesTotal()) / float64(r.ProfiledGets)
}

// BloomTrueNegativeRate is the fraction of bloom consultations that
// rejected the probe (saving a block read).
func (r ReadAmp) BloomTrueNegativeRate() float64 {
	if r.BloomChecked == 0 {
		return 0
	}
	return float64(r.BloomNegative) / float64(r.BloomChecked)
}

// BlocksTotal sums Get block reads across tiers.
func (r ReadAmp) BlocksTotal() int64 {
	var n int64
	for _, b := range r.Blocks {
		n += b
	}
	return n
}

// BytesTotal sums Get block bytes across tiers.
func (r ReadAmp) BytesTotal() int64 {
	var n int64
	for _, b := range r.Bytes {
		n += b
	}
	return n
}

// LevelWriteAmp attributes compaction traffic to one source→target level
// pair (Target is always Level+1). WriteAmp is the level's classic
// amplification ratio: bytes written to the target per source byte moved.
type LevelWriteAmp struct {
	Level         int   `json:"level"`
	Target        int   `json:"target"`
	Count         int64 `json:"count"`
	BytesInSource int64 `json:"bytes_in_source"`
	BytesInTarget int64 `json:"bytes_in_target"`
	BytesOut      int64 `json:"bytes_out"`
}

// WriteAmp is the level's write amplification: bytes written per source
// byte compacted away (0 before any compaction at this level).
func (l LevelWriteAmp) WriteAmp() float64 {
	if l.BytesInSource == 0 {
		return 0
	}
	return float64(l.BytesOut) / float64(l.BytesInSource)
}

// levelWriteAmp snapshots the per-level compaction counters, always one
// entry per level (zero-valued where nothing compacted) so consumers can
// index by level.
func levelWriteAmp(s *Stats) []LevelWriteAmp {
	out := make([]LevelWriteAmp, manifest.NumLevels)
	for l := range out {
		lc := &s.LevelCompact[l]
		out[l] = LevelWriteAmp{
			Level:         l,
			Target:        l + 1,
			Count:         lc.Count.Load(),
			BytesInSource: lc.BytesInSource.Load(),
			BytesInTarget: lc.BytesInTarget.Load(),
			BytesOut:      lc.BytesOut.Load(),
		}
	}
	return out
}

// Metrics is a point-in-time summary for reporting.
type Metrics struct {
	Policy      string
	LastSeq     uint64
	LevelFiles  []int
	LevelBytes  []uint64
	LocalBytes  int64
	CloudBytes  int64
	MetaBytes   int64 // pinned table metadata (index+filter), all local
	PCacheMeta  int64
	PCacheUsed  int64
	PCacheHit   float64
	BlockHit    float64
	LocalIO     storage.Snapshot
	CloudIO     storage.Snapshot
	CloudCost   storage.CostReport
	Flushes     int64
	Compactions int64
	WriteStalls int64

	// Engine activity counters.
	Reads              int64
	Writes             int64
	BytesWritten       int64
	CommitGroups       int64
	CommitGroupBatches int64
	WALSyncsAmortized  int64
	FlushBytes         int64
	UploadRetries      int64
	ReadRetries        int64
	CompactBytesIn     int64
	CompactBytesOut    int64
	CompactDroppedKeys int64

	PrefetchSpans   int64
	PrefetchBlocks  int64
	ReadaheadSpans  int64
	ReadaheadBlocks int64

	// Sorted-view accounting (see Stats for the counter semantics).
	ScanViewHits   int64
	ScanViewMisses int64
	ViewBuilds     int64
	ViewBuildBytes int64
	IterKeys       int64

	// Per-source-level compaction attribution (always manifest.NumLevels
	// entries; see LevelWriteAmp), plus the derived health gauges:
	// CompactionDebt estimates the bytes the compactor must move to bring
	// every level back under its target; SpaceAmp is total table bytes
	// over the deepest non-empty level's bytes (1.0 = no duplication).
	LevelWriteAmp  []LevelWriteAmp
	CompactionDebt int64
	SpaceAmp       float64

	// Raw cache outcome counts (the ratios above are cumulative; counts
	// let consumers window them over time).
	BlockCacheHits   int64
	BlockCacheMisses int64
	PCacheHits       int64
	PCacheMisses     int64

	// Robustness state: the cloud circuit breaker's position and history,
	// and the degraded-mode backlog of tables awaiting upload.
	BreakerState        string
	BreakerTrips        int64
	BreakerHalfOpens    int64
	DegradedDur         time.Duration
	DegradedTables      int64
	DrainedTables       int64
	DeferredDeletes     int64
	CompactionsDeferred int64
	PendingTables       int
	PendingBytes        int64

	// Local-tier robustness state (the self-healing layer): the local
	// breaker's position and history, cloud-direct landings and drain-backs,
	// corruption scrub/repair reconciliation, quarantined tables, mirror
	// uploads, pcache CRC misses, and WAL segment spill/restore counts.
	LocalBreakerState     string
	LocalBreakerTrips     int64
	LocalBreakerHalfOpens int64
	LocalDegradedDur      time.Duration
	LocalDegradedTables   int64
	LocalDrainedBack      int64
	MisplacedTables       int // cloud-landed tables awaiting drain-back to local
	CorruptionsDetected   int64
	CorruptionsRepaired   int64
	CorruptionsUnrepaired int64
	QuarantinedTables     int
	ScrubPasses           int64
	MirroredTables        int64
	PCacheCorruptReads    int64
	WALSpills             int64
	WALRestored           int64

	// Flight-recorder state (zero when Options.FlightRecorder is off):
	// detector fires, cooldown-suppressed re-triggers, postmortem bundle
	// outcomes, and the rule IDs active at snapshot time.
	IncidentsTriggered  int64
	IncidentsSuppressed int64
	BundlesWritten      int64
	BundleErrors        int64
	ActiveIncidents     []string

	// Read-path attribution (per-level serves, per-tier blocks, bloom
	// effectiveness); zero-valued when ReadProfileSampleRate is negative.
	ReadAmp ReadAmp

	// Per-operation latency distributions (engine-side).
	GetLat     LatencySummary
	PutLat     LatencySummary
	FlushLat   LatencySummary
	CompactLat LatencySummary
	// Per-tier storage request latency (GET = read request, PUT = whole
	// object creation), recorded by the instrumented backends.
	LocalGetLat LatencySummary
	LocalPutLat LatencySummary
	CloudGetLat LatencySummary
	CloudPutLat LatencySummary

	// Shards carries per-shard attribution in a sharded store (one entry
	// per keyspace shard, in shard order); empty when Shards <= 1.
	Shards []ShardSummary
}

// ShardSummary attributes engine activity to one keyspace shard.
type ShardSummary struct {
	Shard       int
	LastSeq     uint64
	Writes      int64
	Reads       int64
	Flushes     int64
	Compactions int64
	WriteStalls int64
	// Files/Bytes describe the shard's live table footprint across levels;
	// PendingTables is its degraded-mode upload backlog.
	Files         int
	Bytes         int64
	PendingTables int
	// Persistent-cache outcomes for blocks of this shard's files (from the
	// shared cache's per-shard buckets; zero for shard indexes past the
	// bucket range).
	PCacheHits   int64
	PCacheMisses int64
}

// add accumulates o into r. Per-level persistent-cache outcomes are not
// summed: they come from the shared cache and are filled in once by the
// caller.
func (r *ReadAmp) add(o ReadAmp) {
	r.ProfiledGets += o.ProfiledGets
	r.TimedGets += o.TimedGets
	r.MemServes += o.MemServes
	r.NotFound += o.NotFound
	for i := range r.LevelProbes {
		r.LevelProbes[i] += o.LevelProbes[i]
		r.LevelServes[i] += o.LevelServes[i]
	}
	r.Tables += o.Tables
	r.BloomChecked += o.BloomChecked
	r.BloomNegative += o.BloomNegative
	for i := range r.Blocks {
		r.Blocks[i] += o.Blocks[i]
		r.Bytes[i] += o.Bytes[i]
		r.FetchNanos[i] += o.FetchNanos[i]
		r.IterBlocks[i] += o.IterBlocks[i]
		r.IterBytes[i] += o.IterBytes[i]
		r.IterNanos[i] += o.IterNanos[i]
	}
	r.TotalNanos += o.TotalNanos
	r.IterSeeks += o.IterSeeks
	r.IterViewHits += o.IterViewHits
	r.IterViewMisses += o.IterViewMisses
}

// WriteAmp is the store's exact cumulative write amplification: physical
// table bytes written (flush outputs plus compaction outputs) per user
// byte committed. Returns 0 before any user write.
func (m Metrics) WriteAmp() float64 {
	if m.BytesWritten == 0 {
		return 0
	}
	return float64(m.FlushBytes+m.CompactBytesOut) / float64(m.BytesWritten)
}

// compactionDebt estimates the bytes compaction must move to bring the
// tree back to its shape invariants: all of L0 once it reaches the
// compaction trigger, plus each deeper level's overage past its size
// target.
func (d *DB) compactionDebt(v *manifest.Version) int64 {
	var debt int64
	if len(v.Levels[0]) >= d.opts.L0CompactTrigger {
		debt += int64(v.LevelSize(0))
	}
	for l := 1; l < manifest.NumLevels-1; l++ {
		if over := int64(v.LevelSize(l)) - d.opts.levelTargetBytes(l); over > 0 {
			debt += over
		}
	}
	return debt
}

// spaceAmpOf estimates space amplification from a level-bytes profile:
// total table bytes over the deepest non-empty level's bytes. The deepest
// level approximates the dataset's true size (everything above it is
// yet-to-merge duplication), so 1.0 means no duplication. Returns 0 for
// an empty tree.
func spaceAmpOf(levelBytes []uint64) float64 {
	var total, deepest uint64
	for _, b := range levelBytes {
		total += b
		if b > 0 {
			deepest = b
		}
	}
	if deepest == 0 {
		return 0
	}
	return float64(total) / float64(deepest)
}

// Metrics gathers a summary snapshot.
func (d *DB) Metrics() Metrics {
	if d.shards != nil {
		return d.shardMetrics()
	}
	v := d.vs.Current()
	m := Metrics{
		Policy:      d.opts.Policy.String(),
		LastSeq:     d.lastSeq.Load(),
		MetaBytes:   d.tables.metadataBytes(),
		PCacheMeta:  d.pcache.MetadataBytes(),
		PCacheUsed:  d.pcache.UsedBytes(),
		PCacheHit:   d.pcache.Stats().HitRatio(),
		BlockHit:    d.blockCache.HitRatio(),
		LocalIO:     d.local.Stats().Snapshot(),
		Flushes:     d.stats.Flushes.Load(),
		Compactions: d.stats.Compactions.Load(),
		WriteStalls: d.stats.WriteStalls.Load(),

		Reads:              d.stats.Reads.Load(),
		Writes:             d.stats.Writes.Load(),
		BytesWritten:       d.stats.BytesWritten.Load(),
		CommitGroups:       d.stats.CommitGroups.Load(),
		CommitGroupBatches: d.stats.CommitGroupBatches.Load(),
		WALSyncsAmortized:  d.stats.WALSyncsAmortized.Load(),
		FlushBytes:         d.stats.FlushBytes.Load(),
		UploadRetries:      d.stats.UploadRetries.Load(),
		ReadRetries:        d.stats.ReadRetries.Load(),
		CompactBytesIn:     d.stats.CompactBytesIn.Load(),
		CompactBytesOut:    d.stats.CompactBytesOut.Load(),
		CompactDroppedKeys: d.stats.CompactDroppedKeys.Load(),

		PrefetchSpans:   d.stats.PrefetchSpans.Load(),
		PrefetchBlocks:  d.stats.PrefetchBlocks.Load(),
		ReadaheadSpans:  d.stats.ReadaheadSpans.Load(),
		ReadaheadBlocks: d.stats.ReadaheadBlocks.Load(),

		ScanViewHits:   d.stats.ScanViewHits.Load(),
		ScanViewMisses: d.stats.ScanViewMisses.Load(),
		ViewBuilds:     d.stats.ViewBuilds.Load(),
		ViewBuildBytes: d.stats.ViewBuildBytes.Load(),
		IterKeys:       d.stats.IterKeys.Load(),

		BreakerTrips:        d.stats.BreakerTrips.Load(),
		BreakerHalfOpens:    d.stats.BreakerHalfOpens.Load(),
		DegradedTables:      d.stats.DegradedTables.Load(),
		DrainedTables:       d.stats.DrainedTables.Load(),
		DeferredDeletes:     d.stats.DeferredDeletes.Load(),
		CompactionsDeferred: d.stats.CompactionsDeferred.Load(),

		LocalBreakerTrips:     d.stats.LocalBreakerTrips.Load(),
		LocalBreakerHalfOpens: d.stats.LocalBreakerHalfOpens.Load(),
		LocalDegradedTables:   d.stats.LocalDegradedTables.Load(),
		LocalDrainedBack:      d.stats.LocalDrainedBack.Load(),
		CorruptionsDetected:   d.stats.CorruptionsDetected.Load(),
		CorruptionsRepaired:   d.stats.CorruptionsRepaired.Load(),
		CorruptionsUnrepaired: d.stats.CorruptionsUnrepaired.Load(),
		ScrubPasses:           d.stats.ScrubPasses.Load(),
		MirroredTables:        d.stats.MirroredTables.Load(),

		GetLat:      summarize(d.lat.get),
		PutLat:      summarize(d.lat.put),
		FlushLat:    summarize(d.lat.flush),
		CompactLat:  summarize(d.lat.compact),
		LocalGetLat: summarize(d.lat.localGet),
		LocalPutLat: summarize(d.lat.localPut),
		CloudGetLat: summarize(d.lat.cloudGet),
		CloudPutLat: summarize(d.lat.cloudPut),
	}
	for l := range v.Levels {
		m.LevelFiles = append(m.LevelFiles, len(v.Levels[l]))
		m.LevelBytes = append(m.LevelBytes, v.LevelSize(l))
	}
	m.LevelWriteAmp = levelWriteAmp(&d.stats)
	m.CompactionDebt = d.compactionDebt(v)
	m.SpaceAmp = spaceAmpOf(m.LevelBytes)
	m.BlockCacheHits, m.BlockCacheMisses = d.blockCache.Counters()
	v.AllFiles(func(level int, f *manifest.FileMetadata) {
		if f.Tier == storage.TierCloud {
			m.CloudBytes += int64(f.Size)
		} else {
			m.LocalBytes += int64(f.Size)
		}
		if f.PendingCloud {
			m.PendingTables++
			m.PendingBytes += int64(f.Size)
		}
		if d.isMisplaced(level, f) {
			m.MisplacedTables++
		}
	})
	if d.breaker != nil {
		m.BreakerState = d.breaker.State().String()
		m.DegradedDur = d.breaker.DegradedDur()
	}
	if d.localBreaker != nil {
		m.LocalBreakerState = d.localBreaker.State().String()
		m.LocalDegradedDur = d.localBreaker.DegradedDur()
	}
	m.QuarantinedTables = d.quarantinedCount()
	d.fillFlightMetrics(&m)
	if d.wal != nil {
		m.WALSpills = d.wal.Spills()
		m.WALRestored = d.wal.Restored()
	}
	if d.cloud != nil {
		m.CloudIO = d.cloud.Stats().Snapshot()
	}
	if d.cloudSim != nil {
		m.CloudCost = d.cloudSim.CostReport()
	}
	m.ReadAmp = d.readAgg.snapshot()
	pcs := d.pcache.Stats()
	m.PCacheHits = pcs.Hits.Load()
	m.PCacheMisses = pcs.Misses.Load()
	m.PCacheCorruptReads = pcs.CorruptReads.Load()
	for b := 0; b < pcache.LevelBuckets; b++ {
		m.ReadAmp.PCacheLevelHits[b] = pcs.LevelHits[b].Load()
		m.ReadAmp.PCacheLevelMisses[b] = pcs.LevelMisses[b].Load()
	}
	return m
}

// EngineStats exposes the raw counters.
func (d *DB) EngineStats() *Stats { return &d.stats }

// RecoveryReport returns what the last Open recovered.
func (d *DB) RecoveryReport() RecoveryReport { return d.recovery }

// PCacheStats exposes the persistent-cache counters (for experiments).
func (d *DB) PCacheStats() (hitRatio float64, metaBytes, usedBytes int64) {
	return d.pcache.Stats().HitRatio(), d.pcache.MetadataBytes(), d.pcache.UsedBytes()
}

// CloudCost returns the simulated cloud bill, if the DB owns the simulator.
func (d *DB) CloudCost() (storage.CostReport, bool) {
	if d.cloudSim == nil {
		return storage.CostReport{}, false
	}
	return d.cloudSim.CostReport(), true
}
